package pdps_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// registeredMetricFamilies walks every non-test source file under
// internal/ and collects the first-argument string literal of each
// Counter/Gauge/Histogram registration call. All registrations in the
// tree use literal names, so this is the exhaustive family set.
func registeredMetricFamilies(t *testing.T) map[string]string {
	t.Helper()
	families := make(map[string]string) // name -> file
	fset := token.NewFileSet()
	err := filepath.Walk("internal", func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") ||
			strings.HasSuffix(path, "_test.go") {
			return err
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Counter", "Gauge", "Histogram":
			default:
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil || name == "" {
				return true
			}
			families[name] = path
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return families
}

// TestMetricCatalogCovers keeps docs/OBSERVABILITY.md's catalog and
// the code in lockstep, both ways: every metric family registered
// anywhere under internal/ must have a catalog row, and every
// backticked family in a catalog row must still exist in the code —
// no undocumented series, no stale rows.
func TestMetricCatalogCovers(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatal(err)
	}
	// Catalog rows are table lines whose first cell holds one or more
	// backticked `family{labels}` names.
	documented := make(map[string]bool)
	name := regexp.MustCompile("`([a-z][a-z0-9_]*)[{}`]")
	for _, line := range strings.Split(string(doc), "\n") {
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		cell := line[1:]
		if i := strings.Index(cell, "|"); i >= 0 {
			cell = cell[:i]
		}
		for _, m := range name.FindAllStringSubmatch(cell, -1) {
			documented[m[1]] = true
		}
	}
	if len(documented) < 40 {
		t.Fatalf("parsed only %d catalog rows from docs/OBSERVABILITY.md — parser or doc broke", len(documented))
	}

	registered := registeredMetricFamilies(t)
	for fam, file := range registered {
		if !documented[fam] {
			t.Errorf("metric family %q (registered in %s) has no catalog row in docs/OBSERVABILITY.md", fam, file)
		}
	}
	for fam := range documented {
		if _, ok := registered[fam]; !ok {
			t.Errorf("docs/OBSERVABILITY.md documents %q but no code under internal/ registers it (stale row?)", fam)
		}
	}
}
