// Package pdps is a parallel database production system: a Go
// reproduction of "Parallelism in Database Production Systems"
// (Srivastava, Hwang, Tan — ICDE 1990). It provides:
//
//   - an OPS5-style rule language (Parse) and programmatic rule IR;
//   - incremental matchers (Rete, TREAT) over a transactional working
//     memory;
//   - three interpreters: the single execution thread mechanism, the
//     dynamic multiple-thread mechanism (goroutine workers firing
//     productions as transactions under either two-phase locking or
//     the paper's improved Rc/Ra/Wa scheme, with commit-time victim
//     aborts), and the static multiple-thread mechanism based on
//     interference analysis;
//   - the paper's formal execution-semantics model (abstract systems,
//     execution graphs, ES_single enumeration) and consistency
//     checkers implementing Definition 3.2;
//   - the Section 5 multiprocessor simulator that reproduces the
//     paper's speed-up figures.
//
// Quick start:
//
//	prog := pdps.MustParse(`
//	  (p hello (greeting ^to <x>) --> (remove 1))
//	  (wme greeting ^to world)`)
//	eng, _ := pdps.NewSingleEngine(prog, pdps.Options{})
//	res, _ := eng.Run()
//
// Observability: every engine carries a metrics registry recording
// the quantities Section 5's factor analysis argues about — lock
// conflicts by mode pair (Table 4.1), commit-time Rc victims (rule
// (ii)), abort/retry counts, lock-wait and commit-latency histograms,
// match and working-memory traffic. Take a structured snapshot at any
// time, even mid-run:
//
//	snap := eng.Metrics().Snapshot()
//	fmt.Println(snap.Counter("engine_commits_total"))
//
// See docs/OBSERVABILITY.md for the full metric catalog.
package pdps

import (
	"pdps/internal/core"
	"pdps/internal/cr"
	"pdps/internal/detsched"
	"pdps/internal/engine"
	"pdps/internal/lang"
	"pdps/internal/lock"
	"pdps/internal/match"
	"pdps/internal/obs"
	"pdps/internal/rete"
	"pdps/internal/sched"
	"pdps/internal/sim"
	"pdps/internal/storage"
	"pdps/internal/trace"
	"pdps/internal/wm"
	"pdps/internal/workload"
)

// Values and working memory.
type (
	// Value is a typed working-memory scalar.
	Value = wm.Value
	// WME is a working memory element (tuple).
	WME = wm.WME
	// Store is the shared, transactional working memory.
	Store = wm.Store
	// WAL is a write-ahead log of committed working-memory deltas.
	WAL = wm.WAL
	// Delta is an atomic set of working-memory changes.
	Delta = wm.Delta
)

// Persistence: snapshots, write-ahead logging, and a file-backed
// durable store with checkpointing.
var (
	// NewWAL starts a write-ahead log on a writer.
	NewWAL = wm.NewWAL
	// ReadSnapshot reconstructs a store from a snapshot stream.
	ReadSnapshot = wm.ReadSnapshot
	// ReplayWAL applies a log's deltas to a store.
	ReplayWAL = wm.ReplayWAL
	// OpenDurable opens or initialises a file-backed store directory.
	OpenDurable = wm.OpenDurable
)

// Durable is a file-backed working memory (snapshot + log directory).
type Durable = wm.Durable

// Pluggable storage layer (Options.Storage): engines append one record
// per committed firing and group-commit fsync them; a backend recovers
// the working memory and the commit history after a crash.
type (
	// StorageBackend is the pluggable durability interface engines
	// drive (set it as Options.Storage).
	StorageBackend = storage.Backend
	// StorageRecord is one durable unit: the committed delta plus the
	// firing that produced it (empty rule name for non-firing deltas
	// such as the initial working memory).
	StorageRecord = storage.Record
	// StorageRecovery is the result of StorageBackend.Recover: the
	// reconstructed store, the durable LSN, and the commit records.
	StorageRecovery = storage.Recovery
	// LSN is a backend's log sequence number (1-based, dense).
	LSN = storage.LSN
	// MemBackend is the in-memory no-op-durability backend.
	MemBackend = storage.Mem
	// FileBackend is the segmented log-structured file backend with
	// snapshot checkpoints and log truncation.
	FileBackend = storage.File
	// FileBackendOptions tunes segment size and the auto-checkpoint
	// threshold of a FileBackend.
	FileBackendOptions = storage.FileOptions
)

var (
	// NewMemBackend returns an empty in-memory storage backend.
	NewMemBackend = storage.NewMem
	// OpenFileBackend opens or initialises a file-backend directory,
	// recovering from its newest snapshot plus the surviving log.
	OpenFileBackend = storage.OpenFile
)

// Value constructors.
var (
	// Int makes an integer value.
	Int = wm.Int
	// Float makes a floating-point value.
	Float = wm.Float
	// Str makes a string value.
	Str = wm.Str
	// Sym makes a symbol value.
	Sym = wm.Sym
	// Bool makes a boolean value.
	Bool = wm.Bool
)

// Rule IR (for building programs programmatically instead of Parse).
type (
	// Rule is a compiled production.
	Rule = match.Rule
	// Condition is one condition element of a rule's LHS.
	Condition = match.Condition
	// AttrTest constrains one attribute within a condition element.
	AttrTest = match.AttrTest
	// Action is one RHS operation.
	Action = match.Action
	// AttrAssign sets an attribute in a make/modify action.
	AttrAssign = match.AttrAssign
	// Expr is an RHS expression.
	Expr = match.Expr
	// ConstExpr is a literal expression.
	ConstExpr = match.ConstExpr
	// VarExpr references an LHS variable.
	VarExpr = match.VarExpr
	// BinExpr applies arithmetic to two subexpressions.
	BinExpr = match.BinExpr
	// Instantiation is a rule plus the WMEs satisfying its LHS.
	Instantiation = match.Instantiation
)

// Comparison operators for AttrTest.
const (
	OpEq = match.OpEq
	OpNe = match.OpNe
	OpLt = match.OpLt
	OpLe = match.OpLe
	OpGt = match.OpGt
	OpGe = match.OpGe
)

// Action kinds.
const (
	ActMake   = match.ActMake
	ActModify = match.ActModify
	ActRemove = match.ActRemove
	ActHalt   = match.ActHalt
)

// Arithmetic operators for BinExpr.
const (
	ArithAdd = match.ArithAdd
	ArithSub = match.ArithSub
	ArithMul = match.ArithMul
	ArithDiv = match.ArithDiv
	ArithMod = match.ArithMod
)

// Programs and engines.
type (
	// Program is a rule set plus initial working memory.
	Program = engine.Program
	// InitialWME declares one initial tuple.
	InitialWME = engine.InitialWME
	// Options configures an engine.
	Options = engine.Options
	// Result summarises a run.
	Result = engine.Result
	// AbortPolicy selects Rc-victim handling in the dynamic engine.
	AbortPolicy = engine.AbortPolicy
	// Strategy is a conflict-resolution strategy.
	Strategy = cr.Strategy
	// Scheme selects the lock compatibility matrix.
	Scheme = lock.Scheme
	// TraceLog is the event log of a run.
	TraceLog = trace.Log
	// TraceEvent is one logged event.
	TraceEvent = trace.Event
	// TraceKind discriminates trace event types.
	TraceKind = trace.Kind
)

// Trace event kinds.
const (
	// TraceFire records the start of a production's execution.
	TraceFire = trace.KindFire
	// TraceCommit records a successful commit.
	TraceCommit = trace.KindCommit
	// TraceAbort records an aborted firing.
	TraceAbort = trace.KindAbort
	// TraceSkip records an instantiation invalidated before execution.
	TraceSkip = trace.KindSkip
	// TraceHalt records a halt action.
	TraceHalt = trace.KindHalt
)

// Locking schemes of the dynamic engine.
const (
	// Scheme2PL is conventional two-phase locking (Section 4.2).
	Scheme2PL = lock.Scheme2PL
	// SchemeRcRaWa is the paper's improved scheme (Section 4.3).
	SchemeRcRaWa = lock.SchemeRcRaWa
)

// LockMode is one of the three lock modes of Section 4.3.
type LockMode = lock.Mode

// Lock modes.
const (
	// Rc is the condition-evaluation read lock.
	Rc = lock.Rc
	// Ra is the action-execution read lock.
	Ra = lock.Ra
	// Wa is the action-execution write lock.
	Wa = lock.Wa
)

// LockCompatible evaluates the scheme's compatibility matrix
// (Table 4.1 for SchemeRcRaWa).
var LockCompatible = lock.Compatible

// LockStats carries the lock manager's legacy counters, including the
// per-shard acquire/wait counts (shard assignment is seeded per
// manager, so these are diagnostics, not replay-stable metrics); the
// dynamic engine exposes them through its LockStats method. The
// deterministic equivalents live in the metrics registry as the
// lock_* series.
type LockStats = lock.Stats

// PipelineStats carries the dynamic engine's commit-pipeline queue
// depths (dispatch and submit, with peaks). It is a convenience view
// over the engine_dispatch_depth and engine_submit_depth gauges of
// Engine.Metrics, which supersedes it: a MetricsSnapshot carries the
// same depths plus every other series. The underlying gauges are
// atomic, so reading them while workers run is race-free.
type PipelineStats = engine.PipelineStats

// Observability (the engine metrics layer).
type (
	// Metrics is an engine's metric registry: atomic counters,
	// peak-tracking gauges, and lock-free log-scale histograms,
	// recorded into by the lock manager, the committer, the matcher
	// and working memory. Obtain it with Engine.Metrics; snapshot it
	// at any time, including mid-run.
	Metrics = obs.Registry
	// MetricsSnapshot is a structured, JSON-marshalable view of every
	// metric series at one moment. Series are sorted, all values are
	// integral, and all durations flow through Options.Clock, so under
	// a deterministic scheduler two replays of the same schedule
	// marshal to byte-identical snapshots.
	MetricsSnapshot = obs.Snapshot
	// MetricLabel is one key=value dimension of a metric series (e.g.
	// rule=advance, modes=Rc/Wa, class=part).
	MetricLabel = obs.Label
	// MetricPoint types of a snapshot.

	// CounterPoint is a counter's snapshot value.
	CounterPoint = obs.CounterPoint
	// GaugePoint is a gauge's snapshot value and peak.
	GaugePoint = obs.GaugePoint
	// HistogramPoint is a histogram's snapshot: count, sum, extrema
	// and the non-empty log-scale buckets.
	HistogramPoint = obs.HistogramPoint
)

// NewMetricLabel constructs a MetricLabel for snapshot lookups, e.g.
// snap.Counter("lock_conflicts_total", pdps.NewMetricLabel("modes", "Rc/Wa")).
var NewMetricLabel = obs.L

// NewMetrics returns an empty metrics registry. Pass it as
// Options.Metrics to aggregate several engines into one snapshot; by
// default each engine creates its own.
var NewMetrics = obs.NewRegistry

// DeadlockPolicy selects the dynamic engine's deadlock handling.
type DeadlockPolicy = lock.DeadlockPolicy

// Deadlock policies.
const (
	// DeadlockDetect aborts the youngest transaction of a waits-for cycle.
	DeadlockDetect = lock.DeadlockDetect
	// DeadlockWoundWait is the preemptive prevention scheme.
	DeadlockWoundWait = lock.DeadlockWoundWait
	// DeadlockWaitDie is the non-preemptive prevention scheme.
	DeadlockWaitDie = lock.DeadlockWaitDie
)

// Abort policies (Section 4.3 rule (ii) and its noted alternative).
const (
	AbortAlways     = engine.AbortAlways
	AbortReevaluate = engine.AbortReevaluate
)

// ErrInconsistent reports a semantic-consistency violation.
var ErrInconsistent = engine.ErrInconsistent

// Deterministic scheduling and testing (Options.Clock / Options.Sched).
type (
	// Clock supplies time to an engine: backoff timers and simulated
	// rule costs go through it (Options.Clock).
	Clock = sched.Clock
	// Scheduler is the deterministic cooperative scheduler: set it as
	// Options.Sched and call Engine.Run inside Scheduler.Run to make a
	// whole concurrent run a pure function of a SchedPolicy.
	Scheduler = sched.Det
	// SchedPolicy decides which runnable task runs at each scheduling
	// decision point.
	SchedPolicy = sched.Policy
	// SchedChoice records one scheduling decision for replay.
	SchedChoice = sched.Choice
	// DetConfig selects the engine variant a deterministic run tests.
	DetConfig = detsched.Config
	// DetOutcome is one deterministic run's result.
	DetOutcome = detsched.RunOutcome
	// ExploreReport summarises an exhaustive schedule exploration.
	ExploreReport = detsched.ExploreReport
)

var (
	// RealClock is the wall clock (the default).
	RealClock = sched.Real{}
	// ImmediateClock collapses every delay: sleeps return at once and
	// timers fire immediately — fast deterministic-ish tests without a
	// full scheduler.
	ImmediateClock = sched.Immediate{}
	// NewScheduler builds a deterministic scheduler around a policy.
	NewScheduler = sched.NewDet
	// NewRandomSchedPolicy is a seeded uniform-random schedule sampler;
	// the same seed replays the same schedule bit-for-bit.
	NewRandomSchedPolicy = sched.NewRandom
	// NewPCTSchedPolicy is a PCT-style priority schedule sampler.
	NewPCTSchedPolicy = sched.NewPCT
	// NewReplaySchedPolicy replays a recorded decision script.
	NewReplaySchedPolicy = sched.NewReplay
	// DetRun executes a program once on the dynamic engine under a
	// scheduling policy and returns the outcome.
	DetRun = detsched.Run
	// DetCheck validates a deterministic run's commit trace against the
	// single-thread execution semantics.
	DetCheck = detsched.Check
	// Explore exhaustively enumerates every schedule of a small program
	// and checks each trace (Definition 3.2 as a proof procedure).
	Explore = detsched.Explore
)

// Engine runs a production-system program. Implementations are the
// single execution thread mechanism (Section 3.1, the ES_single
// reference semantics), the dynamic locking mechanism (Sections
// 4.2–4.3) and the static interference-partition mechanism
// (Section 4.1, Theorem 1); all commit sequences they produce satisfy
// the semantic-consistency condition of Definition 3.2.
type Engine interface {
	// Run executes the program to quiescence, halt, error or limit.
	Run() (Result, error)
	// Store returns the engine's working memory.
	Store() *Store
	// Metrics returns the engine's metrics registry. Snapshots taken
	// while Run is in flight are race-free.
	Metrics() *Metrics
}

// NewSingleEngine builds the single execution thread interpreter.
func NewSingleEngine(p Program, opts Options) (Engine, error) {
	return engine.NewSingle(p, opts)
}

// NewParallelEngine builds the dynamic multiple-thread interpreter
// using the given locking scheme.
func NewParallelEngine(p Program, scheme Scheme, opts Options) (Engine, error) {
	return engine.NewParallel(p, scheme, opts)
}

// NewStaticEngine builds the static-partition multiple-thread
// interpreter (pre-execution interference analysis, Theorem 1).
func NewStaticEngine(p Program, opts Options) (Engine, error) {
	return engine.NewStatic(p, opts)
}

// Session is an interactive single-thread interpreter: assert and
// retract tuples between firings, inspect the conflict set, and step
// the recognize-act cycle (the substrate of cmd/psshell).
type Session struct {
	*engine.Session
}

// NewSession builds an interactive session over the program.
func NewSession(p Program, opts Options) (*Session, error) {
	s, err := engine.NewSession(p, opts)
	if err != nil {
		return nil, err
	}
	return &Session{Session: s}, nil
}

// Assert parses a tuple literal "(class ^attr value ...)" and adds it
// to working memory.
func (s *Session) Assert(src string) error {
	w, err := lang.ParseWME(src)
	if err != nil {
		return err
	}
	s.AssertWME(w.Class, w.Attrs)
	return nil
}

// NewStrategy returns the named conflict-resolution strategy: "lex",
// "mea", "fifo", "priority" or "random".
var NewStrategy = cr.New

// NewRandomStrategy returns a seeded random strategy (reproducible).
var NewRandomStrategy = cr.NewRandom

// Parse reads a program in the rule language.
var Parse = lang.Parse

// MustParse parses or panics.
var MustParse = lang.MustParse

// Format renders a program in the rule language (round-trips).
var Format = lang.Format

// CheckTrace verifies a commit sequence against the single-thread
// execution semantics (Definition 3.2).
var CheckTrace = engine.CheckTrace

// CheckTraceFrom is CheckTrace starting from an arbitrary working
// memory — the form crash recovery needs to validate a post-checkpoint
// trace tail.
var CheckTraceFrom = engine.CheckTraceFrom

// Interferes reports the static interference relation between rules
// (read-write or write-write overlap, Section 4.1).
var Interferes = match.Interferes

// RWSet is a rule's static read/write set over (class, attribute)
// columns.
type RWSet = match.RWSet

// RuleRWSet computes a rule's static read/write sets (Section 4.1).
var RuleRWSet = match.RuleRWSet

// ReteNetwork is a compiled Rete match network (topology, Dot
// rendering and join plans are exposed for analysis tooling).
type ReteNetwork = rete.Network

// RetePlan is one rule's compiled join order with its sharing and
// cost diagnostics (ReteNetwork.Plans).
type RetePlan = rete.RulePlan

// Matcher is the incremental match interface every engine drives.
type Matcher = match.Matcher

// Matcher construction (for match-phase experiments; engines normally
// select a matcher by name via Options.Matcher).
var (
	// NewReteNetwork returns an empty hashed-memory Rete network with
	// cost-ordered joins and beta-prefix sharing.
	NewReteNetwork = rete.New
	// NewSourceOrderReteNetwork returns the indexed network compiling
	// joins in rule-source order (the before-side of the E21 planning
	// experiment).
	NewSourceOrderReteNetwork = rete.NewSourceOrder
	// NewLinearReteNetwork returns the unindexed baseline Rete network
	// (the before-side of the E17 indexing experiment).
	NewLinearReteNetwork = rete.NewLinear
	// NewStore returns an empty working-memory store.
	NewStore = wm.NewStore
)

// CompileRete compiles the program's rules into a Rete network and
// seeds it with the initial working memory.
func CompileRete(p Program) (*ReteNetwork, error) {
	n := rete.New()
	for _, r := range p.Rules {
		if err := n.AddRule(r); err != nil {
			return nil, err
		}
	}
	s := wm.NewStore()
	for _, iw := range p.WMEs {
		n.Insert(s.Insert(iw.Class, iw.Attrs))
	}
	return n, nil
}

// Abstract model (Section 3) and multiprocessor simulator (Section 5).
type (
	// System is an abstract production system over add/delete sets.
	System = core.System
	// AbstractProduction is one abstract production.
	AbstractProduction = core.Production
	// SimConfig parameterises a simulator run.
	SimConfig = sim.Config
	// SimResult is the simulator's outcome (σ, timings, speedup).
	SimResult = sim.Result
)

// NewSystem builds an abstract system.
var NewSystem = core.NewSystem

// Simulate runs the Section 5 multiprocessor model.
var Simulate = sim.Run

// Paper fixtures and workload generators.
var (
	// Fig32System is the Section 3.3 execution-graph example.
	Fig32System = workload.Fig32System
	// Fig51System is the Section 5 base case.
	Fig51System = workload.Fig51System
	// Fig52System is the degree-of-conflict variation.
	Fig52System = workload.Fig52System
	// Fig53System is the execution-time variation.
	Fig53System = workload.Fig53System
	// Fig54Np is the processor count of the Figure 5.4 variation.
	Fig54Np = workload.Fig54Np
	// Pipeline generates the embarrassingly parallel parts workload.
	Pipeline = workload.Pipeline
	// SharedCounter generates the high-conflict tally workload.
	SharedCounter = workload.SharedCounter
	// JoinHeavy generates the match-bound deep-join workload.
	JoinHeavy = workload.JoinHeavy
	// JoinHeavyMisordered generates the adversarially-ordered join
	// workload the static planner fixes (E21).
	JoinHeavyMisordered = workload.JoinHeavyMisordered
	// JoinHeavySkewed generates the run-time-skewed join workload only
	// adaptive replanning fixes (E21).
	JoinHeavySkewed = workload.JoinHeavySkewed
	// ManyRulesFanout generates the wide single-CE rule-set workload
	// the shared alpha discrimination network answers in O(1) per
	// assert where the linear alpha walk pays O(rules) (E22).
	ManyRulesFanout = workload.ManyRulesFanout
	// Independent generates the pairwise non-interfering counter
	// workload — the elision-friendly extreme of the hybrid scheme.
	Independent = workload.Independent
	// Guarded generates a workload with negated conditions.
	Guarded = workload.Guarded
	// RandomProgram generates random terminating concrete programs.
	RandomProgram = workload.RandomProgram
	// RandomAbstract generates random terminating abstract systems.
	RandomAbstract = workload.RandomAbstract
	// ConflictChain generates abstract systems with tunable conflict.
	ConflictChain = workload.ConflictChain
)
