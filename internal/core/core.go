// Package core implements the paper's formal execution-semantics model
// (Section 3): abstract productions characterised by add and delete
// sets over the conflict set, system states, the execution graph rooted
// at the initial state (Figure 3.1), enumeration of the single-thread
// execution semantics ES_single, and the semantic-consistency check of
// Definition 3.2 — the oracle every parallel execution mechanism in
// this repository is validated against.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Production is an abstract production P_i: firing it removes itself
// and its delete set from the conflict set and inserts its add set
// (Section 3.3). Time is its execution duration in abstract time units,
// used by the Section 5 speed-up analysis.
type Production struct {
	Name string
	Add  []string
	Del  []string
	Time int
}

// System is an abstract production system: a set of productions and an
// initial conflict set.
type System struct {
	prods   map[string]*Production
	order   []string // declaration order, for deterministic iteration
	initial []string
}

// NewSystem builds a system after validating that production names are
// unique and that add/delete sets and the initial conflict set refer
// only to declared productions.
func NewSystem(prods []*Production, initial []string) (*System, error) {
	s := &System{prods: make(map[string]*Production, len(prods))}
	for _, p := range prods {
		if p.Name == "" {
			return nil, fmt.Errorf("core: production with empty name")
		}
		if _, dup := s.prods[p.Name]; dup {
			return nil, fmt.Errorf("core: duplicate production %s", p.Name)
		}
		s.prods[p.Name] = p
		s.order = append(s.order, p.Name)
	}
	check := func(kind, owner string, names []string) error {
		for _, n := range names {
			if _, ok := s.prods[n]; !ok {
				return fmt.Errorf("core: %s set of %s references unknown production %s", kind, owner, n)
			}
		}
		return nil
	}
	for _, p := range prods {
		if err := check("add", p.Name, p.Add); err != nil {
			return nil, err
		}
		if err := check("delete", p.Name, p.Del); err != nil {
			return nil, err
		}
	}
	if err := check("initial", "system", initial); err != nil {
		return nil, err
	}
	s.initial = normalize(initial)
	return s, nil
}

// Production returns the named production.
func (s *System) Production(name string) (*Production, bool) {
	p, ok := s.prods[name]
	return p, ok
}

// Productions returns all productions in declaration order.
func (s *System) Productions() []*Production {
	out := make([]*Production, len(s.order))
	for i, n := range s.order {
		out[i] = s.prods[n]
	}
	return out
}

// Initial returns the initial conflict set (sorted, deduplicated).
func (s *System) Initial() []string {
	return append([]string(nil), s.initial...)
}

// State is a conflict set: a sorted, deduplicated list of active
// production names. States are treated as immutable values.
type State []string

func normalize(names []string) State {
	seen := make(map[string]bool, len(names))
	out := make(State, 0, len(names))
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Key returns the canonical string form of the state.
func (st State) Key() string { return strings.Join(st, ",") }

// Contains reports whether the production is active in this state.
func (st State) Contains(name string) bool {
	i := sort.SearchStrings(st, name)
	return i < len(st) && st[i] == name
}

// Empty reports the termination condition: an empty conflict set.
func (st State) Empty() bool { return len(st) == 0 }

// Step fires the named production in the state: the production leaves
// the conflict set, its delete set is subtracted and its add set is
// united in. Firing an inactive production is an error — exactly the
// situation a semantically inconsistent parallel execution produces.
func (s *System) Step(st State, name string) (State, error) {
	p, ok := s.prods[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown production %s", name)
	}
	if !st.Contains(name) {
		return nil, fmt.Errorf("core: production %s fired while not in conflict set {%s}", name, st.Key())
	}
	drop := map[string]bool{name: true}
	for _, d := range p.Del {
		drop[d] = true
	}
	next := make([]string, 0, len(st)+len(p.Add))
	for _, n := range st {
		if !drop[n] {
			next = append(next, n)
		}
	}
	next = append(next, p.Add...)
	return normalize(next), nil
}

// Replay runs a sequence of firings from the initial state, returning
// the reached state. It fails at the first firing of an inactive
// production.
func (s *System) Replay(seq []string) (State, error) {
	st := State(s.Initial())
	for i, name := range seq {
		next, err := s.Step(st, name)
		if err != nil {
			return nil, fmt.Errorf("core: step %d: %w", i+1, err)
		}
		st = next
	}
	return st, nil
}

// IsValidSequence implements the semantic-consistency condition of
// Definition 3.2 for a single sequence: it reports whether seq is a
// root-originating path of the execution graph (equivalently, a valid
// prefix of a single-thread execution).
func (s *System) IsValidSequence(seq []string) bool {
	_, err := s.Replay(seq)
	return err == nil
}

// ExplainInvalid returns nil if the sequence is valid, or the error
// describing the first invalid firing.
func (s *System) ExplainInvalid(seq []string) error {
	_, err := s.Replay(seq)
	return err
}
