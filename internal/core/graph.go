package core

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is the execution graph of Figure 3.1: nodes are reachable
// system states, and each node has one outgoing edge per production in
// its conflict set. The single-thread execution semantics ES_single is
// the set of root-originating paths (and their prefixes).
type Graph struct {
	sys   *System
	Root  string
	Nodes map[string]*Node
	// Truncated reports that exploration hit the depth bound before
	// exhausting the graph (possible with self-re-adding productions,
	// whose execution graphs are infinite).
	Truncated bool
}

// Node is one state of the execution graph.
type Node struct {
	State State
	// Edges maps a fired production name to the successor state key.
	Edges map[string]string
}

// BuildGraph explores the execution graph breadth-first from the
// initial state. maxDepth bounds the exploration (path length); pass a
// depth at least as large as the longest terminating sequence to get
// the complete graph for terminating systems.
func (s *System) BuildGraph(maxDepth int) *Graph {
	g := &Graph{sys: s, Nodes: make(map[string]*Node)}
	root := State(s.Initial())
	g.Root = root.Key()

	type item struct {
		st    State
		depth int
	}
	queue := []item{{root, 0}}
	g.Nodes[root.Key()] = &Node{State: root, Edges: make(map[string]string)}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		node := g.Nodes[it.st.Key()]
		if it.depth >= maxDepth {
			if len(it.st) > 0 {
				g.Truncated = true
			}
			continue
		}
		for _, name := range it.st {
			next, err := s.Step(it.st, name)
			if err != nil {
				// Unreachable: name comes from the state itself.
				panic(err)
			}
			node.Edges[name] = next.Key()
			if _, seen := g.Nodes[next.Key()]; !seen {
				g.Nodes[next.Key()] = &Node{State: next, Edges: make(map[string]string)}
				queue = append(queue, item{next, it.depth + 1})
			}
		}
	}
	return g
}

// Sequences enumerates root-originating paths of the execution graph up
// to maxLen firings. If maximalOnly is true, only paths ending in the
// empty conflict set (completed executions) are returned; otherwise
// every prefix is included — the full ES_single up to the bound.
// Results are sorted lexicographically for determinism.
func (s *System) Sequences(maxLen int, maximalOnly bool) [][]string {
	var out [][]string
	var walk func(st State, path []string)
	walk = func(st State, path []string) {
		if st.Empty() {
			out = append(out, append([]string(nil), path...))
			return
		}
		if !maximalOnly && len(path) > 0 {
			out = append(out, append([]string(nil), path...))
		}
		if len(path) == maxLen {
			return
		}
		for _, name := range st {
			next, err := s.Step(st, name)
			if err != nil {
				panic(err)
			}
			walk(next, append(path, name))
		}
	}
	walk(State(s.Initial()), nil)
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i], " ") < strings.Join(out[j], " ")
	})
	return out
}

// CompletedSequences returns the maximal sequences (ending in an empty
// conflict set) up to maxLen firings — the executions the paper lists
// for its Section 3.3 example.
func (s *System) CompletedSequences(maxLen int) [][]string {
	return s.Sequences(maxLen, true)
}

// Dot renders the graph in Graphviz dot syntax (for inspection of the
// Figure 3.2 reproduction).
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph execution {\n  rankdir=TB;\n")
	keys := make([]string, 0, len(g.Nodes))
	for k := range g.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		label := k
		if label == "" {
			label = "∅"
		}
		fmt.Fprintf(&b, "  %q [label=%q];\n", k, "{"+label+"}")
	}
	for _, k := range keys {
		n := g.Nodes[k]
		edges := make([]string, 0, len(n.Edges))
		for p := range n.Edges {
			edges = append(edges, p)
		}
		sort.Strings(edges)
		for _, p := range edges {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", k, n.Edges[p], p)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// PathCount returns the number of root-originating paths of exactly
// the given length (walking edges, counting multiplicity).
func (g *Graph) PathCount(length int) int {
	var count func(key string, remaining int) int
	count = func(key string, remaining int) int {
		if remaining == 0 {
			return 1
		}
		n := g.Nodes[key]
		total := 0
		for _, next := range n.Edges {
			total += count(next, remaining-1)
		}
		return total
	}
	return count(g.Root, length)
}
