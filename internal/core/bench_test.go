package core

import (
	"fmt"
	"testing"
)

func benchSystem(b *testing.B, n int) *System {
	b.Helper()
	prods := make([]*Production, n)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("P%d", i+1)
	}
	for i := range prods {
		p := &Production{Name: names[i], Time: 1 + i%4}
		if i+1 < n {
			p.Del = append(p.Del, names[i+1])
		}
		if i+3 < n {
			p.Add = append(p.Add, names[i+3])
		}
		prods[i] = p
	}
	s, err := NewSystem(prods, names[:n/2])
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkStep(b *testing.B) {
	s := benchSystem(b, 16)
	st := State(s.Initial())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, err := s.Step(st, st[i%len(st)])
		if err != nil {
			b.Fatal(err)
		}
		_ = next
	}
}

func BenchmarkBuildGraph(b *testing.B) {
	s := benchSystem(b, 10)
	var nodes int
	for i := 0; i < b.N; i++ {
		g := s.BuildGraph(12)
		nodes = len(g.Nodes)
	}
	b.ReportMetric(float64(nodes), "states")
}

func BenchmarkIsValidSequence(b *testing.B) {
	s := benchSystem(b, 16)
	// Build a long valid sequence by always firing the first active
	// production.
	var seq []string
	st := State(s.Initial())
	for len(st) > 0 && len(seq) < 64 {
		seq = append(seq, st[0])
		next, err := s.Step(st, st[0])
		if err != nil {
			b.Fatal(err)
		}
		st = next
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.IsValidSequence(seq) {
			b.Fatal("sequence became invalid")
		}
	}
	b.ReportMetric(float64(len(seq)), "steps")
}
