package core

import (
	"strings"
	"testing"
	"testing/quick"
)

// sys33 is the Section 3.3-style example system used across core
// tests: six productions with add/delete sets, initial conflict set
// {P1,P2,P3,P5}.
func sys33(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem([]*Production{
		{Name: "P1", Add: []string{"P4"}, Del: []string{"P2", "P3"}},
		{Name: "P2", Add: []string{"P4"}, Del: []string{"P1"}},
		{Name: "P3"},
		{Name: "P4", Add: []string{"P6"}, Del: []string{"P5"}},
		{Name: "P5", Del: []string{"P4"}},
		{Name: "P6"},
	}, []string{"P1", "P2", "P3", "P5"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem([]*Production{{Name: ""}}, nil); err == nil {
		t.Error("empty name must be rejected")
	}
	if _, err := NewSystem([]*Production{{Name: "P"}, {Name: "P"}}, nil); err == nil {
		t.Error("duplicate name must be rejected")
	}
	if _, err := NewSystem([]*Production{{Name: "P", Add: []string{"Q"}}}, nil); err == nil {
		t.Error("unknown add reference must be rejected")
	}
	if _, err := NewSystem([]*Production{{Name: "P", Del: []string{"Q"}}}, nil); err == nil {
		t.Error("unknown delete reference must be rejected")
	}
	if _, err := NewSystem([]*Production{{Name: "P"}}, []string{"Q"}); err == nil {
		t.Error("unknown initial reference must be rejected")
	}
}

func TestStepSemantics(t *testing.T) {
	s := sys33(t)
	st := State(s.Initial())
	if got := st.Key(); got != "P1,P2,P3,P5" {
		t.Fatalf("initial = %s", got)
	}
	// Fire P1: removes itself and {P2,P3}, adds P4.
	st2, err := s.Step(st, "P1")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Key() != "P4,P5" {
		t.Fatalf("after P1: %s, want P4,P5", st2.Key())
	}
	// Firing an inactive production is the consistency violation.
	if _, err := s.Step(st2, "P2"); err == nil {
		t.Fatal("firing inactive production must error")
	}
	if _, err := s.Step(st2, "nope"); err == nil {
		t.Fatal("unknown production must error")
	}
	// Original state is unchanged (immutability).
	if st.Key() != "P1,P2,P3,P5" {
		t.Fatal("Step mutated its input state")
	}
}

func TestReplayAndValidity(t *testing.T) {
	s := sys33(t)
	// P1 P4 P6: P1 -> {P4,P5}; P4 deletes P5, adds P6 -> {P6}; P6 -> {}.
	final, err := s.Replay([]string{"P1", "P4", "P6"})
	if err != nil {
		t.Fatal(err)
	}
	if !final.Empty() {
		t.Fatalf("final state = {%s}, want empty", final.Key())
	}
	if !s.IsValidSequence([]string{"P1", "P4", "P6"}) {
		t.Fatal("valid sequence rejected")
	}
	if !s.IsValidSequence([]string{"P1", "P4"}) {
		t.Fatal("prefixes of valid sequences are valid (Definition 3.1)")
	}
	if s.IsValidSequence([]string{"P4"}) {
		t.Fatal("P4 is not initially active")
	}
	if s.IsValidSequence([]string{"P1", "P2"}) {
		t.Fatal("P2 is deleted by P1's firing")
	}
	if err := s.ExplainInvalid([]string{"P1", "P2"}); err == nil ||
		!strings.Contains(err.Error(), "P2") {
		t.Fatalf("ExplainInvalid = %v", err)
	}
	if err := s.ExplainInvalid([]string{"P1", "P4", "P6"}); err != nil {
		t.Fatalf("ExplainInvalid on valid sequence = %v", err)
	}
}

func TestSequencesPrefixClosure(t *testing.T) {
	s := sys33(t)
	all := s.Sequences(10, false)
	seen := make(map[string]bool, len(all))
	for _, seq := range all {
		seen[strings.Join(seq, " ")] = true
	}
	// Every prefix of every listed sequence is itself listed.
	for _, seq := range all {
		for i := 1; i < len(seq); i++ {
			if !seen[strings.Join(seq[:i], " ")] {
				t.Fatalf("prefix %v of %v missing from ES", seq[:i], seq)
			}
		}
	}
	// And every listed sequence replays successfully.
	for _, seq := range all {
		if !s.IsValidSequence(seq) {
			t.Fatalf("enumerated sequence %v is invalid", seq)
		}
	}
}

func TestCompletedSequencesTerminate(t *testing.T) {
	s := sys33(t)
	done := s.CompletedSequences(10)
	if len(done) == 0 {
		t.Fatal("no completed sequences found")
	}
	for _, seq := range done {
		final, err := s.Replay(seq)
		if err != nil {
			t.Fatal(err)
		}
		if !final.Empty() {
			t.Fatalf("completed sequence %v ends in {%s}", seq, final.Key())
		}
	}
	// The system is deterministic: enumerating twice gives identical output.
	again := s.CompletedSequences(10)
	if len(again) != len(done) {
		t.Fatal("non-deterministic enumeration")
	}
}

func TestBuildGraph(t *testing.T) {
	s := sys33(t)
	g := s.BuildGraph(10)
	if g.Truncated {
		t.Fatal("terminating system must not truncate at depth 10")
	}
	if g.Root != "P1,P2,P3,P5" {
		t.Fatalf("root = %s", g.Root)
	}
	// The empty state is reachable and has no outgoing edges.
	empty, ok := g.Nodes[""]
	if !ok {
		t.Fatal("empty state unreachable")
	}
	if len(empty.Edges) != 0 {
		t.Fatal("empty state must be terminal")
	}
	// Every edge is a legal Step.
	for key, n := range g.Nodes {
		for p, next := range n.Edges {
			st, err := s.Step(n.State, p)
			if err != nil {
				t.Fatalf("edge %s -%s-> invalid: %v", key, p, err)
			}
			if st.Key() != next {
				t.Fatalf("edge %s -%s-> %s, Step gives %s", key, p, next, st.Key())
			}
		}
	}
	// Root-originating path counts match direct enumeration.
	for l := 1; l <= 4; l++ {
		want := 0
		for _, seq := range s.Sequences(l, false) {
			if len(seq) == l {
				want++
			}
		}
		if got := g.PathCount(l); got != want {
			t.Fatalf("PathCount(%d) = %d, want %d", l, got, want)
		}
	}
}

func TestGraphTruncation(t *testing.T) {
	// A self-re-adding production has an infinite execution graph.
	s, err := NewSystem([]*Production{
		{Name: "P", Add: []string{"P"}},
	}, []string{"P"})
	if err != nil {
		t.Fatal(err)
	}
	g := s.BuildGraph(3)
	if g.Truncated {
		// {P} -> {P}: only one node, exploration completes: should NOT
		// truncate since the state was already seen.
		t.Fatal("single-state loop should not truncate")
	}
	if !s.IsValidSequence([]string{"P", "P", "P", "P"}) {
		t.Fatal("repeated firing of self-re-adding production is valid")
	}
	// Sequences at maxLen stop cleanly.
	seqs := s.Sequences(3, false)
	if len(seqs) != 3 {
		t.Fatalf("got %d sequences, want 3 (P, PP, PPP)", len(seqs))
	}
}

func TestGraphDot(t *testing.T) {
	s := sys33(t)
	dot := s.BuildGraph(10).Dot()
	for _, frag := range []string{"digraph", `"P1,P2,P3,P5"`, "label=\"P1\""} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("Dot output missing %q", frag)
		}
	}
}

// TestStepCommutesForIndependentProductions property-tests Theorem 1's
// core step: if two active productions do not mention each other in
// add/delete sets, firing them in either order reaches the same state.
func TestStepCommutesForIndependentProductions(t *testing.T) {
	s := sys33(t)
	f := func() bool {
		st := State(s.Initial())
		// P3 and P5 are independent of each other in sys33.
		a, err1 := s.Step(st, "P3")
		if err1 != nil {
			return false
		}
		ab, err2 := s.Step(a, "P5")
		if err2 != nil {
			return false
		}
		b, err3 := s.Step(st, "P5")
		if err3 != nil {
			return false
		}
		ba, err4 := s.Step(b, "P3")
		if err4 != nil {
			return false
		}
		return ab.Key() == ba.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestProductionsAccessors(t *testing.T) {
	s := sys33(t)
	ps := s.Productions()
	if len(ps) != 6 || ps[0].Name != "P1" || ps[5].Name != "P6" {
		t.Fatalf("Productions order wrong: %v", ps)
	}
	if _, ok := s.Production("P3"); !ok {
		t.Fatal("Production lookup failed")
	}
	if _, ok := s.Production("nope"); ok {
		t.Fatal("unknown production found")
	}
	init := s.Initial()
	init[0] = "mutated"
	if s.Initial()[0] == "mutated" {
		t.Fatal("Initial must return a copy")
	}
}
