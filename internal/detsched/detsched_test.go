package detsched

import (
	"reflect"
	"strings"
	"testing"

	"pdps/internal/engine"
	"pdps/internal/lock"
	"pdps/internal/match"
	"pdps/internal/sched"
	"pdps/internal/trace"
	"pdps/internal/wm"
	"pdps/internal/workload"
)

func attrs(kv ...interface{}) map[string]wm.Value {
	out := make(map[string]wm.Value)
	for i := 0; i < len(kv); i += 2 {
		k := kv[i].(string)
		switch v := kv[i+1].(type) {
		case int:
			out[k] = wm.Int(int64(v))
		case bool:
			out[k] = wm.Bool(v)
		case string:
			out[k] = wm.Sym(v)
		default:
			panic("attrs: unsupported value")
		}
	}
	return out
}

// fig44Program is the circular Rc/Wa dependency of Figure 4.4: rule pi
// reads q and writes r, pj reads r and writes q; each commit falsifies
// the other rule, so every consistent execution commits exactly once.
func fig44Program() engine.Program {
	mk := func(name, readClass, writeClass string) *match.Rule {
		return &match.Rule{
			Name: name,
			Conditions: []match.Condition{
				{Class: readClass, Tests: []match.AttrTest{{Attr: "hot", Op: match.OpEq, Const: wm.Bool(true)}}},
				{Class: writeClass, Tests: []match.AttrTest{{Attr: "hot", Op: match.OpEq, Const: wm.Bool(true)}}},
			},
			Actions: []match.Action{{Kind: match.ActModify, CE: 1, Assigns: []match.AttrAssign{
				{Attr: "hot", Expr: match.ConstExpr{Val: wm.Bool(false)}}}}},
		}
	}
	return engine.Program{
		Rules: []*match.Rule{mk("pi", "q", "r"), mk("pj", "r", "q")},
		WMEs: []engine.InitialWME{
			{Class: "q", Attrs: attrs("hot", true)},
			{Class: "r", Attrs: attrs("hot", true)},
		},
	}
}

// rcWaProgram exercises the Rc–Wa abort rule (Section 4.3, rule (ii)):
// the reader holds a pure Rc on its matched job tuple (it writes only
// the slot class) while the producer makes a new job tuple — a
// relation-level Wa conflicting with the reader's Rc without ever
// falsifying its condition. Every consistent execution commits both
// rules exactly once.
func rcWaProgram() engine.Program {
	reader := &match.Rule{
		Name: "reader",
		Conditions: []match.Condition{
			{Class: "job", Tests: []match.AttrTest{{Attr: "id", Op: match.OpEq, Const: wm.Int(1)}}},
			{Class: "slot", Tests: []match.AttrTest{{Attr: "used", Op: match.OpEq, Const: wm.Bool(false)}}},
		},
		Actions: []match.Action{{Kind: match.ActModify, CE: 1, Assigns: []match.AttrAssign{
			{Attr: "used", Expr: match.ConstExpr{Val: wm.Bool(true)}}}}},
	}
	producer := &match.Rule{
		Name: "producer",
		Conditions: []match.Condition{
			{Class: "seed", Tests: []match.AttrTest{{Attr: "fresh", Op: match.OpEq, Const: wm.Bool(true)}}},
		},
		Actions: []match.Action{
			{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
				{Attr: "fresh", Expr: match.ConstExpr{Val: wm.Bool(false)}}}},
			{Kind: match.ActMake, Class: "job", Assigns: []match.AttrAssign{
				{Attr: "id", Expr: match.ConstExpr{Val: wm.Int(99)}}}},
		},
	}
	return engine.Program{
		Rules: []*match.Rule{reader, producer},
		WMEs: []engine.InitialWME{
			{Class: "job", Attrs: attrs("id", 1)},
			{Class: "slot", Attrs: attrs("used", false)},
			{Class: "seed", Attrs: attrs("fresh", true)},
		},
	}
}

// counterProgram is a maximally contended counter: two single-CE rules
// race to bump the same tuple, so every firing takes Rc and Wa on the
// one shared resource and the schemes' abort rules fire constantly.
// Every consistent execution commits both rules exactly once, in
// either order.
func counterProgram() engine.Program {
	mk := func(name, flag string) *match.Rule {
		return &match.Rule{
			Name: name,
			Conditions: []match.Condition{
				{Class: "n", Tests: []match.AttrTest{
					{Attr: flag, Op: match.OpEq, Const: wm.Bool(false)},
					{Attr: "v", Op: match.OpEq, Var: "x"},
				}},
			},
			Actions: []match.Action{{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
				{Attr: flag, Expr: match.ConstExpr{Val: wm.Bool(true)}},
				{Attr: "v", Expr: match.BinExpr{Op: match.ArithAdd,
					L: match.VarExpr{Name: "x"}, R: match.ConstExpr{Val: wm.Int(1)}}},
			}}},
		}
	}
	return engine.Program{
		Rules: []*match.Rule{mk("bump_a", "a"), mk("bump_b", "b")},
		WMEs: []engine.InitialWME{
			{Class: "n", Attrs: attrs("v", 0, "a", false, "b", false)},
		},
	}
}

// renderEvents flattens a trace for bit-for-bit comparison, excluding
// only the wall-clock At timestamps.
func renderEvents(log *trace.Log) []string {
	evs := log.Events()
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = strings.Join([]string{
			ev.Kind.String(), ev.Rule, ev.Inst, ev.Detail, strings.Join(ev.WMEs, ","),
		}, "|")
	}
	return out
}

// TestSeededRunReproducible replays the same seed twice on both
// locking schemes and requires bit-for-bit identical traces and
// decision sequences — the acceptance criterion for seeded replay.
func TestSeededRunReproducible(t *testing.T) {
	prog := workload.SharedCounter(3, 2)
	for _, scheme := range []lock.Scheme{lock.Scheme2PL, lock.SchemeRcRaWa} {
		t.Run(scheme.String(), func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				cfg := Config{Scheme: scheme, Np: 3}
				a := Run(prog, cfg, sched.NewRandom(seed))
				b := Run(prog, cfg, sched.NewRandom(seed))
				if err := Check(prog, a); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !reflect.DeepEqual(a.Choices, b.Choices) {
					t.Fatalf("seed %d: decision sequences differ", seed)
				}
				ra, rb := renderEvents(a.Result.Log), renderEvents(b.Result.Log)
				if !reflect.DeepEqual(ra, rb) {
					t.Fatalf("seed %d: traces differ:\n%v\nvs\n%v", seed, ra, rb)
				}
				if a.Result.Firings != 6 {
					t.Fatalf("seed %d: firings = %d, want 6", seed, a.Result.Firings)
				}
			}
		})
	}
}

// TestSeededRunsDiffer sanity-checks that the harness actually
// explores: across seeds, the shared-counter program must realise more
// than one distinct serialization.
func TestSeededRunsDiffer(t *testing.T) {
	prog := workload.SharedCounter(3, 2)
	seqs := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		out := Run(prog, Config{Scheme: lock.Scheme2PL, Np: 3}, sched.NewRandom(seed))
		if err := Check(prog, out); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seqs[SeqKey(out.Commits())] = true
	}
	if len(seqs) < 2 {
		t.Fatalf("20 seeds produced %d distinct serializations; scheduler not exploring", len(seqs))
	}
}

// TestPCTPolicyRuns drives the engine under PCT sampling: every
// sampled schedule must complete and pass the oracle.
func TestPCTPolicyRuns(t *testing.T) {
	prog := fig44Program()
	for seed := int64(0); seed < 10; seed++ {
		out := Run(prog, Config{Scheme: lock.Scheme2PL, Np: 2}, sched.NewPCT(seed, 0.1))
		if err := Check(prog, out); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Result.Firings != 1 {
			t.Fatalf("seed %d: firings = %d, want 1", seed, out.Result.Firings)
		}
	}
}

// TestExhaustiveConsistency is the Definition 3.2 acceptance check:
// for three small conflict-heavy programs (the Figure 4.4 deadlock
// pair, the Rc–Wa abort-rule program, and a shared-counter workload),
// under both 2PL and the improved scheme, EVERY schedule the engine
// can produce yields a commit trace admitted by the single-thread
// execution graph (engine.CheckTrace inside Explore).
func TestExhaustiveConsistency(t *testing.T) {
	cases := []struct {
		name    string
		prog    engine.Program
		firings int
	}{
		{"fig44", fig44Program(), 1},
		{"rcwa", rcWaProgram(), 2},
		{"counter", counterProgram(), 2},
	}
	const cap = 6000
	for _, tc := range cases {
		for _, scheme := range []lock.Scheme{lock.Scheme2PL, lock.SchemeRcRaWa} {
			t.Run(tc.name+"/"+scheme.String(), func(t *testing.T) {
				rep, err := Explore(tc.prog, Config{Scheme: scheme, Np: 2}, cap)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Truncated {
					t.Fatalf("state space over %d schedules; shrink the program", cap)
				}
				if rep.Schedules < 2 {
					t.Fatalf("only %d schedule explored; branching not reached", rep.Schedules)
				}
				for seq := range rep.Serializations {
					if got := strings.Count(seq, "["); got != tc.firings && seq != "" {
						t.Fatalf("serialization %q has %d commits, want %d", seq, got, tc.firings)
					}
				}
				t.Logf("%d schedules, %d serializations", rep.Schedules, len(rep.Serializations))
			})
		}
	}
}

// TestExploreFindsMultipleSerializations: on a program with genuinely
// commutative firings the exhaustive walk must surface more than one
// admissible serialization (the many-admissible-outcomes point).
func TestExploreFindsMultipleSerializations(t *testing.T) {
	prog := counterProgram()
	rep, err := Explore(prog, Config{Scheme: lock.Scheme2PL, Np: 2}, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Serializations) < 2 {
		t.Fatalf("got %d serializations, want >= 2 (parts can tick in either order)", len(rep.Serializations))
	}
}
