package detsched

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdps/internal/engine"
	"pdps/internal/lang"
	"pdps/internal/lock"
	"pdps/internal/workload"
)

// TestFuzzCampaignClean runs a small metamorphic campaign and requires
// zero violations: every generated program, under every cycled
// configuration and schedule seed, must produce a commit trace the
// single-thread execution graph admits and hit the generator's exact
// commit-count invariant.
func TestFuzzCampaignClean(t *testing.T) {
	v, st := Fuzz(FuzzConfig{Programs: 15, SeedsPerProgram: 2, Seed: 1, Log: t.Logf})
	if v != nil {
		t.Fatalf("campaign found a violation: %v", v)
	}
	if st.Runs != 30 {
		t.Fatalf("runs = %d, want 30", st.Runs)
	}
}

// TestFuzzCorruptInjection validates the whole failure pipeline: with
// fault injection on, the campaign must detect the bogus fingerprint,
// shrink the program to a minimal reproducer (a single rule and a
// single tuple suffice to commit once), and write a parseable
// rule-language repro file.
func TestFuzzCorruptInjection(t *testing.T) {
	dir := t.TempDir()
	v, _ := Fuzz(FuzzConfig{Programs: 5, SeedsPerProgram: 1, Seed: 7, Corrupt: true, ReproDir: dir, Log: t.Logf})
	if v == nil {
		t.Fatal("fault injection produced no violation")
	}
	if !strings.Contains(v.Err.Error(), "injected") {
		t.Fatalf("violation is not the injected fault: %v", v.Err)
	}
	if len(v.Program.Rules) > 3 {
		t.Fatalf("shrinker left %d rules, want <= 3", len(v.Program.Rules))
	}
	if len(v.Program.WMEs) > 3 {
		t.Fatalf("shrinker left %d tuples, want <= 3", len(v.Program.WMEs))
	}
	if v.ReproPath == "" {
		t.Fatal("no reproducer written")
	}
	data, err := os.ReadFile(v.ReproPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "; detsched reproducer") {
		t.Fatalf("reproducer missing header:\n%s", data)
	}
	reparsed, err := lang.Parse(string(data))
	if err != nil {
		t.Fatalf("reproducer does not parse: %v", err)
	}
	if len(reparsed.Rules) != len(v.Program.Rules) || len(reparsed.WMEs) != len(v.Program.WMEs) {
		t.Fatalf("reproducer round-trip mismatch: %d/%d rules, %d/%d wmes",
			len(reparsed.Rules), len(v.Program.Rules), len(reparsed.WMEs), len(v.Program.WMEs))
	}
	if filepath.Dir(v.ReproPath) != dir {
		t.Fatalf("reproducer written outside ReproDir: %s", v.ReproPath)
	}
}

// TestShrinkMinimises drives Shrink directly with a synthetic failure
// predicate — "program still contains rule r0" — and requires the
// minimum: exactly that rule and nothing else.
func TestShrinkMinimises(t *testing.T) {
	prog := fig44Program()
	min := Shrink(prog, func(q engine.Program) bool {
		for _, r := range q.Rules {
			if r.Name == "pi" {
				return true
			}
		}
		return false
	})
	if len(min.Rules) != 1 || min.Rules[0].Name != "pi" {
		t.Fatalf("shrink kept %d rules", len(min.Rules))
	}
	if len(min.WMEs) != 0 {
		t.Fatalf("shrink kept %d tuples, want 0", len(min.WMEs))
	}
}

// FuzzEngineTrace is the native fuzz target: go test -fuzz=FuzzEngineTrace
// mutates the generator and schedule seeds and checks every resulting
// trace against the execution-graph oracle.
func FuzzEngineTrace(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(2), uint8(2), false)
	f.Add(int64(42), int64(99), uint8(3), uint8(1), true)
	f.Fuzz(func(t *testing.T, genSeed, schedSeed int64, layers, width uint8, rcrawa bool) {
		prog, want := workload.RandomContended(genSeed, int(layers%4)+1, int(width%3)+1, 0.5, 0.3)
		scheme := lock.Scheme2PL
		if rcrawa {
			scheme = lock.SchemeRcRaWa
		}
		cfg := Config{Scheme: scheme, Np: 2}
		if err := evaluate(prog, cfg, schedSeed, want, false); err != nil {
			t.Fatalf("gen=%d sched=%d %s: %v", genSeed, schedSeed, cfg, err)
		}
	})
}
