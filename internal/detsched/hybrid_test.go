package detsched

import (
	"fmt"
	"strings"
	"testing"

	"pdps/internal/engine"
	"pdps/internal/lock"
	"pdps/internal/match"
	"pdps/internal/sched"
	"pdps/internal/wm"
	"pdps/internal/workload"
)

// TestHybridExhaustiveConsistency is the ES_M ⊆ ES_single proof for
// the hybrid consistency layer: for the Figure 4.4 deadlock pair and
// the contended-counter program, every schedule the engine can produce
// with lock elision and class-lock escalation toggled on and off must
// yield a commit trace admitted by the single-thread execution graph.
// Elided firings skip the lock manager entirely, so this walk is what
// certifies that the committer's conflict-set validation alone upholds
// Definition 3.2 on the lock-free path.
func TestHybridExhaustiveConsistency(t *testing.T) {
	cases := []struct {
		name    string
		prog    engine.Program
		firings int
	}{
		{"fig44", fig44Program(), 1},
		{"counter", counterProgram(), 2},
	}
	knobs := []struct {
		name       string
		elide      bool
		escalation int
	}{
		{"elide", true, 0},
		{"escalate", false, 1},
		{"elide+escalate", true, 1},
	}
	const cap = 8000
	for _, tc := range cases {
		for _, scheme := range []lock.Scheme{lock.Scheme2PL, lock.SchemeRcRaWa} {
			for _, k := range knobs {
				t.Run(fmt.Sprintf("%s/%s/%s", tc.name, scheme, k.name), func(t *testing.T) {
					cfg := Config{Scheme: scheme, Np: 2, Elide: k.elide, Escalation: k.escalation}
					rep, err := Explore(tc.prog, cfg, cap)
					if err != nil {
						t.Fatal(err)
					}
					if rep.Truncated {
						t.Fatalf("state space over %d schedules; shrink the program", cap)
					}
					if rep.Schedules < 2 {
						t.Fatalf("only %d schedule explored; branching not reached", rep.Schedules)
					}
					for seq := range rep.Serializations {
						if got := strings.Count(seq, "["); got != tc.firings && seq != "" {
							t.Fatalf("serialization %q has %d commits, want %d", seq, got, tc.firings)
						}
					}
					t.Logf("%d schedules, %d serializations", rep.Schedules, len(rep.Serializations))
				})
			}
		}
	}
}

// independentPair is a two-rule pairwise non-interfering program (each
// rule flips its own private tuple once) — under elision both firings
// take the lock-free path in every schedule.
func independentPair() engine.Program {
	mk := func(name, cls string) *match.Rule {
		return &match.Rule{
			Name: name,
			Conditions: []match.Condition{
				{Class: cls, Tests: []match.AttrTest{{Attr: "hot", Op: match.OpEq, Const: wm.Bool(true)}}},
			},
			Actions: []match.Action{{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
				{Attr: "hot", Expr: match.ConstExpr{Val: wm.Bool(false)}}}}},
		}
	}
	return engine.Program{
		Rules: []*match.Rule{mk("fa", "a"), mk("fb", "b")},
		WMEs: []engine.InitialWME{
			{Class: "a", Attrs: attrs("hot", true)},
			{Class: "b", Attrs: attrs("hot", true)},
		},
	}
}

// TestHybridElisionExhaustive explores the non-interfering pair with
// elision on: every interleaving must commit both rules, and every
// schedule's metric snapshot must show zero lock grants — the elided
// path never touches the lock manager, under any schedule.
func TestHybridElisionExhaustive(t *testing.T) {
	prog := independentPair()
	cfg := Config{Scheme: lock.SchemeRcRaWa, Np: 2, Elide: true}
	var prefix []int
	schedules := 0
	for {
		out := Run(prog, cfg, sched.NewReplay(prefix))
		schedules++
		if err := Check(prog, out); err != nil {
			t.Fatalf("schedule %v: %v", prefix, err)
		}
		if out.Result.Firings != 2 {
			t.Fatalf("schedule %v: firings = %d, want 2", prefix, out.Result.Firings)
		}
		for _, c := range out.Metrics.Counters {
			if strings.HasPrefix(c.Name, "lock_acquires") && c.Value != 0 {
				t.Fatalf("schedule %v: %s = %d, want 0 (all firings elide)", prefix, c.Name, c.Value)
			}
		}
		prefix = nextPrefix(out.Choices)
		if prefix == nil {
			break
		}
		if schedules > 8000 {
			t.Fatal("state space blew up")
		}
	}
	t.Logf("%d schedules, all lock-free", schedules)
}

// TestHybridGroupCommitExhaustive explores the contended counter with
// group commit: deferring the conflict-set refresh must not admit any
// serialization outside ES_single, nor change the commit count.
func TestHybridGroupCommitExhaustive(t *testing.T) {
	prog := counterProgram()
	for _, batch := range []int{2, 4} {
		cfg := Config{Scheme: lock.SchemeRcRaWa, Np: 2, CommitBatch: batch}
		rep, err := Explore(prog, cfg, 8000)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if rep.Truncated {
			t.Fatalf("batch %d: truncated", batch)
		}
		for seq := range rep.Serializations {
			if got := strings.Count(seq, "["); got != 2 && seq != "" {
				t.Fatalf("batch %d: serialization %q has %d commits, want 2", batch, seq, got)
			}
		}
	}
}

// TestHybridSeededReproducible pins determinism with every hybrid knob
// on: same seed, same trace, byte for byte — including the negative
// elided transaction ids.
func TestHybridSeededReproducible(t *testing.T) {
	prog := workload.Independent(3, 2)
	cfg := Config{Scheme: lock.SchemeRcRaWa, Np: 3, Elide: true, Escalation: 1, CommitBatch: 2}
	for seed := int64(0); seed < 5; seed++ {
		a := Run(prog, cfg, sched.NewRandom(seed))
		b := Run(prog, cfg, sched.NewRandom(seed))
		if err := Check(prog, a); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.Result.Firings != 6 {
			t.Fatalf("seed %d: firings = %d, want 6", seed, a.Result.Firings)
		}
		ra, rb := renderEvents(a.Result.Log), renderEvents(b.Result.Log)
		if len(ra) != len(rb) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("seed %d: traces differ at %d:\n%s\nvs\n%s", seed, i, ra[i], rb[i])
			}
		}
	}
}
