package detsched

import (
	"reflect"
	"testing"

	"pdps/internal/lock"
	"pdps/internal/sched"
	"pdps/internal/storage"
	"pdps/internal/wm"
	"pdps/internal/workload"
)

// recordKeys flattens a backend's recovered records for bit-for-bit
// comparison.
func recordKeys(t *testing.T, b storage.Backend) []string {
	t.Helper()
	rec, err := b.Recover()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(rec.Records))
	for _, r := range rec.Records {
		out = append(out, r.Rule+"|"+r.Inst)
	}
	return out
}

// TestStorageDeterministic replays the same seed twice with a storage
// backend attached and requires bit-for-bit identical durable record
// sequences: backend I/O rides the committer task, so the schedule
// fixes the append order too. It also cross-checks the log against the
// trace — exactly one record per commit, in commit order.
func TestStorageDeterministic(t *testing.T) {
	prog := workload.SharedCounter(3, 2)
	for seed := int64(0); seed < 5; seed++ {
		mkOut := func() (RunOutcome, storage.Backend) {
			// Seed the initial WM as a non-firing record so the backend
			// can replay onto an empty base, and hand the same store to
			// the engine for ID continuity.
			m := storage.NewMem()
			base := wm.NewStore()
			var init wm.Delta
			for _, iw := range prog.WMEs {
				init.Adds = append(init.Adds, base.Insert(iw.Class, iw.Attrs))
			}
			if _, err := m.Append(&storage.Record{Delta: &init}); err != nil {
				t.Fatal(err)
			}
			run := prog
			run.WMEs = nil
			cfg := Config{Scheme: lock.SchemeRcRaWa, Np: 3, CommitBatch: 4, Storage: m, Restore: base}
			return Run(run, cfg, sched.NewRandom(seed)), m
		}
		a, ma := mkOut()
		_, mb := mkOut()
		if err := Check(prog, a); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ka, kb := recordKeys(t, ma), recordKeys(t, mb)
		if !reflect.DeepEqual(ka, kb) {
			t.Fatalf("seed %d: durable record sequences differ:\n%v\nvs\n%v", seed, ka, kb)
		}
		commits := a.Commits()
		if len(ka) != len(commits)+1 {
			t.Fatalf("seed %d: %d records for %d commits + 1 seed", seed, len(ka), len(commits))
		}
		for i, ev := range commits {
			if ka[i+1] != ev.Rule+"|"+ev.Inst {
				t.Fatalf("seed %d: record %d = %q, commit = %q|%q", seed, i+1, ka[i+1], ev.Rule, ev.Inst)
			}
		}
	}
}
