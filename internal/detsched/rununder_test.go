package detsched

import (
	"reflect"
	"testing"

	"pdps/internal/sched"
)

// TestRunUnderMatchesRun pins the refactoring seam: Run(p, cfg) must
// be exactly RunUnder with a fresh controller — same choices, same
// result, same metrics bytes — so callers that need to install
// controller hooks (replication's OnChoice tee) lose nothing.
func TestRunUnderMatchesRun(t *testing.T) {
	prog := counterProgram()
	cfg := Config{Np: 3}

	a := Run(prog, cfg, sched.NewRandom(17))
	ctl := sched.NewDet(sched.NewRandom(17))
	b := RunUnder(prog, cfg, ctl)

	if a.Err != nil || b.Err != nil || a.SchedErr != nil || b.SchedErr != nil {
		t.Fatalf("errors: %v %v %v %v", a.Err, a.SchedErr, b.Err, b.SchedErr)
	}
	if !reflect.DeepEqual(a.Choices, b.Choices) {
		t.Fatalf("choice sequences differ:\n%v\nvs\n%v", a.Choices, b.Choices)
	}
	if a.Result.Firings != b.Result.Firings || a.Result.Aborts != b.Result.Aborts {
		t.Fatalf("results differ: %+v vs %+v", a.Result, b.Result)
	}
	am, err := a.Metrics.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	bm, err := b.Metrics.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if string(am) != string(bm) {
		t.Fatal("metrics snapshots differ between Run and RunUnder")
	}
}

// TestRunUnderDefaultsMaxSteps checks that a caller-built controller
// without an explicit budget inherits the config's decision bound.
func TestRunUnderDefaultsMaxSteps(t *testing.T) {
	ctl := sched.NewDet(sched.NewRandom(1))
	out := RunUnder(counterProgram(), Config{Np: 2, MaxDecisions: 64}, ctl)
	if out.Err != nil || out.SchedErr != nil {
		t.Fatalf("run failed: %v / %v", out.Err, out.SchedErr)
	}
	if ctl.MaxSteps != 64 {
		t.Fatalf("MaxSteps = %d, want 64 from config", ctl.MaxSteps)
	}
}
