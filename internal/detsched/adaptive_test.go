package detsched

import (
	"bytes"
	"fmt"
	"testing"

	"pdps/internal/lock"
	"pdps/internal/sched"
	"pdps/internal/workload"
)

// TestAdaptiveReplanDeterministic is the acceptance test for adaptive
// Rete replanning under the deterministic scheduler: on a workload
// whose run-time cardinalities contradict the static plan
// (JoinHeavySkewed), the network must replan mid-run, and two
// identical seeded runs must still produce byte-identical commit
// sequences and metric snapshots — the replan trigger reads only
// deterministic inputs (activation counts, memory sizes, sorted rule
// names), so replay reproduces every chain swap.
func TestAdaptiveReplanDeterministic(t *testing.T) {
	prog := workload.JoinHeavySkewed(128, 4, 8)
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			for seed := int64(0); seed < 2; seed++ {
				cfg := Config{Scheme: lock.SchemeRcRaWa, Np: 2,
					MatchShards: shards, AdaptiveRete: true}
				a := Run(prog, cfg, sched.NewRandom(seed))
				b := Run(prog, cfg, sched.NewRandom(seed))
				if err := Check(prog, a); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if got, want := a.Result.Firings, 128/8; got != want {
					t.Fatalf("seed %d: firings = %d, want %d", seed, got, want)
				}
				if ka, kb := SeqKey(a.Commits()), SeqKey(b.Commits()); ka != kb {
					t.Fatalf("seed %d: commit sequences diverge:\n%s\n--- vs ---\n%s", seed, ka, kb)
				}
				ja, err := a.Metrics.MarshalIndent()
				if err != nil {
					t.Fatal(err)
				}
				jb, err := b.Metrics.MarshalIndent()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ja, jb) {
					t.Fatalf("seed %d: metric snapshots differ:\n%s\n--- vs ---\n%s", seed, ja, jb)
				}
				// The run must actually have replanned — otherwise this
				// test proves nothing about chain-swap determinism.
				if n := a.Metrics.Counter("rete_replan_total"); n == 0 {
					t.Fatalf("seed %d: no replan happened on the skewed workload", seed)
				}
			}
		})
	}
}

// TestAdaptiveOffMatchesStaticTrace pins the ±0 guarantee for the
// default configuration: with AdaptiveRete off the network never
// replans, even on the adversarial workload.
func TestAdaptiveOffMatchesStaticTrace(t *testing.T) {
	prog := workload.JoinHeavySkewed(64, 2, 8)
	out := Run(prog, Config{Scheme: lock.Scheme2PL, Np: 2}, sched.NewRandom(1))
	if err := Check(prog, out); err != nil {
		t.Fatal(err)
	}
	if n := out.Metrics.Counter("rete_replan_total"); n != 0 {
		t.Fatalf("rete_replan_total = %d with AdaptiveRete off", n)
	}
}
