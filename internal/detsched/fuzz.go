package detsched

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"pdps/internal/engine"
	"pdps/internal/lang"
	"pdps/internal/lock"
	"pdps/internal/sched"
	"pdps/internal/trace"
	"pdps/internal/workload"
)

// FuzzConfig controls a metamorphic fuzzing campaign: generated
// programs are run through engine-configuration combinations under
// seeded deterministic schedules, and every commit trace is checked
// against the single-thread execution semantics plus the generator's
// metamorphic invariant (the exact commit count every consistent
// execution of the program must realise).
type FuzzConfig struct {
	// Programs is the number of generated programs; 0 means 20.
	Programs int
	// SeedsPerProgram is the number of schedule seeds tried per
	// (program, configuration) pair; 0 means 3.
	SeedsPerProgram int
	// Seed drives program generation and schedule-seed derivation, so a
	// whole campaign is reproducible from one number.
	Seed int64
	// Np is the worker count; 0 means 2.
	Np int
	// Matchers to cycle through; nil means {"rete", "rete-linear",
	// "treat", "naive"} — "rete" routes asserts through the shared
	// alpha discrimination network while "rete-linear" walks the
	// per-class alpha list, so the default campaign cross-checks the
	// discrimination axis at every shard count.
	Matchers []string
	// Shards is the matcher shard counts to cycle through; nil means
	// {1, 3} so both the single-matcher and the sharded delta-merge
	// paths face the oracle.
	Shards []int
	// Schemes to cycle through; nil means {2PL, RcRaWa}.
	Schemes []lock.Scheme
	// Aborts to cycle through; nil means {AbortAlways, AbortReevaluate}.
	Aborts []engine.AbortPolicy
	// Deadlocks to cycle through; nil means {detect, wound-wait}.
	Deadlocks []lock.DeadlockPolicy
	// MaxDecisions bounds each run's scheduling decisions; 0 uses the
	// Config default.
	MaxDecisions int
	// ReproDir, when non-empty, receives shrunk reproducers of any
	// violation as rule-language files.
	ReproDir string
	// Corrupt injects an artificial fault: the first commit's recorded
	// fingerprints are overwritten before checking, guaranteeing an
	// oracle violation. Used to validate the shrinking pipeline.
	Corrupt bool
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...interface{})
}

func (c FuzzConfig) programs() int {
	if c.Programs == 0 {
		return 20
	}
	return c.Programs
}

func (c FuzzConfig) seedsPer() int {
	if c.SeedsPerProgram == 0 {
		return 3
	}
	return c.SeedsPerProgram
}

func (c FuzzConfig) matchers() []string {
	if c.Matchers == nil {
		return []string{"rete", "rete-linear", "treat", "naive"}
	}
	return c.Matchers
}

func (c FuzzConfig) shardCounts() []int {
	if c.Shards == nil {
		return []int{1, 3}
	}
	return c.Shards
}

func (c FuzzConfig) schemes() []lock.Scheme {
	if c.Schemes == nil {
		return []lock.Scheme{lock.Scheme2PL, lock.SchemeRcRaWa}
	}
	return c.Schemes
}

func (c FuzzConfig) aborts() []engine.AbortPolicy {
	if c.Aborts == nil {
		return []engine.AbortPolicy{engine.AbortAlways, engine.AbortReevaluate}
	}
	return c.Aborts
}

func (c FuzzConfig) deadlocks() []lock.DeadlockPolicy {
	if c.Deadlocks == nil {
		return []lock.DeadlockPolicy{lock.DeadlockDetect, lock.DeadlockWoundWait}
	}
	return c.Deadlocks
}

func (c FuzzConfig) logf(format string, args ...interface{}) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Violation is one failing (program, configuration, seed) triple, with
// the shrunk program and, when a repro directory was configured, the
// path of the written reproducer.
type Violation struct {
	// Program is the failing program after shrinking.
	Program engine.Program
	// Config is the engine configuration under which it fails.
	Config Config
	// Seed is the schedule seed reproducing the failure.
	Seed int64
	// Err is the check failure.
	Err error
	// ReproPath is the written reproducer file, if any.
	ReproPath string
}

// Error renders the violation with its reproduction recipe.
func (v *Violation) Error() string {
	return fmt.Sprintf("detsched: violation under %s seed=%d (%d rules, %d wmes): %v",
		v.Config, v.Seed, len(v.Program.Rules), len(v.Program.WMEs), v.Err)
}

// FuzzStats summarises a campaign.
type FuzzStats struct {
	// Programs is the number of programs generated.
	Programs int
	// Runs is the number of deterministic runs executed and checked.
	Runs int
}

// evaluate runs one seeded schedule and applies the oracle and, when
// wantFirings >= 0, the metamorphic commit-count invariant. corrupt
// injects a bogus fingerprint into the first commit before checking.
func evaluate(p engine.Program, cfg Config, seed int64, wantFirings int, corrupt bool) error {
	out := Run(p, cfg, sched.NewRandom(seed))
	if corrupt && out.SchedErr == nil && out.Err == nil {
		commits := out.Commits()
		if len(commits) == 0 {
			return nil // nothing to corrupt: vacuously passes
		}
		mut := make([]trace.Event, len(commits))
		copy(mut, commits)
		mut[0].WMEs = []string{"(corrupt ^injected yes)"}
		if err := engine.CheckTrace(p, mut); err != nil {
			return fmt.Errorf("injected: %w", err)
		}
		return fmt.Errorf("injected corruption not detected by CheckTrace")
	}
	if err := Check(p, out); err != nil {
		return err
	}
	if wantFirings >= 0 && out.Result.Firings != wantFirings {
		return fmt.Errorf("metamorphic invariant: firings = %d, want %d (every consistent execution commits the same count)",
			out.Result.Firings, wantFirings)
	}
	return nil
}

// Fuzz runs the campaign. It stops at the first violation, shrinks it
// to a minimal reproducer, optionally writes the reproducer to
// cfg.ReproDir, and returns it alongside the stats; a clean campaign
// returns a nil violation.
func Fuzz(cfg FuzzConfig) (*Violation, FuzzStats) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var st FuzzStats
	matchers, schemes, aborts, deadlocks := cfg.matchers(), cfg.schemes(), cfg.aborts(), cfg.deadlocks()
	shards := cfg.shardCounts()
	for pi := 0; pi < cfg.programs(); pi++ {
		genSeed := rng.Int63()
		layers := 1 + rng.Intn(3)
		width := 1 + rng.Intn(3)
		prog, want := workload.RandomContended(genSeed, layers, width, 0.5, 0.3)
		st.Programs++
		// Cycle the configuration axes rather than exhausting the cross
		// product per program: every axis value is exercised across the
		// campaign while each program stays cheap.
		c := Config{
			Scheme:       schemes[pi%len(schemes)],
			Np:           cfg.Np,
			Matcher:      matchers[pi%len(matchers)],
			MatchShards:  shards[pi%len(shards)],
			Deadlock:     deadlocks[pi%len(deadlocks)],
			Abort:        aborts[pi%len(aborts)],
			MaxDecisions: cfg.MaxDecisions,
		}
		// Hybrid-consistency axis: alternate programs run with lock
		// elision, class-lock escalation and group commit switched on,
		// so the lock-free commit path and the intention-mode plumbing
		// face the same oracle as the plain pipeline.
		if pi%2 == 1 {
			c.Elide = true
			c.Escalation = 2
			c.CommitBatch = 3
		}
		// Adaptive-replan axis: rete programs alternate with live
		// replanning on, so mid-run chain swaps face the trace oracle
		// and the metamorphic commit-count invariant too.
		if c.Matcher == "rete" && pi%2 == 0 {
			c.AdaptiveRete = true
		}
		for si := 0; si < cfg.seedsPer(); si++ {
			seed := rng.Int63()
			st.Runs++
			err := evaluate(prog, c, seed, want, cfg.Corrupt)
			if err == nil {
				continue
			}
			cfg.logf("violation at program %d seed %d: %v; shrinking", pi, seed, err)
			v := &Violation{Program: prog, Config: c, Seed: seed, Err: err}
			v.Program = Shrink(v.Program, func(q engine.Program) bool {
				return evaluate(q, c, seed, -1, cfg.Corrupt) != nil
			})
			v.Err = evaluate(v.Program, c, seed, -1, cfg.Corrupt)
			if cfg.ReproDir != "" {
				path, werr := WriteRepro(cfg.ReproDir, v)
				if werr != nil {
					cfg.logf("writing reproducer: %v", werr)
				} else {
					v.ReproPath = path
				}
			}
			return v, st
		}
		if (pi+1)%50 == 0 {
			cfg.logf("%d/%d programs, %d runs, all consistent", pi+1, cfg.programs(), st.Runs)
		}
	}
	return nil, st
}

// Shrink minimises a failing program: it repeatedly deletes one rule
// or one initial tuple at a time, keeping any deletion under which the
// program still fails, until no single deletion preserves the failure.
// fails must be deterministic (detsched runs are, by construction).
func Shrink(p engine.Program, fails func(engine.Program) bool) engine.Program {
	cur := p
	for {
		shrunk := false
		for i := 0; i < len(cur.Rules); i++ {
			trial := engine.Program{WMEs: cur.WMEs}
			trial.Rules = append(trial.Rules, cur.Rules[:i]...)
			trial.Rules = append(trial.Rules, cur.Rules[i+1:]...)
			if fails(trial) {
				cur = trial
				shrunk = true
				i--
			}
		}
		for i := 0; i < len(cur.WMEs); i++ {
			trial := engine.Program{Rules: cur.Rules}
			trial.WMEs = append(trial.WMEs, cur.WMEs[:i]...)
			trial.WMEs = append(trial.WMEs, cur.WMEs[i+1:]...)
			if fails(trial) {
				cur = trial
				shrunk = true
				i--
			}
		}
		if !shrunk {
			return cur
		}
	}
}

// WriteRepro renders the violation's program in the rule language with
// a header describing the failing configuration, and writes it under
// dir as a deterministic file name.
func WriteRepro(dir string, v *Violation) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	body := fmt.Sprintf("; detsched reproducer\n; config: %s\n; schedule seed: %d\n; failure: %v\n\n%s",
		v.Config, v.Seed, v.Err, lang.Format(v.Program))
	name := fmt.Sprintf("repro_%s_%d.ops", sanitize(v.Config.Scheme.String()), v.Seed)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func sanitize(s string) string {
	out := []rune(s)
	for i, r := range out {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
