// Package detsched is the deterministic schedule-exploration harness
// for the dynamic engines: it runs the Parallel engine under the
// internal/sched controller so a whole concurrent run — worker
// interleavings, lock waits, abort-backoff timers — is a pure function
// of a scheduling policy, then checks every commit trace against the
// single-thread execution semantics with engine.CheckTrace
// (Definition 3.2: the trace must be a root-originating path of the
// single-thread execution graph, ES_M ⊆ ES_single).
//
// Three drivers sit on top of one another:
//
//   - Run: one schedule, chosen by a policy (seeded random walk,
//     PCT-style priority sampling, or a scripted replay). Same policy
//     seed ⇒ bit-for-bit the same trace.
//   - Explore: stateless depth-first enumeration of every schedule for
//     small programs and Np, by replaying recorded decision prefixes
//     with the last decision bumped — the exhaustive check that every
//     producible trace is admissible.
//   - Fuzz (fuzz.go): metamorphic fuzzing over generated programs ×
//     engine configurations × schedule seeds, with shrinking of
//     failures to minimal reproducers.
package detsched

import (
	"fmt"
	"strings"
	"time"

	"pdps/internal/engine"
	"pdps/internal/lock"
	"pdps/internal/obs"
	"pdps/internal/sched"
	"pdps/internal/storage"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// Config selects the engine variant a deterministic run tests.
type Config struct {
	// Scheme is the locking scheme (lock.Scheme2PL or lock.SchemeRcRaWa).
	Scheme lock.Scheme
	// Np is the worker count; 0 means 2 (exploration-friendly).
	Np int
	// Matcher is the match algorithm; "" means rete.
	Matcher string
	// MatchShards, when above 1, shards the matcher for intra-phase
	// match parallelism (engine.Options.MatchShards).
	MatchShards int
	// AdaptiveRete enables live replanning in the rete matcher
	// (engine.Options.AdaptiveRete). Replans happen at conflict-set
	// refreshes from deterministic inputs, so replay reproduces them.
	AdaptiveRete bool
	// Deadlock is the lock manager's deadlock policy.
	Deadlock lock.DeadlockPolicy
	// Abort is the Rc-victim policy.
	Abort engine.AbortPolicy
	// MaxFirings bounds commits; 0 means the engine default.
	MaxFirings int
	// CondDelay/RuleDelay simulate per-rule costs on the virtual clock.
	CondDelay map[string]time.Duration
	// RuleDelay simulates per-rule action cost on the virtual clock.
	RuleDelay map[string]time.Duration
	// MaxDecisions bounds scheduling decisions per run (a runaway
	// backstop); 0 means 1<<16.
	MaxDecisions int
	// Elide enables the hybrid lock-elision path
	// (engine.Options.HybridElision).
	Elide bool
	// Escalation is the class-lock escalation threshold
	// (engine.Options.LockEscalation); 0 disables.
	Escalation int
	// CommitBatch is the committer's group-commit size
	// (engine.Options.CommitBatch); 0 means 1.
	CommitBatch int
	// Storage is the durable backend commits are appended to
	// (engine.Options.Storage); nil disables durability. Backend I/O
	// happens inline on the committer task, so a deterministic schedule
	// fixes the append and fsync order too.
	Storage storage.Backend
	// Restore seeds the engine's working memory from a recovered store
	// (engine.Options.Restore).
	Restore *wm.Store
}

func (c Config) np() int {
	if c.Np == 0 {
		return 2
	}
	return c.Np
}

func (c Config) maxDecisions() int {
	if c.MaxDecisions == 0 {
		return 1 << 16
	}
	return c.MaxDecisions
}

// String renders the configuration compactly for failure reports.
func (c Config) String() string {
	m := c.Matcher
	if m == "" {
		m = "rete"
	}
	if c.MatchShards > 1 {
		m = fmt.Sprintf("%s×%d", m, c.MatchShards)
	}
	s := fmt.Sprintf("scheme=%s np=%d matcher=%s deadlock=%s abort=%s",
		c.Scheme, c.np(), m, c.Deadlock, c.Abort)
	if c.AdaptiveRete {
		s += " adaptive=on"
	}
	if c.Elide {
		s += " elide=on"
	}
	if c.Escalation > 0 {
		s += fmt.Sprintf(" escalation=%d", c.Escalation)
	}
	if c.CommitBatch > 1 {
		s += fmt.Sprintf(" batch=%d", c.CommitBatch)
	}
	return s
}

// RunOutcome is one deterministic run's result.
type RunOutcome struct {
	// Result is the engine's summary (trace log included).
	Result engine.Result
	// Err is the engine's error, if any (e.g. ErrInconsistent).
	Err error
	// SchedErr is the controller's verdict: nil, sched.ErrBudget, a
	// *sched.StallError, or a surfaced task panic.
	SchedErr error
	// Choices is the recorded decision sequence; replaying it through
	// sched.NewReplay reproduces the schedule exactly.
	Choices []sched.Choice
	// Metrics is the engine's metric snapshot taken after the run. All
	// durations flowed through the controller's virtual clock and all
	// series are integral and sorted, so replaying the same schedule
	// yields a byte-identical snapshot (see TestMetricsDeterministic).
	Metrics obs.Snapshot
}

// Commits returns the outcome's commit events.
func (o RunOutcome) Commits() []trace.Event {
	if o.Result.Log == nil {
		return nil
	}
	return o.Result.Log.Commits()
}

// Run executes the program once on the Parallel engine under the
// scheduling policy and returns the outcome. The run is deterministic:
// the policy's decisions are the only source of scheduling freedom,
// and time is virtual.
func Run(p engine.Program, cfg Config, policy sched.Policy) RunOutcome {
	return RunUnder(p, cfg, sched.NewDet(policy))
}

// RunUnder executes the program once on the Parallel engine under a
// caller-built controller. The controller must be fresh (a Det is
// single-use); building it outside lets the caller install hooks —
// replication's primary sets ctl.OnChoice to stream decisions as they
// are made, and a follower drives the controller with a sched.Stream
// policy fed from the network. MaxSteps is defaulted from the config
// when the caller left it zero.
func RunUnder(p engine.Program, cfg Config, ctl *sched.Det) RunOutcome {
	if ctl.MaxSteps == 0 {
		ctl.MaxSteps = cfg.maxDecisions()
	}
	opts := engine.Options{
		Matcher:        cfg.Matcher,
		MatchShards:    cfg.MatchShards,
		AdaptiveRete:   cfg.AdaptiveRete,
		Np:             cfg.np(),
		Deadlock:       cfg.Deadlock,
		AbortPolicy:    cfg.Abort,
		MaxFirings:     cfg.MaxFirings,
		CondDelay:      cfg.CondDelay,
		RuleDelay:      cfg.RuleDelay,
		Sched:          ctl,
		HybridElision:  cfg.Elide,
		LockEscalation: cfg.Escalation,
		CommitBatch:    cfg.CommitBatch,
		Storage:        cfg.Storage,
		Restore:        cfg.Restore,
	}
	eng, err := engine.NewParallel(p, cfg.Scheme, opts)
	if err != nil {
		return RunOutcome{Err: err}
	}
	var res engine.Result
	var rerr error
	serr := ctl.Run(func() {
		res, rerr = eng.Run()
	})
	return RunOutcome{Result: res, Err: rerr, SchedErr: serr, Choices: ctl.Choices(),
		Metrics: eng.Metrics().Snapshot()}
}

// Check validates an outcome: the schedule must have completed, the
// engine must not have erred, and the commit trace must pass
// engine.CheckTrace against the program.
func Check(p engine.Program, out RunOutcome) error {
	if out.SchedErr != nil {
		return fmt.Errorf("detsched: schedule did not complete: %w", out.SchedErr)
	}
	if out.Err != nil {
		return fmt.Errorf("detsched: engine error: %w", out.Err)
	}
	return engine.CheckTrace(p, out.Commits())
}

// SeqKey canonicalises a commit trace to its serialization: the
// ordered list of rule names with the content fingerprints of the
// matched tuples. Two runs with equal SeqKey committed the same
// logical sequence.
func SeqKey(commits []trace.Event) string {
	var b strings.Builder
	for i, ev := range commits {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(ev.Rule)
		b.WriteByte('[')
		b.WriteString(strings.Join(ev.WMEs, ","))
		b.WriteByte(']')
	}
	return b.String()
}

// ExploreReport summarises an exhaustive exploration.
type ExploreReport struct {
	// Schedules is the number of distinct schedules executed.
	Schedules int
	// Serializations maps each distinct commit sequence (SeqKey) to
	// the number of schedules that produced it — the slice of ES_M the
	// mechanism actually realises.
	Serializations map[string]int
	// Truncated reports that MaxSchedules stopped the walk early.
	Truncated bool
}

// Explore enumerates every schedule of the program under the
// configuration by stateless depth-first search over the decision
// tree: each iteration replays a recorded prefix with its last
// incrementable decision bumped, so no scheduler state survives
// between runs. Every trace is checked with engine.CheckTrace; the
// first violation aborts the walk with an error that carries the
// reproducing decision script. maxSchedules 0 means unbounded.
func Explore(p engine.Program, cfg Config, maxSchedules int) (ExploreReport, error) {
	rep := ExploreReport{Serializations: make(map[string]int)}
	var prefix []int
	for {
		out := Run(p, cfg, sched.NewReplay(prefix))
		rep.Schedules++
		if err := Check(p, out); err != nil {
			return rep, fmt.Errorf("schedule %v: %w", prefix, err)
		}
		rep.Serializations[SeqKey(out.Commits())]++
		if maxSchedules > 0 && rep.Schedules >= maxSchedules {
			if nextPrefix(out.Choices) != nil {
				rep.Truncated = true
			}
			return rep, nil
		}
		prefix = nextPrefix(out.Choices)
		if prefix == nil {
			return rep, nil
		}
	}
}

// nextPrefix computes the depth-first successor of a recorded decision
// sequence: the longest prefix whose last decision can be bumped, or
// nil when the tree is exhausted.
func nextPrefix(choices []sched.Choice) []int {
	i := len(choices) - 1
	for ; i >= 0; i-- {
		if choices[i].Picked < choices[i].N-1 {
			break
		}
	}
	if i < 0 {
		return nil
	}
	out := make([]int, i+1)
	for j := 0; j < i; j++ {
		out[j] = choices[j].Picked
	}
	out[i] = choices[i].Picked + 1
	return out
}
