package detsched

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"pdps/internal/lock"
	"pdps/internal/sched"
	"pdps/internal/workload"
)

// TestMetricsDeterministic is the acceptance test for metric
// determinism under the scheduler: two identical seeded runs of a
// conflict-heavy program must produce byte-identical metric snapshots
// — counters, gauges with peaks, and every histogram including the
// duration ones, which only holds because all timing flows through the
// controller's virtual clock and the obs registry does only integral,
// order-independent arithmetic.
func TestMetricsDeterministic(t *testing.T) {
	prog := workload.SharedCounter(4, 2)
	delays := map[string]time.Duration{}
	for _, r := range prog.Rules {
		delays[r.Name] = 2 * time.Millisecond
	}
	for _, scheme := range []lock.Scheme{lock.Scheme2PL, lock.SchemeRcRaWa} {
		// shards=1 exercises the indexed Rete directly; shards=2 adds
		// the sharded delta merge. Both must replay byte-identically —
		// index bucketing and journal merging may not leak map-iteration
		// order into anything observable.
		for _, shards := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/shards=%d", scheme, shards), func(t *testing.T) {
				for seed := int64(0); seed < 5; seed++ {
					cfg := Config{Scheme: scheme, Np: 4, MatchShards: shards,
						RuleDelay: delays, CondDelay: delays}
					a := Run(prog, cfg, sched.NewRandom(seed))
					b := Run(prog, cfg, sched.NewRandom(seed))
					if err := Check(prog, a); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					ja, err := a.Metrics.MarshalIndent()
					if err != nil {
						t.Fatal(err)
					}
					jb, err := b.Metrics.MarshalIndent()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(ja, jb) {
						t.Fatalf("seed %d: metric snapshots differ:\n%s\n--- vs ---\n%s", seed, ja, jb)
					}
					// The snapshot must be non-trivial: commits happened,
					// locks were taken, and simulated time was measured.
					if n := a.Metrics.Counter("engine_commits_total"); n != int64(a.Result.Firings) {
						t.Fatalf("seed %d: engine_commits_total = %d, want %d", seed, n, a.Result.Firings)
					}
					if a.Metrics.Counter("lock_txns_total") == 0 {
						t.Fatalf("seed %d: no lock transactions recorded", seed)
					}
					h, ok := a.Metrics.Histogram("engine_commit_latency_ns")
					if !ok || h.Count == 0 {
						t.Fatalf("seed %d: commit latency histogram empty", seed)
					}
					if h.Sum == 0 {
						t.Fatalf("seed %d: commit latency all zero despite simulated delays", seed)
					}
				}
			})
		}
	}
}

// TestMetricsConflictCounters drives a scheme pair through the same
// contended program and checks the conflict accounting matches each
// scheme's semantics: under 2PL conflicts appear as blocked requests,
// while under RcRaWa the Rc/Wa series is fed by commit-time victim
// kills (Table 4.1 grants the lock; rule (ii) settles the conflict).
func TestMetricsConflictCounters(t *testing.T) {
	prog := workload.SharedCounter(4, 2)
	sawConflict := false
	for seed := int64(0); seed < 10 && !sawConflict; seed++ {
		out := Run(prog, Config{Scheme: lock.SchemeRcRaWa, Np: 4}, sched.NewRandom(seed))
		if err := Check(prog, out); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		victims := out.Metrics.Counter("lock_rc_victims_total")
		if victims > 0 {
			sawConflict = true
			if aborts := out.Metrics.Counter("engine_aborts_total"); aborts == 0 {
				t.Fatalf("seed %d: %d rc victims but no engine aborts", seed, victims)
			}
		}
	}
	if !sawConflict {
		t.Skip("no seed produced an Rc victim on this workload")
	}
}
