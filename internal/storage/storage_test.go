package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pdps/internal/wm"
)

// mkRecord builds a commit record by running a transaction against
// the live store, mirroring what the engine's committer does.
func mkRecord(t *testing.T, live *wm.Store, rule string, class string, v int) *Record {
	t.Helper()
	tx := live.Begin()
	tx.Insert(class, map[string]wm.Value{"v": wm.Int(int64(v))})
	d, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	return &Record{Rule: rule, Inst: fmt.Sprintf("%s#%d", rule, v), WMEs: []string{fmt.Sprintf("fp%d", v)}, Delta: d}
}

func snapshotBytes(t *testing.T, s *wm.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRecordCodecRoundTrip(t *testing.T) {
	live := wm.NewStore()
	r := mkRecord(t, live, "move", "part", 7)
	body := EncodeRecord(nil, r)
	got, err := DecodeRecord(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rule != r.Rule || got.Inst != r.Inst || len(got.WMEs) != 1 || got.WMEs[0] != "fp7" {
		t.Fatalf("decoded %+v, want %+v", got, r)
	}
	if len(got.Delta.Adds) != 1 || !got.Delta.Adds[0].EqualContent(r.Delta.Adds[0]) {
		t.Fatalf("delta adds mismatch: %v", got.Delta.Adds)
	}
	if _, err := DecodeRecord(body[:len(body)-2]); err == nil {
		t.Fatal("truncated record must fail decode")
	}
}

func TestMemBackendRoundTrip(t *testing.T) {
	m := NewMem()
	live := wm.NewStore()
	var last LSN
	for i := 0; i < 5; i++ {
		var err error
		last, err = m.Append(mkRecord(t, live, "r", "a", i))
		if err != nil {
			t.Fatal(err)
		}
	}
	if last != 5 {
		t.Fatalf("last LSN = %d, want 5", last)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	rec, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.LSN != 5 || len(rec.Records) != 5 {
		t.Fatalf("recovery LSN=%d records=%d", rec.LSN, len(rec.Records))
	}
	if !bytes.Equal(snapshotBytes(t, rec.Store), snapshotBytes(t, live)) {
		t.Fatal("recovered store differs from live store")
	}
	// Checkpoint folds the tail; recovery still reproduces the store.
	if err := m.Checkpoint(live); err != nil {
		t.Fatal(err)
	}
	m.Append(mkRecord(t, live, "r", "a", 9))
	rec2, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec2.SnapshotLSN != 5 || rec2.LSN != 6 || len(rec2.Records) != 1 {
		t.Fatalf("post-checkpoint recovery: %+v", rec2)
	}
	if !bytes.Equal(snapshotBytes(t, rec2.Store), snapshotBytes(t, live)) {
		t.Fatal("post-checkpoint recovered store differs")
	}
}

func TestFileBackendAppendSyncRecover(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	live := wm.NewStore()
	for i := 0; i < 10; i++ {
		if _, err := f.Append(mkRecord(t, live, "r", "a", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	rec, err := g.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.LSN != 10 || len(rec.Records) != 10 {
		t.Fatalf("recovered LSN=%d records=%d, want 10/10", rec.LSN, len(rec.Records))
	}
	if rec.Records[3].Rule != "r" || rec.Records[3].Inst != "r#3" {
		t.Fatalf("record 3 = %+v", rec.Records[3])
	}
	if !bytes.Equal(snapshotBytes(t, rec.Store), snapshotBytes(t, live)) {
		t.Fatal("recovered store differs from live store")
	}
}

func TestFileBackendSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations.
	f, err := OpenFile(dir, FileOptions{SegmentBytes: 256, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	live := wm.NewStore()
	for i := 0; i < 50; i++ {
		if _, err := f.Append(mkRecord(t, live, "r", "a", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("expected multiple segments, got %v", segs)
	}
	g, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	rec, _ := g.Recover()
	if rec.LSN != 50 || len(rec.Records) != 50 {
		t.Fatalf("recovered LSN=%d records=%d", rec.LSN, len(rec.Records))
	}
	if !bytes.Equal(snapshotBytes(t, rec.Store), snapshotBytes(t, live)) {
		t.Fatal("recovered store differs after rotation")
	}
}

func TestFileBackendTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, FileOptions{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	live := wm.NewStore()
	for i := 0; i < 3; i++ {
		if _, err := f.Append(mkRecord(t, live, "r", "a", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail of the only data segment.
	seg := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	rec, _ := g.Recover()
	if rec.LSN != 2 || len(rec.Records) != 2 {
		t.Fatalf("after torn tail: LSN=%d records=%d, want 2/2", rec.LSN, len(rec.Records))
	}
	// The torn bytes are gone from disk.
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= int64(len(raw)-7) {
		t.Fatalf("torn tail not truncated: size %d", fi.Size())
	}
}

func TestFileBackendMidLogCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, FileOptions{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	live := wm.NewStore()
	for i := 0; i < 3; i++ {
		if _, err := f.Append(mkRecord(t, live, "r", "a", i)); err != nil {
			t.Fatal(err)
		}
	}
	f.Sync()
	f.Close()
	seg := filepath.Join(dir, segName(1))
	raw, _ := os.ReadFile(seg)
	raw[len(segMagic)+12+4] ^= 0xff // corrupt first record's body
	os.WriteFile(seg, raw, 0o644)
	if _, err := OpenFile(dir, FileOptions{}); err == nil {
		t.Fatal("mid-log corruption must refuse to open")
	}
}

func TestFileBackendCheckpointPrunesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, FileOptions{SegmentBytes: 256, CheckpointBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	live := wm.NewStore()
	i := 0
	for ; i < 20; i++ {
		if _, err := f.Append(mkRecord(t, live, "r", "a", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if !f.CheckpointDue() {
		t.Fatal("checkpoint should be due after 20 records with 512-byte threshold")
	}
	if err := f.Checkpoint(live.Clone()); err != nil {
		t.Fatal(err)
	}
	if f.CheckpointDue() {
		t.Fatal("checkpoint immediately due again")
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.wm"))
	if len(snaps) != 1 {
		t.Fatalf("want exactly one snapshot, got %v", snaps)
	}
	// More appends after the checkpoint.
	for ; i < 25; i++ {
		if _, err := f.Append(mkRecord(t, live, "r", "a", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	rec, _ := g.Recover()
	if rec.LSN != 25 {
		t.Fatalf("recovered LSN = %d, want 25", rec.LSN)
	}
	if rec.SnapshotLSN != 20 || len(rec.Records) != 5 {
		t.Fatalf("snapshotLSN=%d records=%d, want 20/5", rec.SnapshotLSN, len(rec.Records))
	}
	if !bytes.Equal(snapshotBytes(t, rec.Store), snapshotBytes(t, live)) {
		t.Fatal("recovered store differs after checkpoint + tail")
	}
}

func TestFileBackendLSNContinuesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	live := wm.NewStore()
	f, _ := OpenFile(dir, FileOptions{})
	f.Append(mkRecord(t, live, "r", "a", 1))
	f.Sync()
	f.Close()
	g, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := g.Append(mkRecord(t, live, "r", "a", 2))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 2 {
		t.Fatalf("LSN after reopen = %d, want 2", lsn)
	}
	g.Sync()
	g.Close()
}

func TestFileBackendClosedRefusesAppend(t *testing.T) {
	dir := t.TempDir()
	f, _ := OpenFile(dir, FileOptions{})
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(&Record{Delta: &wm.Delta{}}); err == nil {
		t.Fatal("append after close must fail")
	}
	if err := f.Close(); err != nil {
		t.Fatal("double close must be clean")
	}
}

// TestFileBackendTornHeaderTruncated covers a crash at rotation: the
// final segment exists but its magic header is partial (or absent).
// Recovery must treat it like a torn tail — drop it and keep every
// record of the preceding segments — not refuse to open. A torn
// header on a NON-final segment is still mid-log corruption.
func TestFileBackendTornHeaderTruncated(t *testing.T) {
	for _, keep := range []int{0, 3} { // bytes of magic surviving
		dir := t.TempDir()
		f, err := OpenFile(dir, FileOptions{SegmentBytes: 1, CheckpointBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		live := wm.NewStore()
		// SegmentBytes 1 rotates after every record: seg1 gets the
		// record, seg2 is the freshly-created live segment.
		if _, err := f.Append(mkRecord(t, live, "r", "a", 0)); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		seg := filepath.Join(dir, segName(2))
		if err := os.Truncate(seg, int64(keep)); err != nil {
			t.Fatal(err)
		}
		g, err := OpenFile(dir, FileOptions{})
		if err != nil {
			t.Fatalf("keep=%d: torn final-segment header must recover: %v", keep, err)
		}
		rec, _ := g.Recover()
		if rec.LSN != 1 || len(rec.Records) != 1 {
			t.Fatalf("keep=%d: LSN=%d records=%d, want 1/1", keep, rec.LSN, len(rec.Records))
		}
		g.Close()
	}

	// Same tear on a non-final segment must refuse to open.
	dir := t.TempDir()
	f, err := OpenFile(dir, FileOptions{SegmentBytes: 1, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	live := wm.NewStore()
	for i := 0; i < 2; i++ {
		if _, err := f.Append(mkRecord(t, live, "r", "a", i)); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if err := os.Truncate(filepath.Join(dir, segName(1)), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(dir, FileOptions{}); err == nil {
		t.Fatal("torn header on a non-final segment must refuse to open")
	}
}
