// Package storage is the pluggable durability layer under the engine:
// an append-only log of commit records plus snapshot/checkpoint and
// crash recovery. The engine's committer appends one record per
// commit and fsyncs once per group (group commit), so durability cost
// amortizes across a batch exactly like conflict-set refresh does
// under Options.CommitBatch.
//
// Two implementations ship with the repo: Mem, an in-memory backend
// for tests and for measuring the engine's no-durability ceiling, and
// File, a segmented log-structured backend with snapshots, log
// truncation, and size-triggered background checkpoints.
package storage

import (
	"pdps/internal/wm"
)

// LSN is a log sequence number: the 1-based index of a record in the
// backend's logical log. LSNs are contiguous across segments and
// survive checkpoints (a snapshot records the LSN it covers).
type LSN uint64

// Record is one logical log entry: the commit delta plus enough
// firing context (rule name, instantiation key, matched-WME
// fingerprints) to reconstruct the commit trace at recovery, so the
// detsched oracle can check a recovered execution for admissibility.
// A record with an empty Rule is a bare WM delta (e.g. the initial
// working memory seeded by a loader) and is not part of the trace.
type Record struct {
	// Rule is the production fired, empty for non-firing deltas.
	Rule string
	// Inst identifies the instantiation (rule + matched WME versions).
	Inst string
	// WMEs holds content fingerprints of the matched WMEs at commit
	// time, in the order the trace checker expects.
	WMEs []string
	// Delta is the committed WM change. Removes are stubs carrying
	// only ID and TimeTag after a decode round-trip.
	Delta *wm.Delta
}

// Backend is the engine-facing storage interface. Append and Sync are
// called from the committer only (single goroutine); Checkpoint and
// Recover may be called from any goroutine between runs. An
// implementation may also provide AutoCheckpointer to let the engine
// trigger checkpoints by log size.
type Backend interface {
	// Append stages one record in the log and returns its LSN. The
	// record is not durable until the next Sync returns.
	Append(*Record) (LSN, error)
	// Sync makes every appended record durable. A commit is only
	// acknowledged to its firing task after Sync covers it.
	Sync() error
	// Checkpoint folds the given store into a snapshot and truncates
	// the log up to it, synchronously.
	Checkpoint(*wm.Store) error
	// Recover returns the state reconstructed from the log when the
	// backend was opened: the recovered store, the last durable LSN,
	// and the records since the snapshot (the trace tail).
	Recover() (*Recovery, error)
	// Close flushes, waits for any background checkpoint, and
	// releases resources. The backend is unusable afterwards.
	Close() error
}

// Recovery is what a backend reconstructs at open time.
type Recovery struct {
	// Store is the recovered working memory: snapshot plus replayed
	// log. The engine adopts it via Options.Restore.
	Store *wm.Store
	// LSN is the last log sequence number that survived.
	LSN LSN
	// SnapshotLSN is the LSN the recovery snapshot covers (0 when
	// recovery started from an empty store). Records holds everything
	// after it.
	SnapshotLSN LSN
	// Records are the replayed records since the snapshot, in order —
	// the tail of the commit trace for admissibility checking.
	Records []*Record
}

// AutoCheckpointer is an optional Backend extension for size-triggered
// checkpoints. The engine polls CheckpointDue after each sync; when
// due, it calls BeginCheckpoint on the committer goroutine (sealing
// the log at a clean boundary) and runs the returned completion — the
// expensive snapshot write — on a clone of the store, in the
// background for free-running engines and synchronously under a
// deterministic scheduler. A completion error is sticky in the
// backend and surfaces from the next Sync or Close.
type AutoCheckpointer interface {
	// CheckpointDue reports whether enough log has accumulated since
	// the last checkpoint (and no checkpoint is already in flight).
	CheckpointDue() bool
	// BeginCheckpoint seals the current log boundary and returns the
	// completion to run with a consistent snapshot of the store as of
	// this moment.
	BeginCheckpoint() (func(*wm.Store) error, error)
}
