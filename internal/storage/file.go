package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"pdps/internal/wm"
)

// File is the segmented log-structured backend. A data directory
// holds numbered segment files (`wal-%08d.log`) and at most one live
// snapshot (`snapshot-<seq>-<lsn>.wm`, where seq is the first segment
// NOT folded into it and lsn the last record it covers). Appends go
// to the highest segment through a buffered writer; Sync flushes and
// fsyncs it — that one fsync is the group-commit boundary the engine
// amortizes. Segments rotate at SegmentBytes, and once CheckpointBytes
// of log accumulate a checkpoint is due: the log is sealed at a
// segment boundary, the store is snapshotted (temp file, fsync,
// rename, directory fsync), and covered segments and stale snapshots
// are pruned.
//
// Recovery (performed once, at open) loads the newest snapshot,
// replays every surviving segment in order, truncates a torn tail on
// the final segment (mid-log corruption is an error), and starts a
// fresh live segment. Opening never loses acknowledged records: a
// record is acknowledged only after Sync, and Sync returns only after
// the bytes are in the segment file.
type File struct {
	dir  string
	opts FileOptions

	mu       sync.Mutex
	f        *os.File // live segment
	bw       *bufio.Writer
	seg      uint64 // live segment sequence number
	segBytes int64  // bytes written to live segment
	logBytes int64  // bytes in segments since last checkpoint
	lsn      uint64 // last assigned LSN
	buf      []byte // record body scratch
	frame    []byte // framed record scratch
	rec      *Recovery
	cpBusy   bool
	cpErr    error // sticky background-checkpoint failure
	cpWG     sync.WaitGroup
	closed   bool
}

// FileOptions tunes the file backend; zero values pick defaults.
type FileOptions struct {
	// SegmentBytes rotates the live segment once it reaches this size.
	// Zero means 4 MiB.
	SegmentBytes int64
	// CheckpointBytes arms an automatic checkpoint once this much log
	// has accumulated since the last one. Zero means 8 MiB; negative
	// disables automatic checkpoints (explicit Checkpoint still works).
	CheckpointBytes int64
}

const (
	segMagic    = "PDPSSEG1"
	segPrefix   = "wal-"
	segSuffix   = ".log"
	snapPrefix  = "snapshot-"
	snapSuffix  = ".wm"
	defaultSeg  = 4 << 20
	defaultCkpt = 8 << 20
	segNameFmt  = segPrefix + "%08d" + segSuffix
	snapNameFmt = snapPrefix + "%08d-%016d" + snapSuffix
	snapScanFmt = snapPrefix + "%d-%d" + snapSuffix
)

// OpenFile opens (or initialises) a file backend in dir, performing
// crash recovery. The recovered state is available from Recover.
func OpenFile(dir string, opts FileOptions) (*File, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSeg
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = defaultCkpt
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open: %w", err)
	}
	s := &File{dir: dir, opts: opts}
	if err := s.recoverDir(); err != nil {
		return nil, err
	}
	return s, nil
}

// recoverDir scans the directory, loads the newest snapshot, replays
// surviving segments, prunes leftovers from interrupted checkpoints,
// and opens a fresh live segment.
func (s *File) recoverDir() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("storage: open: %w", err)
	}
	var segs []uint64
	type snapInfo struct {
		seq, lsn uint64
		name     string
	}
	var snaps []snapInfo
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// Leftover from an interrupted snapshot write.
			os.Remove(filepath.Join(s.dir, name))
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			var seq uint64
			if _, err := fmt.Sscanf(name, segNameFmt, &seq); err == nil {
				segs = append(segs, seq)
			}
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			var si snapInfo
			if _, err := fmt.Sscanf(name, snapScanFmt, &si.seq, &si.lsn); err == nil {
				si.name = name
				snaps = append(snaps, si)
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool {
		if snaps[i].seq != snaps[j].seq {
			return snaps[i].seq < snaps[j].seq
		}
		return snaps[i].lsn < snaps[j].lsn
	})

	store := wm.NewStore()
	var snapSeq, baseLSN uint64 = 1, 0
	if len(snaps) > 0 {
		best := snaps[len(snaps)-1]
		f, err := os.Open(filepath.Join(s.dir, best.name))
		if err != nil {
			return fmt.Errorf("storage: open snapshot: %w", err)
		}
		store, err = wm.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("storage: snapshot %s: %w", best.name, err)
		}
		snapSeq, baseLSN = best.seq, best.lsn
		// Stale snapshots and covered segments survive a crash between
		// rename and prune; finish the prune now.
		for _, old := range snaps[:len(snaps)-1] {
			os.Remove(filepath.Join(s.dir, old.name))
		}
	}
	live := segs[:0]
	for _, seq := range segs {
		if seq < snapSeq {
			os.Remove(filepath.Join(s.dir, segName(seq)))
			continue
		}
		live = append(live, seq)
	}
	for i := 1; i < len(live); i++ {
		if live[i] != live[i-1]+1 {
			return fmt.Errorf("storage: missing segment %d (have %d then %d)", live[i-1]+1, live[i-1], live[i])
		}
	}
	if len(live) > 0 && live[0] != snapSeq {
		return fmt.Errorf("storage: missing segment %d after snapshot (first surviving segment is %d)", snapSeq, live[0])
	}

	rec := &Recovery{Store: store, SnapshotLSN: LSN(baseLSN)}
	lsn := baseLSN
	var logBytes int64
	for i, seq := range live {
		path := filepath.Join(s.dir, segName(seq))
		recs, valid, size, err := readSegmentFile(path)
		if err != nil {
			return fmt.Errorf("storage: segment %d: %w", seq, err)
		}
		if valid < size {
			if i != len(live)-1 {
				return fmt.Errorf("storage: segment %d: torn record before end of log", seq)
			}
			// Drop the torn tail so it can never be misread as
			// mid-log corruption once a new segment follows it.
			if err := os.Truncate(path, valid); err != nil {
				return fmt.Errorf("storage: segment %d: truncate torn tail: %w", seq, err)
			}
			if err := syncFile(path); err != nil {
				return fmt.Errorf("storage: segment %d: %w", seq, err)
			}
		}
		for j, r := range recs {
			if err := store.ApplyLogged(r.Delta); err != nil {
				return fmt.Errorf("storage: segment %d record %d: %w", seq, j, err)
			}
			lsn++
		}
		rec.Records = append(rec.Records, recs...)
		logBytes += valid
	}
	rec.LSN = LSN(lsn)
	s.rec = rec
	s.lsn = lsn
	s.logBytes = logBytes

	s.seg = snapSeq
	if len(live) > 0 {
		s.seg = live[len(live)-1] + 1
	}
	return s.newSegLocked()
}

// newSegLocked creates the live segment file s.seg and makes its
// existence durable.
func (s *File) newSegLocked() error {
	f, err := os.OpenFile(filepath.Join(s.dir, segName(s.seg)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: new segment: %w", err)
	}
	bw := bufio.NewWriter(f)
	if _, err := bw.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("storage: new segment: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("storage: new segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: new segment: %w", err)
	}
	if err := wm.SyncDir(s.dir); err != nil {
		f.Close()
		return fmt.Errorf("storage: new segment: %w", err)
	}
	s.f = f
	bw.Reset(f)
	s.bw = bw
	s.segBytes = int64(len(segMagic))
	s.logBytes += int64(len(segMagic))
	return nil
}

func segName(seq uint64) string { return fmt.Sprintf(segNameFmt, seq) }

// Append encodes and stages one record on the live segment, rotating
// it when full. The record is durable only after the next Sync.
func (s *File) Append(r *Record) (LSN, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("storage: append on closed backend")
	}
	body := EncodeRecord(s.buf[:0], r)
	s.buf = body[:0]
	s.frame = wm.AppendFrame(s.frame[:0], body)
	if _, err := s.bw.Write(s.frame); err != nil {
		return 0, fmt.Errorf("storage: append: %w", err)
	}
	n := int64(len(s.frame))
	s.segBytes += n
	s.logBytes += n
	s.lsn++
	lsn := LSN(s.lsn)
	if s.segBytes >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// rotateLocked seals the live segment (flush, fsync, close) and opens
// the next one.
func (s *File) rotateLocked() error {
	if err := s.sealLocked(); err != nil {
		return err
	}
	s.seg++
	return s.newSegLocked()
}

// sealLocked flushes and fsyncs the live segment and closes it.
func (s *File) sealLocked() error {
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("storage: seal segment: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("storage: seal segment: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("storage: seal segment: %w", err)
	}
	s.f = nil
	return nil
}

// Sync flushes buffered records and fsyncs the live segment — the
// group-commit durability point. It also surfaces any background
// checkpoint failure.
func (s *File) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cpErr != nil {
		return s.cpErr
	}
	if s.closed {
		return errors.New("storage: sync on closed backend")
	}
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	return nil
}

// CheckpointDue implements AutoCheckpointer: true once CheckpointBytes
// of log accumulated since the last checkpoint and none is in flight.
func (s *File) CheckpointDue() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed && !s.cpBusy && s.opts.CheckpointBytes > 0 &&
		s.logBytes >= s.opts.CheckpointBytes
}

// BeginCheckpoint implements AutoCheckpointer. It seals the log at a
// segment boundary on the caller's goroutine — records appended
// afterwards land in segments the snapshot will not cover — and
// returns the completion that writes the snapshot and prunes covered
// segments. The completion must be called with a store reflecting
// exactly the records up to the boundary (the engine clones its store
// immediately, before committing anything else).
func (s *File) BeginCheckpoint() (func(*wm.Store) error, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("storage: checkpoint on closed backend")
	}
	if s.cpBusy {
		return nil, errors.New("storage: checkpoint already in flight")
	}
	logBytesAt := s.logBytes
	if err := s.rotateLocked(); err != nil {
		return nil, err
	}
	boundary := s.seg // snapshot covers segments < boundary
	lsnAt := s.lsn
	s.cpBusy = true
	s.cpWG.Add(1)
	complete := func(st *wm.Store) error {
		defer s.cpWG.Done()
		err := s.writeSnapshot(st, boundary, lsnAt)
		s.mu.Lock()
		defer s.mu.Unlock()
		s.cpBusy = false
		if err != nil {
			s.cpErr = err
			return err
		}
		s.logBytes -= logBytesAt
		return nil
	}
	return complete, nil
}

// writeSnapshot durably writes st as the snapshot covering segments
// below seq (last LSN lsn), then prunes covered segments and stale
// snapshots.
func (s *File) writeSnapshot(st *wm.Store, seq, lsn uint64) error {
	tmp, err := os.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	cleanup := func() { tmp.Close(); os.Remove(tmp.Name()) }
	if err := st.WriteSnapshot(tmp); err != nil {
		cleanup()
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	name := fmt.Sprintf(snapNameFmt, seq, lsn)
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	if err := wm.SyncDir(s.dir); err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	// The new snapshot is durable; everything it covers can go. A
	// crash mid-prune is fine — recovery finishes the job.
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("storage: checkpoint prune: %w", err)
	}
	for _, e := range entries {
		en := e.Name()
		switch {
		case strings.HasPrefix(en, segPrefix) && strings.HasSuffix(en, segSuffix):
			var sq uint64
			if _, err := fmt.Sscanf(en, segNameFmt, &sq); err == nil && sq < seq {
				os.Remove(filepath.Join(s.dir, en))
			}
		case strings.HasPrefix(en, snapPrefix) && strings.HasSuffix(en, snapSuffix) && en != name:
			os.Remove(filepath.Join(s.dir, en))
		}
	}
	return wm.SyncDir(s.dir)
}

// Checkpoint folds the store into a snapshot synchronously.
func (s *File) Checkpoint(st *wm.Store) error {
	complete, err := s.BeginCheckpoint()
	if err != nil {
		return err
	}
	return complete(st)
}

// Recover returns the state recovered when the backend was opened.
// The store is handed to the caller; the backend does not mutate it.
// To observe state appended after open, close and reopen the
// directory (what a restarted process does).
func (s *File) Recover() (*Recovery, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec, nil
}

// LSN returns the last assigned log sequence number.
func (s *File) LSN() LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return LSN(s.lsn)
}

// Close seals the live segment, waits for any background checkpoint,
// and surfaces sticky errors.
func (s *File) Close() error {
	s.mu.Lock()
	var sealErr error
	if !s.closed {
		s.closed = true
		if s.f != nil {
			sealErr = s.sealLocked()
		}
	}
	s.mu.Unlock()
	s.cpWG.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if sealErr != nil {
		return sealErr
	}
	return s.cpErr
}

// --- segment record codec ---

// EncodeRecord appends the canonical binary encoding of a record to b:
// rule, instantiation key, WME fingerprints, then the delta. The same
// encoding frames the File backend's segments and the replication
// stream, so a byte comparison of encoded records is a comparison of
// everything a commit durably means (DecodeRecord is the inverse).
func EncodeRecord(b []byte, r *Record) []byte {
	b = appendString(b, r.Rule)
	b = appendString(b, r.Inst)
	b = appendU64(b, uint64(len(r.WMEs)))
	for _, w := range r.WMEs {
		b = appendString(b, w)
	}
	return wm.EncodeDelta(b, r.Delta)
}

// DecodeRecord parses a segment record body produced by the file
// backend. It is exported so crash-recovery tests can replay segments
// independently of Recover.
func DecodeRecord(body []byte) (*Record, error) {
	r := &Record{}
	pos := 0
	var err error
	if r.Rule, pos, err = readString(body, pos); err != nil {
		return nil, err
	}
	if r.Inst, pos, err = readString(body, pos); err != nil {
		return nil, err
	}
	n, pos, err := readU64(body, pos)
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("storage: absurd fingerprint count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		var fp string
		if fp, pos, err = readString(body, pos); err != nil {
			return nil, err
		}
		r.WMEs = append(r.WMEs, fp)
	}
	if r.Delta, err = wm.DecodeDelta(body[pos:]); err != nil {
		return nil, err
	}
	return r, nil
}

// ReadSegment scans one segment stream, returning the decoded records
// of its valid prefix and that prefix's length in bytes. A torn tail
// simply ends the scan (callers compare valid against the file size
// to detect it); mid-log corruption is an error. The header itself
// can be torn too — a crash at rotation may leave the new segment
// with a partial (or absent) magic string — so a short header whose
// bytes are a prefix of the magic reports an empty valid prefix
// rather than an error; the recovery loop then applies the same
// final-segment-only rule it applies to torn records.
func ReadSegment(r io.Reader) (recs []*Record, valid int64, err error) {
	head := make([]byte, len(segMagic))
	n, herr := io.ReadFull(r, head)
	if herr != nil {
		if (herr == io.EOF || herr == io.ErrUnexpectedEOF) && strings.HasPrefix(segMagic, string(head[:n])) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("segment header: %w", herr)
	}
	fs, err := wm.NewFrameScanner(io.MultiReader(strings.NewReader(string(head)), r), segMagic)
	if err != nil {
		return nil, 0, fmt.Errorf("segment header: %w", err)
	}
	for {
		body, err := fs.Next()
		if err == io.EOF {
			return recs, fs.ValidBytes(), nil
		}
		if err != nil {
			return recs, fs.ValidBytes(), fmt.Errorf("record %d: %w", fs.Records(), err)
		}
		rec, derr := DecodeRecord(body)
		if derr != nil {
			if rerr := fs.Reject(derr); rerr == io.EOF {
				return recs, fs.ValidBytes(), nil
			}
			return recs, fs.ValidBytes(), fmt.Errorf("record %d: %w", fs.Records(), derr)
		}
		recs = append(recs, rec)
	}
}

// readSegmentFile reads a segment from disk, reporting its records,
// valid prefix, and on-disk size.
func readSegmentFile(path string) (recs []*Record, valid, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, 0, err
	}
	recs, valid, err = ReadSegment(f)
	return recs, valid, fi.Size(), err
}

// syncFile fsyncs the file at path.
func syncFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// --- little-codec helpers (byte-slice variants of wm's) ---

func appendU64(b []byte, v uint64) []byte {
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], v)
	return append(b, t[:]...)
}

func appendString(b []byte, s string) []byte {
	b = appendU64(b, uint64(len(s)))
	return append(b, s...)
}

func readU64(b []byte, pos int) (uint64, int, error) {
	if pos+8 > len(b) {
		return 0, pos, io.ErrUnexpectedEOF
	}
	return binary.BigEndian.Uint64(b[pos:]), pos + 8, nil
}

func readString(b []byte, pos int) (string, int, error) {
	n, pos, err := readU64(b, pos)
	if err != nil {
		return "", pos, err
	}
	if n > 1<<24 || pos+int(n) > len(b) {
		return "", pos, io.ErrUnexpectedEOF
	}
	return string(b[pos : pos+int(n)]), pos + int(n), nil
}
