package storage

import (
	"errors"
	"fmt"
	"sync"

	"pdps/internal/wm"
)

// Mem is the in-memory backend: records accumulate in a slice, Sync is
// a no-op, and nothing survives the process. It exists for tests and
// as the zero-durability baseline a file backend is measured against —
// an engine with a Mem backend should run within noise of one with no
// storage at all. Unlike File, Recover folds the backend's current
// contents (there is no process boundary to recover across).
type Mem struct {
	mu      sync.Mutex
	base    *wm.Store // last checkpoint
	records []*Record // appended since base
	lsn     uint64
	snapLSN uint64
	closed  bool
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{base: wm.NewStore()}
}

// Append stages the record.
func (m *Mem) Append(r *Record) (LSN, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, errors.New("storage: append on closed backend")
	}
	m.records = append(m.records, r)
	m.lsn++
	return LSN(m.lsn), nil
}

// Sync is a no-op: memory is as durable as it gets.
func (m *Mem) Sync() error { return nil }

// Checkpoint folds the store into the base and drops the record tail.
func (m *Mem) Checkpoint(s *wm.Store) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.base = s.Clone()
	m.records = nil
	m.snapLSN = m.lsn
	return nil
}

// Recover replays the record tail over the last checkpoint.
func (m *Mem) Recover() (*Recovery, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.base.Clone()
	for i, r := range m.records {
		if err := s.ApplyLogged(r.Delta); err != nil {
			return nil, fmt.Errorf("storage: mem replay record %d: %w", i, err)
		}
	}
	return &Recovery{
		Store:       s,
		LSN:         LSN(m.lsn),
		SnapshotLSN: LSN(m.snapLSN),
		Records:     append([]*Record(nil), m.records...),
	}, nil
}

// Close marks the backend unusable.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
