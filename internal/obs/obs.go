// Package obs is the engine observability layer: a low-overhead
// metrics registry of atomic counters, peak-tracking gauges and
// lock-free histograms with fixed log-scale buckets, plus labeled
// series (per-rule, per-lock-mode-pair, per-class). The four hot
// layers of the system — the lock manager, the engine committer, the
// matchers and the working-memory store — record into it on every
// operation, so the quantities Section 5 of the paper argues about
// (degree of conflict, abort and retry counts, lock-wait time,
// per-rule firing latency) are observable on a live run instead of
// only being assertable by the psbench harness.
//
// Design constraints, in order:
//
//  1. Hot-path writes are wait-free: one atomic add for a counter, a
//     handful for a histogram. Registry lookups (mutex + map) happen
//     only at wiring time; the layers cache their handles.
//  2. Snapshots are deterministic: series are ordered by (name,
//     sorted labels) and all arithmetic is integral, so two runs that
//     perform the same work in any interleaving produce byte-identical
//     JSON. Combined with the virtual clock of internal/sched this
//     makes whole metric snapshots replayable bit-for-bit (see the
//     determinism test in internal/detsched).
//  3. No dependencies beyond the standard library, and no dependency
//     on any other pdps package — every layer may import obs.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value dimension of a metric series, e.g.
// {rule=advance} or {modes=Rc/Wa}.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotone atomic event counter. The zero value is ready
// to use. Counters wrap around on int64 overflow (two's complement),
// which at one increment per nanosecond takes ~292 years.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d should be non-negative; the counter does not check).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic level indicator that also remembers its peak.
type Gauge struct {
	cur atomic.Int64
	max atomic.Int64
}

// Set records the current level and raises the peak if exceeded.
func (g *Gauge) Set(v int64) {
	g.cur.Store(v)
	g.raise(v)
}

// Add moves the level by d and returns the new value.
func (g *Gauge) Add(d int64) int64 {
	v := g.cur.Add(d)
	g.raise(v)
	return v
}

func (g *Gauge) raise(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.cur.Load() }

// Peak returns the highest level ever recorded.
func (g *Gauge) Peak() int64 { return g.max.Load() }

// numBuckets is the histogram bucket count: bucket 0 holds values
// <= 0 and bucket i (1..63) holds values in [2^(i-1), 2^i).
const numBuckets = 64

// Histogram is a lock-free histogram over int64 values with fixed
// log-scale (power-of-two) buckets: bucket 0 counts samples <= 0 and
// bucket i counts samples in [2^(i-1), 2^i). Every Observe is a small,
// bounded number of atomic operations — no mutex, so concurrent
// recording never serialises the hot paths it measures — and all
// state is integral, so the final values are independent of the
// interleaving of concurrent observers (adds commute; min/max are
// order-free CAS races to the same fixed point).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0
	max     atomic.Int64 // valid when count > 0
	buckets [numBuckets]atomic.Int64
}

// bucketIndex maps a sample to its bucket: 0 for v <= 0, else
// floor(log2(v))+1 clamped to the last bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v)) // floor(log2(v)) + 1
	if i >= numBuckets {
		i = numBuckets - 1
	}
	return i
}

// BucketBounds returns the half-open value range [lo, hi) of bucket i;
// bucket 0 is (-inf, 1) and the last bucket is unbounded above
// (hi = math.MaxInt64).
func BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return -1 << 63, 1
	}
	lo = 1 << uint(i-1)
	if i >= numBuckets-1 {
		return lo, 1<<63 - 1
	}
	return lo, 1 << uint(i)
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	if h.count.Add(1) == 1 {
		// First observer seeds min/max; concurrent observers spin on
		// the CAS below against the zero seed, which is safe because
		// the loops only ever tighten the bounds.
		h.min.CompareAndSwap(0, v)
		h.max.CompareAndSwap(0, v)
	}
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(int64(d))
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Kind discriminates metric types in a snapshot.
type Kind uint8

// Metric kinds.
const (
	// KindCounter is a monotone event count.
	KindCounter Kind = iota
	// KindGauge is a level with a remembered peak.
	KindGauge
	// KindHistogram is a log-scale distribution of int64 samples.
	KindHistogram
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// metric is one registered series.
type metric struct {
	name   string
	labels []Label // sorted by key
	unit   string
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry is a set of named metric series. Lookups are get-or-create
// and idempotent; the returned handles are the live metrics, safe for
// concurrent use and meant to be cached by the instrumented layer (a
// registry lookup takes a mutex, a handle operation does not).
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// seriesKey canonicalises (name, labels): labels sorted by key.
func seriesKey(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String(), ls
}

// lookup returns the series, creating it if absent. It panics if the
// name+labels are already registered with a different kind — that is a
// programming error in the instrumentation, not a runtime condition.
func (r *Registry) lookup(name string, unit string, kind Kind, labels []Label) *metric {
	key, ls := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: %s registered as %v, requested as %v", key, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, labels: ls, unit: unit, kind: kind}
	switch kind {
	case KindCounter:
		m.counter = &Counter{}
	case KindGauge:
		m.gauge = &Gauge{}
	case KindHistogram:
		m.hist = &Histogram{}
	}
	r.byKey[key] = m
	return m
}

// Counter returns the counter series with the given name and labels,
// creating it if absent.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, "", KindCounter, labels).counter
}

// Gauge returns the gauge series with the given name and labels,
// creating it if absent.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, "", KindGauge, labels).gauge
}

// Histogram returns the histogram series with the given name, unit
// ("ns" for durations, a domain word like "changes" otherwise) and
// labels, creating it if absent.
func (r *Registry) Histogram(name, unit string, labels ...Label) *Histogram {
	return r.lookup(name, unit, KindHistogram, labels).hist
}

// Bucket is one non-empty histogram bucket of a snapshot: N samples
// with Lo <= sample < Hi.
type Bucket struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	N  int64 `json:"n"`
}

// CounterPoint is a counter's snapshot value.
type CounterPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugePoint is a gauge's snapshot value and peak.
type GaugePoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
	Peak   int64             `json:"peak"`
}

// HistogramPoint is a histogram's snapshot: count, sum, extrema and
// the non-empty log-scale buckets.
type HistogramPoint struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Unit    string            `json:"unit,omitempty"`
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Min     int64             `json:"min"`
	Max     int64             `json:"max"`
	Buckets []Bucket          `json:"buckets,omitempty"`
}

// Mean returns the average sample, 0 when empty.
func (p HistogramPoint) Mean() int64 {
	if p.Count == 0 {
		return 0
	}
	return p.Sum / p.Count
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1)
// from the bucket boundaries, clamped to the observed maximum. All
// arithmetic is integral, keeping snapshots deterministic.
func (p HistogramPoint) Quantile(q float64) int64 {
	if p.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(p.Count))
	if float64(target) < q*float64(p.Count) {
		target++ // ceil
	}
	var seen int64
	for _, b := range p.Buckets {
		seen += b.N
		if seen >= target {
			upper := b.Hi - 1
			if upper > p.Max {
				upper = p.Max
			}
			return upper
		}
	}
	return p.Max
}

// Snapshot is a structured, JSON-marshalable view of every series in
// a registry at one moment. Series appear sorted by (name, labels), so
// two snapshots of runs that performed the same work are byte-identical
// when marshaled — the property the deterministic-replay test pins.
//
// A snapshot taken while the engine runs is per-series atomic but not
// a consistent cut across series (e.g. a commit may be counted in
// engine_commits_total and not yet in its per-rule series).
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
}

func labelMap(ls []Label) map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot captures every registered series.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	keys := make([]string, 0, len(r.byKey))
	ms := make(map[string]*metric, len(r.byKey))
	for k, m := range r.byKey {
		keys = append(keys, k)
		ms[k] = m
	}
	r.mu.Unlock()
	sort.Strings(keys)

	var s Snapshot
	for _, k := range keys {
		m := ms[k]
		switch m.kind {
		case KindCounter:
			s.Counters = append(s.Counters, CounterPoint{
				Name: m.name, Labels: labelMap(m.labels), Value: m.counter.Value()})
		case KindGauge:
			s.Gauges = append(s.Gauges, GaugePoint{
				Name: m.name, Labels: labelMap(m.labels),
				Value: m.gauge.Value(), Peak: m.gauge.Peak()})
		case KindHistogram:
			h := m.hist
			p := HistogramPoint{
				Name: m.name, Labels: labelMap(m.labels), Unit: m.unit,
				Count: h.count.Load(), Sum: h.sum.Load()}
			if p.Count > 0 {
				p.Min, p.Max = h.min.Load(), h.max.Load()
			}
			for i := range h.buckets {
				if n := h.buckets[i].Load(); n > 0 {
					lo, hi := BucketBounds(i)
					p.Buckets = append(p.Buckets, Bucket{Lo: lo, Hi: hi, N: n})
				}
			}
			s.Histograms = append(s.Histograms, p)
		}
	}
	return s
}

// labelsMatch reports whether got carries exactly the queried labels.
func labelsMatch(got map[string]string, want []Label) bool {
	if len(got) != len(want) {
		return false
	}
	for _, l := range want {
		if got[l.Key] != l.Value {
			return false
		}
	}
	return true
}

// Counter returns the snapshot value of the named counter series, or 0
// if absent.
func (s Snapshot) Counter(name string, labels ...Label) int64 {
	for _, p := range s.Counters {
		if p.Name == name && labelsMatch(p.Labels, labels) {
			return p.Value
		}
	}
	return 0
}

// Gauge returns the snapshot value and peak of the named gauge series.
func (s Snapshot) Gauge(name string, labels ...Label) (value, peak int64) {
	for _, p := range s.Gauges {
		if p.Name == name && labelsMatch(p.Labels, labels) {
			return p.Value, p.Peak
		}
	}
	return 0, 0
}

// Histogram returns the snapshot of the named histogram series.
func (s Snapshot) Histogram(name string, labels ...Label) (HistogramPoint, bool) {
	for _, p := range s.Histograms {
		if p.Name == name && labelsMatch(p.Labels, labels) {
			return p, true
		}
	}
	return HistogramPoint{}, false
}

// MarshalIndent renders the snapshot as stable, human-diffable JSON —
// the format of the golden metrics file and the psbench -metrics-dir
// artifacts.
func (s Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// labelString renders a point's labels as {k=v,...} with sorted keys.
func labelString(m map[string]string) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k])
	}
	b.WriteByte('}')
	return b.String()
}

// fmtDur renders a nanosecond quantity as a duration.
func fmtDur(ns int64) string { return time.Duration(ns).String() }

// WriteText renders the snapshot as an aligned, human-readable dump:
// counters and gauges one per line, histograms as count/mean/min/max
// and p99 (durations rendered in time units when the unit is "ns").
func (s Snapshot) WriteText(w io.Writer) {
	for _, p := range s.Counters {
		fmt.Fprintf(w, "%-48s %12d\n", p.Name+labelString(p.Labels), p.Value)
	}
	for _, p := range s.Gauges {
		fmt.Fprintf(w, "%-48s %12d (peak %d)\n", p.Name+labelString(p.Labels), p.Value, p.Peak)
	}
	for _, p := range s.Histograms {
		render := func(v int64) string {
			if p.Unit == "ns" {
				return fmtDur(v)
			}
			return fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(w, "%-48s n=%d mean=%s min=%s max=%s p99<=%s\n",
			p.Name+labelString(p.Labels), p.Count,
			render(p.Mean()), render(p.Min), render(p.Max), render(p.Quantile(0.99)))
	}
}

// Text returns WriteText's output as a string.
func (s Snapshot) Text() string {
	var b strings.Builder
	s.WriteText(&b)
	return b.String()
}

// Expvar adapts the registry to the standard expvar interface: publish
// it with expvar.Publish and the whole registry appears, as the JSON
// form of its Snapshot, in the /debug/vars endpoint every net/http
// server exposes once expvar is imported.
func (r *Registry) Expvar() expvar.Func {
	return expvar.Func(func() any { return r.Snapshot() })
}
