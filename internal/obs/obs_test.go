package obs

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{math.MaxInt64, numBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every positive sample must fall inside its bucket's [lo, hi).
	for _, c := range cases {
		if c.v <= 0 {
			continue
		}
		lo, hi := BucketBounds(bucketIndex(c.v))
		if c.v < lo || c.v >= hi && hi != math.MaxInt64 {
			t.Errorf("sample %d outside bucket bounds [%d, %d)", c.v, lo, hi)
		}
	}
	// Buckets tile the positive axis with no gaps or overlaps.
	for i := 1; i < numBuckets-1; i++ {
		_, hi := BucketBounds(i)
		lo, _ := BucketBounds(i + 1)
		if hi != lo {
			t.Errorf("gap between bucket %d (hi=%d) and %d (lo=%d)", i, hi, i+1, lo)
		}
	}
}

func TestCounterOverflow(t *testing.T) {
	var c Counter
	c.Add(math.MaxInt64)
	c.Inc()
	if got := c.Value(); got != math.MinInt64 {
		t.Errorf("counter after overflow = %d, want wraparound to %d", got, int64(math.MinInt64))
	}
}

func TestGaugePeak(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Add(3)
	g.Add(-6)
	if v := g.Value(); v != 2 {
		t.Errorf("Value = %d, want 2", v)
	}
	if p := g.Peak(); p != 8 {
		t.Errorf("Peak = %d, want 8", p)
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 7} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 113 {
		t.Errorf("Sum = %d, want 113", h.Sum())
	}
	r := NewRegistry()
	// Snapshot through a registry to exercise the point path.
	rh := r.Histogram("h", "ns")
	for _, v := range []int64{1, 2, 3, 100, 7} {
		rh.Observe(v)
	}
	p, ok := r.Snapshot().Histogram("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if p.Min != 1 || p.Max != 100 {
		t.Errorf("Min/Max = %d/%d, want 1/100", p.Min, p.Max)
	}
	if m := p.Mean(); m != 22 {
		t.Errorf("Mean = %d, want 22", m)
	}
	if q := p.Quantile(1); q != 100 {
		t.Errorf("Quantile(1) = %d, want 100 (clamped to max)", q)
	}
	if q := p.Quantile(0.5); q < 3 || q > 7 {
		t.Errorf("Quantile(0.5) = %d, want in [3, 7]", q)
	}
}

func TestObserveDurationClampsNegative(t *testing.T) {
	var h Histogram
	h.ObserveDuration(-time.Second)
	if h.Sum() != 0 || h.Count() != 1 {
		t.Errorf("negative duration recorded as sum=%d count=%d, want 0/1", h.Sum(), h.Count())
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Mix registry lookups with cached-handle updates so the
			// get-or-create path races with readers under -race.
			c := r.Counter("c", L("w", "shared"))
			h := r.Histogram("h", "ns")
			g := r.Gauge("g")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(i%64 + 1))
				g.Add(1)
				g.Add(-1)
			}
		}(w)
	}
	// A reader snapshots concurrently with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	s := r.Snapshot()
	if got := s.Counter("c", L("w", "shared")); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	p, _ := s.Histogram("h")
	if p.Count != workers*per {
		t.Errorf("histogram count = %d, want %d", p.Count, workers*per)
	}
	if p.Min != 1 || p.Max != 64 {
		t.Errorf("Min/Max = %d/%d, want 1/64", p.Min, p.Max)
	}
	var n int64
	for _, b := range p.Buckets {
		n += b.N
	}
	if n != p.Count {
		t.Errorf("bucket total = %d, want %d", n, p.Count)
	}
	if v, _ := s.Gauge("g"); v != 0 {
		t.Errorf("gauge settled at %d, want 0", v)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func(order []string) []byte {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name, L("k", "v")).Add(int64(len(name)))
		}
		r.Histogram("zh", "ns").Observe(42)
		r.Gauge("ag").Set(7)
		b, err := r.Snapshot().MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := build([]string{"b", "a", "c"})
	b := build([]string{"c", "b", "a"})
	if !bytes.Equal(a, b) {
		t.Errorf("snapshots differ by registration order:\n%s\n---\n%s", a, b)
	}
}

func TestLabelCanonicalisation(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("c", L("a", "1"), L("b", "2"))
	c2 := r.Counter("c", L("b", "2"), L("a", "1"))
	if c1 != c2 {
		t.Error("label order created distinct series")
	}
	c3 := r.Counter("c", L("a", "1"))
	if c3 == c1 {
		t.Error("different label sets shared a series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x")
}

func TestTextDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine_commits_total", L("rule", "advance")).Add(3)
	r.Gauge("engine_dispatch_depth").Set(2)
	r.Histogram("lock_wait_ns", "ns").ObserveDuration(3 * time.Millisecond)
	txt := r.Snapshot().Text()
	for _, want := range []string{
		"engine_commits_total{rule=advance}",
		"engine_dispatch_depth",
		"lock_wait_ns",
		"3ms",
	} {
		if !bytes.Contains([]byte(txt), []byte(want)) {
			t.Errorf("text dump missing %q:\n%s", want, txt)
		}
	}
}
