package repl

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pdps/internal/detsched"
	"pdps/internal/engine"
	"pdps/internal/lang"
	"pdps/internal/obs"
	"pdps/internal/sched"
	"pdps/internal/server"
	"pdps/internal/storage"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// ErrFollowerClosed reports a follower torn down by Close before its
// stream finished.
var ErrFollowerClosed = errors.New("repl: follower closed")

// ErrDiverged wraps every divergence verdict so callers can branch on
// it with errors.Is.
var ErrDiverged = errors.New("repl: replica diverged from primary")

// FollowerOptions configures a replica.
type FollowerOptions struct {
	// ID labels this follower's metric series (follower="id"); "" emits
	// unlabeled series. Give each follower sharing a registry an ID.
	ID string
	// Mode is server.ReplModeReplay (default) or server.ReplModeApply.
	Mode string
	// AckEvery is the applied-record cadence of LSN acks; 0 means 32.
	AckEvery int
	// Metrics receives the follower's repl_* series; nil means a fresh
	// registry. Never the engine's registry (see PrimaryOptions).
	Metrics *obs.Registry
}

// Report is a finished follower's summary.
type Report struct {
	// Mode is the granted replication mode.
	Mode string
	// Records and Choices are the applied totals.
	Records uint64
	Choices int
	// Fired/Halted/Quiescent echo the verified run summary.
	Fired     int
	Halted    bool
	Quiescent bool
	// StoreHash is the replica store's hash, equal to the primary's.
	StoreHash string
	// TraceChecked reports that the commit trace passed the
	// admissibility oracle (CheckTrace in replay mode, CheckTraceFrom
	// over the bootstrap base in apply mode).
	TraceChecked bool
	// MetricsJSON is the replica's engine metrics snapshot (replay
	// mode), byte-identical to the primary's.
	MetricsJSON []byte
	// Outcome is the replica's own run outcome (replay mode only).
	Outcome *detsched.RunOutcome
}

// Follower is one replica. Lifecycle: NewFollower → Connect →
// (Disconnect/Connect as needed) → Wait → Close. A replay follower
// re-executes the primary's run from the streamed schedule; an apply
// follower folds shipped records over a bootstrap snapshot. On any
// divergence the follower halts: the engine is aborted, the divergence
// counter fires, and View refuses further reads.
type Follower struct {
	opts FollowerOptions
	met  *followerMetrics
	reg  *obs.Registry

	mu     sync.Mutex
	conn   net.Conn
	wmu    sync.Mutex // serialises ack writes
	closed bool

	// Shipped state (set at first hello).
	program string
	prog    engine.Program
	dcfg    detsched.Config

	// Replay-mode engine.
	started      bool
	stream       *sched.Stream
	ctl          *sched.Det
	engineExited chan struct{}
	out          *detsched.RunOutcome
	mutateChoice func(seq int, c sched.Choice) sched.Choice // test hook: inject divergence

	// Replica state.
	shadow       *wm.Store
	base         *wm.Store // apply mode: bootstrap clone for CheckTraceFrom
	commits      []trace.Event
	appliedLSN   uint64
	shippedHigh  uint64
	fedChoices   int
	lastAck      uint64
	ownAhead     map[uint64][]byte
	shippedAhead map[uint64][]byte

	fin      *fin
	finished bool
	report   *Report
	err      error
	done     chan struct{}
	doneOnce sync.Once
}

// NewFollower builds an unconnected replica.
func NewFollower(opts FollowerOptions) *Follower {
	if opts.Mode == "" {
		opts.Mode = server.ReplModeReplay
	}
	if opts.AckEvery == 0 {
		opts.AckEvery = 32
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Follower{
		opts:         opts,
		met:          newFollowerMetrics(reg, opts.ID),
		reg:          reg,
		ownAhead:     make(map[uint64][]byte),
		shippedAhead: make(map[uint64][]byte),
		done:         make(chan struct{}),
	}
}

// Metrics returns the registry carrying the follower's repl_* series.
func (f *Follower) Metrics() *obs.Registry { return f.reg }

// Connect dials the primary, performs the repl_hello handshake (with
// resume positions when reconnecting), and starts the reader. The
// first replay-mode connect also starts the replica engine.
func (f *Follower) Connect(addr string) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrFollowerClosed
	}
	if f.conn != nil {
		f.mu.Unlock()
		return errors.New("repl: follower already connected")
	}
	fromChoice := f.fedChoices
	fromLSN := f.shippedHigh
	if f.opts.Mode == server.ReplModeApply {
		fromLSN = f.appliedLSN
	}
	f.mu.Unlock()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	hello := &server.Request{
		Type:       server.ReqReplHello,
		ID:         1,
		ReplMode:   f.opts.Mode,
		FromChoice: fromChoice,
		FromLSN:    fromLSN,
	}
	hb, err := server.EncodeRequest(hello)
	if err == nil {
		err = server.WriteFrame(c, hb)
	}
	var resp *server.Response
	if err == nil {
		var payload []byte
		if payload, err = server.ReadFrame(c, 0); err == nil {
			resp, err = server.DecodeResponse(payload)
		}
	}
	if err == nil && resp.Type == server.RespError {
		err = fmt.Errorf("repl: hello rejected: %s: %s", resp.Code, resp.Error)
	}
	if err == nil && resp.Type != server.RespReplHello {
		err = fmt.Errorf("repl: unexpected hello response %q", resp.Type)
	}
	if err != nil {
		c.Close()
		return err
	}
	if err := f.adopt(resp); err != nil {
		c.Close()
		return err
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		c.Close()
		return ErrFollowerClosed
	}
	f.conn = c
	startEngine := f.opts.Mode == server.ReplModeReplay && !f.started
	if startEngine {
		f.started = true
		f.stream = sched.NewStream()
		f.ctl = sched.NewDet(f.stream)
		f.engineExited = make(chan struct{})
	}
	f.mu.Unlock()
	if startEngine {
		go f.runEngine()
	}
	go f.readLoop(c)
	return nil
}

// adopt installs the hello payload: program and config on first
// contact, plus the bootstrap snapshot in apply mode.
func (f *Follower) adopt(resp *server.Response) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.program == "" {
		var cfg RunConfig
		if len(resp.ReplConfig) > 0 {
			if err := json.Unmarshal(resp.ReplConfig, &cfg); err != nil {
				return fmt.Errorf("repl: hello config: %w", err)
			}
		}
		dcfg, err := cfg.detConfig()
		if err != nil {
			return err
		}
		prog, err := lang.Parse(resp.Program)
		if err != nil {
			return fmt.Errorf("repl: hello program: %w", err)
		}
		f.program = resp.Program
		f.prog = prog
		f.dcfg = dcfg
		switch f.opts.Mode {
		case server.ReplModeApply:
			if resp.Snapshot == nil {
				return errors.New("repl: apply hello carried no snapshot")
			}
			st, err := wm.ReadSnapshot(bytes.NewReader(resp.Snapshot))
			if err != nil {
				return fmt.Errorf("repl: bootstrap snapshot: %w", err)
			}
			f.base = st
			f.shadow = st.Clone()
			f.appliedLSN = resp.SnapshotLSN
			f.shippedHigh = resp.SnapshotLSN
			f.lastAck = resp.SnapshotLSN
			f.met.snapshotsLoaded.Inc()
		default:
			// Replay replicas rebuild the initial store exactly as the
			// primary's shadow did: program WMEs inserted in order.
			st := wm.NewStore()
			for _, iw := range prog.WMEs {
				st.Insert(iw.Class, iw.Attrs)
			}
			f.shadow = st
		}
	}
	return nil
}

// runEngine executes the replica run under the network-fed schedule.
func (f *Follower) runEngine() {
	defer close(f.engineExited)
	f.mu.Lock()
	prog, cfg, ctl := f.prog, f.dcfg, f.ctl
	f.mu.Unlock()
	cfg.Storage = &captureBackend{f: f, inner: storage.NewMem()}
	out := detsched.RunUnder(prog, cfg, ctl)
	f.mu.Lock()
	f.out = &out
	f.mu.Unlock()
	f.tryFinish()
}

// captureBackend hands every record the replica engine commits to the
// byte-comparison pipeline. The inner Mem backend only assigns LSNs.
type captureBackend struct {
	f     *Follower
	inner storage.Backend
}

func (b *captureBackend) Append(r *storage.Record) (storage.LSN, error) {
	lsn, err := b.inner.Append(r)
	if err == nil {
		b.f.onOwnRecord(uint64(lsn), storage.EncodeRecord(nil, r))
	}
	return lsn, err
}

func (b *captureBackend) Sync() error                         { return b.inner.Sync() }
func (b *captureBackend) Checkpoint(s *wm.Store) error        { return b.inner.Checkpoint(s) }
func (b *captureBackend) Recover() (*storage.Recovery, error) { return b.inner.Recover() }
func (b *captureBackend) Close() error                        { return b.inner.Close() }

// readLoop consumes stream frames until the connection drops.
func (f *Follower) readLoop(c net.Conn) {
	for {
		payload, err := server.ReadFrame(c, 0)
		if err != nil {
			f.mu.Lock()
			if f.conn == c {
				f.conn = nil
			}
			f.mu.Unlock()
			return
		}
		resp, err := server.DecodeResponse(payload)
		if err != nil {
			f.failf("repl: bad frame from primary: %v", err)
			return
		}
		switch resp.Type {
		case server.RespReplChoices:
			f.onChoices(resp)
		case server.RespReplRecords:
			f.onRecords(resp)
		case server.RespReplFin:
			f.onFin(resp)
		case server.RespError:
			f.failf("repl: primary error: %s: %s", resp.Code, resp.Error)
			return
		}
	}
}

// onChoices feeds a shipped decision batch into the replica scheduler.
func (f *Follower) onChoices(resp *server.Response) {
	f.mu.Lock()
	if f.err != nil || f.opts.Mode != server.ReplModeReplay {
		f.mu.Unlock()
		return
	}
	seq := resp.ChoiceSeq
	wire := resp.Choices
	if seq > f.fedChoices {
		f.mu.Unlock()
		f.failf("repl: choice gap: got seq %d, expected %d", seq, f.fedChoices)
		return
	}
	if skip := f.fedChoices - seq; skip > 0 {
		if skip >= len(wire) {
			f.mu.Unlock()
			return
		}
		wire = wire[skip:]
	}
	chs := make([]sched.Choice, len(wire))
	for i, wc := range wire {
		ch := sched.Choice{N: wc.N, Picked: wc.P}
		if f.mutateChoice != nil {
			ch = f.mutateChoice(f.fedChoices+i, ch)
		}
		chs[i] = ch
	}
	f.fedChoices += len(chs)
	stream := f.stream
	f.mu.Unlock()
	f.met.choicesApplied.Add(int64(len(chs)))
	stream.Feed(chs)
}

// onRecords routes a shipped record batch.
func (f *Follower) onRecords(resp *server.Response) {
	ackDue := uint64(0)
	f.mu.Lock()
	for i, rb := range resp.Records {
		if f.err != nil {
			break
		}
		lsn := resp.RecLSN + uint64(i)
		if lsn <= f.shippedHigh {
			continue // resume overlap
		}
		if lsn != f.shippedHigh+1 {
			f.divergeLocked(fmt.Errorf("repl: record gap: got LSN %d after %d", lsn, f.shippedHigh))
			break
		}
		f.shippedHigh = lsn
		if f.opts.Mode == server.ReplModeApply {
			f.applyRecordLocked(lsn, rb)
		} else if own, ok := f.ownAhead[lsn]; ok {
			delete(f.ownAhead, lsn)
			if !bytes.Equal(own, rb) {
				f.divergeLocked(fmt.Errorf("repl: record %d differs from primary (%d vs %d bytes)",
					lsn, len(own), len(rb)))
			} else {
				f.applyRecordLocked(lsn, rb)
			}
		} else {
			f.shippedAhead[lsn] = append([]byte(nil), rb...)
		}
	}
	f.met.lag.Set(int64(f.shippedHigh - f.appliedLSN))
	ackDue = f.ackDueLocked()
	f.mu.Unlock()
	if ackDue > 0 {
		f.sendAck(ackDue)
	}
}

// onOwnRecord receives a record the replica engine just committed. It
// runs on a controlled engine task and must not block on the network.
func (f *Follower) onOwnRecord(lsn uint64, enc []byte) {
	ackDue := uint64(0)
	f.mu.Lock()
	if f.err == nil {
		if shipped, ok := f.shippedAhead[lsn]; ok {
			delete(f.shippedAhead, lsn)
			if !bytes.Equal(enc, shipped) {
				f.divergeLocked(fmt.Errorf("repl: record %d differs from primary (%d vs %d bytes)",
					lsn, len(enc), len(shipped)))
			} else {
				f.applyRecordLocked(lsn, enc)
				ackDue = f.ackDueLocked()
			}
		} else {
			f.ownAhead[lsn] = enc
		}
	}
	f.mu.Unlock()
	if ackDue > 0 {
		f.sendAck(ackDue)
	}
}

// applyRecordLocked folds a verified (or apply-mode) record into the
// replica store and collects its commit event.
func (f *Follower) applyRecordLocked(lsn uint64, rb []byte) {
	if lsn != f.appliedLSN+1 {
		f.divergeLocked(fmt.Errorf("repl: apply out of order: record %d after %d", lsn, f.appliedLSN))
		return
	}
	rec, err := storage.DecodeRecord(rb)
	if err == nil {
		err = f.shadow.ApplyLogged(rec.Delta)
	}
	if err != nil {
		f.divergeLocked(fmt.Errorf("repl: apply record %d: %w", lsn, err))
		return
	}
	f.appliedLSN = lsn
	if rec.Rule != "" {
		f.commits = append(f.commits, trace.Event{
			Kind: trace.KindCommit, Rule: rec.Rule, Inst: rec.Inst, WMEs: rec.WMEs,
		})
	}
	f.met.recordsApplied.Inc()
	f.met.lag.Set(int64(f.shippedHigh - f.appliedLSN))
}

// ackDueLocked returns the LSN to ack now, or 0.
func (f *Follower) ackDueLocked() uint64 {
	if f.appliedLSN-f.lastAck >= uint64(f.opts.AckEvery) {
		f.lastAck = f.appliedLSN
		return f.appliedLSN
	}
	return 0
}

// sendAck reports applied progress; errors are ignored (the primary
// treats a silent follower as laggy, and resume re-syncs positions).
func (f *Follower) sendAck(lsn uint64) {
	f.mu.Lock()
	c := f.conn
	f.mu.Unlock()
	if c == nil {
		return
	}
	b, err := server.EncodeRequest(&server.Request{Type: server.ReqReplAck, ID: 2, AckLSN: lsn})
	if err != nil {
		return
	}
	f.wmu.Lock()
	server.WriteFrame(c, b)
	f.wmu.Unlock()
}

// onFin stores the terminator and closes the schedule feed: any
// further decision the replica engine asks for is divergence.
func (f *Follower) onFin(resp *server.Response) {
	f.mu.Lock()
	if f.fin == nil {
		f.fin = &fin{
			nChoices:  resp.NChoices,
			nRecords:  resp.NRecords,
			metrics:   resp.Metrics,
			storeHash: resp.StoreHash,
			fired:     resp.Fired,
			halted:    resp.Halted,
			quiescent: resp.Quiescent,
			errMsg:    resp.Error,
		}
	}
	stream := f.stream
	f.mu.Unlock()
	if stream != nil {
		stream.Close(nil)
	}
	f.tryFinish()
}

// tryFinish runs the verification oracle once every input is in: the
// fin frame plus, in replay mode, the replica run's outcome.
func (f *Follower) tryFinish() {
	f.mu.Lock()
	if f.finished || f.err != nil || f.fin == nil ||
		(f.opts.Mode == server.ReplModeReplay && f.out == nil) {
		f.mu.Unlock()
		return
	}
	f.finished = true
	fin := f.fin
	out := f.out
	prog := f.prog
	base := f.base
	commits := append([]trace.Event(nil), f.commits...)
	shadow := f.shadow
	applied := f.appliedLSN
	fed := f.fedChoices
	leftoverOwn, leftoverShipped := len(f.ownAhead), len(f.shippedAhead)
	f.mu.Unlock()

	if fin.errMsg != "" {
		f.fail(fmt.Errorf("repl: primary run failed: %s", fin.errMsg))
		return
	}

	report := &Report{
		Mode:    f.opts.Mode,
		Records: applied,
		Choices: fed,
	}
	var verdict error
	switch f.opts.Mode {
	case server.ReplModeReplay:
		verdict = f.verifyReplay(report, fin, out, prog, shadow, applied, fed, leftoverOwn, leftoverShipped)
	default:
		verdict = f.verifyApply(report, fin, prog, base, shadow, commits, applied)
	}
	if verdict != nil {
		f.diverge(verdict)
		return
	}
	f.mu.Lock()
	f.report = report
	lsn := f.appliedLSN
	f.lastAck = lsn
	f.mu.Unlock()
	f.sendAck(lsn)
	f.doneOnce.Do(func() { close(f.done) })
}

// verifyReplay is the replay-mode divergence oracle: the replica run
// must have completed cleanly, consumed exactly the shipped schedule,
// byte-matched every record, and reproduced the primary's run summary,
// metrics snapshot and store hash; its own trace must be admissible.
func (f *Follower) verifyReplay(report *Report, fin *fin, out *detsched.RunOutcome,
	prog engine.Program, shadow *wm.Store, applied uint64, fed int, leftoverOwn, leftoverShipped int) error {
	if out.SchedErr != nil {
		if serr := f.stream.Err(); serr != nil {
			return fmt.Errorf("%w: %v", ErrDiverged, serr)
		}
		return fmt.Errorf("%w: replica schedule failed: %v", ErrDiverged, out.SchedErr)
	}
	if out.Err != nil {
		return fmt.Errorf("%w: replica engine failed: %v", ErrDiverged, out.Err)
	}
	if fed != fin.nChoices {
		return fmt.Errorf("%w: fed %d choices, primary recorded %d", ErrDiverged, fed, fin.nChoices)
	}
	if consumed := f.stream.Consumed(); consumed != fin.nChoices {
		return fmt.Errorf("%w: replica consumed %d of %d choices", ErrDiverged, consumed, fin.nChoices)
	}
	if applied != fin.nRecords || leftoverOwn != 0 || leftoverShipped != 0 {
		return fmt.Errorf("%w: applied %d of %d records (%d own / %d shipped unmatched)",
			ErrDiverged, applied, fin.nRecords, leftoverOwn, leftoverShipped)
	}
	if out.Result.Firings != fin.fired || out.Result.Halted != fin.halted ||
		quiescentOf(out.Result) != fin.quiescent {
		return fmt.Errorf("%w: run summary fired=%d halted=%v quiescent=%v, primary fired=%d halted=%v quiescent=%v",
			ErrDiverged, out.Result.Firings, out.Result.Halted, quiescentOf(out.Result),
			fin.fired, fin.halted, fin.quiescent)
	}
	mb, err := out.Metrics.MarshalIndent()
	if err != nil {
		return fmt.Errorf("%w: snapshot replica metrics: %v", ErrDiverged, err)
	}
	canon, err := canonMetrics(mb)
	if err != nil {
		return fmt.Errorf("%w: canonicalise replica metrics: %v", ErrDiverged, err)
	}
	if !bytes.Equal(canon, fin.metrics) {
		return fmt.Errorf("%w: metrics snapshot differs (%d vs %d bytes)", ErrDiverged, len(canon), len(fin.metrics))
	}
	hash, err := storeHash(shadow)
	if err != nil {
		return fmt.Errorf("%w: hash replica store: %v", ErrDiverged, err)
	}
	if hash != fin.storeHash {
		return fmt.Errorf("%w: store hash %s, primary %s", ErrDiverged, hash, fin.storeHash)
	}
	if err := engine.CheckTrace(prog, out.Result.Log.Commits()); err != nil {
		return fmt.Errorf("%w: replica trace inadmissible: %v", ErrDiverged, err)
	}
	report.Fired = out.Result.Firings
	report.Halted = out.Result.Halted
	report.Quiescent = quiescentOf(out.Result)
	report.StoreHash = hash
	report.MetricsJSON = mb
	report.TraceChecked = true
	report.Outcome = out
	return nil
}

// verifyApply is the apply-mode oracle: every shipped record folded,
// the store hash equal, and the commit suffix admissible from the
// bootstrap base (CheckTraceFrom).
func (f *Follower) verifyApply(report *Report, fin *fin, prog engine.Program,
	base *wm.Store, shadow *wm.Store, commits []trace.Event, applied uint64) error {
	if applied != fin.nRecords {
		return fmt.Errorf("%w: applied %d of %d records", ErrDiverged, applied, fin.nRecords)
	}
	hash, err := storeHash(shadow)
	if err != nil {
		return fmt.Errorf("%w: hash replica store: %v", ErrDiverged, err)
	}
	if hash != fin.storeHash {
		return fmt.Errorf("%w: store hash %s, primary %s", ErrDiverged, hash, fin.storeHash)
	}
	if err := engine.CheckTraceFrom(base, prog.Rules, commits); err != nil {
		return fmt.Errorf("%w: applied trace inadmissible: %v", ErrDiverged, err)
	}
	report.Fired = fin.fired
	report.Halted = fin.halted
	report.Quiescent = fin.quiescent
	report.StoreHash = hash
	report.TraceChecked = true
	return nil
}

// diverge records a divergence verdict and halts the replica: the
// counter fires, the engine is aborted through the schedule stream,
// and View refuses reads from here on.
func (f *Follower) diverge(err error) {
	if !errors.Is(err, ErrDiverged) {
		err = fmt.Errorf("%w: %v", ErrDiverged, err)
	}
	f.mu.Lock()
	f.divergeLocked(err)
	f.mu.Unlock()
}

func (f *Follower) divergeLocked(err error) {
	if f.err != nil {
		return
	}
	if !errors.Is(err, ErrDiverged) {
		err = fmt.Errorf("%w: %v", ErrDiverged, err)
	}
	f.err = err
	f.met.divergence.Inc()
	if f.stream != nil {
		f.stream.Close(err)
	}
	f.doneOnce.Do(func() { close(f.done) })
}

// fail records a non-divergence failure (primary error, protocol
// breakage) and halts the replica without touching the divergence
// counter.
func (f *Follower) fail(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
		if f.stream != nil {
			f.stream.Close(err)
		}
		f.doneOnce.Do(func() { close(f.done) })
	}
	f.mu.Unlock()
}

func (f *Follower) failf(format string, args ...interface{}) {
	f.fail(fmt.Errorf(format, args...))
}

// Disconnect drops the connection, leaving all replica state in place;
// a replay engine parks on its schedule stream until Connect resumes
// the feed.
func (f *Follower) Disconnect() {
	f.mu.Lock()
	c := f.conn
	f.conn = nil
	f.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Wait blocks until the stream finished (or failed) and returns the
// report. A divergence satisfies errors.Is(err, ErrDiverged).
func (f *Follower) Wait(timeout time.Duration) (*Report, error) {
	select {
	case <-f.done:
	case <-time.After(timeout):
		return nil, fmt.Errorf("repl: follower %q: no fin after %v (applied %d)", f.opts.ID, timeout, f.AppliedLSN())
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return nil, f.err
	}
	return f.report, nil
}

// View runs fn over the replica store under the follower's lock. It
// refuses to serve a halted replica — a diverged follower never
// answers reads with stale state. fn must not retain or mutate the
// store.
func (f *Follower) View(fn func(*wm.Store)) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return f.err
	}
	if f.shadow == nil {
		return errors.New("repl: follower has no state yet")
	}
	fn(f.shadow)
	return nil
}

// Diverged reports whether the replica halted on divergence.
func (f *Follower) Diverged() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return errors.Is(f.err, ErrDiverged)
}

// AppliedLSN returns the last record folded into the replica store.
func (f *Follower) AppliedLSN() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appliedLSN
}

// Lag returns shipped-but-unapplied records (the follower-side lag
// gauge's current value).
func (f *Follower) Lag() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shippedHigh - f.appliedLSN
}

// Close tears the follower down: the connection drops, a running
// replica engine unwinds, and Wait observes ErrFollowerClosed unless
// the stream already finished.
func (f *Follower) Close() {
	f.mu.Lock()
	f.closed = true
	c := f.conn
	f.conn = nil
	if f.err == nil && f.report == nil {
		f.err = ErrFollowerClosed
	}
	stream := f.stream
	exited := f.engineExited
	f.mu.Unlock()
	if c != nil {
		c.Close()
	}
	if stream != nil {
		stream.Close(ErrFollowerClosed)
	}
	if exited != nil {
		select {
		case <-exited:
		case <-time.After(10 * time.Second):
		}
	}
	f.doneOnce.Do(func() { close(f.done) })
}
