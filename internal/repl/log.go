package repl

import (
	"bytes"
	"fmt"
	"sync"

	"pdps/internal/sched"
	"pdps/internal/storage"
	"pdps/internal/wm"
)

// checkpointEntry is one shadow-store snapshot, taken every
// CheckpointEvery records; LSN is the last record the snapshot folds
// in. Entry 0 (LSN 0) is the initial working memory, so apply-mode
// bootstrap always has a base.
type checkpointEntry struct {
	lsn  uint64
	snap []byte
}

// replLog is the primary's in-memory replication log: the choice
// sequence, the encoded records (index i holds LSN i+1), periodic
// checkpoints of the shadow store, and the fin terminator. Appenders
// run on controlled engine tasks (OnChoice with the controller lock
// held, the tee backend on the committer), so appends must never block
// on the network: streamers copy batches under the lock and write
// outside it.
//
// The shadow store is the canonical replica-state oracle. It is built
// exactly the way a follower builds its store — initial WMEs inserted
// in program order, then ApplyLogged per decoded record — and NOT by
// snapshotting the live engine store, whose nextID/clock counters can
// run ahead of a log-reconstructed store (removed WMEs still consumed
// IDs there). Hashing and checkpointing the shadow keeps the oracle
// byte-comparable on both sides.
type replLog struct {
	mu          sync.Mutex
	cond        *sync.Cond
	choices     []sched.Choice
	records     [][]byte
	checkpoints []checkpointEntry
	shadow      *wm.Store
	every       int // records between checkpoints
	fin         *fin
	failure     error // shadow-apply failure: poisons the stream at fin
	closed      bool
}

func newReplLog(initial *wm.Store, every int) (*replLog, error) {
	l := &replLog{shadow: initial, every: every}
	l.cond = sync.NewCond(&l.mu)
	snap, err := snapshotBytes(initial)
	if err != nil {
		return nil, err
	}
	l.checkpoints = []checkpointEntry{{lsn: 0, snap: snap}}
	return l, nil
}

func snapshotBytes(s *wm.Store) ([]byte, error) {
	var b bytes.Buffer
	if err := s.WriteSnapshot(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// appendChoice records one scheduling decision. It is the Det.OnChoice
// hook: called with the controller lock held, so it must stay cheap
// and never call back into the controller.
func (l *replLog) appendChoice(c sched.Choice) {
	l.mu.Lock()
	l.choices = append(l.choices, c)
	l.mu.Unlock()
	l.cond.Broadcast()
}

// appendRecord encodes and logs one committed record at lsn, folds it
// into the shadow store (via a decode round-trip, exercising the exact
// bytes a follower will see), and checkpoints on cadence.
func (l *replLog) appendRecord(lsn uint64, r *storage.Record) {
	enc := storage.EncodeRecord(nil, r)
	l.mu.Lock()
	if uint64(len(l.records))+1 != lsn {
		// The tee backend assigns contiguous LSNs from 1; a gap is an
		// internal invariant violation, not a runtime condition.
		l.failLocked(fmt.Errorf("repl: record LSN %d, log head %d", lsn, len(l.records)))
		l.mu.Unlock()
		l.cond.Broadcast()
		return
	}
	l.records = append(l.records, enc)
	dec, err := storage.DecodeRecord(enc)
	if err == nil {
		err = l.shadow.ApplyLogged(dec.Delta)
	}
	if err != nil {
		l.failLocked(fmt.Errorf("repl: shadow apply at LSN %d: %w", lsn, err))
	} else if l.every > 0 && lsn%uint64(l.every) == 0 {
		if snap, serr := snapshotBytes(l.shadow); serr == nil {
			l.checkpoints = append(l.checkpoints, checkpointEntry{lsn: lsn, snap: snap})
		} else {
			l.failLocked(fmt.Errorf("repl: checkpoint at LSN %d: %w", lsn, serr))
		}
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

func (l *replLog) failLocked(err error) {
	if l.failure == nil {
		l.failure = err
	}
}

// finish publishes the stream terminator and wakes every streamer.
func (l *replLog) finish(f *fin) {
	l.mu.Lock()
	if l.failure != nil && f.errMsg == "" {
		f.errMsg = l.failure.Error()
	}
	if l.fin == nil {
		l.fin = f
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// close wakes all streamers for teardown.
func (l *replLog) close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

func (l *replLog) head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.records))
}

func (l *replLog) finSnapshot() *fin {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fin
}

// checkpointFor returns the newest checkpoint, for apply-mode
// bootstrap. (Entry 0 always exists.)
func (l *replLog) latestCheckpoint() checkpointEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpoints[len(l.checkpoints)-1]
}

// Streaming batch bounds. Records are raw bytes inside a JSON frame
// (base64, ~4/3 overhead) under the 1 MiB frame cap; choices are two
// small ints each.
const (
	maxChoiceBatch      = 4096
	maxRecordBatch      = 256
	maxRecordBatchBytes = 256 << 10
)

// news is one streaming step: the batches to ship next, and stream
// state. choices start at choice index nextChoice; records at LSN
// nextLSN+1.
type news struct {
	choices []sched.Choice
	records [][]byte
	fin     *fin // non-nil once everything up to fin has been handed out
	closed  bool
}

// waitNews blocks until there is something to ship past the given
// positions (or fin/teardown) and returns copies safe to use outside
// the lock. fin is only reported once the caller has consumed the
// complete stream, so a streamer can send it and stop.
func (l *replLog) waitNews(nextChoice int, nextLSN uint64) news {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.closed {
			return news{closed: true}
		}
		var out news
		if nextChoice < len(l.choices) {
			end := len(l.choices)
			if end-nextChoice > maxChoiceBatch {
				end = nextChoice + maxChoiceBatch
			}
			out.choices = append([]sched.Choice(nil), l.choices[nextChoice:end]...)
		}
		if nextLSN < uint64(len(l.records)) {
			total := 0
			for i := nextLSN; i < uint64(len(l.records)); i++ {
				rb := l.records[i]
				if len(out.records) >= maxRecordBatch ||
					(len(out.records) > 0 && total+len(rb) > maxRecordBatchBytes) {
					break
				}
				out.records = append(out.records, rb)
				total += len(rb)
			}
		}
		if out.choices != nil || out.records != nil {
			return out
		}
		if l.fin != nil &&
			nextChoice >= len(l.choices) && nextLSN >= uint64(len(l.records)) {
			out.fin = l.fin
			return out
		}
		l.cond.Wait()
	}
}

// teeBackend wraps the primary's real backend: every append is
// mirrored into the replication log after the inner backend assigns
// the LSN. It deliberately does NOT forward the AutoCheckpointer
// extension — background checkpoints must not perturb the record
// stream the followers compare against.
type teeBackend struct {
	inner storage.Backend
	log   *replLog
}

func (t *teeBackend) Append(r *storage.Record) (storage.LSN, error) {
	lsn, err := t.inner.Append(r)
	if err == nil {
		t.log.appendRecord(uint64(lsn), r)
	}
	return lsn, err
}

func (t *teeBackend) Sync() error                     { return t.inner.Sync() }
func (t *teeBackend) Checkpoint(s *wm.Store) error    { return t.inner.Checkpoint(s) }
func (t *teeBackend) Recover() (*storage.Recovery, error) { return t.inner.Recover() }
func (t *teeBackend) Close() error                    { return t.inner.Close() }
