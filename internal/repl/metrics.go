package repl

import "pdps/internal/obs"

// primaryMetrics is the primary's repl_* family. It lives in its own
// registry (PrimaryOptions.Metrics), never the engine's: the engine
// registry must stay byte-identical across primary and followers, so
// replication bookkeeping may not touch it.
type primaryMetrics struct {
	followers        *obs.Gauge   // repl_followers_active
	choicesShipped   *obs.Counter // repl_choices_shipped_total
	recordsShipped   *obs.Counter // repl_records_shipped_total
	snapshotsShipped *obs.Counter // repl_snapshots_shipped_total
	lag              *obs.Gauge   // repl_lag_records (head − min acked)
}

func newPrimaryMetrics(r *obs.Registry) *primaryMetrics {
	return &primaryMetrics{
		followers:        r.Gauge("repl_followers_active"),
		choicesShipped:   r.Counter("repl_choices_shipped_total"),
		recordsShipped:   r.Counter("repl_records_shipped_total"),
		snapshotsShipped: r.Counter("repl_snapshots_shipped_total"),
		lag:              r.Gauge("repl_lag_records"),
	}
}

// followerMetrics is a follower's repl_* family. When the follower has
// an ID, every series carries a follower="id" label so a fleet of
// followers can share one registry (psload's E20 does).
type followerMetrics struct {
	choicesApplied  *obs.Counter // repl_choices_applied_total
	recordsApplied  *obs.Counter // repl_records_applied_total
	snapshotsLoaded *obs.Counter // repl_snapshots_loaded_total
	divergence      *obs.Counter // repl_divergence_total
	lag             *obs.Gauge   // repl_lag_records (shipped − applied)
}

func newFollowerMetrics(r *obs.Registry, id string) *followerMetrics {
	var ls []obs.Label
	if id != "" {
		ls = []obs.Label{obs.L("follower", id)}
	}
	return &followerMetrics{
		choicesApplied:  r.Counter("repl_choices_applied_total", ls...),
		recordsApplied:  r.Counter("repl_records_applied_total", ls...),
		snapshotsLoaded: r.Counter("repl_snapshots_loaded_total", ls...),
		divergence:      r.Counter("repl_divergence_total", ls...),
		lag:             r.Gauge("repl_lag_records", ls...),
	}
}
