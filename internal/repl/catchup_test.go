package repl

import (
	"testing"

	"pdps/internal/server"
	"pdps/internal/wm"
)

// TestApplyCatchupFromCheckpoint is the late-joiner path: the primary
// checkpoints its shadow store every 5 records; an apply-mode follower
// that connects after the run bootstraps from the newest checkpoint,
// folds only the record suffix, and still lands on the primary's store
// hash with an admissible commit tail (CheckTraceFrom over the
// bootstrap base).
func TestApplyCatchupFromCheckpoint(t *testing.T) {
	p := newTestPrimary(t, RunConfig{Np: 3, Seed: 11}, 5)
	if _, err := p.Run(); err != nil {
		t.Fatalf("primary run: %v", err)
	}
	head := p.HeadLSN()
	if head != uint64(growCommits) {
		t.Fatalf("head = %d, want %d", head, growCommits)
	}

	f := NewFollower(FollowerOptions{ID: "joiner", Mode: server.ReplModeApply})
	if err := f.Connect(p.Addr().String()); err != nil {
		t.Fatalf("connect: %v", err)
	}
	t.Cleanup(f.Close)

	rep := mustReport(t, f)
	if rep.Mode != server.ReplModeApply || !rep.TraceChecked {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Records != head {
		t.Fatalf("applied through %d, head %d", rep.Records, head)
	}
	// 18 records / every-5 cadence → newest checkpoint at LSN 15, so
	// the follower folded exactly 3 records itself.
	snap := f.Metrics().Snapshot()
	l := labelsFor("joiner")
	if got := snap.Counter("repl_snapshots_loaded_total", l...); got != 1 {
		t.Fatalf("snapshots loaded = %d", got)
	}
	if got := snap.Counter("repl_records_applied_total", l...); got != 3 {
		t.Fatalf("records applied = %d, want 3 (suffix past checkpoint 15)", got)
	}
	if f.AppliedLSN() != head {
		t.Fatalf("applied LSN %d, head %d", f.AppliedLSN(), head)
	}

	done := 0
	if err := f.View(func(s *wm.Store) {
		done = s.Count("cell", wm.AttrEq("gen", wm.Int(6)))
	}); err != nil {
		t.Fatalf("view: %v", err)
	}
	if done != 3 {
		t.Fatalf("%d cells at gen 6, want 3", done)
	}
}

// TestApplyFromGenesis covers the no-checkpoint path (entry 0 is the
// initial working memory): an apply follower subscribed before the run
// starts folds every record from LSN 1 and verifies the whole trace.
func TestApplyFromGenesis(t *testing.T) {
	p := newTestPrimary(t, RunConfig{Np: 2, Seed: 5}, -1) // checkpoints disabled
	f := NewFollower(FollowerOptions{ID: "genesis", Mode: server.ReplModeApply})
	if err := f.Connect(p.Addr().String()); err != nil {
		t.Fatalf("connect: %v", err)
	}
	t.Cleanup(f.Close)
	if _, err := p.Run(); err != nil {
		t.Fatalf("primary run: %v", err)
	}
	rep := mustReport(t, f)
	if rep.Records != uint64(growCommits) || !rep.TraceChecked {
		t.Fatalf("report = %+v", rep)
	}
	snap := f.Metrics().Snapshot()
	l := labelsFor("genesis")
	if got := snap.Counter("repl_records_applied_total", l...); got != int64(growCommits) {
		t.Fatalf("records applied = %d, want %d", got, growCommits)
	}
	if !p.WaitDrained(waitLong) {
		t.Fatal("primary never drained")
	}
}

// TestReplayAndApplyAgree runs one replay and one apply follower side
// by side: the cheap catch-up path must land on the same store hash as
// the full re-execution.
func TestReplayAndApplyAgree(t *testing.T) {
	p := newTestPrimary(t, RunConfig{Np: 3, Seed: 23}, 4)
	replay := NewFollower(FollowerOptions{ID: "replay"})
	apply := NewFollower(FollowerOptions{ID: "apply", Mode: server.ReplModeApply})
	for _, f := range []*Follower{replay, apply} {
		if err := f.Connect(p.Addr().String()); err != nil {
			t.Fatalf("connect: %v", err)
		}
		t.Cleanup(f.Close)
	}
	if _, err := p.Run(); err != nil {
		t.Fatalf("primary run: %v", err)
	}
	r1, r2 := mustReport(t, replay), mustReport(t, apply)
	if r1.StoreHash != r2.StoreHash || r1.StoreHash == "" {
		t.Fatalf("replay hash %q != apply hash %q", r1.StoreHash, r2.StoreHash)
	}
	if r1.Fired != r2.Fired {
		t.Fatalf("replay fired %d, apply echoed %d", r1.Fired, r2.Fired)
	}
}
