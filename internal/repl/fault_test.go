package repl

import (
	"errors"
	"sync"
	"testing"

	"pdps/internal/sched"
	"pdps/internal/storage"
	"pdps/internal/wm"
)

// faultProgram is a longer grow run (6 cells × 10 generations = 60
// commits) so faults can be injected mid-stream.
const faultProgram = `
(p grow
  (cell ^gen <g> ^alive true)
  (limit ^gen > <g>)
  -->
  (modify 1 ^gen (+ <g> 1)))
(wme limit ^gen 10)
(wme cell ^id 0 ^gen 0 ^alive true)
(wme cell ^id 1 ^gen 0 ^alive true)
(wme cell ^id 2 ^gen 0 ^alive true)
(wme cell ^id 3 ^gen 0 ^alive true)
(wme cell ^id 4 ^gen 0 ^alive true)
(wme cell ^id 5 ^gen 0 ^alive true)
`

const faultCommits = 6 * 10

// gateBackend blocks the primary's Nth append until the test opens the
// gate, pinning the run — and therefore the replication stream — at a
// known LSN so a fault can be injected strictly mid-stream.
type gateBackend struct {
	inner storage.Backend
	mu    sync.Mutex
	n     int
	at    int
	gate  chan struct{}
}

func (g *gateBackend) Append(r *storage.Record) (storage.LSN, error) {
	g.mu.Lock()
	g.n++
	blocked := g.n == g.at
	g.mu.Unlock()
	if blocked {
		<-g.gate
	}
	return g.inner.Append(r)
}

func (g *gateBackend) Sync() error                         { return g.inner.Sync() }
func (g *gateBackend) Checkpoint(s *wm.Store) error        { return g.inner.Checkpoint(s) }
func (g *gateBackend) Recover() (*storage.Recovery, error) { return g.inner.Recover() }
func (g *gateBackend) Close() error                        { return g.inner.Close() }

// TestDisconnectReconnectResume drops a replay follower's connection
// strictly mid-stream (the primary is gated at LSN 30, so fin cannot
// have been sent), lets the primary finish, reconnects, and checks the
// follower resumes from its exact choice/LSN position and still
// verifies byte-identical.
func TestDisconnectReconnectResume(t *testing.T) {
	gate := make(chan struct{})
	gb := &gateBackend{inner: storage.NewMem(), at: 30, gate: gate}
	p, err := NewPrimary(PrimaryOptions{
		Program: faultProgram,
		Config:  RunConfig{Np: 3, Seed: 9},
		Storage: gb,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	f := NewFollower(FollowerOptions{ID: "resume", AckEvery: 4})
	if err := f.Connect(p.Addr().String()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)

	runErr := make(chan error, 1)
	go func() {
		_, err := p.Run()
		runErr <- err
	}()

	if !waitUntil(waitLong, func() bool { return f.AppliedLSN() >= 10 }) {
		t.Fatal("follower never applied 10 records")
	}
	f.Disconnect()
	f.mu.Lock()
	finSeen := f.fin != nil
	resumeChoice, resumeLSN := f.fedChoices, f.shippedHigh
	f.mu.Unlock()
	if finSeen {
		t.Fatal("fin arrived before the gate opened — fault was not mid-stream")
	}
	if resumeLSN >= uint64(faultCommits) {
		t.Fatalf("follower already saw LSN %d before the gate", resumeLSN)
	}

	close(gate)
	if err := <-runErr; err != nil {
		t.Fatalf("primary run: %v", err)
	}
	if head := p.HeadLSN(); head != uint64(faultCommits) {
		t.Fatalf("head = %d, want %d", head, faultCommits)
	}

	if err := f.Connect(p.Addr().String()); err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	rep := mustReport(t, f)
	if rep.Fired != faultCommits || rep.Records != uint64(faultCommits) || !rep.TraceChecked {
		t.Fatalf("post-resume report = %+v", rep)
	}
	t.Logf("resumed from choice %d / LSN %d of %d records", resumeChoice, resumeLSN, faultCommits)

	snap := f.Metrics().Snapshot()
	l := labelsFor("resume")
	if got := snap.Counter("repl_divergence_total", l...); got != 0 {
		t.Fatalf("divergence counter = %d after clean resume", got)
	}
	if got := snap.Counter("repl_records_applied_total", l...); got != int64(faultCommits) {
		t.Fatalf("records applied = %d, want %d", got, faultCommits)
	}
}

// TestCorruptScheduleDiverges feeds a replica one structurally invalid
// choice (picked index out of range). The stream policy detects the
// branch mismatch, the replica engine aborts, the divergence counter
// fires, and the follower refuses reads — no stale state is served.
func TestCorruptScheduleDiverges(t *testing.T) {
	p := newTestPrimary(t, RunConfig{Np: 3, Seed: 42}, 0)
	f := NewFollower(FollowerOptions{ID: "corrupt"})
	f.mutateChoice = func(seq int, c sched.Choice) sched.Choice {
		if seq == 5 {
			c.Picked = c.N // out of range: structurally corrupt
		}
		return c
	}
	if err := f.Connect(p.Addr().String()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)

	if _, err := p.Run(); err != nil {
		t.Fatalf("primary run unaffected by bad replica, got %v", err)
	}
	_, err := f.Wait(waitLong)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("wait = %v, want ErrDiverged", err)
	}
	assertHalted(t, f, "corrupt")
}

// TestFlippedChoiceDiverges mutates one in-range choice: the replica
// runs a perfectly valid — but different — schedule, and the byte
// comparison of its self-produced records against the shipped ones
// (or the schedule shape itself) catches the divergence.
func TestFlippedChoiceDiverges(t *testing.T) {
	p := newTestPrimary(t, RunConfig{Np: 3, Seed: 42}, 0)
	f := NewFollower(FollowerOptions{ID: "flipped"})
	flipped := false
	f.mutateChoice = func(seq int, c sched.Choice) sched.Choice {
		if !flipped && c.N >= 2 {
			flipped = true
			c.Picked = (c.Picked + 1) % c.N // valid index, different branch
		}
		return c
	}
	if err := f.Connect(p.Addr().String()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)

	if _, err := p.Run(); err != nil {
		t.Fatalf("primary run: %v", err)
	}
	_, err := f.Wait(waitLong)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("wait = %v, want ErrDiverged", err)
	}
	assertHalted(t, f, "flipped")
}

// assertHalted checks the halted-replica contract: Diverged reports
// true, the divergence counter fired exactly once, and View refuses to
// serve state.
func assertHalted(t *testing.T, f *Follower, id string) {
	t.Helper()
	if !f.Diverged() {
		t.Fatal("Diverged() = false")
	}
	snap := f.Metrics().Snapshot()
	if got := snap.Counter("repl_divergence_total", labelsFor(id)...); got != 1 {
		t.Fatalf("divergence counter = %d, want 1", got)
	}
	if err := f.View(func(*wm.Store) {}); !errors.Is(err, ErrDiverged) {
		t.Fatalf("View after divergence = %v, want ErrDiverged", err)
	}
}

// TestDivergedFollowerDoesNotPoisonOthers runs a healthy follower next
// to a corrupted one on the same primary: the healthy replica still
// verifies byte-identical.
func TestDivergedFollowerDoesNotPoisonOthers(t *testing.T) {
	p := newTestPrimary(t, RunConfig{Np: 3, Seed: 13}, 0)
	good := NewFollower(FollowerOptions{ID: "good"})
	bad := NewFollower(FollowerOptions{ID: "bad"})
	bad.mutateChoice = func(seq int, c sched.Choice) sched.Choice {
		if seq == 3 {
			c.Picked = c.N
		}
		return c
	}
	for _, f := range []*Follower{good, bad} {
		if err := f.Connect(p.Addr().String()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(f.Close)
	}
	if _, err := p.Run(); err != nil {
		t.Fatalf("primary run: %v", err)
	}
	if _, err := bad.Wait(waitLong); !errors.Is(err, ErrDiverged) {
		t.Fatalf("bad wait = %v, want ErrDiverged", err)
	}
	rep := mustReport(t, good)
	if rep.Fired != growCommits || !rep.TraceChecked {
		t.Fatalf("good follower report = %+v", rep)
	}
}
