// Package repl is deterministic schedule-shipping replication: a
// primary executes one engine run under the internal/sched controller
// and streams the *schedule* — the recorded scheduling choices
// interleaved with the storage Records the committer appends — to N
// follower replicas over the PR 7 wire protocol. Because a controlled
// run is a pure function of its choice sequence, a follower that
// replays the choices re-executes the run bit for bit: every commit
// record it produces must byte-match the shipped one, its final
// metrics snapshot must byte-match the primary's, and its store must
// hash identically. Any mismatch is divergence — the replica counts
// it, halts its engine, and refuses reads rather than serving stale
// state.
//
// Two follower modes exist (see docs/REPLICATION.md):
//
//   - replay: run the engine under a sched.Stream policy fed from the
//     network, byte-comparing records as they are produced. This is
//     the full-fidelity replica: it ends up with the engine's store,
//     its metrics, and an admissible trace of its own.
//   - apply: bootstrap from a shipped checkpoint snapshot and fold the
//     record suffix into a store with wm.ApplyLogged, checking the
//     commit tail with engine.CheckTraceFrom — the cheap catch-up path
//     for late joiners and re-seeding.
//
// Followers ack applied LSNs; the primary tracks per-follower progress
// in a lag gauge and resumes a reconnecting follower from the exact
// choice/LSN position it reports. The replication log lives in memory
// on the primary for the duration of the run (plus periodic shadow
// checkpoints for apply-mode bootstrap), so any follower can join or
// rejoin at any point, including after the run finished.
package repl

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"pdps/internal/detsched"
	"pdps/internal/engine"
	"pdps/internal/lock"
	"pdps/internal/wm"
)

// RunConfig is the wire-shippable run configuration: everything a
// follower needs, besides the program source and the choice stream, to
// re-execute the primary's run bit for bit. String fields use the
// lock/engine policies' String() names so the JSON is self-describing.
type RunConfig struct {
	// Scheme is the locking scheme: "2pl" or "rcrawa" (default).
	Scheme string `json:"scheme,omitempty"`
	// Np is the worker count; 0 means 2 (the detsched default).
	Np int `json:"np,omitempty"`
	// Matcher is the match algorithm; "" means rete.
	Matcher string `json:"matcher,omitempty"`
	// MatchShards shards the matcher when above 1.
	MatchShards int `json:"match_shards,omitempty"`
	// Deadlock is "detect" (default), "wound-wait" or "wait-die".
	Deadlock string `json:"deadlock,omitempty"`
	// Abort is "always" (default) or "reevaluate".
	Abort string `json:"abort,omitempty"`
	// MaxFirings bounds commits; 0 means the engine default.
	MaxFirings int `json:"max_firings,omitempty"`
	// Elide enables hybrid lock elision.
	Elide bool `json:"elide,omitempty"`
	// Escalation is the class-lock escalation threshold; 0 disables.
	Escalation int `json:"escalation,omitempty"`
	// CommitBatch is the group-commit size; 0 means 1.
	CommitBatch int `json:"commit_batch,omitempty"`
	// MaxDecisions bounds scheduling decisions; 0 means 1<<16. Primary
	// and follower must share the bound or they would diverge on it.
	MaxDecisions int `json:"max_decisions,omitempty"`
	// Seed drives the primary's random-walk policy. Followers never
	// consult it — their schedule arrives over the wire — but it is
	// shipped so a replica can be re-run standalone for debugging.
	Seed int64 `json:"seed,omitempty"`
}

// detConfig lowers the wire form to a detsched.Config (without the
// storage backend, which each side wires separately).
func (c RunConfig) detConfig() (detsched.Config, error) {
	out := detsched.Config{
		Np:           c.Np,
		Matcher:      c.Matcher,
		MatchShards:  c.MatchShards,
		MaxFirings:   c.MaxFirings,
		Elide:        c.Elide,
		Escalation:   c.Escalation,
		CommitBatch:  c.CommitBatch,
		MaxDecisions: c.MaxDecisions,
	}
	switch c.Scheme {
	case "", "rcrawa":
		out.Scheme = lock.SchemeRcRaWa
	case "2pl":
		out.Scheme = lock.Scheme2PL
	default:
		return out, fmt.Errorf("repl: unknown scheme %q", c.Scheme)
	}
	switch c.Deadlock {
	case "", "detect":
		out.Deadlock = lock.DeadlockDetect
	case "wound-wait":
		out.Deadlock = lock.DeadlockWoundWait
	case "wait-die":
		out.Deadlock = lock.DeadlockWaitDie
	default:
		return out, fmt.Errorf("repl: unknown deadlock policy %q", c.Deadlock)
	}
	switch c.Abort {
	case "", "always":
		out.Abort = engine.AbortAlways
	case "reevaluate":
		out.Abort = engine.AbortReevaluate
	default:
		return out, fmt.Errorf("repl: unknown abort policy %q", c.Abort)
	}
	return out, nil
}

// fin is the stream terminator: the primary run's totals and the
// oracle values a follower must reproduce.
type fin struct {
	nChoices  int
	nRecords  uint64
	metrics   []byte // obs.Snapshot.MarshalIndent bytes
	storeHash string // hex sha256 of the shadow store's snapshot
	fired     int
	halted    bool
	quiescent bool
	errMsg    string // non-empty when the primary run itself failed
}

// storeHash canonicalises a store to the hex SHA-256 of its snapshot
// encoding. Both sides hash stores built the same way (initial working
// memory inserted in program order, then ApplyLogged per record), so
// equal hashes mean byte-identical snapshot encodings, counters
// included.
func storeHash(s *wm.Store) (string, error) {
	var b bytes.Buffer
	if err := s.WriteSnapshot(&b); err != nil {
		return "", err
	}
	sum := sha256.Sum256(b.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// canonMetrics compacts a metrics-snapshot JSON document.
// encoding/json compacts RawMessage values when a frame is marshaled,
// so the byte-identity comparison must be over the compact form — the
// only whitespace-independent encoding both sides can reproduce.
func canonMetrics(b []byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// quiescentOf mirrors the server's run-summary convention: a run is
// quiescent when it drained the conflict set rather than being stopped
// by halt or the firing limit.
func quiescentOf(r engine.Result) bool {
	return !r.Halted && !r.LimitHit
}

// waitUntil polls cond every few milliseconds until it reports true or
// the timeout expires. Replication progress is driven by network
// readers and engine tasks; tests and drain paths only need a cheap
// level-triggered wait.
func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}
