package repl

import (
	"bytes"
	"testing"
	"time"

	"pdps/internal/obs"
	"pdps/internal/server"
	"pdps/internal/wm"
)

// growProgram is the cellular growth workload: each cell advances one
// generation per firing until the limit, so the run commits
// cells × generations records and quiesces. Different schedules visit
// the cells in different orders, so WME time-tags — and therefore the
// record bytes — depend on the exact choice sequence.
const growProgram = `
(p grow
  (cell ^gen <g> ^alive true)
  (limit ^gen > <g>)
  -->
  (modify 1 ^gen (+ <g> 1)))
(wme limit ^gen 6)
(wme cell ^id 0 ^gen 0 ^alive true)
(wme cell ^id 1 ^gen 0 ^alive true)
(wme cell ^id 2 ^gen 0 ^alive true)
`

const growCommits = 3 * 6

const waitLong = 30 * time.Second

func newTestPrimary(t *testing.T, cfg RunConfig, checkpointEvery int) *Primary {
	t.Helper()
	p, err := NewPrimary(PrimaryOptions{
		Program:         growProgram,
		Config:          cfg,
		CheckpointEvery: checkpointEvery,
	})
	if err != nil {
		t.Fatalf("NewPrimary: %v", err)
	}
	if err := p.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func labelsFor(id string) []obs.Label {
	return []obs.Label{obs.L("follower", id)}
}

func mustReport(t *testing.T, f *Follower) *Report {
	t.Helper()
	rep, err := f.Wait(waitLong)
	if err != nil {
		t.Fatalf("follower wait: %v", err)
	}
	return rep
}

// TestLoopbackReplayByteIdentical is the tentpole acceptance check:
// two replay followers subscribed before the run starts re-execute it
// from the shipped schedule and land byte-identical — same store hash,
// same metrics snapshot bytes, same run summary — with an admissible
// trace of their own.
func TestLoopbackReplayByteIdentical(t *testing.T) {
	p := newTestPrimary(t, RunConfig{Np: 3, Seed: 42}, 0)

	reg := obs.NewRegistry()
	fs := []*Follower{
		NewFollower(FollowerOptions{ID: "f1", Metrics: reg}),
		NewFollower(FollowerOptions{ID: "f2", Metrics: reg}),
	}
	for _, f := range fs {
		if err := f.Connect(p.Addr().String()); err != nil {
			t.Fatalf("connect: %v", err)
		}
		t.Cleanup(f.Close)
	}

	out, err := p.Run()
	if err != nil {
		t.Fatalf("primary run: %v", err)
	}
	if out.Result.Firings != growCommits {
		t.Fatalf("primary fired %d, want %d", out.Result.Firings, growCommits)
	}
	wantMetrics, err := out.Metrics.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	reps := make([]*Report, len(fs))
	for i, f := range fs {
		reps[i] = mustReport(t, f)
	}
	for i, rep := range reps {
		if rep.Mode != server.ReplModeReplay {
			t.Fatalf("follower %d mode %q", i, rep.Mode)
		}
		if rep.Fired != growCommits || !rep.Quiescent || rep.Halted {
			t.Fatalf("follower %d summary = %+v", i, rep)
		}
		if rep.Records != uint64(growCommits) || rep.Records != p.HeadLSN() {
			t.Fatalf("follower %d applied %d records, head %d", i, rep.Records, p.HeadLSN())
		}
		if !bytes.Equal(rep.MetricsJSON, wantMetrics) {
			t.Fatalf("follower %d metrics differ from primary:\n%s\nvs\n%s",
				i, rep.MetricsJSON, wantMetrics)
		}
		if !rep.TraceChecked {
			t.Fatalf("follower %d trace unchecked", i)
		}
	}
	if reps[0].StoreHash != reps[1].StoreHash || reps[0].StoreHash == "" {
		t.Fatalf("store hashes differ: %q vs %q", reps[0].StoreHash, reps[1].StoreHash)
	}

	if !p.WaitDrained(waitLong) {
		t.Fatal("primary never drained")
	}
	snap := p.Metrics().Snapshot()
	if got := snap.Counter("repl_records_shipped_total"); got < int64(2*growCommits) {
		t.Fatalf("repl_records_shipped_total = %d, want >= %d", got, 2*growCommits)
	}
	if got := snap.Counter("repl_choices_shipped_total"); got <= 0 {
		t.Fatalf("repl_choices_shipped_total = %d, want > 0", got)
	}
	if lag, _ := snap.Gauge("repl_lag_records"); lag != 0 {
		t.Fatalf("drained primary lag = %d", lag)
	}
	fsnap := reg.Snapshot()
	for _, id := range []string{"f1", "f2"} {
		l := obs.L("follower", id)
		if got := fsnap.Counter("repl_records_applied_total", l); got != int64(growCommits) {
			t.Fatalf("%s applied counter = %d", id, got)
		}
		if got := fsnap.Counter("repl_divergence_total", l); got != 0 {
			t.Fatalf("%s divergence counter = %d", id, got)
		}
	}

	// Replica state is readable: every cell reached the generation
	// limit on both replicas.
	for i, f := range fs {
		done := 0
		if err := f.View(func(s *wm.Store) {
			done = s.Count("cell", wm.AttrEq("gen", wm.Int(6)))
		}); err != nil {
			t.Fatalf("follower %d view: %v", i, err)
		}
		if done != 3 {
			t.Fatalf("follower %d: %d cells at gen 6, want 3", i, done)
		}
	}
}

// TestLateJoinReplay exercises the retained log: a follower that
// connects only after the primary's run has completely finished still
// receives the whole schedule and replays it bit for bit.
func TestLateJoinReplay(t *testing.T) {
	p := newTestPrimary(t, RunConfig{Np: 2, Seed: 7}, 0)
	out, err := p.Run()
	if err != nil {
		t.Fatalf("primary run: %v", err)
	}

	f := NewFollower(FollowerOptions{ID: "late"})
	if err := f.Connect(p.Addr().String()); err != nil {
		t.Fatalf("connect: %v", err)
	}
	t.Cleanup(f.Close)

	rep := mustReport(t, f)
	if rep.Fired != out.Result.Firings || rep.Records != p.HeadLSN() {
		t.Fatalf("late join replayed %d firings / %d records, primary %d / %d",
			rep.Fired, rep.Records, out.Result.Firings, p.HeadLSN())
	}
	wantMetrics, _ := out.Metrics.MarshalIndent()
	if !bytes.Equal(rep.MetricsJSON, wantMetrics) {
		t.Fatal("late-join metrics snapshot differs from primary")
	}
}

// TestSeedsDisagreeAcrossRunsButReplicasAgree pins down what the
// determinism claim does and does not promise: two primaries with
// different seeds produce different schedules (store hashes may or may
// not match — the run is confluent — but metrics typically differ),
// while a replica always matches ITS primary exactly.
func TestDifferentSeedsStillReplicate(t *testing.T) {
	for _, seed := range []int64{1, 99} {
		p := newTestPrimary(t, RunConfig{Np: 3, Seed: seed}, 0)
		f := NewFollower(FollowerOptions{})
		if err := f.Connect(p.Addr().String()); err != nil {
			t.Fatalf("seed %d connect: %v", seed, err)
		}
		out, err := p.Run()
		if err != nil {
			t.Fatalf("seed %d run: %v", seed, err)
		}
		rep := mustReport(t, f)
		wantMetrics, _ := out.Metrics.MarshalIndent()
		if !bytes.Equal(rep.MetricsJSON, wantMetrics) {
			t.Fatalf("seed %d: replica metrics differ from primary", seed)
		}
		f.Close()
		p.Close()
	}
}

// TestPrimaryRejectsSecondRun pins the one-shot Run contract.
func TestPrimaryRejectsSecondRun(t *testing.T) {
	p := newTestPrimary(t, RunConfig{Seed: 3}, 0)
	if _, err := p.Run(); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, err := p.Run(); err == nil {
		t.Fatal("second Run succeeded, want error")
	}
}

// TestBadConfigRejected pins config validation at both ends.
func TestBadConfigRejected(t *testing.T) {
	_, err := NewPrimary(PrimaryOptions{Program: growProgram, Config: RunConfig{Scheme: "3pl"}})
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	_, err = NewPrimary(PrimaryOptions{Program: "(p", Config: RunConfig{}})
	if err == nil {
		t.Fatal("unparsable program accepted")
	}
}
