package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pdps/internal/detsched"
	"pdps/internal/engine"
	"pdps/internal/lang"
	"pdps/internal/obs"
	"pdps/internal/sched"
	"pdps/internal/server"
	"pdps/internal/storage"
	"pdps/internal/wm"
)

// PrimaryOptions configures a replication primary.
type PrimaryOptions struct {
	// Program is the rule-language source of the run. It is shipped
	// verbatim to replay followers, which re-parse it, so both sides
	// assign identical initial WME IDs.
	Program string
	// Config is the run configuration, shipped alongside the program.
	Config RunConfig
	// CheckpointEvery is the record cadence of shadow-store checkpoints
	// for apply-mode bootstrap; 0 means 256, negative disables (entry 0,
	// the initial working memory, always exists).
	CheckpointEvery int
	// Storage is the primary's own durable backend; nil means an
	// in-memory backend. The replication tee wraps it either way.
	Storage storage.Backend
	// Metrics receives the primary's repl_* series; nil means a fresh
	// registry. Never pass the engine's registry: it must stay
	// byte-identical across primary and followers.
	Metrics *obs.Registry
}

// Primary owns one deterministic engine run and serves its replication
// stream. Lifecycle: NewPrimary → Listen → Run (blocking) → Close.
// Followers may connect at any point before Close, including after the
// run finished — the full log is retained in memory.
type Primary struct {
	opts PrimaryOptions
	prog engine.Program
	dcfg detsched.Config
	cfgJSON []byte
	met  *primaryMetrics
	reg  *obs.Registry
	log  *replLog

	ln net.Listener
	wg sync.WaitGroup

	mu      sync.Mutex
	conns   map[net.Conn]*followerConn
	drained int // followers that acked the final head LSN
	closed  bool
	started bool
	outcome *detsched.RunOutcome
}

// followerConn is the primary's view of one subscribed follower.
type followerConn struct {
	conn     net.Conn
	wmu      sync.Mutex // serialises frame writes (hello vs. streamer)
	acked    uint64
	finAcked bool // acked the head LSN after fin was published
}

// NewPrimary parses the program and configuration and builds the
// replication log with its initial-working-memory checkpoint.
func NewPrimary(opts PrimaryOptions) (*Primary, error) {
	prog, err := lang.Parse(opts.Program)
	if err != nil {
		return nil, fmt.Errorf("repl: parse program: %w", err)
	}
	dcfg, err := opts.Config.detConfig()
	if err != nil {
		return nil, err
	}
	cfgJSON, err := json.Marshal(opts.Config)
	if err != nil {
		return nil, err
	}
	initial := wm.NewStore()
	for _, iw := range prog.WMEs {
		initial.Insert(iw.Class, iw.Attrs)
	}
	every := opts.CheckpointEvery
	if every == 0 {
		every = 256
	} else if every < 0 {
		every = 0
	}
	l, err := newReplLog(initial, every)
	if err != nil {
		return nil, err
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Primary{
		opts:    opts,
		prog:    prog,
		dcfg:    dcfg,
		cfgJSON: cfgJSON,
		met:     newPrimaryMetrics(reg),
		reg:     reg,
		log:     l,
		conns:   make(map[net.Conn]*followerConn),
	}, nil
}

// Listen starts accepting follower connections on addr.
func (p *Primary) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return nil
}

// Addr returns the listener address (for 127.0.0.1:0 loopback setups).
func (p *Primary) Addr() net.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return nil
	}
	return p.ln.Addr()
}

// Metrics returns the registry carrying the primary's repl_* series.
func (p *Primary) Metrics() *obs.Registry { return p.reg }

// HeadLSN returns the number of records logged so far.
func (p *Primary) HeadLSN() uint64 { return p.log.head() }

// Run executes the program once under a seeded random-walk schedule,
// streaming every decision and commit record as it happens, and
// publishes the fin terminator when done. It blocks until the run
// completes and may be called once.
func (p *Primary) Run() (detsched.RunOutcome, error) {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return detsched.RunOutcome{}, errors.New("repl: primary run already started")
	}
	p.started = true
	p.mu.Unlock()

	ctl := sched.NewDet(sched.NewRandom(p.opts.Config.Seed))
	ctl.OnChoice = p.log.appendChoice
	inner := p.opts.Storage
	if inner == nil {
		inner = storage.NewMem()
	}
	cfg := p.dcfg
	cfg.Storage = &teeBackend{inner: inner, log: p.log}

	out := detsched.RunUnder(p.prog, cfg, ctl)

	f := &fin{
		fired:     out.Result.Firings,
		halted:    out.Result.Halted,
		quiescent: quiescentOf(out.Result),
	}
	p.log.mu.Lock()
	f.nChoices = len(p.log.choices)
	f.nRecords = uint64(len(p.log.records))
	hash, herr := storeHash(p.log.shadow)
	p.log.mu.Unlock()
	f.storeHash = hash
	mb, merr := out.Metrics.MarshalIndent()
	if merr == nil {
		mb, merr = canonMetrics(mb)
	}
	f.metrics = mb
	var runErr error
	switch {
	case out.SchedErr != nil:
		runErr = out.SchedErr
	case out.Err != nil:
		runErr = out.Err
	case herr != nil:
		runErr = herr
	case merr != nil:
		runErr = merr
	}
	if runErr != nil {
		f.errMsg = runErr.Error()
	}
	p.log.finish(f)

	p.mu.Lock()
	p.outcome = &out
	p.mu.Unlock()
	return out, runErr
}

// WaitDrained blocks until every currently connected follower has
// acked the head LSN, or the timeout expires. It reports whether the
// stream drained.
func (p *Primary) WaitDrained(timeout time.Duration) bool {
	return waitUntil(timeout, func() bool {
		head := p.log.head()
		p.mu.Lock()
		defer p.mu.Unlock()
		for _, fc := range p.conns {
			if fc.acked < head {
				return false
			}
		}
		return true
	})
}

// WaitFollowersDrained blocks until at least n followers (cumulative,
// over the primary's lifetime) have acked the final head LSN, or the
// timeout expires. Unlike WaitDrained it does not require them to be
// connected simultaneously, so a serve-then-exit fleet counts.
func (p *Primary) WaitFollowersDrained(n int, timeout time.Duration) bool {
	return waitUntil(timeout, func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.drained >= n
	})
}

// Close stops the listener, wakes and disconnects every follower, and
// waits for all primary goroutines to exit.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	p.log.close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
	return nil
}

func (p *Primary) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.serveConn(c)
	}
}

// serveConn runs the per-follower reader: it handles the hello
// handshake, spawns the streamer, and folds acks until the connection
// drops.
func (p *Primary) serveConn(c net.Conn) {
	defer p.wg.Done()
	defer c.Close()
	fc := &followerConn{conn: c}
	registered := false
	defer func() {
		if registered {
			p.mu.Lock()
			delete(p.conns, c)
			p.mu.Unlock()
			p.met.followers.Add(-1)
			p.updateLag()
		}
	}()
	for {
		payload, err := server.ReadFrame(c, 0)
		if err != nil {
			return
		}
		q, err := server.DecodeRequest(payload)
		if err != nil {
			p.sendErr(fc, q, err)
			return
		}
		switch q.Type {
		case server.ReqReplHello:
			if registered {
				p.sendErr(fc, q, &server.ProtocolError{Code: server.CodeBadRequest,
					Msg: "repl_hello: already subscribed"})
				return
			}
			if !p.handleHello(fc, q) {
				return
			}
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.conns[c] = fc
			p.mu.Unlock()
			registered = true
			p.met.followers.Add(1)
		case server.ReqReplAck:
			head := p.log.head()
			done := p.log.finSnapshot() != nil
			p.mu.Lock()
			if q.AckLSN > fc.acked {
				fc.acked = q.AckLSN
			}
			if done && !fc.finAcked && fc.acked >= head {
				fc.finAcked = true
				p.drained++
			}
			p.mu.Unlock()
			p.updateLag()
		default:
			p.sendErr(fc, q, &server.ProtocolError{Code: server.CodeBadRequest,
				Msg: "primary speaks repl_hello/repl_ack only, got " + q.Type})
			return
		}
	}
}

// handleHello answers the handshake and spawns the streamer. It
// reports whether the subscription is live.
func (p *Primary) handleHello(fc *followerConn, q *server.Request) bool {
	mode := q.ReplMode
	if mode == "" {
		mode = server.ReplModeReplay
	}
	resp := &server.Response{
		Type:     server.RespReplHello,
		ID:       q.ID,
		ReplMode: mode,
		Program:  p.opts.Program,
		ReplConfig: p.cfgJSON,
	}
	startChoice := q.FromChoice
	startLSN := q.FromLSN
	if mode == server.ReplModeApply && q.FromLSN == 0 {
		cp := p.log.latestCheckpoint()
		resp.Snapshot = cp.snap
		resp.SnapshotLSN = cp.lsn
		startLSN = cp.lsn
		p.met.snapshotsShipped.Inc()
	}
	if err := p.writeResp(fc, resp); err != nil {
		return false
	}
	p.wg.Add(1)
	go p.stream(fc, q.ID, mode, startChoice, startLSN)
	return true
}

// stream ships choices and records past the follower's position until
// fin or teardown. Apply-mode followers get records only.
func (p *Primary) stream(fc *followerConn, id uint64, mode string, nextChoice int, nextLSN uint64) {
	defer p.wg.Done()
	for {
		nw := p.log.waitNews(nextChoice, nextLSN)
		if nw.closed {
			return
		}
		if len(nw.choices) > 0 {
			if mode == server.ReplModeReplay {
				wc := make([]server.ReplChoice, len(nw.choices))
				for i, c := range nw.choices {
					wc[i] = server.ReplChoice{N: c.N, P: c.Picked}
				}
				if err := p.writeResp(fc, &server.Response{
					Type: server.RespReplChoices, ID: id,
					ChoiceSeq: nextChoice, Choices: wc,
				}); err != nil {
					return
				}
				p.met.choicesShipped.Add(int64(len(nw.choices)))
			}
			nextChoice += len(nw.choices)
		}
		if len(nw.records) > 0 {
			if err := p.writeResp(fc, &server.Response{
				Type: server.RespReplRecords, ID: id,
				RecLSN: nextLSN + 1, Records: nw.records,
			}); err != nil {
				return
			}
			p.met.recordsShipped.Add(int64(len(nw.records)))
			nextLSN += uint64(len(nw.records))
			p.updateLag()
		}
		if nw.fin != nil {
			p.writeResp(fc, &server.Response{
				Type: server.RespReplFin, ID: id,
				NChoices:  nw.fin.nChoices,
				NRecords:  nw.fin.nRecords,
				Fired:     nw.fin.fired,
				Halted:    nw.fin.halted,
				Quiescent: nw.fin.quiescent,
				StoreHash: nw.fin.storeHash,
				Metrics:   nw.fin.metrics,
				Error:     nw.fin.errMsg,
			})
			return
		}
	}
}

// updateLag recomputes repl_lag_records: head minus the slowest
// connected follower's ack (0 with no followers).
func (p *Primary) updateLag() {
	head := p.log.head()
	p.mu.Lock()
	minAcked := head
	for _, fc := range p.conns {
		if fc.acked < minAcked {
			minAcked = fc.acked
		}
	}
	p.mu.Unlock()
	p.met.lag.Set(int64(head - minAcked))
}

func (p *Primary) writeResp(fc *followerConn, r *server.Response) error {
	b, err := server.EncodeResponse(r)
	if err != nil {
		return err
	}
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	return server.WriteFrame(fc.conn, b)
}

func (p *Primary) sendErr(fc *followerConn, q *server.Request, err error) {
	resp := &server.Response{Type: server.RespError, Code: server.CodeBadRequest, Error: err.Error()}
	if q != nil {
		resp.ID = q.ID
	}
	pe := &server.ProtocolError{}
	if errors.As(err, &pe) {
		resp.Code = pe.Code
		resp.Error = pe.Msg
	}
	p.writeResp(fc, resp)
}
