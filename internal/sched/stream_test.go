package sched

import (
	"errors"
	"sync"
	"testing"
)

// orderedRun executes n tasks that each append their id to a shared
// log under the given policy and returns the log and the recorded
// choices.
func orderedRun(t *testing.T, n int, policy Policy) ([]int, []Choice, error) {
	t.Helper()
	d := NewDet(policy)
	var log []int
	err := d.Run(func() {
		for i := 0; i < n; i++ {
			i := i
			d.Go("worker", func() {
				d.Yield("start")
				log = append(log, i)
			})
		}
	})
	return log, d.Choices(), err
}

// TestStreamReplaysRecordedRun feeds a random run's recorded choices
// through a Stream from another goroutine, in small chunks, and
// expects the replayed interleaving to be identical.
func TestStreamReplaysRecordedRun(t *testing.T) {
	want, choices, err := orderedRun(t, 6, NewRandom(42))
	if err != nil {
		t.Fatalf("recording run: %v", err)
	}
	if len(choices) == 0 {
		t.Fatal("recording run made no choices")
	}

	s := NewStream()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < len(choices); i += 2 {
			end := i + 2
			if end > len(choices) {
				end = len(choices)
			}
			s.Feed(choices[i:end])
		}
		s.Close(nil)
	}()
	got, replayed, err := orderedRun(t, 6, s)
	wg.Wait()
	if err != nil {
		t.Fatalf("replayed run: %v (stream err %v)", err, s.Err())
	}
	if s.Err() != nil {
		t.Fatalf("stream err: %v", s.Err())
	}
	if len(got) != len(want) {
		t.Fatalf("replay log %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay log %v, want %v", got, want)
		}
	}
	if len(replayed) != len(choices) {
		t.Fatalf("replay recorded %d choices, want %d", len(replayed), len(choices))
	}
	if s.Consumed() != len(choices) {
		t.Fatalf("stream consumed %d, want %d", s.Consumed(), len(choices))
	}
}

// TestStreamUnderfeedAborts closes the stream with part of the script
// missing: the run must unwind with ErrPolicyAbort, not hang or panic.
func TestStreamUnderfeedAborts(t *testing.T) {
	_, choices, err := orderedRun(t, 6, NewRandom(7))
	if err != nil {
		t.Fatalf("recording run: %v", err)
	}
	if len(choices) < 2 {
		t.Skip("run too short to truncate")
	}
	s := NewStream()
	s.Feed(choices[:len(choices)/2])
	s.Close(nil)
	_, _, err = orderedRun(t, 6, s)
	if !errors.Is(err, ErrPolicyAbort) {
		t.Fatalf("underfed run err = %v, want ErrPolicyAbort", err)
	}
	if s.Err() == nil {
		t.Fatal("stream should record the exhaustion as divergence")
	}
}

// TestStreamBranchMismatchAborts feeds a choice whose branching factor
// cannot match the run and expects a recorded divergence.
func TestStreamBranchMismatchAborts(t *testing.T) {
	s := NewStream()
	s.Feed([]Choice{{N: 99, Picked: 98}})
	_, _, err := orderedRun(t, 3, s)
	if !errors.Is(err, ErrPolicyAbort) {
		t.Fatalf("mismatched run err = %v, want ErrPolicyAbort", err)
	}
	if s.Err() == nil {
		t.Fatal("stream should record the branch mismatch")
	}
}

// TestStreamCloseWithCause propagates a teardown reason.
func TestStreamCloseWithCause(t *testing.T) {
	cause := errors.New("follower shutting down")
	s := NewStream()
	s.Close(cause)
	if !errors.Is(s.Err(), cause) {
		t.Fatalf("Err() = %v, want %v", s.Err(), cause)
	}
	// Feeding after close is a no-op.
	s.Feed([]Choice{{N: 2, Picked: 1}})
	if s.Consumed() != 0 {
		t.Fatal("closed stream consumed a choice")
	}
}

// TestOnChoiceObservesEveryDecision checks the export hook sees the
// same sequence Choices() returns.
func TestOnChoiceObservesEveryDecision(t *testing.T) {
	var seen []Choice
	var mu sync.Mutex
	d := NewDet(NewRandom(3))
	d.OnChoice = func(c Choice) {
		mu.Lock()
		seen = append(seen, c)
		mu.Unlock()
	}
	err := d.Run(func() {
		for i := 0; i < 5; i++ {
			d.Go("w", func() { d.Yield("x") })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := d.Choices()
	if len(seen) != len(want) {
		t.Fatalf("hook saw %d choices, recorder has %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("hook choice %d = %+v, want %+v", i, seen[i], want[i])
		}
	}
}
