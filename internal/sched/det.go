package sched

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Controller is the scheduling seam the engines program against. A
// Controller is also a Clock, so installing one replaces both the
// engine's timing and its goroutine scheduling.
//
// Under a Controller every concurrent activity of the engine must be
// started with Go rather than the go statement, and must reach a
// Yield, Park, Sleep or exit in bounded work; the controller runs
// exactly one task at a time, so tasks may not block on anything the
// controller cannot see.
type Controller interface {
	Clock
	// Go starts body as a controlled task. The task does not run
	// until the controller schedules it.
	Go(name string, body func())
	// Yield marks a scheduling point: the controller may switch to
	// any runnable task before the call returns.
	Yield(label string)
	// Park blocks the calling task until ch is signalled (a buffered
	// send or close). The signal may arrive before or after parking.
	Park(label string, ch chan struct{})
}

// ErrBudget reports that a run exceeded its scheduling-decision
// budget (MaxSteps) — in fuzzing, the analogue of a timeout.
var ErrBudget = errors.New("sched: scheduling-decision budget exceeded")

// ErrPolicyAbort reports that the policy asked to abort the run by
// returning a negative index from Pick. The Stream policy uses it to
// unwind a replica whose schedule feed ended or diverged without
// panicking through the controller.
var ErrPolicyAbort = errors.New("sched: policy aborted the run")

// StallError reports that no task was runnable and no timer pending:
// the controlled system deadlocked outside the lock manager's sight.
type StallError struct{ Dump string }

func (e *StallError) Error() string {
	return "sched: all tasks blocked with no pending timer\n" + e.Dump
}

type taskState uint8

const (
	stReady taskState = iota
	stRunning
	stParked
	stSleeping
	stDone
)

func (s taskState) String() string {
	switch s {
	case stReady:
		return "ready"
	case stRunning:
		return "running"
	case stParked:
		return "parked"
	case stSleeping:
		return "sleeping"
	default:
		return "done"
	}
}

type task struct {
	id    int
	name  string
	state taskState
	// grant is the task's baton: a one-slot channel the scheduler
	// sends on to resume the task. Token passing through per-task
	// channels gives the race detector a happens-before edge between
	// consecutive tasks, so controlled code shares state without
	// extra locking.
	grant  chan struct{}
	parkCh chan struct{} // channel being waited on while parked
	label  string        // where the task blocked, for diagnostics
	wakeAt time.Duration // virtual deadline while sleeping
	body   func()
}

type vtimer struct {
	d       *Det
	name    string
	when    time.Duration
	seq     int
	f       func()
	stopped bool
	fired   bool
}

// Stop cancels the timer if it has not fired.
func (tm *vtimer) Stop() bool {
	tm.d.mu.Lock()
	defer tm.d.mu.Unlock()
	if tm.fired || tm.stopped {
		return false
	}
	tm.stopped = true
	return true
}

// cancelPanic unwinds a controlled task during cancellation; the task
// wrapper recovers it.
type cancelPanic struct{}

// Det is the deterministic cooperative controller. It multiplexes all
// controlled tasks onto a single logical thread: exactly one task runs
// at a time, and at every point where two or more tasks could run, the
// Policy picks. Time is virtual — Sleep and AfterFunc deadlines are
// ordered on a logical clock that only advances when nothing is
// runnable — so a run's interleaving is a pure function of the policy,
// and the recorded Choices replay it exactly.
//
// A Det is single-use: make a new one per Run.
type Det struct {
	// MaxSteps bounds the number of scheduling decisions before the
	// run is cancelled with ErrBudget. Zero means no bound. Set it
	// before Run.
	MaxSteps int

	// OnChoice, when set before Run, observes every recorded decision
	// as it is made — the export seam replication's primary streams
	// from. It is invoked with the controller's lock held, so the
	// callback must not call back into the controller; forwarding the
	// choice to an independent structure (a mutex-guarded log) is safe.
	OnChoice func(Choice)

	policy Policy

	mu        sync.Mutex
	tasks     []*task
	cur       *task
	live      int
	now       time.Duration
	timers    []*vtimer
	timerSeq  int
	steps     int
	choices   []Choice
	cancelled bool
	failure   error
	started   bool
	done      chan struct{}
}

// epoch anchors the virtual clock; Now returns epoch + virtual time.
var epoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// NewDet returns a controller driven by the policy.
func NewDet(p Policy) *Det { return &Det{policy: p} }

// Run executes root as the first controlled task and blocks until
// every controlled task has exited. It returns nil on a clean run,
// ErrBudget if MaxSteps was exceeded, or a *StallError if the system
// blocked with no way forward. Run's caller is not a controlled task
// and must not touch controlled state while Run is in flight.
func (d *Det) Run(root func()) error {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		panic("sched: Det is single-use; make a new one per Run")
	}
	d.started = true
	d.done = make(chan struct{})
	t := d.spawnLocked("root", root)
	t.state = stRunning
	d.cur = t
	d.mu.Unlock()
	t.grant <- struct{}{}
	<-d.done
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failure
}

// Choices returns the recorded scheduling decisions of the run.
func (d *Det) Choices() []Choice {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Choice, len(d.choices))
	copy(out, d.choices)
	return out
}

// Steps returns the number of scheduling decisions taken so far.
func (d *Det) Steps() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.steps
}

func (d *Det) spawnLocked(name string, body func()) *task {
	t := &task{
		id:    len(d.tasks),
		name:  name,
		state: stReady,
		grant: make(chan struct{}, 1),
		body:  body,
	}
	d.tasks = append(d.tasks, t)
	d.live++
	go d.taskMain(t)
	return t
}

func (d *Det) taskMain(t *task) {
	<-t.grant
	if d.isCancelled() {
		d.exit(t)
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(cancelPanic); !ok {
				// Real panic in controlled code: surface it on the
				// Run caller after releasing the rest of the system.
				d.mu.Lock()
				d.cancelLocked(fmt.Errorf("sched: task %q panicked: %v", t.name, r))
				d.mu.Unlock()
			}
		}
		d.exit(t)
	}()
	t.body()
}

func (d *Det) exit(t *task) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t.state = stDone
	d.live--
	if !d.cancelled && (d.live > 0 || d.hasTimersLocked()) {
		// pickLocked may fire due timers, spawning fresh tasks even
		// when this was the last live one.
		if next := d.pickLocked(); next != nil {
			d.grantLocked(next)
			return
		}
	}
	if d.live == 0 {
		close(d.done)
	}
}

func (d *Det) hasTimersLocked() bool {
	for _, tm := range d.timers {
		if !tm.stopped {
			return true
		}
	}
	return false
}

func (d *Det) isCancelled() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cancelled
}

// cancelLocked aborts the run: every non-done task is granted so it
// can observe cancellation and unwind (blocked tasks wake from their
// grant channel; tasks inside body panic with cancelPanic at their
// next scheduling point).
func (d *Det) cancelLocked(err error) {
	if d.cancelled {
		return
	}
	d.cancelled = true
	if d.failure == nil {
		d.failure = err
	}
	for _, t := range d.tasks {
		if t.state != stDone {
			t.state = stReady
			select {
			case t.grant <- struct{}{}:
			default:
			}
		}
	}
}

// grantLocked hands the baton to next.
func (d *Det) grantLocked(next *task) {
	next.state = stRunning
	d.cur = next
	next.grant <- struct{}{}
}

// reschedule parks the current task t (whose new state the caller has
// set) and blocks until the scheduler hands the baton back. Called
// with d.mu held; returns with d.mu released.
func (d *Det) reschedule(t *task) {
	next := d.pickLocked()
	if next == t {
		t.state = stRunning
		d.cur = t
		d.mu.Unlock()
		return
	}
	if next != nil {
		d.grantLocked(next)
	}
	d.mu.Unlock()
	<-t.grant
	if d.isCancelled() {
		panic(cancelPanic{})
	}
}

// pickLocked chooses the next task to run: it probes parked channels,
// advances virtual time past sleepers and timers when nothing is
// runnable, and consults the policy at genuine branch points. It
// returns nil when the run has been cancelled (including cancellation
// it triggers itself on stall or budget exhaustion).
func (d *Det) pickLocked() *task {
	for {
		if d.cancelled {
			return nil
		}
		var ready []*task
		for _, t := range d.tasks {
			switch t.state {
			case stReady:
				ready = append(ready, t)
			case stParked:
				select {
				case <-t.parkCh:
					t.state = stReady
					t.parkCh = nil
					ready = append(ready, t)
				default:
				}
			}
		}
		if len(ready) > 0 {
			idx := 0
			if len(ready) > 1 {
				d.steps++
				if d.MaxSteps > 0 && d.steps > d.MaxSteps {
					d.cancelLocked(ErrBudget)
					return nil
				}
				cands := make([]Cand, len(ready))
				for i, t := range ready {
					cands[i] = Cand{ID: t.id, Name: t.name}
				}
				idx = d.policy.Pick(cands)
				if idx < 0 {
					// A negative pick is a controlled abort request
					// (see ErrPolicyAbort), not a policy bug.
					d.cancelLocked(ErrPolicyAbort)
					return nil
				}
				if idx >= len(ready) {
					panic(fmt.Sprintf("sched: policy picked %d of %d candidates", idx, len(ready)))
				}
				ch := Choice{N: len(ready), Picked: idx}
				d.choices = append(d.choices, ch)
				if d.OnChoice != nil {
					d.OnChoice(ch)
				}
			}
			return ready[idx]
		}
		// Nothing runnable: advance the virtual clock to the next
		// deadline, or declare a stall.
		wake, ok := d.nextDeadlineLocked()
		if !ok {
			d.cancelLocked(&StallError{Dump: d.dumpLocked()})
			return nil
		}
		if wake > d.now {
			d.now = wake
		}
		for _, t := range d.tasks {
			if t.state == stSleeping && t.wakeAt <= d.now {
				t.state = stReady
			}
		}
		var due []*vtimer
		rest := d.timers[:0]
		for _, tm := range d.timers {
			switch {
			case tm.stopped:
			case tm.when <= d.now:
				due = append(due, tm)
			default:
				rest = append(rest, tm)
			}
		}
		d.timers = rest
		sort.Slice(due, func(i, j int) bool {
			if due[i].when != due[j].when {
				return due[i].when < due[j].when
			}
			return due[i].seq < due[j].seq
		})
		for _, tm := range due {
			tm.fired = true
			d.spawnLocked(tm.name, tm.f)
		}
	}
}

func (d *Det) nextDeadlineLocked() (time.Duration, bool) {
	var min time.Duration
	found := false
	for _, t := range d.tasks {
		if t.state == stSleeping && (!found || t.wakeAt < min) {
			min, found = t.wakeAt, true
		}
	}
	for _, tm := range d.timers {
		if !tm.stopped && (!found || tm.when < min) {
			min, found = tm.when, true
		}
	}
	return min, found
}

func (d *Det) dumpLocked() string {
	var b strings.Builder
	for _, t := range d.tasks {
		if t.state == stDone {
			continue
		}
		fmt.Fprintf(&b, "  task %d %q: %s", t.id, t.name, t.state)
		if t.label != "" {
			fmt.Fprintf(&b, " at %q", t.label)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// --- Controller interface ---

// Go starts body as a controlled task; it becomes runnable at the
// next scheduling point.
func (d *Det) Go(name string, body func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.spawnLocked(name, body)
}

// Yield marks a scheduling point in the current task.
func (d *Det) Yield(label string) {
	d.mu.Lock()
	t := d.cur
	t.state = stReady
	t.label = label
	d.reschedule(t)
}

// Park blocks the current task until ch carries a signal. The signal
// is consumed. If it is already pending, Park is just a Yield.
func (d *Det) Park(label string, ch chan struct{}) {
	d.mu.Lock()
	t := d.cur
	t.label = label
	select {
	case <-ch:
		t.state = stReady
	default:
		t.state = stParked
		t.parkCh = ch
	}
	d.reschedule(t)
}

// --- Clock interface (virtual time) ---

// Now returns the virtual time.
func (d *Det) Now() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return epoch.Add(d.now)
}

// Sleep suspends the current task for d virtual time units; the clock
// jumps forward only when no other task can run.
func (d *Det) Sleep(dur time.Duration) {
	if dur <= 0 {
		d.Yield("sleep")
		return
	}
	d.mu.Lock()
	t := d.cur
	t.state = stSleeping
	t.label = "sleep"
	t.wakeAt = d.now + dur
	d.reschedule(t)
}

// AfterFunc schedules f to run as a fresh controlled task once the
// virtual clock reaches now+dur.
func (d *Det) AfterFunc(dur time.Duration, f func()) Timer {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.timerSeq++
	tm := &vtimer{d: d, name: fmt.Sprintf("timer%d", d.timerSeq), when: d.now + dur, seq: d.timerSeq, f: f}
	d.timers = append(d.timers, tm)
	return tm
}
