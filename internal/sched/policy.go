package sched

import "math/rand"

// Cand describes one runnable task at a scheduling decision.
type Cand struct {
	ID   int    // task id (creation order, stable within a run)
	Name string // task label, for diagnostics
}

// Choice records one scheduling decision: the branching factor and the
// index picked. The sequence of choices of a run fully determines the
// interleaving, so a recorded run can be replayed or systematically
// perturbed (see detsched.Explore).
type Choice struct {
	N      int // number of runnable tasks at the decision
	Picked int // index chosen, 0 <= Picked < N
}

// Policy decides which runnable task runs next. Pick is only consulted
// at genuine branch points (two or more runnable tasks); a lone
// runnable task is resumed without a decision. Candidates are sorted
// by task id. Policies are driven from a single goroutine and need no
// locking.
type Policy interface {
	Pick(cands []Cand) int
}

// randomPolicy schedules uniformly at random (a seeded random walk
// over the interleaving tree).
type randomPolicy struct{ rng *rand.Rand }

// NewRandom returns a uniform random-walk policy. The same seed yields
// the same schedule for the same program and configuration.
func NewRandom(seed int64) Policy {
	return &randomPolicy{rng: rand.New(rand.NewSource(seed))}
}

func (p *randomPolicy) Pick(cands []Cand) int { return p.rng.Intn(len(cands)) }

// pctPolicy is a PCT-style priority scheduler (Burckhardt et al., "A
// Randomized Scheduler with Probabilistic Guarantees of Finding
// Bugs"): every task gets a random priority when first seen, the
// highest-priority runnable task always runs, and at each decision the
// running candidate is demoted below all others with probability
// changeProb. Small numbers of demotions suffice to hit bugs of small
// "depth", which makes PCT sampling much better than uniform random
// walks at flushing out ordering bugs.
type pctPolicy struct {
	rng        *rand.Rand
	changeProb float64
	pri        map[int]int
	floor      int // lowest priority handed out so far
}

// NewPCT returns a PCT-style policy. changeProb is the per-decision
// probability of demoting the currently preferred task (0.0–1.0; 0.1
// is a reasonable default).
func NewPCT(seed int64, changeProb float64) Policy {
	return &pctPolicy{
		rng:        rand.New(rand.NewSource(seed)),
		changeProb: changeProb,
		pri:        make(map[int]int),
	}
}

func (p *pctPolicy) Pick(cands []Cand) int {
	for _, c := range cands {
		if _, ok := p.pri[c.ID]; !ok {
			pr := p.rng.Intn(1 << 20)
			p.pri[c.ID] = pr
			if pr < p.floor {
				p.floor = pr
			}
		}
	}
	best := 0
	for i, c := range cands {
		if p.pri[c.ID] > p.pri[cands[best].ID] {
			best = i
		}
	}
	if p.rng.Float64() < p.changeProb {
		p.floor--
		p.pri[cands[best].ID] = p.floor
		for i, c := range cands {
			if p.pri[c.ID] > p.pri[cands[best].ID] {
				best = i
			}
		}
	}
	return best
}

// replayPolicy follows a scripted prefix of decisions and then always
// picks index 0. detsched.Explore uses it for stateless depth-first
// search over the interleaving tree: rerun with prefix P, read the
// recorded choices, bump the last incrementable one.
type replayPolicy struct {
	script []int
	pos    int
}

// NewReplay returns a policy that follows script and then defaults to
// index 0. The script is copied. A script entry out of range for its
// decision panics: it means the run diverged from the recorded one,
// i.e. a determinism bug.
func NewReplay(script []int) Policy {
	s := make([]int, len(script))
	copy(s, script)
	return &replayPolicy{script: s}
}

func (p *replayPolicy) Pick(cands []Cand) int {
	if p.pos >= len(p.script) {
		return 0
	}
	i := p.script[p.pos]
	p.pos++
	if i < 0 || i >= len(cands) {
		panic("sched: replay diverged from recorded schedule")
	}
	return i
}
