package sched

import (
	"fmt"
	"sync"
)

// Stream is a Policy whose script arrives incrementally from outside
// the run — the import half of schedule-shipping replication. A
// replica's engine runs under a Det driven by a Stream while a network
// reader Feeds it the primary's recorded choices; Pick blocks until
// the next scripted decision is available, so the controlled run
// advances exactly as fast as the schedule arrives.
//
// Every scripted choice carries the branching factor the primary saw
// (Choice.N). If the replica's run offers a different number of
// candidates, or the scripted index is out of range, the runs have
// diverged: Pick records the mismatch (Err) and returns a negative
// index, which the controller turns into a clean ErrPolicyAbort
// cancellation instead of a panic. After Close, a Pick past the end of
// the script also aborts — a replica that wants more decisions than
// the primary recorded has diverged too.
//
// Feed and Close may be called from any goroutine; Pick is called by
// the controller only.
type Stream struct {
	mu     sync.Mutex
	cond   *sync.Cond
	script []Choice
	pos    int
	closed bool
	err    error
}

// NewStream returns an empty, open schedule stream.
func NewStream() *Stream {
	s := &Stream{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Feed appends choices to the script and wakes a blocked Pick.
func (s *Stream) Feed(choices []Choice) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.script = append(s.script, choices...)
	s.cond.Broadcast()
}

// Close marks the end of the feed. cause, when non-nil, is recorded as
// the stream's error (a teardown reason); nil means the primary's
// schedule is complete and any further Pick is divergence. Close is
// idempotent; the first call wins.
func (s *Stream) Close(cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.err == nil && cause != nil {
		s.err = cause
	}
	s.cond.Broadcast()
}

// Err returns the sticky error: a divergence detected by Pick, or the
// cause passed to Close. nil means the stream is healthy.
func (s *Stream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Consumed returns how many scripted decisions Pick has replayed.
func (s *Stream) Consumed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pos
}

// Pick replays the next scripted decision, blocking until it is fed.
// It returns a negative index (controlled abort) when the stream is
// closed and drained or when the script diverges from the run.
func (s *Stream) Pick(cands []Cand) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.pos >= len(s.script) && !s.closed {
		s.cond.Wait()
	}
	if s.pos >= len(s.script) {
		if s.err == nil {
			s.err = fmt.Errorf("sched: stream exhausted: run wants decision %d beyond the %d scripted (replica diverged)",
				s.pos, len(s.script))
		}
		return -1
	}
	c := s.script[s.pos]
	if c.N != len(cands) || c.Picked < 0 || c.Picked >= len(cands) {
		if s.err == nil {
			s.err = fmt.Errorf("sched: stream diverged at decision %d: scripted pick %d of %d, run offers %d candidates",
				s.pos, c.Picked, c.N, len(cands))
		}
		return -1
	}
	s.pos++
	return c.Picked
}
