// Package sched is the concurrency seam of the dynamic engines: a
// Clock abstraction over timing (retry backoff, simulated rule costs,
// latency measurement) and a cooperative Controller that can run an
// engine's goroutines one at a time under a scheduling policy, making
// a whole parallel run deterministic and replayable. The engines and
// the lock manager call the seam at every scheduling point; in normal
// operation the seam is absent (nil controller, real clock) and costs
// nothing, while the detsched test harness installs a Det controller
// to explore interleavings.
package sched

import "time"

// Timer is a handle on a pending AfterFunc callback.
type Timer interface {
	// Stop cancels the timer; it reports whether the call prevented
	// the callback from firing.
	Stop() bool
}

// Clock supplies time to the engines. Implementations must be safe
// for concurrent use.
type Clock interface {
	// Now returns the current time (virtual under a Det controller).
	Now() time.Time
	// Sleep pauses the calling goroutine for the duration.
	Sleep(d time.Duration)
	// AfterFunc runs f after the duration, in its own goroutine (or
	// controlled task).
	AfterFunc(d time.Duration, f func()) Timer
}

// Real is the wall-clock Clock backed by the time package.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Sleep calls time.Sleep.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// AfterFunc calls time.AfterFunc.
func (Real) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

// Immediate is a Clock that collapses every delay to zero: Sleep
// returns at once and AfterFunc callbacks run immediately. Injecting
// it into an engine disables retry backoff and simulated rule costs
// without touching the engine's concurrency.
type Immediate struct{}

// Now returns time.Now(), so latency accounting stays meaningful.
func (Immediate) Now() time.Time { return time.Now() }

// Sleep returns immediately.
func (Immediate) Sleep(time.Duration) {}

// AfterFunc runs f at once in its own goroutine.
func (Immediate) AfterFunc(_ time.Duration, f func()) Timer {
	go f()
	return firedTimer{}
}

type firedTimer struct{}

func (firedTimer) Stop() bool { return false }
