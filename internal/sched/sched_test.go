package sched

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestSerialisation: controlled tasks may mutate shared state with no
// locking at all, because exactly one task runs at a time and the
// baton passes through channels (giving the race detector its
// happens-before edges). 50 tasks × 20 unsynchronised increments.
func TestSerialisation(t *testing.T) {
	d := NewDet(NewRandom(1))
	counter := 0
	err := d.Run(func() {
		for i := 0; i < 50; i++ {
			d.Go(fmt.Sprintf("inc%d", i), func() {
				for j := 0; j < 20; j++ {
					v := counter
					d.Yield("between read and write")
					counter = v + 1
				}
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Lost updates are expected (read-yield-write races are the point
	// of the exercise); what must hold is freedom from data races and
	// a deterministic final value for the seed.
	d2 := NewDet(NewRandom(1))
	counter2 := 0
	if err := d2.Run(func() {
		for i := 0; i < 50; i++ {
			d2.Go(fmt.Sprintf("inc%d", i), func() {
				for j := 0; j < 20; j++ {
					v := counter2
					d2.Yield("between read and write")
					counter2 = v + 1
				}
			})
		}
	}); err != nil {
		t.Fatal(err)
	}
	if counter != counter2 {
		t.Fatalf("same seed, different outcomes: %d vs %d", counter, counter2)
	}
	if !reflect.DeepEqual(d.Choices(), d2.Choices()) {
		t.Fatal("same seed, different choice sequences")
	}
}

// TestReplay: replaying a recorded choice sequence reproduces it.
func TestReplay(t *testing.T) {
	order := func(p Policy) ([]int, []Choice) {
		d := NewDet(p)
		var got []int
		if err := d.Run(func() {
			for i := 0; i < 5; i++ {
				i := i
				d.Go(fmt.Sprintf("t%d", i), func() {
					d.Yield("step")
					got = append(got, i)
				})
			}
		}); err != nil {
			t.Fatal(err)
		}
		return got, d.Choices()
	}
	o1, ch1 := order(NewRandom(42))
	script := make([]int, len(ch1))
	for i, c := range ch1 {
		script[i] = c.Picked
	}
	o2, ch2 := order(NewReplay(script))
	if !reflect.DeepEqual(o1, o2) {
		t.Fatalf("replay order %v != recorded %v", o2, o1)
	}
	if !reflect.DeepEqual(ch1, ch2) {
		t.Fatalf("replay choices %v != recorded %v", ch2, ch1)
	}
}

// TestParkSignal: a parked task resumes only after its channel is
// signalled, and the signal may arrive before the park.
func TestParkSignal(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		d := NewDet(NewRandom(seed))
		var log []string
		err := d.Run(func() {
			ch := make(chan struct{}, 1)
			d.Go("waiter", func() {
				d.Park("wait", ch)
				log = append(log, "woke")
			})
			d.Go("signaller", func() {
				d.Yield("dawdle")
				log = append(log, "signal")
				ch <- struct{}{}
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(log, []string{"signal", "woke"}) {
			t.Fatalf("seed %d: order %v", seed, log)
		}
	}
}

// TestVirtualTime: sleeps order by deadline, and the clock advances
// only when nothing is runnable.
func TestVirtualTime(t *testing.T) {
	d := NewDet(NewRandom(7))
	var log []string
	start := d.Now()
	err := d.Run(func() {
		d.Go("slow", func() {
			d.Sleep(50 * time.Millisecond)
			log = append(log, "slow")
		})
		d.Go("fast", func() {
			d.Sleep(10 * time.Millisecond)
			log = append(log, "fast")
		})
		d.Go("busy", func() {
			log = append(log, "busy")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(log, []string{"busy", "fast", "slow"}) {
		t.Fatalf("order %v", log)
	}
	if got := d.Now().Sub(start); got != 50*time.Millisecond {
		t.Fatalf("virtual clock advanced %v, want 50ms", got)
	}
}

// TestAfterFunc: timers fire in deadline order as controlled tasks,
// and Stop prevents firing.
func TestAfterFunc(t *testing.T) {
	d := NewDet(NewRandom(3))
	var log []string
	err := d.Run(func() {
		d.AfterFunc(20*time.Millisecond, func() { log = append(log, "b") })
		d.AfterFunc(10*time.Millisecond, func() { log = append(log, "a") })
		tm := d.AfterFunc(5*time.Millisecond, func() { log = append(log, "cancelled") })
		if !tm.Stop() {
			t.Error("Stop on pending timer returned false")
		}
		if tm.Stop() {
			t.Error("second Stop returned true")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(log, []string{"a", "b"}) {
		t.Fatalf("order %v", log)
	}
}

// TestStall: tasks parked forever produce a StallError naming them,
// and the run still terminates cleanly.
func TestStall(t *testing.T) {
	d := NewDet(NewRandom(0))
	err := d.Run(func() {
		d.Go("stuck", func() {
			d.Park("never signalled", make(chan struct{}))
		})
	})
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want StallError", err)
	}
	if se.Dump == "" {
		t.Fatal("empty stall dump")
	}
}

// TestBudget: a livelocking pair of tasks is cut off by MaxSteps.
func TestBudget(t *testing.T) {
	d := NewDet(NewRandom(0))
	d.MaxSteps = 100
	err := d.Run(func() {
		spin := func() {
			for {
				d.Yield("spin")
			}
		}
		d.Go("a", spin)
		d.Go("b", spin)
	})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("got %v, want ErrBudget", err)
	}
}

// TestTaskPanic: a panic inside a controlled task surfaces as Run's
// error instead of killing the process, and other tasks unwind.
func TestTaskPanic(t *testing.T) {
	d := NewDet(NewRandom(0))
	err := d.Run(func() {
		d.Go("bystander", func() {
			d.Park("wait", make(chan struct{}))
		})
		d.Go("bomb", func() {
			panic("boom")
		})
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic not surfaced: %v", err)
	}
}

// TestImmediateClock: Immediate collapses delays and runs callbacks.
func TestImmediateClock(t *testing.T) {
	var c Clock = Immediate{}
	before := time.Now()
	c.Sleep(time.Hour)
	if time.Since(before) > time.Second {
		t.Fatal("Immediate.Sleep slept")
	}
	ch := make(chan struct{})
	c.AfterFunc(time.Hour, func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("Immediate.AfterFunc never ran")
	}
}

// TestPCT: PCT runs complete and are reproducible per seed.
func TestPCT(t *testing.T) {
	run := func(seed int64) []int {
		d := NewDet(NewPCT(seed, 0.1))
		var got []int
		if err := d.Run(func() {
			for i := 0; i < 8; i++ {
				i := i
				d.Go(fmt.Sprintf("t%d", i), func() {
					d.Yield("a")
					d.Yield("b")
					got = append(got, i)
				})
			}
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	if !reflect.DeepEqual(run(5), run(5)) {
		t.Fatal("PCT not reproducible for same seed")
	}
	// Different seeds should (very likely) produce different orders.
	distinct := map[string]bool{}
	for seed := int64(0); seed < 8; seed++ {
		distinct[fmt.Sprint(run(seed))] = true
	}
	if len(distinct) < 2 {
		t.Fatal("PCT produced a single order across 8 seeds")
	}
}
