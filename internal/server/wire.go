// Package server turns the production-system library into a
// multi-tenant network service: a TCP wire protocol hosting many
// concurrent engine sessions, one tenant per session, with streaming
// ingest of working-memory events, batched run commands, streamed
// commit traces, and metrics snapshots — the "system with traffic"
// refactor the roadmap's scale items hang off.
//
// The protocol is deliberately simple: length-prefixed frames, each
// carrying one JSON-encoded request or response. Requests address a
// session by ID; a connection may create and drive any number of
// sessions, and responses carry the request's ID so a client can
// multiplex. A `run` command streams the session's new trace events
// back in batches as firing proceeds (More=true frames), terminated
// by the run summary — the commit subsequence of those events is the
// execution string a client checks with CheckTrace (Definition 3.2),
// so a tenant can audit that the outcome it observed is admissible
// under the single-thread semantics.
//
// Per-session dispatch queues are bounded: when a tenant's committer
// falls behind, new ingest is either shed with a typed "overloaded"
// error or blocks the connection (per server config), and every such
// event increments server_ingest_backpressure_total. See
// docs/SERVER.md for the frame catalog and lifecycle.
package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// DefaultMaxFrame bounds a frame payload (1 MiB). Programs, ingest
// batches and trace batches all fit comfortably; anything larger is a
// protocol error, not a bigger allocation.
const DefaultMaxFrame = 1 << 20

// frameHeaderLen is the length prefix size (big-endian uint32).
const frameHeaderLen = 4

// Frame-layer errors. They are returned typed so fault-injection and
// fuzz tests can assert malformed input never panics and never
// surfaces an untyped failure.
var (
	// ErrFrameTooLarge reports a length prefix above the configured
	// maximum — the connection is poisoned and must be closed.
	ErrFrameTooLarge = errors.New("server: frame exceeds maximum size")
	// ErrShortFrame reports a frame truncated mid-header or mid-payload.
	ErrShortFrame = errors.New("server: short frame")
)

// Error codes carried by error responses. They are part of the wire
// contract: clients branch on Code, not on message text.
const (
	// CodeBadRequest rejects a malformed or invalid request.
	CodeBadRequest = "bad_request"
	// CodeNotFound reports an unknown session ID.
	CodeNotFound = "not_found"
	// CodeOverloaded reports admission control or backpressure shedding:
	// the session's dispatch queue (or the server's session table) is
	// full. The request was not executed; the client may retry.
	CodeOverloaded = "overloaded"
	// CodeClosed reports a session or server that shut down before or
	// while the request was queued.
	CodeClosed = "closed"
	// CodeInternal reports a server-side execution failure.
	CodeInternal = "internal"
)

// ProtocolError is a typed request-validation error; Code is one of
// the wire error codes.
type ProtocolError struct {
	Code string
	Msg  string
}

// Error renders the code and message.
func (e *ProtocolError) Error() string { return fmt.Sprintf("server: %s: %s", e.Code, e.Msg) }

func badReq(format string, args ...interface{}) error {
	return &ProtocolError{Code: CodeBadRequest, Msg: fmt.Sprintf(format, args...)}
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf := make([]byte, 0, frameHeaderLen+len(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame payload, enforcing the size bound before
// allocating. max <= 0 means DefaultMaxFrame. io.EOF is returned
// untouched on a clean boundary; a frame cut mid-header or mid-payload
// yields ErrShortFrame.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: header: %v", ErrShortFrame, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > uint32(max) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrShortFrame, err)
	}
	return payload, nil
}

// DecodeFrame splits one frame off a byte buffer and returns the
// payload and the remaining bytes — the slice-level twin of ReadFrame
// used by the fuzz targets.
func DecodeFrame(buf []byte, max int) (payload, rest []byte, err error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	if len(buf) < frameHeaderLen {
		return nil, nil, fmt.Errorf("%w: %d header bytes", ErrShortFrame, len(buf))
	}
	n := binary.BigEndian.Uint32(buf[:frameHeaderLen])
	if n > uint32(max) {
		return nil, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	if uint32(len(buf)-frameHeaderLen) < n {
		return nil, nil, fmt.Errorf("%w: %d payload bytes of %d", ErrShortFrame, len(buf)-frameHeaderLen, n)
	}
	end := frameHeaderLen + int(n)
	return buf[frameHeaderLen:end], buf[end:], nil
}

// Request types.
const (
	// ReqCreate builds a new session from a program and options.
	ReqCreate = "create"
	// ReqAttach validates that a session exists (a second connection
	// joining a tenant).
	ReqAttach = "attach"
	// ReqAssert ingests tuple literals into the session's working memory.
	ReqAssert = "assert"
	// ReqRetract removes a WME by ID.
	ReqRetract = "retract"
	// ReqRun fires up to Max productions, streaming trace batches.
	ReqRun = "run"
	// ReqTrace drains the session's un-streamed trace events.
	ReqTrace = "trace"
	// ReqWMEs dumps the session's working-memory fingerprints.
	ReqWMEs = "wmes"
	// ReqMetrics snapshots the session's (or, without a session, the
	// server's) metrics registry.
	ReqMetrics = "metrics"
	// ReqClose tears the session down.
	ReqClose = "close"
	// ReqPing is a liveness no-op.
	ReqPing = "ping"
	// ReqReplHello subscribes the connection to a replication primary's
	// stream (internal/repl). ReplMode selects replay or apply;
	// FromChoice/FromLSN resume a follower that reconnected mid-stream.
	ReqReplHello = "repl_hello"
	// ReqReplAck reports the highest LSN a follower has applied. It has
	// no response; the primary folds it into its lag gauge and uses it
	// to decide when the stream has drained.
	ReqReplAck = "repl_ack"
)

// Replication modes carried by repl_hello (see docs/REPLICATION.md).
const (
	// ReplModeReplay re-executes the primary's run decision by decision
	// under a deterministic controller and byte-compares every commit
	// record, the final metrics snapshot and the store hash.
	ReplModeReplay = "replay"
	// ReplModeApply bootstraps from a shipped checkpoint snapshot and
	// folds the record suffix into a store without re-executing — the
	// catch-up path for late joiners.
	ReplModeApply = "apply"
)

// SessionOptions is the per-tenant engine configuration carried by a
// create request. The zero value selects Rete matching, LEX conflict
// resolution and the default firing bound.
type SessionOptions struct {
	// Matcher selects the match algorithm: "rete" (default), "treat",
	// "naive" or "rete-linear".
	Matcher string `json:"matcher,omitempty"`
	// Strategy selects conflict resolution: "lex" (default), "mea",
	// "fifo" or "priority".
	Strategy string `json:"strategy,omitempty"`
	// MaxFirings bounds a single run command; 0 means 10000.
	MaxFirings int `json:"max_firings,omitempty"`
	// StorageDir, when non-empty, opens a durable file backend under
	// the server's storage root: ingested events and committed firings
	// are group-commit logged, and re-creating a session on the same
	// directory recovers the surviving state (PR 6 semantics). The
	// path must be relative and must not escape the root.
	StorageDir string `json:"storage_dir,omitempty"`
}

// Request is one client command. Type discriminates; the other fields
// are per-type (see the Req constants).
type Request struct {
	Type    string `json:"type"`
	ID      uint64 `json:"id"`
	Session string `json:"session,omitempty"`

	// Create.
	Program string         `json:"program,omitempty"`
	Options SessionOptions `json:"options,omitempty"`

	// Assert: tuple literals "(class ^attr value ...)".
	WMEs []string `json:"wmes,omitempty"`
	// Retract.
	WMEID int64 `json:"wme_id,omitempty"`
	// Run.
	Max int `json:"max,omitempty"`

	// Replication (repl_hello / repl_ack).
	ReplMode   string `json:"repl_mode,omitempty"`
	FromChoice int    `json:"from_choice,omitempty"`
	FromLSN    uint64 `json:"from_lsn,omitempty"`
	AckLSN     uint64 `json:"ack_lsn,omitempty"`
}

// EncodeRequest marshals a request payload.
func EncodeRequest(q *Request) ([]byte, error) { return json.Marshal(q) }

// DecodeRequest unmarshals and validates a request payload. A JSON
// failure or unknown type yields a *ProtocolError; the partially
// decoded request is returned alongside validation errors so the
// server can echo the request ID in its error response.
func DecodeRequest(b []byte) (*Request, error) {
	q := &Request{}
	if err := json.Unmarshal(b, q); err != nil {
		return nil, badReq("request JSON: %v", err)
	}
	switch q.Type {
	case ReqCreate:
		if q.Program == "" {
			return q, badReq("create: empty program")
		}
	case ReqAttach, ReqTrace, ReqWMEs, ReqClose:
		if q.Session == "" {
			return q, badReq("%s: missing session", q.Type)
		}
	case ReqAssert:
		if q.Session == "" {
			return q, badReq("assert: missing session")
		}
		if len(q.WMEs) == 0 {
			return q, badReq("assert: no tuples")
		}
	case ReqRetract:
		if q.Session == "" {
			return q, badReq("retract: missing session")
		}
		if q.WMEID <= 0 {
			return q, badReq("retract: bad WME id %d", q.WMEID)
		}
	case ReqRun:
		if q.Session == "" {
			return q, badReq("run: missing session")
		}
		if q.Max < 0 {
			return q, badReq("run: negative max")
		}
	case ReqMetrics, ReqPing:
		// Session optional (metrics) or ignored (ping).
	case ReqReplHello:
		switch q.ReplMode {
		case "", ReplModeReplay, ReplModeApply:
		default:
			return q, badReq("repl_hello: unknown mode %q", q.ReplMode)
		}
		if q.FromChoice < 0 {
			return q, badReq("repl_hello: negative from_choice")
		}
	case ReqReplAck:
		// AckLSN zero is a valid "nothing applied yet" ack.
	default:
		return q, badReq("unknown request type %q", q.Type)
	}
	return q, nil
}

// Response types.
const (
	// RespOK acknowledges assert/retract/attach/close.
	RespOK = "ok"
	// RespCreated returns a new session's ID and recovery summary.
	RespCreated = "created"
	// RespRun is the terminal summary of a run command.
	RespRun = "run"
	// RespTrace carries a batch of trace events; More marks a mid-run
	// push with further frames to follow for the same request ID.
	RespTrace = "trace"
	// RespWMEs carries a working-memory dump.
	RespWMEs = "wmes"
	// RespMetrics carries a metrics snapshot as JSON.
	RespMetrics = "metrics"
	// RespError carries a typed error code.
	RespError = "error"
	// RespPong answers a ping.
	RespPong = "pong"
	// RespReplHello answers a repl_hello with the program, the run
	// configuration and, in apply mode, a bootstrap snapshot.
	RespReplHello = "repl_hello"
	// RespReplChoices pushes a batch of scheduling decisions; ChoiceSeq
	// is the 0-based index of the first.
	RespReplChoices = "repl_choices"
	// RespReplRecords pushes a batch of encoded commit records; RecLSN
	// is the LSN of the first.
	RespReplRecords = "repl_records"
	// RespReplFin terminates the stream with the primary run's totals,
	// metrics snapshot and store hash — the divergence oracle.
	RespReplFin = "repl_fin"
)

// ReplChoice is the wire form of one scheduling decision
// (sched.Choice): the branching factor and the index picked.
type ReplChoice struct {
	N int `json:"n"`
	P int `json:"p"`
}

// TraceEvent is the wire form of one trace-log event. Kind uses the
// trace package's string names ("fire", "commit", "abort", "skip",
// "halt"); WMEs are the matched tuples' content fingerprints — exactly
// what CheckTrace consumes, so a streamed commit trace round-trips
// into the consistency checker without loss.
type TraceEvent struct {
	Seq    int      `json:"seq"`
	Kind   string   `json:"kind"`
	Rule   string   `json:"rule"`
	Inst   string   `json:"inst,omitempty"`
	Detail string   `json:"detail,omitempty"`
	WMEs   []string `json:"wmes,omitempty"`
}

// Response is one server reply or push frame. ID echoes the request.
type Response struct {
	Type    string `json:"type"`
	ID      uint64 `json:"id"`
	Session string `json:"session,omitempty"`

	// Error.
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`

	// Created: recovery summary (0/0 for a fresh session).
	Recovered int    `json:"recovered,omitempty"`
	LSN       uint64 `json:"lsn,omitempty"`

	// Assert: IDs of the inserted WMEs.
	IDs []int64 `json:"ids,omitempty"`

	// Run summary.
	Fired     int  `json:"fired,omitempty"`
	Halted    bool `json:"halted,omitempty"`
	Quiescent bool `json:"quiescent,omitempty"`

	// Trace batch.
	More   bool         `json:"more,omitempty"`
	Events []TraceEvent `json:"events,omitempty"`

	// WME dump.
	WMEs []string `json:"wmes,omitempty"`

	// Metrics snapshot (obs.Snapshot JSON). Also carried by repl_fin,
	// where it must be byte-identical to the follower's own snapshot.
	Metrics json.RawMessage `json:"metrics,omitempty"`

	// Replication handshake (repl_hello): the program source, the
	// JSON-encoded run configuration, the granted mode and, for apply
	// mode, the bootstrap snapshot and the LSN it covers.
	Program     string          `json:"program,omitempty"`
	ReplMode    string          `json:"repl_mode,omitempty"`
	ReplConfig  json.RawMessage `json:"repl_config,omitempty"`
	Snapshot    []byte          `json:"snapshot,omitempty"`
	SnapshotLSN uint64          `json:"snapshot_lsn,omitempty"`

	// Replication stream (repl_choices / repl_records / repl_fin).
	ChoiceSeq int          `json:"choice_seq,omitempty"`
	Choices   []ReplChoice `json:"choices,omitempty"`
	RecLSN    uint64       `json:"rec_lsn,omitempty"`
	Records   [][]byte     `json:"records,omitempty"`
	NChoices  int          `json:"n_choices,omitempty"`
	NRecords  uint64       `json:"n_records,omitempty"`
	StoreHash string       `json:"store_hash,omitempty"`
}

// EncodeResponse marshals a response payload.
func EncodeResponse(p *Response) ([]byte, error) { return json.Marshal(p) }

// DecodeResponse unmarshals a response payload.
func DecodeResponse(b []byte) (*Response, error) {
	p := &Response{}
	if err := json.Unmarshal(b, p); err != nil {
		return nil, badReq("response JSON: %v", err)
	}
	return p, nil
}
