package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"

	"pdps/internal/cr"
)

// newStrategy maps a wire strategy name onto a conflict-resolution
// strategy; empty means the engine default (LEX).
func newStrategy(name string) (cr.Strategy, error) {
	if name == "" {
		return nil, nil
	}
	st, err := cr.New(name)
	if err != nil {
		return nil, badReq("strategy: %v", err)
	}
	return st, nil
}

// conn is one client connection: a reader goroutine decoding frames
// and dispatching them, and a mutex-serialised writer shared by the
// reader and the session actors streaming responses back. Sessions
// created on a connection are owned by it: when the connection dies —
// clean close, abrupt kill, half-written frame — the reader's cleanup
// tears every owned session down, so an abandoned tenant never leaks
// an actor goroutine or a storage backend.
type conn struct {
	srv *Server
	c   net.Conn

	wmu  sync.Mutex
	dead bool // guarded by wmu; set on first write error

	mu    sync.Mutex
	owned map[string]*session
}

// adopt records a session as owned by this connection.
func (c *conn) adopt(sess *session) {
	c.mu.Lock()
	c.owned[sess.id] = sess
	c.mu.Unlock()
}

// send writes one response frame; errors mark the connection dead and
// are otherwise swallowed (the reader will observe the close).
func (c *conn) send(p *Response) {
	payload, err := EncodeResponse(p)
	if err != nil {
		return
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.dead {
		return
	}
	if err := WriteFrame(c.c, payload); err != nil {
		c.dead = true
		return
	}
	c.srv.met.framesOut.Inc()
	c.srv.met.bytesOut.Add(int64(frameHeaderLen + len(payload)))
}

func (c *conn) readLoop() {
	defer c.srv.wg.Done()
	defer c.cleanup()
	br := bufio.NewReader(c.c)
	for {
		payload, err := ReadFrame(br, c.srv.cfg.MaxFrame)
		if err != nil {
			// EOF is a clean close; a short or oversized frame is a
			// poisoned stream — either way the connection is done and
			// cleanup reaps the owned sessions.
			if !errors.Is(err, io.EOF) {
				c.srv.met.errors(CodeBadRequest).Inc()
			}
			return
		}
		c.srv.met.framesIn.Inc()
		c.srv.met.bytesIn.Add(int64(frameHeaderLen + len(payload)))
		req, err := DecodeRequest(payload)
		if err != nil {
			c.srv.met.errors(CodeBadRequest).Inc()
			if req == nil {
				// Unparseable JSON: no request ID to echo; the framing
				// may still be sound, so answer ID 0 and keep reading.
				c.send(errResp(0, CodeBadRequest, err.Error()))
				continue
			}
			c.send(errFromProto(req.ID, err))
			continue
		}
		c.dispatch(req)
	}
}

// dispatch routes one request: registry operations and metrics are
// handled inline on the reader (they touch only concurrency-safe
// state), everything that mutates a session's engine goes through the
// session's bounded dispatch queue.
func (c *conn) dispatch(q *Request) {
	c.srv.met.requests(q.Type).Inc()
	switch q.Type {
	case ReqPing:
		c.send(&Response{Type: RespPong, ID: q.ID})
	case ReqCreate:
		c.send(c.srv.createSession(q, c))
	case ReqAttach:
		if c.srv.lookup(q.Session) == nil {
			c.sendErr(q, CodeNotFound, "no session "+q.Session)
			return
		}
		c.send(&Response{Type: RespOK, ID: q.ID, Session: q.Session})
	case ReqMetrics:
		c.handleMetrics(q)
	case ReqClose:
		sess := c.srv.lookup(q.Session)
		if sess == nil {
			c.sendErr(q, CodeNotFound, "no session "+q.Session)
			return
		}
		// Tear down and acknowledge only after the actor has fully
		// exited (engine stopped, backend closed, storage dir freed),
		// so a client's close→re-create on the same durable directory
		// never races the old backend.
		c.srv.wg.Add(1)
		go func() {
			defer c.srv.wg.Done()
			sess.teardown()
			<-sess.done
			c.send(&Response{Type: RespOK, ID: q.ID, Session: q.Session})
		}()
	case ReqAssert, ReqRetract, ReqRun, ReqTrace, ReqWMEs:
		sess := c.srv.lookup(q.Session)
		if sess == nil {
			c.sendErr(q, CodeNotFound, "no session "+q.Session)
			return
		}
		c.submit(sess, task{req: q, c: c})
	default:
		c.sendErr(q, CodeBadRequest, "unknown request type "+q.Type)
	}
}

// submit enqueues a task on the session's bounded dispatch queue,
// applying the configured backpressure policy when it is full: shed
// with a typed overloaded error, or block this connection's reader
// (TCP backpressure) until the actor drains a slot or the session
// stops. Every full-queue encounter increments
// server_ingest_backpressure_total exactly once.
func (c *conn) submit(sess *session, t task) {
	switch sess.trySubmit(t) {
	case submitOK:
		return
	case submitClosed:
		c.sendErr(t.req, CodeClosed, "session "+sess.id+" closed")
		return
	}
	// Queue full.
	c.srv.met.backpressure.Inc()
	if !c.srv.cfg.BlockOnFull {
		c.srv.met.errors(CodeOverloaded).Inc()
		c.sendErr(t.req, CodeOverloaded, "session "+sess.id+" dispatch queue full")
		return
	}
	if sess.blockSubmit(t) != submitOK {
		c.sendErr(t.req, CodeClosed, "session "+sess.id+" closed")
	}
}

func (c *conn) handleMetrics(q *Request) {
	reg := c.srv.cfg.Metrics
	if q.Session != "" {
		sess := c.srv.lookup(q.Session)
		if sess == nil {
			c.sendErr(q, CodeNotFound, "no session "+q.Session)
			return
		}
		reg = sess.eng.Metrics()
	}
	buf, err := reg.Snapshot().MarshalIndent()
	if err != nil {
		c.sendErr(q, CodeInternal, err.Error())
		return
	}
	c.send(&Response{Type: RespMetrics, ID: q.ID, Session: q.Session, Metrics: buf})
}

func (c *conn) sendErr(q *Request, code, msg string) {
	c.srv.met.errors(code).Inc()
	c.send(errResp(q.ID, code, msg))
}

// cleanup runs when the reader exits for any reason: it closes the
// socket, unregisters the connection and reaps every owned session.
func (c *conn) cleanup() {
	c.c.Close()
	c.mu.Lock()
	owned := make([]*session, 0, len(c.owned))
	for _, s := range c.owned {
		owned = append(owned, s)
	}
	c.owned = make(map[string]*session)
	c.mu.Unlock()
	for _, s := range owned {
		s.teardown()
	}
	c.srv.mu.Lock()
	delete(c.srv.conns, c)
	c.srv.mu.Unlock()
	c.srv.met.connsActive.Add(-1)
}
