package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestStress64Sessions is the -race stress suite: 64 tenant sessions
// spread over a handful of multiplexed connections, each ingesting and
// running concurrently while separate goroutines hammer per-session
// and server-level metrics snapshots and a third of the tenants close
// early mid-traffic. The engine clock is the Options.Clock seam's
// immediate clock, so nothing here depends on wall-clock timing.
func TestStress64Sessions(t *testing.T) {
	const (
		sessions = 64
		conns    = 8
		batches  = 4
		perBatch = 4
	)
	srv := startServer(t, Config{MaxSessions: sessions + 8, QueueDepth: 8})
	addr := srv.Addr().String()

	clients := make([]*Client, conns)
	for i := range clients {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}

	stopPolling := make(chan struct{})
	var pollers sync.WaitGroup
	ids := make(chan string, sessions)

	// Metrics hammer: server-level and random per-session snapshots
	// concurrent with ingest, runs and closes.
	for p := 0; p < 2; p++ {
		pollers.Add(1)
		go func(p int) {
			defer pollers.Done()
			c := clients[p]
			known := []string{}
			for {
				select {
				case <-stopPolling:
					return
				case id := <-ids:
					known = append(known, id)
				default:
				}
				if _, err := c.Metrics(""); err != nil {
					return
				}
				if len(known) > 0 {
					// Sessions may close mid-poll; not_found and closed
					// are legal answers, errors in transport are not.
					sid := known[rand.Intn(len(known))]
					if _, err := c.Metrics(sid); err != nil {
						if _, ok := err.(*ServerError); !ok {
							t.Errorf("metrics poll transport error: %v", err)
							return
						}
					}
				}
			}
		}(p)
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := clients[i%conns]
			tenant := fmt.Sprintf("x%03d", i)
			id, _, _, err := c.Create(tenantProgram(tenant), SessionOptions{})
			if err != nil {
				errs <- err
				return
			}
			select {
			case ids <- id:
			default:
			}
			closeEarly := i%3 == 0
			seq := 0
			for b := 0; b < batches; b++ {
				tuples := make([]string, 0, perBatch)
				for k := 0; k < perBatch; k++ {
					tuples = append(tuples, eventTuple(tenant, seq))
					seq++
				}
				if _, err := c.Assert(id, tuples...); err != nil {
					if IsOverloaded(err) {
						continue // shed under pressure: acceptable, retry next batch
					}
					errs <- fmt.Errorf("tenant %s assert: %w", tenant, err)
					return
				}
				if _, err := c.Run(id, 0); err != nil {
					errs <- fmt.Errorf("tenant %s run: %w", tenant, err)
					return
				}
				if closeEarly && b == 1 {
					if err := c.CloseSession(id); err != nil {
						errs <- fmt.Errorf("tenant %s early close: %w", tenant, err)
					}
					return
				}
			}
			if err := c.CloseSession(id); err != nil {
				errs <- fmt.Errorf("tenant %s close: %w", tenant, err)
			}
		}(i)
	}
	wg.Wait()
	close(stopPolling)
	pollers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "all sessions reaped", func() bool {
		return srv.SessionCount() == 0
	})
}
