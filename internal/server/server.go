package server

import (
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"pdps/internal/engine"
	"pdps/internal/lang"
	"pdps/internal/obs"
	"pdps/internal/sched"
	"pdps/internal/storage"
	"pdps/internal/wm"
)

// Config tunes a Server. The zero value is usable: default queue
// depth, shed-on-full backpressure, default session and frame limits,
// no durable storage, a fresh metrics registry and the wall clock.
type Config struct {
	// QueueDepth bounds each session's dispatch queue; values below 1
	// mean 64. When a tenant's queue is full, new work is shed with a
	// typed overloaded error (or blocks, per BlockOnFull) and
	// server_ingest_backpressure_total increments.
	QueueDepth int
	// BlockOnFull switches backpressure from shedding to blocking: a
	// full dispatch queue stalls the submitting connection's reader —
	// TCP backpressure — instead of returning overloaded.
	BlockOnFull bool
	// MaxSessions is the admission-control bound on concurrently live
	// sessions; values below 1 mean 1024. Creates beyond it are
	// rejected with overloaded.
	MaxSessions int
	// MaxFrame bounds frame payloads; values below 1 mean
	// DefaultMaxFrame.
	MaxFrame int
	// StorageRoot, when non-empty, enables durable sessions: a create
	// request's StorageDir is resolved under this root and opened as a
	// file storage backend. Empty disables durable sessions.
	StorageRoot string
	// Metrics is the server-level registry (the server_* series). Nil
	// means a fresh registry.
	Metrics *obs.Registry
	// Clock is handed to every session engine (Options.Clock); nil
	// means the wall clock. Tests inject sched.Immediate to collapse
	// engine timing.
	Clock sched.Clock
}

func (c Config) withDefaults() Config {
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.MaxSessions < 1 {
		c.MaxSessions = 1024
	}
	if c.MaxFrame < 1 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Clock == nil {
		c.Clock = sched.Real{}
	}
	return c
}

// serverMetrics are the server_* series of the obs registry.
type serverMetrics struct {
	sessionsActive  *obs.Gauge
	sessionsTotal   *obs.Counter
	sessionsReject  *obs.Counter
	connsActive     *obs.Gauge
	backpressure    *obs.Counter
	bytesIn         *obs.Counter
	bytesOut        *obs.Counter
	framesIn        *obs.Counter
	framesOut       *obs.Counter
	errors          func(code string) *obs.Counter
	requests        func(typ string) *obs.Counter
	ingestWMEs      *obs.Counter
	commitsStreamed *obs.Counter
}

func newServerMetrics(r *obs.Registry) serverMetrics {
	return serverMetrics{
		sessionsActive:  r.Gauge("server_sessions_active"),
		sessionsTotal:   r.Counter("server_sessions_total"),
		sessionsReject:  r.Counter("server_sessions_rejected_total"),
		connsActive:     r.Gauge("server_conns_active"),
		backpressure:    r.Counter("server_ingest_backpressure_total"),
		bytesIn:         r.Counter("server_bytes_in_total"),
		bytesOut:        r.Counter("server_bytes_out_total"),
		framesIn:        r.Counter("server_frames_in_total"),
		framesOut:       r.Counter("server_frames_out_total"),
		errors:          func(code string) *obs.Counter { return r.Counter("server_errors_total", obs.L("code", code)) },
		requests:        func(typ string) *obs.Counter { return r.Counter("server_requests_total", obs.L("type", typ)) },
		ingestWMEs:      r.Counter("server_ingest_wmes_total"),
		commitsStreamed: r.Counter("server_trace_events_streamed_total"),
	}
}

// Server hosts many concurrent engine sessions behind the wire
// protocol: one tenant per session, a bounded dispatch queue and a
// dedicated actor goroutine per session, and per-connection reader
// goroutines multiplexing any number of tenants. Close is graceful:
// it reaps every session (closing storage backends) and waits for all
// goroutines, so tests can assert zero leakage.
type Server struct {
	cfg Config
	met serverMetrics

	ln net.Listener
	wg sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	conns    map[*conn]struct{}
	sessions map[string]*session
	dirs     map[string]string // resolved storage dir -> session id
	nextSess atomic.Uint64
}

// New builds a server; call Listen (or Serve) to start it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		met:      newServerMetrics(cfg.Metrics),
		conns:    make(map[*conn]struct{}),
		sessions: make(map[string]*session),
		dirs:     make(map[string]string),
	}
}

// Metrics returns the server-level registry (the server_* series).
func (s *Server) Metrics() *obs.Registry { return s.cfg.Metrics }

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in the
// background. It returns once the listener is bound.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.Serve(ln)
	return nil
}

// Serve adopts a bound listener and starts the accept loop in the
// background. The server takes ownership of the listener.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
}

// Addr returns the bound listen address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := &conn{srv: s, c: nc, owned: make(map[string]*session)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.met.connsActive.Add(1)
		s.wg.Add(1)
		go c.readLoop()
	}
}

// Close stops accepting, severs every connection, tears down every
// session (closing storage backends) and waits for all server
// goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.c.Close()
	}
	for _, sess := range sessions {
		sess.teardown()
	}
	s.wg.Wait()
	return nil
}

// lookup finds a live session.
func (s *Server) lookup(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// unregister removes the session from the registry and releases its
// storage-dir reservation name (the open backend itself is closed by
// the actor; reserveDir stays held until releaseDir).
func (s *Server) unregister(sess *session) {
	s.mu.Lock()
	if _, ok := s.sessions[sess.id]; ok {
		delete(s.sessions, sess.id)
		s.met.sessionsActive.Add(-1)
	}
	s.mu.Unlock()
}

// releaseDir frees a storage directory for reuse once its backend is
// closed — called by the session actor at the end of teardown, so a
// re-create on the same directory never races the old backend.
func (s *Server) releaseDir(dir string, id string) {
	if dir == "" {
		return
	}
	s.mu.Lock()
	if s.dirs[dir] == id {
		delete(s.dirs, dir)
	}
	s.mu.Unlock()
}

// resolveStorageDir validates and reserves a per-tenant storage
// directory under the configured root.
func (s *Server) resolveStorageDir(req string, id string) (string, error) {
	if s.cfg.StorageRoot == "" {
		return "", &ProtocolError{Code: CodeBadRequest, Msg: "durable sessions disabled: no storage root"}
	}
	clean := filepath.Clean(req)
	if clean == "." || filepath.IsAbs(clean) || strings.HasPrefix(clean, "..") {
		return "", badReq("bad storage dir %q", req)
	}
	dir := filepath.Join(s.cfg.StorageRoot, clean)
	s.mu.Lock()
	defer s.mu.Unlock()
	if owner, busy := s.dirs[dir]; busy {
		return "", &ProtocolError{Code: CodeOverloaded, Msg: fmt.Sprintf("storage dir %q busy (session %s closing or live)", req, owner)}
	}
	s.dirs[dir] = id
	return dir, nil
}

// createSession builds, registers and starts a session from a create
// request. It runs on the connection reader goroutine.
func (s *Server) createSession(q *Request, c *conn) *Response {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errResp(q.ID, CodeClosed, "server closing")
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.met.sessionsReject.Inc()
		return errResp(q.ID, CodeOverloaded, fmt.Sprintf("session table full (%d)", s.cfg.MaxSessions))
	}
	s.mu.Unlock()

	prog, err := lang.Parse(q.Program)
	if err != nil {
		return errResp(q.ID, CodeBadRequest, fmt.Sprintf("program: %v", err))
	}
	strategy := q.Options.Strategy
	if strategy == "" {
		strategy = "lex"
	}
	st, err := newStrategy(strategy)
	if err != nil {
		return errResp(q.ID, CodeBadRequest, err.Error())
	}
	opts := engine.Options{
		Matcher:    q.Options.Matcher,
		Strategy:   st,
		MaxFirings: q.Options.MaxFirings,
		Clock:      s.cfg.Clock,
	}

	id := fmt.Sprintf("s%06d", s.nextSess.Add(1))
	sess := &session{
		id:    id,
		srv:   s,
		queue: make(chan task, s.cfg.QueueDepth),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}

	var recovered int
	var lsn storage.LSN
	if q.Options.StorageDir != "" {
		dir, err := s.resolveStorageDir(q.Options.StorageDir, id)
		if err != nil {
			return errFromProto(q.ID, err)
		}
		backend, rec, n, l, err := openDurable(dir, &prog)
		if err != nil {
			s.releaseDir(dir, id)
			return errResp(q.ID, CodeInternal, fmt.Sprintf("storage: %v", err))
		}
		sess.backend, sess.dir = backend, dir
		opts.Storage = backend
		opts.Restore = rec
		recovered, lsn = n, l
	}

	eng, err := engine.NewSession(prog, opts)
	if err != nil {
		if sess.backend != nil {
			sess.backend.Close()
			s.releaseDir(sess.dir, id)
		}
		return errResp(q.ID, CodeBadRequest, fmt.Sprintf("engine: %v", err))
	}
	sess.eng = eng

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if sess.backend != nil {
			sess.backend.Close()
			s.releaseDir(sess.dir, id)
		}
		return errResp(q.ID, CodeClosed, "server closing")
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.met.sessionsActive.Add(1)
	s.met.sessionsTotal.Inc()
	c.adopt(sess)
	s.wg.Add(1)
	go sess.loop()
	return &Response{Type: RespCreated, ID: q.ID, Session: id, Recovered: recovered, LSN: uint64(lsn)}
}

// openDurable opens a file backend for the directory and reconciles
// the program with what survived: a fresh directory is seeded with the
// program's initial working memory as a non-firing record; a non-empty
// one restores the recovered store and skips the program's declared
// WMEs (they are already durable) — exactly the psrun -data protocol.
func openDurable(dir string, prog *engine.Program) (backend storage.Backend, restore *wm.Store, recovered int, lsn storage.LSN, err error) {
	f, err := storage.OpenFile(dir, storage.FileOptions{})
	if err != nil {
		return nil, nil, 0, 0, err
	}
	rec, err := f.Recover()
	if err != nil {
		f.Close()
		return nil, nil, 0, 0, err
	}
	if rec.LSN == 0 {
		base := wm.NewStore()
		var init wm.Delta
		for _, iw := range prog.WMEs {
			init.Adds = append(init.Adds, base.Insert(iw.Class, iw.Attrs))
		}
		if len(init.Adds) > 0 {
			if _, err := f.Append(&storage.Record{Delta: &init}); err != nil {
				f.Close()
				return nil, nil, 0, 0, err
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, nil, 0, 0, err
			}
		}
		restore = base
	} else {
		restore = rec.Store
		recovered = len(rec.Records)
	}
	prog.WMEs = nil
	return f, restore, recovered, rec.LSN, nil
}

func errResp(id uint64, code, msg string) *Response {
	return &Response{Type: RespError, ID: id, Code: code, Error: msg}
}

func errFromProto(id uint64, err error) *Response {
	if pe, ok := err.(*ProtocolError); ok {
		return errResp(id, pe.Code, pe.Msg)
	}
	return errResp(id, CodeInternal, err.Error())
}
