package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pdps/internal/engine"
	"pdps/internal/lang"
	"pdps/internal/sched"
	"pdps/internal/wm"
)

// startServer boots a loopback server with an immediate clock and
// registers a cleanup close.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Clock == nil {
		cfg.Clock = sched.Immediate{}
	}
	srv := New(cfg)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// tenantProgram is the per-tenant test workload: every ingested event
// is absorbed into a done marker, which a second rule clears — two
// commits per event, one WME created and two removed, so the streamed
// trace exercises both remove and make actions.
func tenantProgram(tenant string) string {
	return fmt.Sprintf(`
(p absorb (event ^tenant %s ^seq <s>) --> (remove 1) (make done ^tenant %s ^seq <s>))
(p clear  (done  ^tenant %s ^seq <s>) --> (remove 1))`, tenant, tenant, tenant)
}

func eventTuple(tenant string, seq int) string {
	return fmt.Sprintf("(event ^tenant %s ^seq %d)", tenant, seq)
}

// checkAdmissible verifies a tenant's streamed commit trace against
// the single-thread execution semantics: the base working memory is
// everything the tenant ingested, and the commit subsequence must be
// a valid single-thread execution from it (Definition 3.2).
func checkAdmissible(program string, ingested []string, events []TraceEvent) error {
	prog, err := lang.Parse(program)
	if err != nil {
		return err
	}
	base := wm.NewStore()
	for _, iw := range prog.WMEs {
		base.Insert(iw.Class, iw.Attrs)
	}
	for _, src := range ingested {
		iw, err := lang.ParseWME(src)
		if err != nil {
			return err
		}
		base.Insert(iw.Class, iw.Attrs)
	}
	return engine.CheckTraceFrom(base, prog.Rules, Commits(events))
}

// runTenant drives one tenant end to end: create, three
// ingest-then-run batches, a trace drain, a working-memory dump, and
// close. It returns the streamed events and what was ingested.
func runTenant(addr string, tenant string, batches, perBatch int) (events []TraceEvent, ingested []string, err error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, nil, err
	}
	defer c.Close()
	program := tenantProgram(tenant)
	id, _, _, err := c.Create(program, SessionOptions{})
	if err != nil {
		return nil, nil, fmt.Errorf("create: %w", err)
	}
	seq := 0
	for b := 0; b < batches; b++ {
		tuples := make([]string, 0, perBatch)
		for k := 0; k < perBatch; k++ {
			tuples = append(tuples, eventTuple(tenant, seq))
			seq++
		}
		if _, err := c.Assert(id, tuples...); err != nil {
			return nil, nil, fmt.Errorf("assert: %w", err)
		}
		ingested = append(ingested, tuples...)
		res, err := c.Run(id, 0)
		if err != nil {
			return nil, nil, fmt.Errorf("run: %w", err)
		}
		if !res.Quiescent {
			return nil, nil, fmt.Errorf("tenant %s batch %d: not quiescent after %d firings", tenant, b, res.Fired)
		}
		if want := 2 * perBatch; res.Fired != want {
			return nil, nil, fmt.Errorf("tenant %s batch %d: fired %d, want %d", tenant, b, res.Fired, want)
		}
		events = append(events, res.Events...)
	}
	tail, err := c.Trace(id)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: %w", err)
	}
	events = append(events, tail...)
	wmes, err := c.WMEs(id)
	if err != nil {
		return nil, nil, fmt.Errorf("wmes: %w", err)
	}
	if len(wmes) != 0 {
		return nil, nil, fmt.Errorf("tenant %s: %d WMEs left after quiescence: %v", tenant, len(wmes), wmes)
	}
	if err := c.CloseSession(id); err != nil {
		return nil, nil, fmt.Errorf("close: %w", err)
	}
	return events, ingested, nil
}

// TestLoopbackManyTenants is the acceptance suite: 64 concurrent
// tenant sessions over loopback, each create→ingest→run→trace→close,
// every streamed commit trace admissible under the single-thread
// semantics, and no tenant ever observing another tenant's WMEs.
func TestLoopbackManyTenants(t *testing.T) {
	const tenants = 64
	srv := startServer(t, Config{MaxSessions: tenants + 8})
	addr := srv.Addr().String()

	type outcome struct {
		tenant   string
		events   []TraceEvent
		ingested []string
		err      error
	}
	results := make(chan outcome, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%03d", i)
			ev, in, err := runTenant(addr, tenant, 3, 8)
			results <- outcome{tenant: tenant, events: ev, ingested: in, err: err}
		}(i)
	}
	wg.Wait()
	close(results)

	for out := range results {
		if out.err != nil {
			t.Fatal(out.err)
		}
		if got := len(Commits(out.events)); got != 48 {
			t.Fatalf("tenant %s: %d commits streamed, want 48", out.tenant, got)
		}
		// Isolation: every matched WME in the streamed trace carries
		// this tenant's marker and no other tenant's.
		marker := "^tenant " + out.tenant
		for _, e := range out.events {
			for _, fp := range e.WMEs {
				if !strings.Contains(fp, marker) {
					t.Fatalf("tenant %s: foreign WME in trace: %s", out.tenant, fp)
				}
			}
		}
		if err := checkAdmissible(tenantProgram(out.tenant), out.ingested, out.events); err != nil {
			t.Fatalf("tenant %s: streamed commit trace not admissible: %v", out.tenant, err)
		}
	}

	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("%d sessions still live after all tenants closed", n)
	}
	snap := srv.Metrics().Snapshot()
	if got := snap.Counter("server_sessions_total"); got != tenants {
		t.Fatalf("server_sessions_total = %d, want %d", got, tenants)
	}
	if v, peak := snap.Gauge("server_sessions_active"); v != 0 || peak < 1 {
		t.Fatalf("server_sessions_active = %d (peak %d), want 0 with positive peak", v, peak)
	}
	if snap.Counter("server_bytes_in_total") == 0 || snap.Counter("server_bytes_out_total") == 0 {
		t.Fatal("byte counters did not move")
	}
}

// TestSessionLifecycleBasics covers the small-surface commands:
// attach, ping, retract, per-session metrics, typed not-found errors.
func TestSessionLifecycleBasics(t *testing.T) {
	srv := startServer(t, Config{})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	id, recovered, lsn, err := c.Create(tenantProgram("a"), SessionOptions{Matcher: "treat", Strategy: "fifo"})
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 0 || lsn != 0 {
		t.Fatalf("fresh ephemeral session reports recovery %d/%d", recovered, lsn)
	}
	if err := c.Attach(id); err != nil {
		t.Fatal(err)
	}
	ids, err := c.Assert(id, eventTuple("a", 1), eventTuple("a", 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("asserted %d ids, want 2", len(ids))
	}
	if err := c.Retract(id, ids[0]); err != nil {
		t.Fatal(err)
	}
	wmes, err := c.WMEs(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(wmes) != 1 {
		t.Fatalf("store has %d WMEs after retract, want 1", len(wmes))
	}
	if err := c.Retract(id, 9999); err == nil {
		t.Fatal("retract of unknown WME succeeded")
	} else if se, ok := err.(*ServerError); !ok || se.Code != CodeNotFound {
		t.Fatalf("retract error = %v, want typed %s", err, CodeNotFound)
	}
	raw, err := c.Metrics(id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "wm_writes_total") && !strings.Contains(string(raw), "match_") {
		t.Fatalf("session metrics snapshot looks empty: %.120s", raw)
	}
	if err := c.CloseSession(id); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(id); err == nil {
		t.Fatal("attach to closed session succeeded")
	} else if se, ok := err.(*ServerError); !ok || se.Code != CodeNotFound {
		t.Fatalf("attach error = %v, want typed %s", err, CodeNotFound)
	}
}

// TestAdmissionControl pins the session-table bound: creates beyond
// MaxSessions are rejected with a typed overloaded error and counted.
func TestAdmissionControl(t *testing.T) {
	srv := startServer(t, Config{MaxSessions: 2})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 2; i++ {
		if _, _, _, err := c.Create(tenantProgram("a"), SessionOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	_, _, _, err = c.Create(tenantProgram("a"), SessionOptions{})
	if !IsOverloaded(err) {
		t.Fatalf("third create error = %v, want overloaded", err)
	}
	if got := srv.Metrics().Snapshot().Counter("server_sessions_rejected_total"); got != 1 {
		t.Fatalf("server_sessions_rejected_total = %d, want 1", got)
	}
}

// TestHaltStreams verifies a halt action terminates a run and is
// visible in the streamed trace.
func TestHaltStreams(t *testing.T) {
	srv := startServer(t, Config{})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, _, _, err := c.Create(`(p stop (event ^tenant h ^seq <s>) --> (remove 1) (halt))`, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Assert(id, eventTuple("h", 1), eventTuple("h", 2)); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.Fired != 1 {
		t.Fatalf("run = %+v, want halted after 1 firing", res)
	}
	sawHalt := false
	for _, e := range res.Events {
		if e.Kind == "halt" {
			sawHalt = true
		}
	}
	if !sawHalt {
		t.Fatal("halt event not streamed")
	}
}

// waitFor polls until cond holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
