package server

import (
	"fmt"
	"sync"

	"pdps/internal/engine"
	"pdps/internal/lang"
	"pdps/internal/storage"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// runFlushEvery is how many firings a run command batches before
// streaming a trace push frame to the client.
const runFlushEvery = 32

// task is one queued command plus the connection its replies go to.
// fn, when non-nil, is a direct actor callback — the seam the
// backpressure tests use to occupy the actor deterministically.
type task struct {
	req *Request
	c   *conn
	fn  func()
}

type submitResult uint8

const (
	submitOK submitResult = iota
	submitFull
	submitClosed
)

// session is one tenant: a single-thread interactive engine driven by
// a dedicated actor goroutine over a bounded dispatch queue. The
// submit protocol guarantees every successfully enqueued task gets a
// reply: submitters register in subWG under subMu before touching the
// queue, teardown flips closed under the same lock, wakes any blocked
// submitter via stop, waits for in-flight submits and only then closes
// the queue — so the actor's range loop observes every task.
type session struct {
	id  string
	srv *Server
	eng *engine.Session

	backend storage.Backend // nil for ephemeral sessions
	dir     string          // reserved storage dir, "" if none

	queue chan task
	stop  chan struct{} // closed by teardown: abort runs, wake submitters
	done  chan struct{} // closed by the actor after full cleanup

	subMu  sync.Mutex
	subWG  sync.WaitGroup
	closed bool

	once sync.Once

	traceSeq int // log events already streamed (actor-only)
}

// begin registers an in-flight submit attempt; it fails once teardown
// has flipped closed, so no submit can start after the queue closes.
func (s *session) begin() bool {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.closed {
		return false
	}
	s.subWG.Add(1)
	return true
}

// trySubmit enqueues without blocking.
func (s *session) trySubmit(t task) submitResult {
	if !s.begin() {
		return submitClosed
	}
	defer s.subWG.Done()
	select {
	case s.queue <- t:
		return submitOK
	default:
		return submitFull
	}
}

// blockSubmit enqueues, blocking the caller until the actor drains a
// slot or the session stops.
func (s *session) blockSubmit(t task) submitResult {
	if !s.begin() {
		return submitClosed
	}
	defer s.subWG.Done()
	select {
	case s.queue <- t:
		return submitOK
	case <-s.stop:
		return submitClosed
	}
}

// teardown initiates (and, across callers, deduplicates) session
// shutdown. It unregisters the session, stops new submits, wakes
// blocked ones and closes the queue; the actor finishes the drain and
// the resource cleanup, then closes done.
func (s *session) teardown() {
	s.once.Do(func() {
		s.srv.unregister(s)
		s.subMu.Lock()
		s.closed = true
		s.subMu.Unlock()
		close(s.stop)
		s.subWG.Wait()
		close(s.queue)
	})
}

// stopped reports whether teardown has begun.
func (s *session) stopped() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// loop is the session actor: it owns the engine and the storage
// backend exclusively, so every mutation of tenant state is
// single-threaded — the multi-tenant parallelism of the server is
// across sessions, never within one.
func (s *session) loop() {
	defer s.srv.wg.Done()
	for t := range s.queue {
		if s.stopped() {
			if t.c != nil {
				t.c.sendErr(t.req, CodeClosed, "session "+s.id+" closed")
			}
			continue
		}
		s.handle(t)
	}
	if s.backend != nil {
		s.backend.Close()
	}
	s.srv.releaseDir(s.dir, s.id)
	close(s.done)
}

func (s *session) handle(t task) {
	if t.fn != nil {
		t.fn()
		return
	}
	switch t.req.Type {
	case ReqAssert:
		s.handleAssert(t)
	case ReqRetract:
		s.handleRetract(t)
	case ReqRun:
		s.handleRun(t)
	case ReqTrace:
		s.flushTrace(t, false, true)
	case ReqWMEs:
		s.handleWMEs(t)
	default:
		t.c.sendErr(t.req, CodeBadRequest, "unroutable request "+t.req.Type)
	}
}

// handleAssert parses and inserts the batch of tuple literals. On a
// durable session the batch is logged as one non-firing record and
// fsynced before the acknowledgment, so acked ingest survives a crash
// exactly like acked commits do (PR 6 semantics).
func (s *session) handleAssert(t task) {
	parsed := make([]engine.InitialWME, 0, len(t.req.WMEs))
	for _, src := range t.req.WMEs {
		iw, err := lang.ParseWME(src)
		if err != nil {
			t.c.sendErr(t.req, CodeBadRequest, fmt.Sprintf("tuple %q: %v", src, err))
			return
		}
		parsed = append(parsed, iw)
	}
	ids := make([]int64, 0, len(parsed))
	var delta wm.Delta
	for _, iw := range parsed {
		w := s.eng.AssertWME(iw.Class, iw.Attrs)
		ids = append(ids, w.ID)
		delta.Adds = append(delta.Adds, w)
	}
	s.srv.met.ingestWMEs.Add(int64(len(ids)))
	if err := s.logDurable(&delta); err != nil {
		t.c.sendErr(t.req, CodeInternal, fmt.Sprintf("storage: %v", err))
		return
	}
	t.c.send(&Response{Type: RespOK, ID: t.req.ID, Session: s.id, IDs: ids})
}

func (s *session) handleRetract(t task) {
	w, ok := s.eng.Store().Get(t.req.WMEID)
	if !ok {
		t.c.sendErr(t.req, CodeNotFound, fmt.Sprintf("no WME %d", t.req.WMEID))
		return
	}
	if err := s.eng.Retract(t.req.WMEID); err != nil {
		t.c.sendErr(t.req, CodeNotFound, err.Error())
		return
	}
	if err := s.logDurable(&wm.Delta{Removes: []*wm.WME{w}}); err != nil {
		t.c.sendErr(t.req, CodeInternal, fmt.Sprintf("storage: %v", err))
		return
	}
	t.c.send(&Response{Type: RespOK, ID: t.req.ID, Session: s.id, IDs: []int64{t.req.WMEID}})
}

// logDurable appends one non-firing working-memory record and makes
// it durable. No-op on ephemeral sessions or empty deltas.
func (s *session) logDurable(d *wm.Delta) error {
	if s.backend == nil || (len(d.Adds) == 0 && len(d.Removes) == 0) {
		return nil
	}
	if _, err := s.backend.Append(&storage.Record{Delta: d}); err != nil {
		return err
	}
	return s.backend.Sync()
}

// handleRun steps the recognize-act cycle up to Max firings (0 means
// the session's MaxFirings bound), streaming trace batches to the
// requesting connection every runFlushEvery commits and finishing with
// the run summary. A teardown mid-run aborts between steps; the
// firings already committed stay committed (and, durably, synced).
func (s *session) handleRun(t task) {
	max := t.req.Max
	if max <= 0 {
		max = 10000
	}
	fired := 0
	quiescent, halted := false, false
	for fired < max {
		if s.stopped() {
			s.flushTrace(t, true, false)
			t.c.sendErr(t.req, CodeClosed, "session "+s.id+" closed mid-run")
			return
		}
		name, err := s.eng.Step()
		if err != nil {
			s.flushTrace(t, true, false)
			t.c.sendErr(t.req, CodeInternal, fmt.Sprintf("step: %v", err))
			return
		}
		if name == "" {
			quiescent = true
			break
		}
		fired++
		if s.sawHalt() {
			halted = true
			break
		}
		if fired%runFlushEvery == 0 {
			s.flushTrace(t, true, false)
		}
	}
	s.flushTrace(t, true, false)
	t.c.send(&Response{Type: RespRun, ID: t.req.ID, Session: s.id,
		Fired: fired, Halted: halted, Quiescent: quiescent})
}

// sawHalt reports whether an un-streamed halt event is in the log.
func (s *session) sawHalt() bool {
	for _, e := range s.eng.Log().Events()[s.traceSeq:] {
		if e.Kind == trace.KindHalt {
			return true
		}
	}
	return false
}

// flushTrace streams the log events appended since the last flush.
// Mid-run pushes set More and skip empty batches; a terminal flush
// (explicit trace request) always answers, even with zero events.
func (s *session) flushTrace(t task, more, always bool) {
	events := s.eng.Log().Events()
	fresh := events[s.traceSeq:]
	s.traceSeq = len(events)
	if len(fresh) == 0 && !always {
		return
	}
	out := make([]TraceEvent, len(fresh))
	for i, e := range fresh {
		out[i] = TraceEvent{Seq: e.Seq, Kind: e.Kind.String(), Rule: e.Rule,
			Inst: e.Inst, Detail: e.Detail, WMEs: e.WMEs}
	}
	s.srv.met.commitsStreamed.Add(int64(len(out)))
	t.c.send(&Response{Type: RespTrace, ID: t.req.ID, Session: s.id, More: more, Events: out})
}

func (s *session) handleWMEs(t task) {
	all := s.eng.Store().All()
	out := make([]string, len(all))
	for i, w := range all {
		out[i] = w.String()
	}
	t.c.send(&Response{Type: RespWMEs, ID: t.req.ID, Session: s.id, WMEs: out})
}
