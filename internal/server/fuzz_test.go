package server

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at both frame decoders (the
// slice form and the stream form): they must agree, never panic, and
// fail only with the typed frame errors.
func FuzzDecodeFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, []byte(`{"type":"ping","id":1}`))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 5, 'a', 'b'})
	f.Fuzz(func(t *testing.T, b []byte) {
		const max = 1 << 16
		payload, rest, err := DecodeFrame(b, max)
		if err != nil {
			if !errors.Is(err, ErrShortFrame) && !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("DecodeFrame: untyped error %v", err)
			}
		} else if len(payload)+len(rest)+frameHeaderLen != len(b) {
			t.Fatalf("DecodeFrame: lost bytes: %d + %d + %d != %d",
				len(payload), len(rest), frameHeaderLen, len(b))
		}
		sp, serr := ReadFrame(bytes.NewReader(b), max)
		if serr != nil {
			if serr != io.EOF && !errors.Is(serr, ErrShortFrame) && !errors.Is(serr, ErrFrameTooLarge) {
				t.Fatalf("ReadFrame: untyped error %v", serr)
			}
		}
		if (err == nil) != (serr == nil) {
			t.Fatalf("decoders disagree: slice err %v, stream err %v", err, serr)
		}
		if err == nil && !bytes.Equal(payload, sp) {
			t.Fatalf("decoders disagree on payload: %q vs %q", payload, sp)
		}
	})
}

// FuzzDecodeRequest throws arbitrary payloads at the request decoder:
// malformed input must produce a typed *ProtocolError, never a panic,
// and accepted requests must re-encode and re-decode cleanly.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []*Request{
		{Type: ReqPing, ID: 1},
		{Type: ReqCreate, ID: 2, Program: "(p a (b ^c <d>) --> (remove 1))",
			Options: SessionOptions{Matcher: "treat", Strategy: "fifo", MaxFirings: 5, StorageDir: "x"}},
		{Type: ReqAssert, ID: 3, Session: "s1", WMEs: []string{"(a ^b 1)", "(a ^b 2)"}},
		{Type: ReqRetract, ID: 4, Session: "s1", WMEID: 7},
		{Type: ReqRun, ID: 5, Session: "s1", Max: 100},
		{Type: ReqMetrics, ID: 6},
	}
	for _, q := range seeds {
		b, err := EncodeRequest(q)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{not json`))
	f.Add([]byte(`{"type":"explode","id":9}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, b []byte) {
		q, err := DecodeRequest(b)
		if err != nil {
			pe := &ProtocolError{}
			if !errors.As(err, &pe) {
				t.Fatalf("untyped decode error %v", err)
			}
			return
		}
		if q == nil {
			t.Fatal("nil request with nil error")
		}
		out, err := EncodeRequest(q)
		if err != nil {
			t.Fatalf("re-encode of accepted request: %v", err)
		}
		if _, err := DecodeRequest(out); err != nil {
			t.Fatalf("re-decode of accepted request: %v", err)
		}
	})
}
