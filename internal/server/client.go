package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"pdps/internal/trace"
)

// ServerError is a typed error response from the server; Code is one
// of the wire error codes.
type ServerError struct {
	Code string
	Msg  string
}

// Error renders the code and message.
func (e *ServerError) Error() string { return fmt.Sprintf("server: %s: %s", e.Code, e.Msg) }

// IsOverloaded reports whether the error is a backpressure or
// admission-control rejection (retryable).
func IsOverloaded(err error) bool {
	se, ok := err.(*ServerError)
	return ok && se.Code == CodeOverloaded
}

// RunResult is the outcome of a run command: the summary plus every
// trace event streamed for it.
type RunResult struct {
	// Fired is the number of productions committed by this run.
	Fired int
	// Halted reports a halt action stopped the run.
	Halted bool
	// Quiescent reports the conflict set drained.
	Quiescent bool
	// Events are the trace events streamed during the run, in order.
	Events []TraceEvent
}

// ToTraceEvent converts a wire event back into a trace.Event — the
// form CheckTrace consumes. Commit events round-trip losslessly (rule,
// instantiation key, WME fingerprints).
func (e TraceEvent) ToTraceEvent() trace.Event {
	var k trace.Kind
	switch e.Kind {
	case "fire":
		k = trace.KindFire
	case "commit":
		k = trace.KindCommit
	case "abort":
		k = trace.KindAbort
	case "skip":
		k = trace.KindSkip
	case "halt":
		k = trace.KindHalt
	}
	return trace.Event{Seq: e.Seq, Kind: k, Rule: e.Rule, Inst: e.Inst,
		Detail: e.Detail, WMEs: e.WMEs}
}

// Commits filters a streamed event batch down to the commit
// subsequence as trace events — the execution string for CheckTrace.
func Commits(events []TraceEvent) []trace.Event {
	var out []trace.Event
	for _, e := range events {
		if e.Kind == "commit" {
			out = append(out, e.ToTraceEvent())
		}
	}
	return out
}

// Client is a wire-protocol client multiplexing any number of
// sessions over one connection. All methods are safe for concurrent
// use; responses (including mid-run trace pushes) are demultiplexed
// by request ID on a background reader goroutine.
type Client struct {
	c      net.Conn
	wmu    sync.Mutex
	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan *Response
	readErr error
	closed  chan struct{}
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient adopts a connection and starts the response reader.
func NewClient(nc net.Conn) *Client {
	c := &Client{c: nc, pending: make(map[uint64]chan *Response), closed: make(chan struct{})}
	go c.readLoop()
	return c
}

// Close severs the connection; in-flight calls fail. Sessions created
// by this client are reaped by the server.
func (c *Client) Close() error { return c.c.Close() }

func (c *Client) readLoop() {
	br := bufio.NewReader(c.c)
	for {
		payload, err := ReadFrame(br, DefaultMaxFrame)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			close(c.closed)
			c.c.Close()
			return
		}
		resp, err := DecodeResponse(payload)
		if err != nil {
			continue
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		c.mu.Unlock()
		if ch != nil {
			// The channel is sized for a full run's push frames; a
			// blocked send here is TCP backpressure onto the server.
			ch <- resp
		}
	}
}

// call registers a pending channel, sends the request, and returns
// the channel plus a deregistration func.
func (c *Client) call(q *Request) (chan *Response, func(), error) {
	q.ID = c.nextID.Add(1)
	ch := make(chan *Response, 1024)
	c.mu.Lock()
	c.pending[q.ID] = ch
	c.mu.Unlock()
	cancel := func() {
		c.mu.Lock()
		delete(c.pending, q.ID)
		c.mu.Unlock()
	}
	payload, err := EncodeRequest(q)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	c.wmu.Lock()
	err = WriteFrame(c.c, payload)
	c.wmu.Unlock()
	if err != nil {
		cancel()
		return nil, nil, err
	}
	return ch, cancel, nil
}

// await reads one frame for the call, surfacing connection death.
func (c *Client) await(ch chan *Response) (*Response, error) {
	select {
	case resp := <-ch:
		if resp.Type == RespError {
			return nil, &ServerError{Code: resp.Code, Msg: resp.Error}
		}
		return resp, nil
	case <-c.closed:
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("server: connection lost: %w", err)
	}
}

// do sends a request and returns its single response.
func (c *Client) do(q *Request) (*Response, error) {
	ch, cancel, err := c.call(q)
	if err != nil {
		return nil, err
	}
	defer cancel()
	return c.await(ch)
}

// Create builds a session from a program source and options and
// returns its ID plus the recovery summary (records recovered and
// durable LSN; zero for fresh or ephemeral sessions).
func (c *Client) Create(program string, opts SessionOptions) (id string, recovered int, lsn uint64, err error) {
	resp, err := c.do(&Request{Type: ReqCreate, Program: program, Options: opts})
	if err != nil {
		return "", 0, 0, err
	}
	return resp.Session, resp.Recovered, resp.LSN, nil
}

// Attach validates that the session exists.
func (c *Client) Attach(session string) error {
	_, err := c.do(&Request{Type: ReqAttach, Session: session})
	return err
}

// Assert ingests tuple literals and returns the new WME IDs.
func (c *Client) Assert(session string, tuples ...string) ([]int64, error) {
	resp, err := c.do(&Request{Type: ReqAssert, Session: session, WMEs: tuples})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Retract removes a WME by ID.
func (c *Client) Retract(session string, id int64) error {
	_, err := c.do(&Request{Type: ReqRetract, Session: session, WMEID: id})
	return err
}

// Run fires up to max productions (0 means the session bound),
// collecting the streamed trace batches until the run summary.
func (c *Client) Run(session string, max int) (RunResult, error) {
	ch, cancel, err := c.call(&Request{Type: ReqRun, Session: session, Max: max})
	if err != nil {
		return RunResult{}, err
	}
	defer cancel()
	var out RunResult
	for {
		resp, err := c.await(ch)
		if err != nil {
			return out, err
		}
		switch resp.Type {
		case RespTrace:
			out.Events = append(out.Events, resp.Events...)
		case RespRun:
			out.Fired, out.Halted, out.Quiescent = resp.Fired, resp.Halted, resp.Quiescent
			return out, nil
		default:
			return out, fmt.Errorf("server: unexpected %s frame during run", resp.Type)
		}
	}
}

// Trace drains the session's trace events not yet streamed to any
// request (run pushes advance the same cursor).
func (c *Client) Trace(session string) ([]TraceEvent, error) {
	resp, err := c.do(&Request{Type: ReqTrace, Session: session})
	if err != nil {
		return nil, err
	}
	return resp.Events, nil
}

// WMEs dumps the session's working memory as content fingerprints,
// ordered by WME ID.
func (c *Client) WMEs(session string) ([]string, error) {
	resp, err := c.do(&Request{Type: ReqWMEs, Session: session})
	if err != nil {
		return nil, err
	}
	return resp.WMEs, nil
}

// Metrics snapshots the session's engine registry, or the server's
// own registry when session is empty, as obs.Snapshot JSON.
func (c *Client) Metrics(session string) (json.RawMessage, error) {
	resp, err := c.do(&Request{Type: ReqMetrics, Session: session})
	if err != nil {
		return nil, err
	}
	return resp.Metrics, nil
}

// CloseSession tears the session down; it returns once the server has
// fully reaped it (engine stopped, storage backend closed).
func (c *Client) CloseSession(session string) error {
	_, err := c.do(&Request{Type: ReqClose, Session: session})
	return err
}

// Ping round-trips a liveness frame.
func (c *Client) Ping() error {
	_, err := c.do(&Request{Type: ReqPing})
	return err
}
