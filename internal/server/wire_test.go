package server

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte(""), []byte("x"), bytes.Repeat([]byte("abc"), 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame round-trip: got %q, want %q", got, want)
		}
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("read past end: %v, want io.EOF", err)
	}
}

func TestFrameErrors(t *testing.T) {
	// Oversized length prefix.
	var buf bytes.Buffer
	WriteFrame(&buf, bytes.Repeat([]byte("y"), 100))
	if _, err := ReadFrame(&buf, 10); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize: %v, want ErrFrameTooLarge", err)
	}
	// Truncated payload.
	if _, err := ReadFrame(strings.NewReader("\x00\x00\x00\x10abc"), 0); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("torn payload: %v, want ErrShortFrame", err)
	}
	// Truncated header.
	if _, err := ReadFrame(strings.NewReader("\x00\x00"), 0); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("torn header: %v, want ErrShortFrame", err)
	}
}

func TestDecodeFrameRest(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, []byte("first"))
	WriteFrame(&buf, []byte("second"))
	p1, rest, err := DecodeFrame(buf.Bytes(), 0)
	if err != nil || string(p1) != "first" {
		t.Fatalf("frame 1: %q, %v", p1, err)
	}
	p2, rest, err := DecodeFrame(rest, 0)
	if err != nil || string(p2) != "second" || len(rest) != 0 {
		t.Fatalf("frame 2: %q, rest %d, %v", p2, len(rest), err)
	}
	if _, _, err := DecodeFrame(rest, 0); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("empty buffer: %v, want ErrShortFrame", err)
	}
}

func TestRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		ok   bool
	}{
		{"create ok", Request{Type: ReqCreate, Program: "(p a (b ^c <d>) --> (remove 1))"}, true},
		{"create empty program", Request{Type: ReqCreate}, false},
		{"assert ok", Request{Type: ReqAssert, Session: "s1", WMEs: []string{"(a ^b 1)"}}, true},
		{"assert no session", Request{Type: ReqAssert, WMEs: []string{"(a ^b 1)"}}, false},
		{"assert no tuples", Request{Type: ReqAssert, Session: "s1"}, false},
		{"retract bad id", Request{Type: ReqRetract, Session: "s1", WMEID: -1}, false},
		{"run negative", Request{Type: ReqRun, Session: "s1", Max: -5}, false},
		{"run ok", Request{Type: ReqRun, Session: "s1", Max: 10}, true},
		{"unknown type", Request{Type: "explode"}, false},
		{"metrics sessionless", Request{Type: ReqMetrics}, true},
		{"repl hello default mode", Request{Type: ReqReplHello}, true},
		{"repl hello resume", Request{Type: ReqReplHello, ReplMode: ReplModeReplay, FromChoice: 12, FromLSN: 34}, true},
		{"repl hello apply", Request{Type: ReqReplHello, ReplMode: ReplModeApply}, true},
		{"repl hello bad mode", Request{Type: ReqReplHello, ReplMode: "psychic"}, false},
		{"repl hello negative choice", Request{Type: ReqReplHello, FromChoice: -1}, false},
		{"repl ack", Request{Type: ReqReplAck, AckLSN: 99}, true},
		{"repl ack zero", Request{Type: ReqReplAck}, true},
	}
	for _, tc := range cases {
		b, err := EncodeRequest(&tc.req)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		got, err := DecodeRequest(b)
		if tc.ok {
			if err != nil {
				t.Fatalf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("%s: validation passed, want error", tc.name)
		}
		pe := &ProtocolError{}
		if !errors.As(err, &pe) {
			t.Fatalf("%s: error %v is not a *ProtocolError", tc.name, err)
		}
		if got == nil {
			t.Fatalf("%s: no partial request for ID echo", tc.name)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	in := &Response{Type: RespTrace, ID: 42, Session: "s7", More: true,
		Events: []TraceEvent{{Seq: 3, Kind: "commit", Rule: "r", Inst: "r|1@1", WMEs: []string{"(a ^b 1)"}}}}
	b, err := EncodeResponse(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != 42 || !out.More || len(out.Events) != 1 || out.Events[0].Rule != "r" {
		t.Fatalf("response round-trip: %+v", out)
	}
	ev := out.Events[0].ToTraceEvent()
	if ev.Kind.String() != "commit" || ev.WMEs[0] != "(a ^b 1)" {
		t.Fatalf("trace event conversion: %+v", ev)
	}
}

// TestReplResponseRoundTrip exercises the replication frames: binary
// record payloads must survive the JSON transport byte-for-byte and
// raw metrics snapshots must come back exactly as shipped, because the
// follower's divergence oracle is a byte comparison.
func TestReplResponseRoundTrip(t *testing.T) {
	rec := []byte{0x00, 0x01, 0xfe, 0xff, 'p', 'd', 'p', 's'}
	metrics := []byte(`{"counters":{"engine_commits_total":7}}`)
	frames := []*Response{
		{Type: RespReplHello, ID: 1, ReplMode: ReplModeApply, Program: "(p a (b) --> (remove 1))",
			ReplConfig: []byte(`{"np":4,"seed":42}`), Snapshot: []byte{9, 8, 7}, SnapshotLSN: 16},
		{Type: RespReplChoices, ID: 1, ChoiceSeq: 5, Choices: []ReplChoice{{N: 3, P: 2}, {N: 2, P: 0}}},
		{Type: RespReplRecords, ID: 1, RecLSN: 17, Records: [][]byte{rec, {0xab}}},
		{Type: RespReplFin, ID: 1, NChoices: 40, NRecords: 19, Fired: 19, Quiescent: true,
			StoreHash: "deadbeef", Metrics: metrics},
	}
	for _, in := range frames {
		b, err := EncodeResponse(in)
		if err != nil {
			t.Fatalf("%s: encode: %v", in.Type, err)
		}
		out, err := DecodeResponse(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", in.Type, err)
		}
		switch in.Type {
		case RespReplHello:
			if out.ReplMode != ReplModeApply || out.Program != in.Program ||
				string(out.ReplConfig) != string(in.ReplConfig) ||
				!bytes.Equal(out.Snapshot, in.Snapshot) || out.SnapshotLSN != 16 {
				t.Fatalf("hello round-trip: %+v", out)
			}
		case RespReplChoices:
			if out.ChoiceSeq != 5 || len(out.Choices) != 2 || out.Choices[0] != (ReplChoice{N: 3, P: 2}) {
				t.Fatalf("choices round-trip: %+v", out)
			}
		case RespReplRecords:
			if out.RecLSN != 17 || len(out.Records) != 2 || !bytes.Equal(out.Records[0], rec) {
				t.Fatalf("records round-trip: %+v", out)
			}
		case RespReplFin:
			if out.NChoices != 40 || out.NRecords != 19 || out.StoreHash != "deadbeef" ||
				!bytes.Equal(out.Metrics, metrics) {
				t.Fatalf("fin round-trip: %+v", out)
			}
		}
	}
}
