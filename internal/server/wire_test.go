package server

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte(""), []byte("x"), bytes.Repeat([]byte("abc"), 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame round-trip: got %q, want %q", got, want)
		}
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("read past end: %v, want io.EOF", err)
	}
}

func TestFrameErrors(t *testing.T) {
	// Oversized length prefix.
	var buf bytes.Buffer
	WriteFrame(&buf, bytes.Repeat([]byte("y"), 100))
	if _, err := ReadFrame(&buf, 10); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize: %v, want ErrFrameTooLarge", err)
	}
	// Truncated payload.
	if _, err := ReadFrame(strings.NewReader("\x00\x00\x00\x10abc"), 0); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("torn payload: %v, want ErrShortFrame", err)
	}
	// Truncated header.
	if _, err := ReadFrame(strings.NewReader("\x00\x00"), 0); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("torn header: %v, want ErrShortFrame", err)
	}
}

func TestDecodeFrameRest(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, []byte("first"))
	WriteFrame(&buf, []byte("second"))
	p1, rest, err := DecodeFrame(buf.Bytes(), 0)
	if err != nil || string(p1) != "first" {
		t.Fatalf("frame 1: %q, %v", p1, err)
	}
	p2, rest, err := DecodeFrame(rest, 0)
	if err != nil || string(p2) != "second" || len(rest) != 0 {
		t.Fatalf("frame 2: %q, rest %d, %v", p2, len(rest), err)
	}
	if _, _, err := DecodeFrame(rest, 0); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("empty buffer: %v, want ErrShortFrame", err)
	}
}

func TestRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		ok   bool
	}{
		{"create ok", Request{Type: ReqCreate, Program: "(p a (b ^c <d>) --> (remove 1))"}, true},
		{"create empty program", Request{Type: ReqCreate}, false},
		{"assert ok", Request{Type: ReqAssert, Session: "s1", WMEs: []string{"(a ^b 1)"}}, true},
		{"assert no session", Request{Type: ReqAssert, WMEs: []string{"(a ^b 1)"}}, false},
		{"assert no tuples", Request{Type: ReqAssert, Session: "s1"}, false},
		{"retract bad id", Request{Type: ReqRetract, Session: "s1", WMEID: -1}, false},
		{"run negative", Request{Type: ReqRun, Session: "s1", Max: -5}, false},
		{"run ok", Request{Type: ReqRun, Session: "s1", Max: 10}, true},
		{"unknown type", Request{Type: "explode"}, false},
		{"metrics sessionless", Request{Type: ReqMetrics}, true},
	}
	for _, tc := range cases {
		b, err := EncodeRequest(&tc.req)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		got, err := DecodeRequest(b)
		if tc.ok {
			if err != nil {
				t.Fatalf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("%s: validation passed, want error", tc.name)
		}
		pe := &ProtocolError{}
		if !errors.As(err, &pe) {
			t.Fatalf("%s: error %v is not a *ProtocolError", tc.name, err)
		}
		if got == nil {
			t.Fatalf("%s: no partial request for ID echo", tc.name)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	in := &Response{Type: RespTrace, ID: 42, Session: "s7", More: true,
		Events: []TraceEvent{{Seq: 3, Kind: "commit", Rule: "r", Inst: "r|1@1", WMEs: []string{"(a ^b 1)"}}}}
	b, err := EncodeResponse(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != 42 || !out.More || len(out.Events) != 1 || out.Events[0].Rule != "r" {
		t.Fatalf("response round-trip: %+v", out)
	}
	ev := out.Events[0].ToTraceEvent()
	if ev.Kind.String() != "commit" || ev.WMEs[0] != "(a ^b 1)" {
		t.Fatalf("trace event conversion: %+v", ev)
	}
}
