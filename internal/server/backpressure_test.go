package server

import (
	"testing"
	"time"
)

// occupyActor parks the session's actor on a blocker task and waits
// until it has picked the task up, so the dispatch queue's occupancy
// is exactly under the test's control from then on.
func occupyActor(t *testing.T, sess *session) (release func()) {
	t.Helper()
	releaseCh := make(chan struct{})
	started := make(chan struct{})
	sess.queue <- task{fn: func() {
		close(started)
		<-releaseCh
	}}
	<-started
	return func() { close(releaseCh) }
}

// TestBackpressureShed pins the shed policy: with the actor busy and
// the dispatch queue full, ingest gets a typed overloaded error and
// server_ingest_backpressure_total increments once per shed request —
// deterministically, because the actor is parked on a test hook.
func TestBackpressureShed(t *testing.T) {
	srv := startServer(t, Config{QueueDepth: 1})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, _, _, err := c.Create(tenantProgram("bp"), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sess := srv.lookup(id)
	release := occupyActor(t, sess)
	sess.queue <- task{fn: func() {}} // fill the single queue slot

	for want := int64(1); want <= 2; want++ {
		_, err := c.Assert(id, eventTuple("bp", int(want)))
		if !IsOverloaded(err) {
			t.Fatalf("assert with full queue: err = %v, want overloaded", err)
		}
		if got := srv.Metrics().Snapshot().Counter("server_ingest_backpressure_total"); got != want {
			t.Fatalf("server_ingest_backpressure_total = %d, want %d", got, want)
		}
	}

	release()
	// Wait for the actor to drain the queue (the sentinel send blocks
	// until the filler slot frees, and its callback marks execution),
	// then ingest flows again and the counter stays put.
	drained := make(chan struct{})
	sess.queue <- task{fn: func() { close(drained) }}
	<-drained
	if _, err := c.Assert(id, eventTuple("bp", 99)); err != nil {
		t.Fatalf("assert after drain: %v", err)
	}
	if got := srv.Metrics().Snapshot().Counter("server_ingest_backpressure_total"); got != 2 {
		t.Fatalf("server_ingest_backpressure_total = %d after drain, want 2", got)
	}
}

// TestBackpressureBlock pins the blocking policy: a full queue stalls
// the submitting connection (no response, counter incremented) until
// the actor frees a slot, then the request completes normally.
func TestBackpressureBlock(t *testing.T) {
	srv := startServer(t, Config{QueueDepth: 1, BlockOnFull: true})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, _, _, err := c.Create(tenantProgram("bp"), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sess := srv.lookup(id)
	release := occupyActor(t, sess)
	sess.queue <- task{fn: func() {}}

	done := make(chan error, 1)
	go func() {
		_, err := c.Assert(id, eventTuple("bp", 1))
		done <- err
	}()
	// The block path increments the counter before parking.
	waitFor(t, 5*time.Second, "backpressure counter", func() bool {
		return srv.Metrics().Snapshot().Counter("server_ingest_backpressure_total") == 1
	})
	select {
	case err := <-done:
		t.Fatalf("blocked assert returned early: %v", err)
	default:
	}

	release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("assert after unblock: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("assert still blocked after actor release")
	}
}

// TestBlockedSubmitterUnblocksOnTeardown pins the shutdown path: a
// connection parked in blocking backpressure is woken with a typed
// closed error when the session is torn down, so teardown can never
// wedge behind a stalled tenant.
func TestBlockedSubmitterUnblocksOnTeardown(t *testing.T) {
	srv := startServer(t, Config{QueueDepth: 1, BlockOnFull: true})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, _, _, err := c.Create(tenantProgram("bp"), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sess := srv.lookup(id)
	release := occupyActor(t, sess)
	defer release()
	sess.queue <- task{fn: func() {}}

	done := make(chan error, 1)
	go func() {
		_, err := c.Assert(id, eventTuple("bp", 1))
		done <- err
	}()
	waitFor(t, 5*time.Second, "backpressure counter", func() bool {
		return srv.Metrics().Snapshot().Counter("server_ingest_backpressure_total") == 1
	})

	go sess.teardown() // teardown blocks on the parked submitter, hence the goroutine
	select {
	case err := <-done:
		if se, ok := err.(*ServerError); !ok || se.Code != CodeClosed {
			t.Fatalf("blocked assert after teardown: err = %v, want typed %s", err, CodeClosed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked submitter not woken by teardown")
	}
}
