package server

import (
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"pdps/internal/engine"
	"pdps/internal/lang"
	"pdps/internal/sched"
	"pdps/internal/storage"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// spinProgram never quiesces: each firing replaces the counter WME
// with the next value, so a run command keeps streaming until its
// bound or the session dies — the workload for mid-stream kills.
const spinProgram = `(p spin (counter ^n <n>) --> (remove 1) (make counter ^n (+ <n> 1)))`

// goroutineBaseline samples the current goroutine count after a GC
// settle.
func goroutineBaseline() int {
	runtime.GC()
	return runtime.NumGoroutine()
}

// TestAbruptClientDeath kills a client mid-run, mid-trace-stream, and
// asserts the server reaps the session without leaking goroutines or
// wedging the surviving tenant.
func TestAbruptClientDeath(t *testing.T) {
	baseline := goroutineBaseline()
	srv := New(Config{Clock: sched.Immediate{}})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()

	// Victim tenant: start an unbounded run and sever the socket once
	// trace pushes are flowing.
	victim, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	vid, _, _, err := victim.Create(spinProgram, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Assert(vid, "(counter ^n 0)"); err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() {
		_, err := victim.Run(vid, 10_000_000)
		runDone <- err
	}()
	waitFor(t, 5*time.Second, "first trace push", func() bool {
		return srv.Metrics().Snapshot().Counter("server_trace_events_streamed_total") > 0
	})
	victim.Close() // abrupt: the server learns via the broken socket
	if err := <-runDone; err == nil {
		t.Fatal("victim run returned nil after connection kill")
	}
	waitFor(t, 5*time.Second, "victim session reaped", func() bool {
		return srv.SessionCount() == 0
	})

	// A fresh tenant must be completely unaffected.
	ev, in, err := runTenant(addr, "alive", 2, 4)
	if err != nil {
		t.Fatalf("surviving tenant failed after victim kill: %v", err)
	}
	if err := checkAdmissible(tenantProgram("alive"), in, ev); err != nil {
		t.Fatal(err)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}

// TestHalfWrittenFrame feeds the server a frame header whose payload
// never arrives, an oversized length prefix, and unparseable JSON —
// each must produce a typed error or a clean connection teardown,
// never a panic or a wedged server, and sessions owned by the broken
// connection must be reaped.
func TestHalfWrittenFrame(t *testing.T) {
	srv := startServer(t, Config{MaxFrame: 1 << 16})
	addr := srv.Addr().String()

	// Half-written frame: header says 100 bytes, only 10 arrive.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	nc.Write(hdr[:])
	nc.Write(make([]byte, 10))
	nc.Close()

	// Oversized length prefix: connection must be dropped.
	nc2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	nc2.Write(hdr[:])
	buf := make([]byte, 1)
	nc2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc2.Read(buf); err == nil {
		t.Fatal("server kept the connection after an oversized frame")
	}
	nc2.Close()

	// Valid frame, garbage JSON: typed bad_request, connection stays up.
	nc3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(nc3, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	nc3.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := ReadFrame(nc3, DefaultMaxFrame)
	if err != nil {
		t.Fatalf("no error response to garbage JSON: %v", err)
	}
	resp, err := DecodeResponse(payload)
	if err != nil || resp.Type != RespError || resp.Code != CodeBadRequest {
		t.Fatalf("garbage JSON answer = %+v, %v; want typed %s", resp, err, CodeBadRequest)
	}
	nc3.Close()

	// A session created on a connection that then dies half-frame must
	// be reaped with it.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Create(tenantProgram("hw"), SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	if srv.SessionCount() != 1 {
		t.Fatalf("session count = %d, want 1", srv.SessionCount())
	}
	binary.BigEndian.PutUint32(hdr[:], 64)
	c.c.Write(hdr[:]) // half a frame, then vanish
	c.Close()
	waitFor(t, 5*time.Second, "orphaned session reaped", func() bool {
		return srv.SessionCount() == 0
	})

	// The server still serves new tenants.
	if _, _, err := runTenant(addr, "after", 1, 4); err != nil {
		t.Fatal(err)
	}
}

// TestStorageRestart kills a durable tenant mid-lifecycle and
// re-creates the session on the same storage directory: recovery must
// match PR 6 semantics — acked ingest and acked commits survive, the
// recovered store is byte-identical to an independent replay of the
// log, and the recovered trace tail is admissible from the base.
func TestStorageRestart(t *testing.T) {
	root := t.TempDir()
	srv := startServer(t, Config{StorageRoot: root})
	addr := srv.Addr().String()
	program := tenantProgram("d")

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	id, recovered, lsn, err := c.Create(program, SessionOptions{StorageDir: "tenant-d"})
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 0 || lsn != 0 {
		t.Fatalf("fresh durable session reports recovery %d/%d", recovered, lsn)
	}
	tuples := make([]string, 6)
	for i := range tuples {
		tuples[i] = eventTuple("d", i)
	}
	if _, err := c.Assert(id, tuples...); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(id, 3) // partial run: 3 of 12 possible commits
	if err != nil {
		t.Fatal(err)
	}
	if res.Fired != 3 {
		t.Fatalf("partial run fired %d, want 3", res.Fired)
	}
	before, err := c.WMEs(id)
	if err != nil {
		t.Fatal(err)
	}
	c.Close() // abrupt death, no session close

	waitFor(t, 5*time.Second, "durable session reaped", func() bool {
		return srv.SessionCount() == 0
	})

	// Restart: the same directory must recover 1 ingest record + 3
	// commit records (LSN 4) and reproduce the pre-kill store.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	var id2 string
	var rec2 int
	var lsn2 uint64
	waitFor(t, 5*time.Second, "storage dir released for re-create", func() bool {
		id2, rec2, lsn2, err = c2.Create(program, SessionOptions{StorageDir: "tenant-d"})
		return err == nil || !IsOverloaded(err)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec2 != 4 || lsn2 != 4 {
		t.Fatalf("recovery = %d records, LSN %d; want 4, 4", rec2, lsn2)
	}
	after, err := c2.WMEs(id2)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(after) != fmt.Sprint(before) {
		t.Fatalf("recovered store diverged:\n before: %v\n after:  %v", before, after)
	}

	// The recovered session keeps running to quiescence: 6 events × 2
	// commits minus the 3 already durable.
	res2, err := c2.Run(id2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Quiescent || res2.Fired != 9 {
		t.Fatalf("post-recovery run = %+v, want quiescent after 9 firings", res2)
	}
	if err := c2.CloseSession(id2); err != nil {
		t.Fatal(err)
	}

	// Independent replay: open the directory directly and check the
	// recovered trace tail is admissible from the ingested base.
	f, err := storage.OpenFile(root+"/tenant-d", storage.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := f.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.LSN != 13 { // 1 ingest + 3 commits + 9 commits
		t.Fatalf("final LSN = %d, want 13", rec.LSN)
	}
	prog, err := lang.Parse(program)
	if err != nil {
		t.Fatal(err)
	}
	base := wm.NewStore()
	var commits []trace.Event
	for _, r := range rec.Records {
		if r.Rule == "" {
			if err := base.ApplyLogged(r.Delta); err != nil {
				t.Fatal(err)
			}
			continue
		}
		commits = append(commits, trace.Event{Kind: trace.KindCommit, Rule: r.Rule, Inst: r.Inst, WMEs: r.WMEs})
	}
	if err := engine.CheckTraceFrom(base, prog.Rules, commits); err != nil {
		t.Fatalf("recovered commit trace not admissible: %v", err)
	}
	if rec.Store.Len() != 0 {
		t.Fatalf("final recovered store has %d WMEs, want 0", rec.Store.Len())
	}
}
