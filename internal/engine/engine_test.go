package engine

import (
	"errors"
	"testing"

	"pdps/internal/cr"
	"pdps/internal/lock"
	"pdps/internal/match"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

func attrs(kv ...interface{}) map[string]wm.Value {
	m := make(map[string]wm.Value)
	for i := 0; i < len(kv); i += 2 {
		k := kv[i].(string)
		switch v := kv[i+1].(type) {
		case int:
			m[k] = wm.Int(int64(v))
		case string:
			m[k] = wm.Sym(v)
		case bool:
			m[k] = wm.Bool(v)
		default:
			panic("bad attr value")
		}
	}
	return m
}

// counterProgram decrements a counter to zero: n firings for initial n.
func counterProgram(n int) Program {
	dec := &match.Rule{
		Name: "dec",
		Conditions: []match.Condition{
			{Class: "counter", Tests: []match.AttrTest{
				{Attr: "n", Op: match.OpEq, Var: "x"},
				{Attr: "n", Op: match.OpGt, Const: wm.Int(0)},
			}},
		},
		Actions: []match.Action{
			{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
				{Attr: "n", Expr: match.BinExpr{Op: match.ArithSub, L: match.VarExpr{Name: "x"}, R: match.ConstExpr{Val: wm.Int(1)}}},
			}},
		},
	}
	return Program{
		Rules: []*match.Rule{dec},
		WMEs:  []InitialWME{{Class: "counter", Attrs: attrs("n", n)}},
	}
}

// pipelineProgram moves parts through stages 0..stages-1 and removes
// them at the last stage: parts*stages commits, empty final WM.
func pipelineProgram(parts, stages int) Program {
	var rules []*match.Rule
	for s := 0; s < stages-1; s++ {
		rules = append(rules, &match.Rule{
			Name: "advance" + string(rune('0'+s)),
			Conditions: []match.Condition{
				{Class: "part", Tests: []match.AttrTest{
					{Attr: "stage", Op: match.OpEq, Const: wm.Int(int64(s))},
				}},
			},
			Actions: []match.Action{
				{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
					{Attr: "stage", Expr: match.ConstExpr{Val: wm.Int(int64(s + 1))}},
				}},
			},
		})
	}
	rules = append(rules, &match.Rule{
		Name: "finish",
		Conditions: []match.Condition{
			{Class: "part", Tests: []match.AttrTest{
				{Attr: "stage", Op: match.OpEq, Const: wm.Int(int64(stages - 1))},
			}},
		},
		Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
	})
	p := Program{Rules: rules}
	for i := 0; i < parts; i++ {
		p.WMEs = append(p.WMEs, InitialWME{Class: "part", Attrs: attrs("stage", 0, "id", i)})
	}
	return p
}

// tallyProgram is the high-conflict variant: every stage advance also
// increments a single shared tally tuple, so all firings write-conflict.
func tallyProgram(parts, stages int) Program {
	var rules []*match.Rule
	for s := 0; s < stages; s++ {
		rules = append(rules, &match.Rule{
			Name: "tick" + string(rune('0'+s)),
			Conditions: []match.Condition{
				{Class: "part", Tests: []match.AttrTest{
					{Attr: "stage", Op: match.OpEq, Const: wm.Int(int64(s))},
				}},
				{Class: "tally", Tests: []match.AttrTest{
					{Attr: "n", Op: match.OpEq, Var: "t"},
				}},
			},
			Actions: []match.Action{
				{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
					{Attr: "stage", Expr: match.ConstExpr{Val: wm.Int(int64(s + 1))}},
				}},
				{Kind: match.ActModify, CE: 1, Assigns: []match.AttrAssign{
					{Attr: "n", Expr: match.BinExpr{Op: match.ArithAdd, L: match.VarExpr{Name: "t"}, R: match.ConstExpr{Val: wm.Int(1)}}},
				}},
			},
		})
	}
	p := Program{Rules: rules, WMEs: []InitialWME{{Class: "tally", Attrs: attrs("n", 0)}}}
	for i := 0; i < parts; i++ {
		p.WMEs = append(p.WMEs, InitialWME{Class: "part", Attrs: attrs("stage", 0, "id", i)})
	}
	return p
}

func TestSingleCounter(t *testing.T) {
	for _, matcher := range []string{"rete", "treat", "naive"} {
		e, err := NewSingle(counterProgram(5), Options{Matcher: matcher, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", matcher, err)
		}
		if res.Firings != 5 {
			t.Fatalf("%s: firings = %d, want 5", matcher, res.Firings)
		}
		final := e.Store().ByClass("counter")
		if len(final) != 1 || !final[0].Attr("n").Equal(wm.Int(0)) {
			t.Fatalf("%s: final counter = %v", matcher, final)
		}
		if err := CheckTrace(counterProgram(5), res.Log.Commits()); err != nil {
			t.Fatalf("%s: trace check: %v", matcher, err)
		}
	}
}

func TestSinglePipeline(t *testing.T) {
	p := pipelineProgram(4, 3)
	e, err := NewSingle(p, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 12 {
		t.Fatalf("firings = %d, want 12", res.Firings)
	}
	if e.Store().Len() != 0 {
		t.Fatalf("final WM size = %d, want 0", e.Store().Len())
	}
	if err := CheckTrace(p, res.Log.Commits()); err != nil {
		t.Fatal(err)
	}
}

func TestSingleHalt(t *testing.T) {
	p := counterProgram(100)
	p.Rules = append(p.Rules, &match.Rule{
		Name:     "stop",
		Priority: 10,
		Conditions: []match.Condition{
			{Class: "counter", Tests: []match.AttrTest{
				{Attr: "n", Op: match.OpEq, Const: wm.Int(97)},
			}},
		},
		Actions: []match.Action{{Kind: match.ActHalt}},
	})
	e, err := NewSingle(p, Options{Strategy: cr.Priority{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("halt action did not stop the run")
	}
	if res.Firings != 4 { // 3 decrements + the halt firing
		t.Fatalf("firings = %d, want 4", res.Firings)
	}
}

func TestSingleRefraction(t *testing.T) {
	// A rule whose action does not disturb its own condition fires
	// exactly once per instantiation (refraction), so the run halts.
	p := Program{
		Rules: []*match.Rule{{
			Name:       "note",
			Conditions: []match.Condition{{Class: "config"}},
			Actions: []match.Action{{Kind: match.ActMake, Class: "log",
				Assigns: []match.AttrAssign{{Attr: "v", Expr: match.ConstExpr{Val: wm.Int(1)}}}}},
		}},
		WMEs: []InitialWME{{Class: "config", Attrs: attrs("k", 1)}},
	}
	e, err := NewSingle(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 1 {
		t.Fatalf("firings = %d, want 1 (refraction)", res.Firings)
	}
	if len(e.Store().ByClass("log")) != 1 {
		t.Fatal("action effect missing")
	}
}

func TestSingleMaxFirings(t *testing.T) {
	// Self-perpetuating rule: every firing creates a fresh match.
	p := Program{
		Rules: []*match.Rule{{
			Name:       "spin",
			Conditions: []match.Condition{{Class: "token"}},
			Actions: []match.Action{
				{Kind: match.ActRemove, CE: 0},
				{Kind: match.ActMake, Class: "token"},
			},
		}},
		WMEs: []InitialWME{{Class: "token", Attrs: nil}},
	}
	e, err := NewSingle(p, Options{MaxFirings: 25})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.LimitHit || res.Firings != 25 {
		t.Fatalf("limit = %v, firings = %d", res.LimitHit, res.Firings)
	}
}

func TestParallelPipelineBothSchemes(t *testing.T) {
	for _, scheme := range []lock.Scheme{lock.Scheme2PL, lock.SchemeRcRaWa} {
		p := pipelineProgram(6, 4)
		e, err := NewParallel(p, scheme, Options{Np: 4, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.Firings != 24 {
			t.Fatalf("%v: firings = %d, want 24", scheme, res.Firings)
		}
		if e.Store().Len() != 0 {
			t.Fatalf("%v: final WM size = %d, want 0", scheme, e.Store().Len())
		}
		if err := CheckTrace(p, res.Log.Commits()); err != nil {
			t.Fatalf("%v: trace check: %v", scheme, err)
		}
	}
}

func TestParallelHighConflictTally(t *testing.T) {
	for _, scheme := range []lock.Scheme{lock.Scheme2PL, lock.SchemeRcRaWa} {
		for _, policy := range []AbortPolicy{AbortAlways, AbortReevaluate} {
			p := tallyProgram(4, 3)
			e, err := NewParallel(p, scheme, Options{Np: 4, Verify: true, AbortPolicy: policy})
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatalf("%v/%v: %v", scheme, policy, err)
			}
			if res.Firings != 12 {
				t.Fatalf("%v/%v: firings = %d, want 12", scheme, policy, res.Firings)
			}
			tally := e.Store().ByClass("tally")
			if len(tally) != 1 || !tally[0].Attr("n").Equal(wm.Int(12)) {
				t.Fatalf("%v/%v: tally = %v, want 12", scheme, policy, tally)
			}
			if err := CheckTrace(p, res.Log.Commits()); err != nil {
				t.Fatalf("%v/%v: trace check: %v", scheme, policy, err)
			}
		}
	}
}

func TestParallelHalt(t *testing.T) {
	p := counterProgram(1000)
	p.Rules = append(p.Rules, &match.Rule{
		Name: "stop",
		Conditions: []match.Condition{
			{Class: "counter", Tests: []match.AttrTest{
				{Attr: "n", Op: match.OpLe, Const: wm.Int(995)},
			}},
		},
		Actions: []match.Action{{Kind: match.ActHalt}},
	})
	e, err := NewParallel(p, lock.SchemeRcRaWa, Options{Np: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("halt did not stop the parallel run")
	}
	if res.LimitHit {
		t.Fatal("halt run must not hit the firing limit")
	}
}

func TestParallelMaxFirings(t *testing.T) {
	p := Program{
		Rules: []*match.Rule{{
			Name:       "spin",
			Conditions: []match.Condition{{Class: "token"}},
			Actions: []match.Action{
				{Kind: match.ActRemove, CE: 0},
				{Kind: match.ActMake, Class: "token"},
			},
		}},
		WMEs: []InitialWME{{Class: "token", Attrs: nil}},
	}
	e, err := NewParallel(p, lock.SchemeRcRaWa, Options{MaxFirings: 20, Np: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.LimitHit {
		t.Fatal("limit not reported")
	}
	if res.Firings > 20 {
		t.Fatalf("firings = %d exceeded the limit", res.Firings)
	}
}

// TestParallelFig44CircularConflict reproduces Figure 4.4: Pi reads q
// and writes r, Pj reads r and writes q. Under 2PL this deadlocks (one
// is the victim); under Rc/Ra/Wa both proceed and the first committer
// aborts the other. Either way exactly one of each opposing pair
// commits per round, and the trace stays consistent.
func TestParallelFig44CircularConflict(t *testing.T) {
	prog := Program{
		Rules: []*match.Rule{
			{
				Name: "pi",
				Conditions: []match.Condition{
					{Class: "q", Tests: []match.AttrTest{{Attr: "hot", Op: match.OpEq, Const: wm.Bool(true)}}},
					{Class: "r", Tests: []match.AttrTest{{Attr: "hot", Op: match.OpEq, Const: wm.Bool(true)}}},
				},
				Actions: []match.Action{{Kind: match.ActModify, CE: 1, Assigns: []match.AttrAssign{
					{Attr: "hot", Expr: match.ConstExpr{Val: wm.Bool(false)}}}}},
			},
			{
				Name: "pj",
				Conditions: []match.Condition{
					{Class: "r", Tests: []match.AttrTest{{Attr: "hot", Op: match.OpEq, Const: wm.Bool(true)}}},
					{Class: "q", Tests: []match.AttrTest{{Attr: "hot", Op: match.OpEq, Const: wm.Bool(true)}}},
				},
				Actions: []match.Action{{Kind: match.ActModify, CE: 1, Assigns: []match.AttrAssign{
					{Attr: "hot", Expr: match.ConstExpr{Val: wm.Bool(false)}}}}},
			},
		},
		WMEs: []InitialWME{
			{Class: "q", Attrs: attrs("hot", true)},
			{Class: "r", Attrs: attrs("hot", true)},
		},
	}
	for _, scheme := range []lock.Scheme{lock.Scheme2PL, lock.SchemeRcRaWa} {
		e, err := NewParallel(prog, scheme, Options{Np: 2, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		// pi's commit falsifies pj's condition and vice versa: exactly
		// one of them can commit first, and afterwards the other's
		// original instantiation is gone. (The loser's rule can still
		// fire later only if its LHS re-matches, which modify of "hot"
		// to false prevents.)
		if res.Firings != 1 {
			t.Fatalf("%v: firings = %d, want 1\ntrace: %v", scheme, res.Firings, res.Log.Events())
		}
		if err := CheckTrace(prog, res.Log.Commits()); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
	}
}

func TestStaticPipeline(t *testing.T) {
	p := pipelineProgram(5, 3)
	e, err := NewStatic(p, Options{Np: 4, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 15 {
		t.Fatalf("firings = %d, want 15", res.Firings)
	}
	if e.Store().Len() != 0 {
		t.Fatal("final WM not empty")
	}
	if err := CheckTrace(p, res.Log.Commits()); err != nil {
		t.Fatal(err)
	}
}

func TestStaticInterferenceMatrix(t *testing.T) {
	p := tallyProgram(2, 2)
	e, err := NewStatic(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// All tick rules write the tally: they pairwise interfere.
	if !e.Interferes("tick0", "tick1") || !e.Interferes("tick0", "tick0") {
		t.Fatal("tally writers must interfere")
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 4 {
		t.Fatalf("firings = %d, want 4", res.Firings)
	}
	// Interfering rules cannot batch: every cycle fires exactly one.
	if res.Cycles != 4 {
		t.Fatalf("cycles = %d, want 4 (no batching possible)", res.Cycles)
	}
	if err := CheckTrace(p, res.Log.Commits()); err != nil {
		t.Fatal(err)
	}
}

func TestStaticBatchesIndependentRules(t *testing.T) {
	p := pipelineProgram(6, 2) // advance0 and finish interfere (same class)
	// Two structurally independent rule families: use two disjoint
	// classes so their rules never interfere.
	p2 := Program{
		Rules: []*match.Rule{
			{
				Name:       "a",
				Conditions: []match.Condition{{Class: "x", Tests: []match.AttrTest{{Attr: "v", Op: match.OpEq, Const: wm.Int(0)}}}},
				Actions: []match.Action{{Kind: match.ActModify, CE: 0,
					Assigns: []match.AttrAssign{{Attr: "v", Expr: match.ConstExpr{Val: wm.Int(1)}}}}},
			},
			{
				Name:       "b",
				Conditions: []match.Condition{{Class: "y", Tests: []match.AttrTest{{Attr: "v", Op: match.OpEq, Const: wm.Int(0)}}}},
				Actions: []match.Action{{Kind: match.ActModify, CE: 0,
					Assigns: []match.AttrAssign{{Attr: "v", Expr: match.ConstExpr{Val: wm.Int(1)}}}}},
			},
		},
		WMEs: []InitialWME{
			{Class: "x", Attrs: attrs("v", 0)},
			{Class: "y", Attrs: attrs("v", 0)},
		},
	}
	_ = p
	e, err := NewStatic(p2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Interferes("a", "b") {
		t.Fatal("disjoint-class rules must not interfere")
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 2 || res.Cycles != 1 {
		t.Fatalf("firings = %d cycles = %d, want 2 firings in 1 cycle", res.Firings, res.Cycles)
	}
}

func TestCheckTraceRejectsInvalidSequence(t *testing.T) {
	p := counterProgram(2)
	e, err := NewSingle(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	commits := res.Log.Commits()
	if len(commits) != 2 {
		t.Fatalf("want 2 commits, got %d", len(commits))
	}
	// Reversing the sequence makes step 1 fire an instantiation
	// (counter n=1) that is not active initially.
	swapped := []trace.Event{commits[1], commits[0]}
	if err := CheckTrace(p, swapped); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("CheckTrace = %v, want ErrInconsistent", err)
	}
	// Duplicating a commit is also invalid: after n reaches 0 the rule
	// cannot fire again on the same contents.
	dup := append(append([]trace.Event(nil), commits...), commits[1])
	if err := CheckTrace(p, dup); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("CheckTrace dup = %v, want ErrInconsistent", err)
	}
}

// TestMatchShardsEquivalence: intra-phase match parallelism must not
// change behaviour — same firings, same final working memory.
func TestMatchShardsEquivalence(t *testing.T) {
	for _, matcher := range []string{"naive", "rete"} {
		p := pipelineProgram(6, 3)
		e, err := NewSingle(p, Options{Matcher: matcher, MatchShards: 4, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", matcher, err)
		}
		if res.Firings != 18 {
			t.Fatalf("%s: firings = %d, want 18", matcher, res.Firings)
		}
		if e.Store().Len() != 0 {
			t.Fatalf("%s: WM not drained", matcher)
		}
		if err := CheckTrace(p, res.Log.Commits()); err != nil {
			t.Fatalf("%s: %v", matcher, err)
		}
	}
	// And on the dynamic parallel engine.
	p := tallyProgram(3, 3)
	e, err := NewParallel(p, lock.SchemeRcRaWa, Options{MatchShards: 3, Np: 4, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 9 {
		t.Fatalf("parallel sharded: firings = %d, want 9", res.Firings)
	}
	if err := CheckTrace(p, res.Log.Commits()); err != nil {
		t.Fatal(err)
	}
}

func TestEngineOptionErrors(t *testing.T) {
	if _, err := NewSingle(counterProgram(1), Options{Matcher: "nope"}); err == nil {
		t.Fatal("unknown matcher must error")
	}
	bad := Program{Rules: []*match.Rule{{Name: "bad"}}}
	if _, err := NewSingle(bad, Options{}); err == nil {
		t.Fatal("invalid rule must error")
	}
	if _, err := NewParallel(bad, lock.SchemeRcRaWa, Options{}); err == nil {
		t.Fatal("invalid rule must error (parallel)")
	}
	if _, err := NewStatic(bad, Options{}); err == nil {
		t.Fatal("invalid rule must error (static)")
	}
}
