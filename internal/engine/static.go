package engine

import (
	"sync"
	"time"

	"pdps/internal/match"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// Static is the multiple-thread static approach (Section 4.1): before
// each execute phase, the candidate instantiations are partitioned by
// the pre-computed rule-interference relation, and one group of
// pairwise non-interfering productions fires in parallel. Theorem 1:
// because members update non-overlapping parts of working memory, the
// batch is equivalent to firing its members in any serial order.
type Static struct {
	opts    Options
	store   *wm.Store
	matcher match.Matcher
	fired   map[string]bool
	// interferes[a][b] caches match.Interferes for rule names a, b.
	interferes map[string]map[string]bool
}

// NewStatic builds a static-partition parallel engine. The pairwise
// rule-interference matrix is computed once, up front — the paper's
// pre-execution analysis.
func NewStatic(p Program, opts Options) (*Static, error) {
	o := opts.withDefaults()
	store, m, err := load(p, o)
	if err != nil {
		return nil, err
	}
	inter := make(map[string]map[string]bool, len(p.Rules))
	for _, a := range p.Rules {
		row := make(map[string]bool, len(p.Rules))
		for _, b := range p.Rules {
			row[b.Name] = match.Interferes(a, b)
		}
		inter[a.Name] = row
	}
	return &Static{opts: o, store: store, matcher: m,
		fired: make(map[string]bool), interferes: inter}, nil
}

// Store exposes the engine's working memory.
func (e *Static) Store() *wm.Store { return e.store }

// Interferes reports the cached interference relation between two
// rules (exposed for tests and the psbench harness).
func (e *Static) Interferes(a, b string) bool { return e.interferes[a][b] }

// Run executes batched cycles until no unfired instantiation remains,
// a halt fires, or MaxFirings is hit.
func (e *Static) Run() (Result, error) {
	res := Result{Log: e.opts.Log, Store: e.store}
	for {
		if res.Firings >= e.opts.MaxFirings {
			res.LimitHit = true
			return res, nil
		}
		var cands []*match.Instantiation
		for _, in := range e.matcher.ConflictSet().All() {
			if !e.fired[in.Key()] {
				cands = append(cands, in)
			}
		}
		if len(cands) == 0 {
			return res, nil
		}
		res.Cycles++
		batch := e.batch(cands)
		if res.Firings+len(batch) > e.opts.MaxFirings {
			batch = batch[:e.opts.MaxFirings-res.Firings]
		}

		// Execute the batch in parallel, each firing staging into its
		// own transaction. Np bounds worker concurrency.
		txs := make([]*wm.Txn, len(batch))
		halts := make([]bool, len(batch))
		errs := make([]error, len(batch))
		sem := make(chan struct{}, e.opts.Np)
		var wg sync.WaitGroup
		for i, in := range batch {
			wg.Add(1)
			go func(i int, in *match.Instantiation) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				e.opts.Log.Append(trace.Event{Kind: trace.KindFire, Rule: in.Rule.Name, Inst: in.Key()})
				if d := e.opts.RuleDelay[in.Rule.Name]; d > 0 {
					time.Sleep(d)
				}
				tx := e.store.Begin()
				halts[i], errs[i] = match.ExecuteActions(in, tx)
				txs[i] = tx
			}(i, in)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				for _, tx := range txs {
					if tx != nil {
						tx.Abort()
					}
				}
				return res, err
			}
		}

		// Commit sequentially in batch order: by Theorem 1 this is
		// equivalent to any other serial order of the batch.
		halted := false
		for i, in := range batch {
			if e.opts.Verify && !verifyActive(e.store, in) {
				return res, ErrInconsistent
			}
			delta, err := txs[i].Commit()
			if err != nil {
				return res, err
			}
			if err := e.opts.logDelta(delta); err != nil {
				return res, err
			}
			for _, w := range delta.Removes {
				e.matcher.Remove(w)
			}
			for _, w := range delta.Adds {
				e.matcher.Insert(w)
			}
			e.fired[in.Key()] = true
			res.Firings++
			e.opts.Log.Append(trace.Event{Kind: trace.KindCommit, Rule: in.Rule.Name,
				Inst: in.Key(), WMEs: fingerprints(in)})
			if halts[i] {
				halted = true
				e.opts.Log.Append(trace.Event{Kind: trace.KindHalt, Rule: in.Rule.Name, Inst: in.Key()})
			}
		}
		if halted {
			res.Halted = true
			return res, nil
		}
	}
}

// batch greedily builds a set of candidates whose rules are pairwise
// non-interfering, seeded by the strategy's selection. As a runtime
// guard against the granularity problem the paper discusses (two
// attribute-disjoint modifies hitting the same tuple), members must
// also target disjoint WMEs.
func (e *Static) batch(cands []*match.Instantiation) []*match.Instantiation {
	seed := e.opts.Strategy.Select(cands)
	batch := []*match.Instantiation{seed}
	writes := writeTargets(seed)
	for _, in := range cands {
		if in == seed {
			continue
		}
		ok := true
		for _, member := range batch {
			if e.interferes[in.Rule.Name][member.Rule.Name] || e.interferes[member.Rule.Name][in.Rule.Name] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		tw := writeTargets(in)
		for id := range tw {
			if writes[id] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		batch = append(batch, in)
		for id := range tw {
			writes[id] = true
		}
	}
	return batch
}

// writeTargets returns the IDs of the WMEs an instantiation will
// modify or remove.
func writeTargets(in *match.Instantiation) map[int64]bool {
	out := make(map[int64]bool)
	for _, a := range in.Rule.Actions {
		if a.Kind == match.ActModify || a.Kind == match.ActRemove {
			out[in.WMEs[a.CE].ID] = true
		}
	}
	return out
}
