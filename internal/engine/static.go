package engine

import (
	"sync"

	"pdps/internal/match"
	"pdps/internal/obs"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// Static is the multiple-thread static approach (Section 4.1): before
// each execute phase, the candidate instantiations are partitioned by
// the pre-computed rule-interference relation, and one group of
// pairwise non-interfering productions fires in parallel. Theorem 1:
// because members update non-overlapping parts of working memory, the
// batch is equivalent to firing its members in any serial order.
type Static struct {
	rt *runtime
	// im is the pairwise rule-interference relation, shared with the
	// hybrid elision path of the Parallel engine.
	im *match.InterferenceMatrix
}

// NewStatic builds a static-partition parallel engine. The
// rule-interference matrix — the paper's pre-execution analysis — is
// constructed up front but materialises rows lazily, so large
// generated programs (cmd/psgen) pay O(n) instead of O(n²) when only
// a few rules ever activate together.
func NewStatic(p Program, opts Options) (*Static, error) {
	rt, err := newRuntime(p, opts)
	if err != nil {
		return nil, err
	}
	return &Static{rt: rt, im: match.NewInterferenceMatrix(p.Rules)}, nil
}

// Store exposes the engine's working memory.
func (e *Static) Store() *wm.Store { return e.rt.store }

// Metrics returns the engine's metrics registry.
func (e *Static) Metrics() *obs.Registry { return e.rt.opts.Metrics }

// Interferes reports the cached interference relation between two
// rules (exposed for tests and the psbench harness).
func (e *Static) Interferes(a, b string) bool { return e.im.Interferes(a, b) }

// Run executes batched cycles until no unfired instantiation remains,
// a halt fires, or MaxFirings is hit.
func (e *Static) Run() (Result, error) {
	rt := e.rt
	for {
		fired := rt.firings()
		if fired >= rt.opts.MaxFirings {
			rt.limit = true
			return rt.result(), nil
		}
		cands := rt.candidates()
		if len(cands) == 0 {
			return rt.result(), nil
		}
		rt.met.cycleInc()
		batch := e.batch(cands)
		if fired+len(batch) > rt.opts.MaxFirings {
			batch = batch[:rt.opts.MaxFirings-fired]
		}

		// Execute the batch in parallel, each firing staging into its
		// own transaction. Np bounds worker concurrency.
		txs := make([]*wm.Txn, len(batch))
		halts := make([]bool, len(batch))
		errs := make([]error, len(batch))
		sem := make(chan struct{}, rt.opts.Np)
		var wg sync.WaitGroup
		for i, in := range batch {
			wg.Add(1)
			go func(i int, in *match.Instantiation) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				rt.opts.Log.Append(trace.Event{Kind: trace.KindFire, Rule: in.Rule.Name, Inst: in.Key()})
				if d := rt.opts.RuleDelay[in.Rule.Name]; d > 0 {
					rt.opts.Clock.Sleep(d)
				}
				tx := rt.store.Begin()
				halts[i], errs[i] = match.ExecuteActions(in, tx)
				txs[i] = tx
			}(i, in)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				for _, tx := range txs {
					if tx != nil {
						tx.Abort()
					}
				}
				return rt.result(), err
			}
		}

		// Commit sequentially in batch order: by Theorem 1 this is
		// equivalent to any other serial order of the batch. The batch
		// is also the fsync group — one sync makes it durable.
		for i, in := range batch {
			if err := rt.commit(in, txs[i], 0, halts[i]); err != nil {
				rt.syncStorage()
				return rt.result(), err
			}
		}
		rt.syncStorage()
		if rt.halted || rt.err != nil {
			return rt.result(), rt.err
		}
	}
}

// batch greedily builds a set of candidates whose rules are pairwise
// non-interfering, seeded by the strategy's selection. As a runtime
// guard against the granularity problem the paper discusses (two
// attribute-disjoint modifies hitting the same tuple), members must
// also target disjoint WMEs.
func (e *Static) batch(cands []*match.Instantiation) []*match.Instantiation {
	seed := e.rt.opts.Strategy.Select(cands)
	batch := []*match.Instantiation{seed}
	writes := writeTargets(seed)
	for _, in := range cands {
		if in == seed {
			continue
		}
		ok := true
		for _, member := range batch {
			if e.im.Interferes(in.Rule.Name, member.Rule.Name) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		tw := writeTargets(in)
		for id := range tw {
			if writes[id] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		batch = append(batch, in)
		for id := range tw {
			writes[id] = true
		}
	}
	return batch
}

// writeTargets returns the IDs of the WMEs an instantiation will
// modify or remove.
func writeTargets(in *match.Instantiation) map[int64]bool {
	out := make(map[int64]bool)
	for _, a := range in.Rule.Actions {
		if a.Kind == match.ActModify || a.Kind == match.ActRemove {
			out[in.WMEs[a.CE].ID] = true
		}
	}
	return out
}
