package engine

import (
	"fmt"

	"pdps/internal/match"
	"pdps/internal/obs"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// Single is the single execution thread mechanism (Section 3.1): the
// classic match–select–execute cycle, one production at a time. Its
// set of possible commit sequences defines ES_single, the correctness
// reference for every parallel engine.
type Single struct {
	rt *runtime
}

// NewSingle builds a single-thread engine for the program.
func NewSingle(p Program, opts Options) (*Single, error) {
	rt, err := newRuntime(p, opts)
	if err != nil {
		return nil, err
	}
	return &Single{rt: rt}, nil
}

// Store exposes the engine's working memory (for inspection and tests).
func (e *Single) Store() *wm.Store { return e.rt.store }

// Metrics returns the engine's metrics registry.
func (e *Single) Metrics() *obs.Registry { return e.rt.opts.Metrics }

// Run executes recognize-act cycles until the conflict set holds no
// unfired instantiation, a halt action executes, or MaxFirings is hit.
func (e *Single) Run() (Result, error) {
	rt := e.rt
	for {
		if rt.firings() >= rt.opts.MaxFirings {
			rt.limit = true
			return rt.result(), nil
		}
		cands := rt.candidates()
		if len(cands) == 0 {
			return rt.result(), nil
		}
		rt.met.cycleInc()
		in := rt.opts.Strategy.Select(cands)
		key := in.Key()
		rt.fired[key] = true
		rt.opts.Log.Append(trace.Event{Kind: trace.KindFire, Rule: in.Rule.Name, Inst: key})

		if rt.opts.Verify && !verifyActive(rt.store, in) {
			return rt.result(), fmt.Errorf("%w: %s selected while inactive", ErrInconsistent, key)
		}
		if d := rt.opts.RuleDelay[in.Rule.Name]; d > 0 {
			rt.opts.Clock.Sleep(d)
		}
		tx := rt.store.Begin()
		halt, err := match.ExecuteActions(in, tx)
		if err != nil {
			tx.Abort()
			return rt.result(), err
		}
		if err := rt.commit(in, tx, 0, halt); err != nil {
			return rt.result(), err
		}
		// Serial recognize-act: every commit is its own fsync group.
		rt.syncStorage()
		if rt.halted || rt.err != nil {
			return rt.result(), rt.err
		}
	}
}
