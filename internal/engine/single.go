package engine

import (
	"fmt"
	"time"

	"pdps/internal/match"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// Single is the single execution thread mechanism (Section 3.1): the
// classic match–select–execute cycle, one production at a time. Its
// set of possible commit sequences defines ES_single, the correctness
// reference for every parallel engine.
type Single struct {
	opts    Options
	store   *wm.Store
	matcher match.Matcher
	fired   map[string]bool // refraction: instantiation keys already fired
}

// NewSingle builds a single-thread engine for the program.
func NewSingle(p Program, opts Options) (*Single, error) {
	o := opts.withDefaults()
	store, m, err := load(p, o)
	if err != nil {
		return nil, err
	}
	return &Single{opts: o, store: store, matcher: m, fired: make(map[string]bool)}, nil
}

// Store exposes the engine's working memory (for inspection and tests).
func (e *Single) Store() *wm.Store { return e.store }

// Run executes recognize-act cycles until the conflict set holds no
// unfired instantiation, a halt action executes, or MaxFirings is hit.
func (e *Single) Run() (Result, error) {
	res := Result{Log: e.opts.Log, Store: e.store}
	for {
		if res.Firings >= e.opts.MaxFirings {
			res.LimitHit = true
			return res, nil
		}
		cands := e.candidates()
		if len(cands) == 0 {
			return res, nil
		}
		res.Cycles++
		in := e.opts.Strategy.Select(cands)
		key := in.Key()
		e.fired[key] = true
		e.opts.Log.Append(trace.Event{Kind: trace.KindFire, Rule: in.Rule.Name, Inst: key})

		if e.opts.Verify && !verifyActive(e.store, in) {
			return res, fmt.Errorf("%w: %s selected while inactive", ErrInconsistent, key)
		}
		if d := e.opts.RuleDelay[in.Rule.Name]; d > 0 {
			time.Sleep(d)
		}
		tx := e.store.Begin()
		halt, err := match.ExecuteActions(in, tx)
		if err != nil {
			tx.Abort()
			return res, err
		}
		delta, err := tx.Commit()
		if err != nil {
			return res, err
		}
		if err := e.opts.logDelta(delta); err != nil {
			return res, err
		}
		for _, w := range delta.Removes {
			e.matcher.Remove(w)
		}
		for _, w := range delta.Adds {
			e.matcher.Insert(w)
		}
		res.Firings++
		e.opts.Log.Append(trace.Event{
			Kind: trace.KindCommit, Rule: in.Rule.Name, Inst: key, WMEs: fingerprints(in),
		})
		if halt {
			res.Halted = true
			e.opts.Log.Append(trace.Event{Kind: trace.KindHalt, Rule: in.Rule.Name, Inst: key})
			return res, nil
		}
	}
}

// candidates returns the unfired instantiations of the conflict set.
func (e *Single) candidates() []*match.Instantiation {
	var out []*match.Instantiation
	for _, in := range e.matcher.ConflictSet().All() {
		if !e.fired[in.Key()] {
			out = append(out, in)
		}
	}
	return out
}
