package engine

import (
	"bytes"
	"testing"

	"pdps/internal/lock"
	"pdps/internal/storage"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// storageBuilders enumerates engine constructors for the durability
// tests.
func storageBuilders() map[string]func(Program, Options) (interface {
	Run() (Result, error)
	Store() *wm.Store
}, error) {
	type eng = interface {
		Run() (Result, error)
		Store() *wm.Store
	}
	return map[string]func(Program, Options) (eng, error){
		"single": func(p Program, o Options) (eng, error) {
			return NewSingle(p, o)
		},
		"parallel-2pl": func(p Program, o Options) (eng, error) {
			return NewParallel(p, lock.Scheme2PL, o)
		},
		"parallel-rcrawa": func(p Program, o Options) (eng, error) {
			return NewParallel(p, lock.SchemeRcRaWa, o)
		},
		"static": func(p Program, o Options) (eng, error) {
			return NewStatic(p, o)
		},
	}
}

func storeSnapshot(t *testing.T, s *wm.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStorageRecoveryAllEngines runs each engine over each backend,
// then recovers and requires (a) one durable record per firing, (b) a
// recovered store equal to the engine's final working memory, and (c)
// a recovered commit trace the consistency checker accepts — the
// paper's knowledge-persistence motivation plus the Definition 3.2
// admissibility bar applied to recovery.
func TestStorageRecoveryAllEngines(t *testing.T) {
	for name, build := range storageBuilders() {
		for _, backendName := range []string{"mem", "file"} {
			t.Run(name+"/"+backendName, func(t *testing.T) {
				prog := tallyProgram(4, 3)

				var backend storage.Backend
				var reopen func() storage.Backend
				switch backendName {
				case "mem":
					m := storage.NewMem()
					backend = m
					reopen = func() storage.Backend { return m }
				case "file":
					dir := t.TempDir()
					f, err := storage.OpenFile(dir, storage.FileOptions{})
					if err != nil {
						t.Fatal(err)
					}
					backend = f
					reopen = func() storage.Backend {
						if err := f.Close(); err != nil {
							t.Fatal(err)
						}
						g, err := storage.OpenFile(dir, storage.FileOptions{})
						if err != nil {
							t.Fatal(err)
						}
						t.Cleanup(func() { g.Close() })
						return g
					}
				}

				// Seed the backend with the initial working memory as a
				// non-firing record, as a resuming loader would.
				base := wm.NewStore()
				var init wm.Delta
				for _, iw := range prog.WMEs {
					init.Adds = append(init.Adds, base.Insert(iw.Class, iw.Attrs))
				}
				if _, err := backend.Append(&storage.Record{Delta: &init}); err != nil {
					t.Fatal(err)
				}
				if err := backend.Sync(); err != nil {
					t.Fatal(err)
				}

				resumed := prog
				resumed.WMEs = nil // Restore already carries the initial WM
				eng, err := build(resumed, Options{Np: 4, Storage: backend, Restore: base})
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				if res.Firings == 0 {
					t.Fatal("program fired nothing")
				}

				rec, err := reopen().Recover()
				if err != nil {
					t.Fatal(err)
				}
				if got := len(rec.Records); got != res.Firings+1 {
					t.Fatalf("recovered %d records, want %d firings + 1 seed", got, res.Firings)
				}
				if rec.LSN != storage.LSN(res.Firings+1) {
					t.Fatalf("recovered LSN = %d, want %d", rec.LSN, res.Firings+1)
				}
				if !bytes.Equal(storeSnapshot(t, rec.Store), storeSnapshot(t, eng.Store())) {
					t.Fatal("recovered store is not byte-identical to the final working memory")
				}

				// The recovered records reconstruct the commit trace; it
				// must be admissible per Definition 3.2.
				var commits []trace.Event
				for _, r := range rec.Records {
					if r.Rule == "" {
						continue
					}
					commits = append(commits, trace.Event{Kind: trace.KindCommit,
						Rule: r.Rule, Inst: r.Inst, WMEs: r.WMEs})
				}
				if len(commits) != res.Firings {
					t.Fatalf("recovered %d commit records, want %d", len(commits), res.Firings)
				}
				if err := CheckTrace(prog, commits); err != nil {
					t.Fatalf("recovered trace not admissible: %v", err)
				}
			})
		}
	}
}

// TestStorageGroupCommitStatic checks deterministic fsync batching:
// the Static engine's execute batch is its fsync group, so syncs equal
// cycles, not firings.
func TestStorageGroupCommitStatic(t *testing.T) {
	prog := independentProgram(6, 5)
	m := storage.NewMem()
	eng, err := NewStatic(prog, Options{Np: 4, Storage: m})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Metrics().Snapshot()
	appends := snap.Counter("wal_append_total")
	fsyncs := snap.Counter("wal_fsync_total")
	if appends != int64(res.Firings) {
		t.Fatalf("wal_append_total = %d, firings = %d", appends, res.Firings)
	}
	if fsyncs != int64(res.Cycles) {
		t.Fatalf("fsyncs = %d, want one per cycle (%d)", fsyncs, res.Cycles)
	}
	if res.Cycles >= res.Firings {
		t.Fatalf("degenerate batching: %d cycles for %d firings", res.Cycles, res.Firings)
	}
	h, ok := snap.Histogram("wal_group_size")
	if !ok || h.Count != fsyncs || h.Sum != int64(res.Firings) {
		t.Fatalf("wal_group_size = %+v, want count %d sum %d", h, fsyncs, res.Firings)
	}
}

// TestStorageGroupCommitParallel checks the parallel committer's
// durability invariants: every firing appended, every append covered
// by some fsync before the run ends, ack only after sync (observable
// as fsyncs ≤ appends with a positive count). Group sizes above one
// depend on fsync latency and scheduling, so amortization itself is
// measured by psbench E19, not asserted here.
func TestStorageGroupCommitParallel(t *testing.T) {
	prog := tallyProgram(6, 5)
	m := storage.NewMem()
	eng, err := NewParallel(prog, lock.SchemeRcRaWa, Options{Np: 4, CommitBatch: 64, Storage: m})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Metrics().Snapshot()
	appends := snap.Counter("wal_append_total")
	fsyncs := snap.Counter("wal_fsync_total")
	if appends != int64(res.Firings) {
		t.Fatalf("wal_append_total = %d, firings = %d", appends, res.Firings)
	}
	if fsyncs == 0 || fsyncs > appends {
		t.Fatalf("fsyncs = %d out of range (appends %d)", fsyncs, appends)
	}
	h, ok := snap.Histogram("wal_group_size")
	if !ok || h.Count != fsyncs || h.Sum != appends {
		t.Fatalf("wal_group_size = %+v, want count %d sum %d", h, fsyncs, appends)
	}
}

// TestStorageAutoCheckpoint drives the file backend past its
// checkpoint threshold and checks a snapshot appears, old segments are
// pruned, and recovery still reproduces the final store.
func TestStorageAutoCheckpoint(t *testing.T) {
	prog := tallyProgram(6, 6)
	dir := t.TempDir()
	f, err := storage.OpenFile(dir, storage.FileOptions{SegmentBytes: 1 << 10, CheckpointBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewParallel(prog, lock.SchemeRcRaWa, Options{Np: 4, Storage: f})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	snap := eng.Metrics().Snapshot()
	if snap.Counter("checkpoint_total") == 0 {
		t.Fatal("no checkpoint triggered despite tiny threshold")
	}
	g, err := storage.OpenFile(dir, storage.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	rec, err := g.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotLSN == 0 {
		t.Fatal("recovery did not use a snapshot")
	}
	if int(rec.LSN) != res.Firings {
		t.Fatalf("recovered LSN = %d, want %d firings", rec.LSN, res.Firings)
	}
	if !bytes.Equal(storeSnapshot(t, rec.Store), storeSnapshot(t, eng.Store())) {
		t.Fatal("recovered store differs from final working memory after checkpoint")
	}
}
