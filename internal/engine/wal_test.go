package engine

import (
	"bytes"
	"testing"

	"pdps/internal/lock"
	"pdps/internal/wm"
)

// TestWALRecoveryAllEngines runs each engine with write-ahead logging
// enabled, then recovers a store from the initial snapshot plus the
// log and requires it to equal the engine's final working memory —
// the paper's knowledge-persistence motivation made concrete.
func TestWALRecoveryAllEngines(t *testing.T) {
	builders := map[string]func(Program, Options) (interface {
		Run() (Result, error)
		Store() *wm.Store
	}, error){
		"single": func(p Program, o Options) (interface {
			Run() (Result, error)
			Store() *wm.Store
		}, error) {
			return NewSingle(p, o)
		},
		"parallel-2pl": func(p Program, o Options) (interface {
			Run() (Result, error)
			Store() *wm.Store
		}, error) {
			return NewParallel(p, lock.Scheme2PL, o)
		},
		"parallel-rcrawa": func(p Program, o Options) (interface {
			Run() (Result, error)
			Store() *wm.Store
		}, error) {
			return NewParallel(p, lock.SchemeRcRaWa, o)
		},
		"static": func(p Program, o Options) (interface {
			Run() (Result, error)
			Store() *wm.Store
		}, error) {
			return NewStatic(p, o)
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			prog := tallyProgram(4, 3)

			// Snapshot the initial working memory by loading the same
			// program into a plain store.
			base := wm.NewStore()
			for _, iw := range prog.WMEs {
				base.Insert(iw.Class, iw.Attrs)
			}
			var snap bytes.Buffer
			if err := base.WriteSnapshot(&snap); err != nil {
				t.Fatal(err)
			}

			var logBuf bytes.Buffer
			wal, err := wm.NewWAL(&logBuf)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := build(prog, Options{Np: 4, WAL: wal})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			if wal.Records() != res.Firings {
				t.Fatalf("wal records = %d, firings = %d", wal.Records(), res.Firings)
			}

			recovered, err := wm.ReadSnapshot(&snap)
			if err != nil {
				t.Fatal(err)
			}
			applied, err := wm.ReplayWAL(bytes.NewReader(logBuf.Bytes()), recovered)
			if err != nil {
				t.Fatal(err)
			}
			if applied != res.Firings {
				t.Fatalf("applied = %d, want %d", applied, res.Firings)
			}

			final := eng.Store()
			if recovered.Len() != final.Len() {
				t.Fatalf("recovered %d WMEs, want %d", recovered.Len(), final.Len())
			}
			for _, w := range final.All() {
				got, ok := recovered.Get(w.ID)
				if !ok || !got.EqualContent(w) || got.TimeTag != w.TimeTag {
					t.Fatalf("WME %d differs after recovery: %v vs %v", w.ID, got, w)
				}
			}
		})
	}
}
