//go:build race

package engine

// raceEnabled reports whether the race detector built this test
// binary; see race_off_test.go.
const raceEnabled = true
