package engine

import (
	"sort"

	"pdps/internal/lock"
	"pdps/internal/match"
)

// rcResources returns the Rc-lock plan for condition evaluation
// (Figure 4.1/4.2, phase 1): a tuple-level Rc on every matched WME,
// and a relation-level Rc for every negated condition element — the
// paper's lock escalation for conditions that depend on the absence of
// tuples.
func rcResources(in *match.Instantiation) []lock.Resource {
	var out []lock.Resource
	for _, w := range in.WMEs {
		out = append(out, lock.Resource{Class: w.Class, ID: w.ID})
	}
	for _, c := range in.Rule.Conditions {
		if c.Negated {
			out = append(out, lock.Relation(c.Class))
		}
	}
	return dedupeResources(out)
}

// rhsLock pairs a resource with the mode the RHS needs on it.
type rhsLock struct {
	res  lock.Resource
	mode lock.Mode
}

// rhsLocks returns the Ra/Wa-lock plan acquired at the start of action
// execution (Section 4.3): Wa on the matched WMEs targeted by modify or
// remove, Ra on matched WMEs the action re-reads (Rule.ActionReads),
// and a relation-level Wa for every class the action makes tuples in
// (creation can falsify negated conditions anywhere in the class).
// The plan is sorted for deterministic acquisition order.
func rhsLocks(in *match.Instantiation) []rhsLock {
	modes := make(map[lock.Resource]lock.Mode)
	raise := func(res lock.Resource, m lock.Mode) {
		if cur, ok := modes[res]; !ok || m > cur {
			modes[res] = m
		}
	}
	for _, ce := range in.Rule.ActionReads {
		w := in.WMEs[ce]
		raise(lock.Resource{Class: w.Class, ID: w.ID}, lock.Ra)
	}
	for _, a := range in.Rule.Actions {
		switch a.Kind {
		case match.ActMake:
			raise(lock.Relation(a.Class), lock.Wa)
		case match.ActModify, match.ActRemove:
			w := in.WMEs[a.CE]
			raise(lock.Resource{Class: w.Class, ID: w.ID}, lock.Wa)
		}
	}
	out := make([]rhsLock, 0, len(modes))
	for res, m := range modes {
		out = append(out, rhsLock{res, m})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].res, out[j].res
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.ID < b.ID
	})
	return out
}

func dedupeResources(rs []lock.Resource) []lock.Resource {
	seen := make(map[lock.Resource]bool, len(rs))
	out := rs[:0]
	for _, r := range rs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].ID < out[j].ID
	})
	return out
}
