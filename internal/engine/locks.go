package engine

import (
	"sort"

	"pdps/internal/lock"
	"pdps/internal/match"
)

// rcResources returns the Rc-lock plan for condition evaluation
// (Figure 4.1/4.2, phase 1): a tuple-level Rc on every matched WME,
// and a relation-level Rc for every negated condition element — the
// paper's lock escalation for conditions that depend on the absence of
// tuples. When escalate is above 0, any class with more than that many
// tuple-level entries collapses to a single relation-level Rc
// (hierarchical class-granularity locking); the returned counts report
// how many classes escalated and how many lock-table operations that
// avoided.
func rcResources(in *match.Instantiation, escalate int) (plan []lock.Resource, escalated, saved int) {
	var out []lock.Resource
	for _, w := range in.WMEs {
		out = append(out, lock.Resource{Class: w.Class, ID: w.ID})
	}
	for _, c := range in.Rule.Conditions {
		if c.Negated {
			out = append(out, lock.Relation(c.Class))
		}
	}
	out = dedupeResources(out)
	if escalate > 0 {
		out, escalated, saved = escalateResources(out, escalate)
	}
	return out, escalated, saved
}

// rhsLock pairs a resource with the mode the RHS needs on it.
type rhsLock struct {
	res  lock.Resource
	mode lock.Mode
}

// rhsLocks returns the Ra/Wa-lock plan acquired at the start of action
// execution (Section 4.3): Wa on the matched WMEs targeted by modify or
// remove, Ra on matched WMEs the action re-reads (Rule.ActionReads),
// and a relation-level Wa for every class the action makes tuples in
// (creation can falsify negated conditions anywhere in the class).
// When escalate is above 0, any class with more than that many
// tuple-level entries collapses to one relation-level lock at the
// strongest mode those tuples needed. The plan is sorted for
// deterministic acquisition order.
func rhsLocks(in *match.Instantiation, escalate int) (plan []rhsLock, escalated, saved int) {
	modes := make(map[lock.Resource]lock.Mode)
	raise := func(res lock.Resource, m lock.Mode) {
		if cur, ok := modes[res]; !ok || m > cur {
			modes[res] = m
		}
	}
	for _, ce := range in.Rule.ActionReads {
		w := in.WMEs[ce]
		raise(lock.Resource{Class: w.Class, ID: w.ID}, lock.Ra)
	}
	for _, a := range in.Rule.Actions {
		switch a.Kind {
		case match.ActMake:
			raise(lock.Relation(a.Class), lock.Wa)
		case match.ActModify, match.ActRemove:
			w := in.WMEs[a.CE]
			raise(lock.Resource{Class: w.Class, ID: w.ID}, lock.Wa)
		}
	}
	if escalate > 0 {
		perClass := make(map[string]int)
		maxMode := make(map[string]lock.Mode)
		for res, m := range modes {
			if res.ID != lock.RelationLevel {
				perClass[res.Class]++
				if m > maxMode[res.Class] {
					maxMode[res.Class] = m
				}
			}
		}
		for class, n := range perClass {
			if n <= escalate {
				continue
			}
			before := n
			if _, ok := modes[lock.Relation(class)]; ok {
				before++
			}
			for res := range modes {
				if res.Class == class && res.ID != lock.RelationLevel {
					delete(modes, res)
				}
			}
			raise(lock.Relation(class), maxMode[class])
			escalated++
			saved += before - 1
		}
	}
	plan = make([]rhsLock, 0, len(modes))
	for res, m := range modes {
		plan = append(plan, rhsLock{res, m})
	}
	sort.Slice(plan, func(i, j int) bool {
		a, b := plan[i].res, plan[j].res
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.ID < b.ID
	})
	return plan, escalated, saved
}

// dedupeResources sorts the plan and compacts duplicates in place —
// no scratch map, no allocation beyond the caller's slice (the old
// per-call map showed up in lock-heavy memory profiles).
func dedupeResources(rs []lock.Resource) []lock.Resource {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Class != rs[j].Class {
			return rs[i].Class < rs[j].Class
		}
		return rs[i].ID < rs[j].ID
	})
	out := rs[:0]
	for _, r := range rs {
		if len(out) == 0 || out[len(out)-1] != r {
			out = append(out, r)
		}
	}
	return out
}

// escalateResources collapses classes holding more than threshold
// tuple-level entries in the sorted, deduped plan to one
// relation-level resource each. A relation-level lock conflicts with
// every tuple lock of the class (and vice versa, via intention marks),
// so the escalated plan is strictly more conservative — never less
// safe, possibly less concurrent. Returns the rewritten plan, the
// number of classes escalated, and the lock acquisitions avoided.
func escalateResources(rs []lock.Resource, threshold int) ([]lock.Resource, int, int) {
	out := rs[:0]
	escalated, saved := 0, 0
	for i := 0; i < len(rs); {
		j := i
		for j < len(rs) && rs[j].Class == rs[i].Class {
			j++
		}
		// RelationLevel (ID 0) sorts first within the class group.
		hasRel := rs[i].ID == lock.RelationLevel
		tuples := j - i
		if hasRel {
			tuples--
		}
		if tuples > threshold {
			out = append(out, lock.Relation(rs[i].Class))
			escalated++
			before := tuples
			if hasRel {
				before++
			}
			saved += before - 1
		} else {
			out = append(out, rs[i:j]...)
		}
		i = j
	}
	return out, escalated, saved
}
