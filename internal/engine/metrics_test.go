package engine

import (
	"sync/atomic"
	"testing"

	"pdps/internal/lock"
	"pdps/internal/obs"
)

// TestSnapshotDuringParallelRun hammers the metrics snapshot (and the
// PipelineStats view over it) from a background goroutine while a
// contended parallel run is in flight. Under -race this pins the fix
// for the old data race: the run counters and pipeline gauges were
// plain ints read while workers ran; they are now atomic obs series.
func TestSnapshotDuringParallelRun(t *testing.T) {
	prog := pipelineProgram(8, 4)
	e, err := NewParallel(prog, lock.SchemeRcRaWa, Options{Np: 8})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			s := e.Metrics().Snapshot()
			if s.Counter("engine_aborts_total") < 0 {
				t.Error("negative abort count")
				return
			}
			_ = e.PipelineStats()
			_ = e.LockStats()
		}
	}()

	res, err := e.Run()
	stop.Store(true)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 * 4; res.Firings != want {
		t.Fatalf("firings = %d, want %d", res.Firings, want)
	}

	// The final snapshot must agree with the run summary.
	s := e.Metrics().Snapshot()
	if got := s.Counter("engine_commits_total"); got != int64(res.Firings) {
		t.Errorf("engine_commits_total = %d, want %d", got, res.Firings)
	}
	if got := s.Counter("engine_aborts_total"); got != int64(res.Aborts) {
		t.Errorf("engine_aborts_total = %d, want %d", got, res.Aborts)
	}
	if got := s.Counter("lock_txns_total"); got < int64(res.Firings) {
		t.Errorf("lock_txns_total = %d, want >= %d", got, res.Firings)
	}
	// Every commit grants at least one Wa or Ra lock in this workload.
	var acquired int64
	for _, mode := range []string{"Rc", "Ra", "Wa"} {
		acquired += s.Counter("lock_acquires_total", obs.L("mode", mode))
	}
	if acquired == 0 {
		t.Error("no lock acquisitions recorded")
	}
	// Per-rule commit counters must sum to the total.
	var ruleCommits int64
	for _, p := range s.Counters {
		if p.Name == "rule_commits_total" {
			ruleCommits += p.Value
		}
	}
	if ruleCommits != int64(res.Firings) {
		t.Errorf("sum of rule_commits_total = %d, want %d", ruleCommits, res.Firings)
	}
}

// TestSharedRegistryKeepsResultsPerEngine pins the split between the
// two tallies: a registry shared via Options.Metrics aggregates
// commits across engines, while each engine's Result (and its
// MaxFirings accounting) must count only its own run.
func TestSharedRegistryKeepsResultsPerEngine(t *testing.T) {
	reg := obs.NewRegistry()
	total := 0
	for i := 0; i < 2; i++ {
		e, err := NewSingle(counterProgram(5), Options{Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Firings != 5 {
			t.Fatalf("run %d: firings = %d, want 5 (leaked from shared registry?)", i, res.Firings)
		}
		total += res.Firings
	}
	if got := reg.Snapshot().Counter("engine_commits_total"); got != int64(total) {
		t.Fatalf("shared engine_commits_total = %d, want %d", got, total)
	}
	// The limit must also be per-engine: a third run with MaxFirings 3
	// must stop at 3 even though the shared series is already at 10.
	e, err := NewSingle(counterProgram(5), Options{Metrics: reg, MaxFirings: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 3 || !res.LimitHit {
		t.Fatalf("limited run: firings = %d limitHit = %v, want 3 true", res.Firings, res.LimitHit)
	}
}

// TestSerialEngineMetrics checks the serial engines feed the same
// series: commits, cycles, match updates and per-class wm traffic.
func TestSerialEngineMetrics(t *testing.T) {
	e, err := NewSingle(counterProgram(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := e.Metrics().Snapshot()
	if got := s.Counter("engine_commits_total"); got != int64(res.Firings) {
		t.Errorf("engine_commits_total = %d, want %d", got, res.Firings)
	}
	if got := s.Counter("engine_cycles_total"); got != int64(res.Cycles) {
		t.Errorf("engine_cycles_total = %d, want %d", got, res.Cycles)
	}
	if got := s.Counter("match_updates_total"); got == 0 {
		t.Error("no match updates recorded")
	}
	if got := s.Counter("wm_writes_total", obs.L("class", "counter")); got == 0 {
		t.Error("no wm writes recorded for class counter")
	}
	if _, ok := s.Histogram("engine_commit_apply_ns"); !ok {
		t.Error("engine_commit_apply_ns missing from snapshot")
	}
}
