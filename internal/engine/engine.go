// Package engine implements the production-system interpreters of the
// paper: the single execution thread mechanism (Section 3.1), the
// multiple-thread dynamic approach — transactional rule firing by
// goroutine workers under a lock manager, with commit-time victim
// aborts (Sections 4.2–4.3) — and the multiple-thread static approach
// based on pre-execution interference analysis (Section 4.1,
// Theorem 1). All engines record their execution in a trace log whose
// commit subsequence can be checked against the single-thread
// semantics (Definition 3.2).
package engine

import (
	"errors"
	"fmt"
	"time"

	"pdps/internal/cr"
	"pdps/internal/lock"
	"pdps/internal/match"
	"pdps/internal/obs"
	"pdps/internal/rete"
	"pdps/internal/sched"
	"pdps/internal/storage"
	"pdps/internal/trace"
	"pdps/internal/treat"
	"pdps/internal/wm"
)

// InitialWME describes one tuple of the program's initial working
// memory.
type InitialWME struct {
	Class string
	Attrs map[string]wm.Value
}

// Program is a complete production-system program: rules plus initial
// working memory.
type Program struct {
	Rules []*match.Rule
	WMEs  []InitialWME
}

// AbortPolicy selects how the dynamic engine treats Rc holders that
// conflict with a committing writer (Section 4.3, rule (ii)).
type AbortPolicy uint8

const (
	// AbortAlways unconditionally aborts every conflicting Rc holder —
	// the paper's base rule (ii).
	AbortAlways AbortPolicy = iota
	// AbortReevaluate re-evaluates the victim's condition first and
	// spares it when the writer's update left its instantiation intact —
	// the paper's noted alternative, "at the expense of increased
	// overhead".
	AbortReevaluate
)

// String names the policy.
func (p AbortPolicy) String() string {
	if p == AbortAlways {
		return "always"
	}
	return "reevaluate"
}

// Options configures an engine. The zero value selects Rete matching,
// the LEX strategy, and a 10000-firing safety bound.
type Options struct {
	// Matcher selects the match algorithm: "rete" (default: hashed
	// memories, cost-ordered joins and beta-prefix sharing), "treat",
	// "naive", "rete-src" (Rete compiling joins in rule-source order —
	// the pre-planner network kept for the E21 experiments), or
	// "rete-linear" (Rete without hashed memories — the unindexed
	// baseline kept for experiments and oracle checks).
	Matcher string
	// AdaptiveRete enables live replanning in the "rete" matcher: at
	// each conflict-set refresh the network compares every rule's plan
	// cost under observed cardinalities and fanouts against the best
	// alternative, and recompiles chains that fall behind by the
	// threshold (DESIGN.md §15). Deterministic under detsched replay.
	AdaptiveRete bool
	// MatchShards, when above 1, enables intra-phase match parallelism
	// (Section 2): rules are partitioned across that many matcher
	// shards whose updates run concurrently.
	MatchShards int
	// Strategy is the conflict-resolution strategy; nil means LEX.
	Strategy cr.Strategy
	// MaxFirings bounds the number of commits; 0 means 10000. When the
	// bound is hit the run stops with Result.LimitHit set.
	MaxFirings int
	// Np is the worker (processor) count for parallel engines; 0 means 4.
	Np int
	// AbortPolicy selects victim handling in the dynamic engine.
	AbortPolicy AbortPolicy
	// Deadlock selects the lock manager's deadlock policy for the
	// dynamic engine: detection (default), wound-wait or wait-die.
	Deadlock lock.DeadlockPolicy
	// LockShards sets the dynamic engine's lock-table shard count;
	// values below 1 mean lock.DefaultShards.
	LockShards int
	// HybridElision enables the hybrid static/dynamic consistency layer
	// in the Parallel engine: a firing whose rule statically interferes
	// with no rule currently in flight (Section 4.1, Theorem 1) skips
	// the lock manager and goes straight to the committer, whose
	// conflict-set validation stays as the backstop.
	HybridElision bool
	// LockEscalation, when above 0, escalates a firing's tuple-level
	// lock plan to a single relation-level lock whenever it would take
	// more than this many tuple locks in one class — the hierarchical
	// class-granularity locking of multi-granularity schemes, collapsing
	// O(tuples) lock-table operations into O(classes). 0 disables.
	LockEscalation int
	// CommitBatch, when above 1, lets the Parallel committer apply up to
	// that many firings before refreshing the conflict set and
	// re-dispatching — group commit. The refresh always runs once the
	// event queue drains, so batching changes scheduling granularity,
	// never the final state. Values below 1 mean 1 (refresh per firing).
	CommitBatch int
	// Verify recomputes the rule's matches from scratch against the
	// shared store at every commit and fails the run if the committing
	// instantiation is not active — a runtime check of the semantic
	// consistency condition.
	Verify bool
	// RuleDelay simulates per-rule action cost (Section 5's execution
	// times) by sleeping inside the firing.
	RuleDelay map[string]time.Duration
	// CondDelay simulates per-rule condition-evaluation cost: the
	// dynamic engine sleeps after acquiring the Rc locks and before
	// requesting the Ra/Wa locks, widening the window in which Rc
	// locks are held alone (the window Figures 4.3–4.4 reason about).
	CondDelay map[string]time.Duration
	// Clock supplies time to the engine: abort-backoff timers, the
	// simulated CondDelay/RuleDelay costs and latency measurement all
	// go through it. Nil means the wall clock (sched.Real); inject
	// sched.Immediate to collapse every delay in tests.
	Clock sched.Clock
	// Sched, when non-nil, runs the dynamic engine under a
	// deterministic cooperative scheduler: all engine goroutines become
	// controlled tasks, lock waits and backoff timers are virtualised,
	// and the interleaving is decided by the controller's policy.
	// Engine.Run must then be called from inside the controller's Run.
	// Sched overrides Clock.
	Sched sched.Controller
	// Metrics is the obs registry every layer of the engine records
	// into (lock manager, committer, matcher, working memory). Nil
	// means a fresh registry per engine; pass a shared one to aggregate
	// several engines into one snapshot.
	Metrics *obs.Registry
	// Log receives events; nil means a fresh log.
	Log *trace.Log
	// Storage, when non-nil, is the durability backend: every committed
	// delta is appended as a storage record (rule, instantiation,
	// matched-WME fingerprints, delta) and a commit is acknowledged to
	// its firing only after a Sync covers it. Serial engines sync per
	// commit; the Parallel committer syncs once per group, amortizing
	// the fsync across CommitBatch firings exactly like the conflict-set
	// refresh. The engine does not close the backend — the caller owns
	// its lifecycle. See internal/storage.
	Storage storage.Backend
	// Restore, when non-nil, seeds the engine's working memory with a
	// recovered store (from Backend.Recover) instead of building a
	// fresh one; Program.WMEs are still inserted on top, so resuming
	// callers normally clear them. The engine takes ownership of the
	// store.
	Restore *wm.Store
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Matcher == "" {
		out.Matcher = "rete"
	}
	if out.Strategy == nil {
		out.Strategy = cr.LEX{}
	}
	if out.MaxFirings == 0 {
		out.MaxFirings = 10000
	}
	if out.Np == 0 {
		out.Np = 4
	}
	if out.CommitBatch < 1 {
		out.CommitBatch = 1
	}
	if out.Sched != nil {
		out.Clock = out.Sched
	} else if out.Clock == nil {
		out.Clock = sched.Real{}
	}
	if out.Metrics == nil {
		out.Metrics = obs.NewRegistry()
	}
	if out.Log == nil {
		out.Log = trace.New()
	}
	return out
}

// ErrInconsistent is returned when Verify detects a commit of an
// inactive instantiation — a violation of Definition 3.2.
var ErrInconsistent = errors.New("engine: semantic consistency violation")

// Result summarises a run.
type Result struct {
	// Firings is the number of committed productions.
	Firings int
	// Aborts counts aborted executions (deadlock or Rc–Wa victims).
	Aborts int
	// Skips counts dispatched instantiations found stale before
	// execution.
	Skips int
	// Cycles counts recognize-act cycles (single-thread) or dispatch
	// rounds (parallel).
	Cycles int
	// Halted reports that a halt action stopped the run.
	Halted bool
	// LimitHit reports that MaxFirings stopped the run.
	LimitHit bool
	// Log is the event log of the run.
	Log *trace.Log
	// Store is the final working memory.
	Store *wm.Store
}

// newMatcher builds the selected matcher, optionally sharded for
// intra-phase match parallelism. adaptive enables live replanning and
// only applies to "rete"; under sharding every shard's network
// replans independently (each rule lives in exactly one shard).
func newMatcher(name string, shards int, adaptive bool) (match.Matcher, error) {
	factory, err := matcherFactory(name, adaptive)
	if err != nil {
		return nil, err
	}
	if shards > 1 {
		return match.NewSharded(shards, factory), nil
	}
	return factory(), nil
}

func matcherFactory(name string, adaptive bool) (func() match.Matcher, error) {
	switch name {
	case "rete":
		return func() match.Matcher {
			n := rete.New()
			n.SetAdaptive(adaptive)
			return n
		}, nil
	case "rete-src":
		return func() match.Matcher { return rete.NewSourceOrder() }, nil
	case "rete-linear":
		return func() match.Matcher { return rete.NewLinear() }, nil
	case "treat":
		return func() match.Matcher { return treat.New() }, nil
	case "naive":
		return func() match.Matcher { return match.NewNaive() }, nil
	}
	return nil, fmt.Errorf("engine: unknown matcher %q", name)
}

// load builds the store and matcher for a program: rules first, then
// the initial working memory. Both are wired into the options'
// metrics registry before the first insert, so even the initial load
// is observable.
func load(p Program, o Options) (*wm.Store, match.Matcher, error) {
	inner, err := newMatcher(o.Matcher, o.MatchShards, o.AdaptiveRete)
	if err != nil {
		return nil, nil, err
	}
	// Matchers with internal instrumentation (Rete's index probe/scan
	// counters, the sharded merge histogram) wire into the shared
	// registry; match.Instrument below adds the generic op timings.
	if sm, ok := inner.(interface{ SetMetrics(*obs.Registry) }); ok {
		sm.SetMetrics(o.Metrics)
	}
	for _, r := range p.Rules {
		if err := inner.AddRule(r); err != nil {
			return nil, nil, err
		}
	}
	m := match.Instrument(inner, o.Metrics, o.Clock)
	store := o.Restore
	if store == nil {
		store = wm.NewStore()
	}
	store.SetMetrics(o.Metrics)
	// A restored store's WMEs enter the match network exactly like
	// initial working memory, so recovery resumes with the conflict
	// set the surviving state implies.
	for _, w := range store.All() {
		m.Insert(w)
	}
	for _, iw := range p.WMEs {
		m.Insert(store.Insert(iw.Class, iw.Attrs))
	}
	return store, m, nil
}

// fingerprints renders the matched WMEs' contents for the trace log.
func fingerprints(in *match.Instantiation) []string {
	out := make([]string, len(in.WMEs))
	for i, w := range in.WMEs {
		out[i] = w.String()
	}
	return out
}

// verifyActive recomputes the rule's instantiations against the store
// and reports whether the instantiation is genuinely active.
func verifyActive(store *wm.Store, in *match.Instantiation) bool {
	for _, fresh := range match.MatchRule(store, in.Rule) {
		if fresh.Key() == in.Key() {
			return true
		}
	}
	return false
}
