package engine

import (
	"fmt"
	"testing"

	"pdps/internal/lock"
	"pdps/internal/match"
	"pdps/internal/wm"
)

// pipelineRulesFor builds the advance/finish rules of one pipeline
// over the given class (cf. pipelineProgram, which hard-codes "part").
func pipelineRulesFor(cls string, stages int) []*match.Rule {
	var rules []*match.Rule
	for s := 0; s < stages-1; s++ {
		rules = append(rules, &match.Rule{
			Name: fmt.Sprintf("advance-%s-%d", cls, s),
			Conditions: []match.Condition{
				{Class: cls, Tests: []match.AttrTest{
					{Attr: "stage", Op: match.OpEq, Const: wm.Int(int64(s))},
				}},
			},
			Actions: []match.Action{
				{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
					{Attr: "stage", Expr: match.ConstExpr{Val: wm.Int(int64(s + 1))}},
				}},
			},
		})
	}
	rules = append(rules, &match.Rule{
		Name: "finish-" + cls,
		Conditions: []match.Condition{
			{Class: cls, Tests: []match.AttrTest{
				{Attr: "stage", Op: match.OpEq, Const: wm.Int(int64(stages - 1))},
			}},
		},
		Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
	})
	return rules
}

// lowConflictProgram builds nClasses independent pipelines: class ci's
// parts move through stages 0..stages-1 and are removed at the end.
// Instantiations of different classes touch disjoint WMEs and disjoint
// lock resources, so under the paper's model their firings are fully
// parallel — any residual serialization is engine overhead.
func lowConflictProgram(classes, parts, stages int) Program {
	p := Program{}
	for c := 0; c < classes; c++ {
		cls := fmt.Sprintf("part%d", c)
		p.Rules = append(p.Rules, pipelineRulesFor(cls, stages)...)
		for i := 0; i < parts; i++ {
			p.WMEs = append(p.WMEs, InitialWME{Class: cls, Attrs: attrs("stage", 0, "id", i)})
		}
	}
	return p
}

// BenchmarkParallelLowConflict measures dynamic-engine throughput on
// the low-conflict workload across worker counts. The workload has no
// Rc/Ra/Wa conflicts between classes, so ideally ns/op falls as Np
// rises; the gap from that ideal is software-lock contention (the
// overhead Section 5's speed-up model does not charge for).
func BenchmarkParallelLowConflict(b *testing.B) {
	const classes, parts, stages = 8, 8, 4
	want := classes * parts * stages
	for _, scheme := range []lock.Scheme{lock.Scheme2PL, lock.SchemeRcRaWa} {
		for _, np := range []int{1, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/np=%d", scheme, np), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					prog := lowConflictProgram(classes, parts, stages)
					e, err := NewParallel(prog, scheme, Options{Np: np})
					if err != nil {
						b.Fatal(err)
					}
					res, err := e.Run()
					if err != nil {
						b.Fatal(err)
					}
					if res.Firings != want {
						b.Fatalf("firings = %d, want %d", res.Firings, want)
					}
				}
				b.ReportMetric(float64(want)*float64(b.N)/b.Elapsed().Seconds(), "firings/s")
			})
		}
	}
}

// BenchmarkHybridElision measures the hybrid consistency layer against
// the plain locked path on the pairwise non-interfering workload where
// every firing elides, and on the fully-conflicting counter where every
// firing falls back — the second case bounds the cost of the census
// check itself. The plain/elision-hot pair is what `make bench-compare`
// tracks across commits (EXPERIMENTS.md E18).
func BenchmarkHybridElision(b *testing.B) {
	const rules, steps = 16, 8
	cases := []struct {
		name string
		prog func() Program
		want int
		opts Options
	}{
		{"low-conflict/plain", func() Program { return independentProgram(rules, steps) },
			rules * steps, Options{Np: 8}},
		{"low-conflict/hybrid", func() Program { return independentProgram(rules, steps) },
			rules * steps, Options{Np: 8, HybridElision: true, CommitBatch: 8}},
		{"full-conflict/plain", func() Program { return counterProgram(12) },
			12, Options{Np: 8}},
		{"full-conflict/hybrid", func() Program { return counterProgram(12) },
			12, Options{Np: 8, HybridElision: true, CommitBatch: 8}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := NewParallel(tc.prog(), lock.SchemeRcRaWa, tc.opts)
				if err != nil {
					b.Fatal(err)
				}
				res, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				if res.Firings != tc.want {
					b.Fatalf("firings = %d, want %d", res.Firings, tc.want)
				}
			}
			b.ReportMetric(float64(tc.want)*float64(b.N)/b.Elapsed().Seconds(), "firings/s")
		})
	}
}
