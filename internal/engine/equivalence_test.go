package engine

import (
	"fmt"
	"sort"
	"testing"

	"pdps/internal/lock"
	"pdps/internal/match"
	"pdps/internal/wm"
)

// wmFingerprint returns the working memory's content multiset,
// independent of IDs and time tags.
func wmFingerprint(s *wm.Store) []string {
	var out []string
	for _, w := range s.All() {
		out = append(out, w.String())
	}
	sort.Strings(out)
	return out
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// confluentPrograms are workloads whose final working memory is
// independent of the execution order (every valid sequence converges).
func confluentPrograms() map[string]func() Program {
	return map[string]func() Program{
		"pipeline":  func() Program { return pipelineProgram(6, 4) },
		"tally":     func() Program { return tallyProgram(4, 3) },
		"counter":   func() Program { return counterProgram(7) },
		"two-class": twoClassProgram,
	}
}

func twoClassProgram() Program {
	mk := func(name, cls string) *match.Rule {
		return &match.Rule{
			Name: name,
			Conditions: []match.Condition{
				{Class: cls, Tests: []match.AttrTest{{Attr: "v", Op: match.OpGt, Const: wm.Int(0)}}},
			},
			Actions: []match.Action{
				{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
					{Attr: "v", Expr: match.ConstExpr{Val: wm.Int(0)}}}},
			},
		}
	}
	p := Program{Rules: []*match.Rule{mk("za", "a"), mk("zb", "b")}}
	for i := 0; i < 5; i++ {
		p.WMEs = append(p.WMEs,
			InitialWME{Class: "a", Attrs: attrs("v", i+1, "id", i)},
			InitialWME{Class: "b", Attrs: attrs("v", i+1, "id", i)},
		)
	}
	return p
}

// TestEngineEquivalenceOnConfluentWorkloads runs every engine (and
// every matcher for the single engine) on order-independent workloads
// and requires identical final working-memory contents — the
// observable consequence of semantic consistency on these programs.
func TestEngineEquivalenceOnConfluentWorkloads(t *testing.T) {
	for name, mk := range confluentPrograms() {
		t.Run(name, func(t *testing.T) {
			var want []string
			runAndCompare := func(label string, eng interface {
				Run() (Result, error)
				Store() *wm.Store
			}, prog Program) {
				t.Helper()
				res, err := eng.Run()
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if res.LimitHit {
					t.Fatalf("%s: hit firing limit", label)
				}
				if err := CheckTrace(prog, res.Log.Commits()); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				got := wmFingerprint(eng.Store())
				if want == nil {
					want = got
					return
				}
				if !equal(got, want) {
					t.Fatalf("%s: final WM differs\n got: %v\nwant: %v", label, got, want)
				}
			}

			for _, matcher := range []string{"rete", "treat", "naive"} {
				prog := mk()
				e, err := NewSingle(prog, Options{Matcher: matcher})
				if err != nil {
					t.Fatal(err)
				}
				runAndCompare("single/"+matcher, e, prog)
			}
			for _, scheme := range []lock.Scheme{lock.Scheme2PL, lock.SchemeRcRaWa} {
				for np := 1; np <= 4; np += 3 {
					prog := mk()
					e, err := NewParallel(prog, scheme, Options{Np: np})
					if err != nil {
						t.Fatal(err)
					}
					runAndCompare(fmt.Sprintf("parallel/%v/np%d", scheme, np), e, prog)
				}
			}
			prog := mk()
			e, err := NewStatic(prog, Options{Np: 4})
			if err != nil {
				t.Fatal(err)
			}
			runAndCompare("static", e, prog)
		})
	}
}
