package engine

import (
	"errors"
	"testing"

	"pdps/internal/match"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// eatProgram holds n content-identical tuples and one rule consuming
// one per firing. Because WME fingerprints exclude identity (ID and
// time tag), every active instantiation of "eat" carries the same
// fingerprint, so the checker must choose between them — the
// backtracking case.
func eatProgram(n int) Program {
	p := Program{
		Rules: []*match.Rule{{
			Name: "eat",
			Conditions: []match.Condition{
				{Class: "a", Tests: []match.AttrTest{{Attr: "v", Op: match.OpEq, Const: wm.Int(1)}}},
			},
			Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
		}},
	}
	for i := 0; i < n; i++ {
		p.WMEs = append(p.WMEs, InitialWME{Class: "a", Attrs: attrs("v", 1)})
	}
	return p
}

// chainProgram: "first" consumes the seed and creates t; "second"
// consumes t. Only the order first;second is a single-thread execution.
func chainProgram() Program {
	first := &match.Rule{
		Name: "first",
		Conditions: []match.Condition{
			{Class: "s", Tests: []match.AttrTest{{Attr: "on", Op: match.OpEq, Const: wm.Bool(true)}}},
		},
		Actions: []match.Action{
			{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
				{Attr: "on", Expr: match.ConstExpr{Val: wm.Bool(false)}}}},
			{Kind: match.ActMake, Class: "t", Assigns: []match.AttrAssign{
				{Attr: "done", Expr: match.ConstExpr{Val: wm.Bool(true)}}}},
		},
	}
	second := &match.Rule{
		Name: "second",
		Conditions: []match.Condition{
			{Class: "t", Tests: []match.AttrTest{{Attr: "done", Op: match.OpEq, Const: wm.Bool(true)}}},
		},
		Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
	}
	return Program{
		Rules: []*match.Rule{first, second},
		WMEs:  []InitialWME{{Class: "s", Attrs: attrs("on", true)}},
	}
}

func commit(rule string, wmes ...string) trace.Event {
	return trace.Event{Kind: trace.KindCommit, Rule: rule, WMEs: wmes}
}

// TestCheckTraceBacktracking is the table-driven oracle test: valid
// traces with duplicate fingerprints must be accepted (the checker
// resolves the ambiguity, backtracking where a trial dead-ends), and
// inconsistent traces must be rejected with ErrInconsistent.
func TestCheckTraceBacktracking(t *testing.T) {
	cases := []struct {
		name    string
		prog    Program
		commits []trace.Event
		wantOK  bool
	}{
		{
			name:    "empty trace is trivially consistent",
			prog:    eatProgram(2),
			commits: nil,
			wantOK:  true,
		},
		{
			name: "duplicate fingerprints, both consumed",
			prog: eatProgram(2),
			commits: []trace.Event{
				commit("eat", "(a ^v 1)"),
				commit("eat", "(a ^v 1)"),
			},
			wantOK: true,
		},
		{
			name: "three-way duplicates, partial consumption",
			prog: eatProgram(3),
			commits: []trace.Event{
				commit("eat", "(a ^v 1)"),
				commit("eat", "(a ^v 1)"),
			},
			wantOK: true,
		},
		{
			name: "over-consumption rejected",
			prog: eatProgram(2),
			commits: []trace.Event{
				commit("eat", "(a ^v 1)"),
				commit("eat", "(a ^v 1)"),
				commit("eat", "(a ^v 1)"),
			},
			wantOK: false,
		},
		{
			name: "deep duplicates with bogus last step exhaust every branch",
			prog: eatProgram(3),
			commits: []trace.Event{
				commit("eat", "(a ^v 1)"),
				commit("eat", "(a ^v 1)"),
				commit("eat", "(a ^v 2)"),
			},
			wantOK: false,
		},
		{
			name: "causal chain in order",
			prog: chainProgram(),
			commits: []trace.Event{
				commit("first", "(s ^on true)"),
				commit("second", "(t ^done true)"),
			},
			wantOK: true,
		},
		{
			name: "effect before cause rejected",
			prog: chainProgram(),
			commits: []trace.Event{
				commit("second", "(t ^done true)"),
				commit("first", "(s ^on true)"),
			},
			wantOK: false,
		},
		{
			name: "bogus fingerprint rejected",
			prog: chainProgram(),
			commits: []trace.Event{
				commit("first", "(s ^on maybe)"),
			},
			wantOK: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckTrace(tc.prog, tc.commits)
			if tc.wantOK && err != nil {
				t.Fatalf("consistent trace rejected: %v", err)
			}
			if !tc.wantOK {
				if err == nil {
					t.Fatal("inconsistent trace accepted")
				}
				if !errors.Is(err, ErrInconsistent) {
					t.Fatalf("rejection is not ErrInconsistent: %v", err)
				}
			}
		})
	}
}

// TestCheckTraceUnknownRule: a trace committing a rule the program
// does not define is an error, not a mere inconsistency.
func TestCheckTraceUnknownRule(t *testing.T) {
	err := CheckTrace(eatProgram(1), []trace.Event{commit("ghost", "(a ^v 1)")})
	if err == nil || errors.Is(err, ErrInconsistent) {
		t.Fatalf("unknown rule: got %v, want a distinct error", err)
	}
}

// TestCheckTraceUndoRestoresStore: after a failed deep trial the
// checker must leave the replay store able to accept a different
// continuation — exercised by checking the same program and prefix
// with both a failing and a succeeding suffix, in both orders.
func TestCheckTraceUndoRestoresStore(t *testing.T) {
	prog := chainProgram()
	bad := []trace.Event{
		commit("first", "(s ^on true)"),
		commit("second", "(t ^done false)"),
	}
	good := []trace.Event{
		commit("first", "(s ^on true)"),
		commit("second", "(t ^done true)"),
	}
	if err := CheckTrace(prog, bad); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("bad suffix: got %v", err)
	}
	if err := CheckTrace(prog, good); err != nil {
		t.Fatalf("good suffix after failed check: %v", err)
	}
}
