package engine

import (
	"sync"
	"sync/atomic"

	"pdps/internal/obs"
)

// ruleSeries holds one rule's labeled metric handles.
type ruleSeries struct {
	commits  *obs.Counter
	aborts   *obs.Counter
	commitNS *obs.Histogram
}

// engineMetrics holds the engine layer's cached obs handles. The run
// counters (commits, aborts, skips, cycles) are atomics, so the Result
// summary and a live Snapshot can both be read race-free while workers
// run. Each tally is kept twice: the registry series (which may be
// shared across engines via Options.Metrics and then aggregates) and a
// private per-engine atomic that feeds Result and the MaxFirings
// limit, which must not see another engine's commits.
type engineMetrics struct {
	reg *obs.Registry

	runCommits atomic.Int64
	runAborts  atomic.Int64
	runSkips   atomic.Int64
	runCycles  atomic.Int64

	commits *obs.Counter
	aborts  *obs.Counter
	skips   *obs.Counter
	cycles  *obs.Counter
	retries *obs.Counter

	// commitNS is the fire→commit latency of successful parallel
	// firings; applyNS times the commit critical section itself (delta
	// apply + WAL + incremental re-match) in every engine.
	commitNS *obs.Histogram
	applyNS  *obs.Histogram
	// journalBatch is the size (adds+removes) of each conflict-set
	// change-journal batch the committer drains.
	journalBatch *obs.Histogram
	// refreshSnapshot and refreshDelta count which reconciliation
	// branch each refresh took: a full-membership rebuild versus the
	// O(|delta|) journal drain. A healthy incremental pipeline takes
	// the snapshot branch once (startup) and deltas thereafter.
	refreshSnapshot *obs.Counter
	refreshDelta    *obs.Counter

	// dispatchQ and submitQ gauge the parallel pipeline's two queues.
	dispatchQ *obs.Gauge
	submitQ   *obs.Gauge

	// elides counts firings that skipped the lock manager under
	// HybridElision; elideFallback counts firings that wanted to elide
	// but found an interfering rule in flight and took locks instead.
	elides        *obs.Counter
	elideFallback *obs.Counter
	// escalations counts lock plans collapsed to a relation-level lock
	// under LockEscalation; escalationSaved totals the tuple-level
	// acquisitions those escalations avoided.
	escalations     *obs.Counter
	escalationSaved *obs.Counter
	// commitBatch is the number of firings the committer applied between
	// consecutive conflict-set refreshes (group commit).
	commitBatch *obs.Histogram

	mu    sync.Mutex
	rules map[string]*ruleSeries
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	return &engineMetrics{
		reg:             reg,
		commits:         reg.Counter("engine_commits_total"),
		aborts:          reg.Counter("engine_aborts_total"),
		skips:           reg.Counter("engine_skips_total"),
		cycles:          reg.Counter("engine_cycles_total"),
		retries:         reg.Counter("engine_retries_total"),
		commitNS:        reg.Histogram("engine_commit_latency_ns", "ns"),
		applyNS:         reg.Histogram("engine_commit_apply_ns", "ns"),
		journalBatch:    reg.Histogram("engine_journal_batch_size", "changes"),
		refreshSnapshot: reg.Counter("engine_refresh_snapshot_total"),
		refreshDelta:    reg.Counter("engine_refresh_delta_total"),
		dispatchQ:       reg.Gauge("engine_dispatch_depth"),
		submitQ:         reg.Gauge("engine_submit_depth"),
		elides:          reg.Counter("engine_elide_total"),
		elideFallback:   reg.Counter("engine_elide_fallback_total"),
		escalations:     reg.Counter("lock_escalation_total"),
		escalationSaved: reg.Counter("lock_escalation_saved_locks_total"),
		commitBatch:     reg.Histogram("commit_batch_size", "firings"),
		rules:           make(map[string]*ruleSeries),
	}
}

func (em *engineMetrics) commitInc() { em.runCommits.Add(1); em.commits.Inc() }
func (em *engineMetrics) abortInc()  { em.runAborts.Add(1); em.aborts.Inc() }
func (em *engineMetrics) skipInc()   { em.runSkips.Add(1); em.skips.Inc() }
func (em *engineMetrics) cycleInc()  { em.runCycles.Add(1); em.cycles.Inc() }

// storageMetrics holds the durability layer's handles. They are
// registered only when Options.Storage is set — engines without a
// backend must not grow wal_* series (golden metrics snapshots pin
// the no-storage registry shape).
type storageMetrics struct {
	// appends counts records staged on the backend; fsyncs counts Sync
	// calls (the group-commit durability points).
	appends *obs.Counter
	fsyncs  *obs.Counter
	// fsyncNS times each Sync; groupSize is the number of appended
	// records each Sync made durable — the group-commit batch.
	fsyncNS   *obs.Histogram
	groupSize *obs.Histogram
	// checkpoints counts checkpoints the engine triggered;
	// checkpointNS times snapshot write + log prune.
	checkpoints  *obs.Counter
	checkpointNS *obs.Histogram
}

func newStorageMetrics(reg *obs.Registry) *storageMetrics {
	return &storageMetrics{
		appends:      reg.Counter("wal_append_total"),
		fsyncs:       reg.Counter("wal_fsync_total"),
		fsyncNS:      reg.Histogram("wal_fsync_ns", "ns"),
		groupSize:    reg.Histogram("wal_group_size", "records"),
		checkpoints:  reg.Counter("checkpoint_total"),
		checkpointNS: reg.Histogram("checkpoint_ns", "ns"),
	}
}

// rule returns the per-rule series, creating it on first use. Taken on
// commit/abort paths only, never inside a firing's lock section.
func (em *engineMetrics) rule(name string) *ruleSeries {
	em.mu.Lock()
	defer em.mu.Unlock()
	rs := em.rules[name]
	if rs == nil {
		rs = &ruleSeries{
			commits:  em.reg.Counter("rule_commits_total", obs.L("rule", name)),
			aborts:   em.reg.Counter("rule_aborts_total", obs.L("rule", name)),
			commitNS: em.reg.Histogram("rule_commit_latency_ns", "ns", obs.L("rule", name)),
		}
		em.rules[name] = rs
	}
	return rs
}
