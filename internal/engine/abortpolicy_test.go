package engine

import (
	"testing"
	"time"

	"pdps/internal/lock"
	"pdps/internal/match"
	"pdps/internal/wm"
)

// spareProgram: a slow reader holds a pure Rc on its matched "job"
// tuple (it writes only the slot class) while a fast producer makes a
// new job tuple — a relation-level Wa that conflicts with the reader's
// Rc without falsifying its condition.
func spareProgram() Program {
	reader := &match.Rule{
		Name: "reader",
		Conditions: []match.Condition{
			{Class: "job", Tests: []match.AttrTest{
				{Attr: "id", Op: match.OpEq, Const: wm.Int(1)},
			}},
			{Class: "slot", Tests: []match.AttrTest{
				{Attr: "used", Op: match.OpEq, Const: wm.Bool(false)},
			}},
		},
		Actions: []match.Action{{Kind: match.ActModify, CE: 1, Assigns: []match.AttrAssign{
			{Attr: "used", Expr: match.ConstExpr{Val: wm.Bool(true)}}}}},
	}
	producer := &match.Rule{
		Name: "producer",
		Conditions: []match.Condition{
			{Class: "seed", Tests: []match.AttrTest{
				{Attr: "fresh", Op: match.OpEq, Const: wm.Bool(true)},
			}},
		},
		Actions: []match.Action{
			{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
				{Attr: "fresh", Expr: match.ConstExpr{Val: wm.Bool(false)}}}},
			{Kind: match.ActMake, Class: "job", Assigns: []match.AttrAssign{
				{Attr: "id", Expr: match.ConstExpr{Val: wm.Int(99)}}}},
		},
	}
	return Program{
		Rules: []*match.Rule{reader, producer},
		WMEs: []InitialWME{
			{Class: "job", Attrs: attrs("id", 1)},
			{Class: "slot", Attrs: attrs("used", false)},
			{Class: "seed", Attrs: attrs("fresh", true)},
		},
	}
}

func runSpare(t *testing.T, policy AbortPolicy, seed int64) Result {
	t.Helper()
	// Virtual delays under the deterministic scheduler: the producer
	// commits at t=5ms while the reader sleeps until t=40ms, so on
	// every schedule the commit lands mid-action with the reader's Rc
	// locks held — the rule (ii) victim scenario, without wall-clock
	// racing.
	res, err := runUnderScheduler(t, spareProgram(), lock.SchemeRcRaWa, Options{
		Np:          2,
		AbortPolicy: policy,
		Verify:      true,
		RuleDelay:   map[string]time.Duration{"reader": 40 * time.Millisecond},
		CondDelay:   map[string]time.Duration{"producer": 5 * time.Millisecond},
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTrace(spareProgram(), res.Log.Commits()); err != nil {
		t.Fatal(err)
	}
	// Both rules commit exactly once in the end.
	if res.Firings != 2 {
		t.Fatalf("seed %d: firings = %d, want 2", seed, res.Firings)
	}
	return res
}

// TestAbortPolicyAlwaysKillsSurvivableVictim: under rule (ii) the
// reader is aborted by the producer's commit even though its condition
// still holds, and must re-run.
func TestAbortPolicyAlwaysKillsSurvivableVictim(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		res := runSpare(t, AbortAlways, seed)
		if res.Aborts == 0 {
			t.Fatalf("seed %d: expected the reader to be aborted at least once; trace: %v",
				seed, res.Log.Events())
		}
	}
}

// TestAbortPolicyReevaluateSparesSurvivableVictim: the alternative
// policy re-checks the victim's condition and spares it.
func TestAbortPolicyReevaluateSparesSurvivableVictim(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		res := runSpare(t, AbortReevaluate, seed)
		if res.Aborts != 0 {
			t.Fatalf("seed %d: reevaluate policy aborted a survivable victim %d times; trace: %v",
				seed, res.Aborts, res.Log.Events())
		}
	}
}
