package engine

import (
	"testing"
	"time"

	"pdps/internal/lock"
	"pdps/internal/match"
	"pdps/internal/sched"
	"pdps/internal/wm"
)

// runUnderScheduler executes the Parallel engine deterministically: the
// controller virtualises every sleep and lock wait, so the CondDelay /
// RuleDelay relationships hold exactly in virtual time and the run is a
// pure function of the seed — no wall-clock flakiness.
func runUnderScheduler(t *testing.T, prog Program, scheme lock.Scheme, opts Options, seed int64) (Result, error) {
	t.Helper()
	ctl := sched.NewDet(sched.NewRandom(seed))
	ctl.MaxSteps = 1 << 16
	opts.Sched = ctl
	e, err := NewParallel(prog, scheme, opts)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	var rerr error
	if serr := ctl.Run(func() { res, rerr = e.Run() }); serr != nil {
		t.Fatalf("schedule did not complete: %v", serr)
	}
	return res, rerr
}

// fig44Program is the circular Rc/Wa dependency of Figure 4.4.
func fig44Program() Program {
	mk := func(name, readClass, writeClass string) *match.Rule {
		return &match.Rule{
			Name: name,
			Conditions: []match.Condition{
				{Class: readClass, Tests: []match.AttrTest{{Attr: "hot", Op: match.OpEq, Const: wm.Bool(true)}}},
				{Class: writeClass, Tests: []match.AttrTest{{Attr: "hot", Op: match.OpEq, Const: wm.Bool(true)}}},
			},
			Actions: []match.Action{{Kind: match.ActModify, CE: 1, Assigns: []match.AttrAssign{
				{Attr: "hot", Expr: match.ConstExpr{Val: wm.Bool(false)}}}}},
		}
	}
	return Program{
		Rules: []*match.Rule{mk("pi", "q", "r"), mk("pj", "r", "q")},
		WMEs: []InitialWME{
			{Class: "q", Attrs: attrs("hot", true)},
			{Class: "r", Attrs: attrs("hot", true)},
		},
	}
}

// TestParallelDeadlockPolicies runs the Figure 4.4 scenario under 2PL
// with each deadlock policy; all must converge to exactly one commit
// with a consistent trace.
func TestParallelDeadlockPolicies(t *testing.T) {
	policies := []lock.DeadlockPolicy{
		lock.DeadlockDetect,
		lock.DeadlockWoundWait,
		lock.DeadlockWaitDie,
	}
	for _, policy := range policies {
		t.Run(policy.String(), func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				prog := fig44Program()
				res, err := runUnderScheduler(t, prog, lock.Scheme2PL, Options{
					Np:       2,
					Deadlock: policy,
					Verify:   true,
					// Equal virtual condition costs: both workers hold their
					// Rc locks at the same instant, forcing the cross-request.
					CondDelay: map[string]time.Duration{
						"pi": 5 * time.Millisecond, "pj": 5 * time.Millisecond,
					},
				}, seed)
				if err != nil {
					t.Fatal(err)
				}
				if res.Firings != 1 {
					t.Fatalf("seed %d: firings = %d, want 1\n%v", seed, res.Firings, res.Log.Events())
				}
				if err := CheckTrace(prog, res.Log.Commits()); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestParallelDeadlockPoliciesUnderLoad stresses each policy with the
// shared-counter workload: all must complete all firings consistently.
func TestParallelDeadlockPoliciesUnderLoad(t *testing.T) {
	policies := []lock.DeadlockPolicy{
		lock.DeadlockDetect,
		lock.DeadlockWoundWait,
		lock.DeadlockWaitDie,
	}
	for _, policy := range policies {
		t.Run(policy.String(), func(t *testing.T) {
			prog := tallyProgram(5, 3)
			e, err := NewParallel(prog, lock.Scheme2PL, Options{Np: 4, Deadlock: policy})
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Firings != 15 {
				t.Fatalf("firings = %d, want 15", res.Firings)
			}
			tally := e.Store().ByClass("tally")
			if !tally[0].Attr("n").Equal(wm.Int(15)) {
				t.Fatalf("tally = %v", tally[0])
			}
			if err := CheckTrace(prog, res.Log.Commits()); err != nil {
				t.Fatal(err)
			}
		})
	}
}
