package engine

import (
	"fmt"
	"io"

	"pdps/internal/match"
	"pdps/internal/obs"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// Session is an interactive single-thread interpreter: working memory
// can be mutated between firings (assert/retract), the conflict set
// inspected, and the recognize-act cycle stepped — the substrate for
// the psshell tool.
type Session struct {
	rt    *runtime
	rules []*match.Rule
}

// NewSession builds a session over the program.
func NewSession(p Program, opts Options) (*Session, error) {
	rt, err := newRuntime(p, opts)
	if err != nil {
		return nil, err
	}
	return &Session{rt: rt, rules: append([]*match.Rule(nil), p.Rules...)}, nil
}

// Store exposes the session's working memory. Mutate it only through
// the session so the matcher stays in sync.
func (s *Session) Store() *wm.Store { return s.rt.store }

// Metrics returns the session's metrics registry.
func (s *Session) Metrics() *obs.Registry { return s.rt.opts.Metrics }

// ConflictSet returns the current unfired instantiations.
func (s *Session) ConflictSet() []*match.Instantiation {
	return s.rt.candidates()
}

// AssertWME adds a tuple to working memory and updates the match state.
func (s *Session) AssertWME(class string, attrs map[string]wm.Value) *wm.WME {
	w := s.rt.store.Insert(class, attrs)
	s.rt.matcher.Insert(w)
	return w
}

// Retract removes the tuple with the given ID.
func (s *Session) Retract(id int64) error {
	w, ok := s.rt.store.Remove(id)
	if !ok {
		return fmt.Errorf("engine: no WME with id %d", id)
	}
	s.rt.matcher.Remove(w)
	return nil
}

// Step fires one production (selected by the session's strategy) and
// returns its rule name, or "" if the system is quiescent.
func (s *Session) Step() (string, error) {
	cands := s.rt.candidates()
	if len(cands) == 0 {
		return "", nil
	}
	in := s.rt.opts.Strategy.Select(cands)
	tx := s.rt.store.Begin()
	halt, err := match.ExecuteActions(in, tx)
	if err != nil {
		tx.Abort()
		return "", err
	}
	if err := s.rt.commit(in, tx, 0, halt); err != nil {
		return "", err
	}
	s.rt.syncStorage()
	return in.Rule.Name, s.rt.err
}

// Run fires up to max productions and returns how many fired.
func (s *Session) Run(max int) (int, error) {
	n := 0
	for n < max {
		name, err := s.Step()
		if err != nil {
			return n, err
		}
		if name == "" {
			return n, nil
		}
		n++
	}
	return n, nil
}

// Log returns the session's trace log.
func (s *Session) Log() *trace.Log { return s.rt.opts.Log }

// LoadSnapshot replaces the session's working memory with a snapshot
// and rebuilds the match state; refraction history is reset.
func (s *Session) LoadSnapshot(r io.Reader) error {
	store, err := wm.ReadSnapshot(r)
	if err != nil {
		return err
	}
	inner, err := newMatcher(s.rt.opts.Matcher, s.rt.opts.MatchShards, s.rt.opts.AdaptiveRete)
	if err != nil {
		return err
	}
	for _, rule := range s.rules {
		if err := inner.AddRule(rule); err != nil {
			return err
		}
	}
	m := match.Instrument(inner, s.rt.opts.Metrics, s.rt.opts.Clock)
	store.SetMetrics(s.rt.opts.Metrics)
	for _, w := range store.All() {
		m.Insert(w)
	}
	s.rt.store = store
	s.rt.matcher = m
	s.rt.fired = make(map[string]bool)
	return nil
}
