package engine

import (
	"fmt"
	"io"

	"pdps/internal/match"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// Session is an interactive single-thread interpreter: working memory
// can be mutated between firings (assert/retract), the conflict set
// inspected, and the recognize-act cycle stepped — the substrate for
// the psshell tool.
type Session struct {
	opts    Options
	rules   []*match.Rule
	store   *wm.Store
	matcher match.Matcher
	fired   map[string]bool
}

// NewSession builds a session over the program.
func NewSession(p Program, opts Options) (*Session, error) {
	o := opts.withDefaults()
	store, m, err := load(p, o)
	if err != nil {
		return nil, err
	}
	return &Session{
		opts:    o,
		rules:   append([]*match.Rule(nil), p.Rules...),
		store:   store,
		matcher: m,
		fired:   make(map[string]bool),
	}, nil
}

// Store exposes the session's working memory. Mutate it only through
// the session so the matcher stays in sync.
func (s *Session) Store() *wm.Store { return s.store }

// ConflictSet returns the current unfired instantiations.
func (s *Session) ConflictSet() []*match.Instantiation {
	var out []*match.Instantiation
	for _, in := range s.matcher.ConflictSet().All() {
		if !s.fired[in.Key()] {
			out = append(out, in)
		}
	}
	return out
}

// AssertWME adds a tuple to working memory and updates the match state.
func (s *Session) AssertWME(class string, attrs map[string]wm.Value) *wm.WME {
	w := s.store.Insert(class, attrs)
	s.matcher.Insert(w)
	return w
}

// Retract removes the tuple with the given ID.
func (s *Session) Retract(id int64) error {
	w, ok := s.store.Remove(id)
	if !ok {
		return fmt.Errorf("engine: no WME with id %d", id)
	}
	s.matcher.Remove(w)
	return nil
}

// Step fires one production (selected by the session's strategy) and
// returns its rule name, or "" if the system is quiescent.
func (s *Session) Step() (string, error) {
	cands := s.ConflictSet()
	if len(cands) == 0 {
		return "", nil
	}
	in := s.opts.Strategy.Select(cands)
	key := in.Key()
	s.fired[key] = true
	tx := s.store.Begin()
	halt, err := match.ExecuteActions(in, tx)
	if err != nil {
		tx.Abort()
		return "", err
	}
	delta, err := tx.Commit()
	if err != nil {
		return "", err
	}
	if err := s.opts.logDelta(delta); err != nil {
		return "", err
	}
	for _, w := range delta.Removes {
		s.matcher.Remove(w)
	}
	for _, w := range delta.Adds {
		s.matcher.Insert(w)
	}
	s.opts.Log.Append(trace.Event{Kind: trace.KindCommit, Rule: in.Rule.Name,
		Inst: key, WMEs: fingerprints(in)})
	if halt {
		return in.Rule.Name, nil
	}
	return in.Rule.Name, nil
}

// Run fires up to max productions and returns how many fired.
func (s *Session) Run(max int) (int, error) {
	n := 0
	for n < max {
		name, err := s.Step()
		if err != nil {
			return n, err
		}
		if name == "" {
			return n, nil
		}
		n++
	}
	return n, nil
}

// Log returns the session's trace log.
func (s *Session) Log() *trace.Log { return s.opts.Log }

// LoadSnapshot replaces the session's working memory with a snapshot
// and rebuilds the match state; refraction history is reset.
func (s *Session) LoadSnapshot(r io.Reader) error {
	store, err := wm.ReadSnapshot(r)
	if err != nil {
		return err
	}
	m, err := newMatcher(s.opts.Matcher, s.opts.MatchShards)
	if err != nil {
		return err
	}
	for _, rule := range s.rules {
		if err := m.AddRule(rule); err != nil {
			return err
		}
	}
	for _, w := range store.All() {
		m.Insert(w)
	}
	s.store = store
	s.matcher = m
	s.fired = make(map[string]bool)
	return nil
}
