package engine

import (
	"fmt"
	"testing"

	"pdps/internal/lock"
)

// TestEngineMatcherMatrix runs the full engines × matchers grid with
// semantic verification enabled on every confluent workload and
// requires every cell to converge to the same final working memory.
// The parallel cells include a sharded matcher, which rebuilds its
// conflict set per call and therefore exercises the committer's
// snapshot-reconcile dispatch path (the incremental matchers exercise
// the journal path).
func TestEngineMatcherMatrix(t *testing.T) {
	matchers := []struct {
		name   string
		opts   func(Options) Options
		single bool // usable by the serial engines too
	}{
		{"rete", func(o Options) Options { o.Matcher = "rete"; return o }, true},
		{"treat", func(o Options) Options { o.Matcher = "treat"; return o }, true},
		{"naive", func(o Options) Options { o.Matcher = "naive"; return o }, true},
		{"rete-sharded", func(o Options) Options { o.Matcher = "rete"; o.MatchShards = 2; return o }, false},
	}
	for name, mk := range confluentPrograms() {
		t.Run(name, func(t *testing.T) {
			var want []string
			check := func(label string, prog Program, res Result, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if res.LimitHit {
					t.Fatalf("%s: hit firing limit", label)
				}
				if err := CheckTrace(prog, res.Log.Commits()); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				got := wmFingerprint(res.Store)
				if want == nil {
					want = got
					return
				}
				if !equal(got, want) {
					t.Fatalf("%s: final WM differs\n got: %v\nwant: %v", label, got, want)
				}
			}
			for _, m := range matchers {
				opts := m.opts(Options{Verify: true})
				if m.single {
					prog := mk()
					e, err := NewSingle(prog, opts)
					if err != nil {
						t.Fatal(err)
					}
					res, err := e.Run()
					check("single/"+m.name, prog, res, err)

					prog = mk()
					st, err := NewStatic(prog, opts)
					if err != nil {
						t.Fatal(err)
					}
					res, err = st.Run()
					check("static/"+m.name, prog, res, err)
				}
				for _, scheme := range []lock.Scheme{lock.Scheme2PL, lock.SchemeRcRaWa} {
					prog := mk()
					popts := opts
					popts.Np = 8
					e, err := NewParallel(prog, scheme, popts)
					if err != nil {
						t.Fatal(err)
					}
					res, err := e.Run()
					check(fmt.Sprintf("parallel/%v/%s", scheme, m.name), prog, res, err)

					// Hybrid row: the same cell with lock elision, class-lock
					// escalation and group commit all enabled must converge to
					// the same final working memory.
					prog = mk()
					hopts := popts
					hopts.HybridElision = true
					hopts.LockEscalation = 2
					hopts.CommitBatch = 3
					h, err := NewParallel(prog, scheme, hopts)
					if err != nil {
						t.Fatal(err)
					}
					res, err = h.Run()
					check(fmt.Sprintf("hybrid/%v/%s", scheme, m.name), prog, res, err)
				}
			}
		})
	}
}

// TestParallelHighNpLowConflict floods the dynamic engine with a
// low-conflict workload at high Np, with semantic verification on.
// The per-class pipelines are independent, so the run must finish with
// the exact firing count, no error (in particular no ErrInconsistent)
// and no aborts, for every scheme and matcher.
func TestParallelHighNpLowConflict(t *testing.T) {
	const classes, parts, stages = 4, 4, 4
	wantFirings := classes * parts * stages
	for _, scheme := range []lock.Scheme{lock.Scheme2PL, lock.SchemeRcRaWa} {
		for _, matcher := range []string{"rete", "treat", "naive"} {
			label := fmt.Sprintf("%v/%s", scheme, matcher)
			prog := lowConflictProgram(classes, parts, stages)
			e, err := NewParallel(prog, scheme, Options{Np: 16, Matcher: matcher, Verify: true})
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if res.Firings != wantFirings {
				t.Fatalf("%s: firings = %d, want %d", label, res.Firings, wantFirings)
			}
			if res.Aborts != 0 {
				t.Fatalf("%s: aborts = %d, want 0 (workload is conflict-free)", label, res.Aborts)
			}
			if err := CheckTrace(prog, res.Log.Commits()); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			ps := e.PipelineStats()
			if ps.DispatchDepth != 0 || ps.SubmitDepth != 0 {
				t.Fatalf("%s: pipeline queues not drained: %+v", label, ps)
			}
		}
	}
}
