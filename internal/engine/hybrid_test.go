package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"pdps/internal/lock"
	"pdps/internal/match"
	"pdps/internal/wm"
)

// independentProgram mirrors workload.Independent (the engine package
// cannot import workload): n rules over n private classes, each
// stepping its own counter tuple `steps` times. Pairwise
// non-interfering, so under HybridElision every firing elides.
func independentProgram(n, steps int) Program {
	var p Program
	for r := 0; r < n; r++ {
		cls := fmt.Sprintf("cell%d", r)
		p.Rules = append(p.Rules, &match.Rule{
			Name: fmt.Sprintf("step%d", r),
			Conditions: []match.Condition{
				{Class: cls, Tests: []match.AttrTest{
					{Attr: "v", Op: match.OpEq, Var: "x"},
					{Attr: "v", Op: match.OpLt, Const: wm.Int(int64(steps))},
				}},
			},
			Actions: []match.Action{
				{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
					{Attr: "v", Expr: match.BinExpr{Op: match.ArithAdd,
						L: match.VarExpr{Name: "x"}, R: match.ConstExpr{Val: wm.Int(1)}}},
				}},
			},
		})
		p.WMEs = append(p.WMEs, InitialWME{Class: cls, Attrs: attrs("v", 0)})
	}
	return p
}

// fanInProgram builds one rule joining `fan` tuples of a single class
// and modifying them all — a lock plan of `fan` tuple locks in one
// class, the shape LockEscalation collapses.
func fanInProgram(fan int) Program {
	var conds []match.Condition
	var acts []match.Action
	for i := 0; i < fan; i++ {
		conds = append(conds, match.Condition{Class: "item", Tests: []match.AttrTest{
			{Attr: "slot", Op: match.OpEq, Const: wm.Int(int64(i))},
			{Attr: "done", Op: match.OpEq, Const: wm.Bool(false)},
		}})
		acts = append(acts, match.Action{Kind: match.ActModify, CE: i, Assigns: []match.AttrAssign{
			{Attr: "done", Expr: match.ConstExpr{Val: wm.Bool(true)}}}})
	}
	p := Program{Rules: []*match.Rule{{Name: "sweep", Conditions: conds, Actions: acts}}}
	for i := 0; i < fan; i++ {
		p.WMEs = append(p.WMEs, InitialWME{Class: "item", Attrs: attrs("slot", i, "done", false)})
	}
	return p
}

// counterValue reads the metric counter by name from the registry.
func counterValue(e *Parallel, name string) int64 {
	return e.Metrics().Counter(name).Value()
}

// TestHybridLowConflictElides runs the pairwise non-interfering
// workload with elision on: every firing must take the lock-free path
// (zero lock-manager traffic), commit the exact count, and still pass
// semantic verification and the trace oracle.
func TestHybridLowConflictElides(t *testing.T) {
	const n, steps = 6, 5
	for _, scheme := range []lock.Scheme{lock.Scheme2PL, lock.SchemeRcRaWa} {
		prog := independentProgram(n, steps)
		e, err := NewParallel(prog, scheme, Options{Np: 8, Verify: true, HybridElision: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.Firings != n*steps {
			t.Fatalf("%v: firings = %d, want %d", scheme, res.Firings, n*steps)
		}
		if res.Aborts != 0 {
			t.Fatalf("%v: aborts = %d, want 0", scheme, res.Aborts)
		}
		if err := CheckTrace(prog, res.Log.Commits()); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if got := counterValue(e, "engine_elide_fallback_total"); got != 0 {
			t.Fatalf("%v: fallbacks = %d, want 0 (no rules interfere)", scheme, got)
		}
		if got := counterValue(e, "engine_elide_total"); got != int64(res.Firings+res.Aborts+res.Skips) {
			t.Fatalf("%v: elides = %d, want %d (every firing is non-interfering)",
				scheme, got, res.Firings+res.Aborts+res.Skips)
		}
		if got := e.LockStats().Acquired; got != 0 {
			t.Fatalf("%v: lock manager saw %d grants; elided firings must not touch it", scheme, got)
		}
	}
}

// TestHybridFullConflictCorrect runs the fully conflicting counter
// workload with every hybrid knob on, across schemes and matchers: the
// committer's validation must keep the run consistent regardless of
// how often the census grants elision, and the final tally must be
// exact.
func TestHybridFullConflictCorrect(t *testing.T) {
	const parts = 7
	for _, scheme := range []lock.Scheme{lock.Scheme2PL, lock.SchemeRcRaWa} {
		for _, matcher := range []string{"rete", "treat"} {
			label := fmt.Sprintf("%v/%s", scheme, matcher)
			prog := counterProgram(parts)
			e, err := NewParallel(prog, scheme, Options{
				Np: 8, Matcher: matcher, Verify: true,
				HybridElision: true, LockEscalation: 2, CommitBatch: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if res.Firings != parts {
				t.Fatalf("%s: firings = %d, want %d", label, res.Firings, parts)
			}
			if err := CheckTrace(prog, res.Log.Commits()); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
		}
	}
}

// TestHybridSelfInterferenceAccounted checks the census against the
// one trap Theorem 1 sets: two simultaneous instances of the SAME
// writing rule interfere with each other (a rule with writes always
// self-interferes). With 12 parts enabling one remove rule the run
// must commit every part exactly once, and the census must account
// for every firing: each fire takes exactly one of the two paths.
func TestHybridSelfInterferenceAccounted(t *testing.T) {
	prog := pipelineProgram(12, 1) // 12 parts, one finish rule class-wide
	e, err := NewParallel(prog, lock.SchemeRcRaWa, Options{Np: 8, Verify: true, HybridElision: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 12 {
		t.Fatalf("firings = %d, want 12", res.Firings)
	}
	if err := CheckTrace(prog, res.Log.Commits()); err != nil {
		t.Fatal(err)
	}
	elides := counterValue(e, "engine_elide_total")
	fallbacks := counterValue(e, "engine_elide_fallback_total")
	if elides+fallbacks != int64(res.Firings+res.Skips+res.Aborts) {
		t.Fatalf("census leak: elides %d + fallbacks %d != outcomes %d",
			elides, fallbacks, res.Firings+res.Skips+res.Aborts)
	}
}

// TestInflightTableRace hammers the register-then-check protocol from
// many goroutines (run with -race): two interfering rules must never
// both hold an elision grant at the same instant, because each
// registers before checking and therefore sees the other.
func TestInflightTableRace(t *testing.T) {
	ruleA := &match.Rule{Name: "wa", Conditions: []match.Condition{
		{Class: "x", Tests: []match.AttrTest{{Attr: "v", Op: match.OpEq, Var: "n"}}}},
		Actions: []match.Action{{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
			{Attr: "v", Expr: match.ConstExpr{Val: wm.Int(1)}}}}}}
	ruleB := &match.Rule{Name: "wb", Conditions: []match.Condition{
		{Class: "x", Tests: []match.AttrTest{{Attr: "v", Op: match.OpEq, Var: "n"}}}},
		Actions: []match.Action{{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
			{Attr: "v", Expr: match.ConstExpr{Val: wm.Int(2)}}}}}}
	tbl := newInflightTable(match.NewInterferenceMatrix([]*match.Rule{ruleA, ruleB}))

	var eliding [2]atomic.Int64
	var violations atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		idx := g % 2
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				tbl.register(idx)
				if tbl.canElide(idx) {
					eliding[idx].Add(1)
					if eliding[1-idx].Load() > 0 {
						violations.Add(1)
					}
					eliding[idx].Add(-1)
				}
				tbl.release(idx)
			}
		}(idx)
	}
	wg.Wait()
	if v := violations.Load(); v > 0 {
		t.Fatalf("%d concurrent elisions of interfering rules", v)
	}
	for i := range tbl.counts {
		if n := tbl.counts[i].Load(); n != 0 {
			t.Fatalf("rule %d census not drained: %d", i, n)
		}
	}
}

// TestLockEscalationPlans unit-tests the plan builders: past the
// threshold a class's tuple locks collapse to one relation lock at the
// strongest needed mode, and below it the plan is untouched.
func TestLockEscalationPlans(t *testing.T) {
	prog := fanInProgram(4)
	store := wm.NewStore()
	var wmes []*wm.WME
	for _, iw := range prog.WMEs {
		wmes = append(wmes, store.Insert(iw.Class, iw.Attrs))
	}
	in := &match.Instantiation{Rule: prog.Rules[0], WMEs: wmes}

	rc, esc, saved := rcResources(in, 0)
	if len(rc) != 4 || esc != 0 || saved != 0 {
		t.Fatalf("unescalated rc plan: %d locks, esc %d, saved %d", len(rc), esc, saved)
	}
	rc, esc, saved = rcResources(in, 2)
	if len(rc) != 1 || rc[0] != lock.Relation("item") {
		t.Fatalf("escalated rc plan = %v, want one relation lock", rc)
	}
	if esc != 1 || saved != 3 {
		t.Fatalf("rc escalation counts = (%d, %d), want (1, 3)", esc, saved)
	}

	rhs, esc, saved := rhsLocks(in, 2)
	if len(rhs) != 1 || rhs[0].res != lock.Relation("item") || rhs[0].mode != lock.Wa {
		t.Fatalf("escalated rhs plan = %v, want one relation Wa", rhs)
	}
	if esc != 1 || saved != 3 {
		t.Fatalf("rhs escalation counts = (%d, %d), want (1, 3)", esc, saved)
	}
	rhs, esc, _ = rhsLocks(in, 8)
	if len(rhs) != 4 || esc != 0 {
		t.Fatalf("below-threshold rhs plan: %d locks, esc %d", len(rhs), esc)
	}
}

// TestLockEscalationEndToEnd runs the fan-in join with escalation on:
// the run must stay correct and the escalation metrics must record the
// collapsed plans.
func TestLockEscalationEndToEnd(t *testing.T) {
	prog := fanInProgram(5)
	e, err := NewParallel(prog, lock.SchemeRcRaWa, Options{Np: 4, Verify: true, LockEscalation: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 1 {
		t.Fatalf("firings = %d, want 1", res.Firings)
	}
	if err := CheckTrace(prog, res.Log.Commits()); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(e, "lock_escalation_total"); got == 0 {
		t.Fatal("lock_escalation_total = 0, want > 0")
	}
	if got := counterValue(e, "lock_escalation_saved_locks_total"); got < 4 {
		t.Fatalf("lock_escalation_saved_locks_total = %d, want >= 4", got)
	}
}

// TestCommitBatchEquivalence runs the same contended workload at
// several group-commit sizes: batching may only change scheduling
// granularity, never the commit count or the final working memory.
func TestCommitBatchEquivalence(t *testing.T) {
	var want []string
	for _, batch := range []int{1, 2, 8} {
		prog := tallyProgram(4, 3)
		e, err := NewParallel(prog, lock.SchemeRcRaWa, Options{Np: 4, Verify: true, CommitBatch: batch})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if err := CheckTrace(prog, res.Log.Commits()); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		got := wmFingerprint(res.Store)
		if want == nil {
			want = got
			continue
		}
		if !equal(got, want) {
			t.Fatalf("batch %d: final WM differs\n got: %v\nwant: %v", batch, got, want)
		}
	}
}

// TestDedupeResourcesInPlace pins the allocation-free contract: the
// output aliases the input's backing array, is sorted, and keeps one
// copy of each resource.
func TestDedupeResourcesInPlace(t *testing.T) {
	rs := []lock.Resource{
		{Class: "b", ID: 2}, {Class: "a", ID: 1}, {Class: "b", ID: 2},
		{Class: "a", ID: 1}, {Class: "a", ID: 3}, {Class: "a", ID: 1},
	}
	out := dedupeResources(rs)
	want := []lock.Resource{{Class: "a", ID: 1}, {Class: "a", ID: 3}, {Class: "b", ID: 2}}
	if len(out) != len(want) {
		t.Fatalf("dedupe = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("dedupe = %v, want %v", out, want)
		}
	}
	if &out[0] != &rs[0] {
		t.Fatal("dedupeResources must compact in place, not allocate")
	}
}
