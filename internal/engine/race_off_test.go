//go:build !race

package engine

// raceEnabled reports whether the race detector built this test
// binary. The kill-and-recover harness spawns SIGKILLed child
// processes, which is wasted work under -race (the children die before
// any race could be reported), so it runs only in non-race builds —
// CI gives it a dedicated job step.
const raceEnabled = false
