package engine

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pdps/internal/lock"
	"pdps/internal/match"
	"pdps/internal/obs"
	"pdps/internal/sched"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// Parallel is the multiple execution thread mechanism with the dynamic
// (locking) approach of Sections 4.2–4.3, organised as a commit
// pipeline. A pool of Np workers fires instantiations as transactions:
// Rc locks for the condition, Ra/Wa locks at RHS start, effects staged
// into a private transaction. Executed firings are then submitted to a
// single committer — the run loop — which owns the matcher and the
// conflict set outright: it validates each submission, applies the
// delta atomically, re-matches incrementally, aborts conflicting Rc
// holders (rule (ii)), and feeds newly activated instantiations back
// to the workers. Activation is event-driven via the conflict set's
// change journal, so a commit costs O(|delta|) dispatch work rather
// than a rescan of the whole conflict set.
type Parallel struct {
	rt     *runtime
	scheme lock.Scheme
	lm     *lock.Manager

	// clock supplies backoff timers, simulated costs and latency
	// timestamps (Options.Clock; the controller itself under Sched).
	clock sched.Clock
	// ctl, when non-nil, is the deterministic scheduling controller:
	// Run switches to the controlled pipeline (runDet) and every
	// concurrent activity becomes a controlled task.
	ctl sched.Controller
	// det holds the controlled pipeline's event queue; nil when
	// free-running.
	det *detState

	// tracked reports that the matcher journals conflict-set changes;
	// without it the committer falls back to full rescans.
	tracked bool

	// inflight, when non-nil (Options.HybridElision), is the per-rule
	// in-flight census gating lock elision; its matrix is the Section
	// 4.1 interference analysis computed at construction.
	inflight *inflightTable
	// elideID mints trace transaction ids for elided firings, which
	// never touch the lock manager; ids are negated so they can never
	// collide with lock.TxnID values.
	elideID atomic.Int64

	// batchCommits counts commits applied since the last conflict-set
	// refresh (group commit; committer-owned). The committer refreshes
	// when it reaches Options.CommitBatch or its event queue drains.
	batchCommits int

	// acks holds the reply channels of commits whose records are staged
	// on the storage backend but not yet fsynced (committer-owned).
	// syncAcks closes them after the group fsync — a firing learns its
	// commit succeeded only once the commit is durable. Without a
	// backend the committer closes replies immediately and this stays
	// empty.
	acks []chan struct{}

	// stopping is the workers' fast-path view of rt.stopping().
	stopping atomic.Bool

	// active mirrors the unfired conflict-set keys for worker-side
	// staleness checks. Written only by the committer.
	activeMu sync.RWMutex
	active   map[string]bool

	// txnInst maps live transactions to their instantiation keys, for
	// the AbortReevaluate victim check.
	txnInst sync.Map // lock.TxnID → string

	// Committer-owned dispatch state: instantiations awaiting a worker,
	// keys with an outstanding dispatch lifecycle, and per-key abort
	// counts driving the re-dispatch backoff. Retry counts are cleared
	// when the key commits or leaves the conflict set, so neither map
	// outgrows the live working set.
	pending    []*match.Instantiation
	dispatched map[string]bool
	retries    map[string]int

	work   chan *match.Instantiation
	events chan pevent
	wg     sync.WaitGroup
}

// detState is the controlled pipeline's committer queue: a plain slice
// plus a wake channel, safe because the controller runs exactly one
// task at a time (token passing provides the happens-before edges).
type detState struct {
	events []pevent
	wake   chan struct{} // non-nil while the committer is parked idle
}

// signalCh delivers a non-blocking wakeup on a one-slot channel.
func signalCh(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// pevKind discriminates worker→committer messages.
type pevKind uint8

const (
	// evCommit carries an executed firing's staged effects; the worker
	// blocks on reply until the committer has resolved it (the lock
	// transaction must outlive the commit so RcVictims sees its locks).
	evCommit pevKind = iota
	// evAborted reports a worker-side abort (lock denial, victim kill
	// or action error); the transaction is already ended.
	evAborted
	// evSkipped reports a stale instantiation dropped before execution.
	evSkipped
	// evRequeue is a backoff timer expiry: the instantiation may be
	// dispatched again.
	evRequeue
)

// pevent is one message on the committer's event queue.
type pevent struct {
	kind pevKind
	in   *match.Instantiation
	txn  lock.TxnID
	// tid is the trace transaction id: int64(txn) for locked firings, a
	// negative elideID for elided ones.
	tid int64
	// elided marks a firing that skipped the lock manager; the
	// committer then skips the abort check and the RcVictims scan (there
	// is no lock transaction to consult).
	elided bool
	wtx    *wm.Txn
	halt   bool
	start  time.Time
	err    error
	reply  chan struct{}
}

// PipelineStats reports the commit pipeline's queue depths: the
// dispatch queue (instantiations awaiting a worker) and the submit
// queue (worker results awaiting the committer), with high-water marks.
// It is a convenience view over the engine_dispatch_depth and
// engine_submit_depth gauges of the engine's metrics registry.
type PipelineStats struct {
	DispatchDepth int64
	DispatchPeak  int64
	SubmitDepth   int64
	SubmitPeak    int64
}

// PipelineStats returns the current pipeline queue gauges. The
// underlying series are atomic, so calling it while the run is in
// flight is safe.
func (e *Parallel) PipelineStats() PipelineStats {
	met := e.rt.met
	return PipelineStats{
		DispatchDepth: met.dispatchQ.Value(),
		DispatchPeak:  met.dispatchQ.Peak(),
		SubmitDepth:   met.submitQ.Value(),
		SubmitPeak:    met.submitQ.Peak(),
	}
}

// NewParallel builds a dynamic parallel engine using the given locking
// scheme (lock.Scheme2PL or lock.SchemeRcRaWa).
func NewParallel(p Program, scheme lock.Scheme, opts Options) (*Parallel, error) {
	rt, err := newRuntime(p, opts)
	if err != nil {
		return nil, err
	}
	e := &Parallel{
		rt:         rt,
		scheme:     scheme,
		lm:         lock.NewManagerShards(scheme, rt.opts.Deadlock, rt.opts.LockShards),
		clock:      rt.opts.Clock,
		active:     make(map[string]bool),
		dispatched: make(map[string]bool),
		retries:    make(map[string]int),
	}
	e.lm.SetMetrics(rt.opts.Metrics)
	e.lm.SetClock(rt.opts.Clock)
	if rt.opts.Sched != nil {
		e.ctl = rt.opts.Sched
		e.lm.SetController(e.ctl)
	}
	// Probe ChangeTracker on the unwrapped matcher: the journal-drain
	// protocol in refresh depends on what the real implementation does,
	// not on an instrumentation wrapper's forwarding.
	if t, ok := match.UnwrapMatcher(rt.matcher).(match.ChangeTracker); ok {
		t.TrackChanges(true)
		e.tracked = true
	}
	if rt.opts.HybridElision {
		// The pre-execution interference analysis (Section 4.1), shared
		// with the Static engine's matrix type; rows materialise lazily,
		// so programs whose rules all stay locked pay O(n) here.
		e.inflight = newInflightTable(match.NewInterferenceMatrix(p.Rules))
	}
	return e, nil
}

// Metrics returns the engine's metrics registry. Snapshots taken while
// Run is in flight are race-free; per-series values are atomic.
func (e *Parallel) Metrics() *obs.Registry { return e.rt.opts.Metrics }

// Store exposes the engine's working memory.
func (e *Parallel) Store() *wm.Store { return e.rt.store }

// LockStats returns the lock manager's counters.
func (e *Parallel) LockStats() lock.Stats { return e.lm.Stats() }

// Run drives the pipeline until quiescence (no dispatchable
// instantiation, no in-flight firing, no armed backoff timer), a halt
// action, an error, or the firing limit.
func (e *Parallel) Run() (Result, error) {
	if e.ctl != nil {
		return e.runDet()
	}
	rt := e.rt
	e.work = make(chan *match.Instantiation)
	e.events = make(chan pevent, rt.opts.Np*2+4)
	for i := 0; i < rt.opts.Np; i++ {
		e.wg.Add(1)
		go e.workerLoop()
	}

	// Seed: enabling change tracking journalled the initial membership,
	// so the first refresh activates and enqueues the loaded conflict
	// set; everything after arrives incrementally from commits.
	e.refresh(rt.matcher.ConflictSet())

	inflight, timers := 0, 0
	for {
		if rt.stopping() {
			e.stopping.Store(true)
		}
		stop := e.stopping.Load()

		// Pick the next dispatchable instantiation, lazily pruning
		// entries whose keys fired or left the conflict set. Group
		// commit: only when the dispatch queue runs dry (and no
		// submitted event is waiting) is the deferred conflict-set
		// refresh applied — it may enable new work, and the quiescence
		// check below must see it. Flushing on a dry queue rather than
		// a drained event channel is what lets batches accumulate to
		// CommitBatch while the workers stay fed from older pending
		// activations.
		var sendCh chan *match.Instantiation
		var next *match.Instantiation
		if !stop {
			next = e.nextDispatch()
		}
		if next == nil && len(e.events) == 0 {
			e.flushRefresh()
			if !stop {
				next = e.nextDispatch()
			}
		}
		if next != nil {
			sendCh = e.work
		}
		rt.met.dispatchQ.Set(int64(len(e.pending)))

		// Group commit, durability half: release the staged group only
		// when the committer is about to block without guaranteed
		// progress — no event queued and either nothing to dispatch or
		// no free worker to take it. A worker parked on its ack can
		// neither take new work nor submit events (and still holds its
		// locks, so an in-flight firing may be blocked behind it);
		// inflight+len(acks) == Np means every worker is busy or
		// parked. While a free worker exists for dispatchable work the
		// hand-off below must complete, so the group can keep growing —
		// this is what lets the fsync group approach Np instead of
		// collapsing to whatever drained between two dispatches. Runs
		// before the quiescence check: a worker awaiting its ack has
		// already been counted out of inflight.
		if len(e.events) == 0 && (next == nil || inflight+len(e.acks) >= rt.opts.Np) {
			e.syncAcks()
		}

		if sendCh == nil && inflight == 0 && timers == 0 && (stop || len(e.pending) == 0) {
			break
		}

		select {
		case ev := <-e.events:
			rt.met.submitQ.Add(-1)
			di, dt := e.handleEvent(ev)
			inflight += di
			timers += dt
		case sendCh <- next:
			e.pending = e.pending[1:]
			inflight++
		}
	}

	close(e.work)
	e.wg.Wait()
	return rt.result(), rt.err
}

// runDet is Run under a deterministic controller: the same commit
// pipeline, but each firing runs as its own controlled task instead of
// on a worker pool, and the committer drains an event slice instead of
// a channel — the controller serialises every access, and all blocking
// (committer idle, worker awaiting a commit verdict, lock waits,
// backoff timers) goes through the controller so the whole run is a
// pure function of the scheduling policy.
func (e *Parallel) runDet() (Result, error) {
	rt := e.rt
	e.det = &detState{}
	e.refresh(rt.matcher.ConflictSet())

	inflight, timers := 0, 0
	for {
		if rt.stopping() {
			e.stopping.Store(true)
		}
		stop := e.stopping.Load()

		// Dispatch up to Np tasks; group commit flushes the deferred
		// refresh only when the dispatch queue runs dry, as in Run.
		if !stop {
			for inflight < rt.opts.Np {
				next := e.nextDispatch()
				if next == nil && len(e.det.events) == 0 {
					e.flushRefresh()
					next = e.nextDispatch()
				}
				if next == nil {
					break
				}
				e.pending = e.pending[1:]
				inflight++
				in := next
				e.ctl.Go("fire:"+in.Rule.Name, func() { e.fire(in) })
			}
		} else if len(e.det.events) == 0 {
			// Stopping: flush so the batch histogram and conflict set
			// settle before the quiescence check.
			e.flushRefresh()
		}
		rt.met.dispatchQ.Set(int64(len(e.pending)))

		if len(e.det.events) > 0 {
			ev := e.det.events[0]
			e.det.events = e.det.events[1:]
			rt.met.submitQ.Add(-1)
			di, dt := e.handleEvent(ev)
			inflight += di
			timers += dt
			continue
		}

		// Event queue dry: release the fsync group before parking or
		// breaking, exactly as the free-running loop does — tasks
		// parked on their acks are not counted in inflight and only
		// resume once the group is durable.
		e.syncAcks()

		if inflight == 0 && timers == 0 && (stop || len(e.pending) == 0) {
			break
		}

		// Nothing to do until a task or timer reports back.
		ch := make(chan struct{}, 1)
		e.det.wake = ch
		e.ctl.Park("committer idle", ch)
		e.det.wake = nil
	}
	return rt.result(), rt.err
}

// nextDispatch returns the head of the dispatch queue, first pruning
// entries whose keys fired or left the conflict set. The entry stays
// queued — the caller pops it once the hand-off commits.
func (e *Parallel) nextDispatch() *match.Instantiation {
	for len(e.pending) > 0 {
		in := e.pending[0]
		k := in.Key()
		if e.activeHas(k) && !e.rt.fired[k] {
			return in
		}
		delete(e.dispatched, k)
		e.pending = e.pending[1:]
	}
	return nil
}

// handleEvent applies one worker→committer event and returns the
// deltas to the in-flight firing and armed backoff-timer counts.
func (e *Parallel) handleEvent(ev pevent) (dInflight, dTimers int) {
	rt := e.rt
	switch ev.kind {
	case evCommit:
		dInflight = -1
		dTimers = e.resolveCommit(ev)
		e.releaseInflight(ev.in)
	case evAborted:
		dInflight = -1
		if ev.err != nil {
			rt.fail(ev.err)
		}
		dTimers = e.noteAbort(ev.in)
		e.releaseInflight(ev.in)
	case evSkipped:
		dInflight = -1
		rt.met.skipInc()
		delete(e.dispatched, ev.in.Key())
		e.releaseInflight(ev.in)
	case evRequeue:
		dTimers = -1
		k := ev.in.Key()
		if !rt.stopping() && e.activeHas(k) && !rt.fired[k] {
			e.pending = append(e.pending, ev.in)
		} else {
			delete(e.dispatched, k)
		}
	}
	return
}

// releaseInflight retires a firing's census registration. Every fire()
// call submits exactly one terminal event (evCommit, evAborted or
// evSkipped), so releasing here — on the committer, before the next
// dispatch — pairs one release with each register and guarantees the
// successor activation of the same rule sees the slot already free.
func (e *Parallel) releaseInflight(in *match.Instantiation) {
	if e.inflight == nil {
		return
	}
	if idx, ok := e.inflight.im.Index(in.Rule.Name); ok {
		e.inflight.release(idx)
	}
}

// submit hands a worker-side event to the committer.
func (e *Parallel) submit(ev pevent) {
	e.rt.met.submitQ.Add(1)
	if e.det != nil {
		e.det.events = append(e.det.events, ev)
		if e.det.wake != nil {
			signalCh(e.det.wake)
		}
		return
	}
	e.events <- ev
}

// await blocks until the committer closes the reply channel.
func (e *Parallel) await(reply chan struct{}) {
	if e.ctl != nil {
		e.ctl.Park("await commit verdict", reply)
		return
	}
	<-reply
}

// activeHas reports whether the key is an unfired conflict-set member.
func (e *Parallel) activeHas(key string) bool {
	e.activeMu.RLock()
	ok := e.active[key]
	e.activeMu.RUnlock()
	return ok
}

// refresh reconciles the active mirror with the conflict set after a
// commit (or at startup) and enqueues newly activated instantiations.
// Tracked incremental matchers supply a change journal; matchers that
// rebuild the set journal the full membership, which is detected (no
// removals, additions equal to the set) and reconciled wholesale. Keys
// appearing as both added and removed are resolved by Contains.
func (e *Parallel) refresh(cs *match.ConflictSet) {
	rt := e.rt
	var added []*match.Instantiation
	var removed []string
	if e.tracked {
		added, removed = cs.TakeChanges()
		// Batch size of this journal drain — the O(|delta|) dispatch
		// cost a commit pays instead of a conflict-set rescan.
		rt.met.journalBatch.Observe(int64(len(added) + len(removed)))
	} else {
		added = cs.All()
	}
	// One matcher update can journal several activations, and their
	// relative order leaks matcher-internal map iteration; sort by key
	// so dispatch order — and with it every deterministic schedule — is
	// a function of the program alone.
	sort.Slice(added, func(i, j int) bool { return added[i].Key() < added[j].Key() })
	if !e.tracked || (len(removed) == 0 && len(added) == cs.Len()) {
		rt.met.refreshSnapshot.Inc()
		// Snapshot reconcile: added holds the complete membership.
		act := make(map[string]bool, len(added))
		for _, in := range added {
			if k := in.Key(); !rt.fired[k] {
				act[k] = true
			}
		}
		e.activeMu.Lock()
		old := e.active
		e.active = act
		e.activeMu.Unlock()
		for k := range old {
			if !act[k] {
				delete(e.retries, k)
			}
		}
	} else {
		rt.met.refreshDelta.Inc()
		e.activeMu.Lock()
		for _, k := range removed {
			if !cs.Contains(k) {
				delete(e.active, k)
			}
		}
		for _, in := range added {
			if k := in.Key(); cs.Contains(k) && !rt.fired[k] {
				e.active[k] = true
			}
		}
		e.activeMu.Unlock()
		for _, k := range removed {
			if !cs.Contains(k) {
				delete(e.retries, k)
			}
		}
	}
	queued := 0
	for _, in := range added {
		k := in.Key()
		if !rt.fired[k] && !e.dispatched[k] && e.activeHas(k) {
			e.dispatched[k] = true
			e.pending = append(e.pending, in)
			queued++
		}
	}
	if queued > 0 {
		rt.met.cycleInc()
	}
}

// resolveCommit is the committer's half of a firing: validate the
// submission against the current conflict set and lock state, commit
// through the shared runtime, kill Rc victims, and activate the
// instantiations the delta enabled. Returns the number of backoff
// timers armed.
//
// The reply channel is closed immediately on every outcome except a
// successful commit with a storage backend: there the ack is deferred
// into e.acks and released by syncAcks only after the group fsync, so
// a firing never observes success before its commit is durable.
func (e *Parallel) resolveCommit(ev pevent) (timers int) {
	rt := e.rt
	key := ev.in.Key()
	acked := false
	defer func() {
		if !acked {
			close(ev.reply)
		}
	}()

	switch {
	case !ev.elided && e.lm.Aborted(ev.txn):
		ev.wtx.Abort()
		e.logResolution(trace.KindAbort, ev, "rc-wa victim")
		timers = e.noteAbort(ev.in)
	case rt.stopping():
		ev.wtx.Abort()
		e.logResolution(trace.KindSkip, ev, "engine stopping")
		rt.met.skipInc()
		delete(e.dispatched, key)
	default:
		cs := rt.matcher.ConflictSet()
		if !cs.Contains(key) || rt.fired[key] {
			ev.wtx.Abort()
			e.logResolution(trace.KindAbort, ev, "invalidated before commit")
			rt.met.abortInc()
			rt.met.rule(ev.in.Rule.Name).aborts.Inc()
			e.deactivate(key)
			delete(e.dispatched, key)
			delete(e.retries, key)
			break
		}
		if err := rt.commit(ev.in, ev.wtx, ev.tid, ev.halt); err != nil {
			rt.fail(err)
			if errors.Is(err, ErrInconsistent) {
				ev.wtx.Abort()
				e.logResolution(trace.KindAbort, ev, "verify failed")
			} else {
				e.logResolution(trace.KindAbort, ev, "commit error")
			}
			rt.met.abortInc()
			rt.met.rule(ev.in.Rule.Name).aborts.Inc()
			delete(e.dispatched, key)
			break
		}
		lat := e.clock.Now().Sub(ev.start)
		rt.met.commitNS.ObserveDuration(lat)
		rt.met.rule(ev.in.Rule.Name).commitNS.ObserveDuration(lat)
		e.deactivate(key)
		delete(e.dispatched, key)
		delete(e.retries, key)
		if !ev.elided {
			cs = rt.matcher.ConflictSet() // post-commit state
			// Rule (ii): abort conflicting Rc holders — unless the
			// reevaluate policy finds their instantiation untouched by
			// this commit.
			for _, victim := range e.lm.RcVictims(ev.txn) {
				if rt.opts.AbortPolicy == AbortReevaluate {
					if vk, ok := e.txnInst.Load(victim); ok {
						if k := vk.(string); cs.Contains(k) && !rt.fired[k] {
							continue
						}
					}
				}
				e.lm.Abort(victim)
			}
		}
		// Group commit: defer the conflict-set refresh until the batch
		// fills; the run loop flushes early whenever its queue drains.
		// The durability ack defers the same way — syncAcks fsyncs the
		// group and releases every waiting firing at once.
		if rt.opts.Storage != nil {
			e.acks = append(e.acks, ev.reply)
			acked = true
		}
		e.batchCommits++
		if e.batchCommits >= rt.opts.CommitBatch {
			e.syncAcks()
			e.flushRefresh()
		}
	}
	return timers
}

// syncAcks fsyncs the staged commit group and releases the firings
// waiting on it. Without a backend (or with nothing staged) it only
// closes stray acks, which cannot exist then — a no-op.
func (e *Parallel) syncAcks() {
	e.rt.syncStorage()
	for _, ch := range e.acks {
		close(ch)
	}
	e.acks = e.acks[:0]
}

// flushRefresh applies the deferred post-commit refresh: one
// conflict-set reconciliation and dispatch pass covering every commit
// since the previous flush. With CommitBatch 1 (the default) it runs
// after every commit, reproducing the unbatched pipeline exactly.
func (e *Parallel) flushRefresh() {
	if e.batchCommits == 0 {
		return
	}
	e.rt.met.commitBatch.Observe(int64(e.batchCommits))
	e.batchCommits = 0
	e.refresh(e.rt.matcher.ConflictSet())
}

// noteAbort counts an abort and, if the instantiation is still live,
// arms a backoff timer that re-enqueues it — proportional to its abort
// count so productions that repeatedly deadlock against each other
// break lockstep, and without occupying a worker while it waits.
// Returns 1 if a timer was armed.
func (e *Parallel) noteAbort(in *match.Instantiation) int {
	rt := e.rt
	rt.met.abortInc()
	rt.met.rule(in.Rule.Name).aborts.Inc()
	k := in.Key()
	e.retries[k]++
	if rt.stopping() || rt.fired[k] || !e.activeHas(k) {
		delete(e.dispatched, k)
		return 0
	}
	rt.met.retries.Inc()
	d := time.Duration(e.retries[k]) * 500 * time.Microsecond
	if max := 50 * time.Millisecond; d > max {
		d = max
	}
	e.clock.AfterFunc(d, func() {
		e.submit(pevent{kind: evRequeue, in: in})
	})
	return 1
}

// deactivate removes a key from the workers' active mirror.
func (e *Parallel) deactivate(key string) {
	e.activeMu.Lock()
	delete(e.active, key)
	e.activeMu.Unlock()
}

// logResolution records the committer's verdict on a submission.
func (e *Parallel) logResolution(kind trace.Kind, ev pevent, detail string) {
	e.rt.opts.Log.Append(trace.Event{Kind: kind, Rule: ev.in.Rule.Name,
		Inst: ev.in.Key(), Txn: ev.tid, Detail: detail})
}

// workerLoop fires instantiations from the work channel until it
// closes.
func (e *Parallel) workerLoop() {
	defer e.wg.Done()
	for in := range e.work {
		e.fire(in)
	}
}

// fire executes one instantiation as a transaction and submits the
// outcome to the committer. Under HybridElision it first registers
// with the in-flight census; a firing whose rule interferes with
// nothing in flight takes the lock-free path instead. The census
// registration is released by the committer when it resolves the
// firing's terminal event (see handleEvent), not here: the committer
// dispatches successor activations right after resolving a commit, so
// a worker-side deferred release would race the successor's census
// check and turn clean elisions into spurious fallbacks.
func (e *Parallel) fire(in *match.Instantiation) {
	rt := e.rt
	key := in.Key()
	if e.inflight != nil {
		if idx, ok := e.inflight.im.Index(in.Rule.Name); ok {
			// Register before checking: concurrent registrants of
			// interfering rules each see the other and both fall back.
			e.inflight.register(idx)
			if e.inflight.canElide(idx) {
				e.fireElided(in, key)
				return
			}
			rt.met.elideFallback.Inc()
		}
	}
	txn := e.lm.Begin()
	e.txnInst.Store(txn, key)
	end := func() {
		e.lm.End(txn)
		e.txnInst.Delete(txn)
	}
	abort := func(reason string, err error) {
		rt.opts.Log.Append(trace.Event{Kind: trace.KindAbort, Rule: in.Rule.Name,
			Inst: key, Txn: int64(txn), Detail: reason})
		end()
		e.submit(pevent{kind: evAborted, in: in, err: err})
	}
	skip := func(reason string) {
		rt.opts.Log.Append(trace.Event{Kind: trace.KindSkip, Rule: in.Rule.Name,
			Inst: key, Txn: int64(txn), Detail: reason})
		end()
		e.submit(pevent{kind: evSkipped, in: in})
	}

	// Phase 1: Rc locks for condition evaluation (Figure 4.2),
	// class-escalated past the LockEscalation threshold.
	rcPlan, esc, saved := rcResources(in, rt.opts.LockEscalation)
	if esc > 0 {
		rt.met.escalations.Add(int64(esc))
		rt.met.escalationSaved.Add(int64(saved))
	}
	for _, res := range rcPlan {
		if err := e.lm.Acquire(txn, res, lock.Rc); err != nil {
			abort("rc: "+err.Error(), nil)
			return
		}
	}

	// Condition re-evaluation under Rc locks: the instantiation may
	// have been invalidated by a commit since dispatch.
	if e.stopping.Load() || !e.activeHas(key) {
		skip("stale before execution")
		return
	}

	rt.opts.Log.Append(trace.Event{Kind: trace.KindFire, Rule: in.Rule.Name, Inst: key, Txn: int64(txn)})
	start := e.clock.Now()

	// Simulated condition-evaluation cost: Rc locks held, RHS locks
	// not yet requested — the Figure 4.3/4.4 window.
	if d := rt.opts.CondDelay[in.Rule.Name]; d > 0 {
		e.clock.Sleep(d)
	}

	// Phase 2: all Ra and Wa locks at RHS start (Section 4.3),
	// escalated like the Rc plan.
	rhsPlan, esc, saved := rhsLocks(in, rt.opts.LockEscalation)
	if esc > 0 {
		rt.met.escalations.Add(int64(esc))
		rt.met.escalationSaved.Add(int64(saved))
	}
	for _, l := range rhsPlan {
		if err := e.lm.Acquire(txn, l.res, l.mode); err != nil {
			abort(l.mode.String()+": "+err.Error(), nil)
			return
		}
	}

	// Action execution (simulated cost, then staged effects).
	if d := rt.opts.RuleDelay[in.Rule.Name]; d > 0 {
		e.clock.Sleep(d)
	}
	wtx := rt.store.Begin()
	halt, err := match.ExecuteActions(in, wtx)
	if err != nil {
		wtx.Abort()
		abort("action error", err)
		return
	}

	// Submit to the committer; hold the lock transaction open until it
	// answers so a commit's RcVictims scan still sees our locks.
	reply := make(chan struct{})
	e.submit(pevent{kind: evCommit, in: in, txn: txn, tid: int64(txn), wtx: wtx, halt: halt, start: start, reply: reply})
	e.await(reply)
	end()
}

// fireElided is the lock-free firing path of the hybrid scheme: by
// Theorem 1 the rule interferes with nothing in flight, so its effects
// commute with every concurrent firing and no lock transaction is
// opened. The staleness check and the committer's conflict-set
// validation still run — they, not the locks, are what guarantees
// consistency; elision only removes the lock-table traffic.
func (e *Parallel) fireElided(in *match.Instantiation, key string) {
	rt := e.rt
	tid := -e.elideID.Add(1)
	// Count at path entry: engine_elide_total + engine_elide_fallback_total
	// always equals commits+aborts+skips, making census leaks visible.
	rt.met.elides.Inc()
	if e.stopping.Load() || !e.activeHas(key) {
		rt.opts.Log.Append(trace.Event{Kind: trace.KindSkip, Rule: in.Rule.Name,
			Inst: key, Txn: tid, Detail: "stale before execution"})
		e.submit(pevent{kind: evSkipped, in: in})
		return
	}
	rt.opts.Log.Append(trace.Event{Kind: trace.KindFire, Rule: in.Rule.Name,
		Inst: key, Txn: tid, Detail: "elided"})
	start := e.clock.Now()
	if d := rt.opts.CondDelay[in.Rule.Name]; d > 0 {
		e.clock.Sleep(d)
	}
	if d := rt.opts.RuleDelay[in.Rule.Name]; d > 0 {
		e.clock.Sleep(d)
	}
	wtx := rt.store.Begin()
	halt, err := match.ExecuteActions(in, wtx)
	if err != nil {
		wtx.Abort()
		rt.opts.Log.Append(trace.Event{Kind: trace.KindAbort, Rule: in.Rule.Name,
			Inst: key, Txn: tid, Detail: "action error"})
		e.submit(pevent{kind: evAborted, in: in, err: err})
		return
	}
	reply := make(chan struct{})
	e.submit(pevent{kind: evCommit, in: in, elided: true, tid: tid, wtx: wtx, halt: halt, start: start, reply: reply})
	e.await(reply)
}
