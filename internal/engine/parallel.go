package engine

import (
	"fmt"
	"sync"
	"time"

	"pdps/internal/lock"
	"pdps/internal/match"
	"pdps/internal/stats"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// Parallel is the multiple execution thread mechanism with the dynamic
// (locking) approach of Sections 4.2–4.3. Every active instantiation
// is dispatched to a goroutine worker that fires it as a transaction:
// Rc locks for the condition, Ra/Wa locks at RHS start, atomic commit
// of the working-memory delta, incremental re-match, and — under the
// improved scheme — commit-time abort of conflicting Rc holders.
type Parallel struct {
	opts   Options
	scheme lock.Scheme

	store    *wm.Store
	lm       *lock.Manager
	mu       sync.Mutex // guards the fields below plus matcher and dispatch state
	cond     *sync.Cond
	matcher  match.Matcher
	fired    map[string]bool
	inflight map[string]bool
	txnInst  map[lock.TxnID]string
	// retries counts aborts per instantiation key; re-dispatched
	// firings back off proportionally so two productions that
	// repeatedly deadlock against each other break lockstep.
	retries map[string]int
	running int
	halted  bool
	limit   bool
	runErr  error

	firings int
	aborts  int
	skips   int
	rounds  int

	// latency records fire-to-commit durations of successful firings.
	latency stats.Histogram

	sem chan struct{}
	wg  sync.WaitGroup
}

// FiringLatency returns the histogram of fire-to-commit latencies.
func (e *Parallel) FiringLatency() *stats.Histogram { return &e.latency }

// NewParallel builds a dynamic parallel engine using the given locking
// scheme (lock.Scheme2PL or lock.SchemeRcRaWa).
func NewParallel(p Program, scheme lock.Scheme, opts Options) (*Parallel, error) {
	o := opts.withDefaults()
	store, m, err := load(p, o)
	if err != nil {
		return nil, err
	}
	e := &Parallel{
		opts:     o,
		scheme:   scheme,
		store:    store,
		lm:       lock.NewManagerPolicy(scheme, o.Deadlock),
		matcher:  m,
		fired:    make(map[string]bool),
		inflight: make(map[string]bool),
		txnInst:  make(map[lock.TxnID]string),
		retries:  make(map[string]int),
		sem:      make(chan struct{}, o.Np),
	}
	e.cond = sync.NewCond(&e.mu)
	return e, nil
}

// Store exposes the engine's working memory.
func (e *Parallel) Store() *wm.Store { return e.store }

// LockStats returns the lock manager's counters.
func (e *Parallel) LockStats() lock.Stats { return e.lm.Stats() }

// Run dispatches active instantiations to workers until quiescence
// (no unfired instantiation and no in-flight firing), a halt action,
// an error, or the firing limit.
func (e *Parallel) Run() (Result, error) {
	e.mu.Lock()
	for {
		if e.stopLocked() {
			break
		}
		cands := e.readyLocked()
		if len(cands) == 0 {
			if e.running == 0 {
				break
			}
			e.cond.Wait()
			continue
		}
		e.rounds++
		for _, in := range cands {
			e.inflight[in.Key()] = true
			e.running++
			e.wg.Add(1)
			go e.worker(in)
		}
	}
	e.mu.Unlock()
	e.wg.Wait()

	e.mu.Lock()
	defer e.mu.Unlock()
	res := Result{
		Firings:  e.firings,
		Aborts:   e.aborts,
		Skips:    e.skips,
		Cycles:   e.rounds,
		Halted:   e.halted,
		LimitHit: e.limit,
		Log:      e.opts.Log,
		Store:    e.store,
	}
	return res, e.runErr
}

// stopLocked reports whether dispatching must stop. Caller holds e.mu.
func (e *Parallel) stopLocked() bool {
	if e.firings >= e.opts.MaxFirings {
		e.limit = true
	}
	return e.halted || e.limit || e.runErr != nil
}

// readyLocked returns active instantiations that are neither fired nor
// in flight. Caller holds e.mu.
func (e *Parallel) readyLocked() []*match.Instantiation {
	var out []*match.Instantiation
	for _, in := range e.matcher.ConflictSet().All() {
		k := in.Key()
		if !e.fired[k] && !e.inflight[k] {
			out = append(out, in)
		}
	}
	return out
}

// worker fires one instantiation as a transaction.
func (e *Parallel) worker(in *match.Instantiation) {
	defer e.wg.Done()
	e.sem <- struct{}{}
	defer func() { <-e.sem }()

	key := in.Key()
	defer func() {
		e.mu.Lock()
		delete(e.inflight, key)
		e.running--
		e.cond.Broadcast()
		e.mu.Unlock()
	}()

	// Back off retried firings so repeated abort cycles (e.g. the
	// mutual deadlock of Figure 4.4 under 2PL) cannot livelock.
	e.mu.Lock()
	retry := e.retries[key]
	e.mu.Unlock()
	if retry > 0 {
		d := time.Duration(retry) * 500 * time.Microsecond
		if max := 50 * time.Millisecond; d > max {
			d = max
		}
		time.Sleep(d)
	}

	txn := e.lm.Begin()
	e.mu.Lock()
	e.txnInst[txn] = key
	e.mu.Unlock()

	finish := func() {
		e.lm.End(txn)
		e.mu.Lock()
		delete(e.txnInst, txn)
		e.mu.Unlock()
	}
	abort := func(reason string) {
		e.opts.Log.Append(trace.Event{Kind: trace.KindAbort, Rule: in.Rule.Name,
			Inst: key, Txn: int64(txn), Detail: reason})
		e.mu.Lock()
		e.aborts++
		e.retries[key]++
		e.mu.Unlock()
		finish()
	}
	skip := func(reason string) {
		e.opts.Log.Append(trace.Event{Kind: trace.KindSkip, Rule: in.Rule.Name,
			Inst: key, Txn: int64(txn), Detail: reason})
		e.mu.Lock()
		e.skips++
		e.mu.Unlock()
		finish()
	}

	// Phase 1: Rc locks for condition evaluation (Figure 4.2).
	for _, res := range rcResources(in) {
		if err := e.lm.Acquire(txn, res, lock.Rc); err != nil {
			abort("rc: " + err.Error())
			return
		}
	}

	// Condition re-evaluation under Rc locks: the instantiation may
	// have been invalidated by a commit since dispatch.
	e.mu.Lock()
	active := e.matcher.ConflictSet().Contains(key) && !e.fired[key] && !e.stopLocked()
	e.mu.Unlock()
	if !active {
		skip("stale before execution")
		return
	}

	e.opts.Log.Append(trace.Event{Kind: trace.KindFire, Rule: in.Rule.Name, Inst: key, Txn: int64(txn)})
	fireStart := time.Now()

	// Simulated condition-evaluation cost: Rc locks held, RHS locks
	// not yet requested — the Figure 4.3/4.4 window.
	if d := e.opts.CondDelay[in.Rule.Name]; d > 0 {
		time.Sleep(d)
	}

	// Phase 2: all Ra and Wa locks at RHS start (Section 4.3).
	for _, l := range rhsLocks(in) {
		if err := e.lm.Acquire(txn, l.res, l.mode); err != nil {
			abort(l.mode.String() + ": " + err.Error())
			return
		}
	}

	// Action execution (simulated cost, then staged effects).
	if d := e.opts.RuleDelay[in.Rule.Name]; d > 0 {
		time.Sleep(d)
	}
	wtx := e.store.Begin()
	halt, err := match.ExecuteActions(in, wtx)
	if err != nil {
		wtx.Abort()
		e.fail(err)
		abort("action error")
		return
	}

	// Commit point: atomic under the engine mutex so the conflict set
	// always reflects exactly the committed prefix.
	e.mu.Lock()
	if e.lm.Aborted(txn) {
		e.mu.Unlock()
		wtx.Abort()
		abort("rc-wa victim")
		return
	}
	if e.stopLocked() {
		e.mu.Unlock()
		wtx.Abort()
		skip("engine stopping")
		return
	}
	if !e.matcher.ConflictSet().Contains(key) || e.fired[key] {
		e.mu.Unlock()
		wtx.Abort()
		abort("invalidated before commit")
		return
	}
	if e.opts.Verify && !verifyActive(e.store, in) {
		e.runErr = fmt.Errorf("%w: %s committed while inactive", ErrInconsistent, key)
		e.mu.Unlock()
		wtx.Abort()
		abort("verify failed")
		return
	}
	delta, err := wtx.Commit()
	if err != nil {
		e.runErr = err
		e.mu.Unlock()
		abort("commit error")
		return
	}
	if err := e.opts.logDelta(delta); err != nil && e.runErr == nil {
		e.runErr = err
	}
	for _, w := range delta.Removes {
		e.matcher.Remove(w)
	}
	for _, w := range delta.Adds {
		e.matcher.Insert(w)
	}
	e.fired[key] = true
	e.firings++
	e.latency.Observe(time.Since(fireStart))
	// Rule (ii): abort conflicting Rc holders — unless the reevaluate
	// policy finds their instantiation untouched by this commit.
	for _, victim := range e.lm.RcVictims(txn) {
		if e.opts.AbortPolicy == AbortReevaluate {
			if vk, ok := e.txnInst[victim]; ok && e.matcher.ConflictSet().Contains(vk) && !e.fired[vk] {
				continue
			}
		}
		e.lm.Abort(victim)
	}
	if halt {
		e.halted = true
	}
	e.opts.Log.Append(trace.Event{Kind: trace.KindCommit, Rule: in.Rule.Name,
		Inst: key, Txn: int64(txn), WMEs: fingerprints(in)})
	if halt {
		e.opts.Log.Append(trace.Event{Kind: trace.KindHalt, Rule: in.Rule.Name, Inst: key, Txn: int64(txn)})
	}
	e.mu.Unlock()
	finish()
}

// fail records the first run error.
func (e *Parallel) fail(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.runErr == nil {
		e.runErr = err
	}
}
