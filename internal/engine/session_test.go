package engine

import (
	"bytes"
	"testing"

	"pdps/internal/wm"
)

func TestSessionStepAndRun(t *testing.T) {
	s, err := NewSession(counterProgram(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.ConflictSet()); got != 1 {
		t.Fatalf("initial conflict set = %d, want 1", got)
	}
	name, err := s.Step()
	if err != nil || name != "dec" {
		t.Fatalf("Step = %q, %v", name, err)
	}
	n, err := s.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Run fired %d, want 2 (counter reaches 0)", n)
	}
	if name, err := s.Step(); err != nil || name != "" {
		t.Fatalf("quiescent Step = %q, %v", name, err)
	}
	c := s.Store().ByClass("counter")
	if !c[0].Attr("n").Equal(wm.Int(0)) {
		t.Fatalf("counter = %v", c[0])
	}
	if got := len(s.Log().Commits()); got != 3 {
		t.Fatalf("log commits = %d, want 3", got)
	}
}

func TestSessionAssertRetract(t *testing.T) {
	s, err := NewSession(Program{Rules: counterProgram(0).Rules}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ConflictSet()) != 0 {
		t.Fatal("no tuples yet")
	}
	w := s.AssertWME("counter", attrs("n", 2))
	if len(s.ConflictSet()) != 1 {
		t.Fatal("assert did not activate the rule")
	}
	if err := s.Retract(w.ID); err != nil {
		t.Fatal(err)
	}
	if len(s.ConflictSet()) != 0 {
		t.Fatal("retract did not deactivate the rule")
	}
	if err := s.Retract(999); err == nil {
		t.Fatal("retract of absent WME must error")
	}
}

func TestSessionLoadSnapshot(t *testing.T) {
	s, err := NewSession(counterProgram(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := s.Store().WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if s.Store().ByClass("counter")[0].Attr("n").AsInt() != 0 {
		t.Fatal("run did not finish")
	}
	// Restore the snapshot: the counter is back at 5 and matches again.
	if err := s.LoadSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if got := s.Store().ByClass("counter")[0].Attr("n").AsInt(); got != 5 {
		t.Fatalf("restored counter = %d, want 5", got)
	}
	n, err := s.Run(100)
	if err != nil || n != 5 {
		t.Fatalf("re-run fired %d (%v), want 5", n, err)
	}
}
