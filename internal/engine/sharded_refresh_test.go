package engine

import (
	"testing"

	"pdps/internal/lock"
	"pdps/internal/obs"
)

// TestShardedRefreshTakesDeltaPath pins the end-to-end delta pipeline
// for multi-shard matchers: the committer's refresh must drain the
// merged conflict set's change journal (the O(|delta|) branch), not
// fall back to snapshot reconciliation on every commit. One snapshot
// refresh is expected — the initial full-membership drain at startup.
func TestShardedRefreshTakesDeltaPath(t *testing.T) {
	for _, matcher := range []string{"rete", "treat", "naive"} {
		reg := obs.NewRegistry()
		p := pipelineProgram(8, 4)
		e, err := NewParallel(p, lock.SchemeRcRaWa, Options{
			Np: 4, MatchShards: 3, Matcher: matcher, Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", matcher, err)
		}
		if res.Firings != 32 {
			t.Fatalf("%s: firings = %d, want 32", matcher, res.Firings)
		}
		snap := reg.Counter("engine_refresh_snapshot_total").Value()
		delta := reg.Counter("engine_refresh_delta_total").Value()
		if snap > 1 {
			t.Errorf("%s: %d snapshot refreshes (want at most the initial one); deltas=%d",
				matcher, snap, delta)
		}
		if delta == 0 {
			t.Errorf("%s: journal-drain branch never taken (snapshots=%d)", matcher, snap)
		}
	}
}

// TestShardedReteEquivalence runs the indexed Rete sharded three ways
// against the unsharded naive engine on the same program and compares
// outcomes.
func TestShardedReteEquivalence(t *testing.T) {
	for _, shards := range []int{2, 3} {
		p := pipelineProgram(6, 3)
		e, err := NewParallel(p, lock.Scheme2PL, Options{Np: 2, MatchShards: shards, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Firings != 18 {
			t.Fatalf("shards=%d: firings = %d, want 18", shards, res.Firings)
		}
	}
}
