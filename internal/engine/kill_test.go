package engine

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"pdps/internal/lock"
	"pdps/internal/storage"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// The kill-and-recover harness: the parent test re-executes this test
// binary as a child running TestKillChild, which drives an engine over
// the file backend and SIGKILLs itself at a randomized append or fsync
// count. The child prints "ACK <lsn>" after every successful fsync —
// the durability promise the committer gives workers — and the parent
// then recovers the directory and asserts that (a) every acknowledged
// commit survived, (b) the recovered store is byte-identical to an
// independent replay of the surviving snapshot + log, and (c) the
// recovered commit history is an admissible single-thread execution.

const (
	killParts  = 5
	killStages = 5
)

func killProgram() Program { return tallyProgram(killParts, killStages) }

// killBackend wraps the file backend, acknowledging each fsync on
// stdout and SIGKILLing the process at the configured append or sync
// count. Engines call Append and Sync from the committer only, so the
// counters need no locking.
type killBackend struct {
	*storage.File
	appends, syncs       int
	killAppend, killSync int
}

func (k *killBackend) Append(r *storage.Record) (storage.LSN, error) {
	lsn, err := k.File.Append(r)
	k.appends++
	if k.killAppend > 0 && k.appends >= k.killAppend {
		killSelf()
	}
	return lsn, err
}

func (k *killBackend) Sync() error {
	if err := k.File.Sync(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stdout, "ACK %d\n", k.File.LSN())
	k.syncs++
	if k.killSync > 0 && k.syncs >= k.killSync {
		killSelf()
	}
	return nil
}

func killSelf() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable: SIGKILL is not deliverable to a handler
}

// TestKillChild is the child half of the harness; it only runs when the
// parent sets PDPS_KILL_DIR.
func TestKillChild(t *testing.T) {
	dir := os.Getenv("PDPS_KILL_DIR")
	if dir == "" {
		t.Skip("helper for TestKillAndRecover")
	}
	killAppend, _ := strconv.Atoi(os.Getenv("PDPS_KILL_APPEND"))
	killSync, _ := strconv.Atoi(os.Getenv("PDPS_KILL_SYNC"))

	// Tiny segments and an aggressive checkpoint threshold so kills land
	// around rotations and mid-checkpoint too.
	f, err := storage.OpenFile(dir, storage.FileOptions{SegmentBytes: 1 << 10, CheckpointBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	kb := &killBackend{File: f, killAppend: killAppend, killSync: killSync}

	prog := killProgram()
	base := wm.NewStore()
	var init wm.Delta
	for _, iw := range prog.WMEs {
		init.Adds = append(init.Adds, base.Insert(iw.Class, iw.Attrs))
	}
	if _, err := kb.Append(&storage.Record{Delta: &init}); err != nil {
		t.Fatal(err)
	}
	if err := kb.Sync(); err != nil {
		t.Fatal(err)
	}

	run := prog
	run.WMEs = nil
	opts := Options{Np: 4, CommitBatch: 8, Storage: kb, Restore: base}
	var eng interface{ Run() (Result, error) }
	switch name := os.Getenv("PDPS_KILL_ENGINE"); name {
	case "single":
		eng, err = NewSingle(run, opts)
	case "parallel-2pl":
		eng, err = NewParallel(run, lock.Scheme2PL, opts)
	case "parallel-rcrawa":
		eng, err = NewParallel(run, lock.SchemeRcRaWa, opts)
	default:
		t.Fatalf("unknown engine %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestKillAndRecover SIGKILLs engines mid-run at randomized points and
// verifies the storage layer's crash promises.
func TestKillAndRecover(t *testing.T) {
	if raceEnabled {
		t.Skip("child-process harness runs in the dedicated non-race CI step")
	}
	if os.Getenv("PDPS_KILL_DIR") != "" {
		t.Skip("child process")
	}
	points := 50
	if testing.Short() {
		points = 6
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// One append per firing plus the initial-WM seed record.
	maxAppends := killParts*killStages + 1

	for seed, engineName := range []string{"single", "parallel-2pl", "parallel-rcrawa"} {
		engineName := engineName
		rng := rand.New(rand.NewSource(0xC0FFEE + int64(seed)))
		t.Run(engineName, func(t *testing.T) {
			t.Parallel()
			for i := 0; i < points; i++ {
				dir := t.TempDir()
				killAppend, killSync := 0, 0
				if rng.Intn(2) == 0 {
					// +2 leaves room for runs that complete un-killed.
					killAppend = 1 + rng.Intn(maxAppends+2)
				} else {
					killSync = 1 + rng.Intn(maxAppends/2+2)
				}
				out := runKillChild(t, exe, dir, engineName, killAppend, killSync)
				maxAcked := parseAcks(t, out)
				verifyKillRecovery(t, dir, maxAcked, fmt.Sprintf("%s point %d (killAppend=%d killSync=%d)", engineName, i, killAppend, killSync))
			}
		})
	}
}

func runKillChild(t *testing.T, exe, dir, engineName string, killAppend, killSync int) []byte {
	t.Helper()
	cmd := exec.Command(exe, "-test.run=^TestKillChild$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"PDPS_KILL_DIR="+dir,
		"PDPS_KILL_ENGINE="+engineName,
		"PDPS_KILL_APPEND="+strconv.Itoa(killAppend),
		"PDPS_KILL_SYNC="+strconv.Itoa(killSync),
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("child failed to start: %v", err)
		}
		ws, ok := ee.Sys().(syscall.WaitStatus)
		if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
			t.Fatalf("child died abnormally: %v\n%s", err, out)
		}
	} else if bytes.Contains(out, []byte("FAIL")) {
		t.Fatalf("child test failed:\n%s", out)
	}
	return out
}

func parseAcks(t *testing.T, out []byte) storage.LSN {
	t.Helper()
	var max storage.LSN
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		var lsn uint64
		if _, err := fmt.Sscanf(sc.Text(), "ACK %d", &lsn); err == nil {
			if storage.LSN(lsn) > max {
				max = storage.LSN(lsn)
			}
		}
	}
	return max
}

// verifyKillRecovery checks the three crash promises over a killed
// child's directory.
func verifyKillRecovery(t *testing.T, dir string, maxAcked storage.LSN, label string) {
	t.Helper()

	// Independent replay of the surviving files, before OpenFile gets a
	// chance to repair anything: newest complete snapshot, then every
	// later segment via the exported segment reader.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snapName string
	var snapSeq, snapLSN uint64
	var segSeqs []uint64
	for _, en := range entries {
		name := en.Name()
		var seq, lsn uint64
		if _, err := fmt.Sscanf(name, "snapshot-%d-%d.wm", &seq, &lsn); err == nil && strings.HasSuffix(name, ".wm") {
			if seq >= snapSeq {
				snapSeq, snapLSN, snapName = seq, lsn, name
			}
			continue
		}
		if _, err := fmt.Sscanf(name, "wal-%d.log", &seq); err == nil && strings.HasSuffix(name, ".log") {
			segSeqs = append(segSeqs, seq)
		}
	}
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })

	base := wm.NewStore()
	if snapName != "" {
		fh, err := os.Open(filepath.Join(dir, snapName))
		if err != nil {
			t.Fatal(err)
		}
		base, err = wm.ReadSnapshot(fh)
		fh.Close()
		if err != nil {
			t.Fatalf("%s: snapshot unreadable: %v", label, err)
		}
	}
	manual := base.Clone()
	var records []*storage.Record
	for _, seq := range segSeqs {
		if seq < snapSeq {
			continue // covered by the snapshot; a crash may leave it behind
		}
		fh, err := os.Open(filepath.Join(dir, fmt.Sprintf("wal-%08d.log", seq)))
		if err != nil {
			t.Fatal(err)
		}
		recs, _, err := storage.ReadSegment(fh)
		fh.Close()
		if err != nil {
			t.Fatalf("%s: segment %d: %v", label, seq, err)
		}
		for _, r := range recs {
			if err := manual.ApplyLogged(r.Delta); err != nil {
				t.Fatalf("%s: independent replay: %v", label, err)
			}
			records = append(records, r)
		}
	}

	g, err := storage.OpenFile(dir, storage.FileOptions{})
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	rec, err := g.Recover()
	if err != nil {
		t.Fatalf("%s: recover: %v", label, err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	// (a) No acknowledged commit may be lost.
	if rec.LSN < maxAcked {
		t.Fatalf("%s: acked LSN %d lost — recovered only to %d", label, maxAcked, rec.LSN)
	}
	// (b) Recovery must equal the independent snapshot+log replay.
	if rec.LSN != storage.LSN(snapLSN)+storage.LSN(len(records)) {
		t.Fatalf("%s: recovered LSN %d, independent replay has %d+%d", label, rec.LSN, snapLSN, len(records))
	}
	if !bytes.Equal(storeSnapshot(t, rec.Store), storeSnapshot(t, manual)) {
		t.Fatalf("%s: recovered store differs from independent replay", label)
	}
	// (c) The surviving commit history must be admissible (Definition
	// 3.2) from the snapshot's state. Only the seed record may be
	// non-firing, and only at the head of the log.
	prog := killProgram()
	checkBase := base.Clone()
	var commits []trace.Event
	for i, r := range rec.Records {
		if r.Rule == "" {
			if i != 0 {
				t.Fatalf("%s: non-firing record at LSN offset %d", label, i)
			}
			if err := checkBase.ApplyLogged(r.Delta); err != nil {
				t.Fatal(err)
			}
			continue
		}
		commits = append(commits, trace.Event{Kind: trace.KindCommit, Rule: r.Rule, Inst: r.Inst, WMEs: r.WMEs})
	}
	if err := CheckTraceFrom(checkBase, prog.Rules, commits); err != nil {
		t.Fatalf("%s: recovered trace not admissible: %v", label, err)
	}
}
