package engine

import (
	"fmt"

	"pdps/internal/match"
	"pdps/internal/storage"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// runtime bundles the state and plumbing every engine shares: the
// loaded store and matcher, refraction memory, the run counters, and
// the commit sequence — verify, atomic delta application, WAL append,
// incremental re-match, and trace events. Engines differ only in how
// they schedule firings around it.
//
// runtime methods are not concurrency-safe. Serial engines call them
// from their run loop; the dynamic engine calls them from its single
// committer goroutine, which is the point of the design — the matcher
// and conflict set have exactly one writer.
type runtime struct {
	opts    Options
	store   *wm.Store
	matcher match.Matcher
	fired   map[string]bool // refraction: instantiation keys already fired

	// met holds the engine-layer metric handles; the run counters
	// (commits/aborts/skips/cycles) are its atomic series, so a
	// Snapshot taken while workers run reads consistent values.
	met *engineMetrics
	// smet holds the durability handles; nil unless Options.Storage is
	// set, so storage-free engines keep their registry shape.
	smet *storageMetrics
	// pendingAppends counts records appended since the last storage
	// sync — the size of the group the next fsync makes durable.
	pendingAppends int

	halted bool
	limit  bool
	err    error
}

// newRuntime loads the program and returns the shared engine state.
func newRuntime(p Program, opts Options) (*runtime, error) {
	o := opts.withDefaults()
	store, m, err := load(p, o)
	if err != nil {
		return nil, err
	}
	rt := &runtime{opts: o, store: store, matcher: m, fired: make(map[string]bool),
		met: newEngineMetrics(o.Metrics)}
	if o.Storage != nil {
		rt.smet = newStorageMetrics(o.Metrics)
	}
	return rt, nil
}

// firings returns the committed-production count.
func (rt *runtime) firings() int { return int(rt.met.runCommits.Load()) }

// stopping reports whether the run must stop, latching the firing
// limit on the way.
func (rt *runtime) stopping() bool {
	if rt.firings() >= rt.opts.MaxFirings {
		rt.limit = true
	}
	return rt.halted || rt.limit || rt.err != nil
}

// candidates returns the unfired instantiations of the conflict set in
// deterministic order.
func (rt *runtime) candidates() []*match.Instantiation {
	var out []*match.Instantiation
	for _, in := range rt.matcher.ConflictSet().All() {
		if !rt.fired[in.Key()] {
			out = append(out, in)
		}
	}
	return out
}

// fail records the first run error.
func (rt *runtime) fail(err error) {
	if rt.err == nil {
		rt.err = err
	}
}

// commit finishes one executed firing: optional semantic verification,
// atomic application of the staged delta, storage append, incremental
// re-match, refraction bookkeeping, and the commit (and, on halt, the
// halt) trace events. A verify failure leaves the transaction unstaged
// so the caller can abort it; any other error has consumed it.
//
// The storage append only stages the record — it becomes durable at
// the next syncStorage, which is where a parallel committer closes
// the firing's reply channel (group commit: ack after fsync).
func (rt *runtime) commit(in *match.Instantiation, tx *wm.Txn, txn int64, halt bool) error {
	key := in.Key()
	if rt.opts.Verify && !verifyActive(rt.store, in) {
		return fmt.Errorf("%w: %s committed while inactive", ErrInconsistent, key)
	}
	applyStart := rt.opts.Clock.Now()
	delta, err := tx.Commit()
	if err != nil {
		return err
	}
	fps := fingerprints(in)
	if rt.opts.Storage != nil {
		if _, err := rt.opts.Storage.Append(&storage.Record{
			Rule: in.Rule.Name, Inst: key, WMEs: fps, Delta: delta,
		}); err != nil {
			rt.fail(err)
		} else {
			rt.smet.appends.Inc()
			rt.pendingAppends++
		}
	}
	for _, w := range delta.Removes {
		rt.matcher.Remove(w)
	}
	for _, w := range delta.Adds {
		rt.matcher.Insert(w)
	}
	rt.fired[key] = true
	rt.met.commitInc()
	rt.met.rule(in.Rule.Name).commits.Inc()
	rt.met.applyNS.ObserveDuration(rt.opts.Clock.Now().Sub(applyStart))
	rt.opts.Log.Append(trace.Event{Kind: trace.KindCommit, Rule: in.Rule.Name,
		Inst: key, Txn: txn, WMEs: fps})
	if halt {
		rt.halted = true
		rt.opts.Log.Append(trace.Event{Kind: trace.KindHalt, Rule: in.Rule.Name, Inst: key, Txn: txn})
	}
	return nil
}

// syncStorage makes every staged record durable (one fsync covering
// the whole group) and then gives the backend a chance to checkpoint.
// No-op without a backend or staged records.
func (rt *runtime) syncStorage() {
	if rt.opts.Storage == nil || rt.pendingAppends == 0 {
		return
	}
	start := rt.opts.Clock.Now()
	err := rt.opts.Storage.Sync()
	rt.smet.fsyncNS.ObserveDuration(rt.opts.Clock.Now().Sub(start))
	rt.smet.fsyncs.Inc()
	rt.smet.groupSize.Observe(int64(rt.pendingAppends))
	rt.pendingAppends = 0
	if err != nil {
		rt.fail(err)
		return
	}
	rt.maybeCheckpoint()
}

// maybeCheckpoint triggers a size-based checkpoint on backends that
// support it. BeginCheckpoint seals the log boundary synchronously on
// this goroutine (the committer), and the snapshot is written from a
// clone of the store — in the background when free-running, inline
// under a deterministic scheduler so the controlled run stays a pure
// function of the policy. A background failure is sticky in the
// backend and surfaces from the next Sync or Close.
func (rt *runtime) maybeCheckpoint() {
	cp, ok := rt.opts.Storage.(storage.AutoCheckpointer)
	if !ok || !cp.CheckpointDue() {
		return
	}
	complete, err := cp.BeginCheckpoint()
	if err != nil {
		rt.fail(err)
		return
	}
	rt.smet.checkpoints.Inc()
	clone := rt.store.Clone()
	start := rt.opts.Clock.Now()
	run := func() {
		if complete(clone) == nil {
			rt.smet.checkpointNS.ObserveDuration(rt.opts.Clock.Now().Sub(start))
		}
	}
	if rt.opts.Sched != nil {
		run()
		return
	}
	go run()
}

// result assembles the run summary from the metric counters.
func (rt *runtime) result() Result {
	return Result{
		Firings:  int(rt.met.runCommits.Load()),
		Aborts:   int(rt.met.runAborts.Load()),
		Skips:    int(rt.met.runSkips.Load()),
		Cycles:   int(rt.met.runCycles.Load()),
		Halted:   rt.halted,
		LimitHit: rt.limit,
		Log:      rt.opts.Log,
		Store:    rt.store,
	}
}
