package engine

import (
	"fmt"

	"pdps/internal/match"
	"pdps/internal/trace"
	"pdps/internal/wm"
)

// CheckTrace is the post-hoc semantic-consistency checker (Definition
// 3.2): it verifies that a commit sequence recorded by any engine is a
// root-originating path of the single-thread execution graph of the
// program — i.e. that a single-thread run could have produced exactly
// this sequence. Committed instantiations are identified by rule name
// plus the content fingerprints of their matched WMEs; where several
// active instantiations share a fingerprint the checker backtracks.
//
// It returns nil if the sequence is consistent.
func CheckTrace(p Program, commits []trace.Event) error {
	store := wm.NewStore()
	for _, iw := range p.WMEs {
		store.Insert(iw.Class, iw.Attrs)
	}
	return checkTraceOn(store, p.Rules, commits)
}

// CheckTraceFrom is CheckTrace starting from an arbitrary working
// memory instead of the program's initial WMEs — the form crash
// recovery needs: a post-checkpoint trace tail is admissible iff it
// is a valid single-thread execution from the snapshot's state. The
// base store is not mutated (the checker replays a clone).
func CheckTraceFrom(base *wm.Store, rules []*match.Rule, commits []trace.Event) error {
	return checkTraceOn(base.Clone(), rules, commits)
}

// checkTraceOn validates the rules and replays the commit sequence
// against the given store, which it mutates.
func checkTraceOn(store *wm.Store, ruleList []*match.Rule, commits []trace.Event) error {
	rules := make(map[string]*match.Rule, len(ruleList))
	for _, r := range ruleList {
		if err := r.Validate(); err != nil {
			return err
		}
		rules[r.Name] = r
	}
	ok, err := replay(store, rules, commits)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: commit sequence is not a valid single-thread execution", ErrInconsistent)
	}
	return nil
}

// replay consumes commits against the store, backtracking over
// ambiguous instantiation choices. It mutates store only within a
// step's trial and restores it via delta inversion on backtrack.
func replay(store *wm.Store, rules map[string]*match.Rule, commits []trace.Event) (bool, error) {
	if len(commits) == 0 {
		return true, nil
	}
	step := commits[0]
	r, ok := rules[step.Rule]
	if !ok {
		return false, fmt.Errorf("engine: trace commits unknown rule %s", step.Rule)
	}
	for _, in := range match.MatchRule(store, r) {
		if !sameFingerprints(in, step.WMEs) {
			continue
		}
		tx := store.Begin()
		if _, err := match.ExecuteActions(in, tx); err != nil {
			tx.Abort()
			continue
		}
		applied, err := store.Apply(tx.Delta())
		if err != nil {
			return false, err
		}
		ok, err := replay(store, rules, commits[1:])
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
		if _, err := store.Apply(applied.Invert()); err != nil {
			return false, fmt.Errorf("engine: replay undo failed: %v", err)
		}
	}
	return false, nil
}

func sameFingerprints(in *match.Instantiation, want []string) bool {
	if len(in.WMEs) != len(want) {
		return false
	}
	for i, w := range in.WMEs {
		if w.String() != want[i] {
			return false
		}
	}
	return true
}
