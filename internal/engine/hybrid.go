package engine

import (
	"sync/atomic"

	"pdps/internal/match"
)

// inflightTable is the hybrid consistency layer's per-rule in-flight
// census: one atomic counter per rule, incremented when a firing of
// that rule enters execution and decremented when its commit verdict
// resolves. A firing may elide the lock manager when its rule
// statically interferes with no rule currently in flight (Section 4.1,
// Theorem 1: non-interfering productions fire serially-equivalently in
// any order).
//
// Protocol: every firing — elided or locked — registers BEFORE
// checking elidability. Two concurrent firings of interfering rules
// therefore each see the other's registration, and both fall back to
// locking; elision is never granted against a racing registrant. The
// check is deliberately conservative (a counter may linger until the
// committer answers a firing's submit), and the committer's
// conflict-set validation remains the consistency backstop either way
// — interference-based elision buys abort-freedom, not safety, which
// the pipeline already had.
type inflightTable struct {
	im     *match.InterferenceMatrix
	counts []atomic.Int64
}

// newInflightTable builds the census over the interference matrix's
// rule set.
func newInflightTable(im *match.InterferenceMatrix) *inflightTable {
	return &inflightTable{im: im, counts: make([]atomic.Int64, im.Size())}
}

// register marks one firing of rule idx as in flight.
func (t *inflightTable) register(idx int) { t.counts[idx].Add(1) }

// release retires one firing of rule idx.
func (t *inflightTable) release(idx int) { t.counts[idx].Add(-1) }

// canElide reports whether a registered firing of rule idx may skip
// the lock manager: no interfering rule (including a second instance
// of idx itself, when the rule self-interferes) is in flight. The
// caller must have registered idx first.
func (t *inflightTable) canElide(idx int) bool {
	row := t.im.Row(idx)
	for j := range t.counts {
		if !row[j] {
			continue
		}
		n := t.counts[j].Load()
		if j == idx {
			n-- // our own registration
		}
		if n > 0 {
			return false
		}
	}
	return true
}
