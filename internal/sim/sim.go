// Package sim implements the deterministic multiprocessor model of
// Section 5: productions of the initial conflict set start executing
// on Np processors (list scheduling in declaration order); a
// production commits the moment it finishes; each commit updates the
// conflict set through the production's add/delete sets, aborting
// running or queued productions it deactivates and scheduling the ones
// it activates. The simulator reproduces Figures 5.1–5.4 exactly and
// generalises them to arbitrary abstract systems, processor counts and
// execution times.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"pdps/internal/core"
)

// Commit records one committed production and its commit time.
type Commit struct {
	Name string
	Time int
}

// Abort records an aborted production: when it was killed, by whose
// commit, and how many time units of work it had completed (wasted
// computation, the f·T term of Example 5.1).
type Abort struct {
	Name string
	At   int
	By   string
	Ran  int

	full int // the production's full execution time
}

// Slot is one scheduled execution interval, for Gantt rendering.
type Slot struct {
	Proc      int
	Name      string
	Start     int
	End       int // commit time, or abort time for aborted runs
	Committed bool
	AbortedBy string
}

// Result summarises a multiprocessor run.
type Result struct {
	// Commits is the derived commit sequence σ with commit times.
	Commits []Commit
	// Aborts are the productions killed by commits.
	Aborts []Abort
	// TSingle is the single-thread execution time of σ: the sum of the
	// committed productions' execution times.
	TSingle int
	// TMulti is the multiple-thread completion time: the last commit's
	// time (0 when nothing commits).
	TMulti int
	// Schedule is the per-processor timeline.
	Schedule []Slot
	// Truncated reports the MaxCommits safety bound was hit.
	Truncated bool
}

// Speedup returns TSingle/TMulti (Section 5's definition), or 0 when
// nothing committed.
func (r Result) Speedup() float64 {
	if r.TMulti == 0 {
		return 0
	}
	return float64(r.TSingle) / float64(r.TMulti)
}

// Sigma returns the commit sequence as names.
func (r Result) Sigma() []string {
	out := make([]string, len(r.Commits))
	for i, c := range r.Commits {
		out[i] = c.Name
	}
	return out
}

// WastedWork returns the total execution time units spent on aborted
// runs — the second term of Example 5.1 before scaling by f.
func (r Result) WastedWork() int {
	total := 0
	for _, a := range r.Aborts {
		total += a.Ran
	}
	return total
}

// UniprocessorMultiTime evaluates Example 5.1's multi-thread time on a
// uniprocessor: the committed work plus the fraction f of the aborted
// productions' full execution times that was wasted before abort.
// For 0 ≤ f < 1 this is always at least TSingle, which is the paper's
// claim that single-thread execution on a uniprocessor is never slower.
func (r Result) UniprocessorMultiTime(f float64) float64 {
	wasted := 0
	for _, a := range r.Aborts {
		wasted += fullTimeOf(a)
	}
	return float64(r.TSingle) + f*float64(wasted)
}

// fullTimeOf recovers the aborted production's full execution time.
// Ran stores completed units; the slot records when it was killed, but
// the paper's formula charges f of the FULL time, so aborts carry it.
func fullTimeOf(a Abort) int { return a.full }

// Config parameterises a run.
type Config struct {
	// Np is the number of processors; values below 1 are an error.
	Np int
	// MaxCommits bounds non-terminating systems; 0 means 10000.
	MaxCommits int
}

// Run simulates the system on Np processors and derives the commit
// sequence, abort set and timings.
func Run(sys *core.System, cfg Config) (Result, error) {
	if cfg.Np < 1 {
		return Result{}, fmt.Errorf("sim: Np must be >= 1, got %d", cfg.Np)
	}
	maxCommits := cfg.MaxCommits
	if maxCommits == 0 {
		maxCommits = 10000
	}

	// Declaration order index for deterministic tie-breaking.
	declIdx := make(map[string]int)
	for i, p := range sys.Productions() {
		declIdx[p.Name] = i
	}

	type run struct {
		name  string
		proc  int
		start int
		end   int
	}
	var (
		res      Result
		state    = core.State(sys.Initial())
		procFree = make([]int, cfg.Np)
		running  []*run
		queue    []string // active, waiting for a processor (FIFO)
		now      = 0
	)
	// The initial queue follows declaration order (the paper assigns
	// P1..P4 to processors 1..4).
	for _, p := range sys.Productions() {
		if state.Contains(p.Name) {
			queue = append(queue, p.Name)
		}
	}

	timeOf := func(name string) int {
		p, _ := sys.Production(name)
		return p.Time
	}
	// schedule assigns queued productions to processors that are free
	// at time t; the rest wait for the next commit/abort event.
	schedule := func(t int) {
		for len(queue) > 0 {
			proc := -1
			for i, free := range procFree {
				if free <= t {
					proc = i
					break
				}
			}
			if proc == -1 {
				return
			}
			name := queue[0]
			queue = queue[1:]
			r := &run{name: name, proc: proc, start: t, end: t + timeOf(name)}
			procFree[proc] = r.end
			running = append(running, r)
		}
	}
	schedule(0)

	for len(running) > 0 {
		if len(res.Commits) >= maxCommits {
			res.Truncated = true
			break
		}
		// Next event: the earliest finishing run; ties by declaration order.
		sort.Slice(running, func(i, j int) bool {
			if running[i].end != running[j].end {
				return running[i].end < running[j].end
			}
			return declIdx[running[i].name] < declIdx[running[j].name]
		})
		r := running[0]
		running = running[1:]
		now = r.end

		next, err := sys.Step(state, r.name)
		if err != nil {
			// The production was deactivated between scheduling and
			// finish without being killed — impossible: kills happen at
			// commit time. Treat as internal error.
			return res, fmt.Errorf("sim: %v", err)
		}
		res.Commits = append(res.Commits, Commit{Name: r.name, Time: now})
		res.TSingle += timeOf(r.name)
		res.TMulti = now
		res.Schedule = append(res.Schedule, Slot{
			Proc: r.proc, Name: r.name, Start: r.start, End: now, Committed: true,
		})

		// Kill running/queued productions deactivated by this commit.
		deactivated := func(name string) bool {
			return state.Contains(name) && !next.Contains(name)
		}
		var survivors []*run
		for _, other := range running {
			if deactivated(other.name) {
				ran := now - other.start
				if ran < 0 {
					ran = 0
				}
				res.Aborts = append(res.Aborts, Abort{
					Name: other.name, At: now, By: r.name, Ran: ran, full: timeOf(other.name),
				})
				res.Schedule = append(res.Schedule, Slot{
					Proc: other.proc, Name: other.name, Start: other.start,
					End: now, AbortedBy: r.name,
				})
				if procFree[other.proc] == other.end {
					procFree[other.proc] = now
				}
				continue
			}
			survivors = append(survivors, other)
		}
		running = survivors
		var keptQueue []string
		for _, q := range queue {
			if deactivated(q) {
				res.Aborts = append(res.Aborts, Abort{Name: q, At: now, By: r.name, full: timeOf(q)})
				continue
			}
			keptQueue = append(keptQueue, q)
		}
		queue = keptQueue

		// Enqueue productions activated by this commit.
		runningOrQueued := make(map[string]bool)
		for _, other := range running {
			runningOrQueued[other.name] = true
		}
		for _, q := range queue {
			runningOrQueued[q] = true
		}
		for _, name := range next {
			// Anything active but neither running nor queued needs a
			// processor: newly added productions, and the committed
			// production itself when re-added by its own add set.
			if !runningOrQueued[name] {
				queue = append(queue, name)
			}
		}
		state = next
		schedule(now)
	}
	sort.Slice(res.Schedule, func(i, j int) bool {
		if res.Schedule[i].Start != res.Schedule[j].Start {
			return res.Schedule[i].Start < res.Schedule[j].Start
		}
		return res.Schedule[i].Proc < res.Schedule[j].Proc
	})
	return res, nil
}

// Gantt renders the schedule as an ASCII timeline, one row per
// processor, in the style of Figures 5.1–5.4.
func (r Result) Gantt() string {
	byProc := make(map[int][]Slot)
	maxProc := 0
	for _, s := range r.Schedule {
		byProc[s.Proc] = append(byProc[s.Proc], s)
		if s.Proc > maxProc {
			maxProc = s.Proc
		}
	}
	var b strings.Builder
	for p := 0; p <= maxProc; p++ {
		fmt.Fprintf(&b, "proc %d: ", p+1)
		slots := byProc[p]
		sort.Slice(slots, func(i, j int) bool { return slots[i].Start < slots[j].Start })
		cur := 0
		for _, s := range slots {
			for ; cur < s.Start; cur++ {
				b.WriteString(".")
			}
			label := s.Name
			width := s.End - s.Start
			if width < 1 {
				width = 1
			}
			cell := label
			if len(cell) > width {
				cell = cell[:width]
			}
			b.WriteString(cell)
			for i := len(cell); i < width; i++ {
				b.WriteString("=")
			}
			if !s.Committed {
				b.WriteString("x")
				cur = s.End + 1
				continue
			}
			cur = s.End
		}
		b.WriteString("\n")
	}
	return b.String()
}
