package sim

import "pdps/internal/core"

// Analytic bounds for the multiprocessor model — the "formal analysis
// of these effects" the paper reports as work in progress (Section 5).
// For a conflict-free wave (no delete sets among the active
// productions) the schedule is classic list scheduling, so Graham's
// bounds apply; with conflicts, the committed work and the longest
// committed production still bound the completion time from below.

// GrahamBounds returns lower and upper bounds for the makespan of list
// scheduling the given execution times on np processors:
//
//	lb = max(ceil(total/np), max time)
//	ub = total/np + max time   (Graham's (2 - 1/m) style bound)
func GrahamBounds(times []int, np int) (lb, ub int) {
	if np < 1 || len(times) == 0 {
		return 0, 0
	}
	total, max := 0, 0
	for _, t := range times {
		total += t
		if t > max {
			max = t
		}
	}
	lb = (total + np - 1) / np
	if max > lb {
		lb = max
	}
	ub = total/np + max
	return lb, ub
}

// SpeedupUpperBound returns the analytic ceiling on the speed-up of a
// derived run: parallelism cannot exceed the processor count, nor the
// ratio of total committed work to the longest committed production
// (the critical path of a single wave).
func SpeedupUpperBound(r Result, np int) float64 {
	if len(r.Commits) == 0 {
		return 0
	}
	// The longest committed slot is the single-wave critical path.
	max := 0
	for _, s := range r.Schedule {
		if s.Committed && s.End-s.Start > max {
			max = s.End - s.Start
		}
	}
	if max == 0 {
		return float64(np)
	}
	byWork := float64(r.TSingle) / float64(max)
	if f := float64(np); f < byWork {
		return f
	}
	return byWork
}

// ConflictFree reports whether none of the system's productions can
// deactivate another (empty delete sets), i.e. the initial conflict
// set executes as one list-scheduled wave.
func ConflictFree(sys *core.System) bool {
	for _, p := range sys.Productions() {
		if len(p.Del) > 0 {
			return false
		}
	}
	return true
}

// WaveTimes returns the execution times of the initially active
// productions, the input to GrahamBounds for conflict-free systems
// with no add sets.
func WaveTimes(sys *core.System) []int {
	initial := core.State(sys.Initial())
	var out []int
	for _, p := range sys.Productions() {
		if initial.Contains(p.Name) {
			out = append(out, p.Time)
		}
	}
	return out
}
