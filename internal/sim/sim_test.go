package sim

import (
	"reflect"
	"strings"
	"testing"

	"pdps/internal/core"
	"pdps/internal/workload"
)

func mustRun(t *testing.T, sys *core.System, np int) Result {
	t.Helper()
	res, err := Run(sys, Config{Np: np})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFig51BaseCase asserts the paper's base example (Figure 5.1):
// T_single(σ1)=9, T_multi=4, speedup 2.25, σ1 = p3 p2 p4, P1 aborted.
func TestFig51BaseCase(t *testing.T) {
	res := mustRun(t, workload.Fig51System(), 4)
	if got := res.Sigma(); !reflect.DeepEqual(got, []string{"P3", "P2", "P4"}) {
		t.Fatalf("sigma = %v, want [P3 P2 P4]", got)
	}
	if res.TSingle != 9 {
		t.Errorf("T_single = %d, want 9", res.TSingle)
	}
	if res.TMulti != 4 {
		t.Errorf("T_multi = %d, want 4", res.TMulti)
	}
	if s := res.Speedup(); s != 2.25 {
		t.Errorf("speedup = %v, want 2.25", s)
	}
	if len(res.Aborts) != 1 || res.Aborts[0].Name != "P1" || res.Aborts[0].By != "P2" || res.Aborts[0].At != 3 {
		t.Errorf("aborts = %+v, want P1 aborted by P2 at t=3", res.Aborts)
	}
}

// TestFig52DegreeOfConflict asserts Figure 5.2: with higher conflict,
// σ2 = p3 p2, T_single=5, T_multi=3, speedup 5/3.
func TestFig52DegreeOfConflict(t *testing.T) {
	res := mustRun(t, workload.Fig52System(), 4)
	if got := res.Sigma(); !reflect.DeepEqual(got, []string{"P3", "P2"}) {
		t.Fatalf("sigma = %v, want [P3 P2]", got)
	}
	if res.TSingle != 5 || res.TMulti != 3 {
		t.Errorf("T_single/T_multi = %d/%d, want 5/3", res.TSingle, res.TMulti)
	}
	if s := res.Speedup(); s < 1.66 || s > 1.67 {
		t.Errorf("speedup = %v, want 1.67", s)
	}
	if len(res.Aborts) != 2 {
		t.Errorf("aborts = %+v, want P4 (by P3) and P1 (by P2)", res.Aborts)
	}
}

// TestFig53ExecutionTimeVariation asserts Figure 5.3: T(P2)+1 gives
// T_single=10, T_multi=4, speedup 2.5.
func TestFig53ExecutionTimeVariation(t *testing.T) {
	res := mustRun(t, workload.Fig53System(), 4)
	if res.TSingle != 10 || res.TMulti != 4 {
		t.Fatalf("T_single/T_multi = %d/%d, want 10/4", res.TSingle, res.TMulti)
	}
	if s := res.Speedup(); s != 2.5 {
		t.Errorf("speedup = %v, want 2.5", s)
	}
}

// TestFig54ProcessorVariation asserts Figure 5.4: the base case on
// Np=3 gives T_single=9, T_multi=6, speedup 1.5 (P4 waits for P3's
// processor).
func TestFig54ProcessorVariation(t *testing.T) {
	res := mustRun(t, workload.Fig51System(), workload.Fig54Np())
	if got := res.Sigma(); !reflect.DeepEqual(got, []string{"P3", "P2", "P4"}) {
		t.Fatalf("sigma = %v, want [P3 P2 P4]", got)
	}
	if res.TSingle != 9 || res.TMulti != 6 {
		t.Fatalf("T_single/T_multi = %d/%d, want 9/6", res.TSingle, res.TMulti)
	}
	if s := res.Speedup(); s != 1.5 {
		t.Errorf("speedup = %v, want 1.5", s)
	}
	// P4 must have started at t=2 on the processor P3 vacated.
	for _, s := range res.Schedule {
		if s.Name == "P4" && (s.Start != 2 || s.End != 6) {
			t.Errorf("P4 slot = %+v, want start 2 end 6", s)
		}
	}
}

// TestExample51Uniprocessor asserts the inequality of Example 5.1:
// multi-thread on a uniprocessor is never faster than single-thread,
// for any abort fraction f in [0,1).
func TestExample51Uniprocessor(t *testing.T) {
	res := mustRun(t, workload.Fig51System(), 4)
	for _, f := range []float64{0, 0.25, 0.5, 0.99} {
		tm := res.UniprocessorMultiTime(f)
		if tm < float64(res.TSingle) {
			t.Errorf("f=%v: T_multi,uni = %v < T_single = %d", f, tm, res.TSingle)
		}
	}
	// With f=0.5 the wasted work is half of P1's full 5 units.
	if got := res.UniprocessorMultiTime(0.5); got != 9+2.5 {
		t.Errorf("T_multi,uni(0.5) = %v, want 11.5", got)
	}
}

// TestSigmaIsValidSingleThreadSequence ties Section 5 back to Section
// 3: every commit sequence the simulator derives must be semantically
// consistent (a valid single-thread sequence).
func TestSigmaIsValidSingleThreadSequence(t *testing.T) {
	systems := []*core.System{
		workload.Fig51System(),
		workload.Fig52System(),
		workload.Fig53System(),
		workload.Fig32System(),
	}
	for seed := int64(0); seed < 20; seed++ {
		systems = append(systems, workload.RandomAbstract(seed, 8, 2, 1, 5))
	}
	for i, sys := range systems {
		for np := 1; np <= 5; np++ {
			res, err := Run(sys, Config{Np: np})
			if err != nil {
				t.Fatalf("system %d np %d: %v", i, np, err)
			}
			if !sys.IsValidSequence(res.Sigma()) {
				t.Fatalf("system %d np %d: derived sigma %v is not a valid sequence: %v",
					i, np, res.Sigma(), sys.ExplainInvalid(res.Sigma()))
			}
		}
	}
}

// TestSingleProcessorMatchesSerial checks Np=1 degenerates to serial
// execution: no two slots overlap and speedup is at most 1.
func TestSingleProcessorMatchesSerial(t *testing.T) {
	res := mustRun(t, workload.Fig51System(), 1)
	for i, a := range res.Schedule {
		for _, b := range res.Schedule[i+1:] {
			if a.Start < b.End && b.Start < a.End {
				t.Fatalf("overlapping slots on uniprocessor: %+v / %+v", a, b)
			}
		}
	}
	if s := res.Speedup(); s > 1.0 {
		t.Errorf("speedup on uniprocessor = %v > 1", s)
	}
}

// TestSpeedupMonotonicInProcessors: for the conflict-chain workload,
// adding processors never hurts (the paper's Section 5.3 observation).
func TestSpeedupMonotonicInProcessors(t *testing.T) {
	sys := workload.ConflictChain(12, 0, 2) // no conflict: pure parallelism
	prev := 0.0
	for np := 1; np <= 6; np++ {
		res := mustRun(t, sys, np)
		if res.Speedup() < prev-1e-9 {
			t.Fatalf("speedup decreased at np=%d: %v -> %v", np, prev, res.Speedup())
		}
		prev = res.Speedup()
	}
	// And with enough processors it must exceed 1.
	if prev <= 1.0 {
		t.Fatalf("no speedup with 6 processors: %v", prev)
	}
}

// TestSpeedupDecreasesWithConflict: higher degree of conflict gives
// lower speedup on the same workload (Section 5.1).
func TestSpeedupDecreasesWithConflict(t *testing.T) {
	var speeds []float64
	for _, degree := range []int{0, 2, 6, 11} {
		res := mustRun(t, workload.ConflictChain(12, degree, 2), 12)
		speeds = append(speeds, res.Speedup())
	}
	for i := 1; i < len(speeds); i++ {
		if speeds[i] > speeds[i-1]+1e-9 {
			t.Fatalf("speedup rose with more conflict: %v", speeds)
		}
	}
	if speeds[0] <= speeds[len(speeds)-1] {
		t.Fatalf("conflict sweep is flat: %v", speeds)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(workload.Fig51System(), Config{Np: 0}); err == nil {
		t.Fatal("Np=0 must error")
	}
	// Non-terminating system hits MaxCommits.
	sys, err := core.NewSystem([]*core.Production{
		{Name: "P", Add: []string{"P"}, Time: 1},
	}, []string{"P"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, Config{Np: 1, MaxCommits: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || len(res.Commits) != 7 {
		t.Fatalf("truncated=%v commits=%d, want truncation at 7", res.Truncated, len(res.Commits))
	}
}

// TestAddSetsScheduleMidRun: a production activated by a commit gets a
// processor when one frees and contributes to the commit sequence.
func TestAddSetsScheduleMidRun(t *testing.T) {
	sys, err := core.NewSystem([]*core.Production{
		{Name: "A", Time: 2, Add: []string{"C"}},
		{Name: "B", Time: 5},
		{Name: "C", Time: 1},
	}, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	// Np=2: A(0-2) commits, activates C; C runs 2-3 on A's processor;
	// B finishes at 5.
	res := mustRun(t, sys, 2)
	if got := res.Sigma(); !reflect.DeepEqual(got, []string{"A", "C", "B"}) {
		t.Fatalf("sigma = %v", got)
	}
	if res.TMulti != 5 {
		t.Fatalf("T_multi = %d, want 5", res.TMulti)
	}
	for _, s := range res.Schedule {
		if s.Name == "C" && (s.Start != 2 || s.End != 3) {
			t.Fatalf("C slot = %+v, want 2..3", s)
		}
	}
	// Np=1: strictly serial: A(0-2), then B(2-7), then C(7-8).
	res1 := mustRun(t, sys, 1)
	if res1.TMulti != 8 {
		t.Fatalf("Np=1 T_multi = %d, want 8", res1.TMulti)
	}
}

// TestSelfReAddRunsAgain: a production whose add set re-activates
// itself is rescheduled after each commit.
func TestSelfReAddRunsAgain(t *testing.T) {
	sys, err := core.NewSystem([]*core.Production{
		{Name: "P", Time: 2, Add: []string{"P"}},
	}, []string{"P"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, Config{Np: 3, MaxCommits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Commits) != 4 || !res.Truncated {
		t.Fatalf("commits = %v truncated = %v", res.Commits, res.Truncated)
	}
	// Sequential self-dependency: commit times 2, 4, 6, 8.
	for i, c := range res.Commits {
		if c.Time != (i+1)*2 {
			t.Fatalf("commit %d at %d, want %d", i, c.Time, (i+1)*2)
		}
	}
}

// TestAbortFreesProcessorForQueuedWork: an aborted production's
// processor is reused by queued productions at the abort time.
func TestAbortFreesProcessorForQueuedWork(t *testing.T) {
	sys, err := core.NewSystem([]*core.Production{
		{Name: "K", Time: 1, Del: []string{"L"}}, // killer commits at 1
		{Name: "L", Time: 10},                    // long victim
		{Name: "W", Time: 2},                     // queued work
	}, []string{"K", "L", "W"})
	if err != nil {
		t.Fatal(err)
	}
	// Np=2: K(0-1) and L(0-10 aborted at 1); W waits, starts at 1 on a
	// freed processor, commits at 3.
	res := mustRun(t, sys, 2)
	if res.TMulti != 3 {
		t.Fatalf("T_multi = %d, want 3 (W reuses the victim's processor)", res.TMulti)
	}
	if len(res.Aborts) != 1 || res.Aborts[0].Name != "L" || res.Aborts[0].Ran != 1 {
		t.Fatalf("aborts = %+v", res.Aborts)
	}
}

func TestGanttRendering(t *testing.T) {
	res := mustRun(t, workload.Fig51System(), 4)
	g := res.Gantt()
	if !strings.Contains(g, "proc 1") || !strings.Contains(g, "proc 4") {
		t.Fatalf("Gantt missing processors:\n%s", g)
	}
	if !strings.Contains(g, "x") {
		t.Fatalf("Gantt missing abort marker:\n%s", g)
	}
}
