package sim

import (
	"math/rand"
	"testing"

	"pdps/internal/core"
	"pdps/internal/workload"
)

// randomConflictFree builds a system of n independent productions
// (no adds, no deletes) with random times.
func randomConflictFree(seed int64, n, maxTime int) *core.System {
	rng := rand.New(rand.NewSource(seed))
	prods := make([]*core.Production, n)
	names := make([]string, n)
	for i := range prods {
		names[i] = string(rune('A' + i%26))
		if i >= 26 {
			names[i] = names[i] + string(rune('0'+i/26))
		}
		prods[i] = &core.Production{Name: names[i], Time: 1 + rng.Intn(maxTime)}
	}
	s, err := core.NewSystem(prods, names)
	if err != nil {
		panic(err)
	}
	return s
}

// TestGrahamBoundsHoldForConflictFreeWaves property-tests the analytic
// model: the simulator's makespan always lies within Graham's bounds
// for list scheduling.
func TestGrahamBoundsHoldForConflictFreeWaves(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		n := 2 + int(seed%9)
		sys := randomConflictFree(seed, n, 7)
		if !ConflictFree(sys) {
			t.Fatal("generator broken")
		}
		for np := 1; np <= n+1; np++ {
			res, err := Run(sys, Config{Np: np})
			if err != nil {
				t.Fatal(err)
			}
			lb, ub := GrahamBounds(WaveTimes(sys), np)
			if res.TMulti < lb || res.TMulti > ub {
				t.Fatalf("seed %d np %d: T_multi = %d outside [%d, %d]",
					seed, np, res.TMulti, lb, ub)
			}
		}
	}
}

// TestSpeedupNeverExceedsAnalyticBound checks the speed-up ceiling on
// both the paper fixtures and random systems (with conflicts).
func TestSpeedupNeverExceedsAnalyticBound(t *testing.T) {
	systems := []*core.System{
		workload.Fig51System(),
		workload.Fig52System(),
		workload.Fig53System(),
	}
	for seed := int64(0); seed < 30; seed++ {
		systems = append(systems, workload.RandomAbstract(seed, 10, 2, 1, 6))
	}
	for i, sys := range systems {
		for np := 1; np <= 6; np++ {
			res, err := Run(sys, Config{Np: np})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Commits) == 0 {
				continue
			}
			bound := SpeedupUpperBound(res, np)
			if res.Speedup() > bound+1e-9 {
				t.Fatalf("system %d np %d: speedup %.3f exceeds bound %.3f",
					i, np, res.Speedup(), bound)
			}
		}
	}
}

func TestGrahamBoundsEdgeCases(t *testing.T) {
	if lb, ub := GrahamBounds(nil, 4); lb != 0 || ub != 0 {
		t.Fatal("empty times")
	}
	if lb, ub := GrahamBounds([]int{5}, 0); lb != 0 || ub != 0 {
		t.Fatal("np=0")
	}
	lb, ub := GrahamBounds([]int{5, 3, 2, 4}, 4)
	if lb != 5 { // max time dominates
		t.Fatalf("lb = %d, want 5", lb)
	}
	if ub < lb {
		t.Fatalf("ub %d < lb %d", ub, lb)
	}
	lb, _ = GrahamBounds([]int{2, 2, 2, 2}, 2)
	if lb != 4 { // total/np dominates
		t.Fatalf("lb = %d, want 4", lb)
	}
}

func TestConflictFreeDetection(t *testing.T) {
	if ConflictFree(workload.Fig51System()) {
		t.Fatal("fig 5.1 has a delete set")
	}
	if !ConflictFree(randomConflictFree(1, 4, 3)) {
		t.Fatal("independent wave misdetected")
	}
}
