package treat

import (
	"fmt"
	"math/rand"
	"testing"

	"pdps/internal/match"
	"pdps/internal/wm"
)

func attrs(kv ...interface{}) map[string]wm.Value {
	m := make(map[string]wm.Value)
	for i := 0; i < len(kv); i += 2 {
		k := kv[i].(string)
		switch v := kv[i+1].(type) {
		case int:
			m[k] = wm.Int(int64(v))
		case string:
			m[k] = wm.Sym(v)
		case bool:
			m[k] = wm.Bool(v)
		default:
			panic("bad attr value")
		}
	}
	return m
}

func joinRule() *match.Rule {
	return &match.Rule{
		Name: "pass",
		Conditions: []match.Condition{
			{Class: "part", Tests: []match.AttrTest{
				{Attr: "id", Op: match.OpEq, Var: "x"},
				{Attr: "status", Op: match.OpEq, Const: wm.Sym("ready")},
			}},
			{Class: "machine", Tests: []match.AttrTest{
				{Attr: "accepts", Op: match.OpEq, Var: "x"},
			}},
		},
		Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
	}
}

func TestTreatJoinAndRetract(t *testing.T) {
	s := wm.NewStore()
	m := New()
	if err := m.AddRule(joinRule()); err != nil {
		t.Fatal(err)
	}
	p := s.Insert("part", attrs("id", 1, "status", "ready"))
	mc := s.Insert("machine", attrs("accepts", 1))
	m.Insert(p)
	m.Insert(mc)
	if m.ConflictSet().Len() != 1 {
		t.Fatalf("conflict set = %d, want 1", m.ConflictSet().Len())
	}
	m.Remove(p)
	if m.ConflictSet().Len() != 0 {
		t.Fatal("removal did not retract")
	}
}

func TestTreatNegated(t *testing.T) {
	r := &match.Rule{
		Name: "lone",
		Conditions: []match.Condition{
			{Class: "a", Tests: []match.AttrTest{{Attr: "v", Op: match.OpEq, Var: "x"}}},
			{Class: "b", Negated: true, Tests: []match.AttrTest{{Attr: "v", Op: match.OpEq, Var: "x"}}},
		},
		Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
	}
	s := wm.NewStore()
	m := New()
	if err := m.AddRule(r); err != nil {
		t.Fatal(err)
	}
	a := s.Insert("a", attrs("v", 1))
	m.Insert(a)
	if m.ConflictSet().Len() != 1 {
		t.Fatal("unblocked instantiation missing")
	}
	b := s.Insert("b", attrs("v", 1))
	m.Insert(b)
	if m.ConflictSet().Len() != 0 {
		t.Fatal("blocker insert did not retract")
	}
	m.Remove(b)
	if m.ConflictSet().Len() != 1 {
		t.Fatal("blocker removal did not restore")
	}
}

func TestTreatDuplicateRule(t *testing.T) {
	m := New()
	if err := m.AddRule(joinRule()); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRule(joinRule()); err == nil {
		t.Fatal("duplicate must be rejected")
	}
}

// randomRule mirrors the generator used in the rete oracle tests.
func randomRule(rng *rand.Rand, name string) *match.Rule {
	numCE := 1 + rng.Intn(3)
	var conds []match.Condition
	bound := false
	for i := 0; i < numCE; i++ {
		c := match.Condition{Class: fmt.Sprintf("c%d", rng.Intn(4))}
		if rng.Intn(2) == 0 {
			ops := []match.Op{match.OpEq, match.OpNe, match.OpLt, match.OpGt, match.OpLe, match.OpGe}
			c.Tests = append(c.Tests, match.AttrTest{
				Attr:  fmt.Sprintf("a%d", rng.Intn(3)),
				Op:    ops[rng.Intn(len(ops))],
				Const: wm.Int(int64(rng.Intn(4))),
			})
		}
		if i == 0 || !bound {
			if rng.Intn(2) == 0 {
				c.Tests = append(c.Tests, match.AttrTest{
					Attr: fmt.Sprintf("a%d", rng.Intn(3)), Op: match.OpEq, Var: "x"})
				bound = true
			}
		} else {
			ops := []match.Op{match.OpEq, match.OpNe, match.OpLt, match.OpGt}
			c.Tests = append(c.Tests, match.AttrTest{
				Attr: fmt.Sprintf("a%d", rng.Intn(3)),
				Op:   ops[rng.Intn(len(ops))], Var: "x"})
		}
		if i > 0 && bound && rng.Intn(4) == 0 {
			c.Negated = true
		}
		conds = append(conds, c)
	}
	if conds[0].Negated {
		conds[0].Negated = false
	}
	r := &match.Rule{Name: name, Conditions: conds,
		Actions: []match.Action{{Kind: match.ActHalt}}}
	if r.Validate() != nil {
		for i := range r.Conditions {
			var keep []match.AttrTest
			for _, t := range r.Conditions[i].Tests {
				if !t.IsVar() {
					keep = append(keep, t)
				}
			}
			r.Conditions[i].Tests = keep
			r.Conditions[i].Negated = false
		}
	}
	return r
}

// TestTreatMatchesNaiveOracle requires TREAT to agree with the naive
// matcher on random rule sets under random insert/remove streams.
func TestTreatMatchesNaiveOracle(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := wm.NewStore()
		tr := New()
		naive := match.NewNaive()
		for i := 0; i < 1+rng.Intn(4); i++ {
			r := randomRule(rng, fmt.Sprintf("r%d", i))
			if err := tr.AddRule(r); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := naive.AddRule(r); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		var live []*wm.WME
		for step := 0; step < 60; step++ {
			if len(live) == 0 || rng.Intn(3) > 0 {
				a := map[string]wm.Value{}
				for i := 0; i < 3; i++ {
					if rng.Intn(3) > 0 {
						a[fmt.Sprintf("a%d", i)] = wm.Int(int64(rng.Intn(4)))
					}
				}
				w := s.Insert(fmt.Sprintf("c%d", rng.Intn(4)), a)
				live = append(live, w)
				tr.Insert(w)
				naive.Insert(w)
			} else {
				i := rng.Intn(len(live))
				w := live[i]
				live = append(live[:i], live[i+1:]...)
				tr.Remove(w)
				naive.Remove(w)
			}
			a, b := tr.ConflictSet(), naive.ConflictSet()
			if a.Len() != b.Len() {
				t.Fatalf("seed %d step %d: treat=%d naive=%d\ntreat: %v\nnaive: %v",
					seed, step, a.Len(), b.Len(), a.All(), b.All())
			}
			for _, in := range a.All() {
				if !b.Contains(in.Key()) {
					t.Fatalf("seed %d: treat has %v, naive does not", seed, in)
				}
			}
		}
	}
}
