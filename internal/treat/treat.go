// Package treat implements the TREAT match algorithm (Miranker 1984),
// the paper's cited alternative to Rete: it retains only alpha
// memories (per-condition-element filtered WME sets) and recomputes
// joins seeded at the changed WME, storing no beta-level partial-match
// state. The conflict set itself doubles as TREAT's only inter-cycle
// join memory.
package treat

import (
	"fmt"

	"pdps/internal/match"
	"pdps/internal/wm"
)

// ceAlpha is the alpha memory of one condition element of one rule.
type ceAlpha struct {
	cond  match.Condition
	items map[*wm.WME]bool
}

func (a *ceAlpha) matches(w *wm.WME) bool {
	// A WME is admitted to the alpha memory if it can satisfy the CE's
	// constant tests; variable tests are join-time work. Binding
	// occurrences require attribute presence.
	if w.Class != a.cond.Class {
		return false
	}
	for _, t := range a.cond.Tests {
		if !w.HasAttr(t.Attr) {
			return false
		}
		if !t.IsVar() && !t.Matches(w.Attr(t.Attr)) {
			return false
		}
	}
	return true
}

type compiledRule struct {
	rule   *match.Rule
	alphas []*ceAlpha // one per condition element, in order
}

// Matcher is the TREAT matcher. It implements match.Matcher.
type Matcher struct {
	rules  []*compiledRule
	byName map[string]*compiledRule
	cs     *match.ConflictSet
}

// New returns an empty TREAT matcher.
func New() *Matcher {
	return &Matcher{byName: make(map[string]*compiledRule), cs: match.NewConflictSet()}
}

// AddRule validates and compiles a rule. Rules added after WMEs do not
// see prior WMEs (engines add rules first); use Insert to seed.
func (m *Matcher) AddRule(r *match.Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if _, dup := m.byName[r.Name]; dup {
		return fmt.Errorf("treat: duplicate rule %s", r.Name)
	}
	cr := &compiledRule{rule: r}
	for _, c := range r.Conditions {
		cr.alphas = append(cr.alphas, &ceAlpha{cond: c, items: make(map[*wm.WME]bool)})
	}
	m.rules = append(m.rules, cr)
	m.byName[r.Name] = cr
	return nil
}

// ConflictSet returns the live conflict set.
func (m *Matcher) ConflictSet() *match.ConflictSet { return m.cs }

// TrackChanges enables membership journaling on the live conflict set,
// which this matcher maintains incrementally.
func (m *Matcher) TrackChanges(on bool) { m.cs.TrackChanges(on) }

// Insert adds a WME version and updates the conflict set: new
// instantiations through each positive CE the WME enters, and retracted
// instantiations whose negated CEs the WME now satisfies.
func (m *Matcher) Insert(w *wm.WME) {
	for _, cr := range m.rules {
		entered := make([]int, 0, len(cr.alphas))
		for i, a := range cr.alphas {
			if a.items[w] {
				continue
			}
			if a.matches(w) {
				a.items[w] = true
				entered = append(entered, i)
			}
		}
		for _, i := range entered {
			if cr.alphas[i].cond.Negated {
				m.retractBlocked(cr, i, w)
			} else {
				m.addSeeded(cr, i, w)
			}
		}
	}
}

// Remove retracts a WME version: instantiations built on it disappear,
// and instantiations blocked only by it (through a negated CE) appear.
func (m *Matcher) Remove(w *wm.WME) {
	for _, cr := range m.rules {
		var left []int
		for i, a := range cr.alphas {
			if a.items[w] {
				delete(a.items, w)
				left = append(left, i)
			}
		}
		for _, i := range left {
			if cr.alphas[i].cond.Negated {
				// The blocker is gone: instantiations it suppressed may
				// now hold. Recompute the rule's matches; Add dedups.
				m.addSeeded(cr, -1, nil)
			} else {
				m.cs.RemoveUsing(w)
			}
		}
	}
}

// retractBlocked removes instantiations of cr that the new WME w now
// blocks through negated CE index ci.
func (m *Matcher) retractBlocked(cr *compiledRule, ci int, w *wm.WME) {
	cond := cr.alphas[ci].cond
	for _, in := range m.cs.All() {
		if in.Rule != cr.rule {
			continue
		}
		if _, blocked := match.TestCE(cond, w, in.Bindings); blocked {
			m.cs.Remove(in.Key())
		}
	}
}

// addSeeded enumerates instantiations of cr. When pin >= 0, only
// instantiations using pinW at positive CE pin are generated (the
// seeded TREAT join); pin < 0 enumerates all.
func (m *Matcher) addSeeded(cr *compiledRule, pin int, pinW *wm.WME) {
	var rec func(ci int, wmes []*wm.WME, b match.Bindings)
	rec = func(ci int, wmes []*wm.WME, b match.Bindings) {
		if ci == len(cr.alphas) {
			ws := make([]*wm.WME, len(wmes))
			copy(ws, wmes)
			m.cs.Add(&match.Instantiation{Rule: cr.rule, WMEs: ws, Bindings: b.Clone()})
			return
		}
		a := cr.alphas[ci]
		if a.cond.Negated {
			for w := range a.items {
				if _, ok := match.TestCE(a.cond, w, b); ok {
					return
				}
			}
			rec(ci+1, wmes, b)
			return
		}
		if ci == pin {
			if nb, ok := match.TestCE(a.cond, pinW, b); ok {
				rec(ci+1, append(wmes, pinW), nb)
			}
			return
		}
		for w := range a.items {
			if nb, ok := match.TestCE(a.cond, w, b); ok {
				rec(ci+1, append(wmes, w), nb)
			}
		}
	}
	rec(0, nil, make(match.Bindings))
}

var _ match.Matcher = (*Matcher)(nil)
