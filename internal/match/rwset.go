package match

import (
	"fmt"
	"sort"
	"strings"
)

// ClassAttr names a column of working memory: a class (relation) and an
// attribute. An empty Attr denotes the whole relation — used for
// existence reads (negated CEs), tuple creation (make) and tuple
// deletion (remove), which conflict with every attribute of the class.
type ClassAttr struct {
	Class string
	Attr  string
}

// String renders the column as class.attr or class.* for whole-relation.
func (c ClassAttr) String() string {
	if c.Attr == "" {
		return c.Class + ".*"
	}
	return c.Class + "." + c.Attr
}

// Overlaps reports whether two columns can denote the same data: same
// class, and equal attributes or either side whole-relation.
func (c ClassAttr) Overlaps(o ClassAttr) bool {
	if c.Class != o.Class {
		return false
	}
	return c.Attr == "" || o.Attr == "" || c.Attr == o.Attr
}

// RWSet is the static read and write set of a rule over working-memory
// columns, the input to the static interference analysis (Section 4.1).
type RWSet struct {
	Reads  map[ClassAttr]bool
	Writes map[ClassAttr]bool
}

// RuleRWSet computes the rule's static read/write sets.
//
//   - Every tested attribute of every CE is a read; a negated CE also
//     reads the whole relation (its truth depends on tuple existence).
//   - make writes the whole relation (it creates a tuple, which can
//     falsify negated CEs and satisfy positive ones on any attribute of
//     the class it cannot name statically) — conservatively class-level.
//   - modify writes the assigned attributes of the target CE's class
//     and reads every attribute its expressions use (via the LHS).
//   - remove writes the whole relation of the target CE's class.
func RuleRWSet(r *Rule) RWSet {
	s := RWSet{Reads: make(map[ClassAttr]bool), Writes: make(map[ClassAttr]bool)}
	pos := r.PositiveConditions()
	for _, c := range r.Conditions {
		for _, t := range c.Tests {
			s.Reads[ClassAttr{c.Class, t.Attr}] = true
		}
		if c.Negated {
			s.Reads[ClassAttr{c.Class, ""}] = true
		}
	}
	for _, a := range r.Actions {
		switch a.Kind {
		case ActMake:
			s.Writes[ClassAttr{a.Class, ""}] = true
		case ActModify:
			class := r.Conditions[pos[a.CE]].Class
			for _, as := range a.Assigns {
				s.Writes[ClassAttr{class, as.Attr}] = true
			}
		case ActRemove:
			class := r.Conditions[pos[a.CE]].Class
			s.Writes[ClassAttr{class, ""}] = true
		}
	}
	return s
}

// Interferes reports whether two rules interfere: one's writes overlap
// the other's reads or writes (read-write or write-write conflict over
// some column). Per the paper, non-interfering productions can fire in
// parallel under the static approach.
func Interferes(a, b *Rule) bool {
	sa, sb := RuleRWSet(a), RuleRWSet(b)
	return writesOverlap(sa.Writes, sb.Reads) ||
		writesOverlap(sa.Writes, sb.Writes) ||
		writesOverlap(sb.Writes, sa.Reads)
}

func writesOverlap(w, other map[ClassAttr]bool) bool {
	for cw := range w {
		for co := range other {
			if cw.Overlaps(co) {
				return true
			}
		}
	}
	return false
}

// String renders the set for debugging, columns sorted.
func (s RWSet) String() string {
	return fmt.Sprintf("reads{%s} writes{%s}", joinCols(s.Reads), joinCols(s.Writes))
}

func joinCols(m map[ClassAttr]bool) string {
	cols := make([]string, 0, len(m))
	for c := range m {
		cols = append(cols, c.String())
	}
	sort.Strings(cols)
	return strings.Join(cols, ", ")
}
