package match

import (
	"fmt"
	"math/rand"
	"testing"

	"pdps/internal/wm"
)

func shardRule(i int) *Rule {
	return &Rule{
		Name: fmt.Sprintf("r%d", i),
		Conditions: []Condition{
			{Class: fmt.Sprintf("c%d", i%3), Tests: []AttrTest{
				{Attr: "v", Op: OpEq, Var: "x"},
			}},
			{Class: "shared", Tests: []AttrTest{
				{Attr: "v", Op: OpEq, Var: "x"},
			}},
		},
		Actions: []Action{{Kind: ActHalt}},
	}
}

// TestShardedMatchesUnsharded drives a sharded naive matcher and a
// plain one with the same rules and WME churn; conflict sets must be
// identical at every step.
func TestShardedMatchesUnsharded(t *testing.T) {
	sharded := NewSharded(4, func() Matcher { return NewNaive() })
	plain := NewNaive()
	if sharded.Shards() != 4 {
		t.Fatal("shard count")
	}
	for i := 0; i < 7; i++ {
		if err := sharded.AddRule(shardRule(i)); err != nil {
			t.Fatal(err)
		}
		if err := plain.AddRule(shardRule(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := wm.NewStore()
	rng := rand.New(rand.NewSource(11))
	var live []*wm.WME
	for step := 0; step < 80; step++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			cls := fmt.Sprintf("c%d", rng.Intn(3))
			if rng.Intn(3) == 0 {
				cls = "shared"
			}
			w := s.Insert(cls, map[string]wm.Value{"v": wm.Int(int64(rng.Intn(4)))})
			live = append(live, w)
			sharded.Insert(w)
			plain.Insert(w)
		} else {
			i := rng.Intn(len(live))
			w := live[i]
			live = append(live[:i], live[i+1:]...)
			sharded.Remove(w)
			plain.Remove(w)
		}
		a, b := sharded.ConflictSet(), plain.ConflictSet()
		if a.Len() != b.Len() {
			t.Fatalf("step %d: sharded=%d plain=%d", step, a.Len(), b.Len())
		}
		for _, in := range a.All() {
			if !b.Contains(in.Key()) {
				t.Fatalf("step %d: sharded-only instantiation %v", step, in)
			}
		}
	}
}

func TestShardedDuplicateRuleRejected(t *testing.T) {
	sh := NewSharded(3, func() Matcher { return NewNaive() })
	if err := sh.AddRule(shardRule(0)); err != nil {
		t.Fatal(err)
	}
	// Same name lands on a different shard, which would accept it —
	// the sharded wrapper itself must reject.
	if err := sh.AddRule(shardRule(0)); err == nil {
		t.Fatal("cross-shard duplicate accepted")
	}
	if err := sh.AddRule(&Rule{Name: "bad"}); err == nil {
		t.Fatal("invalid rule accepted")
	}
}

func TestShardedSingleShardPassthrough(t *testing.T) {
	sh := NewSharded(0, func() Matcher { return NewNaive() }) // clamped to 1
	if sh.Shards() != 1 {
		t.Fatal("clamp failed")
	}
	if err := sh.AddRule(shardRule(0)); err != nil {
		t.Fatal(err)
	}
	s := wm.NewStore()
	w := s.Insert("c0", map[string]wm.Value{"v": wm.Int(1)})
	w2 := s.Insert("shared", map[string]wm.Value{"v": wm.Int(1)})
	sh.Insert(w)
	sh.Insert(w2)
	if sh.ConflictSet().Len() != 1 {
		t.Fatal("single-shard path broken")
	}
}
