package match

import (
	"fmt"
	"math/rand"
	"testing"

	"pdps/internal/wm"
)

func shardRule(i int) *Rule {
	return &Rule{
		Name: fmt.Sprintf("r%d", i),
		Conditions: []Condition{
			{Class: fmt.Sprintf("c%d", i%3), Tests: []AttrTest{
				{Attr: "v", Op: OpEq, Var: "x"},
			}},
			{Class: "shared", Tests: []AttrTest{
				{Attr: "v", Op: OpEq, Var: "x"},
			}},
		},
		Actions: []Action{{Kind: ActHalt}},
	}
}

// TestShardedMatchesUnsharded drives a sharded naive matcher and a
// plain one with the same rules and WME churn; conflict sets must be
// identical at every step.
func TestShardedMatchesUnsharded(t *testing.T) {
	sharded := NewSharded(4, func() Matcher { return NewNaive() })
	plain := NewNaive()
	if sharded.Shards() != 4 {
		t.Fatal("shard count")
	}
	for i := 0; i < 7; i++ {
		if err := sharded.AddRule(shardRule(i)); err != nil {
			t.Fatal(err)
		}
		if err := plain.AddRule(shardRule(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := wm.NewStore()
	rng := rand.New(rand.NewSource(11))
	var live []*wm.WME
	for step := 0; step < 80; step++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			cls := fmt.Sprintf("c%d", rng.Intn(3))
			if rng.Intn(3) == 0 {
				cls = "shared"
			}
			w := s.Insert(cls, map[string]wm.Value{"v": wm.Int(int64(rng.Intn(4)))})
			live = append(live, w)
			sharded.Insert(w)
			plain.Insert(w)
		} else {
			i := rng.Intn(len(live))
			w := live[i]
			live = append(live[:i], live[i+1:]...)
			sharded.Remove(w)
			plain.Remove(w)
		}
		a, b := sharded.ConflictSet(), plain.ConflictSet()
		if a.Len() != b.Len() {
			t.Fatalf("step %d: sharded=%d plain=%d", step, a.Len(), b.Len())
		}
		for _, in := range a.All() {
			if !b.Contains(in.Key()) {
				t.Fatalf("step %d: sharded-only instantiation %v", step, in)
			}
		}
	}
}

// TestShardedTrackChangesTrueDeltas pins the delta contract of the
// multi-shard matcher: after the initial drain, TakeChanges on the
// merged conflict set yields exactly the membership changes since the
// last ConflictSet call — not the full membership — even though the
// naive shards underneath rebuild and journal their whole set per call.
func TestShardedTrackChangesTrueDeltas(t *testing.T) {
	sh := NewSharded(3, func() Matcher { return NewNaive() })
	for i := 0; i < 5; i++ {
		if err := sh.AddRule(shardRule(i)); err != nil {
			t.Fatal(err)
		}
	}
	sh.TrackChanges(true)
	s := wm.NewStore()
	shared := s.Insert("shared", map[string]wm.Value{"v": wm.Int(1)})
	w0 := s.Insert("c0", map[string]wm.Value{"v": wm.Int(1)})
	sh.Insert(shared)
	sh.Insert(w0)
	cs := sh.ConflictSet()
	added, removed := cs.TakeChanges()
	// Initial drain: everything is new, so full membership is correct.
	if len(removed) != 0 || len(added) != cs.Len() || cs.Len() == 0 {
		t.Fatalf("initial drain: %d added %d removed, len %d", len(added), len(removed), cs.Len())
	}
	before := cs.Len()

	// One insertion enables strictly more matches: the journal must
	// contain only the new instantiations.
	w1 := s.Insert("c1", map[string]wm.Value{"v": wm.Int(1)})
	sh.Insert(w1)
	cs = sh.ConflictSet()
	added, removed = cs.TakeChanges()
	if len(removed) != 0 {
		t.Fatalf("insert journaled removals: %v", removed)
	}
	if len(added) == 0 || len(added) != cs.Len()-before {
		t.Fatalf("insert journaled %d additions, want %d (full membership would be %d)",
			len(added), cs.Len()-before, cs.Len())
	}
	for _, in := range added {
		if !in.Uses(w1) {
			t.Fatalf("journaled addition %v does not use the new WME", in)
		}
	}

	// A removal must journal only the lost instantiations.
	grown := cs.Len()
	sh.Remove(w1)
	cs = sh.ConflictSet()
	added, removed = cs.TakeChanges()
	if len(added) != 0 {
		t.Fatalf("remove journaled additions: %v", added)
	}
	if len(removed) != grown-cs.Len() || len(removed) == 0 {
		t.Fatalf("remove journaled %d removals, want %d", len(removed), grown-cs.Len())
	}

	// An idle call journals nothing at all.
	cs = sh.ConflictSet()
	if added, removed = cs.TakeChanges(); len(added) != 0 || len(removed) != 0 {
		t.Fatalf("idle call journaled %d/%d changes", len(added), len(removed))
	}
}

// TestShardedMergedSetStable verifies ConflictSet returns the same
// cached set across calls for a multi-shard matcher, so journaling
// state survives between drains.
func TestShardedMergedSetStable(t *testing.T) {
	sh := NewSharded(2, func() Matcher { return NewNaive() })
	if err := sh.AddRule(shardRule(0)); err != nil {
		t.Fatal(err)
	}
	if sh.ConflictSet() != sh.ConflictSet() {
		t.Fatal("merged conflict set is rebuilt per call")
	}
}

func TestShardedDuplicateRuleRejected(t *testing.T) {
	sh := NewSharded(3, func() Matcher { return NewNaive() })
	if err := sh.AddRule(shardRule(0)); err != nil {
		t.Fatal(err)
	}
	// Same name lands on a different shard, which would accept it —
	// the sharded wrapper itself must reject.
	if err := sh.AddRule(shardRule(0)); err == nil {
		t.Fatal("cross-shard duplicate accepted")
	}
	if err := sh.AddRule(&Rule{Name: "bad"}); err == nil {
		t.Fatal("invalid rule accepted")
	}
}

func TestShardedSingleShardPassthrough(t *testing.T) {
	sh := NewSharded(0, func() Matcher { return NewNaive() }) // clamped to 1
	if sh.Shards() != 1 {
		t.Fatal("clamp failed")
	}
	if err := sh.AddRule(shardRule(0)); err != nil {
		t.Fatal(err)
	}
	s := wm.NewStore()
	w := s.Insert("c0", map[string]wm.Value{"v": wm.Int(1)})
	w2 := s.Insert("shared", map[string]wm.Value{"v": wm.Int(1)})
	sh.Insert(w)
	sh.Insert(w2)
	if sh.ConflictSet().Len() != 1 {
		t.Fatal("single-shard path broken")
	}
}
