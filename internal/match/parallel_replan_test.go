// Package match_test (external) so the test can drive the sharded
// wrapper with real rete networks — rete imports match, so an
// in-package test would be an import cycle.
package match_test

import (
	"fmt"
	"testing"

	"pdps/internal/match"
	"pdps/internal/rete"
	"pdps/internal/wm"
)

// TestShardedAdaptiveReplanMerge checks the journal contract between
// the sharded merge and adaptive Rete chain swaps: each shard replans
// inside its own ConflictSet goroutine, journaling a remove+add pair
// per live instantiation, and the merged set — with its own journal
// tracked, as the Parallel engine's refresh does — must come out
// identical to a naive matcher's, with no spurious journal traffic
// from swaps that change nothing.
func TestShardedAdaptiveReplanMerge(t *testing.T) {
	var nets []*rete.Network
	sharded := match.NewSharded(3, func() match.Matcher {
		n := rete.New()
		n.SetAdaptive(true)
		n.SetAdaptiveParams(1.01, 1)
		nets = append(nets, n)
		return n
	})
	naive := match.NewNaive()
	// Three rules (one per shard) over skewed classes: every rule joins
	// a big class before a tiny one in source order, so live replans
	// flip each shard's plan mid-run.
	for i := 0; i < 3; i++ {
		r := &match.Rule{
			Name: fmt.Sprintf("r%d", i),
			Conditions: []match.Condition{
				{Class: fmt.Sprintf("big%d", i), Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
				{Class: fmt.Sprintf("tiny%d", i), Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
			},
			Actions: []match.Action{{Kind: match.ActHalt}},
		}
		for _, m := range []match.Matcher{sharded, naive} {
			if err := m.AddRule(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	sharded.TrackChanges(true)
	merged := sharded.ConflictSet()

	s := wm.NewStore()
	var ws []*wm.WME
	add := func(class string, k int) {
		w := s.Insert(class, map[string]wm.Value{"k": wm.Int(int64(k))})
		ws = append(ws, w)
		sharded.Insert(w)
		naive.Insert(w)
	}
	check := func(stage string) {
		t.Helper()
		got, want := sharded.ConflictSet(), naive.ConflictSet()
		if got != merged {
			t.Fatalf("%s: merged set identity changed", stage)
		}
		if got.Len() != want.Len() {
			t.Fatalf("%s: sharded=%d naive=%d", stage, got.Len(), want.Len())
		}
		for _, in := range want.All() {
			if !got.Contains(in.Key()) {
				t.Fatalf("%s: merged set missing %v", stage, in)
			}
		}
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < 3; i++ {
			for k := 0; k < 24; k++ {
				add(fmt.Sprintf("big%d", i), k)
			}
			if round%2 == 0 {
				add(fmt.Sprintf("tiny%d", i), round)
			}
		}
		check(fmt.Sprintf("round %d insert", round))
		// Journal must be consumable by an engine-style reader without
		// replan remove+add pairs leaking through as net changes.
		added, removed := merged.TakeChanges()
		for _, k := range removed {
			if merged.Contains(k) {
				t.Fatalf("round %d: journal removed %s but the merged set still has it", round, k)
			}
		}
		for _, in := range added {
			if !merged.Contains(in.Key()) {
				t.Fatalf("round %d: journal added %v but the merged set lacks it", round, in)
			}
		}
		// Retract some of the oldest WMEs through whatever plans are live.
		cut := len(ws) / 4
		for _, w := range ws[:cut] {
			sharded.Remove(w)
			naive.Remove(w)
		}
		ws = append([]*wm.WME(nil), ws[cut:]...)
		check(fmt.Sprintf("round %d remove", round))
		merged.TakeChanges()
	}
	var replans int64
	for _, n := range nets {
		replans += n.Replans()
	}
	if replans == 0 {
		t.Fatal("no shard replanned; the merge contract went unexercised")
	}
	for _, w := range ws {
		sharded.Remove(w)
		naive.Remove(w)
	}
	check("drain")
	if merged.Len() != 0 {
		t.Fatalf("drained: %d instantiations remain", merged.Len())
	}
}
