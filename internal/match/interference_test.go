package match

import (
	"fmt"
	"sync"
	"testing"

	"pdps/internal/wm"
)

// imRule builds a single-CE rule reading readClass and modifying the
// matched tuple of writeClass (readClass when writeClass is "").
func imRule(name, readClass, writeClass string) *Rule {
	r := &Rule{
		Name: name,
		Conditions: []Condition{
			{Class: readClass, Tests: []AttrTest{{Attr: "v", Op: OpEq, Var: "x"}}},
		},
	}
	if writeClass == "" {
		r.Actions = []Action{{Kind: ActModify, CE: 0, Assigns: []AttrAssign{
			{Attr: "v", Expr: ConstExpr{Val: wm.Int(1)}}}}}
	} else {
		r.Conditions = append(r.Conditions, Condition{
			Class: writeClass, Tests: []AttrTest{{Attr: "v", Op: OpEq, Var: "y"}}})
		r.Actions = []Action{{Kind: ActModify, CE: 1, Assigns: []AttrAssign{
			{Attr: "v", Expr: ConstExpr{Val: wm.Int(1)}}}}}
	}
	return r
}

// TestInterferenceMatrixMatchesPairwise checks every matrix cell
// against the direct pairwise Interferes computation, covering both
// the lazy-row path and the name-based lookup.
func TestInterferenceMatrixMatchesPairwise(t *testing.T) {
	rules := []*Rule{
		imRule("a", "p", ""),  // reads+writes p.v
		imRule("b", "p", "q"), // reads p.v,q.v; writes q.v
		imRule("c", "r", ""),  // reads+writes r.v
		imRule("d", "s", "r"), // reads s.v,r.v; writes r.v
	}
	m := NewInterferenceMatrix(rules)
	if m.Size() != len(rules) {
		t.Fatalf("Size = %d, want %d", m.Size(), len(rules))
	}
	for i, a := range rules {
		for j, b := range rules {
			want := Interferes(a, b)
			if got := m.InterferesIdx(i, j); got != want {
				t.Errorf("InterferesIdx(%s,%s) = %v, want %v", a.Name, b.Name, got, want)
			}
			if got := m.Interferes(a.Name, b.Name); got != want {
				t.Errorf("Interferes(%s,%s) = %v, want %v", a.Name, b.Name, got, want)
			}
		}
	}
	// Spot-check the semantics the hybrid engine depends on: a rule
	// with writes always self-interferes; rules over disjoint classes
	// never interfere.
	if !m.Interferes("a", "a") {
		t.Error("writing rule must self-interfere")
	}
	if m.Interferes("a", "c") {
		t.Error("class-disjoint rules must not interfere")
	}
	if !m.Interferes("c", "d") {
		t.Error("d writes r.v which c reads: must interfere")
	}
}

// TestInterferenceMatrixUnknownName requires the conservative default:
// a name outside the rule set interferes with everything.
func TestInterferenceMatrixUnknownName(t *testing.T) {
	m := NewInterferenceMatrix([]*Rule{imRule("a", "p", "")})
	if !m.Interferes("a", "ghost") || !m.Interferes("ghost", "a") {
		t.Fatal("unknown rule names must be treated as interfering")
	}
	if _, ok := m.Index("ghost"); ok {
		t.Fatal("Index must not resolve unknown names")
	}
}

// TestInterferenceMatrixConcurrentRows hammers lazy row construction
// from many goroutines (meaningful under -race): all readers must see
// the same completed row.
func TestInterferenceMatrixConcurrentRows(t *testing.T) {
	var rules []*Rule
	for i := 0; i < 16; i++ {
		rules = append(rules, imRule(fmt.Sprintf("r%d", i), fmt.Sprintf("c%d", i%4), ""))
	}
	m := NewInterferenceMatrix(rules)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range rules {
				row := m.Row((i + g) % len(rules))
				if len(row) != len(rules) {
					t.Errorf("row length %d, want %d", len(row), len(rules))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Same class ⇒ interfere, different class ⇒ not.
	if !m.InterferesIdx(0, 4) {
		t.Error("r0 and r4 share class c0: must interfere")
	}
	if m.InterferesIdx(0, 1) {
		t.Error("r0 (c0) and r1 (c1) are disjoint: must not interfere")
	}
}
