package match

import (
	"fmt"
	"sort"

	"pdps/internal/wm"
)

// View is a read-only snapshot of working memory, as seen either by
// the shared store or by an in-flight transaction.
type View interface {
	ByClass(class string) []*wm.WME
}

// Matcher computes and incrementally maintains the conflict set. The
// Rete and TREAT packages provide incremental implementations; Naive
// recomputes from scratch and serves as the correctness oracle.
type Matcher interface {
	// AddRule registers a production. Rules must be added before the
	// WMEs they should match (engines add all rules first).
	AddRule(r *Rule) error
	// Insert notifies the matcher of a new WME version.
	Insert(w *wm.WME)
	// Remove notifies the matcher that a WME version left working memory.
	Remove(w *wm.WME)
	// ConflictSet returns the current conflict set. The returned set is
	// owned by the matcher; callers must not retain it across updates.
	ConflictSet() *ConflictSet
}

// ChangeTracker is implemented by matchers whose conflict sets journal
// membership changes (ConflictSet.TrackChanges) between ConflictSet
// calls. Engines that dispatch incrementally enable tracking and drain
// the journal with TakeChanges after each commit; matchers that
// rebuild the set from scratch journal the full membership, which the
// drain protocol detects and reconciles.
type ChangeTracker interface {
	TrackChanges(on bool)
}

// MatchRule computes all instantiations of a rule against a view. It
// is the reference (generate-and-test) matching semantics every
// incremental matcher must agree with.
func MatchRule(v View, r *Rule) []*Instantiation {
	var out []*Instantiation
	matchFrom(v, r, 0, nil, make(Bindings), &out)
	return out
}

func matchFrom(v View, r *Rule, ci int, matched []*wm.WME, b Bindings, out *[]*Instantiation) {
	if ci == len(r.Conditions) {
		ws := make([]*wm.WME, len(matched))
		copy(ws, matched)
		*out = append(*out, &Instantiation{Rule: r, WMEs: ws, Bindings: b.Clone()})
		return
	}
	c := r.Conditions[ci]
	if c.Negated {
		for _, w := range v.ByClass(c.Class) {
			if _, ok := testCE(c, w, b); ok {
				return // a matching WME falsifies the negated CE
			}
		}
		matchFrom(v, r, ci+1, matched, b, out)
		return
	}
	for _, w := range v.ByClass(c.Class) {
		nb, ok := testCE(c, w, b)
		if !ok {
			continue
		}
		matchFrom(v, r, ci+1, append(matched, w), nb, out)
	}
}

// TestCE tests a WME against a condition element under existing
// bindings. On success it returns the (possibly extended) bindings;
// the input bindings are never mutated. It is exported for matchers
// (e.g. TREAT) that enumerate joins themselves.
func TestCE(c Condition, w *wm.WME, b Bindings) (Bindings, bool) {
	return testCE(c, w, b)
}

// testCE tests a WME against a condition element under existing
// bindings. On success it returns the (possibly extended) bindings.
// The input bindings are never mutated.
func testCE(c Condition, w *wm.WME, b Bindings) (Bindings, bool) {
	nb := b
	extended := false
	for _, t := range c.Tests {
		if !w.HasAttr(t.Attr) {
			return nil, false
		}
		av := w.Attr(t.Attr)
		if !t.IsVar() {
			if !t.Matches(av) {
				return nil, false
			}
			continue
		}
		bv, bound := nb[t.Var]
		if !bound {
			if t.Op != OpEq || c.Negated {
				// Validate() rejects this for positive CEs; inside a
				// negated CE an unbound variable cannot bind.
				return nil, false
			}
			if !extended {
				nb = nb.Clone()
				extended = true
			}
			nb[t.Var] = av
			continue
		}
		if !t.Op.Eval(av, bv) {
			return nil, false
		}
	}
	return nb, true
}

// Naive is the from-scratch reference matcher. Each ConflictSet call
// recomputes every rule against the mirrored working memory. It is
// O(|rules| · |WM|^|CEs|) and exists as the oracle for the incremental
// matchers and as the baseline in match-phase benchmarks.
type Naive struct {
	rules   []*Rule
	byClass map[string]map[int64]*wm.WME
	track   bool
}

// NewNaive returns an empty naive matcher.
func NewNaive() *Naive {
	return &Naive{byClass: make(map[string]map[int64]*wm.WME)}
}

// AddRule registers a rule after validating it.
func (n *Naive) AddRule(r *Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	for _, existing := range n.rules {
		if existing.Name == r.Name {
			return fmt.Errorf("match: duplicate rule %s", r.Name)
		}
	}
	n.rules = append(n.rules, r)
	return nil
}

// Insert mirrors a WME insertion.
func (n *Naive) Insert(w *wm.WME) {
	cls := n.byClass[w.Class]
	if cls == nil {
		cls = make(map[int64]*wm.WME)
		n.byClass[w.Class] = cls
	}
	cls[w.ID] = w
}

// Remove mirrors a WME removal.
func (n *Naive) Remove(w *wm.WME) {
	if cls := n.byClass[w.Class]; cls != nil {
		delete(cls, w.ID)
	}
}

// ByClass returns the mirrored WMEs of a class ordered by ID,
// implementing View.
func (n *Naive) ByClass(class string) []*wm.WME {
	out := make([]*wm.WME, 0, len(n.byClass[class]))
	for _, w := range n.byClass[class] {
		out = append(out, w)
	}
	sortByID(out)
	return out
}

// TrackChanges marks the conflict sets this matcher builds as
// journaling. Each build is from scratch, so the journal holds the
// full membership — the snapshot case of the TakeChanges protocol.
func (n *Naive) TrackChanges(on bool) { n.track = on }

// ConflictSet recomputes the full conflict set.
func (n *Naive) ConflictSet() *ConflictSet {
	cs := NewConflictSet()
	cs.track = n.track
	for _, r := range n.rules {
		for _, in := range MatchRule(n, r) {
			cs.Add(in)
		}
	}
	return cs
}

func sortByID(ws []*wm.WME) {
	sort.Slice(ws, func(i, j int) bool { return ws[i].ID < ws[j].ID })
}
