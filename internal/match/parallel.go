package match

import (
	"fmt"
	"sync"

	"pdps/internal/obs"
	"pdps/internal/wm"
)

// ShardedMatcher implements the paper's intra-phase match parallelism
// (Section 2, "execution of each phase in a parallel manner"): rules
// are partitioned round-robin across inner matchers, and working-memory
// updates and conflict-set computation fan out to the shards on
// goroutines. Because each rule lives in exactly one shard, the merged
// conflict set equals the one a single matcher would produce.
//
// The merged set is cached and maintained incrementally: every shard
// journals its own conflict-set changes (tracking is enabled on the
// shards at construction), and each ConflictSet call drains the
// per-shard journals into the cache. The merged set therefore journals
// true deltas itself, which keeps an engine that drains it with
// TakeChanges on the O(|delta|) dispatch path. Like every matcher,
// ShardedMatcher serialises ConflictSet calls with its other methods.
type ShardedMatcher struct {
	shards []Matcher
	names  map[string]bool
	next   int
	track  bool

	// journaling[i] reports shard i implements ChangeTracker; merged is
	// the cached union, mirror[i] its view of shard i's membership at
	// the last merge.
	journaling []bool
	merged     *ConflictSet
	mirror     []map[string]bool

	// mergeBatch records the changes applied per merge (nil until
	// SetMetrics).
	mergeBatch *obs.Histogram
}

// NewSharded builds a sharded matcher over n inner matchers produced
// by the factory (n < 1 is treated as 1).
func NewSharded(n int, factory func() Matcher) *ShardedMatcher {
	if n < 1 {
		n = 1
	}
	s := &ShardedMatcher{
		shards:     make([]Matcher, n),
		names:      make(map[string]bool),
		journaling: make([]bool, n),
		merged:     NewConflictSet(),
		mirror:     make([]map[string]bool, n),
	}
	for i := range s.shards {
		s.shards[i] = factory()
		s.mirror[i] = make(map[string]bool)
		if n > 1 {
			if t, ok := s.shards[i].(ChangeTracker); ok {
				t.TrackChanges(true)
				s.journaling[i] = true
			}
		}
	}
	return s
}

// Shards returns the shard count.
func (s *ShardedMatcher) Shards() int { return len(s.shards) }

// AddRule assigns the rule to the next shard round-robin. Duplicate
// names are rejected across all shards.
func (s *ShardedMatcher) AddRule(r *Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if s.names[r.Name] {
		return fmt.Errorf("match: duplicate rule %s", r.Name)
	}
	if err := s.shards[s.next%len(s.shards)].AddRule(r); err != nil {
		return err
	}
	s.names[r.Name] = true
	s.next++
	return nil
}

// Insert fans the WME out to every shard concurrently.
func (s *ShardedMatcher) Insert(w *wm.WME) {
	s.broadcast(func(m Matcher) { m.Insert(w) })
}

// Remove fans the retraction out to every shard concurrently.
func (s *ShardedMatcher) Remove(w *wm.WME) {
	s.broadcast(func(m Matcher) { m.Remove(w) })
}

func (s *ShardedMatcher) broadcast(f func(Matcher)) {
	if len(s.shards) == 1 {
		f(s.shards[0])
		return
	}
	var wg sync.WaitGroup
	for _, m := range s.shards {
		wg.Add(1)
		go func(m Matcher) {
			defer wg.Done()
			f(m)
		}(m)
	}
	wg.Wait()
}

// SetMetrics forwards the registry to every shard that accepts one and
// wires the merge-batch histogram.
func (s *ShardedMatcher) SetMetrics(reg *obs.Registry) {
	for _, m := range s.shards {
		if sm, ok := m.(interface{ SetMetrics(*obs.Registry) }); ok {
			sm.SetMetrics(reg)
		}
	}
	if len(s.shards) > 1 {
		s.mergeBatch = reg.Histogram("match_shard_merge_batch", "changes")
	}
}

// TrackChanges enables journaling on the conflict set this matcher
// returns. With multiple shards that set is the cached merged set,
// which is maintained from the per-shard journals and therefore
// journals true deltas; with a single shard the request is forwarded
// to the inner matcher.
func (s *ShardedMatcher) TrackChanges(on bool) {
	s.track = on
	if len(s.shards) == 1 {
		if t, ok := s.shards[0].(ChangeTracker); ok {
			t.TrackChanges(on)
		}
		return
	}
	s.merged.TrackChanges(on)
}

// ConflictSet computes every shard's conflict set concurrently and
// folds each shard's changes since the last call into the cached
// merged set.
//
// Swap coordination with adaptive Rete: a shard's ConflictSet call is
// the network's replan safe point, so a chain swap happens inside the
// per-shard goroutine below — confined to that shard's matcher, whose
// rules live nowhere else. A swap journals a remove+add pair for every
// live instantiation of the replanned rule; the delta branch of
// mergeShard resolves each pair against the shard's current membership
// (Contains), so the merged set and its own journal see no change.
// Nothing is read from the shard until wg.Wait, and the snapshot
// heuristic below cannot misfire on a swap (a swap always journals
// removals, which routes it to the delta branch).
func (s *ShardedMatcher) ConflictSet() *ConflictSet {
	if len(s.shards) == 1 {
		return s.shards[0].ConflictSet()
	}
	sets := make([]*ConflictSet, len(s.shards))
	var wg sync.WaitGroup
	for i, m := range s.shards {
		wg.Add(1)
		go func(i int, m Matcher) {
			defer wg.Done()
			sets[i] = m.ConflictSet()
		}(i, m)
	}
	wg.Wait()
	// Journals are drained and applied serially in shard order: the
	// merged set has exactly one writer, and rule partitioning makes
	// the shards' key spaces disjoint, so deltas commute with the cache
	// contents of other shards.
	applied := 0
	for i, cs := range sets {
		applied += s.mergeShard(i, cs)
	}
	if s.mergeBatch != nil {
		s.mergeBatch.Observe(int64(applied))
	}
	return s.merged
}

// mergeShard folds one shard's changes into the merged set and returns
// the number of membership changes applied.
func (s *ShardedMatcher) mergeShard(i int, cs *ConflictSet) int {
	var added []*Instantiation
	var removed []string
	if s.journaling[i] {
		added, removed = cs.TakeChanges()
	} else {
		added = cs.All()
	}
	m := s.mirror[i]
	n := 0
	// Snapshot case: a shard that rebuilds its set from scratch (naive)
	// journals the full membership — no removals and as many additions
	// as members. Live shards can only hit this when the mirror is
	// empty (nothing was removed and every member is newly journaled),
	// where both reconciliations agree. Diff against the mirror so the
	// merged set still only sees true changes.
	if !s.journaling[i] || (len(removed) == 0 && len(added) == cs.Len()) {
		cur := make(map[string]bool, len(added))
		for _, in := range added {
			cur[in.Key()] = true
		}
		// Mirror iteration order only affects the order of commuting
		// Removes, never what the merged set or its journal contains.
		for k := range m {
			if !cur[k] {
				s.merged.Remove(k)
				delete(m, k)
				n++
			}
		}
		for _, in := range added {
			if k := in.Key(); !m[k] {
				s.merged.Add(in)
				m[k] = true
				n++
			}
		}
		return n
	}
	// Delta case: the journal holds raw events and a key may appear in
	// both lists; the shard's current membership resolves the net effect.
	for _, k := range removed {
		if m[k] && !cs.Contains(k) {
			s.merged.Remove(k)
			delete(m, k)
			n++
		}
	}
	for _, in := range added {
		if k := in.Key(); !m[k] && cs.Contains(k) {
			s.merged.Add(in)
			m[k] = true
			n++
		}
	}
	return n
}

var _ Matcher = (*ShardedMatcher)(nil)
