package match

import (
	"fmt"
	"sync"

	"pdps/internal/wm"
)

// ShardedMatcher implements the paper's intra-phase match parallelism
// (Section 2, "execution of each phase in a parallel manner"): rules
// are partitioned round-robin across inner matchers, and working-memory
// updates and conflict-set computation fan out to the shards on
// goroutines. Because each rule lives in exactly one shard, the merged
// conflict set equals the one a single matcher would produce.
type ShardedMatcher struct {
	shards []Matcher
	names  map[string]bool
	next   int
	track  bool
}

// NewSharded builds a sharded matcher over n inner matchers produced
// by the factory (n < 1 is treated as 1).
func NewSharded(n int, factory func() Matcher) *ShardedMatcher {
	if n < 1 {
		n = 1
	}
	s := &ShardedMatcher{shards: make([]Matcher, n), names: make(map[string]bool)}
	for i := range s.shards {
		s.shards[i] = factory()
	}
	return s
}

// Shards returns the shard count.
func (s *ShardedMatcher) Shards() int { return len(s.shards) }

// AddRule assigns the rule to the next shard round-robin. Duplicate
// names are rejected across all shards.
func (s *ShardedMatcher) AddRule(r *Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if s.names[r.Name] {
		return fmt.Errorf("match: duplicate rule %s", r.Name)
	}
	if err := s.shards[s.next%len(s.shards)].AddRule(r); err != nil {
		return err
	}
	s.names[r.Name] = true
	s.next++
	return nil
}

// Insert fans the WME out to every shard concurrently.
func (s *ShardedMatcher) Insert(w *wm.WME) {
	s.broadcast(func(m Matcher) { m.Insert(w) })
}

// Remove fans the retraction out to every shard concurrently.
func (s *ShardedMatcher) Remove(w *wm.WME) {
	s.broadcast(func(m Matcher) { m.Remove(w) })
}

func (s *ShardedMatcher) broadcast(f func(Matcher)) {
	if len(s.shards) == 1 {
		f(s.shards[0])
		return
	}
	var wg sync.WaitGroup
	for _, m := range s.shards {
		wg.Add(1)
		go func(m Matcher) {
			defer wg.Done()
			f(m)
		}(m)
	}
	wg.Wait()
}

// TrackChanges enables journaling on the conflict sets this matcher
// returns. The merged set is rebuilt per call, so its journal holds
// the full membership (the snapshot case of the TakeChanges protocol);
// with a single shard the request is forwarded to the inner matcher.
func (s *ShardedMatcher) TrackChanges(on bool) {
	s.track = on
	if len(s.shards) == 1 {
		if t, ok := s.shards[0].(ChangeTracker); ok {
			t.TrackChanges(on)
		}
	}
}

// ConflictSet computes every shard's conflict set concurrently and
// merges them.
func (s *ShardedMatcher) ConflictSet() *ConflictSet {
	if len(s.shards) == 1 {
		return s.shards[0].ConflictSet()
	}
	sets := make([]*ConflictSet, len(s.shards))
	var wg sync.WaitGroup
	for i, m := range s.shards {
		wg.Add(1)
		go func(i int, m Matcher) {
			defer wg.Done()
			sets[i] = m.ConflictSet()
		}(i, m)
	}
	wg.Wait()
	merged := NewConflictSet()
	merged.track = s.track
	for _, cs := range sets {
		for _, in := range cs.All() {
			merged.Add(in)
		}
	}
	return merged
}

var _ Matcher = (*ShardedMatcher)(nil)
