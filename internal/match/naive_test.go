package match

import (
	"testing"

	"pdps/internal/wm"
)

func attrs(kv ...interface{}) map[string]wm.Value {
	m := make(map[string]wm.Value)
	for i := 0; i < len(kv); i += 2 {
		k := kv[i].(string)
		switch v := kv[i+1].(type) {
		case int:
			m[k] = wm.Int(int64(v))
		case string:
			m[k] = wm.Sym(v)
		case bool:
			m[k] = wm.Bool(v)
		case wm.Value:
			m[k] = v
		default:
			panic("bad attr value")
		}
	}
	return m
}

func TestNaiveJoinMatch(t *testing.T) {
	s := wm.NewStore()
	n := NewNaive()
	if err := n.AddRule(ruleAB()); err != nil {
		t.Fatal(err)
	}

	p1 := s.Insert("part", attrs("id", 1, "status", "ready"))
	p2 := s.Insert("part", attrs("id", 2, "status", "ready"))
	p3 := s.Insert("part", attrs("id", 3, "status", "raw"))
	m1 := s.Insert("machine", attrs("accepts", 1, "free", true))
	m2 := s.Insert("machine", attrs("accepts", 2, "free", false))
	for _, w := range []*wm.WME{p1, p2, p3, m1, m2} {
		n.Insert(w)
	}

	cs := n.ConflictSet()
	if cs.Len() != 1 {
		t.Fatalf("conflict set = %d instantiations, want 1: %v", cs.Len(), cs.All())
	}
	in := cs.All()[0]
	if in.WMEs[0].ID != p1.ID || in.WMEs[1].ID != m1.ID {
		t.Fatalf("wrong instantiation %v", in)
	}
	if !in.Bindings["x"].Equal(wm.Int(1)) {
		t.Fatalf("binding x = %v, want 1", in.Bindings["x"])
	}
}

func TestNaiveNegatedCE(t *testing.T) {
	// Fire for parts that have no defect record with the same id.
	r := &Rule{
		Name: "ship",
		Conditions: []Condition{
			{Class: "part", Tests: []AttrTest{{Attr: "id", Op: OpEq, Var: "x"}}},
			{Class: "defect", Negated: true, Tests: []AttrTest{{Attr: "part", Op: OpEq, Var: "x"}}},
		},
		Actions: []Action{{Kind: ActRemove, CE: 0}},
	}
	s := wm.NewStore()
	n := NewNaive()
	if err := n.AddRule(r); err != nil {
		t.Fatal(err)
	}
	p1 := s.Insert("part", attrs("id", 1))
	p2 := s.Insert("part", attrs("id", 2))
	d := s.Insert("defect", attrs("part", 2))
	for _, w := range []*wm.WME{p1, p2, d} {
		n.Insert(w)
	}
	cs := n.ConflictSet()
	if cs.Len() != 1 || cs.All()[0].WMEs[0].ID != p1.ID {
		t.Fatalf("conflict set = %v, want only part 1", cs.All())
	}
	// Removing the defect enables part 2.
	n.Remove(d)
	if got := n.ConflictSet().Len(); got != 2 {
		t.Fatalf("after defect removal: %d instantiations, want 2", got)
	}
}

func TestNaiveMissingAttributeFailsTest(t *testing.T) {
	r := &Rule{
		Name: "r",
		Conditions: []Condition{
			{Class: "a", Tests: []AttrTest{{Attr: "v", Op: OpGt, Const: wm.Int(0)}}},
		},
		Actions: []Action{{Kind: ActRemove, CE: 0}},
	}
	s := wm.NewStore()
	n := NewNaive()
	if err := n.AddRule(r); err != nil {
		t.Fatal(err)
	}
	n.Insert(s.Insert("a", attrs("other", 1)))
	if n.ConflictSet().Len() != 0 {
		t.Fatal("WME without the tested attribute must not match")
	}
}

func TestNaiveDuplicateRuleRejected(t *testing.T) {
	n := NewNaive()
	if err := n.AddRule(ruleAB()); err != nil {
		t.Fatal(err)
	}
	if err := n.AddRule(ruleAB()); err == nil {
		t.Fatal("duplicate rule name must be rejected")
	}
}

func TestNaiveSelfJoinDistinctWMEs(t *testing.T) {
	// Two CEs over the same class: (a ^v <x>) (a ^v > <x>) — ordered pairs.
	r := &Rule{
		Name: "pairs",
		Conditions: []Condition{
			{Class: "a", Tests: []AttrTest{{Attr: "v", Op: OpEq, Var: "x"}}},
			{Class: "a", Tests: []AttrTest{{Attr: "v", Op: OpGt, Var: "x"}}},
		},
		Actions: []Action{{Kind: ActRemove, CE: 0}},
	}
	s := wm.NewStore()
	n := NewNaive()
	if err := n.AddRule(r); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		n.Insert(s.Insert("a", attrs("v", i)))
	}
	// Pairs with v_j > v_i: (1,2) (1,3) (2,3).
	if got := n.ConflictSet().Len(); got != 3 {
		t.Fatalf("self-join: %d instantiations, want 3", got)
	}
}

func TestConflictSetOperations(t *testing.T) {
	s := wm.NewStore()
	n := NewNaive()
	if err := n.AddRule(ruleAB()); err != nil {
		t.Fatal(err)
	}
	p := s.Insert("part", attrs("id", 1, "status", "ready"))
	m := s.Insert("machine", attrs("accepts", 1, "free", true))
	n.Insert(p)
	n.Insert(m)
	cs := n.ConflictSet()
	in := cs.All()[0]

	if !cs.Contains(in.Key()) {
		t.Fatal("Contains failed")
	}
	if got, ok := cs.Get(in.Key()); !ok || got != in {
		t.Fatal("Get failed")
	}
	if cs.Add(in) {
		t.Fatal("re-adding same instantiation must report false")
	}
	removed := cs.RemoveUsing(p)
	if len(removed) != 1 || cs.Len() != 0 {
		t.Fatal("RemoveUsing failed")
	}
	if cs.Remove(in.Key()) {
		t.Fatal("Remove of absent key must report false")
	}
	if names := cs.RuleNames(); len(names) != 0 {
		t.Fatal("RuleNames on empty set")
	}
}

func TestInstantiationKeyAndTimeTags(t *testing.T) {
	s := wm.NewStore()
	p := s.Insert("part", attrs("id", 1, "status", "ready"))
	m := s.Insert("machine", attrs("accepts", 1, "free", true))
	in := &Instantiation{Rule: ruleAB(), WMEs: []*wm.WME{p, m}}
	tags := in.TimeTags()
	if len(tags) != 2 || tags[0] < tags[1] {
		t.Fatalf("TimeTags = %v, want descending", tags)
	}
	if !in.Uses(p) || !in.Uses(m) {
		t.Fatal("Uses failed")
	}
	// A newer version of p (same ID, new tag) is a different match.
	_, p2, err := s.Modify(p.ID, attrs("status", "ready"))
	if err != nil {
		t.Fatal(err)
	}
	if in.Uses(p2) {
		t.Fatal("Uses must distinguish WME versions")
	}
	in2 := &Instantiation{Rule: ruleAB(), WMEs: []*wm.WME{p2, m}}
	if in.Key() == in2.Key() {
		t.Fatal("keys must differ across WME versions")
	}
}
