package match

import (
	"testing"

	"pdps/internal/wm"
)

func TestClassAttrOverlaps(t *testing.T) {
	cases := []struct {
		a, b ClassAttr
		want bool
	}{
		{ClassAttr{"p", "x"}, ClassAttr{"p", "x"}, true},
		{ClassAttr{"p", "x"}, ClassAttr{"p", "y"}, false},
		{ClassAttr{"p", "x"}, ClassAttr{"q", "x"}, false},
		{ClassAttr{"p", ""}, ClassAttr{"p", "y"}, true},
		{ClassAttr{"p", "x"}, ClassAttr{"p", ""}, true},
		{ClassAttr{"p", ""}, ClassAttr{"q", ""}, false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRuleRWSet(t *testing.T) {
	r := &Rule{
		Name: "r",
		Conditions: []Condition{
			{Class: "part", Tests: []AttrTest{
				{Attr: "id", Op: OpEq, Var: "x"},
				{Attr: "status", Op: OpEq, Const: wm.Sym("ready")},
			}},
			{Class: "defect", Negated: true, Tests: []AttrTest{{Attr: "part", Op: OpEq, Var: "x"}}},
		},
		Actions: []Action{
			{Kind: ActModify, CE: 0, Assigns: []AttrAssign{{Attr: "status", Expr: ConstExpr{wm.Sym("done")}}}},
			{Kind: ActMake, Class: "log", Assigns: []AttrAssign{{Attr: "part", Expr: VarExpr{"x"}}}},
		},
	}
	s := RuleRWSet(r)
	wantReads := []ClassAttr{{"part", "id"}, {"part", "status"}, {"defect", "part"}, {"defect", ""}}
	for _, c := range wantReads {
		if !s.Reads[c] {
			t.Errorf("missing read %v in %v", c, s)
		}
	}
	wantWrites := []ClassAttr{{"part", "status"}, {"log", ""}}
	for _, c := range wantWrites {
		if !s.Writes[c] {
			t.Errorf("missing write %v in %v", c, s)
		}
	}
	if len(s.Writes) != 2 {
		t.Errorf("extra writes: %v", s)
	}
}

func TestRuleRWSetRemoveIsClassLevel(t *testing.T) {
	r := &Rule{
		Name:       "r",
		Conditions: []Condition{{Class: "a", Tests: []AttrTest{{Attr: "v", Op: OpEq, Const: wm.Int(1)}}}},
		Actions:    []Action{{Kind: ActRemove, CE: 0}},
	}
	s := RuleRWSet(r)
	if !s.Writes[ClassAttr{"a", ""}] {
		t.Fatalf("remove must write class-level: %v", s)
	}
}

func TestInterferes(t *testing.T) {
	mk := func(name, readClass, readAttr, writeClass, writeAttr string) *Rule {
		r := &Rule{
			Name: name,
			Conditions: []Condition{
				{Class: readClass, Tests: []AttrTest{{Attr: readAttr, Op: OpEq, Const: wm.Int(1)}}},
			},
			Actions: []Action{{Kind: ActMake, Class: writeClass,
				Assigns: []AttrAssign{{Attr: writeAttr, Expr: ConstExpr{wm.Int(1)}}}}},
		}
		return r
	}
	// writer of class b vs reader of class b: interfere (make is class-level).
	w := mk("w", "a", "x", "b", "y")
	rdr := mk("r", "b", "z", "c", "q")
	if !Interferes(w, rdr) || !Interferes(rdr, w) {
		t.Error("write-read interference missed (and must be symmetric)")
	}
	// disjoint classes: no interference.
	other := mk("o", "d", "x", "e", "y")
	if Interferes(w, other) {
		t.Error("false interference on disjoint classes")
	}
	// write-write on same class interferes.
	w2 := mk("w2", "f", "x", "b", "y")
	if !Interferes(w, w2) {
		t.Error("write-write interference missed")
	}
}

func TestInterferesModifyAttributeDisjoint(t *testing.T) {
	// Two rules modifying different attributes of the same class do not
	// interfere if neither reads the other's attribute.
	mkMod := func(name, readAttr, writeAttr string) *Rule {
		return &Rule{
			Name: name,
			Conditions: []Condition{
				{Class: "p", Tests: []AttrTest{{Attr: readAttr, Op: OpEq, Const: wm.Int(1)}}},
			},
			Actions: []Action{{Kind: ActModify, CE: 0,
				Assigns: []AttrAssign{{Attr: writeAttr, Expr: ConstExpr{wm.Int(2)}}}}},
		}
	}
	a := mkMod("a", "x", "x")
	b := mkMod("b", "y", "y")
	if Interferes(a, b) {
		t.Error("attribute-disjoint modifies should not interfere")
	}
	c := mkMod("c", "x", "y") // writes y which b reads
	if !Interferes(b, c) {
		t.Error("read-write overlap on p.y missed")
	}
}

func TestExecuteActions(t *testing.T) {
	s := wm.NewStore()
	p := s.Insert("part", attrs("id", 1, "count", 3))
	r := &Rule{
		Name: "r",
		Conditions: []Condition{
			{Class: "part", Tests: []AttrTest{{Attr: "id", Op: OpEq, Var: "x"}}},
		},
		Actions: []Action{
			{Kind: ActModify, CE: 0, Assigns: []AttrAssign{
				{Attr: "count", Expr: BinExpr{ArithAdd, ConstExpr{wm.Int(1)}, ConstExpr{wm.Int(3)}}},
			}},
			{Kind: ActMake, Class: "log", Assigns: []AttrAssign{{Attr: "part", Expr: VarExpr{"x"}}}},
		},
	}
	in := &Instantiation{Rule: r, WMEs: []*wm.WME{p}, Bindings: Bindings{"x": wm.Int(1)}}
	tx := s.Begin()
	halt, err := ExecuteActions(in, tx)
	if err != nil || halt {
		t.Fatalf("halt=%v err=%v", halt, err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(p.ID)
	if !got.Attr("count").Equal(wm.Int(4)) {
		t.Errorf("count = %v, want 4", got.Attr("count"))
	}
	logs := s.ByClass("log")
	if len(logs) != 1 || !logs[0].Attr("part").Equal(wm.Int(1)) {
		t.Errorf("log = %v", logs)
	}
}

func TestExecuteActionsHaltAndErrors(t *testing.T) {
	s := wm.NewStore()
	p := s.Insert("part", attrs("id", 1))
	haltRule := &Rule{
		Name:       "h",
		Conditions: []Condition{{Class: "part"}},
		Actions:    []Action{{Kind: ActHalt}, {Kind: ActRemove, CE: 0}},
	}
	in := &Instantiation{Rule: haltRule, WMEs: []*wm.WME{p}, Bindings: Bindings{}}
	tx := s.Begin()
	halt, err := ExecuteActions(in, tx)
	if err != nil || !halt {
		t.Fatalf("halt=%v err=%v, want halt with no error", halt, err)
	}
	if tx.Pending() != 0 {
		t.Fatal("actions after halt must not run")
	}

	badExpr := &Rule{
		Name:       "b",
		Conditions: []Condition{{Class: "part"}},
		Actions: []Action{{Kind: ActMake, Class: "x",
			Assigns: []AttrAssign{{Attr: "v", Expr: VarExpr{"nope"}}}}},
	}
	in2 := &Instantiation{Rule: badExpr, WMEs: []*wm.WME{p}, Bindings: Bindings{}}
	if _, err := ExecuteActions(in2, s.Begin()); err == nil {
		t.Fatal("unbound variable in action must error")
	}
}
