package match

import (
	"fmt"

	"pdps/internal/wm"
)

// Bindings maps variable names to the values they were bound to while
// matching a rule's LHS.
type Bindings map[string]wm.Value

// Clone returns a copy of the bindings.
func (b Bindings) Clone() Bindings {
	c := make(Bindings, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Expr is an expression evaluated against LHS bindings in an RHS
// assignment: a constant, a variable reference, or an arithmetic
// combination.
type Expr interface {
	// Eval computes the expression's value under the bindings.
	Eval(b Bindings) (wm.Value, error)
	// Vars returns the variables the expression references.
	Vars() []string
	fmt.Stringer
}

// ConstExpr is a literal value.
type ConstExpr struct{ Val wm.Value }

// Eval returns the constant.
func (e ConstExpr) Eval(Bindings) (wm.Value, error) { return e.Val, nil }

// Vars returns nil: constants reference no variables.
func (e ConstExpr) Vars() []string { return nil }

// String renders the literal.
func (e ConstExpr) String() string { return e.Val.String() }

// VarExpr references an LHS variable.
type VarExpr struct{ Name string }

// Eval looks the variable up in the bindings.
func (e VarExpr) Eval(b Bindings) (wm.Value, error) {
	v, ok := b[e.Name]
	if !ok {
		return wm.Nil(), fmt.Errorf("match: unbound variable <%s>", e.Name)
	}
	return v, nil
}

// Vars returns the referenced variable.
func (e VarExpr) Vars() []string { return []string{e.Name} }

// String renders the variable reference.
func (e VarExpr) String() string { return "<" + e.Name + ">" }

// ArithOp is an arithmetic operator in a BinExpr.
type ArithOp uint8

// Arithmetic operators usable in RHS expressions.
const (
	ArithAdd ArithOp = iota
	ArithSub
	ArithMul
	ArithDiv
	ArithMod
)

// String returns the operator symbol.
func (o ArithOp) String() string {
	switch o {
	case ArithAdd:
		return "+"
	case ArithSub:
		return "-"
	case ArithMul:
		return "*"
	case ArithDiv:
		return "/"
	case ArithMod:
		return "%"
	}
	return "?"
}

// BinExpr applies an arithmetic operator to two subexpressions. Both
// operands must evaluate to numbers; the result is an integer when both
// operands are integers, and a float otherwise.
type BinExpr struct {
	Op   ArithOp
	L, R Expr
}

// Eval computes the arithmetic result.
func (e BinExpr) Eval(b Bindings) (wm.Value, error) {
	l, err := e.L.Eval(b)
	if err != nil {
		return wm.Nil(), err
	}
	r, err := e.R.Eval(b)
	if err != nil {
		return wm.Nil(), err
	}
	if !l.Numeric() || !r.Numeric() {
		return wm.Nil(), fmt.Errorf("match: arithmetic on non-numeric values %v %s %v", l, e.Op, r)
	}
	if l.Kind() == wm.KindInt && r.Kind() == wm.KindInt {
		a, c := l.AsInt(), r.AsInt()
		switch e.Op {
		case ArithAdd:
			return wm.Int(a + c), nil
		case ArithSub:
			return wm.Int(a - c), nil
		case ArithMul:
			return wm.Int(a * c), nil
		case ArithDiv:
			if c == 0 {
				return wm.Nil(), fmt.Errorf("match: integer division by zero")
			}
			return wm.Int(a / c), nil
		case ArithMod:
			if c == 0 {
				return wm.Nil(), fmt.Errorf("match: integer modulo by zero")
			}
			return wm.Int(a % c), nil
		}
	}
	a, c := l.AsFloat(), r.AsFloat()
	switch e.Op {
	case ArithAdd:
		return wm.Float(a + c), nil
	case ArithSub:
		return wm.Float(a - c), nil
	case ArithMul:
		return wm.Float(a * c), nil
	case ArithDiv:
		if c == 0 {
			return wm.Nil(), fmt.Errorf("match: division by zero")
		}
		return wm.Float(a / c), nil
	case ArithMod:
		return wm.Nil(), fmt.Errorf("match: modulo on floats")
	}
	return wm.Nil(), fmt.Errorf("match: unknown arithmetic operator %d", e.Op)
}

// Vars returns the union of the operand variables.
func (e BinExpr) Vars() []string {
	return append(e.L.Vars(), e.R.Vars()...)
}

// String renders the expression in prefix rule-language syntax.
func (e BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Op, e.L, e.R)
}
