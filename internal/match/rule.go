// Package match defines the matcher-neutral rule intermediate
// representation shared by the Rete and TREAT matchers and the
// execution engines: condition elements, right-hand-side actions,
// instantiations, the conflict set, and read/write-set extraction used
// by the static interference analysis and the lock manager.
package match

import (
	"fmt"
	"strings"

	"pdps/internal/wm"
)

// Op is a comparison operator in an attribute test.
type Op uint8

// Comparison operators. OpEq on a variable's first occurrence binds it;
// later occurrences (and all other operators) test against the binding.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the operator's surface syntax.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Eval applies the operator to two values. Ordering operators on
// non-comparable kinds are false.
func (o Op) Eval(a, b wm.Value) bool {
	switch o {
	case OpEq:
		return a.Equal(b)
	case OpNe:
		return !a.Equal(b)
	}
	if !(a.Numeric() && b.Numeric()) &&
		!(a.Kind() == b.Kind() && (a.Kind() == wm.KindString || a.Kind() == wm.KindSymbol)) {
		return false
	}
	c := a.Compare(b)
	switch o {
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// AttrTest constrains one attribute of a condition element. Exactly
// one of Const / Var / OneOf is meaningful: Var is empty for a
// constant test, and a non-empty OneOf is OPS5's value disjunction
// << v1 v2 ... >> (attribute equals any listed value; Op is ignored).
type AttrTest struct {
	Attr  string
	Op    Op
	Const wm.Value
	Var   string
	OneOf []wm.Value
}

// IsVar reports whether the test refers to a variable.
func (t AttrTest) IsVar() bool { return t.Var != "" }

// IsDisjunction reports whether the test is a value disjunction.
func (t AttrTest) IsDisjunction() bool { return len(t.OneOf) > 0 }

// Matches evaluates a constant or disjunction test against a value
// (variable tests are evaluated against bindings by the matchers).
func (t AttrTest) Matches(v wm.Value) bool {
	if t.IsDisjunction() {
		for _, alt := range t.OneOf {
			if v.Equal(alt) {
				return true
			}
		}
		return false
	}
	return t.Op.Eval(v, t.Const)
}

// String renders the test in rule-language syntax, e.g. ^status <> done.
func (t AttrTest) String() string {
	if t.IsDisjunction() {
		var b strings.Builder
		fmt.Fprintf(&b, "^%s <<", t.Attr)
		for _, v := range t.OneOf {
			b.WriteByte(' ')
			b.WriteString(v.String())
		}
		b.WriteString(" >>")
		return b.String()
	}
	rhs := t.Const.String()
	if t.IsVar() {
		rhs = "<" + t.Var + ">"
	}
	if t.Op == OpEq {
		return fmt.Sprintf("^%s %s", t.Attr, rhs)
	}
	return fmt.Sprintf("^%s %s %s", t.Attr, t.Op, rhs)
}

// Condition is one condition element (CE) of a rule's LHS: a class
// pattern with attribute tests, possibly negated. A negated CE is
// satisfied when no WME matches it.
type Condition struct {
	Class   string
	Tests   []AttrTest
	Negated bool
}

// String renders the CE in rule-language syntax.
func (c Condition) String() string {
	var b strings.Builder
	if c.Negated {
		b.WriteByte('-')
	}
	b.WriteByte('(')
	b.WriteString(c.Class)
	for _, t := range c.Tests {
		b.WriteByte(' ')
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// ActionKind discriminates RHS actions.
type ActionKind uint8

// The RHS operations of the production-system model (Section 2 of the
// paper): create, modify and delete, plus halt to stop the interpreter.
const (
	ActMake ActionKind = iota
	ActModify
	ActRemove
	ActHalt
)

// String returns the action keyword.
func (k ActionKind) String() string {
	switch k {
	case ActMake:
		return "make"
	case ActModify:
		return "modify"
	case ActRemove:
		return "remove"
	case ActHalt:
		return "halt"
	}
	return fmt.Sprintf("ActionKind(%d)", uint8(k))
}

// AttrAssign sets one attribute in a make or modify action.
type AttrAssign struct {
	Attr string
	Expr Expr
}

// Action is one RHS operation. Make uses Class and Assigns; Modify and
// Remove use CE (the 0-based index of the positive condition element
// whose matched WME is the target); Modify also uses Assigns.
type Action struct {
	Kind    ActionKind
	Class   string
	CE      int
	Assigns []AttrAssign
}

// String renders the action in rule-language syntax.
func (a Action) String() string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(a.Kind.String())
	switch a.Kind {
	case ActMake:
		b.WriteByte(' ')
		b.WriteString(a.Class)
	case ActModify, ActRemove:
		fmt.Fprintf(&b, " %d", a.CE+1)
	}
	for _, as := range a.Assigns {
		fmt.Fprintf(&b, " ^%s %s", as.Attr, as.Expr)
	}
	b.WriteByte(')')
	return b.String()
}

// Rule is a compiled production: a named LHS/RHS pair with an optional
// static priority used by the priority conflict-resolution strategy.
type Rule struct {
	Name       string
	Priority   int
	Conditions []Condition
	Actions    []Action
	// ActionReads lists positive-CE indices whose matched WMEs the RHS
	// re-reads during action execution (beyond the LHS bindings). The
	// dynamic engine takes Ra locks on them per Section 4.3; matched
	// WMEs not listed here and not written keep only their Rc lock.
	ActionReads []int
}

// PositiveConditions returns the indices of the non-negated CEs, in order.
func (r *Rule) PositiveConditions() []int {
	var out []int
	for i, c := range r.Conditions {
		if !c.Negated {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks structural well-formedness: at least one positive CE,
// variables bound before non-binding use, action CE indices in range,
// and action expressions referring only to bound variables.
func (r *Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("match: rule with empty name")
	}
	if len(r.Conditions) == 0 {
		return fmt.Errorf("match: rule %s: no condition elements", r.Name)
	}
	pos := r.PositiveConditions()
	if len(pos) == 0 {
		return fmt.Errorf("match: rule %s: no positive condition elements", r.Name)
	}
	bound := make(map[string]bool)
	for i, c := range r.Conditions {
		for _, t := range c.Tests {
			if !t.IsVar() {
				continue
			}
			if t.Op == OpEq && !c.Negated {
				bound[t.Var] = true
				continue
			}
			if !bound[t.Var] {
				return fmt.Errorf("match: rule %s: CE %d uses unbound variable <%s>", r.Name, i+1, t.Var)
			}
		}
	}
	if len(r.Actions) == 0 {
		return fmt.Errorf("match: rule %s: no actions", r.Name)
	}
	for i, a := range r.Actions {
		switch a.Kind {
		case ActMake:
			if a.Class == "" {
				return fmt.Errorf("match: rule %s: action %d: make without class", r.Name, i+1)
			}
		case ActModify, ActRemove:
			if a.CE < 0 || a.CE >= len(pos) {
				return fmt.Errorf("match: rule %s: action %d: CE index %d out of range (rule has %d positive CEs)",
					r.Name, i+1, a.CE+1, len(pos))
			}
			if a.Kind == ActRemove && len(a.Assigns) > 0 {
				return fmt.Errorf("match: rule %s: action %d: remove takes no assignments", r.Name, i+1)
			}
		case ActHalt:
			if len(a.Assigns) > 0 || a.Class != "" {
				return fmt.Errorf("match: rule %s: action %d: halt takes no operands", r.Name, i+1)
			}
		default:
			return fmt.Errorf("match: rule %s: action %d: unknown kind %d", r.Name, i+1, a.Kind)
		}
		for _, as := range a.Assigns {
			for _, v := range as.Expr.Vars() {
				if !bound[v] {
					return fmt.Errorf("match: rule %s: action %d: unbound variable <%s>", r.Name, i+1, v)
				}
			}
		}
	}
	for _, ce := range r.ActionReads {
		if ce < 0 || ce >= len(pos) {
			return fmt.Errorf("match: rule %s: action-read CE index %d out of range", r.Name, ce+1)
		}
	}
	return nil
}

// String renders the whole rule in rule-language syntax.
func (r *Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(p %s", r.Name)
	if r.Priority != 0 {
		fmt.Fprintf(&b, " ^priority %d", r.Priority)
	}
	for _, c := range r.Conditions {
		b.WriteString("\n  ")
		b.WriteString(c.String())
	}
	b.WriteString("\n  -->")
	for _, a := range r.Actions {
		b.WriteString("\n  ")
		b.WriteString(a.String())
	}
	b.WriteString(")")
	return b.String()
}
