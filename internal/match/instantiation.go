package match

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pdps/internal/wm"
)

// Instantiation is one element of the conflict set: a rule together
// with the WMEs (one per positive condition element, in order) and the
// variable bindings that satisfy its LHS.
type Instantiation struct {
	Rule     *Rule
	WMEs     []*wm.WME
	Bindings Bindings

	keyOnce sync.Once
	key     string
}

// Key returns a string uniquely identifying the instantiation: the
// rule name plus the identities and versions of the matched WMEs. Two
// instantiations with equal keys matched the same data. The key is
// memoized — the engine asks for it on every dispatch, staleness check
// and commit, from workers and committer concurrently, and the inputs
// (rule and matched WME versions) are immutable once matched.
func (in *Instantiation) Key() string {
	in.keyOnce.Do(func() {
		buf := make([]byte, 0, len(in.Rule.Name)+12*len(in.WMEs))
		buf = append(buf, in.Rule.Name...)
		for _, w := range in.WMEs {
			buf = append(buf, '|')
			buf = strconv.AppendInt(buf, w.ID, 10)
			buf = append(buf, '@')
			buf = strconv.AppendUint(buf, w.TimeTag, 10)
		}
		in.key = string(buf)
	})
	return in.key
}

// TimeTags returns the matched WMEs' time tags sorted in descending
// order, the comparison key used by the LEX strategy.
func (in *Instantiation) TimeTags() []uint64 {
	tags := make([]uint64, len(in.WMEs))
	for i, w := range in.WMEs {
		tags[i] = w.TimeTag
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] > tags[j] })
	return tags
}

// Uses reports whether the instantiation matched the given WME version.
func (in *Instantiation) Uses(w *wm.WME) bool {
	for _, m := range in.WMEs {
		if m.ID == w.ID && m.TimeTag == w.TimeTag {
			return true
		}
	}
	return false
}

// String renders the instantiation as "rule [wme1, wme2, ...]".
func (in *Instantiation) String() string {
	parts := make([]string, len(in.WMEs))
	for i, w := range in.WMEs {
		parts[i] = w.String()
	}
	return fmt.Sprintf("%s [%s]", in.Rule.Name, strings.Join(parts, ", "))
}

// ConflictSet is the set of active instantiations (the paper's P^A).
// It is not safe for concurrent use; engines serialise access to it.
//
// With change tracking enabled the set additionally journals every
// membership change, so an engine can dispatch newly activated
// instantiations incrementally instead of rescanning the whole set
// after each commit. Tracking is off by default — serial engines never
// drain the journal and must not accumulate one.
type ConflictSet struct {
	byKey map[string]*Instantiation

	track   bool
	added   []*Instantiation
	removed []string
}

// NewConflictSet returns an empty conflict set.
func NewConflictSet() *ConflictSet {
	return &ConflictSet{byKey: make(map[string]*Instantiation)}
}

// TrackChanges switches membership journaling on or off. Switching it
// on while the set is populated journals the current members as added,
// so the first TakeChanges drain sees them.
func (cs *ConflictSet) TrackChanges(on bool) {
	if on && !cs.track {
		for _, in := range cs.byKey {
			cs.added = append(cs.added, in)
		}
	}
	cs.track = on
	if !on {
		cs.added, cs.removed = nil, nil
	}
}

// TakeChanges drains the journal: instantiations added and keys removed
// since the last drain. The journal records raw events, not the net
// effect — a key may appear in both lists; consult Contains for the
// final state.
func (cs *ConflictSet) TakeChanges() (added []*Instantiation, removed []string) {
	added, removed = cs.added, cs.removed
	cs.added, cs.removed = nil, nil
	return added, removed
}

// Add inserts an instantiation; it reports whether it was new.
func (cs *ConflictSet) Add(in *Instantiation) bool {
	k := in.Key()
	if _, ok := cs.byKey[k]; ok {
		return false
	}
	cs.byKey[k] = in
	if cs.track {
		cs.added = append(cs.added, in)
	}
	return true
}

// Remove deletes the instantiation with the given key; it reports
// whether it was present.
func (cs *ConflictSet) Remove(key string) bool {
	if _, ok := cs.byKey[key]; !ok {
		return false
	}
	delete(cs.byKey, key)
	if cs.track {
		cs.removed = append(cs.removed, key)
	}
	return true
}

// RemoveUsing deletes every instantiation that matched the given WME
// version and returns the removed instantiations.
func (cs *ConflictSet) RemoveUsing(w *wm.WME) []*Instantiation {
	var removed []*Instantiation
	for k, in := range cs.byKey {
		if in.Uses(w) {
			removed = append(removed, in)
			delete(cs.byKey, k)
			if cs.track {
				cs.removed = append(cs.removed, k)
			}
		}
	}
	return removed
}

// Len reports the number of instantiations.
func (cs *ConflictSet) Len() int { return len(cs.byKey) }

// Contains reports whether an instantiation with the key is present.
func (cs *ConflictSet) Contains(key string) bool {
	_, ok := cs.byKey[key]
	return ok
}

// Get returns the instantiation with the given key.
func (cs *ConflictSet) Get(key string) (*Instantiation, bool) {
	in, ok := cs.byKey[key]
	return in, ok
}

// All returns the instantiations ordered deterministically by key.
func (cs *ConflictSet) All() []*Instantiation {
	keys := make([]string, 0, len(cs.byKey))
	for k := range cs.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Instantiation, len(keys))
	for i, k := range keys {
		out[i] = cs.byKey[k]
	}
	return out
}

// RuleNames returns the distinct names of rules with at least one
// instantiation, sorted.
func (cs *ConflictSet) RuleNames() []string {
	seen := make(map[string]bool)
	for _, in := range cs.byKey {
		seen[in.Rule.Name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
