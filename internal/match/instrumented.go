package match

import (
	"pdps/internal/obs"
	"pdps/internal/sched"
	"pdps/internal/wm"
)

// Instrumented wraps a Matcher and records match-phase metrics: update
// count and per-update match time (the paper's match-phase cost, the
// dominant term of Section 2's cycle breakdown) and the conflict-set
// size sampled at each ConflictSet call (once per recognize-act cycle
// in every engine). The wrapper adds work only around whole matcher
// calls, so the matcher's own hot path is untouched.
type Instrumented struct {
	inner Matcher
	clock sched.Clock

	updates  *obs.Counter
	updateNS *obs.Histogram
	csSize   *obs.Gauge
}

// Instrument wraps m with metric recording into reg. The clock times
// updates (virtual under a deterministic scheduler); a nil clock
// disables timing but not counting.
func Instrument(m Matcher, reg *obs.Registry, clock sched.Clock) *Instrumented {
	return &Instrumented{
		inner:    m,
		clock:    clock,
		updates:  reg.Counter("match_updates_total"),
		updateNS: reg.Histogram("match_update_ns", "ns"),
		csSize:   reg.Gauge("match_conflict_set_size"),
	}
}

// Unwrap returns the wrapped matcher.
func (im *Instrumented) Unwrap() Matcher { return im.inner }

// UnwrapMatcher strips any Instrumented (or future) wrappers and
// returns the underlying matcher. Engines use it to probe optional
// interfaces like ChangeTracker on the real implementation rather than
// trusting a wrapper's forwarding.
func UnwrapMatcher(m Matcher) Matcher {
	for {
		w, ok := m.(interface{ Unwrap() Matcher })
		if !ok {
			return m
		}
		m = w.Unwrap()
	}
}

// AddRule forwards to the wrapped matcher.
func (im *Instrumented) AddRule(r *Rule) error { return im.inner.AddRule(r) }

// update runs one matcher update under the metric clock.
func (im *Instrumented) update(f func()) {
	im.updates.Inc()
	if im.clock == nil {
		f()
		return
	}
	start := im.clock.Now()
	f()
	im.updateNS.ObserveDuration(im.clock.Now().Sub(start))
}

// Insert forwards to the wrapped matcher, timing the update.
func (im *Instrumented) Insert(w *wm.WME) { im.update(func() { im.inner.Insert(w) }) }

// Remove forwards to the wrapped matcher, timing the update.
func (im *Instrumented) Remove(w *wm.WME) { im.update(func() { im.inner.Remove(w) }) }

// ConflictSet forwards to the wrapped matcher and samples the set's
// size into the match_conflict_set_size gauge.
func (im *Instrumented) ConflictSet() *ConflictSet {
	cs := im.inner.ConflictSet()
	im.csSize.Set(int64(cs.Len()))
	return cs
}

// TrackChanges forwards to the wrapped matcher when it journals
// conflict-set changes. Engines must probe ChangeTracker on
// UnwrapMatcher's result, not on the wrapper, so this forwarding never
// misrepresents a non-journaling matcher.
func (im *Instrumented) TrackChanges(on bool) {
	if t, ok := im.inner.(ChangeTracker); ok {
		t.TrackChanges(on)
	}
}
