package match

import (
	"strings"
	"testing"

	"pdps/internal/wm"
)

// ruleAB is a two-CE join rule used across the match tests:
//
//	(p pass
//	  (part ^id <x> ^status ready)
//	  (machine ^accepts <x> ^free true)
//	  -->
//	  (modify 1 ^status done))
func ruleAB() *Rule {
	return &Rule{
		Name: "pass",
		Conditions: []Condition{
			{Class: "part", Tests: []AttrTest{
				{Attr: "id", Op: OpEq, Var: "x"},
				{Attr: "status", Op: OpEq, Const: wm.Sym("ready")},
			}},
			{Class: "machine", Tests: []AttrTest{
				{Attr: "accepts", Op: OpEq, Var: "x"},
				{Attr: "free", Op: OpEq, Const: wm.Bool(true)},
			}},
		},
		Actions: []Action{
			{Kind: ActModify, CE: 0, Assigns: []AttrAssign{
				{Attr: "status", Expr: ConstExpr{wm.Sym("done")}},
			}},
		},
	}
}

func TestOpEval(t *testing.T) {
	cases := []struct {
		op   Op
		a, b wm.Value
		want bool
	}{
		{OpEq, wm.Int(1), wm.Int(1), true},
		{OpNe, wm.Int(1), wm.Int(2), true},
		{OpLt, wm.Int(1), wm.Int(2), true},
		{OpLe, wm.Int(2), wm.Int(2), true},
		{OpGt, wm.Float(2.5), wm.Int(2), true},
		{OpGe, wm.Int(2), wm.Int(3), false},
		{OpLt, wm.Sym("a"), wm.Sym("b"), true},
		{OpLt, wm.Sym("a"), wm.Int(1), false}, // incomparable kinds
		{OpEq, wm.Sym("a"), wm.Str("a"), false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v %s %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestRuleValidateOK(t *testing.T) {
	if err := ruleAB().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRuleValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		r    *Rule
		want string
	}{
		{"empty name", &Rule{}, "empty name"},
		{"no CEs", &Rule{Name: "r"}, "no condition"},
		{
			"all negated",
			&Rule{Name: "r", Conditions: []Condition{{Class: "a", Negated: true}}},
			"no positive",
		},
		{
			"unbound var",
			&Rule{Name: "r", Conditions: []Condition{
				{Class: "a", Tests: []AttrTest{{Attr: "v", Op: OpLt, Var: "x"}}},
			}},
			"unbound variable <x>",
		},
		{
			"no actions",
			&Rule{Name: "r", Conditions: []Condition{{Class: "a"}}},
			"no actions",
		},
		{
			"make without class",
			&Rule{Name: "r", Conditions: []Condition{{Class: "a"}},
				Actions: []Action{{Kind: ActMake}}},
			"make without class",
		},
		{
			"CE out of range",
			&Rule{Name: "r", Conditions: []Condition{{Class: "a"}},
				Actions: []Action{{Kind: ActRemove, CE: 1}}},
			"out of range",
		},
		{
			"remove with assigns",
			&Rule{Name: "r", Conditions: []Condition{{Class: "a"}},
				Actions: []Action{{Kind: ActRemove, CE: 0,
					Assigns: []AttrAssign{{Attr: "v", Expr: ConstExpr{wm.Int(1)}}}}}},
			"remove takes no assignments",
		},
		{
			"action unbound var",
			&Rule{Name: "r", Conditions: []Condition{{Class: "a"}},
				Actions: []Action{{Kind: ActMake, Class: "b",
					Assigns: []AttrAssign{{Attr: "v", Expr: VarExpr{"z"}}}}}},
			"unbound variable <z>",
		},
	}
	for _, c := range cases {
		err := c.r.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestRuleValidateNegatedCEMayUseBoundVar(t *testing.T) {
	r := &Rule{
		Name: "r",
		Conditions: []Condition{
			{Class: "a", Tests: []AttrTest{{Attr: "v", Op: OpEq, Var: "x"}}},
			{Class: "b", Negated: true, Tests: []AttrTest{{Attr: "v", Op: OpEq, Var: "x"}}},
		},
		Actions: []Action{{Kind: ActRemove, CE: 0}},
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// But a negated CE cannot introduce a new variable.
	r.Conditions[1].Tests[0].Var = "y"
	if err := r.Validate(); err == nil {
		t.Fatal("negated CE binding a fresh variable must be rejected")
	}
}

func TestRuleStringRoundTrips(t *testing.T) {
	s := ruleAB().String()
	for _, frag := range []string{"(p pass", "^id <x>", "^status ready", "-->", "(modify 1 ^status done)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestExprEval(t *testing.T) {
	b := Bindings{"x": wm.Int(10), "f": wm.Float(1.5)}
	cases := []struct {
		e    Expr
		want wm.Value
	}{
		{ConstExpr{wm.Int(3)}, wm.Int(3)},
		{VarExpr{"x"}, wm.Int(10)},
		{BinExpr{ArithAdd, VarExpr{"x"}, ConstExpr{wm.Int(1)}}, wm.Int(11)},
		{BinExpr{ArithSub, VarExpr{"x"}, ConstExpr{wm.Int(4)}}, wm.Int(6)},
		{BinExpr{ArithMul, VarExpr{"x"}, ConstExpr{wm.Int(2)}}, wm.Int(20)},
		{BinExpr{ArithDiv, VarExpr{"x"}, ConstExpr{wm.Int(3)}}, wm.Int(3)},
		{BinExpr{ArithMod, VarExpr{"x"}, ConstExpr{wm.Int(3)}}, wm.Int(1)},
		{BinExpr{ArithAdd, VarExpr{"f"}, ConstExpr{wm.Int(1)}}, wm.Float(2.5)},
		{BinExpr{ArithDiv, VarExpr{"f"}, ConstExpr{wm.Float(0.5)}}, wm.Float(3)},
	}
	for _, c := range cases {
		got, err := c.e.Eval(b)
		if err != nil {
			t.Errorf("%v: %v", c.e, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("%v = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestExprEvalErrors(t *testing.T) {
	b := Bindings{"s": wm.Sym("a")}
	bad := []Expr{
		VarExpr{"missing"},
		BinExpr{ArithAdd, VarExpr{"s"}, ConstExpr{wm.Int(1)}},
		BinExpr{ArithDiv, ConstExpr{wm.Int(1)}, ConstExpr{wm.Int(0)}},
		BinExpr{ArithMod, ConstExpr{wm.Int(1)}, ConstExpr{wm.Int(0)}},
		BinExpr{ArithDiv, ConstExpr{wm.Float(1)}, ConstExpr{wm.Float(0)}},
		BinExpr{ArithMod, ConstExpr{wm.Float(1)}, ConstExpr{wm.Float(2)}},
		BinExpr{ArithAdd, VarExpr{"missing"}, ConstExpr{wm.Int(1)}},
		BinExpr{ArithAdd, ConstExpr{wm.Int(1)}, VarExpr{"missing"}},
	}
	for _, e := range bad {
		if _, err := e.Eval(b); err == nil {
			t.Errorf("%v: want error", e)
		}
	}
}

func TestExprVarsAndString(t *testing.T) {
	e := BinExpr{ArithAdd, VarExpr{"x"}, BinExpr{ArithMul, VarExpr{"y"}, ConstExpr{wm.Int(2)}}}
	vars := e.Vars()
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars = %v", vars)
	}
	if got := e.String(); got != "(+ <x> (* <y> 2))" {
		t.Errorf("String = %q", got)
	}
}
