package match

import (
	"fmt"

	"pdps/internal/wm"
)

// Effector receives the working-memory effects of a rule firing. Both
// *wm.Txn (transactional firing) and direct-store adapters satisfy it.
type Effector interface {
	Insert(class string, attrs map[string]wm.Value) *wm.WME
	Modify(id int64, updates map[string]wm.Value) (*wm.WME, error)
	Remove(id int64) error
}

// ExecuteActions evaluates the instantiation's RHS against the
// effector. It reports whether a halt action was executed. A modify or
// remove of a WME the instantiation matched uses that WME's identity,
// so two actions on the same CE compose (modify then remove, etc.).
func ExecuteActions(in *Instantiation, fx Effector) (halt bool, err error) {
	for i, a := range in.Rule.Actions {
		switch a.Kind {
		case ActHalt:
			return true, nil
		case ActMake:
			attrs, err := evalAssigns(a.Assigns, in.Bindings)
			if err != nil {
				return false, fmt.Errorf("%s action %d: %w", in.Rule.Name, i+1, err)
			}
			fx.Insert(a.Class, attrs)
		case ActModify:
			updates, err := evalAssigns(a.Assigns, in.Bindings)
			if err != nil {
				return false, fmt.Errorf("%s action %d: %w", in.Rule.Name, i+1, err)
			}
			if _, err := fx.Modify(in.WMEs[a.CE].ID, updates); err != nil {
				return false, fmt.Errorf("%s action %d: %w", in.Rule.Name, i+1, err)
			}
		case ActRemove:
			if err := fx.Remove(in.WMEs[a.CE].ID); err != nil {
				return false, fmt.Errorf("%s action %d: %w", in.Rule.Name, i+1, err)
			}
		default:
			return false, fmt.Errorf("%s action %d: unknown kind %d", in.Rule.Name, i+1, a.Kind)
		}
	}
	return false, nil
}

func evalAssigns(assigns []AttrAssign, b Bindings) (map[string]wm.Value, error) {
	attrs := make(map[string]wm.Value, len(assigns))
	for _, as := range assigns {
		v, err := as.Expr.Eval(b)
		if err != nil {
			return nil, err
		}
		attrs[as.Attr] = v
	}
	return attrs, nil
}
