package match

import "sync"

// InterferenceMatrix is the Section 4.1 pairwise rule-interference
// relation over a fixed rule set, computed lazily: each rule's
// read/write sets are derived once up front (O(n)), but a matrix row is
// materialised only on first use, guarded by a sync.Once. Large
// generated programs (cmd/psgen) therefore pay O(n) at construction
// instead of O(n²), while engines that consult every pair (the static
// batcher, the hybrid elision check) amortise to the same totals.
//
// The matrix is safe for concurrent use: rows are built under their
// Once and never mutated afterwards, so readers on different goroutines
// (the parallel engine's workers) share them without locks.
type InterferenceMatrix struct {
	rules []*Rule
	index map[string]int
	rw    []RWSet
	once  []sync.Once
	rows  [][]bool
}

// NewInterferenceMatrix builds the lazy matrix over the rule set. Rule
// names are assumed unique (programs are validated upstream).
func NewInterferenceMatrix(rules []*Rule) *InterferenceMatrix {
	m := &InterferenceMatrix{
		rules: rules,
		index: make(map[string]int, len(rules)),
		rw:    make([]RWSet, len(rules)),
		once:  make([]sync.Once, len(rules)),
		rows:  make([][]bool, len(rules)),
	}
	for i, r := range rules {
		m.index[r.Name] = i
		m.rw[i] = RuleRWSet(r)
	}
	return m
}

// Size returns the number of rules the matrix covers.
func (m *InterferenceMatrix) Size() int { return len(m.rules) }

// Index returns the matrix index of a rule name.
func (m *InterferenceMatrix) Index(name string) (int, bool) {
	i, ok := m.index[name]
	return i, ok
}

// Row returns rule i's interference row, computing it on first use.
// The returned slice is shared and must not be mutated.
func (m *InterferenceMatrix) Row(i int) []bool {
	m.once[i].Do(func() {
		row := make([]bool, len(m.rules))
		for j := range m.rules {
			row[j] = interferesRW(m.rw[i], m.rw[j])
		}
		m.rows[i] = row
	})
	return m.rows[i]
}

// InterferesIdx reports interference between rules by matrix index.
func (m *InterferenceMatrix) InterferesIdx(i, j int) bool { return m.Row(i)[j] }

// Interferes reports interference between rules by name; unknown names
// are conservatively reported as interfering.
func (m *InterferenceMatrix) Interferes(a, b string) bool {
	i, ok := m.index[a]
	if !ok {
		return true
	}
	j, ok := m.index[b]
	if !ok {
		return true
	}
	return m.Row(i)[j]
}

// interferesRW is Interferes over precomputed read/write sets.
func interferesRW(sa, sb RWSet) bool {
	return writesOverlap(sa.Writes, sb.Reads) ||
		writesOverlap(sa.Writes, sb.Writes) ||
		writesOverlap(sb.Writes, sa.Reads)
}
