// Package trace records the observable events of a production-system
// execution — firings, commits, aborts, halts — in a concurrency-safe
// log. The commit subsequence is the execution string the paper's
// semantic-consistency condition (Definition 3.2) is stated over, and
// the log is what the post-hoc consistency checker consumes.
package trace

import (
	"fmt"
	"sync"
	"time"
)

// Kind discriminates event types.
type Kind uint8

// Event kinds.
const (
	// KindFire records the start of a production's execution.
	KindFire Kind = iota
	// KindCommit records a successful commit (WM atomically updated).
	KindCommit
	// KindAbort records an abort (deadlock victim, Rc–Wa victim, or
	// stale instantiation).
	KindAbort
	// KindSkip records a dispatched instantiation found invalid before
	// execution started (its condition no longer holds).
	KindSkip
	// KindHalt records execution of a halt action.
	KindHalt
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFire:
		return "fire"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	case KindSkip:
		return "skip"
	case KindHalt:
		return "halt"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one log entry.
type Event struct {
	// Seq is the global order of the event in the log.
	Seq int
	// Kind is the event type.
	Kind Kind
	// Rule is the production's name.
	Rule string
	// Inst identifies the instantiation (rule + matched WME versions).
	Inst string
	// Txn is the lock-manager transaction ID, 0 for single-thread runs.
	Txn int64
	// Detail carries the abort reason or other context.
	Detail string
	// WMEs holds content fingerprints of the matched WMEs at commit
	// time, used by the post-hoc consistency checker.
	WMEs []string
	// At is the wall-clock time the event was logged, for latency
	// analysis (e.g. writer commit latency under the two schemes).
	At time.Time
}

// String renders the event compactly.
func (e Event) String() string {
	s := fmt.Sprintf("#%d %s %s", e.Seq, e.Kind, e.Rule)
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// Log is an append-only, concurrency-safe event log.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Append adds an event, assigning its sequence number and timestamp,
// and returns it.
func (l *Log) Append(e Event) Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = len(l.events)
	e.At = time.Now()
	l.events = append(l.events, e)
	return e
}

// Events returns a snapshot of the log.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Commits returns the commit events in order — the execution string.
func (l *Log) Commits() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.events {
		if e.Kind == KindCommit {
			out = append(out, e)
		}
	}
	return out
}

// CommitRules returns the rule names of the commit sequence.
func (l *Log) CommitRules() []string {
	var out []string
	for _, e := range l.Commits() {
		out = append(out, e.Rule)
	}
	return out
}

// Count returns how many events of the kind were logged.
func (l *Log) Count(k Kind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Len returns the number of events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}
