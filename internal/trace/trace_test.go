package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestLogAppendAndQueries(t *testing.T) {
	l := New()
	l.Append(Event{Kind: KindFire, Rule: "a", Inst: "a|1"})
	l.Append(Event{Kind: KindCommit, Rule: "a", Inst: "a|1", WMEs: []string{"(x ^v 1)"}})
	l.Append(Event{Kind: KindAbort, Rule: "b", Detail: "victim"})
	l.Append(Event{Kind: KindCommit, Rule: "b", Inst: "b|2"})
	l.Append(Event{Kind: KindSkip, Rule: "c"})
	l.Append(Event{Kind: KindHalt, Rule: "b"})

	if l.Len() != 6 {
		t.Fatalf("Len = %d", l.Len())
	}
	commits := l.Commits()
	if len(commits) != 2 || commits[0].Rule != "a" || commits[1].Rule != "b" {
		t.Fatalf("Commits = %v", commits)
	}
	if got := l.CommitRules(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("CommitRules = %v", got)
	}
	if l.Count(KindAbort) != 1 || l.Count(KindCommit) != 2 {
		t.Fatal("Count wrong")
	}
	// Sequence numbers are assigned in order.
	evs := l.Events()
	for i, e := range evs {
		if e.Seq != i {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 3, Kind: KindAbort, Rule: "r", Detail: "deadlock"}
	s := e.String()
	if !strings.Contains(s, "abort") || !strings.Contains(s, "deadlock") || !strings.Contains(s, "#3") {
		t.Fatalf("String = %q", s)
	}
	for _, k := range []Kind{KindFire, KindCommit, KindAbort, KindSkip, KindHalt, Kind(99)} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}

func TestLogConcurrentAppend(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Append(Event{Kind: KindCommit, Rule: "r"})
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("Len = %d", l.Len())
	}
	seen := make(map[int]bool)
	for _, e := range l.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate Seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}
