package workload

import (
	"testing"

	"pdps/internal/engine"
	"pdps/internal/sim"
)

func TestFixturesConstruct(t *testing.T) {
	if got := Fig32System().Initial(); len(got) != 4 {
		t.Fatalf("fig32 initial = %v", got)
	}
	for _, sys := range []interface{ Initial() []string }{
		Fig51System(), Fig52System(), Fig53System(),
	} {
		if len(sys.Initial()) != 4 {
			t.Fatal("section 5 fixtures start with PA = {P1..P4}")
		}
	}
	if Fig54Np() != 3 {
		t.Fatal("fig 5.4 uses three processors")
	}
}

func TestRandomAbstractTerminates(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		sys := RandomAbstract(seed, 10, 2, 1, 5)
		res, err := sim.Run(sys, sim.Config{Np: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatalf("seed %d: generator produced a non-terminating system", seed)
		}
		if !sys.IsValidSequence(res.Sigma()) {
			t.Fatalf("seed %d: invalid sigma", seed)
		}
	}
}

func TestConflictChainShape(t *testing.T) {
	sys := ConflictChain(6, 2, 1)
	p1, _ := sys.Production("P1")
	if len(p1.Del) != 2 || p1.Del[0] != "P2" || p1.Del[1] != "P3" {
		t.Fatalf("P1.Del = %v", p1.Del)
	}
	last, _ := sys.Production("P6")
	if len(last.Del) != 0 {
		t.Fatalf("last production deletes %v", last.Del)
	}
	if len(sys.Initial()) != 6 {
		t.Fatal("all productions start active")
	}
}

func TestConcreteWorkloadsRunToCompletion(t *testing.T) {
	cases := []struct {
		name    string
		prog    engine.Program
		firings int
		emptyWM bool
	}{
		{"pipeline", Pipeline(5, 3), 15, true},
		{"shared-counter", SharedCounter(4, 2), 8, false},
		{"guarded", Guarded(8), 10, true},
	}
	for _, c := range cases {
		e, err := engine.NewSingle(c.prog, engine.Options{Verify: true})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.Firings != c.firings {
			t.Fatalf("%s: firings = %d, want %d", c.name, res.Firings, c.firings)
		}
		if c.emptyWM && e.Store().Len() != 0 {
			t.Fatalf("%s: %d tuples left", c.name, e.Store().Len())
		}
		if err := engine.CheckTrace(c.prog, res.Log.Commits()); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
}

func TestRandomProgramDrainsWM(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog := RandomProgram(seed, 4, 20)
		e, err := engine.NewSingle(prog, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.LimitHit {
			t.Fatalf("seed %d: random program did not terminate", seed)
		}
		if e.Store().Len() != 0 {
			t.Fatalf("seed %d: %d tuples left", seed, e.Store().Len())
		}
	}
}

// TestManyRulesFanoutShape checks the E22 invariant on every matcher
// variant: each event is owned by exactly one rule, so the program
// fires once per event and drains working memory — identically under
// the discrimination network ("rete") and the linear alpha baseline
// ("rete-linear").
func TestManyRulesFanoutShape(t *testing.T) {
	for _, matcher := range []string{"rete", "rete-linear", "treat"} {
		for _, rules := range []int{8, 48} {
			prog := ManyRulesFanout(rules, 96)
			e, err := engine.NewSingle(prog, engine.Options{Matcher: matcher, Verify: true})
			if err != nil {
				t.Fatalf("%s/R%d: %v", matcher, rules, err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatalf("%s/R%d: %v", matcher, rules, err)
			}
			if res.Firings != 96 {
				t.Fatalf("%s/R%d: firings = %d, want 96", matcher, rules, res.Firings)
			}
			if e.Store().Len() != 0 {
				t.Fatalf("%s/R%d: %d tuples left", matcher, rules, e.Store().Len())
			}
			if err := engine.CheckTrace(prog, res.Log.Commits()); err != nil {
				t.Fatalf("%s/R%d: %v", matcher, rules, err)
			}
		}
	}
}
