// Package workload provides the paper's worked-example fixtures and
// parameterised synthetic workload generators used by the tests,
// benchmarks and the psbench harness.
//
// Reconstruction note: the published scan of the paper is partially
// illegible exactly where the Section 3.3 add/delete sets and the
// Table 5.1/5.2 sets are printed. The fixtures below are documented
// reconstructions chosen to be consistent with every number that IS
// legible: the initial conflict set {P1,P2,P3,P5} of Section 3.3; and
// for Section 5 the execution times T=(5,3,2,4), Np=4, the commit
// sequences σ1=p3p2p4 and σ2=p3p2, and the reported values
// T_single/T_multi/speedup of 9/4/2.25 (Fig 5.1), 5/3/1.67 (Fig 5.2),
// 10/4/2.5 (Fig 5.3) and 9/6/1.5 (Fig 5.4).
package workload

import (
	"fmt"
	"math/rand"

	"pdps/internal/core"
	"pdps/internal/engine"
	"pdps/internal/match"
	"pdps/internal/wm"
)

// Fig32System returns the Section 3.3-style example: six abstract
// productions with add/delete sets and initial conflict set
// {P1,P2,P3,P5}, whose execution graph is the Figure 3.2 reproduction.
func Fig32System() *core.System {
	s, err := core.NewSystem([]*core.Production{
		{Name: "P1", Add: []string{"P4"}, Del: []string{"P2", "P3"}, Time: 3},
		{Name: "P2", Add: []string{"P4"}, Del: []string{"P1"}, Time: 2},
		{Name: "P3", Time: 2},
		{Name: "P4", Add: []string{"P6"}, Del: []string{"P5"}, Time: 4},
		{Name: "P5", Del: []string{"P4"}, Time: 1},
		{Name: "P6", Time: 2},
	}, []string{"P1", "P2", "P3", "P5"})
	if err != nil {
		panic("workload: fig32: " + err.Error())
	}
	return s
}

// Fig51System returns the Section 5 base case (Figure 5.1, Table 5.1):
// conflict set {P1,P2,P3,P4} with execution times 5, 3, 2, 4. The
// delete sets make σ1 = p3 p2 p4 the derived commit sequence on four
// processors, with P1 aborted by P2's commit: T_single=9, T_multi=4,
// speedup 2.25.
func Fig51System() *core.System {
	s, err := core.NewSystem([]*core.Production{
		{Name: "P1", Time: 5},
		{Name: "P2", Time: 3, Del: []string{"P1"}},
		{Name: "P3", Time: 2},
		{Name: "P4", Time: 4},
	}, []string{"P1", "P2", "P3", "P4"})
	if err != nil {
		panic("workload: fig51: " + err.Error())
	}
	return s
}

// Fig52System returns the changed-degree-of-conflict case (Figure 5.2,
// Table 5.2): P3's commit now also kills P4, so σ2 = p3 p2 with both
// P1 and P4 aborted: T_single=5, T_multi=3, speedup 1.67.
func Fig52System() *core.System {
	s, err := core.NewSystem([]*core.Production{
		{Name: "P1", Time: 5},
		{Name: "P2", Time: 3, Del: []string{"P1"}},
		{Name: "P3", Time: 2, Del: []string{"P4"}},
		{Name: "P4", Time: 4},
	}, []string{"P1", "P2", "P3", "P4"})
	if err != nil {
		panic("workload: fig52: " + err.Error())
	}
	return s
}

// Fig53System returns the execution-time-variation case (Figure 5.3):
// the base case with T(P2) increased by one unit: T_single=10,
// T_multi=4, speedup 2.5.
func Fig53System() *core.System {
	s, err := core.NewSystem([]*core.Production{
		{Name: "P1", Time: 5},
		{Name: "P2", Time: 4, Del: []string{"P1"}},
		{Name: "P3", Time: 2},
		{Name: "P4", Time: 4},
	}, []string{"P1", "P2", "P3", "P4"})
	if err != nil {
		panic("workload: fig53: " + err.Error())
	}
	return s
}

// Fig54Np returns the processor count of the Figure 5.4 variation: the
// base case of Figure 5.1 run on three processors instead of four
// (T_single=9, T_multi=6, speedup 1.5).
func Fig54Np() int { return 3 }

// RandomAbstract generates a random terminating abstract system: n
// productions, each deleting up to delDegree later productions and
// adding up to addDegree later productions (later-only references keep
// the system acyclic, hence terminating), with execution times in
// [1, maxTime]. All productions whose index is even start active.
func RandomAbstract(seed int64, n, delDegree, addDegree, maxTime int) *core.System {
	rng := rand.New(rand.NewSource(seed))
	prods := make([]*core.Production, n)
	names := make([]string, n)
	for i := range prods {
		names[i] = fmt.Sprintf("P%d", i+1)
	}
	for i := range prods {
		p := &core.Production{Name: names[i], Time: 1 + rng.Intn(maxTime)}
		for d := 0; d < delDegree; d++ {
			if j := i + 1 + rng.Intn(n); j < n && rng.Intn(2) == 0 {
				p.Del = append(p.Del, names[j])
			}
		}
		for a := 0; a < addDegree; a++ {
			if j := i + 1 + rng.Intn(n); j < n && rng.Intn(2) == 0 {
				p.Add = append(p.Add, names[j])
			}
		}
		prods[i] = p
	}
	var initial []string
	for i := 0; i < n; i++ {
		if i%2 == 0 || rng.Intn(3) == 0 {
			initial = append(initial, names[i])
		}
	}
	s, err := core.NewSystem(prods, initial)
	if err != nil {
		panic("workload: random abstract: " + err.Error())
	}
	return s
}

// ConflictChain builds an abstract system of n unit-or-varying-time
// productions where production i deletes the next `degree` productions
// — a tunable degree-of-conflict workload for the Section 5 sweeps.
// All n productions start active.
func ConflictChain(n, degree, timeBase int) *core.System {
	prods := make([]*core.Production, n)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("P%d", i+1)
	}
	for i := range prods {
		p := &core.Production{Name: names[i], Time: timeBase + i%3}
		for d := 1; d <= degree; d++ {
			if i+d < n {
				p.Del = append(p.Del, names[i+d])
			}
		}
		prods[i] = p
	}
	s, err := core.NewSystem(prods, names)
	if err != nil {
		panic("workload: conflict chain: " + err.Error())
	}
	return s
}

func attrs(kv ...interface{}) map[string]wm.Value {
	m := make(map[string]wm.Value)
	for i := 0; i < len(kv); i += 2 {
		k := kv[i].(string)
		switch v := kv[i+1].(type) {
		case int:
			m[k] = wm.Int(int64(v))
		case string:
			m[k] = wm.Sym(v)
		case bool:
			m[k] = wm.Bool(v)
		case wm.Value:
			m[k] = v
		default:
			panic("workload: bad attr value")
		}
	}
	return m
}

// Pipeline builds a concrete program that moves `parts` parts through
// `stages` stages and removes them at the end: parts×stages firings,
// empty final working memory, and no inter-part conflicts — an
// embarrassingly parallel workload.
func Pipeline(parts, stages int) engine.Program {
	var rules []*match.Rule
	for s := 0; s < stages-1; s++ {
		rules = append(rules, &match.Rule{
			Name: fmt.Sprintf("advance%d", s),
			Conditions: []match.Condition{
				{Class: "part", Tests: []match.AttrTest{
					{Attr: "stage", Op: match.OpEq, Const: wm.Int(int64(s))},
				}},
			},
			Actions: []match.Action{
				{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
					{Attr: "stage", Expr: match.ConstExpr{Val: wm.Int(int64(s + 1))}},
				}},
			},
		})
	}
	rules = append(rules, &match.Rule{
		Name: "finish",
		Conditions: []match.Condition{
			{Class: "part", Tests: []match.AttrTest{
				{Attr: "stage", Op: match.OpEq, Const: wm.Int(int64(stages - 1))},
			}},
		},
		Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
	})
	p := engine.Program{Rules: rules}
	for i := 0; i < parts; i++ {
		p.WMEs = append(p.WMEs, engine.InitialWME{Class: "part", Attrs: attrs("stage", 0, "id", i)})
	}
	return p
}

// JoinHeavy builds a match-bound workload: each task tuple must join
// `depth` reference classes on its key before it can be marked done,
// and every reference class holds one tuple per key. An unindexed
// join scans a whole reference class per activation (O(keys) per
// token), while a hashed join probes a single-entry bucket, so the
// workload isolates the cost the Doorenbos memory indexes remove.
// Firings: keys; no inter-task conflicts.
func JoinHeavy(keys, depth int) engine.Program {
	conds := []match.Condition{{Class: "task", Tests: []match.AttrTest{
		{Attr: "k", Op: match.OpEq, Var: "x"},
		{Attr: "done", Op: match.OpEq, Const: wm.Bool(false)},
	}}}
	for l := 0; l < depth; l++ {
		conds = append(conds, match.Condition{
			Class: fmt.Sprintf("ref%d", l),
			Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}},
		})
	}
	finish := &match.Rule{
		Name:       "finish",
		Conditions: conds,
		Actions: []match.Action{{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
			{Attr: "done", Expr: match.ConstExpr{Val: wm.Bool(true)}},
		}}},
	}
	p := engine.Program{Rules: []*match.Rule{finish}}
	for i := 0; i < keys; i++ {
		p.WMEs = append(p.WMEs, engine.InitialWME{Class: "task", Attrs: attrs("k", i, "done", false)})
		for l := 0; l < depth; l++ {
			p.WMEs = append(p.WMEs, engine.InitialWME{Class: fmt.Sprintf("ref%d", l), Attrs: attrs("k", i)})
		}
	}
	return p
}

// JoinHeavyMisordered is JoinHeavy with an adversarial source order:
// the rule lists `width`-tuples-per-key wide reference classes first,
// then a constant-selective `sel` class (one tuple per 16th key), and
// the task pattern last. Compiled in source order the chain builds
// keys×width-scale intermediate beta memories before the selective
// patterns prune anything; the static cost planner reorders it to lead
// with sel and task. Firings: keys/16 (the hot keys).
func JoinHeavyMisordered(keys, width int) engine.Program {
	kv := func() []match.AttrTest {
		return []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}
	}
	finish := &match.Rule{
		Name: "finish",
		Conditions: []match.Condition{
			{Class: "wide0", Tests: kv()},
			{Class: "wide1", Tests: kv()},
			{Class: "sel", Tests: []match.AttrTest{
				{Attr: "hot", Op: match.OpEq, Const: wm.Bool(true)},
				{Attr: "k", Op: match.OpEq, Var: "x"},
			}},
			{Class: "task", Tests: []match.AttrTest{
				{Attr: "k", Op: match.OpEq, Var: "x"},
				{Attr: "done", Op: match.OpEq, Const: wm.Bool(false)},
			}},
		},
		Actions: []match.Action{{Kind: match.ActModify, CE: 3, Assigns: []match.AttrAssign{
			{Attr: "done", Expr: match.ConstExpr{Val: wm.Bool(true)}},
		}}},
	}
	p := engine.Program{Rules: []*match.Rule{finish}}
	for i := 0; i < keys; i++ {
		p.WMEs = append(p.WMEs, engine.InitialWME{Class: "task", Attrs: attrs("k", i, "done", false)})
		for c := 0; c < width; c++ {
			p.WMEs = append(p.WMEs, engine.InitialWME{Class: "wide0", Attrs: attrs("k", i, "v", c)})
			p.WMEs = append(p.WMEs, engine.InitialWME{Class: "wide1", Attrs: attrs("k", i, "v", c)})
		}
		if i%16 == 0 {
			p.WMEs = append(p.WMEs, engine.InitialWME{Class: "sel", Attrs: attrs("k", i, "hot", true)})
		}
	}
	return p
}

// JoinHeavySkewed is the adaptive-replan workload: the rule's classes
// look statically interchangeable (no constant tests on the join
// classes, so the compile-time planner keeps task first and the big
// classes before tiny), but at run time big0/big1 hold `width` tuples
// per key while tiny holds one tuple per `sparsity` keys. Only live
// cardinalities reveal that tiny should join right after task —
// exactly what `Options.AdaptiveRete` discovers. Firings:
// keys/sparsity.
func JoinHeavySkewed(keys, width, sparsity int) engine.Program {
	kv := func() []match.AttrTest {
		return []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}
	}
	finish := &match.Rule{
		Name: "finish",
		Conditions: []match.Condition{
			{Class: "task", Tests: []match.AttrTest{
				{Attr: "k", Op: match.OpEq, Var: "x"},
				{Attr: "done", Op: match.OpEq, Const: wm.Bool(false)},
			}},
			{Class: "big0", Tests: kv()},
			{Class: "big1", Tests: kv()},
			{Class: "tiny", Tests: kv()},
		},
		Actions: []match.Action{{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
			{Attr: "done", Expr: match.ConstExpr{Val: wm.Bool(true)}},
		}}},
	}
	p := engine.Program{Rules: []*match.Rule{finish}}
	for i := 0; i < keys; i++ {
		p.WMEs = append(p.WMEs, engine.InitialWME{Class: "task", Attrs: attrs("k", i, "done", false)})
		for c := 0; c < width; c++ {
			p.WMEs = append(p.WMEs, engine.InitialWME{Class: "big0", Attrs: attrs("k", i, "v", c)})
			p.WMEs = append(p.WMEs, engine.InitialWME{Class: "big1", Attrs: attrs("k", i, "v", c)})
		}
		if i%sparsity == 0 {
			p.WMEs = append(p.WMEs, engine.InitialWME{Class: "tiny", Attrs: attrs("k", i)})
		}
	}
	return p
}

// ManyRulesFanout is the alpha-network workload (E22): `rules`
// single-CE rules over one event class, each testing three overlapping
// constants — a category shared by rules/16 rules, a priority band,
// and a live flag shared by every rule — so a linear alpha network
// re-evaluates all `rules` predicate closures per assert while the
// discrimination network answers with one hash probe plus the shared
// residual tests. Every event carries a (cat, pri) pair owned by
// exactly one rule, which consumes it. Firings: events; final working
// memory is empty.
func ManyRulesFanout(rules, events int) engine.Program {
	cats := 16
	if rules < cats {
		cats = rules
	}
	p := engine.Program{}
	for r := 0; r < rules; r++ {
		p.Rules = append(p.Rules, &match.Rule{
			Name: fmt.Sprintf("fan%d", r),
			Conditions: []match.Condition{{
				Class: "event",
				Tests: []match.AttrTest{
					{Attr: "cat", Op: match.OpEq, Const: wm.Int(int64(r % cats))},
					{Attr: "pri", Op: match.OpEq, Const: wm.Int(int64(r / cats))},
					{Attr: "live", Op: match.OpEq, Const: wm.Bool(true)},
				},
			}},
			Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
		})
	}
	for e := 0; e < events; e++ {
		r := e % rules
		p.WMEs = append(p.WMEs, engine.InitialWME{Class: "event",
			Attrs: attrs("cat", r%cats, "pri", r/cats, "live", true, "seq", e)})
	}
	return p
}

// SharedCounter builds the high-conflict variant of Pipeline: every
// stage advance also increments one shared tally tuple, so all firings
// write-conflict on it. Firings: parts×stages; final tally equals that
// count.
func SharedCounter(parts, stages int) engine.Program {
	var rules []*match.Rule
	for s := 0; s < stages; s++ {
		rules = append(rules, &match.Rule{
			Name: fmt.Sprintf("tick%d", s),
			Conditions: []match.Condition{
				{Class: "part", Tests: []match.AttrTest{
					{Attr: "stage", Op: match.OpEq, Const: wm.Int(int64(s))},
				}},
				{Class: "tally", Tests: []match.AttrTest{
					{Attr: "n", Op: match.OpEq, Var: "t"},
				}},
			},
			Actions: []match.Action{
				{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
					{Attr: "stage", Expr: match.ConstExpr{Val: wm.Int(int64(s + 1))}},
				}},
				{Kind: match.ActModify, CE: 1, Assigns: []match.AttrAssign{
					{Attr: "n", Expr: match.BinExpr{Op: match.ArithAdd, L: match.VarExpr{Name: "t"}, R: match.ConstExpr{Val: wm.Int(1)}}},
				}},
			},
		})
	}
	p := engine.Program{Rules: rules, WMEs: []engine.InitialWME{{Class: "tally", Attrs: attrs("n", 0)}}}
	for i := 0; i < parts; i++ {
		p.WMEs = append(p.WMEs, engine.InitialWME{Class: "part", Attrs: attrs("stage", 0, "id", i)})
	}
	return p
}

// Independent builds the elision-friendly extreme: `rules` rules, each
// over its own private class, stepping its own single counter tuple
// `steps` times. No rule's write set overlaps any other rule's read or
// write set, so the Section 4.1 analysis declares every pair
// non-interfering — and each rule has exactly one tuple, so no two
// instances of the same rule are ever simultaneously active. Under
// HybridElision every firing takes the lock-free path; with elision
// off, every firing pays the full Rc/Wa lock round-trip for nothing.
// Firings: rules×steps; final value of every counter equals steps.
func Independent(rules, steps int) engine.Program {
	var p engine.Program
	for r := 0; r < rules; r++ {
		cls := fmt.Sprintf("cell%d", r)
		p.Rules = append(p.Rules, &match.Rule{
			Name: fmt.Sprintf("step%d", r),
			Conditions: []match.Condition{
				{Class: cls, Tests: []match.AttrTest{
					{Attr: "v", Op: match.OpEq, Var: "x"},
					{Attr: "v", Op: match.OpLt, Const: wm.Int(int64(steps))},
				}},
			},
			Actions: []match.Action{
				{Kind: match.ActModify, CE: 0, Assigns: []match.AttrAssign{
					{Attr: "v", Expr: match.BinExpr{Op: match.ArithAdd,
						L: match.VarExpr{Name: "x"}, R: match.ConstExpr{Val: wm.Int(1)}}},
				}},
			},
		})
		p.WMEs = append(p.WMEs, engine.InitialWME{Class: cls, Attrs: attrs("v", 0)})
	}
	return p
}

// Guarded builds a program exercising negated conditions and lock
// escalation: each job is shipped only while no hold tuple for its
// lane exists; a matching auditor rule files holds for odd lanes
// first. Jobs in held lanes are released when the hold is cleared.
func Guarded(jobs int) engine.Program {
	ship := &match.Rule{
		Name: "ship",
		Conditions: []match.Condition{
			{Class: "job", Tests: []match.AttrTest{
				{Attr: "lane", Op: match.OpEq, Var: "l"},
				{Attr: "state", Op: match.OpEq, Const: wm.Sym("ready")},
			}},
			{Class: "hold", Negated: true, Tests: []match.AttrTest{
				{Attr: "lane", Op: match.OpEq, Var: "l"},
			}},
		},
		Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
	}
	clear := &match.Rule{
		Name: "clear",
		Conditions: []match.Condition{
			{Class: "hold", Tests: []match.AttrTest{
				{Attr: "lane", Op: match.OpEq, Var: "l"},
			}},
		},
		Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
	}
	p := engine.Program{Rules: []*match.Rule{ship, clear}}
	for i := 0; i < jobs; i++ {
		p.WMEs = append(p.WMEs, engine.InitialWME{Class: "job", Attrs: attrs("lane", i%4, "state", "ready")})
	}
	p.WMEs = append(p.WMEs,
		engine.InitialWME{Class: "hold", Attrs: attrs("lane", 1)},
		engine.InitialWME{Class: "hold", Attrs: attrs("lane", 3)},
	)
	return p
}

// RandomProgram generates a random terminating concrete program:
// layered classes c0..c(layers-1); rules consume a tuple of layer i
// and produce one of layer i+1 (the last layer's rules just remove),
// so every run terminates with an empty working memory.
func RandomProgram(seed int64, layers, width int) engine.Program {
	rng := rand.New(rand.NewSource(seed))
	var rules []*match.Rule
	for l := 0; l < layers; l++ {
		cls := fmt.Sprintf("c%d", l)
		r := &match.Rule{
			Name: fmt.Sprintf("r%d", l),
			Conditions: []match.Condition{
				{Class: cls, Tests: []match.AttrTest{{Attr: "v", Op: match.OpEq, Var: "x"}}},
			},
		}
		if l == layers-1 {
			r.Actions = []match.Action{{Kind: match.ActRemove, CE: 0}}
		} else {
			r.Actions = []match.Action{
				{Kind: match.ActRemove, CE: 0},
				{Kind: match.ActMake, Class: fmt.Sprintf("c%d", l+1),
					Assigns: []match.AttrAssign{{Attr: "v", Expr: match.VarExpr{Name: "x"}}}},
			}
		}
		rules = append(rules, r)
	}
	p := engine.Program{Rules: rules}
	for i := 0; i < width; i++ {
		p.WMEs = append(p.WMEs, engine.InitialWME{
			Class: fmt.Sprintf("c%d", rng.Intn(layers)),
			Attrs: attrs("v", rng.Intn(1000)),
		})
	}
	return p
}

// RandomContended generates a terminating but conflict-heavy concrete
// program for schedule fuzzing, and the exact number of commits every
// consistent execution of it performs. The skeleton is the layered
// consumption of RandomProgram — each rule removes a c<l> tuple and
// makes its layer-l+1 successors — spiced with three contention
// sources chosen from the seed:
//
//   - fan-out: a layer's rule may make two successor tuples with the
//     same value, so working memory accumulates duplicate-content
//     tuples (stressing the fingerprint backtracking in CheckTrace);
//   - a hub: with probability hubProb per layer, the rule also reads
//     and modifies the single shared (hub ^n ...) tuple, serialising
//     every coupled firing through one Wa lock;
//   - negation: with probability negProb per layer, the rule gets a
//     negated condition on the hub class that never matches (^n < 0),
//     forcing a relation-level Rc lock that collides with the hub
//     writers' tuple-level Wa — the escalation path and, under
//     SchemeRcRaWa, the commit-time Rc-victim rule.
//
// None of the three changes the commit count of a consistent run:
// every c<l> tuple is consumed exactly once regardless of order, the
// hub modify is always enabled, and the negation is always satisfied.
func RandomContended(seed int64, layers, width int, hubProb, negProb float64) (engine.Program, int) {
	rng := rand.New(rand.NewSource(seed))
	if layers < 1 {
		layers = 1
	}
	if width < 1 {
		width = 1
	}
	fanout := make([]int, layers) // successor tuples made per firing
	hub := make([]bool, layers)
	neg := make([]bool, layers)
	anyHub := false
	for l := 0; l < layers; l++ {
		fanout[l] = 1
		if l < layers-1 && rng.Float64() < 0.3 {
			fanout[l] = 2
		}
		hub[l] = rng.Float64() < hubProb
		neg[l] = rng.Float64() < negProb
		anyHub = anyHub || hub[l]
	}
	var rules []*match.Rule
	for l := 0; l < layers; l++ {
		cls := fmt.Sprintf("c%d", l)
		r := &match.Rule{
			Name: fmt.Sprintf("r%d", l),
			Conditions: []match.Condition{
				{Class: cls, Tests: []match.AttrTest{{Attr: "v", Op: match.OpEq, Var: "x"}}},
			},
			Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
		}
		if hub[l] {
			r.Conditions = append(r.Conditions, match.Condition{
				Class: "hub", Tests: []match.AttrTest{{Attr: "n", Op: match.OpEq, Var: "t"}}})
			r.Actions = append(r.Actions, match.Action{
				Kind: match.ActModify, CE: 1,
				Assigns: []match.AttrAssign{{Attr: "n", Expr: match.BinExpr{
					Op: match.ArithAdd, L: match.VarExpr{Name: "t"}, R: match.ConstExpr{Val: wm.Int(1)}}}},
			})
		}
		if neg[l] {
			r.Conditions = append(r.Conditions, match.Condition{
				Class: "hub", Negated: true,
				Tests: []match.AttrTest{{Attr: "n", Op: match.OpLt, Const: wm.Int(0)}}})
		}
		if l < layers-1 {
			for k := 0; k < fanout[l]; k++ {
				r.Actions = append(r.Actions, match.Action{
					Kind: match.ActMake, Class: fmt.Sprintf("c%d", l+1),
					Assigns: []match.AttrAssign{{Attr: "v", Expr: match.VarExpr{Name: "x"}}}})
			}
		}
		rules = append(rules, r)
	}
	// firingsFrom[l] is the total commits one layer-l tuple causes.
	firingsFrom := make([]int, layers)
	for l := layers - 1; l >= 0; l-- {
		firingsFrom[l] = 1
		if l < layers-1 {
			firingsFrom[l] += fanout[l] * firingsFrom[l+1]
		}
	}
	p := engine.Program{Rules: rules}
	total := 0
	for i := 0; i < width; i++ {
		l := rng.Intn(layers)
		total += firingsFrom[l]
		p.WMEs = append(p.WMEs, engine.InitialWME{
			Class: fmt.Sprintf("c%d", l),
			// A tiny value domain, so duplicate-content tuples are common.
			Attrs: attrs("v", rng.Intn(3)),
		})
	}
	if anyHub || anyNeg(neg) {
		p.WMEs = append(p.WMEs, engine.InitialWME{Class: "hub", Attrs: attrs("n", 0)})
	}
	return p, total
}

func anyNeg(neg []bool) bool {
	for _, n := range neg {
		if n {
			return true
		}
	}
	return false
}
