package lock

import (
	"errors"
	"testing"
	"time"
)

// waitForWaiters blocks until the manager has registered at least n
// blocked acquisitions. The Waits counter is incremented after the
// waits-for edge is published, so once it reads n the blocked
// requests are fully visible to the deadlock machinery; the deadline
// bounds liveness only, not correctness.
func waitForWaiters(t *testing.T, m *Manager, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Waits < n {
		if time.Now().After(deadline) {
			t.Fatalf("waits=%d after 5s, want >= %d", m.Stats().Waits, n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestCompatibilityTable41(t *testing.T) {
	// Table 4.1 (held row, requested column) for the improved scheme:
	//        Rc  Ra  Wa
	//   Rc    Y   Y   Y
	//   Ra    Y   Y   N
	//   Wa    N   N   N
	want := map[[2]Mode]bool{
		{Rc, Rc}: true, {Rc, Ra}: true, {Rc, Wa}: true,
		{Ra, Rc}: true, {Ra, Ra}: true, {Ra, Wa}: false,
		{Wa, Rc}: false, {Wa, Ra}: false, {Wa, Wa}: false,
	}
	for pair, ok := range want {
		if got := Compatible(SchemeRcRaWa, pair[0], pair[1]); got != ok {
			t.Errorf("RcRaWa: held %s, request %s: got %v, want %v", pair[0], pair[1], got, ok)
		}
	}
	// Under 2PL, Rc degenerates to a shared read lock: Rc–Wa conflicts.
	if Compatible(Scheme2PL, Rc, Wa) {
		t.Error("2PL: held Rc must block Wa")
	}
	if Compatible(Scheme2PL, Wa, Rc) {
		t.Error("2PL: held Wa must block Rc")
	}
	if !Compatible(Scheme2PL, Rc, Ra) || !Compatible(Scheme2PL, Ra, Rc) {
		t.Error("2PL: shared reads must be compatible")
	}
}

func TestAcquireSharedAndUpgrade(t *testing.T) {
	m := NewManager(SchemeRcRaWa)
	q := Resource{Class: "q", ID: 1}
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Acquire(t1, q, Rc); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t2, q, Rc); err != nil {
		t.Fatal(err)
	}
	// Upgrade t1 to Wa: allowed even though t2 holds Rc (the paper's key
	// liberality).
	if err := m.Acquire(t1, q, Wa); err != nil {
		t.Fatal(err)
	}
	if m.Held(t1)[q] != Wa {
		t.Fatalf("t1 mode = %v, want Wa", m.Held(t1)[q])
	}
	// t2 is now the Rc victim of t1's eventual commit.
	victims := m.RcVictims(t1)
	if len(victims) != 1 || victims[0] != t2 {
		t.Fatalf("RcVictims = %v, want [%d]", victims, t2)
	}
	m.End(t1)
	m.End(t2)
}

func TestWaBlocksUntilRelease(t *testing.T) {
	m := NewManager(SchemeRcRaWa)
	q := Resource{Class: "q", ID: 1}
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Acquire(t1, q, Wa); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Acquire(t2, q, Rc) }()
	waitForWaiters(t, m, 1)
	select {
	case err := <-got:
		t.Fatalf("Rc against held Wa must block, returned %v", err)
	default:
	}
	m.End(t1)
	if err := <-got; err != nil {
		t.Fatalf("after release: %v", err)
	}
	m.End(t2)
}

func TestRaBlocksWa(t *testing.T) {
	m := NewManager(SchemeRcRaWa)
	q := Resource{Class: "q", ID: 1}
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Acquire(t1, q, Ra); err != nil {
		t.Fatal(err)
	}
	ok, err := m.TryAcquire(t2, q, Wa)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Wa against held Ra must be refused")
	}
	m.End(t1)
	ok, err = m.TryAcquire(t2, q, Wa)
	if err != nil || !ok {
		t.Fatalf("after release: ok=%v err=%v", ok, err)
	}
	m.End(t2)
}

func TestDeadlockDetectionAbortsYoungest(t *testing.T) {
	m := NewManager(SchemeRcRaWa)
	q := Resource{Class: "q", ID: 1}
	r := Resource{Class: "r", ID: 1}
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Acquire(t1, q, Wa); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t2, r, Wa); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- m.Acquire(t1, r, Wa) }()
	waitForWaiters(t, m, 1)
	go func() { errs <- m.Acquire(t2, q, Wa) }()

	// Exactly one of the two must get ErrDeadlock; the other succeeds
	// after the victim releases.
	var deadlocked, succeeded int
	for i := 0; i < 2; i++ {
		err := <-errs
		switch {
		case errors.Is(err, ErrDeadlock):
			deadlocked++
			// Victim must be the youngest, t2.
			if !m.Aborted(t2) {
				t.Error("victim should be the youngest transaction")
			}
			m.End(t2)
		case err == nil:
			succeeded++
		default:
			t.Fatalf("unexpected error %v", err)
		}
	}
	if deadlocked != 1 || succeeded != 1 {
		t.Fatalf("deadlocked=%d succeeded=%d", deadlocked, succeeded)
	}
	m.End(t1)
}

func TestAbortWakesWaiter(t *testing.T) {
	m := NewManager(SchemeRcRaWa)
	q := Resource{Class: "q", ID: 1}
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Acquire(t1, q, Wa); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Acquire(t2, q, Wa) }()
	waitForWaiters(t, m, 1)
	m.Abort(t2)
	if err := <-got; !errors.Is(err, ErrAborted) {
		t.Fatalf("aborted waiter got %v, want ErrAborted", err)
	}
	if !m.Aborted(t2) {
		t.Fatal("Aborted not reported")
	}
	m.End(t2)
	m.End(t1)
}

func TestRelationLevelEscalation(t *testing.T) {
	m := NewManager(SchemeRcRaWa)
	rel := Relation("part")
	tup := Resource{Class: "part", ID: 7}
	other := Resource{Class: "machine", ID: 7}

	t1, t2, t3 := m.Begin(), m.Begin(), m.Begin()
	// Relation-level Rc (a negated condition on class part).
	if err := m.Acquire(t1, rel, Rc); err != nil {
		t.Fatal(err)
	}
	// A tuple-level Wa in the same class IS granted under RcRaWa (the
	// Rc holder becomes a commit-time victim instead).
	if err := m.Acquire(t2, tup, Wa); err != nil {
		t.Fatal(err)
	}
	victims := m.RcVictims(t2)
	if len(victims) != 1 || victims[0] != t1 {
		t.Fatalf("RcVictims = %v, want [%d]", victims, t1)
	}
	// A tuple Wa in a different class does not touch the Rc holder.
	if err := m.Acquire(t3, other, Wa); err != nil {
		t.Fatal(err)
	}
	if v := m.RcVictims(t3); len(v) != 0 {
		t.Fatalf("cross-class victims = %v, want none", v)
	}
	m.End(t1)
	m.End(t2)
	m.End(t3)
}

func TestRelationLevelEscalation2PLBlocks(t *testing.T) {
	m := NewManager(Scheme2PL)
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Acquire(t1, Relation("part"), Rc); err != nil {
		t.Fatal(err)
	}
	ok, err := m.TryAcquire(t2, Resource{Class: "part", ID: 3}, Wa)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("2PL: tuple Wa must be blocked by relation-level Rc")
	}
	// And the reverse: tuple Wa held blocks relation Rc.
	m.End(t1)
	if err := m.Acquire(t2, Resource{Class: "part", ID: 3}, Wa); err != nil {
		t.Fatal(err)
	}
	ok, err = m.TryAcquire(t1, Relation("part"), Rc)
	if err == nil && ok {
		t.Fatal("relation Rc must be blocked by tuple Wa")
	}
	m.End(t2)
}

func TestRcVictimsEmptyUnder2PL(t *testing.T) {
	// Under 2PL the Rc–Wa coexistence cannot arise, so a committing
	// writer never has victims.
	m := NewManager(Scheme2PL)
	q := Resource{Class: "q", ID: 1}
	t1 := m.Begin()
	if err := m.Acquire(t1, q, Wa); err != nil {
		t.Fatal(err)
	}
	if v := m.RcVictims(t1); len(v) != 0 {
		t.Fatalf("victims under 2PL = %v", v)
	}
	m.End(t1)
}

func TestAcquireIdempotentAndUnknownTxn(t *testing.T) {
	m := NewManager(SchemeRcRaWa)
	q := Resource{Class: "q", ID: 1}
	t1 := m.Begin()
	if err := m.Acquire(t1, q, Ra); err != nil {
		t.Fatal(err)
	}
	// Re-acquiring an equal or weaker mode is a no-op.
	if err := m.Acquire(t1, q, Ra); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t1, q, Rc); err != nil {
		t.Fatal(err)
	}
	if m.Held(t1)[q] != Ra {
		t.Fatal("weaker re-acquire must not downgrade")
	}
	if err := m.Acquire(999, q, Rc); err == nil {
		t.Fatal("unknown txn must error")
	}
	if _, err := m.TryAcquire(999, q, Rc); err == nil {
		t.Fatal("unknown txn must error in TryAcquire")
	}
	m.End(t1)
	m.End(999) // no-op
}

func TestStatsCounters(t *testing.T) {
	m := NewManager(SchemeRcRaWa)
	q := Resource{Class: "q", ID: 1}
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Acquire(t1, q, Wa); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(t2, q, Wa) }()
	waitForWaiters(t, m, 1)
	m.End(t1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Acquired < 2 || s.Waits < 1 {
		t.Fatalf("stats = %+v", s)
	}
	m.End(t2)
}
