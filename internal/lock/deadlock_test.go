package lock

import (
	"errors"
	"sync"
	"testing"
)

// crossAcquire sets up the classic two-resource crossing: t1 holds q
// and requests r; t2 holds r and requests q. It returns the two
// Acquire errors. The two requests race deliberately: under wound-wait
// and wait-die the prevention outcome is the same whichever request is
// processed first, so no ordering synchronisation is needed.
func crossAcquire(t *testing.T, m *Manager) (err1, err2 error, t1, t2 TxnID) {
	t.Helper()
	q := Resource{Class: "q", ID: 1}
	r := Resource{Class: "r", ID: 1}
	t1, t2 = m.Begin(), m.Begin()
	if err := m.Acquire(t1, q, Wa); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t2, r, Wa); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		err1 = m.Acquire(t1, r, Wa)
		if err1 != nil {
			m.End(t1)
		}
	}()
	go func() {
		defer wg.Done()
		err2 = m.Acquire(t2, q, Wa)
		if err2 != nil {
			m.End(t2)
		}
	}()
	wg.Wait()
	return err1, err2, t1, t2
}

func TestWoundWaitOlderWoundsYounger(t *testing.T) {
	m := NewManagerPolicy(SchemeRcRaWa, DeadlockWoundWait)
	if m.Policy() != DeadlockWoundWait {
		t.Fatal("policy accessor wrong")
	}
	err1, err2, t1, t2 := crossAcquire(t, m)
	// t1 is older: it wounds t2 and must eventually acquire; t2 dies.
	if err1 != nil {
		t.Fatalf("older transaction failed: %v", err1)
	}
	if !errors.Is(err2, ErrDeadlock) && !errors.Is(err2, ErrAborted) {
		t.Fatalf("younger transaction got %v, want wound", err2)
	}
	m.End(t1)
	_ = t2
}

func TestWaitDieYoungerDies(t *testing.T) {
	m := NewManagerPolicy(SchemeRcRaWa, DeadlockWaitDie)
	err1, err2, t1, _ := crossAcquire(t, m)
	// t2 is younger and blocked by older t1: it dies. t1 (older) waits
	// for t2's locks and then proceeds.
	if !errors.Is(err2, ErrDeadlock) {
		t.Fatalf("younger transaction got %v, want ErrDeadlock", err2)
	}
	if err1 != nil {
		t.Fatalf("older transaction failed: %v", err1)
	}
	m.End(t1)
}

func TestWaitDieOlderWaits(t *testing.T) {
	// Older requester blocked by younger holder must wait, not die.
	m := NewManagerPolicy(SchemeRcRaWa, DeadlockWaitDie)
	q := Resource{Class: "q", ID: 1}
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Acquire(t2, q, Wa); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(t1, q, Wa) }()
	waitForWaiters(t, m, 1)
	select {
	case err := <-done:
		t.Fatalf("older requester returned early: %v", err)
	default:
	}
	m.End(t2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.End(t1)
}

func TestWoundWaitYoungerWaits(t *testing.T) {
	// Younger requester blocked by older holder waits under wound-wait.
	m := NewManagerPolicy(SchemeRcRaWa, DeadlockWoundWait)
	q := Resource{Class: "q", ID: 1}
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Acquire(t1, q, Wa); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(t2, q, Wa) }()
	waitForWaiters(t, m, 1)
	select {
	case err := <-done:
		t.Fatalf("younger requester returned early: %v", err)
	default:
	}
	if m.Aborted(t1) {
		t.Fatal("older holder must not be wounded by younger requester")
	}
	m.End(t1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.End(t2)
}

func TestPolicyString(t *testing.T) {
	if DeadlockDetect.String() != "detect" ||
		DeadlockWoundWait.String() != "wound-wait" ||
		DeadlockWaitDie.String() != "wait-die" ||
		DeadlockPolicy(9).String() == "" {
		t.Fatal("String() wrong")
	}
}
