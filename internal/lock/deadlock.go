package lock

import "fmt"

// DeadlockPolicy selects how the manager handles blocked acquisitions.
// The paper (Section 4.3) observes that the non-exclusive Rc lock
// introduces no new deadlocks, so "the deadlock prevention, avoidance,
// detection or resolution schemes for standard 2-phase locking can be
// applied" — all three classic schemes are provided.
type DeadlockPolicy uint8

const (
	// DeadlockDetect (default) builds the waits-for graph on demand
	// and aborts the youngest transaction of any cycle.
	DeadlockDetect DeadlockPolicy = iota
	// DeadlockWoundWait is the preemptive prevention scheme: an older
	// requester wounds (aborts) younger lock holders; a younger
	// requester waits for older holders. No cycles can form.
	DeadlockWoundWait
	// DeadlockWaitDie is the non-preemptive prevention scheme: an
	// older requester waits; a younger requester dies (aborts itself)
	// instead of waiting on an older holder.
	DeadlockWaitDie
)

// String names the policy.
func (p DeadlockPolicy) String() string {
	switch p {
	case DeadlockDetect:
		return "detect"
	case DeadlockWoundWait:
		return "wound-wait"
	case DeadlockWaitDie:
		return "wait-die"
	}
	return fmt.Sprintf("DeadlockPolicy(%d)", uint8(p))
}

// resolveBlockedLocked applies the deadlock policy for transaction id
// blocked by the given transactions. It returns abortSelf=true when
// the requester must give up with ErrDeadlock; otherwise the requester
// should (re-)wait. Caller holds the registry mutex. Blockers already
// aborted or ending are left alone — their locks are about to be
// released, so the requester just waits for the broadcast.
func (m *Manager) resolveBlockedLocked(id TxnID, blockers map[TxnID]Mode) (abortSelf bool) {
	settling := func(b TxnID) bool {
		tx := m.reg.txns[b]
		return tx == nil || tx.aborted || tx.ending
	}
	switch m.policy {
	case DeadlockWoundWait:
		// Wound every younger blocker; wait on older ones.
		for b := range blockers {
			if b > id && !settling(b) {
				m.abortLocked(b, ErrDeadlock)
				m.reg.deadlocks++
				m.met.deadlock()
			}
		}
		return false
	case DeadlockWaitDie:
		// Die if any blocker is older.
		for b := range blockers {
			if b < id && !settling(b) {
				m.reg.deadlocks++
				m.met.deadlock()
				return true
			}
		}
		return false
	default: // DeadlockDetect
		if victim := m.findDeadlockVictimLocked(id); victim != 0 {
			m.abortLocked(victim, ErrDeadlock)
			m.reg.deadlocks++
			m.met.deadlock()
			if victim == id {
				return true
			}
		}
		return false
	}
}
