package lock

import (
	"pdps/internal/obs"
	"pdps/internal/sched"
)

// metrics holds the manager's cached obs handles. All methods are
// nil-safe so an uninstrumented manager (tests, direct construction)
// pays only a nil check on the hot path.
type metrics struct {
	txns      *obs.Counter
	acquires  [3]*obs.Counter // indexed by Mode
	waits     *obs.Counter
	waitNS    *obs.Histogram
	deadlocks *obs.Counter
	txnAborts *obs.Counter
	rcVictims *obs.Counter
	// conflicts counts blocked or commit-resolved lock conflicts by
	// (held, requested) mode pair — the paper's "degree of conflict"
	// factor (Section 5.1) made observable. Indexed [held][requested].
	conflicts [3][3]*obs.Counter
}

// newMetrics registers the lock-layer series in reg and caches their
// handles; every series exists from the start (at zero), so snapshot
// shape does not depend on which conflicts happened to occur.
func newMetrics(reg *obs.Registry) *metrics {
	mt := &metrics{
		txns:      reg.Counter("lock_txns_total"),
		waits:     reg.Counter("lock_waits_total"),
		waitNS:    reg.Histogram("lock_wait_ns", "ns"),
		deadlocks: reg.Counter("lock_deadlocks_total"),
		txnAborts: reg.Counter("lock_txn_aborts_total"),
		rcVictims: reg.Counter("lock_rc_victims_total"),
	}
	for m := Rc; m <= Wa; m++ {
		mt.acquires[m] = reg.Counter("lock_acquires_total", obs.L("mode", m.String()))
		for r := Rc; r <= Wa; r++ {
			mt.conflicts[m][r] = reg.Counter("lock_conflicts_total",
				obs.L("modes", m.String()+"/"+r.String()))
		}
	}
	return mt
}

func (mt *metrics) begin() {
	if mt != nil {
		mt.txns.Inc()
	}
}

func (mt *metrics) grant(mode Mode) {
	if mt != nil {
		mt.acquires[mode].Inc()
	}
}

func (mt *metrics) wait() {
	if mt != nil {
		mt.waits.Inc()
	}
}

// conflict records one blocked request: for each blocker, the
// (held, requested) pair it contributed.
func (mt *metrics) conflict(blockers map[TxnID]Mode, req Mode) {
	if mt == nil {
		return
	}
	for _, held := range blockers {
		mt.conflicts[held][req].Inc()
	}
}

// rcVictim records one commit-time Rc abort (Section 4.3 rule (ii)).
// Under SchemeRcRaWa the Rc–Wa conflict never blocks (Table 4.1 grants
// it), so it is counted here, where it materialises, into the same
// Rc/Wa series a blocking scheme would use — keeping the conflict
// metric comparable across schemes.
func (mt *metrics) rcVictim() {
	if mt != nil {
		mt.rcVictims.Inc()
		mt.conflicts[Rc][Wa].Inc()
	}
}

func (mt *metrics) deadlock() {
	if mt != nil {
		mt.deadlocks.Inc()
	}
}

func (mt *metrics) txnAbort() {
	if mt != nil {
		mt.txnAborts.Inc()
	}
}

// SetMetrics registers the manager's metric series in reg and starts
// recording into them. Call before any Begin; a manager without
// metrics records nothing.
func (m *Manager) SetMetrics(reg *obs.Registry) { m.met = newMetrics(reg) }

// SetClock installs the time source used for the lock-wait histogram.
// The engine passes its resolved Options.Clock, so under a
// deterministic scheduler waits are measured in virtual time and the
// histogram is replay-stable. A nil clock (the default) disables wait
// timing but not wait counting.
func (m *Manager) SetClock(c sched.Clock) { m.clock = c }
