// Package lock implements the concurrency-control substrate of the
// paper's dynamic approach (Section 4): a lock manager supporting both
// conventional two-phase locking and the paper's improved three-mode
// scheme with Rc (condition-read), Ra (action-read) and Wa
// (action-write) locks per Table 4.1. Under the improved scheme a Wa
// lock is granted even while other productions hold Rc locks on the
// same data — the Rc–Wa conflict is allowed to exist — and safety is
// restored at commit time by aborting the Rc holders that lost the
// race (Section 4.3, rules (i) and (ii)).
//
// The lock tables are sharded by class hash: each shard has its own
// mutex, waiter list and entry maps, so transactions locking
// resources of different classes never contend on manager state. A
// tuple-level resource and its class's relation-level resource always
// land in the same shard, which keeps the tuple/relation escalation
// checks and the commit-time RcVictims scan atomic per class. A
// process-wide transaction registry (its own mutex) carries the
// waits-for graph, so the deadlock detector and the wound-wait /
// wait-die policies still see every shard's waiters.
//
// Tuple/relation hierarchy is mediated by intention bookkeeping in the
// multi-granularity style: every tuple-level grant also records an
// intention mark for its mode on the class's relation-level entry, so
// a relation-level request resolves its conflicts against that one
// entry — full-mode holders plus intention marks, each judged by the
// scheme's Table 4.1 compatibility of the underlying tuple mode — in
// O(holders) rather than by scanning every tuple entry of the class.
package lock

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"time"

	"pdps/internal/sched"
)

// Mode is a lock mode. Modes are ordered by strength: Rc < Ra < Wa.
type Mode uint8

// The three lock modes of Section 4.3.
const (
	// Rc is the read lock acquired for condition (LHS) evaluation.
	Rc Mode = iota
	// Ra is the read lock acquired at the start of action execution.
	Ra
	// Wa is the write lock acquired at the start of action execution.
	Wa
)

// String returns the paper's name for the mode.
func (m Mode) String() string {
	switch m {
	case Rc:
		return "Rc"
	case Ra:
		return "Ra"
	case Wa:
		return "Wa"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Scheme selects the compatibility matrix.
type Scheme uint8

const (
	// Scheme2PL is conventional two-phase locking: condition reads are
	// ordinary shared locks held to commit, so Rc behaves as Ra
	// (Section 4.2, Theorem 2).
	Scheme2PL Scheme = iota
	// SchemeRcRaWa is the improved scheme of Section 4.3 (Table 4.1).
	SchemeRcRaWa
)

// String names the scheme.
func (s Scheme) String() string {
	if s == Scheme2PL {
		return "2pl"
	}
	return "rcrawa"
}

// Compatible reports whether a lock request of mode req can be granted
// while another transaction holds mode held on the same data, per the
// scheme's compatibility matrix. For SchemeRcRaWa this is Table 4.1;
// note the deliberate asymmetry: held Rc admits a Wa request, but held
// Wa rejects an Rc request.
func Compatible(s Scheme, held, req Mode) bool {
	if s == Scheme2PL {
		if held == Rc {
			held = Ra
		}
		if req == Rc {
			req = Ra
		}
	}
	switch held {
	case Rc:
		return true
	case Ra:
		return req != Wa
	case Wa:
		return false
	}
	return false
}

// Resource identifies a lockable datum: a tuple (Class, ID) or a whole
// relation (ID == RelationLevel). Relation-level locks conflict with
// every tuple lock of the class and vice versa — the escalation the
// paper prescribes for negated (existence-dependent) conditions.
type Resource struct {
	Class string
	ID    int64
}

// RelationLevel is the ID denoting a whole-relation resource.
const RelationLevel int64 = 0

// Relation returns the relation-level resource of a class.
func Relation(class string) Resource { return Resource{Class: class, ID: RelationLevel} }

// String renders the resource as class[id] or class[*].
func (r Resource) String() string {
	if r.ID == RelationLevel {
		return r.Class + "[*]"
	}
	return fmt.Sprintf("%s[%d]", r.Class, r.ID)
}

// TxnID identifies one production-firing transaction. IDs are assigned
// monotonically; deadlock resolution aborts the youngest (largest ID)
// transaction in a cycle.
type TxnID int64

// Errors returned by Acquire.
var (
	// ErrDeadlock reports that the transaction was chosen as the
	// deadlock victim and must abort.
	ErrDeadlock = errors.New("lock: deadlock victim")
	// ErrAborted reports that the transaction was aborted by another
	// transaction's commit (an Rc–Wa conflict resolution) or by the
	// engine while it was waiting.
	ErrAborted = errors.New("lock: transaction aborted")
)

// txnState is one live transaction. held, aborted, abortErr, ending
// and waitsOn are guarded by the registry mutex; id is immutable.
type txnState struct {
	id       TxnID
	held     map[Resource]Mode
	aborted  bool
	abortErr error
	// ending marks a transaction inside End: its locks are about to be
	// released, so blocked requesters wait for the release broadcast
	// instead of wounding it or dying because of it.
	ending bool
	// waitsOn maps each transaction currently blocking this one to the
	// lock mode it holds; rebuilt on every blocked-acquire iteration.
	waitsOn map[TxnID]Mode
	// waitCh, when non-nil, is the channel the transaction's Acquire is
	// (about to be) blocked on; abortLocked signals it so a targeted
	// abort reaches exactly the right waiter without touching any
	// shard. Set and cleared under the registry mutex.
	waitCh chan struct{}
}

// signal delivers a non-blocking wakeup on a one-slot channel. Unlike
// close, it can be sent any number of times (broadcast on release plus
// a targeted abort may both hit the same waiter).
func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// intentBit is the intention mark for a tuple-level mode, recorded on
// the class's relation entry (multi-granularity IRc/IRa/IWa).
func intentBit(m Mode) uint8 { return 1 << m }

type entry struct {
	holders map[TxnID]Mode
	// intents, on relation-level entries, maps each transaction holding
	// tuple locks inside the class to the bitmask of tuple modes it
	// holds — the intention modes (IRc/IRa/IWa) of hierarchical locking.
	// A relation-level request conflicts with an intention mark exactly
	// when it would conflict with the underlying tuple mode (Table 4.1).
	// Nil on tuple-level entries.
	intents map[TxnID]uint8
}

// live reports whether the entry still records any lock state.
func (e *entry) live() bool { return len(e.holders) > 0 || len(e.intents) > 0 }

// shard is one slice of the lock tables: every resource whose class
// hashes here, tuple- and relation-level alike.
type shard struct {
	mu      sync.Mutex
	entries map[Resource]*entry

	// waiters holds one one-slot channel per blocked Acquire iteration;
	// a release broadcast signals and clears them all. Channel waiters
	// (rather than a sync.Cond) let a deterministic controller park on
	// the same primitive the free-running path blocks on.
	waiters []chan struct{}

	acquired int64 // grants in this shard; guarded by mu
	waits    int64 // blocked acquisitions in this shard; guarded by mu
}

// broadcastLocked wakes every waiter registered with the shard. Caller
// holds s.mu.
func (s *shard) broadcastLocked() {
	for _, ch := range s.waiters {
		signal(ch)
	}
	s.waiters = s.waiters[:0]
}

// DefaultShards is the lock-table shard count used by NewManager and
// NewManagerPolicy.
const DefaultShards = 16

// Manager is the sharded lock manager. All methods are safe for
// concurrent use.
//
// Lock ordering: a shard mutex may be held while taking the registry
// mutex, never the reverse, and shard mutexes are never nested.
type Manager struct {
	scheme Scheme
	policy DeadlockPolicy
	shards []*shard
	seed   maphash.Seed
	// ctl, when non-nil, is the deterministic scheduling controller:
	// Acquire yields to it on entry (every lock request is a scheduling
	// point) and parks through it instead of blocking natively.
	ctl sched.Controller
	// met, when non-nil, holds the cached obs metric handles; clock,
	// when non-nil, times lock waits (virtual time under sched).
	met   *metrics
	clock sched.Clock

	reg struct {
		sync.Mutex
		txns      map[TxnID]*txnState
		nextID    TxnID
		deadlocks int64
		aborts    int64
	}
}

// ShardStats counts one lock-table shard's events since creation.
type ShardStats struct {
	Acquired int64
	Waits    int64
}

// Stats counts lock-manager events since creation. Acquired and Waits
// aggregate the per-shard counters in Shards.
type Stats struct {
	Acquired  int64
	Waits     int64
	Deadlocks int64
	Aborts    int64
	Shards    []ShardStats
}

// NewManager returns a lock manager using the given scheme and the
// default deadlock policy (detection with youngest-victim abort).
func NewManager(s Scheme) *Manager {
	return NewManagerPolicy(s, DeadlockDetect)
}

// NewManagerPolicy returns a lock manager with an explicit deadlock
// policy and DefaultShards lock-table shards.
func NewManagerPolicy(s Scheme, p DeadlockPolicy) *Manager {
	return NewManagerShards(s, p, DefaultShards)
}

// NewManagerShards returns a lock manager with an explicit lock-table
// shard count (values below 1 mean DefaultShards).
func NewManagerShards(s Scheme, p DeadlockPolicy, shards int) *Manager {
	if shards < 1 {
		shards = DefaultShards
	}
	m := &Manager{scheme: s, policy: p, seed: maphash.MakeSeed()}
	m.shards = make([]*shard, shards)
	for i := range m.shards {
		m.shards[i] = &shard{entries: make(map[Resource]*entry)}
	}
	m.reg.txns = make(map[TxnID]*txnState)
	return m
}

// SetController installs a deterministic scheduling controller. Call
// it before any Acquire; a nil controller (the default) leaves the
// manager free-running.
func (m *Manager) SetController(c sched.Controller) { m.ctl = c }

// Scheme returns the manager's compatibility scheme.
func (m *Manager) Scheme() Scheme { return m.scheme }

// Policy returns the manager's deadlock policy.
func (m *Manager) Policy() DeadlockPolicy { return m.policy }

// NumShards returns the lock-table shard count.
func (m *Manager) NumShards() int { return len(m.shards) }

// shardFor maps a class to its lock-table shard.
func (m *Manager) shardFor(class string) *shard {
	return m.shards[maphash.String(m.seed, class)%uint64(len(m.shards))]
}

// txn looks up a transaction in the registry.
func (m *Manager) txn(id TxnID) *txnState {
	m.reg.Lock()
	defer m.reg.Unlock()
	return m.reg.txns[id]
}

// Begin registers a new transaction and returns its ID.
func (m *Manager) Begin() TxnID {
	m.reg.Lock()
	defer m.reg.Unlock()
	m.reg.nextID++
	id := m.reg.nextID
	m.reg.txns[id] = &txnState{id: id, held: make(map[Resource]Mode)}
	m.met.begin()
	return id
}

// Acquire blocks until the transaction holds the resource in (at
// least) the requested mode, or returns ErrDeadlock/ErrAborted. Lock
// upgrades (Rc→Ra, Rc→Wa, Ra→Wa) are supported.
func (m *Manager) Acquire(id TxnID, res Resource, mode Mode) error {
	tx := m.txn(id)
	if tx == nil {
		return fmt.Errorf("lock: unknown transaction %d", id)
	}
	if m.ctl != nil {
		// Every lock request is a scheduling point: under deterministic
		// exploration this is where interleavings branch.
		m.ctl.Yield("lock:" + res.String())
	}
	s := m.shardFor(res.Class)
	waited := false
	conflicted := false
	var waitStart time.Time
	// finishWait closes out the queue-time measurement started when the
	// request first blocked; called on every exit path.
	finishWait := func() {
		if waited && m.met != nil && m.clock != nil {
			m.met.waitNS.ObserveDuration(m.clock.Now().Sub(waitStart))
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		m.reg.Lock()
		tx.waitCh = nil
		if tx.aborted {
			tx.waitsOn = nil
			err := tx.abortErr
			m.reg.Unlock()
			finishWait()
			return err
		}
		if cur, held := tx.held[res]; held && cur >= mode {
			tx.waitsOn = nil
			m.reg.Unlock()
			finishWait()
			return nil
		}
		m.reg.Unlock()
		blockers := m.blockersLocked(s, id, res, mode)
		if len(blockers) == 0 {
			m.grantLocked(s, tx, res, mode)
			if waited {
				// Wake others: the wait graph changed.
				s.broadcastLocked()
			}
			finishWait()
			return nil
		}
		if !conflicted {
			// First time this request found itself blocked: record one
			// conflict per blocking (held, requested) mode pair — the
			// degree-of-conflict observable of Section 5.1.
			m.met.conflict(blockers, mode)
			conflicted = true
		}
		m.reg.Lock()
		tx.waitsOn = blockers
		abortSelf := m.resolveBlockedLocked(id, blockers)
		if abortSelf {
			tx.waitsOn = nil
			m.reg.Unlock()
			finishWait()
			return ErrDeadlock
		}
		if tx.aborted {
			// Aborted by the policy resolution itself or by a concurrent
			// commit; loop back to the top, which returns the abort error.
			m.reg.Unlock()
			continue
		}
		settling := m.anySettlingLocked(blockers)
		// Register the wakeup channel while still holding the registry
		// mutex: abortLocked signals tx.waitCh, and the aborted re-check
		// above ran in this same critical section, so an abort either
		// happened before (we saw it) or will signal the channel.
		ch := make(chan struct{}, 1)
		tx.waitCh = ch
		m.reg.Unlock()
		if !settling && !waited {
			// A blocker may be aborted (wounded by prevention, chosen by
			// detection) or already releasing; it holds its locks until
			// its owner finishes End, so wait for the release broadcast
			// like any other waiter — but skip the wait-counter so
			// retried checks are not double-counted.
			s.waits++
			waited = true
			m.met.wait()
			if m.clock != nil {
				waitStart = m.clock.Now()
			}
		}
		// Register with the shard before releasing its mutex: a release
		// broadcast after this point signals ch, and one before it was
		// observed by blockersLocked. No wakeup can be lost.
		s.waiters = append(s.waiters, ch)
		s.mu.Unlock()
		if m.ctl != nil {
			m.ctl.Park("lockwait:"+res.String(), ch)
		} else {
			<-ch
		}
		s.mu.Lock()
	}
}

// TryAcquire is a non-blocking Acquire: it reports whether the lock was
// granted immediately.
func (m *Manager) TryAcquire(id TxnID, res Resource, mode Mode) (bool, error) {
	tx := m.txn(id)
	if tx == nil {
		return false, fmt.Errorf("lock: unknown transaction %d", id)
	}
	s := m.shardFor(res.Class)
	s.mu.Lock()
	defer s.mu.Unlock()
	m.reg.Lock()
	if tx.aborted {
		err := tx.abortErr
		m.reg.Unlock()
		return false, err
	}
	if cur, held := tx.held[res]; held && cur >= mode {
		m.reg.Unlock()
		return true, nil
	}
	m.reg.Unlock()
	if len(m.blockersLocked(s, id, res, mode)) > 0 {
		return false, nil
	}
	m.grantLocked(s, tx, res, mode)
	return true, nil
}

// grantLocked records the lock; caller holds s.mu. A tuple-level grant
// also marks the transaction's intention mode on the class's relation
// entry, so relation-level requests and commit-time victim scans read
// one entry instead of walking the class's tuple entries.
func (m *Manager) grantLocked(s *shard, tx *txnState, res Resource, mode Mode) {
	e := s.entries[res]
	if e == nil {
		e = &entry{holders: make(map[TxnID]Mode)}
		s.entries[res] = e
	}
	if cur, ok := e.holders[tx.id]; !ok || mode > cur {
		e.holders[tx.id] = mode
	}
	if res.ID != RelationLevel {
		rel := s.entries[Relation(res.Class)]
		if rel == nil {
			rel = &entry{holders: make(map[TxnID]Mode)}
			s.entries[Relation(res.Class)] = rel
		}
		if rel.intents == nil {
			rel.intents = make(map[TxnID]uint8)
		}
		rel.intents[tx.id] |= intentBit(mode)
	}
	m.reg.Lock()
	if cur, ok := tx.held[res]; !ok || mode > cur {
		tx.held[res] = mode
	}
	tx.waitsOn = nil
	m.reg.Unlock()
	s.acquired++
	m.met.grant(mode)
}

// blockersLocked returns the transactions whose held locks are
// incompatible with the request, mapped to the strongest such held
// mode (for the conflict-by-mode-pair metric), considering the
// tuple/relation hierarchy. A tuple-level request checks its own entry
// plus the relation entry's full-mode holders; a relation-level
// request checks the relation entry's full-mode holders plus its
// intention marks, each judged by the underlying tuple mode. Caller
// holds s.mu; the class's tuple- and relation-level entries all live
// in s.
func (m *Manager) blockersLocked(s *shard, id TxnID, res Resource, mode Mode) map[TxnID]Mode {
	blockers := make(map[TxnID]Mode)
	note := func(hid TxnID, held Mode) {
		if hid == id {
			return
		}
		if !Compatible(m.scheme, held, mode) {
			if cur, ok := blockers[hid]; !ok || held > cur {
				blockers[hid] = held
			}
		}
	}
	collect := func(e *entry) {
		if e == nil {
			return
		}
		for hid, held := range e.holders {
			note(hid, held)
		}
	}
	if res.ID == RelationLevel {
		rel := s.entries[res]
		collect(rel)
		if rel != nil {
			for hid, bits := range rel.intents {
				for tm := Rc; tm <= Wa; tm++ {
					if bits&intentBit(tm) != 0 {
						note(hid, tm)
					}
				}
			}
		}
	} else {
		collect(s.entries[res])
		collect(s.entries[Relation(res.Class)])
	}
	if len(blockers) == 0 {
		return nil
	}
	return blockers
}

// anySettlingLocked reports whether any of the transactions is aborted
// or ending — i.e. its locks are about to be released. Caller holds
// the registry mutex.
func (m *Manager) anySettlingLocked(ids map[TxnID]Mode) bool {
	for id := range ids {
		tx := m.reg.txns[id]
		if tx == nil || tx.aborted || tx.ending {
			return true
		}
	}
	return false
}

// findDeadlockVictimLocked looks for a waits-for cycle through id and
// returns the youngest transaction in the cycle, or 0 if none. Caller
// holds the registry mutex.
func (m *Manager) findDeadlockVictimLocked(id TxnID) TxnID {
	// DFS from id following waitsOn edges; a path back to id is a cycle.
	var path []TxnID
	onPath := make(map[TxnID]bool)
	visited := make(map[TxnID]bool)
	var cycle []TxnID
	var dfs func(cur TxnID) bool
	dfs = func(cur TxnID) bool {
		if onPath[cur] {
			// Extract the cycle suffix.
			for i := len(path) - 1; i >= 0; i-- {
				cycle = append(cycle, path[i])
				if path[i] == cur {
					break
				}
			}
			return true
		}
		if visited[cur] {
			return false
		}
		visited[cur] = true
		tx := m.reg.txns[cur]
		if tx == nil || tx.aborted {
			return false
		}
		onPath[cur] = true
		path = append(path, cur)
		// Sorted edge order keeps victim selection deterministic when a
		// node waits on several transactions (map iteration order would
		// otherwise leak into which cycle is found first).
		next := make([]TxnID, 0, len(tx.waitsOn))
		for n := range tx.waitsOn {
			next = append(next, n)
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, n := range next {
			if dfs(n) {
				return true
			}
		}
		path = path[:len(path)-1]
		onPath[cur] = false
		return false
	}
	if !dfs(id) {
		return 0
	}
	victim := cycle[0]
	for _, t := range cycle[1:] {
		if t > victim {
			victim = t
		}
	}
	return victim
}

// abortLocked marks a transaction aborted and signals its pending
// Acquire, if any, through the per-transaction wait channel — a
// targeted wakeup needing no shard mutex (replacing the old
// broadcast-every-shard-from-a-goroutine scheme, which was both a
// thundering herd and a source of scheduling nondeterminism). The
// transaction's locks remain held until End is called (the owner must
// roll back first). Caller holds the registry mutex.
func (m *Manager) abortLocked(id TxnID, err error) {
	tx := m.reg.txns[id]
	if tx == nil || tx.aborted {
		return
	}
	tx.aborted = true
	tx.abortErr = err
	tx.waitsOn = nil
	m.reg.aborts++
	m.met.txnAbort()
	if tx.waitCh != nil {
		signal(tx.waitCh)
	}
}

// Abort marks the transaction aborted: a pending or future Acquire by
// it returns ErrAborted. Its locks stay held until End.
func (m *Manager) Abort(id TxnID) {
	m.reg.Lock()
	defer m.reg.Unlock()
	m.abortLocked(id, ErrAborted)
}

// Aborted reports whether the transaction has been marked aborted.
func (m *Manager) Aborted(id TxnID) bool {
	m.reg.Lock()
	defer m.reg.Unlock()
	tx := m.reg.txns[id]
	return tx != nil && tx.aborted
}

// RcVictims returns the transactions holding Rc locks that conflict
// with the given transaction's Wa locks — the productions that must be
// forced to abort when this transaction commits first (Section 4.3,
// rule (ii)). It is only meaningful under SchemeRcRaWa; under 2PL the
// conflict cannot arise and the result is always empty.
//
// The scan is atomic per class: while the transaction holds Wa on a
// resource, no new Rc can be granted on it (Table 4.1), so scanning
// each class's shard under its own mutex loses no victim.
func (m *Manager) RcVictims(id TxnID) []TxnID {
	m.reg.Lock()
	tx := m.reg.txns[id]
	if tx == nil {
		m.reg.Unlock()
		return nil
	}
	waRes := make([]Resource, 0, len(tx.held))
	for res, mode := range tx.held {
		if mode == Wa {
			waRes = append(waRes, res)
		}
	}
	m.reg.Unlock()

	victims := make(map[TxnID]bool)
	scan := func(e *entry) {
		if e == nil {
			return
		}
		for hid, held := range e.holders {
			if hid != id && held == Rc {
				victims[hid] = true
			}
		}
	}
	byShard := make(map[*shard][]Resource)
	for _, res := range waRes {
		s := m.shardFor(res.Class)
		byShard[s] = append(byShard[s], res)
	}
	for s, rs := range byShard {
		s.mu.Lock()
		for _, res := range rs {
			scan(s.entries[res])
			if res.ID == RelationLevel {
				// A class-level Wa also victimises tuple-level Rc holders
				// inside the class: their intention marks carry the Rc bit.
				if rel := s.entries[res]; rel != nil {
					for hid, bits := range rel.intents {
						if hid != id && bits&intentBit(Rc) != 0 {
							victims[hid] = true
						}
					}
				}
			} else {
				scan(s.entries[Relation(res.Class)])
			}
		}
		s.mu.Unlock()
	}
	out := make([]TxnID, 0, len(victims))
	for v := range victims {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	for range out {
		// Each victim is one Rc–Wa conflict resolved at commit time
		// (rule (ii)); count it into the same series a blocking scheme
		// feeds, so "degree of conflict" is comparable across schemes.
		m.met.rcVictim()
	}
	return out
}

// End releases all of the transaction's locks and forgets it. It is
// called at commit and after abort rollback.
func (m *Manager) End(id TxnID) {
	m.reg.Lock()
	tx := m.reg.txns[id]
	if tx == nil {
		m.reg.Unlock()
		return
	}
	tx.ending = true
	byShard := make(map[*shard][]Resource)
	for res := range tx.held {
		s := m.shardFor(res.Class)
		byShard[s] = append(byShard[s], res)
	}
	m.reg.Unlock()

	for s, rs := range byShard {
		s.mu.Lock()
		for _, res := range rs {
			if e := s.entries[res]; e != nil {
				delete(e.holders, id)
				if !e.live() {
					delete(s.entries, res)
				}
			}
			if res.ID != RelationLevel {
				// Drop the intention mark; the whole class's tuple locks are
				// released together here, so one delete per class would do,
				// but per-resource keeps this loop shape simple.
				relRes := Relation(res.Class)
				if rel := s.entries[relRes]; rel != nil {
					delete(rel.intents, id)
					if !rel.live() {
						delete(s.entries, relRes)
					}
				}
			}
		}
		s.broadcastLocked()
		s.mu.Unlock()
	}

	m.reg.Lock()
	delete(m.reg.txns, id)
	m.reg.Unlock()
}

// Held returns the modes the transaction currently holds, for tests
// and diagnostics.
func (m *Manager) Held(id TxnID) map[Resource]Mode {
	m.reg.Lock()
	defer m.reg.Unlock()
	tx := m.reg.txns[id]
	if tx == nil {
		return nil
	}
	out := make(map[Resource]Mode, len(tx.held))
	for r, md := range tx.held {
		out[r] = md
	}
	return out
}

// Stats returns a snapshot of the manager's counters, including the
// per-shard acquire/wait counts.
func (m *Manager) Stats() Stats {
	st := Stats{Shards: make([]ShardStats, len(m.shards))}
	for i, s := range m.shards {
		s.mu.Lock()
		st.Shards[i] = ShardStats{Acquired: s.acquired, Waits: s.waits}
		s.mu.Unlock()
		st.Acquired += st.Shards[i].Acquired
		st.Waits += st.Shards[i].Waits
	}
	m.reg.Lock()
	st.Deadlocks = m.reg.deadlocks
	st.Aborts = m.reg.aborts
	m.reg.Unlock()
	return st
}
