// Package lock implements the concurrency-control substrate of the
// paper's dynamic approach (Section 4): a lock manager supporting both
// conventional two-phase locking and the paper's improved three-mode
// scheme with Rc (condition-read), Ra (action-read) and Wa
// (action-write) locks per Table 4.1. Under the improved scheme a Wa
// lock is granted even while other productions hold Rc locks on the
// same data — the Rc–Wa conflict is allowed to exist — and safety is
// restored at commit time by aborting the Rc holders that lost the
// race (Section 4.3, rules (i) and (ii)).
package lock

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Mode is a lock mode. Modes are ordered by strength: Rc < Ra < Wa.
type Mode uint8

// The three lock modes of Section 4.3.
const (
	// Rc is the read lock acquired for condition (LHS) evaluation.
	Rc Mode = iota
	// Ra is the read lock acquired at the start of action execution.
	Ra
	// Wa is the write lock acquired at the start of action execution.
	Wa
)

// String returns the paper's name for the mode.
func (m Mode) String() string {
	switch m {
	case Rc:
		return "Rc"
	case Ra:
		return "Ra"
	case Wa:
		return "Wa"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Scheme selects the compatibility matrix.
type Scheme uint8

const (
	// Scheme2PL is conventional two-phase locking: condition reads are
	// ordinary shared locks held to commit, so Rc behaves as Ra
	// (Section 4.2, Theorem 2).
	Scheme2PL Scheme = iota
	// SchemeRcRaWa is the improved scheme of Section 4.3 (Table 4.1).
	SchemeRcRaWa
)

// String names the scheme.
func (s Scheme) String() string {
	if s == Scheme2PL {
		return "2pl"
	}
	return "rcrawa"
}

// Compatible reports whether a lock request of mode req can be granted
// while another transaction holds mode held on the same data, per the
// scheme's compatibility matrix. For SchemeRcRaWa this is Table 4.1;
// note the deliberate asymmetry: held Rc admits a Wa request, but held
// Wa rejects an Rc request.
func Compatible(s Scheme, held, req Mode) bool {
	if s == Scheme2PL {
		if held == Rc {
			held = Ra
		}
		if req == Rc {
			req = Ra
		}
	}
	switch held {
	case Rc:
		return true
	case Ra:
		return req != Wa
	case Wa:
		return false
	}
	return false
}

// Resource identifies a lockable datum: a tuple (Class, ID) or a whole
// relation (ID == RelationLevel). Relation-level locks conflict with
// every tuple lock of the class and vice versa — the escalation the
// paper prescribes for negated (existence-dependent) conditions.
type Resource struct {
	Class string
	ID    int64
}

// RelationLevel is the ID denoting a whole-relation resource.
const RelationLevel int64 = 0

// Relation returns the relation-level resource of a class.
func Relation(class string) Resource { return Resource{Class: class, ID: RelationLevel} }

// String renders the resource as class[id] or class[*].
func (r Resource) String() string {
	if r.ID == RelationLevel {
		return r.Class + "[*]"
	}
	return fmt.Sprintf("%s[%d]", r.Class, r.ID)
}

// TxnID identifies one production-firing transaction. IDs are assigned
// monotonically; deadlock resolution aborts the youngest (largest ID)
// transaction in a cycle.
type TxnID int64

// Errors returned by Acquire.
var (
	// ErrDeadlock reports that the transaction was chosen as the
	// deadlock victim and must abort.
	ErrDeadlock = errors.New("lock: deadlock victim")
	// ErrAborted reports that the transaction was aborted by another
	// transaction's commit (an Rc–Wa conflict resolution) or by the
	// engine while it was waiting.
	ErrAborted = errors.New("lock: transaction aborted")
)

type txnState struct {
	id       TxnID
	held     map[Resource]Mode
	aborted  bool
	abortErr error
	// waitsOn is the set of transactions currently blocking this one;
	// rebuilt on every blocked-acquire iteration.
	waitsOn map[TxnID]bool
}

type entry struct {
	holders map[TxnID]Mode
}

// Manager is the centralized lock manager. All methods are safe for
// concurrent use.
type Manager struct {
	mu      sync.Mutex
	cond    *sync.Cond
	scheme  Scheme
	policy  DeadlockPolicy
	entries map[Resource]*entry
	byClass map[string]map[int64]*entry // tuple-level entries per class
	txns    map[TxnID]*txnState
	nextID  TxnID

	stats Stats
}

// Stats counts lock-manager events since creation.
type Stats struct {
	Acquired  int64
	Waits     int64
	Deadlocks int64
	Aborts    int64
}

// NewManager returns a lock manager using the given scheme and the
// default deadlock policy (detection with youngest-victim abort).
func NewManager(s Scheme) *Manager {
	return NewManagerPolicy(s, DeadlockDetect)
}

// NewManagerPolicy returns a lock manager with an explicit deadlock
// policy.
func NewManagerPolicy(s Scheme, p DeadlockPolicy) *Manager {
	m := &Manager{
		scheme:  s,
		policy:  p,
		entries: make(map[Resource]*entry),
		byClass: make(map[string]map[int64]*entry),
		txns:    make(map[TxnID]*txnState),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Scheme returns the manager's compatibility scheme.
func (m *Manager) Scheme() Scheme { return m.scheme }

// Policy returns the manager's deadlock policy.
func (m *Manager) Policy() DeadlockPolicy { return m.policy }

// Begin registers a new transaction and returns its ID.
func (m *Manager) Begin() TxnID {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	id := m.nextID
	m.txns[id] = &txnState{id: id, held: make(map[Resource]Mode)}
	return id
}

// Acquire blocks until the transaction holds the resource in (at
// least) the requested mode, or returns ErrDeadlock/ErrAborted. Lock
// upgrades (Rc→Ra, Rc→Wa, Ra→Wa) are supported.
func (m *Manager) Acquire(id TxnID, res Resource, mode Mode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	tx, ok := m.txns[id]
	if !ok {
		return fmt.Errorf("lock: unknown transaction %d", id)
	}
	waited := false
	for {
		if tx.aborted {
			tx.waitsOn = nil
			return tx.abortErr
		}
		if cur, held := tx.held[res]; held && cur >= mode {
			tx.waitsOn = nil
			return nil
		}
		blockers := m.blockersLocked(id, res, mode)
		if len(blockers) == 0 {
			m.grantLocked(tx, res, mode)
			tx.waitsOn = nil
			if waited {
				// Wake others: the wait graph changed.
				m.cond.Broadcast()
			}
			return nil
		}
		tx.waitsOn = blockers
		if m.resolveBlockedLocked(id, blockers) {
			tx.waitsOn = nil
			return ErrDeadlock
		}
		if m.anyAbortedLocked(blockers) {
			// Prevention may have wounded a blocker, and detection may
			// have aborted one. The blocker still holds its locks until
			// its owner rolls back and calls End, so wait for the
			// release broadcast like any other waiter — but skip the
			// wait-counter so retried checks are not double-counted.
			m.cond.Wait()
			continue
		}
		if !waited {
			m.stats.Waits++
			waited = true
		}
		m.cond.Wait()
	}
}

// TryAcquire is a non-blocking Acquire: it reports whether the lock was
// granted immediately.
func (m *Manager) TryAcquire(id TxnID, res Resource, mode Mode) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tx, ok := m.txns[id]
	if !ok {
		return false, fmt.Errorf("lock: unknown transaction %d", id)
	}
	if tx.aborted {
		return false, tx.abortErr
	}
	if cur, held := tx.held[res]; held && cur >= mode {
		return true, nil
	}
	if len(m.blockersLocked(id, res, mode)) > 0 {
		return false, nil
	}
	m.grantLocked(tx, res, mode)
	return true, nil
}

// grantLocked records the lock; caller holds m.mu.
func (m *Manager) grantLocked(tx *txnState, res Resource, mode Mode) {
	e := m.entries[res]
	if e == nil {
		e = &entry{holders: make(map[TxnID]Mode)}
		m.entries[res] = e
		if res.ID != RelationLevel {
			cls := m.byClass[res.Class]
			if cls == nil {
				cls = make(map[int64]*entry)
				m.byClass[res.Class] = cls
			}
			cls[res.ID] = e
		}
	}
	if cur, ok := e.holders[tx.id]; !ok || mode > cur {
		e.holders[tx.id] = mode
	}
	if cur, ok := tx.held[res]; !ok || mode > cur {
		tx.held[res] = mode
	}
	m.stats.Acquired++
}

// blockersLocked returns the set of transactions whose held locks are
// incompatible with the request, considering the tuple/relation
// hierarchy. Caller holds m.mu.
func (m *Manager) blockersLocked(id TxnID, res Resource, mode Mode) map[TxnID]bool {
	blockers := make(map[TxnID]bool)
	collect := func(e *entry) {
		if e == nil {
			return
		}
		for hid, held := range e.holders {
			if hid == id {
				continue
			}
			if !Compatible(m.scheme, held, mode) {
				blockers[hid] = true
			}
		}
	}
	collect(m.entries[res])
	if res.ID == RelationLevel {
		for _, e := range m.byClass[res.Class] {
			collect(e)
		}
	} else {
		collect(m.entries[Relation(res.Class)])
	}
	if len(blockers) == 0 {
		return nil
	}
	return blockers
}

// anyAbortedLocked reports whether any of the transactions is marked
// aborted. Caller holds m.mu.
func (m *Manager) anyAbortedLocked(ids map[TxnID]bool) bool {
	for id := range ids {
		if tx := m.txns[id]; tx != nil && tx.aborted {
			return true
		}
	}
	return false
}

// findDeadlockVictimLocked looks for a waits-for cycle through id and
// returns the youngest transaction in the cycle, or 0 if none. Caller
// holds m.mu.
func (m *Manager) findDeadlockVictimLocked(id TxnID) TxnID {
	// DFS from id following waitsOn edges; a path back to id is a cycle.
	var path []TxnID
	onPath := make(map[TxnID]bool)
	visited := make(map[TxnID]bool)
	var cycle []TxnID
	var dfs func(cur TxnID) bool
	dfs = func(cur TxnID) bool {
		if onPath[cur] {
			// Extract the cycle suffix.
			for i := len(path) - 1; i >= 0; i-- {
				cycle = append(cycle, path[i])
				if path[i] == cur {
					break
				}
			}
			return true
		}
		if visited[cur] {
			return false
		}
		visited[cur] = true
		tx := m.txns[cur]
		if tx == nil || tx.aborted {
			return false
		}
		onPath[cur] = true
		path = append(path, cur)
		for next := range tx.waitsOn {
			if dfs(next) {
				return true
			}
		}
		path = path[:len(path)-1]
		onPath[cur] = false
		return false
	}
	if !dfs(id) {
		return 0
	}
	victim := cycle[0]
	for _, t := range cycle[1:] {
		if t > victim {
			victim = t
		}
	}
	return victim
}

// abortLocked marks a transaction aborted and wakes waiters. The
// transaction's locks remain held until End is called (the owner must
// roll back first). Caller holds m.mu.
func (m *Manager) abortLocked(id TxnID, err error) {
	tx := m.txns[id]
	if tx == nil || tx.aborted {
		return
	}
	tx.aborted = true
	tx.abortErr = err
	tx.waitsOn = nil
	m.stats.Aborts++
	m.cond.Broadcast()
}

// Abort marks the transaction aborted: a pending or future Acquire by
// it returns ErrAborted. Its locks stay held until End.
func (m *Manager) Abort(id TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.abortLocked(id, ErrAborted)
}

// Aborted reports whether the transaction has been marked aborted.
func (m *Manager) Aborted(id TxnID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	tx := m.txns[id]
	return tx != nil && tx.aborted
}

// RcVictims returns the transactions holding Rc locks that conflict
// with the given transaction's Wa locks — the productions that must be
// forced to abort when this transaction commits first (Section 4.3,
// rule (ii)). It is only meaningful under SchemeRcRaWa; under 2PL the
// conflict cannot arise and the result is always empty.
func (m *Manager) RcVictims(id TxnID) []TxnID {
	m.mu.Lock()
	defer m.mu.Unlock()
	tx := m.txns[id]
	if tx == nil {
		return nil
	}
	victims := make(map[TxnID]bool)
	scan := func(e *entry) {
		if e == nil {
			return
		}
		for hid, held := range e.holders {
			if hid != id && held == Rc {
				victims[hid] = true
			}
		}
	}
	for res, mode := range tx.held {
		if mode != Wa {
			continue
		}
		scan(m.entries[res])
		if res.ID == RelationLevel {
			for _, e := range m.byClass[res.Class] {
				scan(e)
			}
		} else {
			scan(m.entries[Relation(res.Class)])
		}
	}
	out := make([]TxnID, 0, len(victims))
	for v := range victims {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// End releases all of the transaction's locks and forgets it. It is
// called at commit and after abort rollback.
func (m *Manager) End(id TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tx := m.txns[id]
	if tx == nil {
		return
	}
	for res := range tx.held {
		e := m.entries[res]
		if e == nil {
			continue
		}
		delete(e.holders, id)
		if len(e.holders) == 0 {
			delete(m.entries, res)
			if res.ID != RelationLevel {
				if cls := m.byClass[res.Class]; cls != nil {
					delete(cls, res.ID)
					if len(cls) == 0 {
						delete(m.byClass, res.Class)
					}
				}
			}
		}
	}
	delete(m.txns, id)
	m.cond.Broadcast()
}

// Held returns the modes the transaction currently holds, for tests
// and diagnostics.
func (m *Manager) Held(id TxnID) map[Resource]Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	tx := m.txns[id]
	if tx == nil {
		return nil
	}
	out := make(map[Resource]Mode, len(tx.held))
	for r, md := range tx.held {
		out[r] = md
	}
	return out
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
