package lock

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// TestStressInvariants hammers the manager from many goroutines and
// checks the mode-coexistence invariants after every grant:
//
//   - at most one Wa holder per resource (both schemes);
//   - no Ra holder while another holds Wa (both schemes);
//   - under 2PL additionally no Rc holder while another holds Wa;
//   - under Rc/Ra/Wa, Rc–Wa coexistence IS allowed (the paper's
//     liberality) but Rc holders must then appear in RcVictims.
func TestStressInvariants(t *testing.T) {
	for _, scheme := range []Scheme{Scheme2PL, SchemeRcRaWa} {
		for _, policy := range []DeadlockPolicy{DeadlockDetect, DeadlockWoundWait, DeadlockWaitDie} {
			t.Run(scheme.String()+"/"+policy.String(), func(t *testing.T) {
				m := NewManagerPolicy(scheme, policy)
				resources := []Resource{
					{Class: "a", ID: 1}, {Class: "a", ID: 2},
					{Class: "b", ID: 1}, Relation("a"),
				}
				var mu sync.Mutex // guards holders mirror
				holders := make(map[Resource]map[TxnID]Mode)

				checkInvariants := func() {
					for res, hs := range holders {
						var waCount int
						for _, md := range hs {
							if md == Wa {
								waCount++
							}
						}
						if waCount > 1 {
							t.Errorf("%v: two Wa holders", res)
						}
						if waCount == 1 {
							for id, md := range hs {
								if md == Ra {
									t.Errorf("%v: Ra held by %d alongside Wa", res, id)
								}
								if md == Rc && scheme == Scheme2PL {
									t.Errorf("%v: Rc held by %d alongside Wa under 2PL", res, id)
								}
							}
						}
					}
				}

				var wg sync.WaitGroup
				for w := 0; w < 6; w++ {
					wg.Add(1)
					go func(seed int64) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(seed))
						for i := 0; i < 150; i++ {
							txn := m.Begin()
							granted := make(map[Resource]Mode)
							n := 1 + rng.Intn(3)
							ok := true
							for j := 0; j < n && ok; j++ {
								res := resources[rng.Intn(len(resources))]
								mode := Mode(rng.Intn(3))
								err := m.Acquire(txn, res, mode)
								switch {
								case err == nil:
									if cur, has := granted[res]; !has || mode > cur {
										granted[res] = mode
									}
									mu.Lock()
									if holders[res] == nil {
										holders[res] = make(map[TxnID]Mode)
									}
									if cur, has := holders[res][txn]; !has || mode > cur {
										holders[res][txn] = mode
									}
									checkInvariants()
									mu.Unlock()
								case errors.Is(err, ErrDeadlock) || errors.Is(err, ErrAborted):
									ok = false
								default:
									t.Errorf("unexpected acquire error: %v", err)
									ok = false
								}
							}
							if ok && m.Scheme() == SchemeRcRaWa {
								// Every Rc holder overlapping one of our Wa
								// resources must be listed as a victim.
								victims := make(map[TxnID]bool)
								for _, v := range m.RcVictims(txn) {
									victims[v] = true
								}
								mu.Lock()
								for res, md := range granted {
									if md != Wa {
										continue
									}
									for hid, hmd := range holders[res] {
										if hid != txn && hmd == Rc && !victims[hid] {
											t.Errorf("Rc holder %d of %v missing from victims", hid, res)
										}
									}
								}
								mu.Unlock()
							}
							mu.Lock()
							for res := range holders {
								delete(holders[res], txn)
							}
							mu.Unlock()
							m.End(txn)
						}
					}(int64(w))
				}
				wg.Wait()
			})
		}
	}
}
