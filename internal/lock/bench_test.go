package lock

import (
	"sync"
	"testing"
)

func BenchmarkAcquireReleaseUncontended(b *testing.B) {
	m := NewManager(SchemeRcRaWa)
	res := Resource{Class: "q", ID: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := m.Begin()
		if err := m.Acquire(t, res, Rc); err != nil {
			b.Fatal(err)
		}
		if err := m.Acquire(t, res, Wa); err != nil {
			b.Fatal(err)
		}
		m.End(t)
	}
}

func BenchmarkSharedReaders(b *testing.B) {
	m := NewManager(SchemeRcRaWa)
	res := Resource{Class: "q", ID: 1}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			t := m.Begin()
			if err := m.Acquire(t, res, Rc); err != nil {
				b.Fatal(err)
			}
			m.End(t)
		}
	})
}

func BenchmarkRcVictims(b *testing.B) {
	m := NewManager(SchemeRcRaWa)
	res := Resource{Class: "q", ID: 1}
	var readers []TxnID
	for i := 0; i < 16; i++ {
		t := m.Begin()
		if err := m.Acquire(t, res, Rc); err != nil {
			b.Fatal(err)
		}
		readers = append(readers, t)
	}
	w := m.Begin()
	if err := m.Acquire(w, res, Wa); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := m.RcVictims(w); len(got) != 16 {
			b.Fatalf("victims = %d", len(got))
		}
	}
	b.StopTimer()
	m.End(w)
	for _, r := range readers {
		m.End(r)
	}
}

// BenchmarkHandoverContended measures lock transfer between goroutines
// on one hot resource.
func BenchmarkHandoverContended(b *testing.B) {
	m := NewManager(SchemeRcRaWa)
	res := Resource{Class: "q", ID: 1}
	const workers = 4
	var wg sync.WaitGroup
	per := b.N/workers + 1
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				t := m.Begin()
				if err := m.Acquire(t, res, Wa); err != nil {
					b.Error(err)
					m.End(t)
					return
				}
				m.End(t)
			}
		}()
	}
	wg.Wait()
}
