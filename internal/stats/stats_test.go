package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d", c.Value())
	}
	c.Add(-8000)
	if c.Value() != 0 {
		t.Fatalf("Value = %d after Add(-8000)", c.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero histogram not zero")
	}
	samples := []time.Duration{
		10 * time.Microsecond,
		20 * time.Microsecond,
		100 * time.Microsecond,
		time.Millisecond,
	}
	for _, d := range samples {
		h.Observe(d)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 10*time.Microsecond || h.Max() != time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	wantMean := (10 + 20 + 100 + 1000) * time.Microsecond / 4
	if h.Mean() != wantMean {
		t.Fatalf("Mean = %v, want %v", h.Mean(), wantMean)
	}
	// The median upper bound must cover the second sample but be well
	// under the max.
	med := h.Quantile(0.5)
	if med < 20*time.Microsecond || med > 100*time.Microsecond {
		t.Fatalf("median bound = %v", med)
	}
	if h.Quantile(1.0) != time.Millisecond {
		t.Fatalf("p100 = %v", h.Quantile(1.0))
	}
	if h.Quantile(2.0) != time.Millisecond || h.Quantile(-1) != 0 {
		t.Fatal("quantile clamping wrong")
	}
}

func TestHistogramNegativeAndHuge(t *testing.T) {
	var h Histogram
	h.Observe(-5 * time.Second) // clamped to 0
	h.Observe(300 * time.Hour)  // lands in the last bucket
	if h.Count() != 2 {
		t.Fatal("samples lost")
	}
	if h.Min() != 0 {
		t.Fatalf("min = %v", h.Min())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHistogramRendering(t *testing.T) {
	var h Histogram
	if !strings.Contains(h.Bars(20), "no samples") {
		t.Fatal("empty Bars wrong")
	}
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(50+i) * time.Microsecond)
	}
	bars := h.Bars(30)
	if !strings.Contains(bars, "#") {
		t.Fatalf("Bars missing bars:\n%s", bars)
	}
	s := h.String()
	if !strings.Contains(s, "n=100") || !strings.Contains(s, "p99") {
		t.Fatalf("String = %q", s)
	}
}
