// Package stats provides small, concurrency-safe measurement
// primitives — counters and power-of-two latency histograms — used by
// the engines and the psbench harness to characterise firing latency
// and lock behaviour without external dependencies.
package stats

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is an atomic event counter.
type Counter struct{ n int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { atomic.AddInt64(&c.n, d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.n) }

// Gauge is an atomic level indicator that also remembers its peak.
// The dynamic engine uses gauges to expose the depths of its commit
// pipeline's queues.
type Gauge struct {
	cur int64
	max int64
}

// Set records the current level and raises the peak if exceeded.
func (g *Gauge) Set(v int64) {
	atomic.StoreInt64(&g.cur, v)
	g.raise(v)
}

// Add moves the level by d and returns the new value.
func (g *Gauge) Add(d int64) int64 {
	v := atomic.AddInt64(&g.cur, d)
	g.raise(v)
	return v
}

func (g *Gauge) raise(v int64) {
	for {
		m := atomic.LoadInt64(&g.max)
		if v <= m || atomic.CompareAndSwapInt64(&g.max, m, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return atomic.LoadInt64(&g.cur) }

// Peak returns the highest level ever set.
func (g *Gauge) Peak() int64 { return atomic.LoadInt64(&g.max) }

// Histogram is a power-of-two bucketed duration histogram: bucket i
// holds samples in [2^i, 2^(i+1)) microseconds. The zero value is
// ready to use.
type Histogram struct {
	mu      sync.Mutex
	buckets [40]int64
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	idx := 0
	if us > 0 {
		idx = int(math.Log2(float64(us)))
	}
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.mu.Lock()
	h.buckets[idx]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average sample.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest sample.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1)
// from the bucket boundaries.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.count)))
	var seen int64
	for i, b := range h.buckets {
		seen += b
		if seen >= target {
			upper := time.Duration(1<<uint(i+1)) * time.Microsecond
			if upper > h.max && h.max > 0 {
				return h.max
			}
			return upper
		}
	}
	return h.max
}

// String renders a compact summary.
func (h *Histogram) String() string {
	h.mu.Lock()
	count, mean, min, max := h.count, time.Duration(0), h.min, h.max
	if count > 0 {
		mean = h.sum / time.Duration(count)
	}
	h.mu.Unlock()
	return fmt.Sprintf("n=%d min=%v mean=%v max=%v p99<=%v",
		count, min, mean, max, h.Quantile(0.99))
}

// Bars renders an ASCII bucket chart (for psbench/psshell output).
func (h *Histogram) Bars(width int) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var peak int64
	lo, hi := -1, -1
	for i, b := range h.buckets {
		if b > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
			if b > peak {
				peak = b
			}
		}
	}
	if lo < 0 {
		return "(no samples)\n"
	}
	var sb strings.Builder
	for i := lo; i <= hi; i++ {
		n := int(h.buckets[i] * int64(width) / peak)
		fmt.Fprintf(&sb, "%10v |%-*s| %d\n",
			time.Duration(1<<uint(i))*time.Microsecond, width, strings.Repeat("#", n), h.buckets[i])
	}
	return sb.String()
}
