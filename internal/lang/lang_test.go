package lang

import (
	"strings"
	"testing"

	"pdps/internal/engine"
	"pdps/internal/match"
	"pdps/internal/wm"
)

const sample = `
; parts ready on a free machine get processed
(p process :priority 2
  (part ^id <x> ^status ready ^weight >= 2.5)
  (machine ^accepts <x> ^free true)
  -(hold ^part <x>)
  -->
  (modify 1 ^status done ^count (+ <x> 1))
  (make log ^part <x> ^note "processed\n"))

(p cleanup
  (log ^part <p>)
  -->
  (remove 1)
  (halt))

(wme part ^id 1 ^status ready ^weight 3.5)
(wme machine ^accepts 1 ^free true)
`

func TestParseSample(t *testing.T) {
	prog, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 || len(prog.WMEs) != 2 {
		t.Fatalf("rules=%d wmes=%d, want 2/2", len(prog.Rules), len(prog.WMEs))
	}
	r := prog.Rules[0]
	if r.Name != "process" || r.Priority != 2 {
		t.Fatalf("rule header wrong: %+v", r)
	}
	if len(r.Conditions) != 3 || !r.Conditions[2].Negated {
		t.Fatalf("conditions wrong: %v", r.Conditions)
	}
	w := r.Conditions[0]
	if len(w.Tests) != 3 {
		t.Fatalf("part tests = %v", w.Tests)
	}
	if w.Tests[0].Var != "x" || w.Tests[0].Op != match.OpEq {
		t.Errorf("id test wrong: %+v", w.Tests[0])
	}
	if !w.Tests[1].Const.Equal(wm.Sym("ready")) {
		t.Errorf("status test wrong: %+v", w.Tests[1])
	}
	if w.Tests[2].Op != match.OpGe || !w.Tests[2].Const.Equal(wm.Float(2.5)) {
		t.Errorf("weight test wrong: %+v", w.Tests[2])
	}
	if len(r.Actions) != 2 || r.Actions[0].Kind != match.ActModify || r.Actions[0].CE != 0 {
		t.Fatalf("actions wrong: %v", r.Actions)
	}
	if _, isBin := r.Actions[0].Assigns[1].Expr.(match.BinExpr); !isBin {
		t.Errorf("count expr should be arithmetic: %v", r.Actions[0].Assigns[1].Expr)
	}
	mk := r.Actions[1]
	if mk.Kind != match.ActMake || mk.Class != "log" {
		t.Errorf("make wrong: %+v", mk)
	}
	if !mk.Assigns[1].Expr.(match.ConstExpr).Val.Equal(wm.Str("processed\n")) {
		t.Errorf("string escape lost: %v", mk.Assigns[1].Expr)
	}
	if prog.Rules[1].Actions[1].Kind != match.ActHalt {
		t.Errorf("halt missing")
	}
	if !prog.WMEs[0].Attrs["weight"].Equal(wm.Float(3.5)) {
		t.Errorf("wme attrs wrong: %v", prog.WMEs[0])
	}
}

func TestParsedProgramRuns(t *testing.T) {
	prog := MustParse(sample)
	e, err := engine.NewSingle(prog, engine.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// process fires, then cleanup fires and halts.
	if res.Firings != 2 || !res.Halted {
		t.Fatalf("firings=%d halted=%v, want 2/true", res.Firings, res.Halted)
	}
	part := e.Store().ByClass("part")
	if len(part) != 1 || !part[0].Attr("status").Equal(wm.Sym("done")) {
		t.Fatalf("part not processed: %v", part)
	}
	if !part[0].Attr("count").Equal(wm.Int(2)) {
		t.Fatalf("count = %v, want 2", part[0].Attr("count"))
	}
}

func TestRoundTrip(t *testing.T) {
	prog := MustParse(sample)
	text := Format(prog)
	again, err := Parse(text)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, text)
	}
	if Format(again) != text {
		t.Fatalf("round-trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, Format(again))
	}
	if len(again.Rules) != len(prog.Rules) || len(again.WMEs) != len(prog.WMEs) {
		t.Fatal("round-trip lost declarations")
	}
}

func TestReadsOption(t *testing.T) {
	prog, err := Parse(`
(p r :reads 1
  (a ^v <x>)
  -->
  (modify 1 ^v (+ <x> 1)))
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules[0].ActionReads) != 1 || prog.Rules[0].ActionReads[0] != 0 {
		t.Fatalf("ActionReads = %v", prog.Rules[0].ActionReads)
	}
	// Round-trips too.
	if !strings.Contains(Format(prog), ":reads 1") {
		t.Fatal("printer dropped :reads")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"(q foo)", "expected 'p' or 'wme'"},
		{"(p)", "rule name"},
		{"(p r (a) -->)", "no actions"},
		{"(p r --> (halt))", "no condition"},
		{"(p r :priority x (a) --> (halt))", "priority value"},
		{"(p r :reads (a) --> (halt))", ":reads needs"},
		{"(p r :bogus (a) --> (halt))", "unknown option"},
		{"(p r (a ^v) --> (halt))", "expected value or variable"},
		{"(p r (a) --> (frob))", "unknown action"},
		{"(p r (a) --> (modify x))", "CE index"},
		{"(p r (a) --> (make b ^v (bad 1 2)))", "arithmetic operator"},
		{"(p r (a) --> (make b ^v (+ 1)))", "expected expression"},
		{"(wme)", "class name"},
		{"(wme a ^v <x>)", "expected value"},
		{`(p r (a ^v "unterminated) --> (halt))`, "unterminated string"},
		{"(p r (a ^v <x) --> (halt))", "missing closing"},
		{"(p dup (a) --> (halt)) (p dup (a) --> (halt))", "duplicate rule"},
		{"(p r (a ^v <y>) --> (halt))", ""}, // validation: unbound? <y> binds; fine — covered below
	}
	for _, c := range cases {
		if c.frag == "" {
			continue
		}
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) err = %v, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("(p r\n  (a ^v ,bad)\n  --> (halt))")
	if err == nil {
		t.Fatal("want error")
	}
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if le.Line != 2 {
		t.Errorf("line = %d, want 2", le.Line)
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lexAll(`(p -7 2.5 "s" <v> <> <= >= > < = --> -(x) + * / %) ; comment`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokKind, 0, len(toks))
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokKind{
		tokLParen, tokIdent, tokInt, tokFloat, tokString, tokVar,
		tokOp, tokOp, tokOp, tokOp, tokOp, tokOp, tokArrow,
		tokNeg, tokLParen, tokIdent, tokRParen,
		tokOp, tokOp, tokOp, tokOp, tokRParen, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v (%q), want %v", i, kinds[i], toks[i].text, want[i])
		}
	}
}

func TestNegativeNumbersAndMinusOp(t *testing.T) {
	prog, err := Parse(`
(p r
  (a ^v > -5)
  -->
  (make b ^v (- 0 -3)))
(wme a ^v -2)
`)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.WMEs[0].Attrs["v"].Equal(wm.Int(-2)) {
		t.Fatalf("negative literal lost: %v", prog.WMEs[0])
	}
	e, err := engine.NewSingle(prog, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 1 {
		t.Fatalf("firings = %d", res.Firings)
	}
	b := e.Store().ByClass("b")
	if len(b) != 1 || !b[0].Attr("v").Equal(wm.Int(3)) {
		t.Fatalf("b = %v, want v 3", b)
	}
}
