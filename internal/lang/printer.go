package lang

import (
	"fmt"
	"sort"
	"strings"

	"pdps/internal/engine"
	"pdps/internal/match"
	"pdps/internal/wm"
)

// Format renders a program in the surface syntax; the output re-parses
// to an equivalent program (round-trip).
func Format(p engine.Program) string {
	var b strings.Builder
	for i, r := range p.Rules {
		if i > 0 {
			b.WriteString("\n")
		}
		formatRule(&b, r)
	}
	if len(p.Rules) > 0 && len(p.WMEs) > 0 {
		b.WriteString("\n")
	}
	for _, w := range p.WMEs {
		fmt.Fprintf(&b, "(wme %s", w.Class)
		names := make([]string, 0, len(w.Attrs))
		for k := range w.Attrs {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Fprintf(&b, " ^%s %s", k, formatValue(w.Attrs[k]))
		}
		b.WriteString(")\n")
	}
	return b.String()
}

func formatRule(b *strings.Builder, r *match.Rule) {
	fmt.Fprintf(b, "(p %s", r.Name)
	if r.Priority != 0 {
		fmt.Fprintf(b, " :priority %d", r.Priority)
	}
	if len(r.ActionReads) > 0 {
		b.WriteString(" :reads")
		for _, ce := range r.ActionReads {
			fmt.Fprintf(b, " %d", ce+1)
		}
	}
	for _, c := range r.Conditions {
		b.WriteString("\n  ")
		if c.Negated {
			b.WriteString("-")
		}
		b.WriteString("(")
		b.WriteString(c.Class)
		for _, t := range c.Tests {
			fmt.Fprintf(b, " ^%s", t.Attr)
			switch {
			case t.IsDisjunction():
				b.WriteString(" <<")
				for _, v := range t.OneOf {
					fmt.Fprintf(b, " %s", formatValue(v))
				}
				b.WriteString(" >>")
			case t.IsVar():
				if t.Op != match.OpEq {
					fmt.Fprintf(b, " %s", t.Op)
				}
				fmt.Fprintf(b, " <%s>", t.Var)
			default:
				if t.Op != match.OpEq {
					fmt.Fprintf(b, " %s", t.Op)
				}
				fmt.Fprintf(b, " %s", formatValue(t.Const))
			}
		}
		b.WriteString(")")
	}
	b.WriteString("\n  -->")
	for _, a := range r.Actions {
		b.WriteString("\n  (")
		b.WriteString(a.Kind.String())
		switch a.Kind {
		case match.ActMake:
			b.WriteString(" " + a.Class)
		case match.ActModify, match.ActRemove:
			fmt.Fprintf(b, " %d", a.CE+1)
		}
		for _, as := range a.Assigns {
			fmt.Fprintf(b, " ^%s %s", as.Attr, formatExpr(as.Expr))
		}
		b.WriteString(")")
	}
	b.WriteString(")\n")
}

func formatExpr(e match.Expr) string {
	switch x := e.(type) {
	case match.ConstExpr:
		return formatValue(x.Val)
	case match.VarExpr:
		return "<" + x.Name + ">"
	case match.BinExpr:
		return fmt.Sprintf("(%s %s %s)", x.Op, formatExpr(x.L), formatExpr(x.R))
	}
	return e.String()
}

func formatValue(v wm.Value) string {
	// wm.Value.String already renders in surface syntax (symbols bare,
	// strings quoted, booleans as true/false).
	return v.String()
}
