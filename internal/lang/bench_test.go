package lang

import (
	"testing"

	"pdps/internal/workload"
)

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(sample); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseLargeProgram(b *testing.B) {
	src := Format(workload.Pipeline(200, 8))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFormat(b *testing.B) {
	prog := workload.Pipeline(200, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(Format(prog)) == 0 {
			b.Fatal("empty output")
		}
	}
}
