package lang

import "testing"

// FuzzParse checks the parser never panics and that anything it
// accepts round-trips through the printer to an equivalent program.
func FuzzParse(f *testing.F) {
	seeds := []string{
		sample,
		"(p r (a) --> (halt))",
		"(p r (a ^v <x>) -(b ^v <x>) --> (make c ^v (+ <x> 1)))",
		"(wme a ^v 1 ^s sym ^t \"str\" ^b true)",
		"(p r :priority -3 :reads 1 (a ^v <x>) --> (modify 1 ^v <x>))",
		"(p r (a ^v >= 2.5) --> (remove 1))",
		"; just a comment",
		"(p r (a ^v <> 0) --> (remove 1)) (wme a ^v -1)",
		"((((",
		")",
		"(p",
		"(p r (a ^",
		`(p r (a ^v "unterminated`,
		"(wme a ^v <var>)",
		"(p r (a ^v 1e) --> (halt))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text := Format(prog)
		again, err := Parse(text)
		if err != nil {
			t.Fatalf("printer output does not re-parse: %v\ninput: %q\nprinted:\n%s", err, src, text)
		}
		if len(again.Rules) != len(prog.Rules) || len(again.WMEs) != len(prog.WMEs) {
			t.Fatalf("round-trip changed declaration counts\ninput: %q", src)
		}
		if Format(again) != text {
			t.Fatalf("printer not idempotent\nfirst:\n%s\nsecond:\n%s", text, Format(again))
		}
	})
}
