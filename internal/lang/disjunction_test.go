package lang

import (
	"strings"
	"testing"

	"pdps/internal/engine"
	"pdps/internal/match"
	"pdps/internal/wm"
)

const disjProgram = `
(p triage
  (ticket ^severity << critical high >> ^state open)
  -->
  (modify 1 ^state assigned))

(wme ticket ^id 1 ^severity critical ^state open)
(wme ticket ^id 2 ^severity low ^state open)
(wme ticket ^id 3 ^severity high ^state open)
`

func TestParseDisjunction(t *testing.T) {
	prog, err := Parse(disjProgram)
	if err != nil {
		t.Fatal(err)
	}
	tests := prog.Rules[0].Conditions[0].Tests
	if len(tests) != 2 {
		t.Fatalf("tests = %v", tests)
	}
	d := tests[0]
	if !d.IsDisjunction() || len(d.OneOf) != 2 {
		t.Fatalf("disjunction not parsed: %+v", d)
	}
	if !d.OneOf[0].Equal(wm.Sym("critical")) || !d.OneOf[1].Equal(wm.Sym("high")) {
		t.Fatalf("alternatives = %v", d.OneOf)
	}
	if !d.Matches(wm.Sym("high")) || d.Matches(wm.Sym("low")) {
		t.Fatal("Matches wrong")
	}
}

func TestDisjunctionRunsOnAllMatchers(t *testing.T) {
	for _, matcher := range []string{"rete", "treat", "naive"} {
		prog := MustParse(disjProgram)
		e, err := engine.NewSingle(prog, engine.Options{Matcher: matcher, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", matcher, err)
		}
		if res.Firings != 2 {
			t.Fatalf("%s: firings = %d, want 2 (critical and high only)", matcher, res.Firings)
		}
		assigned := 0
		for _, w := range e.Store().ByClass("ticket") {
			if w.Attr("state").Equal(wm.Sym("assigned")) {
				assigned++
			}
		}
		if assigned != 2 {
			t.Fatalf("%s: assigned = %d", matcher, assigned)
		}
	}
}

func TestDisjunctionRoundTrip(t *testing.T) {
	prog := MustParse(disjProgram)
	text := Format(prog)
	if !strings.Contains(text, "<< critical high >>") {
		t.Fatalf("printer lost disjunction:\n%s", text)
	}
	again, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if Format(again) != text {
		t.Fatal("round-trip unstable")
	}
}

func TestDisjunctionErrors(t *testing.T) {
	if _, err := Parse("(p r (a ^v << >>) --> (halt))"); err == nil ||
		!strings.Contains(err.Error(), "empty value disjunction") {
		t.Fatalf("empty disjunction: %v", err)
	}
	if _, err := Parse("(p r (a ^v << 1 2) --> (halt))"); err == nil {
		t.Fatal("unterminated disjunction must error")
	}
}

func TestDisjunctionMixedKinds(t *testing.T) {
	// Numbers and symbols can mix; numeric equality crosses int/float.
	r := &match.Rule{
		Name: "m",
		Conditions: []match.Condition{
			{Class: "a", Tests: []match.AttrTest{
				{Attr: "v", OneOf: []wm.Value{wm.Int(3), wm.Sym("none")}},
			}},
		},
		Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
	}
	prog := engine.Program{Rules: []*match.Rule{r}, WMEs: []engine.InitialWME{
		{Class: "a", Attrs: map[string]wm.Value{"v": wm.Float(3.0)}},
		{Class: "a", Attrs: map[string]wm.Value{"v": wm.Sym("none")}},
		{Class: "a", Attrs: map[string]wm.Value{"v": wm.Int(4)}},
	}}
	e, err := engine.NewSingle(prog, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 2 || e.Store().Len() != 1 {
		t.Fatalf("firings = %d, left = %d", res.Firings, e.Store().Len())
	}
}
