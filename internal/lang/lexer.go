// Package lang implements the rule language front-end: an OPS5-style
// surface syntax for productions and initial working memory, with a
// lexer, a recursive-descent parser producing the engine's rule IR,
// and a printer whose output re-parses (round-trips). Example:
//
//	; parts ready on a free machine get processed
//	(p process :priority 2
//	  (part ^id <x> ^status ready)
//	  (machine ^accepts <x> ^free true)
//	  -(hold ^part <x>)
//	  -->
//	  (modify 1 ^status done)
//	  (make log ^part <x> ^note "processed"))
//
//	(wme part ^id 1 ^status ready)
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token types.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokLParen
	tokRParen
	tokIdent  // bare symbol: class names, rule names, keywords
	tokAttr   // ^name
	tokVar    // <name>
	tokInt    // 42, -7
	tokFloat  // 2.5
	tokString // "..."
	tokKeyOpt // :priority, :reads
	tokArrow  // -->
	tokNeg    // - immediately before ( : negated CE
	tokOp     // <> < <= > >= = + * / %
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokIdent:
		return "identifier"
	case tokAttr:
		return "attribute"
	case tokVar:
		return "variable"
	case tokInt:
		return "integer"
	case tokFloat:
		return "float"
	case tokString:
		return "string"
	case tokKeyOpt:
		return "option"
	case tokArrow:
		return "'-->'"
	case tokNeg:
		return "'-'"
	case tokOp:
		return "operator"
	}
	return "token"
}

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

// Error is a parse or lex error with source position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("lang: %d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...interface{}) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '-' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token.
func (l *lexer) next() (token, *Error) {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == ';':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			goto lex
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.col}, nil

lex:
	line, col := l.line, l.col
	mk := func(k tokKind, text string) token {
		return token{kind: k, text: text, line: line, col: col}
	}
	c := l.advance()
	switch {
	case c == '(':
		return mk(tokLParen, "("), nil
	case c == ')':
		return mk(tokRParen, ")"), nil
	case c == '^':
		name, err := l.ident()
		if err != nil {
			return token{}, err
		}
		return mk(tokAttr, name), nil
	case c == ':':
		name, err := l.ident()
		if err != nil {
			return token{}, err
		}
		return mk(tokKeyOpt, name), nil
	case c == '"':
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated string")
			}
			ch := l.advance()
			if ch == '"' {
				return mk(tokString, b.String()), nil
			}
			if ch == '\\' {
				if l.pos >= len(l.src) {
					return token{}, l.errf("unterminated escape")
				}
				esc := l.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '"', '\\':
					b.WriteByte(esc)
				default:
					return token{}, l.errf("unknown escape \\%c", esc)
				}
				continue
			}
			b.WriteByte(ch)
		}
	case c == '<':
		// <name> is a variable; <=, <>, << are operators; bare < too.
		switch {
		case l.peekByte() == '=':
			l.advance()
			return mk(tokOp, "<="), nil
		case l.peekByte() == '>':
			l.advance()
			return mk(tokOp, "<>"), nil
		case l.peekByte() == '<':
			l.advance()
			return mk(tokOp, "<<"), nil
		case isIdentStart(l.peekByte()):
			name, err := l.ident()
			if err != nil {
				return token{}, err
			}
			if l.peekByte() != '>' {
				return token{}, l.errf("variable <%s missing closing '>'", name)
			}
			l.advance()
			return mk(tokVar, name), nil
		default:
			return mk(tokOp, "<"), nil
		}
	case c == '>':
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokOp, ">="), nil
		}
		if l.peekByte() == '>' {
			l.advance()
			return mk(tokOp, ">>"), nil
		}
		return mk(tokOp, ">"), nil
	case c == '=':
		return mk(tokOp, "="), nil
	case c == '+' || c == '*' || c == '/' || c == '%':
		return mk(tokOp, string(c)), nil
	case c == '-':
		switch {
		case l.peekByte() == '-':
			l.advance()
			if l.peekByte() != '>' {
				return token{}, l.errf("expected '-->'")
			}
			l.advance()
			return mk(tokArrow, "-->"), nil
		case isDigit(l.peekByte()):
			return l.number(mk, "-")
		case l.peekByte() == '(':
			return mk(tokNeg, "-"), nil
		default:
			return mk(tokOp, "-"), nil
		}
	case isDigit(c):
		return l.number(mk, string(c))
	case isIdentStart(c):
		l.pos--
		l.col--
		name, err := l.ident()
		if err != nil {
			return token{}, err
		}
		return mk(tokIdent, name), nil
	}
	return token{}, l.errf("unexpected character %q", c)
}

// ident consumes an identifier starting at the current position.
func (l *lexer) ident() (string, *Error) {
	start := l.pos
	if l.pos >= len(l.src) || !isIdentStart(l.peekByte()) {
		return "", l.errf("expected identifier")
	}
	for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
		l.advance()
	}
	return l.src[start:l.pos], nil
}

// number consumes the rest of a numeric literal; prefix holds sign and
// any already-consumed digit.
func (l *lexer) number(mk func(tokKind, string) token, prefix string) (token, *Error) {
	var b strings.Builder
	b.WriteString(prefix)
	isFloat := false
	for l.pos < len(l.src) {
		c := l.peekByte()
		if isDigit(c) {
			b.WriteByte(l.advance())
			continue
		}
		if c == '.' && !isFloat {
			isFloat = true
			b.WriteByte(l.advance())
			continue
		}
		break
	}
	if isFloat {
		return mk(tokFloat, b.String()), nil
	}
	return mk(tokInt, b.String()), nil
}

// lexAll tokenizes the whole input (used by tests).
func lexAll(src string) ([]token, *Error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
