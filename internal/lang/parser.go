package lang

import (
	"fmt"
	"strconv"

	"pdps/internal/engine"
	"pdps/internal/match"
	"pdps/internal/wm"
)

// Parse reads a program source: any number of productions
// (p name ...) and initial working memory declarations (wme class ...),
// in any order. Every rule is validated.
func Parse(src string) (engine.Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return engine.Program{}, err
	}
	var prog engine.Program
	for p.tok.kind != tokEOF {
		if err := p.expect(tokLParen); err != nil {
			return engine.Program{}, err
		}
		head, err := p.ident("'p' or 'wme'")
		if err != nil {
			return engine.Program{}, err
		}
		switch head {
		case "p":
			r, err := p.production()
			if err != nil {
				return engine.Program{}, err
			}
			if err := r.Validate(); err != nil {
				return engine.Program{}, err
			}
			for _, existing := range prog.Rules {
				if existing.Name == r.Name {
					return engine.Program{}, p.errf("duplicate rule %s", r.Name)
				}
			}
			prog.Rules = append(prog.Rules, r)
		case "wme":
			w, err := p.wmeDecl()
			if err != nil {
				return engine.Program{}, err
			}
			prog.WMEs = append(prog.WMEs, w)
		default:
			return engine.Program{}, p.errf("expected 'p' or 'wme', got %q", head)
		}
	}
	return prog, nil
}

// MustParse parses or panics; for fixtures and examples.
func MustParse(src string) engine.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

// ParseWME reads a single tuple literal "(class ^attr value ...)" —
// the shape psshell's assert command takes.
func ParseWME(src string) (engine.InitialWME, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return engine.InitialWME{}, err
	}
	if err := p.expect(tokLParen); err != nil {
		return engine.InitialWME{}, err
	}
	w, err := p.wmeDecl()
	if err != nil {
		return engine.InitialWME{}, err
	}
	if p.tok.kind != tokEOF {
		return engine.InitialWME{}, p.errf("trailing input after tuple")
	}
	return w, nil
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokKind) error {
	if p.tok.kind != k {
		return p.errf("expected %s, got %s %q", k, p.tok.kind, p.tok.text)
	}
	return p.advance()
}

func (p *parser) ident(what string) (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errf("expected %s, got %s %q", what, p.tok.kind, p.tok.text)
	}
	name := p.tok.text
	return name, p.advance()
}

// production parses the remainder of "(p" up to the closing ")".
func (p *parser) production() (*match.Rule, error) {
	name, err := p.ident("rule name")
	if err != nil {
		return nil, err
	}
	r := &match.Rule{Name: name}

	// Options: :priority N, :reads CE...
	for p.tok.kind == tokKeyOpt {
		opt := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch opt {
		case "priority":
			n, err := p.intLit("priority value")
			if err != nil {
				return nil, err
			}
			r.Priority = int(n)
		case "reads":
			for p.tok.kind == tokInt {
				n, err := p.intLit("CE index")
				if err != nil {
					return nil, err
				}
				r.ActionReads = append(r.ActionReads, int(n)-1)
			}
			if len(r.ActionReads) == 0 {
				return nil, p.errf(":reads needs at least one CE index")
			}
		default:
			return nil, p.errf("unknown option :%s", opt)
		}
	}

	// Condition elements until -->.
	for p.tok.kind != tokArrow {
		negated := false
		if p.tok.kind == tokNeg {
			negated = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		ce, err := p.conditionElement(negated)
		if err != nil {
			return nil, err
		}
		r.Conditions = append(r.Conditions, ce)
	}
	if err := p.advance(); err != nil { // consume -->
		return nil, err
	}

	// Actions until the production's closing paren.
	for p.tok.kind != tokRParen {
		a, err := p.action()
		if err != nil {
			return nil, err
		}
		r.Actions = append(r.Actions, a)
	}
	return r, p.advance()
}

func (p *parser) intLit(what string) (int64, error) {
	if p.tok.kind != tokInt {
		return 0, p.errf("expected %s, got %s %q", what, p.tok.kind, p.tok.text)
	}
	n, err := strconv.ParseInt(p.tok.text, 10, 64)
	if err != nil {
		return 0, p.errf("bad integer %q", p.tok.text)
	}
	return n, p.advance()
}

// conditionElement parses "(class ^attr [op] value ...)".
func (p *parser) conditionElement(negated bool) (match.Condition, error) {
	var ce match.Condition
	ce.Negated = negated
	if err := p.expect(tokLParen); err != nil {
		return ce, err
	}
	cls, err := p.ident("class name")
	if err != nil {
		return ce, err
	}
	ce.Class = cls
	for p.tok.kind == tokAttr {
		attr := p.tok.text
		if err := p.advance(); err != nil {
			return ce, err
		}
		// Value disjunction: ^attr << v1 v2 ... >>
		if p.tok.kind == tokOp && p.tok.text == "<<" {
			if err := p.advance(); err != nil {
				return ce, err
			}
			var alts []wm.Value
			for !(p.tok.kind == tokOp && p.tok.text == ">>") {
				v, err := p.valueLit()
				if err != nil {
					return ce, err
				}
				alts = append(alts, v)
			}
			if err := p.advance(); err != nil { // consume >>
				return ce, err
			}
			if len(alts) == 0 {
				return ce, p.errf("empty value disjunction for ^%s", attr)
			}
			ce.Tests = append(ce.Tests, match.AttrTest{Attr: attr, OneOf: alts})
			continue
		}
		op := match.OpEq
		if p.tok.kind == tokOp {
			op, err = parseOp(p.tok.text)
			if err != nil {
				return ce, p.errf("%v", err)
			}
			if err := p.advance(); err != nil {
				return ce, err
			}
		}
		t := match.AttrTest{Attr: attr, Op: op}
		switch p.tok.kind {
		case tokVar:
			t.Var = p.tok.text
		case tokInt, tokFloat, tokString, tokIdent:
			v, err := p.valueLit()
			if err != nil {
				return ce, err
			}
			t.Const = v
			ce.Tests = append(ce.Tests, t)
			continue
		default:
			return ce, p.errf("expected value or variable after ^%s, got %s %q", attr, p.tok.kind, p.tok.text)
		}
		if err := p.advance(); err != nil {
			return ce, err
		}
		ce.Tests = append(ce.Tests, t)
	}
	return ce, p.expect(tokRParen)
}

// valueLit parses a constant value at the current token and advances.
func (p *parser) valueLit() (wm.Value, error) {
	switch p.tok.kind {
	case tokInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return wm.Nil(), p.errf("bad integer %q", p.tok.text)
		}
		return wm.Int(n), p.advance()
	case tokFloat:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return wm.Nil(), p.errf("bad float %q", p.tok.text)
		}
		return wm.Float(f), p.advance()
	case tokString:
		s := p.tok.text
		return wm.Str(s), p.advance()
	case tokIdent:
		switch p.tok.text {
		case "true":
			return wm.Bool(true), p.advance()
		case "false":
			return wm.Bool(false), p.advance()
		case "nil":
			return wm.Nil(), p.advance()
		}
		s := p.tok.text
		return wm.Sym(s), p.advance()
	}
	return wm.Nil(), p.errf("expected value, got %s %q", p.tok.kind, p.tok.text)
}

func parseOp(text string) (match.Op, error) {
	switch text {
	case "=":
		return match.OpEq, nil
	case "<>":
		return match.OpNe, nil
	case "<":
		return match.OpLt, nil
	case "<=":
		return match.OpLe, nil
	case ">":
		return match.OpGt, nil
	case ">=":
		return match.OpGe, nil
	}
	return 0, fmt.Errorf("unknown comparison operator %q", text)
}

// action parses "(make class ^a expr ...)", "(modify N ^a expr ...)",
// "(remove N)" or "(halt)".
func (p *parser) action() (match.Action, error) {
	var a match.Action
	if err := p.expect(tokLParen); err != nil {
		return a, err
	}
	kw, err := p.ident("action keyword")
	if err != nil {
		return a, err
	}
	switch kw {
	case "make":
		a.Kind = match.ActMake
		cls, err := p.ident("class name")
		if err != nil {
			return a, err
		}
		a.Class = cls
	case "modify":
		a.Kind = match.ActModify
		n, err := p.intLit("CE index")
		if err != nil {
			return a, err
		}
		a.CE = int(n) - 1
	case "remove":
		a.Kind = match.ActRemove
		n, err := p.intLit("CE index")
		if err != nil {
			return a, err
		}
		a.CE = int(n) - 1
	case "halt":
		a.Kind = match.ActHalt
	default:
		return a, p.errf("unknown action %q", kw)
	}
	for p.tok.kind == tokAttr {
		attr := p.tok.text
		if err := p.advance(); err != nil {
			return a, err
		}
		e, err := p.expr()
		if err != nil {
			return a, err
		}
		a.Assigns = append(a.Assigns, match.AttrAssign{Attr: attr, Expr: e})
	}
	return a, p.expect(tokRParen)
}

// expr parses an RHS expression: literal, variable, or prefix
// arithmetic "(op expr expr)".
func (p *parser) expr() (match.Expr, error) {
	switch p.tok.kind {
	case tokVar:
		name := p.tok.text
		return match.VarExpr{Name: name}, p.advance()
	case tokInt, tokFloat, tokString, tokIdent:
		v, err := p.valueLit()
		if err != nil {
			return nil, err
		}
		return match.ConstExpr{Val: v}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokOp {
			return nil, p.errf("expected arithmetic operator, got %s %q", p.tok.kind, p.tok.text)
		}
		var op match.ArithOp
		switch p.tok.text {
		case "+":
			op = match.ArithAdd
		case "-":
			op = match.ArithSub
		case "*":
			op = match.ArithMul
		case "/":
			op = match.ArithDiv
		case "%":
			op = match.ArithMod
		default:
			return nil, p.errf("unknown arithmetic operator %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		l, err := p.expr()
		if err != nil {
			return nil, err
		}
		r, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return match.BinExpr{Op: op, L: l, R: r}, nil
	}
	return nil, p.errf("expected expression, got %s %q", p.tok.kind, p.tok.text)
}

// wmeDecl parses the remainder of "(wme class ^attr value ...)".
func (p *parser) wmeDecl() (engine.InitialWME, error) {
	var w engine.InitialWME
	cls, err := p.ident("class name")
	if err != nil {
		return w, err
	}
	w.Class = cls
	w.Attrs = make(map[string]wm.Value)
	for p.tok.kind == tokAttr {
		attr := p.tok.text
		if err := p.advance(); err != nil {
			return w, err
		}
		v, err := p.valueLit()
		if err != nil {
			return w, err
		}
		w.Attrs[attr] = v
	}
	return w, p.expect(tokRParen)
}
