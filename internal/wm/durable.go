package wm

import (
	"fmt"
	"os"
	"path/filepath"
)

// Durable is a file-backed working memory: a snapshot file plus a
// write-ahead log in one directory. Opening recovers the store
// (snapshot, then log replay, dropping any torn tail) and immediately
// checkpoints, so the on-disk state is always snapshot-consistent
// before new work appends to a fresh log.
type Durable struct {
	dir     string
	store   *Store
	wal     *WAL
	walFile *os.File
}

const (
	snapshotFile = "snapshot.wm"
	walFile      = "wal.log"
)

// OpenDurable opens (or initialises) a durable store in dir.
func OpenDurable(dir string) (*Durable, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wm: durable: %w", err)
	}
	d := &Durable{dir: dir}

	snapPath := filepath.Join(dir, snapshotFile)
	if f, err := os.Open(snapPath); err == nil {
		s, rerr := ReadSnapshot(f)
		f.Close()
		if rerr != nil {
			return nil, fmt.Errorf("wm: durable: snapshot: %w", rerr)
		}
		d.store = s
	} else if os.IsNotExist(err) {
		d.store = NewStore()
	} else {
		return nil, fmt.Errorf("wm: durable: %w", err)
	}

	walPath := filepath.Join(dir, walFile)
	if f, err := os.Open(walPath); err == nil {
		if _, rerr := ReplayWAL(f, d.store); rerr != nil {
			f.Close()
			return nil, fmt.Errorf("wm: durable: replay: %w", rerr)
		}
		f.Close()
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("wm: durable: %w", err)
	}

	// Fold the recovered log into a fresh snapshot and start a clean
	// log; this also disposes of any torn tail.
	if err := d.Checkpoint(); err != nil {
		return nil, err
	}
	return d, nil
}

// Store returns the in-memory store; mutate it through transactions
// whose commit deltas are appended to WAL().
func (d *Durable) Store() *Store { return d.store }

// WAL returns the live write-ahead log (hand it to engine options).
func (d *Durable) WAL() *WAL { return d.wal }

// Checkpoint writes the current store to the snapshot file (via a
// temporary file and rename) and truncates the log.
func (d *Durable) Checkpoint() error {
	snapPath := filepath.Join(d.dir, snapshotFile)
	tmp, err := os.CreateTemp(d.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("wm: checkpoint: %w", err)
	}
	if err := d.store.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("wm: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("wm: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wm: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), snapPath); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wm: checkpoint: %w", err)
	}
	// The rename is only durable once the directory entry is; without
	// this fsync a crash can lose the new snapshot after the old log
	// was already truncated.
	if err := SyncDir(d.dir); err != nil {
		return fmt.Errorf("wm: checkpoint: %w", err)
	}

	if d.walFile != nil {
		d.walFile.Close()
	}
	f, err := os.Create(filepath.Join(d.dir, walFile))
	if err != nil {
		return fmt.Errorf("wm: checkpoint: %w", err)
	}
	w, err := NewWAL(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("wm: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wm: checkpoint: %w", err)
	}
	if err := SyncDir(d.dir); err != nil {
		f.Close()
		return fmt.Errorf("wm: checkpoint: %w", err)
	}
	d.walFile = f
	d.wal = w
	return nil
}

// SyncDir fsyncs a directory so renames and file creations within it
// are durable. On filesystems that refuse fsync on directories the
// error is ignored (there is nothing more the caller can do).
func SyncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Sync(); err != nil && !os.IsPermission(err) {
		return err
	}
	return nil
}

// Sync flushes the log file to stable storage.
func (d *Durable) Sync() error {
	if d.walFile == nil {
		return nil
	}
	return d.walFile.Sync()
}

// Close syncs and closes the log. The directory remains recoverable.
func (d *Durable) Close() error {
	if d.walFile == nil {
		return nil
	}
	if err := d.walFile.Sync(); err != nil {
		d.walFile.Close()
		return err
	}
	err := d.walFile.Close()
	d.walFile = nil
	return err
}
