package wm

import (
	"fmt"
	"sort"
	"strings"
)

// WME is a working memory element: a tuple of a class (relation) name
// and attribute/value pairs. WMEs are immutable once created; a modify
// operation produces a new WME carrying the same ID but a fresh time
// tag, so matchers can treat modify as remove-then-add.
type WME struct {
	// ID is the stable identity of the element across modifications.
	ID int64
	// TimeTag is the recency counter assigned when this version
	// entered working memory; conflict-resolution strategies such as
	// LEX and MEA order instantiations by it.
	TimeTag uint64
	// Class is the relation the element belongs to.
	Class string

	attrs map[string]Value
}

// NewWME builds a detached WME (not yet in any store) with the given
// class and attributes. The attribute map is copied.
func NewWME(class string, attrs map[string]Value) *WME {
	return &WME{Class: class, attrs: copyAttrs(attrs)}
}

func copyAttrs(attrs map[string]Value) map[string]Value {
	c := make(map[string]Value, len(attrs))
	for k, v := range attrs {
		c[k] = v
	}
	return c
}

// Attr returns the value of the named attribute, or the nil value if
// the attribute is absent.
func (w *WME) Attr(name string) Value { return w.attrs[name] }

// HasAttr reports whether the attribute is present.
func (w *WME) HasAttr(name string) bool {
	_, ok := w.attrs[name]
	return ok
}

// AttrNames returns the attribute names in sorted order.
func (w *WME) AttrNames() []string {
	names := make([]string, 0, len(w.attrs))
	for k := range w.attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Attrs returns a copy of the attribute map.
func (w *WME) Attrs() map[string]Value { return copyAttrs(w.attrs) }

// WithAttrs returns a new WME that carries this WME's identity and
// class but with the given attribute updates applied on top of the
// existing attributes. Setting an attribute to the nil value deletes it.
func (w *WME) WithAttrs(updates map[string]Value) *WME {
	n := &WME{ID: w.ID, Class: w.Class, attrs: copyAttrs(w.attrs)}
	for k, v := range updates {
		if v.IsNil() {
			delete(n.attrs, k)
			continue
		}
		n.attrs[k] = v
	}
	return n
}

// EqualContent reports whether two WMEs have the same class and
// attribute values (identity and time tags are ignored).
func (w *WME) EqualContent(o *WME) bool {
	if w.Class != o.Class || len(w.attrs) != len(o.attrs) {
		return false
	}
	for k, v := range w.attrs {
		ov, ok := o.attrs[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// String renders the WME in rule-language syntax, e.g.
// (part ^id 3 ^status ready) with attributes in sorted order.
func (w *WME) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s", w.Class)
	for _, k := range w.AttrNames() {
		fmt.Fprintf(&b, " ^%s %s", k, w.attrs[k])
	}
	b.WriteByte(')')
	return b.String()
}
