package wm

import (
	"sync"
	"testing"
)

func attrs(kv ...interface{}) map[string]Value {
	m := make(map[string]Value)
	for i := 0; i < len(kv); i += 2 {
		k := kv[i].(string)
		switch v := kv[i+1].(type) {
		case int:
			m[k] = Int(int64(v))
		case int64:
			m[k] = Int(v)
		case float64:
			m[k] = Float(v)
		case string:
			m[k] = Sym(v)
		case bool:
			m[k] = Bool(v)
		case Value:
			m[k] = v
		default:
			panic("bad attr value")
		}
	}
	return m
}

func TestStoreInsertGetRemove(t *testing.T) {
	s := NewStore()
	w := s.Insert("part", attrs("id", 1, "status", "ready"))
	if w.ID == 0 || w.TimeTag == 0 {
		t.Fatal("insert must assign ID and time tag")
	}
	got, ok := s.Get(w.ID)
	if !ok || got != w {
		t.Fatal("Get did not return inserted WME")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	old, ok := s.Remove(w.ID)
	if !ok || old != w {
		t.Fatal("Remove did not return the removed WME")
	}
	if s.Len() != 0 {
		t.Fatal("store not empty after remove")
	}
	if _, ok := s.Remove(w.ID); ok {
		t.Fatal("second remove should fail")
	}
}

func TestStoreModifyKeepsIDFreshTimeTag(t *testing.T) {
	s := NewStore()
	w := s.Insert("part", attrs("status", "raw"))
	old, n, err := s.Modify(w.ID, attrs("status", "done"))
	if err != nil {
		t.Fatal(err)
	}
	if old != w {
		t.Error("old version mismatch")
	}
	if n.ID != w.ID {
		t.Error("modify must keep the ID")
	}
	if n.TimeTag <= w.TimeTag {
		t.Error("modify must assign a fresh (larger) time tag")
	}
	if got := n.Attr("status"); !got.Equal(Sym("done")) {
		t.Errorf("status = %v, want done", got)
	}
	if _, _, err := s.Modify(999, nil); err == nil {
		t.Error("modify of absent WME should error")
	}
}

func TestStoreByClassAndClasses(t *testing.T) {
	s := NewStore()
	a := s.Insert("a", attrs("n", 1))
	s.Insert("b", attrs("n", 2))
	c := s.Insert("a", attrs("n", 3))
	as := s.ByClass("a")
	if len(as) != 2 || as[0] != a || as[1] != c {
		t.Fatalf("ByClass(a) = %v", as)
	}
	if got := s.Classes(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Classes = %v", got)
	}
	s.Remove(a.ID)
	s.Remove(c.ID)
	if got := s.Classes(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Classes after removes = %v", got)
	}
}

func TestStoreApplyDeltaAndInvert(t *testing.T) {
	s := NewStore()
	w := s.Insert("x", attrs("v", 1))
	d := &Delta{
		Removes: []*WME{w},
		Adds:    []*WME{NewWME("y", attrs("v", 2))},
	}
	applied, err := s.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || len(s.ByClass("y")) != 1 {
		t.Fatal("delta not applied")
	}
	if applied.Adds[0].ID == 0 || applied.Adds[0].TimeTag == 0 {
		t.Fatal("apply must assign IDs/time tags")
	}
	// Undo restores the original x tuple (same ID).
	if _, err := s.Apply(applied.Invert()); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(w.ID)
	if !ok || !got.EqualContent(w) {
		t.Fatal("invert did not restore original WME")
	}
	if len(s.ByClass("y")) != 0 {
		t.Fatal("invert did not remove added WME")
	}
}

func TestStoreApplyRemoveAbsentFails(t *testing.T) {
	s := NewStore()
	d := &Delta{Removes: []*WME{{ID: 42, Class: "x"}}}
	if _, err := s.Apply(d); err == nil {
		t.Fatal("apply removing absent WME must error")
	}
	if s.Len() != 0 {
		t.Fatal("failed apply must not change the store")
	}
}

func TestStoreClone(t *testing.T) {
	s := NewStore()
	w := s.Insert("a", attrs("n", 1))
	c := s.Clone()
	c.Remove(w.ID)
	if _, ok := s.Get(w.ID); !ok {
		t.Fatal("clone mutation leaked into original")
	}
	n := c.Insert("a", attrs("n", 2))
	if n.ID == w.ID {
		t.Fatal("clone must continue the original ID sequence")
	}
}

func TestStoreConcurrentInserts(t *testing.T) {
	s := NewStore()
	const workers, each = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				s.Insert("c", attrs("n", j))
			}
		}()
	}
	wg.Wait()
	if s.Len() != workers*each {
		t.Fatalf("Len = %d, want %d", s.Len(), workers*each)
	}
	seen := make(map[int64]bool)
	for _, w := range s.All() {
		if seen[w.ID] {
			t.Fatalf("duplicate ID %d", w.ID)
		}
		seen[w.ID] = true
	}
}

func TestWMEStringAndWithAttrs(t *testing.T) {
	w := NewWME("part", attrs("b", 2, "a", 1))
	if got := w.String(); got != "(part ^a 1 ^b 2)" {
		t.Errorf("String = %q", got)
	}
	n := w.WithAttrs(map[string]Value{"a": Nil(), "c": Int(3)})
	if n.HasAttr("a") || !n.Attr("c").Equal(Int(3)) || !n.Attr("b").Equal(Int(2)) {
		t.Errorf("WithAttrs wrong: %v", n)
	}
	if w.HasAttr("c") {
		t.Error("WithAttrs mutated the receiver")
	}
}

func TestWMEEqualContent(t *testing.T) {
	a := NewWME("p", attrs("x", 1))
	b := NewWME("p", attrs("x", 1))
	c := NewWME("p", attrs("x", 2))
	d := NewWME("q", attrs("x", 1))
	e := NewWME("p", attrs("x", 1, "y", 2))
	if !a.EqualContent(b) {
		t.Error("a should equal b")
	}
	if a.EqualContent(c) || a.EqualContent(d) || a.EqualContent(e) {
		t.Error("content inequality not detected")
	}
}
