package wm

import (
	"testing"
	"testing/quick"
)

func TestIndexMaintenance(t *testing.T) {
	s := NewStore()
	ix, err := s.CreateIndex("part", "status")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Class() != "part" || ix.Attr() != "status" {
		t.Fatal("accessors wrong")
	}
	p1 := s.Insert("part", attrs("id", 1, "status", "ready"))
	p2 := s.Insert("part", attrs("id", 2, "status", "ready"))
	s.Insert("part", attrs("id", 3, "status", "done"))
	s.Insert("machine", attrs("status", "ready")) // other class: not indexed
	s.Insert("part", attrs("id", 4))              // missing attr: not indexed

	got := ix.Lookup(Sym("ready"))
	if len(got) != 2 || got[0] != p1 || got[1] != p2 {
		t.Fatalf("Lookup(ready) = %v", got)
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ix.Len())
	}

	// Modify moves the WME between buckets.
	_, p1b, err := s.Modify(p1.ID, attrs("status", "done"))
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Lookup(Sym("ready")); len(got) != 1 || got[0] != p2 {
		t.Fatalf("after modify: Lookup(ready) = %v", got)
	}
	if got := ix.Lookup(Sym("done")); len(got) != 2 {
		t.Fatalf("after modify: Lookup(done) = %v", got)
	}
	_ = p1b

	// Remove drops it.
	s.Remove(p2.ID)
	if got := ix.Lookup(Sym("ready")); len(got) != 0 {
		t.Fatalf("after remove: Lookup(ready) = %v", got)
	}
}

func TestIndexBackfillAndIdempotentCreate(t *testing.T) {
	s := NewStore()
	s.Insert("a", attrs("k", 1))
	s.Insert("a", attrs("k", 1))
	s.Insert("a", attrs("k", 2))
	ix, err := s.CreateIndex("a", "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Lookup(Int(1))) != 2 {
		t.Fatal("backfill missed existing WMEs")
	}
	again, err := s.CreateIndex("a", "k")
	if err != nil || again != ix {
		t.Fatal("CreateIndex must be idempotent")
	}
	if _, err := s.CreateIndex("", "k"); err == nil {
		t.Fatal("empty class must error")
	}
	if got := s.Indexes(); len(got) != 1 || got[0] != ix {
		t.Fatalf("Indexes = %v", got)
	}
}

func TestIndexNumericBucketUnification(t *testing.T) {
	s := NewStore()
	ix, _ := s.CreateIndex("a", "v")
	s.Insert("a", attrs("v", Int(3)))
	s.Insert("a", attrs("v", Float(3.0)))
	if got := ix.Lookup(Int(3)); len(got) != 2 {
		t.Fatalf("Int(3) bucket = %d, want 2 (3 and 3.0 are equal)", len(got))
	}
	if got := ix.Lookup(Float(3.0)); len(got) != 2 {
		t.Fatalf("Float(3) bucket = %d, want 2", len(got))
	}
	s.Insert("a", attrs("v", Float(3.5)))
	if got := ix.Lookup(Float(3.5)); len(got) != 1 {
		t.Fatalf("Float(3.5) bucket = %d", len(got))
	}
}

func TestIndexAgreesWithScan(t *testing.T) {
	// Property: after arbitrary insert/modify/remove churn, Lookup(v)
	// equals the scan of WMEs with that value.
	s := NewStore()
	ix, _ := s.CreateIndex("c", "v")
	var live []*WME
	step := 0
	f := func(action uint8, val uint8) bool {
		step++
		v := int(val % 5)
		switch action % 3 {
		case 0:
			live = append(live, s.Insert("c", attrs("v", v, "step", step)))
		case 1:
			if len(live) > 0 {
				w := live[0]
				live = live[1:]
				s.Remove(w.ID)
			}
		case 2:
			if len(live) > 0 {
				_, n, err := s.Modify(live[0].ID, attrs("v", v))
				if err != nil {
					return false
				}
				live[0] = n
			}
		}
		for want := 0; want < 5; want++ {
			scan := s.Select("c", AttrEq("v", Int(int64(want))))
			idx := ix.Lookup(Int(int64(want)))
			if len(scan) != len(idx) {
				return false
			}
			for i := range scan {
				if scan[i] != idx[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectAndCount(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 5; i++ {
		s.Insert("job", attrs("n", i, "state", "open"))
	}
	s.Insert("job", attrs("n", 6, "state", "closed"))

	got := s.Select("job", AttrEq("state", Sym("open")), AttrCmp("n", 1, Int(3)))
	if len(got) != 2 {
		t.Fatalf("Select = %v, want n in {4,5}", got)
	}
	if n := s.Count("job", AttrEq("state", Sym("open"))); n != 5 {
		t.Fatalf("Count = %d", n)
	}
	if n := s.Count("job", AttrCmp("missing", 0, Int(1))); n != 0 {
		t.Fatal("missing attribute must not match")
	}
}

func TestSelectIndexed(t *testing.T) {
	s := NewStore()
	ix, _ := s.CreateIndex("job", "state")
	for i := 1; i <= 4; i++ {
		s.Insert("job", attrs("n", i, "state", "open"))
	}
	got := SelectIndexed(ix, Sym("open"), AttrCmp("n", -1, Int(3)))
	if len(got) != 2 {
		t.Fatalf("SelectIndexed = %v, want n in {1,2}", got)
	}
}
