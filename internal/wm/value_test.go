package wm

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Int(42), KindInt, "42"},
		{Float(2.5), KindFloat, "2.5"},
		{Str("hi"), KindString, `"hi"`},
		{Sym("ready"), KindSymbol, "ready"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
		{Nil(), KindNil, "nil"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String() = %q, want %q", c.v.String(), c.str)
		}
	}
}

func TestValueEqualNumericCrossKind(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) should not equal Float(3.5)")
	}
	if Int(3).Equal(Str("3")) {
		t.Error("Int(3) should not equal Str(\"3\")")
	}
	if Str("a").Equal(Sym("a")) {
		t.Error("string and symbol with same text must differ")
	}
	if !Nil().Equal(Nil()) {
		t.Error("nil equals nil")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(2.5), Int(2), 1},
		{Str("a"), Str("b"), -1},
		{Sym("b"), Sym("a"), 1},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareTotalOrderProperties(t *testing.T) {
	// Compare must be antisymmetric and consistent with Equal for
	// same-kind values.
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return va.Compare(vb) == -vb.Compare(va) &&
			(va.Compare(vb) == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		va, vb := Str(a), Str(b)
		return va.Compare(vb) == -vb.Compare(va) &&
			(va.Compare(vb) == 0) == va.Equal(vb)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "int" || Kind(200).String() == "" {
		t.Error("Kind.String misbehaves")
	}
}

func TestBoolAndNumericAccessors(t *testing.T) {
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("AsBool wrong")
	}
	if Int(7).AsFloat() != 7.0 {
		t.Error("AsFloat on int wrong")
	}
	if Float(1.5).AsFloat() != 1.5 {
		t.Error("AsFloat on float wrong")
	}
	if !Int(1).Numeric() || !Float(1).Numeric() || Str("x").Numeric() {
		t.Error("Numeric wrong")
	}
}
