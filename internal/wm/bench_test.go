package wm

import (
	"bytes"
	"testing"
)

func BenchmarkInsert(b *testing.B) {
	s := NewStore()
	a := attrs("id", 1, "status", "ready", "w", 2.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert("part", a)
	}
}

func BenchmarkModify(b *testing.B) {
	s := NewStore()
	w := s.Insert("part", attrs("n", 0))
	upd := attrs("n", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Modify(w.ID, upd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTxnCommit(b *testing.B) {
	s := NewStore()
	base := s.Insert("part", attrs("n", 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin()
		if _, err := tx.Modify(base.ID, attrs("n", i)); err != nil {
			b.Fatal(err)
		}
		tx.Insert("log", attrs("i", i))
		if _, err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotRoundTrip(b *testing.B) {
	s := NewStore()
	for i := 0; i < 1000; i++ {
		s.Insert("part", attrs("id", i, "status", "ready"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := s.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1000, "wmes")
}

func BenchmarkWALAppend(b *testing.B) {
	s := NewStore()
	var buf bytes.Buffer
	wal, err := NewWAL(&buf)
	if err != nil {
		b.Fatal(err)
	}
	w := s.Insert("part", attrs("id", 1, "status", "ready"))
	d := &Delta{Adds: []*WME{w}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wal.Append(d); err != nil {
			b.Fatal(err)
		}
		if buf.Len() > 1<<24 {
			buf.Reset()
			buf.WriteString(walMagic)
		}
	}
}

// BenchmarkIndexLookupVsScan contrasts the secondary index against a
// predicate scan on a 10k-tuple class.
func BenchmarkIndexLookupVsScan(b *testing.B) {
	s := NewStore()
	ix, err := s.CreateIndex("part", "status")
	if err != nil {
		b.Fatal(err)
	}
	statuses := []Value{Sym("raw"), Sym("ready"), Sym("done"), Sym("scrap")}
	for i := 0; i < 10000; i++ {
		s.Insert("part", attrs("id", i, "status", statuses[i%len(statuses)]))
	}
	b.Run("index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := ix.Lookup(Sym("ready")); len(got) != 2500 {
				b.Fatalf("got %d", len(got))
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := s.Select("part", AttrEq("status", Sym("ready"))); len(got) != 2500 {
				b.Fatalf("got %d", len(got))
			}
		}
	})
}
