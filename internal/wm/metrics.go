package wm

import (
	"sync"

	"pdps/internal/obs"
)

// storeMetrics counts working-memory traffic per class. Labels are by
// class name, never by shard index: the class→shard mapping is seeded
// randomly per Store (maphash.MakeSeed), so shard-labeled series would
// differ between otherwise identical runs and break deterministic
// snapshots. Handles are cached per class in a sync.Map, so the
// registry mutex is touched only on a class's first access.
type storeMetrics struct {
	reg     *obs.Registry
	classes sync.Map // string → *classCounters
}

type classCounters struct {
	reads  *obs.Counter
	writes *obs.Counter
}

func (m *storeMetrics) forClass(class string) *classCounters {
	if v, ok := m.classes.Load(class); ok {
		return v.(*classCounters)
	}
	cc := &classCounters{
		reads:  m.reg.Counter("wm_reads_total", obs.L("class", class)),
		writes: m.reg.Counter("wm_writes_total", obs.L("class", class)),
	}
	v, _ := m.classes.LoadOrStore(class, cc)
	return v.(*classCounters)
}

func (m *storeMetrics) read(class string) {
	if m != nil {
		m.forClass(class).reads.Inc()
	}
}

func (m *storeMetrics) write(class string) {
	if m != nil {
		m.forClass(class).writes.Inc()
	}
}

// SetMetrics registers per-class read/write counters in reg and starts
// recording into them. Call before the store is shared; a store
// without metrics records nothing.
func (s *Store) SetMetrics(reg *obs.Registry) { s.met = &storeMetrics{reg: reg} }
