package wm

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	s.Insert("part", attrs("id", 1, "status", "ready", "w", 2.5))
	s.Insert("machine", attrs("name", Str("mill #1"), "free", true))
	w3 := s.Insert("part", attrs("id", 2))
	s.Remove(w3.ID)
	s.Insert("part", attrs("id", 3))

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), s.Len())
	}
	for _, orig := range s.All() {
		loaded, ok := got.Get(orig.ID)
		if !ok {
			t.Fatalf("WME %d missing after reload", orig.ID)
		}
		if !loaded.EqualContent(orig) || loaded.TimeTag != orig.TimeTag {
			t.Fatalf("WME %d changed: %v vs %v", orig.ID, loaded, orig)
		}
	}
	// Counters continue: the next insert gets a fresh ID and tag.
	n := got.Insert("part", attrs("id", 9))
	for _, orig := range s.All() {
		if n.ID == orig.ID {
			t.Fatal("reloaded store reused an ID")
		}
		if n.TimeTag <= orig.TimeTag {
			t.Fatal("reloaded store reused a time tag")
		}
	}
}

func TestSnapshotBadInput(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("NOTASNAP")); err == nil {
		t.Fatal("bad magic must error")
	}
	if _, err := ReadSnapshot(strings.NewReader("PD")); err == nil {
		t.Fatal("short header must error")
	}
	// Truncated body.
	s := NewStore()
	s.Insert("a", attrs("v", 1))
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadSnapshot(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated snapshot must error")
	}
}

func TestWALRecoveryReproducesStore(t *testing.T) {
	// Run a sequence of transactions against a live store while
	// logging, then recover from snapshot+log and compare.
	live := NewStore()
	live.Insert("counter", attrs("n", 0))
	var snap bytes.Buffer
	if err := live.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	wal, err := NewWAL(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tx := live.Begin()
		c := tx.ByClass("counter")[0]
		if _, err := tx.Modify(c.ID, attrs("n", i+1)); err != nil {
			t.Fatal(err)
		}
		tx.Insert("log", attrs("step", i))
		if i%3 == 2 {
			logs := tx.ByClass("log")
			if err := tx.Remove(logs[0].ID); err != nil {
				t.Fatal(err)
			}
		}
		d, err := tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if err := wal.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	if wal.Records() != 10 {
		t.Fatalf("records = %d", wal.Records())
	}

	recovered, err := ReadSnapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := ReplayWAL(bytes.NewReader(logBuf.Bytes()), recovered)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 10 {
		t.Fatalf("applied = %d, want 10", applied)
	}
	if recovered.Len() != live.Len() {
		t.Fatalf("recovered Len = %d, want %d", recovered.Len(), live.Len())
	}
	for _, orig := range live.All() {
		got, ok := recovered.Get(orig.ID)
		if !ok || !got.EqualContent(orig) || got.TimeTag != orig.TimeTag {
			t.Fatalf("WME %d mismatch after recovery: %v vs %v", orig.ID, got, orig)
		}
	}
	// Counters restored: no ID reuse after recovery.
	n := recovered.Insert("x", nil)
	if _, clash := live.Get(n.ID); clash {
		t.Fatal("recovered store reused an ID")
	}
}

func TestWALTornTailStopsCleanly(t *testing.T) {
	base := NewStore()
	var logBuf bytes.Buffer
	wal, err := NewWAL(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	live := NewStore()
	for i := 0; i < 3; i++ {
		tx := live.Begin()
		tx.Insert("a", attrs("v", i))
		d, err := tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if err := wal.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the last record.
	torn := logBuf.Bytes()[:logBuf.Len()-5]
	applied, err := ReplayWAL(bytes.NewReader(torn), base)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Fatalf("applied = %d, want 2 (torn tail dropped)", applied)
	}
	if base.Len() != 2 {
		t.Fatalf("store has %d WMEs, want 2", base.Len())
	}
}

func TestWALCorruptRecordDetected(t *testing.T) {
	var logBuf bytes.Buffer
	wal, err := NewWAL(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	live := NewStore()
	tx := live.Begin()
	tx.Insert("a", attrs("v", 1))
	d, _ := tx.Commit()
	if err := wal.Append(d); err != nil {
		t.Fatal(err)
	}
	tx2 := live.Begin()
	tx2.Insert("a", attrs("v", 2))
	d2, _ := tx2.Commit()
	if err := wal.Append(d2); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's body (after header+frame).
	raw := logBuf.Bytes()
	raw[len(walMagic)+12+4] ^= 0xff
	s := NewStore()
	if _, err := ReplayWAL(bytes.NewReader(raw), s); err == nil {
		t.Fatal("mid-log corruption must be reported")
	}
	if _, err := ReplayWAL(strings.NewReader("XXXXXXXX"), s); err == nil {
		t.Fatal("bad wal magic must error")
	}
}

func TestWALRemoveOfAbsentFails(t *testing.T) {
	live := NewStore()
	w := live.Insert("a", attrs("v", 1))
	var logBuf bytes.Buffer
	wal, err := NewWAL(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	tx := live.Begin()
	if err := tx.Remove(w.ID); err != nil {
		t.Fatal(err)
	}
	d, _ := tx.Commit()
	if err := wal.Append(d); err != nil {
		t.Fatal(err)
	}
	// Replaying against an empty store: the remove has no target.
	empty := NewStore()
	if _, err := ReplayWAL(bytes.NewReader(logBuf.Bytes()), empty); err == nil {
		t.Fatal("replay against wrong base must error")
	}
}
