package wm

import (
	"bytes"
	"testing"
)

// fuzzStore builds a small store with every value type for seeding.
func fuzzStore() *Store {
	s := NewStore()
	s.Insert("part", map[string]Value{"id": Int(1), "stage": Int(0), "name": Str("axle")})
	s.Insert("tally", map[string]Value{"n": Int(0), "ratio": Float(0.5)})
	s.Insert("flag", map[string]Value{"on": Bool(true), "sym": Sym("ready")})
	return s
}

func fuzzSnapshotBytes() []byte {
	var buf bytes.Buffer
	if err := fuzzStore().WriteSnapshot(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func fuzzWALBytes() []byte {
	var buf bytes.Buffer
	l, err := NewWAL(&buf)
	if err != nil {
		panic(err)
	}
	s := NewStore()
	w1 := s.Insert("part", map[string]Value{"id": Int(1)})
	w2 := s.Insert("part", map[string]Value{"id": Int(2)})
	if err := l.Append(&Delta{Adds: []*WME{w1, w2}}); err != nil {
		panic(err)
	}
	if err := l.Append(&Delta{Removes: []*WME{w1}}); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadSnapshot checks the snapshot reader never panics on
// arbitrary bytes and that anything it accepts re-serializes
// canonically (write → read → write is a fixed point).
func FuzzReadSnapshot(f *testing.F) {
	valid := fuzzSnapshotBytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	for _, i := range []int{8, 12, 20} {
		if i < len(valid) {
			flipped := append([]byte(nil), valid...)
			flipped[i] ^= 0x40
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := s.WriteSnapshot(&first); err != nil {
			t.Fatalf("accepted snapshot does not re-serialize: %v", err)
		}
		s2, err := ReadSnapshot(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-serialized snapshot unreadable: %v", err)
		}
		var second bytes.Buffer
		if err := s2.WriteSnapshot(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("snapshot serialization is not canonical")
		}
	})
}

// FuzzReplayWAL checks the log replayer never panics, is
// deterministic, and applies a prefix: whatever it accepted must
// produce the same store on a second replay.
func FuzzReplayWAL(f *testing.F) {
	valid := fuzzWALBytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)-3])                           // torn tail
	f.Add(append(append([]byte(nil), valid...), 0, 0, 0)) // zero-filled tail
	for _, i := range []int{10, 20, len(valid) - 5} {
		if i >= 0 && i < len(valid) {
			flipped := append([]byte(nil), valid...)
			flipped[i] ^= 0x01
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewStore()
		n, err := ReplayWAL(bytes.NewReader(data), s)
		if n < 0 {
			t.Fatalf("negative record count %d", n)
		}
		s2 := NewStore()
		n2, err2 := ReplayWAL(bytes.NewReader(data), s2)
		if n != n2 || (err == nil) != (err2 == nil) {
			t.Fatalf("replay not deterministic: (%d,%v) vs (%d,%v)", n, err, n2, err2)
		}
		var b1, b2 bytes.Buffer
		if err := s.WriteSnapshot(&b1); err != nil {
			t.Fatal(err)
		}
		if err := s2.WriteSnapshot(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("two replays of the same log produced different stores")
		}
	})
}
