package wm

import (
	"os"
	"path/filepath"
	"testing"
)

func commitInsert(t *testing.T, d *Durable, class string, a map[string]Value) *WME {
	t.Helper()
	tx := d.Store().Begin()
	w := tx.Insert(class, a)
	delta, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WAL().Append(delta); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDurableInitRunReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	commitInsert(t, d, "part", attrs("id", 1))
	w2 := commitInsert(t, d, "part", attrs("id", 2))

	// Remove via logged transaction.
	tx := d.Store().Begin()
	if err := tx.Remove(w2.ID); err != nil {
		t.Fatal(err)
	}
	delta, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WAL().Append(delta); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: one part with id 1 survives.
	d2, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	parts := d2.Store().ByClass("part")
	if len(parts) != 1 || !parts[0].Attr("id").Equal(Int(1)) {
		t.Fatalf("recovered parts = %v", parts)
	}
	// ID counters survive: a fresh insert gets a new ID.
	n := commitInsert(t, d2, "part", attrs("id", 3))
	if n.ID <= parts[0].ID {
		t.Fatalf("ID reuse after recovery: %d", n.ID)
	}
}

func TestDurableTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	commitInsert(t, d, "a", attrs("v", 1))
	commitInsert(t, d, "a", attrs("v", 2))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop bytes off the log.
	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-6], 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	// First record survives, torn second is dropped.
	if got := len(d2.Store().ByClass("a")); got != 1 {
		t.Fatalf("recovered %d tuples, want 1", got)
	}
}

func TestDurableCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		commitInsert(t, d, "a", attrs("v", i))
	}
	if d.WAL().Records() != 5 {
		t.Fatalf("records = %d", d.WAL().Records())
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if d.WAL().Records() != 0 {
		t.Fatal("checkpoint must start a fresh log")
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Store().Len() != 5 {
		t.Fatalf("recovered %d tuples, want 5", d2.Store().Len())
	}
}

func TestDurableEmptyDirAndDoubleClose(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(filepath.Join(dir, "nested", "deeper"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Store().Len() != 0 {
		t.Fatal("fresh store not empty")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
}
