package wm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
)

// Persistence gives working memory the "knowledge persistence" the
// paper's introduction motivates: point-in-time snapshots plus a
// write-ahead log of commit deltas. A store is recovered by loading
// the latest snapshot and replaying the log; every record carries a
// CRC so torn tails are detected and recovery stops cleanly at the
// last complete record.

const (
	snapshotMagic = "PDPSSNP1"
	walMagic      = "PDPSWAL1"
)

// WriteSnapshot serialises the store's current contents, including the
// ID and recency counters, so recovery continues the same sequences.
func (s *Store) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	all := s.All() // deterministic order: by ID
	writeU64(bw, uint64(s.nextID.Load()))
	writeU64(bw, s.clock.Load())
	writeU64(bw, uint64(len(all)))
	for _, wme := range all {
		if err := writeWME(bw, wme); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot reconstructs a store from a snapshot stream.
func ReadSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("wm: snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("wm: bad snapshot magic %q", magic)
	}
	s := NewStore()
	nextID, err := readU64(br)
	if err != nil {
		return nil, err
	}
	clock, err := readU64(br)
	if err != nil {
		return nil, err
	}
	count, err := readU64(br)
	if err != nil {
		return nil, err
	}
	s.nextID.Store(int64(nextID))
	s.clock.Store(clock)
	for i := uint64(0); i < count; i++ {
		w, err := readWME(br)
		if err != nil {
			return nil, fmt.Errorf("wm: snapshot WME %d: %w", i, err)
		}
		s.add(w)
	}
	return s, nil
}

// WAL is an append-only write-ahead log of commit deltas. Append is
// safe for concurrent use (engines call it from worker goroutines).
type WAL struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte // body scratch
	out []byte // framed-record scratch (one Write per record)
	n   int    // records appended
}

// NewWAL starts a log on the writer, emitting the header.
func NewWAL(w io.Writer) (*WAL, error) {
	if _, err := io.WriteString(w, walMagic); err != nil {
		return nil, err
	}
	return &WAL{w: w}, nil
}

// Append writes one delta record: removes as (id, timetag) pairs and
// adds as full WMEs, framed with a length and CRC32.
func (l *WAL) Append(d *Delta) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	body := EncodeDelta(l.buf[:0], d)
	l.out = AppendFrame(l.out[:0], body)
	l.buf = body[:0]
	if _, err := l.w.Write(l.out); err != nil {
		return err
	}
	l.n++
	return nil
}

// EncodeDelta appends the log encoding of a commit delta to b: removes
// as (id, timetag) pairs, adds as full WMEs.
func EncodeDelta(b []byte, d *Delta) []byte {
	b = appendU64(b, uint64(len(d.Removes)))
	for _, w := range d.Removes {
		b = appendU64(b, uint64(w.ID))
		b = appendU64(b, w.TimeTag)
	}
	b = appendU64(b, uint64(len(d.Adds)))
	for _, w := range d.Adds {
		b = appendWME(b, w)
	}
	return b
}

// DecodeDelta parses an EncodeDelta body. Removed WMEs come back as
// stubs carrying only ID and TimeTag (the log does not keep their
// content); adds are complete. The whole body must be consumed.
func DecodeDelta(body []byte) (*Delta, error) {
	p := &byteReader{b: body}
	d, err := decodeDelta(p)
	if err != nil {
		return nil, err
	}
	if p.pos != len(body) {
		return nil, fmt.Errorf("wm: delta record: %d trailing bytes", len(body)-p.pos)
	}
	return d, nil
}

// decodeDelta parses a delta at the reader's position, leaving any
// following bytes (used when a delta is embedded in a larger record).
func decodeDelta(p *byteReader) (*Delta, error) {
	d := &Delta{}
	nRem, err := p.u64()
	if err != nil {
		return nil, err
	}
	if nRem > 1<<24 {
		return nil, fmt.Errorf("wm: absurd remove count %d", nRem)
	}
	for i := uint64(0); i < nRem; i++ {
		id, err := p.u64()
		if err != nil {
			return nil, err
		}
		tag, err := p.u64()
		if err != nil {
			return nil, err
		}
		d.Removes = append(d.Removes, &WME{ID: int64(id), TimeTag: tag})
	}
	nAdd, err := p.u64()
	if err != nil {
		return nil, err
	}
	if nAdd > 1<<24 {
		return nil, fmt.Errorf("wm: absurd add count %d", nAdd)
	}
	for i := uint64(0); i < nAdd; i++ {
		w, err := p.wme()
		if err != nil {
			return nil, err
		}
		d.Adds = append(d.Adds, w)
	}
	return d, nil
}

// ApplyLogged re-applies a decoded delta exactly, preserving IDs and
// time tags rather than re-assigning them. Recovery is sequential, so
// the high-water counter updates need no compare-and-swap loop. The
// delta must match the store state it was logged against: a remove of
// an absent WME or an add of an already-present ID is an error, and
// the store is left partially updated (callers treat this as fatal
// mid-log corruption, not a recoverable tail).
func (s *Store) ApplyLogged(d *Delta) error {
	for _, w := range d.Removes {
		if _, ok := s.Remove(w.ID); !ok {
			return fmt.Errorf("remove of absent WME %d", w.ID)
		}
	}
	for _, w := range d.Adds {
		if _, dup := s.Get(w.ID); dup {
			return fmt.Errorf("add of duplicate WME %d", w.ID)
		}
		s.add(w)
		if w.ID > s.nextID.Load() {
			s.nextID.Store(w.ID)
		}
		if w.TimeTag > s.clock.Load() {
			s.clock.Store(w.TimeTag)
		}
	}
	return nil
}

// Records returns how many records have been appended.
func (l *WAL) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// ReplayWAL applies the log's deltas to the store in order and returns
// the number of complete records applied. Recovery distinguishes a
// torn tail (the bytes a crash mid-append leaves behind: a truncated
// frame or body, or a zero-filled/checksum-failed final record with
// nothing but zero bytes after it) from mid-log corruption: the tail
// is dropped silently — standard recovery semantics — while
// corruption followed by further data is reported as an error. Each
// record is fully decoded before it is applied, so a torn tail never
// leaves the store partially updated.
func ReplayWAL(r io.Reader, s *Store) (int, error) {
	fs, err := NewFrameScanner(r, walMagic)
	if err != nil {
		return 0, fmt.Errorf("wm: wal header: %w", err)
	}
	applied := 0
	for {
		body, err := fs.Next()
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			return applied, fmt.Errorf("wm: wal record %d: %w", applied, err)
		}
		d, derr := DecodeDelta(body)
		if derr != nil {
			if rerr := fs.Reject(derr); rerr == io.EOF {
				return applied, nil // undecodable torn tail
			}
			return applied, fmt.Errorf("wm: wal record %d: %w", applied, derr)
		}
		if aerr := s.ApplyLogged(d); aerr != nil {
			return applied, fmt.Errorf("wm: wal record %d: %w", applied, aerr)
		}
		applied++
	}
}

// --- framed record streams ---

// maxRecordBytes bounds a single framed record; larger length fields
// are treated as corruption (or a torn frame, if at the tail).
const maxRecordBytes = 1 << 30

// AppendFrame appends one framed record to dst: an 8-byte big-endian
// body length, a CRC32 (IEEE) of the body, then the body itself. This
// is the frame layout shared by the WAL and the storage backends'
// segment files.
func AppendFrame(dst, body []byte) []byte {
	var frame [12]byte
	binary.BigEndian.PutUint64(frame[:8], uint64(len(body)))
	binary.BigEndian.PutUint32(frame[8:], crc32.ChecksumIEEE(body))
	dst = append(dst, frame[:]...)
	return append(dst, body...)
}

// FrameScanner reads a stream of AppendFrame records, implementing the
// recovery policy for crash-truncated logs: a record that cannot be
// read in full, or that fails its checksum with nothing but zero
// bytes after it, is a torn tail and ends the scan with io.EOF; a bad
// record with real data after it is corruption and errors. ValidBytes
// reports the length of the validated prefix so callers can truncate
// the file there.
type FrameScanner struct {
	br      *bufio.Reader
	valid   int64 // bytes of validated prefix, including header
	lastLen int64 // framed size of the record Next most recently accepted
	records int
}

// NewFrameScanner checks the stream's magic header and returns a
// scanner positioned at the first record.
func NewFrameScanner(r io.Reader, magic string) (*FrameScanner, error) {
	br := bufio.NewReader(r)
	m := make([]byte, len(magic))
	if _, err := io.ReadFull(br, m); err != nil {
		return nil, err
	}
	if string(m) != magic {
		return nil, fmt.Errorf("bad magic %q", m)
	}
	return &FrameScanner{br: br, valid: int64(len(magic))}, nil
}

// Next returns the next complete, checksum-valid record body. It
// returns io.EOF at a clean end of log or at a torn tail, and an
// error for mid-log corruption.
func (fs *FrameScanner) Next() ([]byte, error) {
	var frame [12]byte
	if _, err := io.ReadFull(fs.br, frame[:]); err != nil {
		return nil, io.EOF // clean end or torn frame
	}
	length := binary.BigEndian.Uint64(frame[:8])
	sum := binary.BigEndian.Uint32(frame[8:])
	if length > maxRecordBytes {
		return nil, fs.tailOr(fmt.Errorf("absurd length %d", length))
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(fs.br, body); err != nil {
		return nil, io.EOF // torn body
	}
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fs.tailOr(fmt.Errorf("checksum mismatch"))
	}
	fs.lastLen = 12 + int64(length)
	fs.valid += fs.lastLen
	fs.records++
	return body, nil
}

// Reject reports that the body Next most recently returned failed to
// decode despite a valid checksum (a zero-filled tail checksums
// cleanly: CRC32 of an empty body is zero). It applies the same
// tail-versus-corruption policy as Next — io.EOF if the bad record is
// the tail, an error wrapping cause otherwise — and unwinds the
// record from the validated prefix.
func (fs *FrameScanner) Reject(cause error) error {
	fs.valid -= fs.lastLen
	fs.records--
	fs.lastLen = 0
	return fs.tailOr(cause)
}

// tailOr decides whether a bad record is a torn tail: if the rest of
// the stream is empty or all zero bytes (a crash mid-append can leave
// a zero-filled block), the scan ends with io.EOF; any real data
// after the bad record means mid-log corruption and cause is
// returned.
func (fs *FrameScanner) tailOr(cause error) error {
	for {
		b, err := fs.br.ReadByte()
		if err != nil {
			return io.EOF
		}
		if b != 0 {
			return fmt.Errorf("%w (followed by further data)", cause)
		}
	}
}

// ValidBytes returns the length in bytes of the validated log prefix
// (header plus every record accepted so far). After a scan ends with
// io.EOF, truncating the file to this offset removes the torn tail.
func (fs *FrameScanner) ValidBytes() int64 { return fs.valid }

// Records returns how many records have been accepted so far.
func (fs *FrameScanner) Records() int { return fs.records }

// --- encoding helpers ---

func writeU64(w *bufio.Writer, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.Write(b[:]) //nolint:errcheck // surfaced by the final Flush
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b[:]), nil
}

func appendU64(b []byte, v uint64) []byte {
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], v)
	return append(b, t[:]...)
}

func appendString(b []byte, s string) []byte {
	b = appendU64(b, uint64(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v Value) []byte {
	b = append(b, byte(v.kind))
	switch v.kind {
	case KindInt, KindBool:
		b = appendU64(b, uint64(v.i))
	case KindFloat:
		b = appendU64(b, math.Float64bits(v.f))
	case KindString, KindSymbol:
		b = appendString(b, v.s)
	}
	return b
}

func appendWME(b []byte, w *WME) []byte {
	b = appendU64(b, uint64(w.ID))
	b = appendU64(b, w.TimeTag)
	b = appendString(b, w.Class)
	names := w.AttrNames()
	b = appendU64(b, uint64(len(names)))
	for _, n := range names {
		b = appendString(b, n)
		b = appendValue(b, w.attrs[n])
	}
	return b
}

func writeWME(w *bufio.Writer, x *WME) error {
	buf := appendWME(nil, x)
	_, err := w.Write(buf)
	return err
}

// byteReader decodes from an in-memory record.
type byteReader struct {
	b   []byte
	pos int
}

func (r *byteReader) u64() (uint64, error) {
	if r.pos+8 > len(r.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *byteReader) str() (string, error) {
	n, err := r.u64()
	if err != nil {
		return "", err
	}
	if r.pos+int(n) > len(r.b) {
		return "", io.ErrUnexpectedEOF
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *byteReader) value() (Value, error) {
	if r.pos >= len(r.b) {
		return Value{}, io.ErrUnexpectedEOF
	}
	kind := Kind(r.b[r.pos])
	r.pos++
	switch kind {
	case KindNil:
		return Nil(), nil
	case KindInt:
		v, err := r.u64()
		return Value{kind: KindInt, i: int64(v)}, err
	case KindBool:
		v, err := r.u64()
		return Value{kind: KindBool, i: int64(v)}, err
	case KindFloat:
		v, err := r.u64()
		return Float(math.Float64frombits(v)), err
	case KindString, KindSymbol:
		s, err := r.str()
		return Value{kind: kind, s: s}, err
	}
	return Value{}, fmt.Errorf("wm: unknown value kind %d", kind)
}

func (r *byteReader) wme() (*WME, error) {
	id, err := r.u64()
	if err != nil {
		return nil, err
	}
	tag, err := r.u64()
	if err != nil {
		return nil, err
	}
	class, err := r.str()
	if err != nil {
		return nil, err
	}
	n, err := r.u64()
	if err != nil {
		return nil, err
	}
	attrs := make(map[string]Value, n)
	for i := uint64(0); i < n; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.value()
		if err != nil {
			return nil, err
		}
		attrs[name] = v
	}
	return &WME{ID: int64(id), TimeTag: tag, Class: class, attrs: attrs}, nil
}

// readWME decodes one WME from a stream (snapshot format).
func readWME(br *bufio.Reader) (*WME, error) {
	// Snapshot WMEs use the same layout as WAL adds; decode by
	// buffering the variable-size pieces through the stream reader.
	id, err := readU64(br)
	if err != nil {
		return nil, err
	}
	tag, err := readU64(br)
	if err != nil {
		return nil, err
	}
	class, err := readString(br)
	if err != nil {
		return nil, err
	}
	n, err := readU64(br)
	if err != nil {
		return nil, err
	}
	attrs := make(map[string]Value, n)
	for i := uint64(0); i < n; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		v, err := readValue(br)
		if err != nil {
			return nil, err
		}
		attrs[name] = v
	}
	return &WME{ID: int64(id), TimeTag: tag, Class: class, attrs: attrs}, nil
}

func readString(br *bufio.Reader) (string, error) {
	n, err := readU64(br)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("wm: absurd string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func readValue(br *bufio.Reader) (Value, error) {
	kb, err := br.ReadByte()
	if err != nil {
		return Value{}, err
	}
	kind := Kind(kb)
	switch kind {
	case KindNil:
		return Nil(), nil
	case KindInt, KindBool:
		v, err := readU64(br)
		return Value{kind: kind, i: int64(v)}, err
	case KindFloat:
		v, err := readU64(br)
		return Float(math.Float64frombits(v)), err
	case KindString, KindSymbol:
		s, err := readString(br)
		return Value{kind: kind, s: s}, err
	}
	return Value{}, fmt.Errorf("wm: unknown value kind %d", kind)
}
