package wm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
)

// Persistence gives working memory the "knowledge persistence" the
// paper's introduction motivates: point-in-time snapshots plus a
// write-ahead log of commit deltas. A store is recovered by loading
// the latest snapshot and replaying the log; every record carries a
// CRC so torn tails are detected and recovery stops cleanly at the
// last complete record.

const (
	snapshotMagic = "PDPSSNP1"
	walMagic      = "PDPSWAL1"
)

// WriteSnapshot serialises the store's current contents, including the
// ID and recency counters, so recovery continues the same sequences.
func (s *Store) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	all := s.All() // deterministic order: by ID
	writeU64(bw, uint64(s.nextID.Load()))
	writeU64(bw, s.clock.Load())
	writeU64(bw, uint64(len(all)))
	for _, wme := range all {
		if err := writeWME(bw, wme); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot reconstructs a store from a snapshot stream.
func ReadSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("wm: snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("wm: bad snapshot magic %q", magic)
	}
	s := NewStore()
	nextID, err := readU64(br)
	if err != nil {
		return nil, err
	}
	clock, err := readU64(br)
	if err != nil {
		return nil, err
	}
	count, err := readU64(br)
	if err != nil {
		return nil, err
	}
	s.nextID.Store(int64(nextID))
	s.clock.Store(clock)
	for i := uint64(0); i < count; i++ {
		w, err := readWME(br)
		if err != nil {
			return nil, fmt.Errorf("wm: snapshot WME %d: %w", i, err)
		}
		s.add(w)
	}
	return s, nil
}

// WAL is an append-only write-ahead log of commit deltas. Append is
// safe for concurrent use (engines call it from worker goroutines).
type WAL struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	n   int // records appended
}

// NewWAL starts a log on the writer, emitting the header.
func NewWAL(w io.Writer) (*WAL, error) {
	if _, err := io.WriteString(w, walMagic); err != nil {
		return nil, err
	}
	return &WAL{w: w}, nil
}

// Append writes one delta record: removes as (id, timetag) pairs and
// adds as full WMEs, framed with a length and CRC32.
func (l *WAL) Append(d *Delta) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = l.buf[:0]
	l.buf = appendU64(l.buf, uint64(len(d.Removes)))
	for _, w := range d.Removes {
		l.buf = appendU64(l.buf, uint64(w.ID))
		l.buf = appendU64(l.buf, w.TimeTag)
	}
	l.buf = appendU64(l.buf, uint64(len(d.Adds)))
	for _, w := range d.Adds {
		l.buf = appendWME(l.buf, w)
	}
	var frame [12]byte
	binary.BigEndian.PutUint64(frame[:8], uint64(len(l.buf)))
	binary.BigEndian.PutUint32(frame[8:], crc32.ChecksumIEEE(l.buf))
	if _, err := l.w.Write(frame[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(l.buf); err != nil {
		return err
	}
	l.n++
	return nil
}

// Records returns how many records have been appended.
func (l *WAL) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// ReplayWAL applies the log's deltas to the store in order and returns
// the number of complete records applied. A truncated or corrupt tail
// ends replay without error (standard recovery semantics); corruption
// before the tail is reported.
func ReplayWAL(r io.Reader, s *Store) (int, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("wm: wal header: %w", err)
	}
	if string(magic) != walMagic {
		return 0, fmt.Errorf("wm: bad wal magic %q", magic)
	}
	applied := 0
	for {
		var frame [12]byte
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			return applied, nil // clean or torn end
		}
		length := binary.BigEndian.Uint64(frame[:8])
		sum := binary.BigEndian.Uint32(frame[8:])
		if length > 1<<30 {
			return applied, fmt.Errorf("wm: wal record %d: absurd length %d", applied, length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(br, body); err != nil {
			return applied, nil // torn tail
		}
		if crc32.ChecksumIEEE(body) != sum {
			return applied, fmt.Errorf("wm: wal record %d: checksum mismatch", applied)
		}
		if err := s.applyWALRecord(body); err != nil {
			return applied, fmt.Errorf("wm: wal record %d: %w", applied, err)
		}
		applied++
	}
}

// applyWALRecord re-applies a logged delta exactly (preserving IDs and
// time tags rather than re-assigning them). Recovery is sequential, so
// the high-water counter updates need no compare-and-swap loop.
func (s *Store) applyWALRecord(body []byte) error {
	p := &byteReader{b: body}
	nRem, err := p.u64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nRem; i++ {
		id, err := p.u64()
		if err != nil {
			return err
		}
		if _, err := p.u64(); err != nil { // timetag, informational
			return err
		}
		if _, ok := s.Remove(int64(id)); !ok {
			return fmt.Errorf("remove of absent WME %d", id)
		}
	}
	nAdd, err := p.u64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nAdd; i++ {
		w, err := p.wme()
		if err != nil {
			return err
		}
		s.add(w)
		if w.ID > s.nextID.Load() {
			s.nextID.Store(w.ID)
		}
		if w.TimeTag > s.clock.Load() {
			s.clock.Store(w.TimeTag)
		}
	}
	return nil
}

// --- encoding helpers ---

func writeU64(w *bufio.Writer, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.Write(b[:]) //nolint:errcheck // surfaced by the final Flush
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b[:]), nil
}

func appendU64(b []byte, v uint64) []byte {
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], v)
	return append(b, t[:]...)
}

func appendString(b []byte, s string) []byte {
	b = appendU64(b, uint64(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v Value) []byte {
	b = append(b, byte(v.kind))
	switch v.kind {
	case KindInt, KindBool:
		b = appendU64(b, uint64(v.i))
	case KindFloat:
		b = appendU64(b, math.Float64bits(v.f))
	case KindString, KindSymbol:
		b = appendString(b, v.s)
	}
	return b
}

func appendWME(b []byte, w *WME) []byte {
	b = appendU64(b, uint64(w.ID))
	b = appendU64(b, w.TimeTag)
	b = appendString(b, w.Class)
	names := w.AttrNames()
	b = appendU64(b, uint64(len(names)))
	for _, n := range names {
		b = appendString(b, n)
		b = appendValue(b, w.attrs[n])
	}
	return b
}

func writeWME(w *bufio.Writer, x *WME) error {
	buf := appendWME(nil, x)
	_, err := w.Write(buf)
	return err
}

// byteReader decodes from an in-memory record.
type byteReader struct {
	b   []byte
	pos int
}

func (r *byteReader) u64() (uint64, error) {
	if r.pos+8 > len(r.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *byteReader) str() (string, error) {
	n, err := r.u64()
	if err != nil {
		return "", err
	}
	if r.pos+int(n) > len(r.b) {
		return "", io.ErrUnexpectedEOF
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *byteReader) value() (Value, error) {
	if r.pos >= len(r.b) {
		return Value{}, io.ErrUnexpectedEOF
	}
	kind := Kind(r.b[r.pos])
	r.pos++
	switch kind {
	case KindNil:
		return Nil(), nil
	case KindInt:
		v, err := r.u64()
		return Value{kind: KindInt, i: int64(v)}, err
	case KindBool:
		v, err := r.u64()
		return Value{kind: KindBool, i: int64(v)}, err
	case KindFloat:
		v, err := r.u64()
		return Float(math.Float64frombits(v)), err
	case KindString, KindSymbol:
		s, err := r.str()
		return Value{kind: kind, s: s}, err
	}
	return Value{}, fmt.Errorf("wm: unknown value kind %d", kind)
}

func (r *byteReader) wme() (*WME, error) {
	id, err := r.u64()
	if err != nil {
		return nil, err
	}
	tag, err := r.u64()
	if err != nil {
		return nil, err
	}
	class, err := r.str()
	if err != nil {
		return nil, err
	}
	n, err := r.u64()
	if err != nil {
		return nil, err
	}
	attrs := make(map[string]Value, n)
	for i := uint64(0); i < n; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.value()
		if err != nil {
			return nil, err
		}
		attrs[name] = v
	}
	return &WME{ID: int64(id), TimeTag: tag, Class: class, attrs: attrs}, nil
}

// readWME decodes one WME from a stream (snapshot format).
func readWME(br *bufio.Reader) (*WME, error) {
	// Snapshot WMEs use the same layout as WAL adds; decode by
	// buffering the variable-size pieces through the stream reader.
	id, err := readU64(br)
	if err != nil {
		return nil, err
	}
	tag, err := readU64(br)
	if err != nil {
		return nil, err
	}
	class, err := readString(br)
	if err != nil {
		return nil, err
	}
	n, err := readU64(br)
	if err != nil {
		return nil, err
	}
	attrs := make(map[string]Value, n)
	for i := uint64(0); i < n; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		v, err := readValue(br)
		if err != nil {
			return nil, err
		}
		attrs[name] = v
	}
	return &WME{ID: int64(id), TimeTag: tag, Class: class, attrs: attrs}, nil
}

func readString(br *bufio.Reader) (string, error) {
	n, err := readU64(br)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("wm: absurd string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func readValue(br *bufio.Reader) (Value, error) {
	kb, err := br.ReadByte()
	if err != nil {
		return Value{}, err
	}
	kind := Kind(kb)
	switch kind {
	case KindNil:
		return Nil(), nil
	case KindInt, KindBool:
		v, err := readU64(br)
		return Value{kind: kind, i: int64(v)}, err
	case KindFloat:
		v, err := readU64(br)
		return Float(math.Float64frombits(v)), err
	case KindString, KindSymbol:
		s, err := readString(br)
		return Value{kind: kind, s: s}, err
	}
	return Value{}, fmt.Errorf("wm: unknown value kind %d", kind)
}

