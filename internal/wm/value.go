// Package wm implements the working memory of a database production
// system: typed values, working memory elements (WMEs), an indexed
// tuple store, and transactions that stage RHS effects and apply them
// atomically at commit, as required by the dynamic execution approach
// of Srivastava et al. (ICDE 1990), Section 4.2.
package wm

import (
	"fmt"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The value kinds supported by working memory attributes.
const (
	KindNil Kind = iota
	KindInt
	KindFloat
	KindString
	KindSymbol
	KindBool
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindSymbol:
		return "symbol"
	case KindBool:
		return "bool"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is an immutable scalar stored in a WME attribute. The zero
// Value has KindNil and compares equal only to other nil values.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Sym returns a symbol value. Symbols are interned identifiers in the
// rule language (unquoted atoms); they compare equal only to symbols.
func Sym(v string) Value { return Value{kind: KindSymbol, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	b := int64(0)
	if v {
		b = 1
	}
	return Value{kind: KindBool, i: b}
}

// Nil returns the nil value.
func Nil() Value { return Value{} }

// Kind reports the value's dynamic kind.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether the value is the nil value.
func (v Value) IsNil() bool { return v.kind == KindNil }

// AsInt returns the integer payload; it is only meaningful for KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the numeric payload as a float64 for KindInt and
// KindFloat values.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload for KindString and KindSymbol.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload; it is only meaningful for KindBool.
func (v Value) AsBool() bool { return v.i != 0 }

// Numeric reports whether the value is an int or float.
func (v Value) Numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports whether two values are equal. Ints and floats compare
// numerically across kinds; all other kinds require an exact kind match.
func (v Value) Equal(o Value) bool {
	if v.Numeric() && o.Numeric() {
		if v.kind == KindInt && o.kind == KindInt {
			return v.i == o.i
		}
		return v.AsFloat() == o.AsFloat()
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNil:
		return true
	case KindString, KindSymbol:
		return v.s == o.s
	case KindBool:
		return v.i == o.i
	}
	return false
}

// Compare orders two values. Numbers order numerically; strings and
// symbols lexically. Values of incomparable kinds order by kind, so
// Compare is a total order usable for sorting. It returns -1, 0 or +1.
func (v Value) Compare(o Value) int {
	if v.Numeric() && o.Numeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString, KindSymbol:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		}
		return 0
	case KindBool:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	}
	return 0
}

// String renders the value in rule-language syntax: strings are
// quoted, symbols bare, booleans as true/false.
func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "nil"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindSymbol:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	}
	return "?"
}
