package wm

import (
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
)

// numShards is the class-shard count of a Store. Classes are hashed
// across shards, so readers and writers of different classes never
// touch the same mutex.
const numShards = 16

// classShard holds the per-class tuple maps of the classes that hash
// to it.
type classShard struct {
	mu      sync.RWMutex
	byClass map[string]map[int64]*WME
}

// Store is the shared working memory: an indexed, concurrency-safe
// tuple store. All mutation goes through Deltas (directly via Apply,
// or staged in a Txn), so the match phase can be driven incrementally
// from the exact set of changes each production commit makes.
//
// The store is sharded by WME class: each shard has its own RWMutex
// over its classes' tuple maps, the ID→WME map is a lock-free
// sync.Map, and the ID/recency counters are atomics. A mutation is
// atomic per class; modifies additionally replace the ID entry in
// place, so a concurrent Get never observes the tuple absent
// mid-modify.
type Store struct {
	nextID atomic.Int64
	clock  atomic.Uint64
	count  atomic.Int64

	byID   sync.Map // int64 → *WME, current versions
	shards [numShards]classShard
	seed   maphash.Seed

	ixMu    sync.RWMutex
	indexes map[string]*Index

	// met, when non-nil, counts per-class reads and writes (obs).
	met *storeMetrics
}

// NewStore returns an empty working memory.
func NewStore() *Store {
	s := &Store{seed: maphash.MakeSeed()}
	for i := range s.shards {
		s.shards[i].byClass = make(map[string]map[int64]*WME)
	}
	return s
}

// shardFor maps a class to its shard.
func (s *Store) shardFor(class string) *classShard {
	return &s.shards[maphash.String(s.seed, class)%numShards]
}

// Delta is an atomic set of working-memory changes: the removed WMEs
// (prior versions) and the added WMEs (new versions). A modify appears
// as a remove of the old version plus an add carrying the same ID.
type Delta struct {
	Removes []*WME
	Adds    []*WME
}

// Empty reports whether the delta changes nothing.
func (d *Delta) Empty() bool { return len(d.Removes) == 0 && len(d.Adds) == 0 }

// Invert returns the delta that undoes d.
func (d *Delta) Invert() *Delta {
	inv := &Delta{Adds: make([]*WME, len(d.Removes)), Removes: make([]*WME, len(d.Adds))}
	copy(inv.Adds, d.Removes)
	copy(inv.Removes, d.Adds)
	return inv
}

// allocID reserves a fresh WME identity.
func (s *Store) allocID() int64 { return s.nextID.Add(1) }

// add inserts a fully-stamped WME into its class shard, the ID map and
// the indexes.
func (s *Store) add(w *WME) {
	sh := s.shardFor(w.Class)
	sh.mu.Lock()
	cls := sh.byClass[w.Class]
	if cls == nil {
		cls = make(map[int64]*WME)
		sh.byClass[w.Class] = cls
	}
	cls[w.ID] = w
	s.byID.Store(w.ID, w)
	s.notifyIndexesAdd(w)
	sh.mu.Unlock()
	s.count.Add(1)
	s.met.write(w.Class)
}

// Insert creates a WME with the given class and attributes, assigns it
// a fresh ID and time tag, and adds it to the store.
func (s *Store) Insert(class string, attrs map[string]Value) *WME {
	w := &WME{ID: s.nextID.Add(1), TimeTag: s.clock.Add(1), Class: class, attrs: copyAttrs(attrs)}
	s.add(w)
	return w
}

// Get returns the current version of the WME with the given ID.
func (s *Store) Get(id int64) (*WME, bool) {
	v, ok := s.byID.Load(id)
	if !ok {
		return nil, false
	}
	w := v.(*WME)
	s.met.read(w.Class)
	return w, true
}

// Remove deletes the WME with the given ID and returns the removed
// version, or false if it is not present.
func (s *Store) Remove(id int64) (*WME, bool) {
	v, ok := s.byID.Load(id)
	if !ok {
		return nil, false
	}
	sh := s.shardFor(v.(*WME).Class)
	sh.mu.Lock()
	cur, ok := sh.byClass[v.(*WME).Class][id] // re-check under the shard lock
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	s.removeShardLocked(sh, cur)
	sh.mu.Unlock()
	s.count.Add(-1)
	s.met.write(cur.Class)
	return cur, true
}

// removeShardLocked deletes a current version from its class map, the
// ID map and the indexes. Caller holds sh.mu.
func (s *Store) removeShardLocked(sh *classShard, w *WME) {
	if cls := sh.byClass[w.Class]; cls != nil {
		delete(cls, w.ID)
		if len(cls) == 0 {
			delete(sh.byClass, w.Class)
		}
	}
	s.byID.Delete(w.ID)
	s.notifyIndexesRemove(w)
}

// Modify replaces the attributes of the WME with the given ID,
// returning the old and new versions. The new version keeps the ID but
// receives a fresh time tag. Updates with nil values delete attributes.
func (s *Store) Modify(id int64, updates map[string]Value) (old, new_ *WME, err error) {
	v, ok := s.byID.Load(id)
	if !ok {
		return nil, nil, fmt.Errorf("wm: modify: no WME with id %d", id)
	}
	class := v.(*WME).Class
	sh := s.shardFor(class)
	sh.mu.Lock()
	cur, ok := sh.byClass[class][id]
	if !ok {
		sh.mu.Unlock()
		return nil, nil, fmt.Errorf("wm: modify: no WME with id %d", id)
	}
	n := cur.WithAttrs(updates)
	n.TimeTag = s.clock.Add(1)
	sh.byClass[class][id] = n
	s.byID.Store(id, n) // in-place replace: Get never sees the ID absent
	s.notifyIndexesRemove(cur)
	s.notifyIndexesAdd(n)
	sh.mu.Unlock()
	s.met.write(class)
	return cur, n, nil
}

// Apply applies a delta: all removes, then all adds, atomically per
// class shard. Adds whose ID is zero are assigned fresh IDs; all adds
// receive fresh time tags, stamped in delta order so sequential runs
// stay deterministic. It returns the applied delta with final IDs and
// time tags filled in. Removing an absent WME is an error and nothing
// is applied. A remove+add pair sharing an ID (a modify) replaces the
// ID entry in place, so concurrent readers of other classes see the
// tuple present throughout.
func (s *Store) Apply(d *Delta) (*Delta, error) {
	removes := make([]*WME, len(d.Removes))
	for i, r := range d.Removes {
		v, ok := s.byID.Load(r.ID)
		if !ok {
			return nil, fmt.Errorf("wm: apply: remove of absent WME %d", r.ID)
		}
		removes[i] = v.(*WME)
	}
	adds := make([]*WME, len(d.Adds))
	for i, a := range d.Adds {
		w := &WME{ID: a.ID, Class: a.Class, attrs: copyAttrs(a.attrs)}
		if w.ID == 0 {
			w.ID = s.nextID.Add(1)
		}
		w.TimeTag = s.clock.Add(1)
		adds[i] = w
	}
	readded := make(map[int64]bool, len(adds))
	for _, w := range adds {
		readded[w.ID] = true
	}

	type ops struct{ rem, add []*WME }
	byShard := make(map[*classShard]*ops)
	group := func(w *WME) *ops {
		sh := s.shardFor(w.Class)
		o := byShard[sh]
		if o == nil {
			o = &ops{}
			byShard[sh] = o
		}
		return o
	}
	for _, w := range removes {
		o := group(w)
		o.rem = append(o.rem, w)
	}
	for _, w := range adds {
		o := group(w)
		o.add = append(o.add, w)
	}
	for sh, o := range byShard {
		sh.mu.Lock()
		for _, w := range o.rem {
			if cls := sh.byClass[w.Class]; cls != nil {
				delete(cls, w.ID)
				if len(cls) == 0 {
					delete(sh.byClass, w.Class)
				}
			}
			if !readded[w.ID] {
				s.byID.Delete(w.ID)
			}
			s.notifyIndexesRemove(w)
		}
		for _, w := range o.add {
			cls := sh.byClass[w.Class]
			if cls == nil {
				cls = make(map[int64]*WME)
				sh.byClass[w.Class] = cls
			}
			cls[w.ID] = w
			s.byID.Store(w.ID, w)
			s.notifyIndexesAdd(w)
		}
		sh.mu.Unlock()
	}
	s.count.Add(int64(len(adds)) - int64(len(removes)))
	if s.met != nil {
		for _, w := range removes {
			s.met.write(w.Class)
		}
		for _, w := range adds {
			s.met.write(w.Class)
		}
	}
	return &Delta{Removes: removes, Adds: adds}, nil
}

// Len reports the number of WMEs in the store.
func (s *Store) Len() int { return int(s.count.Load()) }

// ByClass returns the current WMEs of a class, ordered by ID.
func (s *Store) ByClass(class string) []*WME {
	sh := s.shardFor(class)
	sh.mu.RLock()
	out := make([]*WME, 0, len(sh.byClass[class]))
	for _, w := range sh.byClass[class] {
		out = append(out, w)
	}
	sh.mu.RUnlock()
	sortWMEs(out)
	s.met.read(class)
	return out
}

// Classes returns the names of the non-empty classes in sorted order.
func (s *Store) Classes() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for c := range sh.byClass {
			out = append(out, c)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// All returns every WME in the store, ordered by ID.
func (s *Store) All() []*WME {
	var out []*WME
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, cls := range sh.byClass {
			for _, w := range cls {
				out = append(out, w)
			}
		}
		sh.mu.RUnlock()
	}
	sortWMEs(out)
	return out
}

// Clone returns a deep copy of the store (WMEs themselves are shared;
// they are immutable). Indexes are not cloned.
func (s *Store) Clone() *Store {
	c := NewStore()
	c.nextID.Store(s.nextID.Load())
	c.clock.Store(s.clock.Load())
	for _, w := range s.All() {
		sh := c.shardFor(w.Class)
		cls := sh.byClass[w.Class]
		if cls == nil {
			cls = make(map[int64]*WME)
			sh.byClass[w.Class] = cls
		}
		cls[w.ID] = w
		c.byID.Store(w.ID, w)
		c.count.Add(1)
	}
	return c
}

// Clock returns the current recency counter.
func (s *Store) Clock() uint64 { return s.clock.Load() }

func sortWMEs(ws []*WME) {
	sort.Slice(ws, func(i, j int) bool { return ws[i].ID < ws[j].ID })
}
