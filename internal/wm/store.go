package wm

import (
	"fmt"
	"sort"
	"sync"
)

// Store is the shared working memory: an indexed, concurrency-safe
// tuple store. All mutation goes through Deltas (directly via Apply,
// or staged in a Txn), so the match phase can be driven incrementally
// from the exact set of changes each production commit makes.
type Store struct {
	mu      sync.RWMutex
	byID    map[int64]*WME
	byClass map[string]map[int64]*WME
	indexes map[string]*Index
	nextID  int64
	clock   uint64
}

// NewStore returns an empty working memory.
func NewStore() *Store {
	return &Store{
		byID:    make(map[int64]*WME),
		byClass: make(map[string]map[int64]*WME),
	}
}

// Delta is an atomic set of working-memory changes: the removed WMEs
// (prior versions) and the added WMEs (new versions). A modify appears
// as a remove of the old version plus an add carrying the same ID.
type Delta struct {
	Removes []*WME
	Adds    []*WME
}

// Empty reports whether the delta changes nothing.
func (d *Delta) Empty() bool { return len(d.Removes) == 0 && len(d.Adds) == 0 }

// Invert returns the delta that undoes d.
func (d *Delta) Invert() *Delta {
	inv := &Delta{Adds: make([]*WME, len(d.Removes)), Removes: make([]*WME, len(d.Adds))}
	copy(inv.Adds, d.Removes)
	copy(inv.Removes, d.Adds)
	return inv
}

// allocID reserves a fresh WME identity.
func (s *Store) allocID() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return s.nextID
}

// Insert creates a WME with the given class and attributes, assigns it
// a fresh ID and time tag, and adds it to the store.
func (s *Store) Insert(class string, attrs map[string]Value) *WME {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.clock++
	w := &WME{ID: s.nextID, TimeTag: s.clock, Class: class, attrs: copyAttrs(attrs)}
	s.addLocked(w)
	return w
}

// Get returns the current version of the WME with the given ID.
func (s *Store) Get(id int64) (*WME, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w, ok := s.byID[id]
	return w, ok
}

// Remove deletes the WME with the given ID and returns the removed
// version, or false if it is not present.
func (s *Store) Remove(id int64) (*WME, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	s.removeLocked(w)
	return w, true
}

// Modify replaces the attributes of the WME with the given ID,
// returning the old and new versions. The new version keeps the ID but
// receives a fresh time tag. Updates with nil values delete attributes.
func (s *Store) Modify(id int64, updates map[string]Value) (old, new_ *WME, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.byID[id]
	if !ok {
		return nil, nil, fmt.Errorf("wm: modify: no WME with id %d", id)
	}
	s.removeLocked(w)
	n := w.WithAttrs(updates)
	s.clock++
	n.TimeTag = s.clock
	s.addLocked(n)
	return w, n, nil
}

// Apply applies a delta atomically: all removes, then all adds. Adds
// whose ID is zero are assigned fresh IDs; all adds receive fresh time
// tags. It returns the applied delta with final IDs and time tags
// filled in. Removing an absent WME is an error and nothing is applied.
func (s *Store) Apply(d *Delta) (*Delta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range d.Removes {
		cur, ok := s.byID[r.ID]
		if !ok {
			return nil, fmt.Errorf("wm: apply: remove of absent WME %d", r.ID)
		}
		_ = cur
	}
	applied := &Delta{}
	for _, r := range d.Removes {
		cur := s.byID[r.ID]
		s.removeLocked(cur)
		applied.Removes = append(applied.Removes, cur)
	}
	for _, a := range d.Adds {
		w := &WME{ID: a.ID, Class: a.Class, attrs: copyAttrs(a.attrs)}
		if w.ID == 0 {
			s.nextID++
			w.ID = s.nextID
		}
		s.clock++
		w.TimeTag = s.clock
		s.addLocked(w)
		applied.Adds = append(applied.Adds, w)
	}
	return applied, nil
}

func (s *Store) addLocked(w *WME) {
	s.byID[w.ID] = w
	cls := s.byClass[w.Class]
	if cls == nil {
		cls = make(map[int64]*WME)
		s.byClass[w.Class] = cls
	}
	cls[w.ID] = w
	s.notifyIndexesAdd(w)
}

func (s *Store) removeLocked(w *WME) {
	delete(s.byID, w.ID)
	if cls := s.byClass[w.Class]; cls != nil {
		delete(cls, w.ID)
		if len(cls) == 0 {
			delete(s.byClass, w.Class)
		}
	}
	s.notifyIndexesRemove(w)
}

// Len reports the number of WMEs in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}

// ByClass returns the current WMEs of a class, ordered by ID.
func (s *Store) ByClass(class string) []*WME {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*WME, 0, len(s.byClass[class]))
	for _, w := range s.byClass[class] {
		out = append(out, w)
	}
	sortWMEs(out)
	return out
}

// Classes returns the names of the non-empty classes in sorted order.
func (s *Store) Classes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byClass))
	for c := range s.byClass {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// All returns every WME in the store, ordered by ID.
func (s *Store) All() []*WME {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*WME, 0, len(s.byID))
	for _, w := range s.byID {
		out = append(out, w)
	}
	sortWMEs(out)
	return out
}

// Clone returns a deep copy of the store (WMEs themselves are shared;
// they are immutable).
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := NewStore()
	c.nextID = s.nextID
	c.clock = s.clock
	for id, w := range s.byID {
		c.byID[id] = w
		cls := c.byClass[w.Class]
		if cls == nil {
			cls = make(map[int64]*WME)
			c.byClass[w.Class] = cls
		}
		cls[id] = w
	}
	return c
}

// Clock returns the current recency counter.
func (s *Store) Clock() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.clock
}

func sortWMEs(ws []*WME) {
	sort.Slice(ws, func(i, j int) bool { return ws[i].ID < ws[j].ID })
}
