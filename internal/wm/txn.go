package wm

import "fmt"

// Txn stages the RHS effects of one production firing. Reads see the
// transaction's own staged changes layered over the underlying store
// (read-your-writes); nothing touches the shared store until Commit,
// which applies all changes as one atomic Delta — the paper's
// requirement that "the WM content is atomically updated only when a
// production reaches its commit point" (Section 4.2).
//
// A Txn is used by a single goroutine; the store it commits into is
// safe for concurrent use.
type Txn struct {
	store    *Store
	staged   map[int64]*WME // staged inserts and modified versions
	removed  map[int64]*WME // prior versions shadowed by remove/modify
	order    []int64        // insertion order of staged adds, for stable deltas
	done     bool
	readOnly bool
}

// Begin starts a transaction over the store.
func (s *Store) Begin() *Txn {
	return &Txn{
		store:   s,
		staged:  make(map[int64]*WME),
		removed: make(map[int64]*WME),
	}
}

// Get returns the WME with the given ID as seen by this transaction.
func (t *Txn) Get(id int64) (*WME, bool) {
	if w, ok := t.staged[id]; ok {
		return w, true
	}
	if _, gone := t.removed[id]; gone {
		return nil, false
	}
	return t.store.Get(id)
}

// ByClass returns the WMEs of a class as seen by this transaction,
// ordered by ID.
func (t *Txn) ByClass(class string) []*WME {
	seen := make(map[int64]bool)
	var out []*WME
	for _, w := range t.staged {
		if w.Class == class {
			out = append(out, w)
			seen[w.ID] = true
		}
	}
	for _, w := range t.store.ByClass(class) {
		if seen[w.ID] {
			continue
		}
		if _, gone := t.removed[w.ID]; gone {
			continue
		}
		if _, shadowed := t.staged[w.ID]; shadowed {
			continue
		}
		out = append(out, w)
	}
	sortWMEs(out)
	return out
}

// Insert stages a new WME. The returned WME has a real (reserved) ID
// but is not visible outside the transaction until commit.
func (t *Txn) Insert(class string, attrs map[string]Value) *WME {
	id := t.store.allocID()
	w := &WME{ID: id, Class: class, attrs: copyAttrs(attrs)}
	t.staged[id] = w
	t.order = append(t.order, id)
	return w
}

// Remove stages deletion of the WME with the given ID.
func (t *Txn) Remove(id int64) error {
	if w, ok := t.staged[id]; ok {
		delete(t.staged, id)
		// If this staged entry shadowed a store version, keep that
		// version in removed so the delta still deletes it.
		_ = w
		if _, wasStoreWME := t.removed[id]; wasStoreWME {
			return nil
		}
		// A pure staged insert: drop it from the add order too.
		for i, oid := range t.order {
			if oid == id {
				t.order = append(t.order[:i], t.order[i+1:]...)
				break
			}
		}
		return nil
	}
	w, ok := t.store.Get(id)
	if !ok {
		return fmt.Errorf("wm: txn remove: no WME with id %d", id)
	}
	t.removed[id] = w
	return nil
}

// Modify stages an attribute update of the WME with the given ID and
// returns the staged new version. Nil values delete attributes.
func (t *Txn) Modify(id int64, updates map[string]Value) (*WME, error) {
	cur, ok := t.Get(id)
	if !ok {
		return nil, fmt.Errorf("wm: txn modify: no WME with id %d", id)
	}
	n := cur.WithAttrs(updates)
	if _, isStaged := t.staged[id]; !isStaged {
		t.removed[id] = cur
		t.order = append(t.order, id)
	}
	t.staged[id] = n
	return n, nil
}

// Delta returns the pending changes as a Delta without committing.
func (t *Txn) Delta() *Delta {
	d := &Delta{}
	for _, w := range t.removed {
		d.Removes = append(d.Removes, w)
	}
	sortWMEs(d.Removes)
	for _, id := range t.order {
		if w, ok := t.staged[id]; ok {
			d.Adds = append(d.Adds, w)
		}
	}
	return d
}

// Commit applies the staged changes to the store atomically and
// returns the applied delta (with final time tags). Committing an
// already-finished transaction is an error.
func (t *Txn) Commit() (*Delta, error) {
	if t.done {
		return nil, fmt.Errorf("wm: commit of finished transaction")
	}
	t.done = true
	return t.store.Apply(t.Delta())
}

// Abort discards the staged changes. It is safe to call multiple times.
func (t *Txn) Abort() { t.done = true }

// Pending reports the number of staged operations.
func (t *Txn) Pending() int { return len(t.staged) + len(t.removed) }
