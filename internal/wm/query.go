package wm

import (
	"fmt"
	"sort"
	"sync"
)

// Index is a secondary hash index over one attribute of one class,
// maintained incrementally as the store changes. The paper situates
// production systems over a database; equality-selective condition
// elements resolve through indexes instead of class scans.
type Index struct {
	class string
	attr  string

	mu      sync.RWMutex
	buckets map[Value][]*WME
}

// Class returns the indexed class.
func (ix *Index) Class() string { return ix.class }

// Attr returns the indexed attribute.
func (ix *Index) Attr() string { return ix.attr }

// Lookup returns the current WMEs of the class whose attribute equals
// the value, ordered by ID. WMEs lacking the attribute are not indexed.
func (ix *Index) Lookup(v Value) []*WME {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := append([]*WME(nil), ix.buckets[bucketKey(v)]...)
	sortWMEs(out)
	return out
}

// Len returns the number of indexed WMEs.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, b := range ix.buckets {
		n += len(b)
	}
	return n
}

// bucketKey normalises numerically equal values (Int(3) vs Float(3))
// to one bucket so Lookup agrees with Value.Equal.
func bucketKey(v Value) Value {
	if v.Kind() == KindFloat {
		f := v.AsFloat()
		if f == float64(int64(f)) {
			return Int(int64(f))
		}
	}
	return v
}

func (ix *Index) add(w *WME) {
	if w.Class != ix.class || !w.HasAttr(ix.attr) {
		return
	}
	k := bucketKey(w.Attr(ix.attr))
	ix.mu.Lock()
	ix.buckets[k] = append(ix.buckets[k], w)
	ix.mu.Unlock()
}

func (ix *Index) remove(w *WME) {
	if w.Class != ix.class || !w.HasAttr(ix.attr) {
		return
	}
	k := bucketKey(w.Attr(ix.attr))
	ix.mu.Lock()
	b := ix.buckets[k]
	for i, x := range b {
		if x == w {
			ix.buckets[k] = append(b[:i], b[i+1:]...)
			break
		}
	}
	if len(ix.buckets[k]) == 0 {
		delete(ix.buckets, k)
	}
	ix.mu.Unlock()
}

// CreateIndex builds (or returns the existing) index on (class, attr),
// back-filled from current contents and maintained on every change.
// The class's shard lock is held across registration and back-fill so
// no concurrent mutation of the class is missed (lock order:
// shard.mu → ixMu, matching the notify paths).
func (s *Store) CreateIndex(class, attr string) (*Index, error) {
	if class == "" || attr == "" {
		return nil, fmt.Errorf("wm: index needs class and attribute")
	}
	sh := s.shardFor(class)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.ixMu.Lock()
	defer s.ixMu.Unlock()
	key := class + "^" + attr
	if ix, ok := s.indexes[key]; ok {
		return ix, nil
	}
	ix := &Index{class: class, attr: attr, buckets: make(map[Value][]*WME)}
	for _, w := range sh.byClass[class] {
		ix.add(w)
	}
	if s.indexes == nil {
		s.indexes = make(map[string]*Index)
	}
	s.indexes[key] = ix
	return ix, nil
}

// Indexes returns the store's indexes, sorted by class then attribute.
func (s *Store) Indexes() []*Index {
	s.ixMu.RLock()
	defer s.ixMu.RUnlock()
	out := make([]*Index, 0, len(s.indexes))
	for _, ix := range s.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].class != out[j].class {
			return out[i].class < out[j].class
		}
		return out[i].attr < out[j].attr
	})
	return out
}

// notifyIndexesAdd/Remove are called with the mutated class's shard
// lock held; index maintenance takes each index's own lock, so readers
// of one index never block the whole store.
func (s *Store) notifyIndexesAdd(w *WME) {
	s.ixMu.RLock()
	defer s.ixMu.RUnlock()
	for _, ix := range s.indexes {
		ix.add(w)
	}
}

func (s *Store) notifyIndexesRemove(w *WME) {
	s.ixMu.RLock()
	defer s.ixMu.RUnlock()
	for _, ix := range s.indexes {
		ix.remove(w)
	}
}

// Pred is a tuple predicate used by Select.
type Pred func(*WME) bool

// AttrEq returns a predicate testing attribute equality.
func AttrEq(attr string, v Value) Pred {
	return func(w *WME) bool { return w.HasAttr(attr) && w.Attr(attr).Equal(v) }
}

// AttrCmp returns a predicate testing an ordered comparison; cmp is
// the sign Compare must return (-1 less, 0 equal, 1 greater).
func AttrCmp(attr string, cmp int, v Value) Pred {
	return func(w *WME) bool {
		if !w.HasAttr(attr) {
			return false
		}
		return w.Attr(attr).Compare(v) == cmp
	}
}

// Select returns the class's WMEs satisfying every predicate, ordered
// by ID, resolving through an equality index when one matches the
// first predicate's attribute (pass the index explicitly via
// SelectIndexed for guaranteed index use).
func (s *Store) Select(class string, preds ...Pred) []*WME {
	var out []*WME
	for _, w := range s.ByClass(class) {
		if allPreds(w, preds) {
			out = append(out, w)
		}
	}
	return out
}

// SelectIndexed resolves an equality through the index, then applies
// the remaining predicates.
func SelectIndexed(ix *Index, v Value, preds ...Pred) []*WME {
	var out []*WME
	for _, w := range ix.Lookup(v) {
		if allPreds(w, preds) {
			out = append(out, w)
		}
	}
	return out
}

func allPreds(w *WME, preds []Pred) bool {
	for _, p := range preds {
		if !p(w) {
			return false
		}
	}
	return true
}

// Count returns how many WMEs of the class satisfy the predicates.
func (s *Store) Count(class string, preds ...Pred) int {
	n := 0
	for _, w := range s.ByClass(class) {
		if allPreds(w, preds) {
			n++
		}
	}
	return n
}
