package wm

import "testing"

func TestTxnReadYourWrites(t *testing.T) {
	s := NewStore()
	base := s.Insert("part", attrs("status", "raw"))

	tx := s.Begin()
	staged := tx.Insert("part", attrs("status", "new"))
	if _, ok := tx.Get(staged.ID); !ok {
		t.Fatal("txn must see its own insert")
	}
	if _, ok := s.Get(staged.ID); ok {
		t.Fatal("store must not see staged insert before commit")
	}
	if got := tx.ByClass("part"); len(got) != 2 {
		t.Fatalf("txn ByClass = %d WMEs, want 2", len(got))
	}

	if _, err := tx.Modify(base.ID, attrs("status", "done")); err != nil {
		t.Fatal(err)
	}
	got, _ := tx.Get(base.ID)
	if !got.Attr("status").Equal(Sym("done")) {
		t.Fatal("txn must see its own modify")
	}
	storeView, _ := s.Get(base.ID)
	if !storeView.Attr("status").Equal(Sym("raw")) {
		t.Fatal("store must not see staged modify")
	}

	d, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Removes) != 1 || len(d.Adds) != 2 {
		t.Fatalf("delta = %d removes, %d adds; want 1, 2", len(d.Removes), len(d.Adds))
	}
	after, _ := s.Get(base.ID)
	if !after.Attr("status").Equal(Sym("done")) {
		t.Fatal("commit did not apply modify")
	}
	if _, ok := s.Get(staged.ID); !ok {
		t.Fatal("commit did not apply insert")
	}
}

func TestTxnAbortDiscards(t *testing.T) {
	s := NewStore()
	base := s.Insert("x", attrs("v", 1))
	tx := s.Begin()
	tx.Insert("x", attrs("v", 2))
	if err := tx.Remove(base.ID); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if s.Len() != 1 {
		t.Fatalf("abort leaked changes: Len = %d", s.Len())
	}
	if _, err := tx.Commit(); err == nil {
		t.Fatal("commit after abort should fail")
	}
}

func TestTxnRemoveStagedInsert(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	w := tx.Insert("x", attrs("v", 1))
	if err := tx.Remove(w.ID); err != nil {
		t.Fatal(err)
	}
	d := tx.Delta()
	if !d.Empty() {
		t.Fatalf("insert+remove should yield empty delta, got %+v", d)
	}
}

func TestTxnRemoveThenCommit(t *testing.T) {
	s := NewStore()
	a := s.Insert("x", attrs("v", 1))
	tx := s.Begin()
	if err := tx.Remove(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := tx.Get(a.ID); ok {
		t.Fatal("txn must not see removed WME")
	}
	if got := tx.ByClass("x"); len(got) != 0 {
		t.Fatal("ByClass must not include removed WME")
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatal("remove not committed")
	}
}

func TestTxnModifyStagedInsert(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	w := tx.Insert("x", attrs("v", 1))
	if _, err := tx.Modify(w.ID, attrs("v", 2)); err != nil {
		t.Fatal(err)
	}
	d := tx.Delta()
	if len(d.Removes) != 0 || len(d.Adds) != 1 {
		t.Fatalf("modify of staged insert: delta = %d removes, %d adds; want 0,1", len(d.Removes), len(d.Adds))
	}
	if !d.Adds[0].Attr("v").Equal(Int(2)) {
		t.Fatal("staged modify lost")
	}
}

func TestTxnModifyOfRemovedFails(t *testing.T) {
	s := NewStore()
	a := s.Insert("x", attrs("v", 1))
	tx := s.Begin()
	if err := tx.Remove(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Modify(a.ID, attrs("v", 2)); err == nil {
		t.Fatal("modify of removed WME should error")
	}
	if err := tx.Remove(999); err == nil {
		t.Fatal("remove of absent WME should error")
	}
}

func TestTxnDoubleModifyProducesSingleDelta(t *testing.T) {
	s := NewStore()
	a := s.Insert("x", attrs("v", 1))
	tx := s.Begin()
	if _, err := tx.Modify(a.ID, attrs("v", 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Modify(a.ID, attrs("v", 3)); err != nil {
		t.Fatal(err)
	}
	d := tx.Delta()
	if len(d.Removes) != 1 || len(d.Adds) != 1 {
		t.Fatalf("delta = %d removes, %d adds; want 1,1", len(d.Removes), len(d.Adds))
	}
	if !d.Adds[0].Attr("v").Equal(Int(3)) {
		t.Fatal("final value lost")
	}
}
