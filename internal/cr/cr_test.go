package cr

import (
	"testing"

	"pdps/internal/match"
	"pdps/internal/wm"
)

// mkInst builds an instantiation of a one-CE rule over WMEs with the
// given time tags (tags are forced via repeated store inserts).
func mkInst(t *testing.T, s *wm.Store, name string, prio, tests int, n int) *match.Instantiation {
	t.Helper()
	var conds []match.Condition
	ts := make([]match.AttrTest, tests)
	for i := range ts {
		ts[i] = match.AttrTest{Attr: "v", Op: match.OpGe, Const: wm.Int(0)}
	}
	conds = append(conds, match.Condition{Class: "c", Tests: ts})
	r := &match.Rule{Name: name, Priority: prio, Conditions: conds,
		Actions: []match.Action{{Kind: match.ActHalt}}}
	wmes := make([]*wm.WME, n)
	for i := range wmes {
		wmes[i] = s.Insert("c", map[string]wm.Value{"v": wm.Int(0)})
	}
	return &match.Instantiation{Rule: r, WMEs: wmes, Bindings: match.Bindings{}}
}

func TestSpecificitySelectsMostSpecific(t *testing.T) {
	s := wm.NewStore()
	w := s.Insert("c", map[string]wm.Value{"v": wm.Int(0)})
	plain := mkInst(t, s, "plain", 0, 1, 0)
	plain.WMEs = []*wm.WME{w}
	specific := mkInst(t, s, "specific", 0, 4, 0)
	specific.WMEs = []*wm.WME{w}
	if got := (Specificity{}).Select([]*match.Instantiation{plain, specific}); got != specific {
		t.Fatalf("selected %s, want specific", got.Rule.Name)
	}
	// Equal specificity falls back to LEX (recency).
	old := mkInst(t, s, "old", 0, 2, 1)
	young := mkInst(t, s, "young", 0, 2, 1)
	if got := (Specificity{}).Select([]*match.Instantiation{old, young}); got != young {
		t.Fatalf("tie-break selected %s, want young", got.Rule.Name)
	}
}

func TestNewByName(t *testing.T) {
	for _, n := range []string{"fifo", "lex", "mea", "priority", "specificity", "random"} {
		st, err := New(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if st.Name() != n {
			t.Errorf("Name() = %s, want %s", st.Name(), n)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

func TestLEXPrefersRecency(t *testing.T) {
	s := wm.NewStore()
	old := mkInst(t, s, "old", 0, 1, 1)
	young := mkInst(t, s, "young", 0, 1, 1) // inserted later => more recent
	got := LEX{}.Select([]*match.Instantiation{old, young})
	if got != young {
		t.Fatalf("LEX selected %s, want young", got.Rule.Name)
	}
}

func TestLEXTieBreaksOnSpecificity(t *testing.T) {
	s := wm.NewStore()
	w := s.Insert("c", map[string]wm.Value{"v": wm.Int(0)})
	plain := mkInst(t, s, "plain", 0, 1, 0)
	plain.WMEs = []*wm.WME{w}
	specific := mkInst(t, s, "specific", 0, 3, 0)
	specific.WMEs = []*wm.WME{w}
	got := LEX{}.Select([]*match.Instantiation{plain, specific})
	if got != specific {
		t.Fatalf("LEX selected %s, want specific", got.Rule.Name)
	}
}

func TestFIFOPrefersOldest(t *testing.T) {
	s := wm.NewStore()
	old := mkInst(t, s, "old", 0, 1, 1)
	young := mkInst(t, s, "young", 0, 1, 1)
	got := FIFO{}.Select([]*match.Instantiation{young, old})
	if got != old {
		t.Fatalf("FIFO selected %s, want old", got.Rule.Name)
	}
}

func TestMEAComparesFirstCE(t *testing.T) {
	s := wm.NewStore()
	a := mkInst(t, s, "a", 0, 1, 2) // first CE older
	b := mkInst(t, s, "b", 0, 1, 2)
	// Make a's overall recency higher but first-CE tag older than b's:
	// swap a's WME order so its first CE is the older one.
	a.WMEs[0], a.WMEs[1] = a.WMEs[1], a.WMEs[0]
	_ = b
	got := MEA{}.Select([]*match.Instantiation{a, b})
	if got != b {
		t.Fatalf("MEA selected %s, want b (more recent first CE)", got.Rule.Name)
	}
}

func TestPrioritySelectsHighest(t *testing.T) {
	s := wm.NewStore()
	low := mkInst(t, s, "low", 1, 1, 1)
	high := mkInst(t, s, "high", 9, 1, 1)
	got := Priority{}.Select([]*match.Instantiation{low, high})
	if got != high {
		t.Fatalf("Priority selected %s, want high", got.Rule.Name)
	}
	// Equal priority falls back to LEX (recency).
	low2 := mkInst(t, s, "low2", 1, 1, 1)
	got = Priority{}.Select([]*match.Instantiation{low, low2})
	if got != low2 {
		t.Fatalf("Priority tie-break selected %s, want low2", got.Rule.Name)
	}
}

func TestRandomIsSeededDeterministic(t *testing.T) {
	s := wm.NewStore()
	ins := []*match.Instantiation{
		mkInst(t, s, "a", 0, 1, 1),
		mkInst(t, s, "b", 0, 1, 1),
		mkInst(t, s, "c", 0, 1, 1),
	}
	r1, r2 := NewRandom(7), NewRandom(7)
	for i := 0; i < 20; i++ {
		if r1.Select(ins) != r2.Select(ins) {
			t.Fatal("same seed must give same sequence")
		}
	}
}

func TestSelectSingleton(t *testing.T) {
	s := wm.NewStore()
	only := mkInst(t, s, "only", 0, 1, 1)
	for _, st := range []Strategy{FIFO{}, LEX{}, MEA{}, Priority{}, NewRandom(1)} {
		if got := st.Select([]*match.Instantiation{only}); got != only {
			t.Errorf("%s: singleton not selected", st.Name())
		}
	}
}

func TestCompareTagsLengths(t *testing.T) {
	if compareTags([]uint64{5}, []uint64{5, 1}) != -1 {
		t.Error("shorter vector must be older")
	}
	if compareTags([]uint64{5, 1}, []uint64{5}) != 1 {
		t.Error("longer vector must be newer")
	}
	if compareTags([]uint64{5, 1}, []uint64{5, 1}) != 0 {
		t.Error("equal vectors")
	}
}
