// Package cr implements the select phase of the production-system
// cycle: conflict-resolution strategies that choose the dominant
// production from the conflict set. As the paper notes (Section 3.2),
// strategies like OPS5's LEX and MEA are heuristics that favour some
// execution sequences over others but never rule any sequence out, so
// they are orthogonal to the consistency machinery and pluggable here.
package cr

import (
	"fmt"
	"math/rand"

	"pdps/internal/match"
)

// Strategy selects the dominant instantiation from a non-empty
// conflict set. Implementations must be deterministic given their own
// state (Random is deterministic per seed).
type Strategy interface {
	// Name identifies the strategy.
	Name() string
	// Select returns the chosen instantiation; ins is non-empty.
	Select(ins []*match.Instantiation) *match.Instantiation
}

// New returns the strategy with the given name: "fifo", "lex", "mea",
// "priority", "specificity", or "random" (seeded with 1).
func New(name string) (Strategy, error) {
	switch name {
	case "fifo":
		return FIFO{}, nil
	case "lex":
		return LEX{}, nil
	case "mea":
		return MEA{}, nil
	case "priority":
		return Priority{}, nil
	case "specificity":
		return Specificity{}, nil
	case "random":
		return NewRandom(1), nil
	}
	return nil, fmt.Errorf("cr: unknown strategy %q", name)
}

// FIFO picks the instantiation whose matched WMEs are oldest (smallest
// recency, ties broken by key), giving queue-like behaviour.
type FIFO struct{}

// Name returns "fifo".
func (FIFO) Name() string { return "fifo" }

// Select returns the oldest instantiation.
func (FIFO) Select(ins []*match.Instantiation) *match.Instantiation {
	best := ins[0]
	for _, in := range ins[1:] {
		if c := compareTags(in.TimeTags(), best.TimeTags()); c < 0 || (c == 0 && in.Key() < best.Key()) {
			best = in
		}
	}
	return best
}

// LEX is OPS5's LEX strategy: order instantiations by their time tags
// sorted in descending order, compared lexicographically (most recent
// first); ties broken by specificity (number of attribute tests), then
// by key for determinism.
type LEX struct{}

// Name returns "lex".
func (LEX) Name() string { return "lex" }

// Select returns the dominant instantiation under LEX.
func (LEX) Select(ins []*match.Instantiation) *match.Instantiation {
	best := ins[0]
	for _, in := range ins[1:] {
		if lexLess(best, in) {
			best = in
		}
	}
	return best
}

// lexLess reports whether b dominates a under LEX.
func lexLess(a, b *match.Instantiation) bool {
	if c := compareTags(a.TimeTags(), b.TimeTags()); c != 0 {
		return c < 0
	}
	sa, sb := specificity(a.Rule), specificity(b.Rule)
	if sa != sb {
		return sa < sb
	}
	return a.Key() > b.Key()
}

// MEA is OPS5's MEA strategy: compare the recency of the WME matching
// the first condition element (means-ends analysis), then fall back to
// LEX ordering.
type MEA struct{}

// Name returns "mea".
func (MEA) Name() string { return "mea" }

// Select returns the dominant instantiation under MEA.
func (MEA) Select(ins []*match.Instantiation) *match.Instantiation {
	best := ins[0]
	for _, in := range ins[1:] {
		if meaLess(best, in) {
			best = in
		}
	}
	return best
}

func meaLess(a, b *match.Instantiation) bool {
	ta, tb := firstTag(a), firstTag(b)
	if ta != tb {
		return ta < tb
	}
	return lexLess(a, b)
}

func firstTag(in *match.Instantiation) uint64 {
	if len(in.WMEs) == 0 {
		return 0
	}
	return in.WMEs[0].TimeTag
}

// Priority picks the instantiation of the rule with the highest static
// priority, ties broken by LEX.
type Priority struct{}

// Name returns "priority".
func (Priority) Name() string { return "priority" }

// Select returns the highest-priority instantiation.
func (Priority) Select(ins []*match.Instantiation) *match.Instantiation {
	best := ins[0]
	for _, in := range ins[1:] {
		if in.Rule.Priority > best.Rule.Priority ||
			(in.Rule.Priority == best.Rule.Priority && lexLess(best, in)) {
			best = in
		}
	}
	return best
}

// Specificity prefers the instantiation of the rule with the most
// condition-element tests (the most specific knowledge), falling back
// to LEX — the specificity component of OPS5's ordering, exposed as a
// standalone strategy.
type Specificity struct{}

// Name returns "specificity".
func (Specificity) Name() string { return "specificity" }

// Select returns the most specific instantiation.
func (Specificity) Select(ins []*match.Instantiation) *match.Instantiation {
	best := ins[0]
	for _, in := range ins[1:] {
		sb, si := specificity(best.Rule), specificity(in.Rule)
		if si > sb || (si == sb && lexLess(best, in)) {
			best = in
		}
	}
	return best
}

// Random selects uniformly at random with a seeded source, so runs are
// reproducible. It is the strategy used by the semantic-consistency
// property tests to explore many valid execution sequences.
type Random struct{ rng *rand.Rand }

// NewRandom returns a Random strategy with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name returns "random".
func (r *Random) Name() string { return "random" }

// Select returns a uniformly random instantiation.
func (r *Random) Select(ins []*match.Instantiation) *match.Instantiation {
	return ins[r.rng.Intn(len(ins))]
}

func specificity(r *match.Rule) int {
	n := 0
	for _, c := range r.Conditions {
		n += 1 + len(c.Tests)
	}
	return n
}

// compareTags compares two descending time-tag vectors
// lexicographically; a missing element is older than any present one.
func compareTags(a, b []uint64) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
