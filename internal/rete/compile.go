package rete

import (
	"fmt"
	"sort"
	"strings"

	"pdps/internal/match"
	"pdps/internal/wm"
)

// bindingPos records where a variable was first bound: the chain level
// (condition index) and attribute.
type bindingPos struct {
	level int
	attr  string
}

// intraTest compares two attributes of the same WME (a variable used
// twice within one condition element). It is evaluated in the alpha
// network because it needs no other WME.
type intraTest struct {
	op    match.Op
	attrA string // the attribute carrying the later occurrence
	attrB string // the attribute the variable was bound from
}

// AddRule validates and compiles a rule into the network. Rules may be
// added after WMEs; the new nodes are seeded with existing matches.
func (n *Network) AddRule(r *match.Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if _, dup := n.rules[r.Name]; dup {
		return errorf("duplicate rule %s", r.Name)
	}

	prod := &prodNode{
		net:       n,
		rule:      r,
		numLevels: len(r.Conditions),
		positive:  make([]bool, len(r.Conditions)),
		bindings:  make(map[string]bindingPos),
	}
	for i, c := range r.Conditions {
		prod.positive[i] = !c.Negated
	}

	// bound is shared with the production node so that seeding during
	// compilation (rules added after WMEs) sees the final positions.
	bound := prod.bindings
	var source betaSource = n.top
	last := len(r.Conditions) - 1

	for i, c := range r.Conditions {
		var consts []match.AttrTest
		var intras []intraTest
		var joins []joinTest
		var presence []string
		for _, t := range c.Tests {
			switch {
			case !t.IsVar():
				consts = append(consts, t)
			default:
				pos, isBound := bound[t.Var]
				switch {
				case isBound && pos.level == i:
					intras = append(intras, intraTest{op: t.Op, attrA: t.Attr, attrB: pos.attr})
				case isBound:
					joins = append(joins, joinTest{
						op:        t.Op,
						ownAttr:   t.Attr,
						levelsUp:  (i - 1) - pos.level,
						otherAttr: pos.attr,
					})
				default:
					// Validate() guarantees: OpEq, positive CE. Binding
					// requires the attribute to be present on the WME.
					bound[t.Var] = bindingPos{level: i, attr: t.Attr}
					presence = append(presence, t.Attr)
				}
			}
		}
		amem := n.alphaMemFor(c.Class, consts, intras, presence)

		if c.Negated {
			neg := newNegNode(n, amem, joins)
			source.addChildSink(neg)
			amem.successors = append(amem.successors, neg)
			for _, t := range source.validTokens() {
				neg.onToken(t)
			}
			source = neg
			if i == last {
				prod.viaToken = true
				neg.addChildSink(prod)
				for _, t := range neg.validTokens() {
					prod.onToken(t)
				}
			}
			continue
		}

		var out pairSink
		var nextMem *memNode
		if i == last {
			out = prod
		} else {
			nextMem = &memNode{net: n}
			out = nextMem
		}
		join := newJoinNode(n, source, amem, joins, out)
		source.addChildSink(join)
		amem.successors = append(amem.successors, join)
		for _, t := range source.validTokens() {
			join.onToken(t)
		}
		if nextMem != nil {
			source = nextMem
		}
	}

	n.rules[r.Name] = r
	return nil
}

// alphaMemFor returns the shared alpha memory for the pattern,
// creating and back-filling it from current working memory if new.
func (n *Network) alphaMemFor(class string, consts []match.AttrTest, intras []intraTest, presence []string) *alphaMem {
	key := alphaKey(class, consts, intras, presence)
	if am, ok := n.alphaByKey[key]; ok {
		return am
	}
	cs := append([]match.AttrTest(nil), consts...)
	is := append([]intraTest(nil), intras...)
	ps := append([]string(nil), presence...)
	am := &alphaMem{
		key:   key,
		class: class,
		items: make(map[*wm.WME]bool),
		pred: func(w *wm.WME) bool {
			for _, t := range cs {
				if !w.HasAttr(t.Attr) || !t.Matches(w.Attr(t.Attr)) {
					return false
				}
			}
			for _, it := range is {
				if !w.HasAttr(it.attrA) || !w.HasAttr(it.attrB) {
					return false
				}
				if !it.op.Eval(w.Attr(it.attrA), w.Attr(it.attrB)) {
					return false
				}
			}
			for _, a := range ps {
				if !w.HasAttr(a) {
					return false
				}
			}
			return true
		},
	}
	n.alphaByKey[key] = am
	n.alphaByClass[class] = append(n.alphaByClass[class], am)
	for w := range n.wmes {
		if w.Class == class && am.pred(w) {
			am.items[w] = true
		}
	}
	return am
}

func alphaKey(class string, consts []match.AttrTest, intras []intraTest, presence []string) string {
	parts := make([]string, 0, len(consts)+len(intras)+len(presence))
	for _, t := range consts {
		if t.IsDisjunction() {
			alts := make([]string, len(t.OneOf))
			for i, v := range t.OneOf {
				alts[i] = fmt.Sprintf("%s:%d", v, v.Kind())
			}
			parts = append(parts, fmt.Sprintf("d:%s in [%s]", t.Attr, strings.Join(alts, " ")))
			continue
		}
		parts = append(parts, fmt.Sprintf("c:%s %s %s:%d", t.Attr, t.Op, t.Const, t.Const.Kind()))
	}
	for _, it := range intras {
		parts = append(parts, fmt.Sprintf("i:%s %s %s", it.attrA, it.op, it.attrB))
	}
	for _, a := range presence {
		parts = append(parts, "p:"+a)
	}
	sort.Strings(parts)
	return class + "|" + strings.Join(parts, "|")
}
