package rete

import (
	"fmt"
	"sort"
	"strings"

	"pdps/internal/match"
	"pdps/internal/wm"
)

// bindingPos records where a variable was first bound: the chain level
// (condition index) and attribute.
type bindingPos struct {
	level int
	attr  string
}

// intraTest compares two attributes of the same WME (a variable used
// twice within one condition element). It is evaluated in the alpha
// network because it needs no other WME.
type intraTest struct {
	op    match.Op
	attrA string // the attribute carrying the later occurrence
	attrB string // the attribute the variable was bound from
}

// compiledCE is one condition element's tests classified relative to a
// particular placement: consts and intras evaluate in the alpha
// network, joins reference earlier chain levels, presence tests back
// the variable bindings this CE introduces.
type compiledCE struct {
	cond     match.Condition
	consts   []match.AttrTest
	intras   []intraTest
	joins    []joinTest
	presence []string
}

// classifyCE splits a CE's tests given the binding positions of the
// already-placed levels. i is the CE's chain level; bound is updated
// with the variables this CE binds (the first OpEq occurrence binds —
// Validate guarantees that occurrence sits in a positive CE).
func classifyCE(c match.Condition, i int, bound map[string]bindingPos) compiledCE {
	cc := compiledCE{cond: c}
	for _, t := range c.Tests {
		switch {
		case !t.IsVar():
			cc.consts = append(cc.consts, t)
		default:
			pos, isBound := bound[t.Var]
			switch {
			case isBound && pos.level == i:
				cc.intras = append(cc.intras, intraTest{op: t.Op, attrA: t.Attr, attrB: pos.attr})
			case isBound:
				cc.joins = append(cc.joins, joinTest{
					op:        t.Op,
					ownAttr:   t.Attr,
					levelsUp:  (i - 1) - pos.level,
					otherAttr: pos.attr,
				})
			default:
				bound[t.Var] = bindingPos{level: i, attr: t.Attr}
				cc.presence = append(cc.presence, t.Attr)
			}
		}
	}
	return cc
}

// AddRule validates and compiles a rule into the network. Rules may be
// added after WMEs; the new nodes are seeded with existing matches.
// With planning enabled the condition elements are reordered by the
// static cost model (cost.go) before compilation; the emitted
// instantiations are independent of the chosen order.
func (n *Network) AddRule(r *match.Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if _, dup := n.rules[r.Name]; dup {
		return errorf("duplicate rule %s", r.Name)
	}
	order, cost := n.planRule(r)
	n.chains[r.Name] = n.compileChain(r, order, cost)
	n.rules[r.Name] = r
	n.updatePlanGauges()
	return nil
}

// compileChain builds the rule's node chain in the given condition
// order (order[level] = original CE index). Beta-prefix sharing: when
// the network allows it, a level whose structural prefix (alpha
// pattern, negation and join tests of every level up to it) equals an
// existing rule's prefix reuses that rule's join/memory nodes instead
// of building and seeding new ones. The final positive join is always
// exclusive — it feeds this rule's production directly.
func (n *Network) compileChain(r *match.Rule, order []int, cost float64) *ruleChain {
	m := len(order)
	prod := &prodNode{net: n, rule: r, numLevels: m, bindings: make(map[string]bindingPos)}
	rc := &ruleChain{r: r, order: order, cost: cost, prod: prod}

	// Classify tests level by level in plan order: variables bind at
	// their first OpEq occurrence along the plan, so join tests always
	// reference earlier levels of the reordered chain.
	bound := make(map[string]bindingPos)
	ces := make([]compiledCE, m)
	for lvl, orig := range order {
		ces[lvl] = classifyCE(r.Conditions[orig], lvl, bound)
	}

	// Reordering must be invisible in emitted instantiations: WMEs are
	// listed in the rule's source positive-CE order (action CE indices
	// and instantiation keys depend on it), and each variable reads its
	// value from the CE that binds it in SOURCE order — an equality
	// join only guarantees a Value.Equal match at other levels, and
	// Equal is kind-insensitive (Int(3) vs Float(3)) while rendered
	// bindings are not.
	planLevel := make([]int, m)
	for lvl, orig := range order {
		planLevel[orig] = lvl
	}
	srcBound := make(map[string]bindingPos)
	for i, c := range r.Conditions {
		classifyCE(c, i, srcBound) // only the binding side-effect is needed
		if !c.Negated {
			prod.wmeOrder = append(prod.wmeOrder, planLevel[i])
		}
	}
	for v, pos := range srcBound {
		prod.bindings[v] = bindingPos{level: planLevel[pos.level], attr: pos.attr}
	}

	var source betaSource = n.top
	prefix := ""
	for lvl, cc := range ces {
		amem := n.alphaMemFor(cc.cond.Class, cc.consts, cc.intras, cc.presence)
		prefix += levelSig(cc.cond.Negated, amem.key, cc.joins)
		last := lvl == m-1

		if cc.cond.Negated {
			bl := n.betaLevels[prefix]
			if bl == nil {
				neg := newNegNode(n, amem, cc.joins)
				source.addChildSink(neg)
				amem.successors = append(amem.successors, neg)
				for _, t := range source.validTokens() {
					neg.onToken(t)
				}
				bl = &betaLevel{key: prefix, parent: source, neg: neg}
				if n.sharing {
					n.betaLevels[prefix] = bl
				}
			}
			bl.refs++
			rc.levels = append(rc.levels, bl)
			source = bl.neg
			if last {
				prod.viaToken = true
				bl.neg.addChildSink(prod)
				for _, t := range bl.neg.validTokens() {
					prod.onToken(t)
				}
			}
			continue
		}

		if last {
			join := newJoinNode(n, source, amem, cc.joins, prod)
			source.addChildSink(join)
			amem.successors = append(amem.successors, join)
			for _, t := range source.validTokens() {
				join.onToken(t)
			}
			rc.lastJoin = join
			rc.lastParent = source
			continue
		}

		bl := n.betaLevels[prefix]
		if bl == nil {
			mem := &memNode{net: n}
			join := newJoinNode(n, source, amem, cc.joins, mem)
			source.addChildSink(join)
			amem.successors = append(amem.successors, join)
			for _, t := range source.validTokens() {
				join.onToken(t)
			}
			bl = &betaLevel{key: prefix, parent: source, join: join, mem: mem}
			if n.sharing {
				n.betaLevels[prefix] = bl
			}
		}
		bl.refs++
		rc.levels = append(rc.levels, bl)
		source = bl.mem
	}
	return rc
}

// levelSig renders one level's structural signature for beta-prefix
// sharing: negation, the alpha pattern, and the full join-test list
// (levelsUp included — tests must point at identical chain shapes).
func levelSig(negated bool, amemKey string, joins []joinTest) string {
	var b strings.Builder
	if negated {
		b.WriteByte('~')
	} else {
		b.WriteByte('+')
	}
	b.WriteString(amemKey)
	for _, jt := range joins {
		fmt.Fprintf(&b, "\x01%s %s %d %s", jt.ownAttr, jt.op, jt.levelsUp, jt.otherAttr)
	}
	b.WriteByte('\x02')
	return b.String()
}

// alphaMemFor returns the shared alpha memory for the pattern,
// creating and back-filling it from current working memory if new.
func (n *Network) alphaMemFor(class string, consts []match.AttrTest, intras []intraTest, presence []string) *alphaMem {
	key := alphaKey(class, consts, intras, presence)
	if am, ok := n.alphaByKey[key]; ok {
		return am
	}
	cs := append([]match.AttrTest(nil), consts...)
	is := append([]intraTest(nil), intras...)
	ps := append([]string(nil), presence...)
	am := &alphaMem{
		key:   key,
		class: class,
		items: make(map[*wm.WME]bool),
		pred: func(w *wm.WME) bool {
			for _, t := range cs {
				if !w.HasAttr(t.Attr) || !t.Matches(w.Attr(t.Attr)) {
					return false
				}
			}
			for _, it := range is {
				if !w.HasAttr(it.attrA) || !w.HasAttr(it.attrB) {
					return false
				}
				if !it.op.Eval(w.Attr(it.attrA), w.Attr(it.attrB)) {
					return false
				}
			}
			for _, a := range ps {
				if !w.HasAttr(a) {
					return false
				}
			}
			return true
		},
	}
	n.alphaByKey[key] = am
	n.alphaByClass[class] = append(n.alphaByClass[class], am)
	if n.alphaIndexing {
		n.discAttach(am, cs, is, ps)
	}
	for w := range n.wmes {
		if w.Class == class && am.pred(w) {
			am.items[w] = true
		}
	}
	return am
}

// constPart, intraPart and presencePart render one test's structural
// signature. They serve double duty: sorted and joined they form the
// alpha-memory sharing key, and individually they are the
// discrimination-network node-sharing keys (alpha.go) — two patterns
// share a residual test node exactly when the signatures match.
func constPart(t match.AttrTest) string {
	if t.IsDisjunction() {
		alts := make([]string, len(t.OneOf))
		for i, v := range t.OneOf {
			alts[i] = fmt.Sprintf("%s:%d", v, v.Kind())
		}
		return fmt.Sprintf("d:%s in [%s]", t.Attr, strings.Join(alts, " "))
	}
	return fmt.Sprintf("c:%s %s %s:%d", t.Attr, t.Op, t.Const, t.Const.Kind())
}

func intraPart(it intraTest) string {
	return fmt.Sprintf("i:%s %s %s", it.attrA, it.op, it.attrB)
}

func presencePart(a string) string { return "p:" + a }

func alphaKey(class string, consts []match.AttrTest, intras []intraTest, presence []string) string {
	parts := make([]string, 0, len(consts)+len(intras)+len(presence))
	for _, t := range consts {
		parts = append(parts, constPart(t))
	}
	for _, it := range intras {
		parts = append(parts, intraPart(it))
	}
	for _, a := range presence {
		parts = append(parts, presencePart(a))
	}
	sort.Strings(parts)
	return class + "|" + strings.Join(parts, "|")
}
