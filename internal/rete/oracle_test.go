package rete

import (
	"fmt"
	"math/rand"
	"testing"

	"pdps/internal/match"
	"pdps/internal/wm"
)

// randomRule builds a random rule over classes c0..c3 with attributes
// a0..a2, joining consecutive CEs on a shared variable half the time
// and negating a non-first CE occasionally.
func randomRule(rng *rand.Rand, name string) *match.Rule {
	numCE := 1 + rng.Intn(3)
	var conds []match.Condition
	bound := false
	for i := 0; i < numCE; i++ {
		c := match.Condition{Class: fmt.Sprintf("c%d", rng.Intn(4))}
		// Constant test.
		if rng.Intn(2) == 0 {
			ops := []match.Op{match.OpEq, match.OpNe, match.OpLt, match.OpGt, match.OpLe, match.OpGe}
			c.Tests = append(c.Tests, match.AttrTest{
				Attr:  fmt.Sprintf("a%d", rng.Intn(3)),
				Op:    ops[rng.Intn(len(ops))],
				Const: wm.Int(int64(rng.Intn(4))),
			})
		}
		// Variable binding / join test.
		if i == 0 || !bound {
			if rng.Intn(2) == 0 {
				c.Tests = append(c.Tests, match.AttrTest{
					Attr: fmt.Sprintf("a%d", rng.Intn(3)), Op: match.OpEq, Var: "x"})
				bound = true
			}
		} else {
			ops := []match.Op{match.OpEq, match.OpNe, match.OpLt, match.OpGt}
			c.Tests = append(c.Tests, match.AttrTest{
				Attr: fmt.Sprintf("a%d", rng.Intn(3)),
				Op:   ops[rng.Intn(len(ops))], Var: "x"})
		}
		// Maybe negate non-binding CEs past the first.
		if i > 0 && rng.Intn(4) == 0 {
			// A negated CE must not be the binding occurrence of x.
			neg := true
			for _, t := range c.Tests {
				if t.IsVar() && !bound {
					neg = false
				}
			}
			if neg {
				c.Negated = true
			}
		}
		conds = append(conds, c)
	}
	// Guarantee at least one positive CE.
	allNeg := true
	for _, c := range conds {
		if !c.Negated {
			allNeg = false
			break
		}
	}
	if allNeg {
		conds[0].Negated = false
	}
	r := &match.Rule{
		Name:       name,
		Conditions: conds,
		Actions:    []match.Action{{Kind: match.ActHalt}},
	}
	// Rebuild into a valid rule: if validation fails (e.g. variable
	// used before binding because the binding CE was negated), retry
	// deterministically by dropping var tests.
	if r.Validate() != nil {
		for i := range r.Conditions {
			var keep []match.AttrTest
			for _, t := range r.Conditions[i].Tests {
				if !t.IsVar() {
					keep = append(keep, t)
				}
			}
			r.Conditions[i].Tests = keep
			r.Conditions[i].Negated = false
		}
	}
	return r
}

func randomWME(rng *rand.Rand, s *wm.Store) *wm.WME {
	a := map[string]wm.Value{}
	for i := 0; i < 3; i++ {
		if rng.Intn(3) > 0 {
			v := int64(rng.Intn(4))
			// Mix kinds: ints and numerically-equal floats must collide
			// in the hash indexes exactly as Value.Equal says they do.
			if rng.Intn(4) == 0 {
				a[fmt.Sprintf("a%d", i)] = wm.Float(float64(v))
			} else {
				a[fmt.Sprintf("a%d", i)] = wm.Int(v)
			}
		}
	}
	return s.Insert(fmt.Sprintf("c%d", rng.Intn(4)), a)
}

func sameConflictSets(t *testing.T, seed int64, a, b *match.ConflictSet) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("seed %d: conflict sets differ in size: rete=%d naive=%d\nrete: %v\nnaive: %v",
			seed, a.Len(), b.Len(), a.All(), b.All())
	}
	for _, in := range a.All() {
		if !b.Contains(in.Key()) {
			t.Fatalf("seed %d: rete has %v, naive does not", seed, in)
		}
	}
}

// newAggressiveAdaptive builds a planned network that re-evaluates its
// plans on essentially every ConflictSet call: the oracle streams
// force replans mid-run, so the chain-swap machinery is exercised
// against the naive matcher at every step.
func newAggressiveAdaptive() *Network {
	n := New()
	n.SetAdaptive(true)
	n.SetAdaptiveParams(1.01, 1)
	return n
}

// constructors are the network variants every oracle test must agree
// on: hashed planned memories (the default), source-order compilation,
// the unindexed linear fallback, and aggressive adaptive replanning —
// bare and behind the multi-shard wrapper.
var constructors = []struct {
	name  string
	build func() match.Matcher
}{
	{"planned", func() match.Matcher { return New() }},
	{"source-order", func() match.Matcher { return NewSourceOrder() }},
	{"linear", func() match.Matcher { return NewLinear() }},
	{"adaptive", func() match.Matcher { return newAggressiveAdaptive() }},
	{"sharded-planned", func() match.Matcher {
		return match.NewSharded(3, func() match.Matcher { return New() })
	}},
	{"sharded-adaptive", func() match.Matcher {
		return match.NewSharded(3, func() match.Matcher { return newAggressiveAdaptive() })
	}},
}

// TestReteMatchesNaiveOracle drives each Rete variant (indexed,
// linear, and indexed behind a multi-shard wrapper) and the naive
// matcher with identical random rule sets and random insert/remove
// streams and requires identical conflict sets after every step.
func TestReteMatchesNaiveOracle(t *testing.T) {
	for _, ctor := range constructors {
		t.Run(ctor.name, func(t *testing.T) { reteOracle(t, ctor.build) })
	}
}

func reteOracle(t *testing.T, build func() match.Matcher) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := wm.NewStore()
		rete := build()
		naive := match.NewNaive()
		for i := 0; i < 1+rng.Intn(4); i++ {
			r := randomRule(rng, fmt.Sprintf("r%d", i))
			if err := rete.AddRule(r); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := naive.AddRule(r); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		var live []*wm.WME
		for step := 0; step < 60; step++ {
			if len(live) == 0 || rng.Intn(3) > 0 {
				w := randomWME(rng, s)
				live = append(live, w)
				rete.Insert(w)
				naive.Insert(w)
			} else {
				i := rng.Intn(len(live))
				w := live[i]
				live = append(live[:i], live[i+1:]...)
				rete.Remove(w)
				naive.Remove(w)
			}
			sameConflictSets(t, seed, rete.ConflictSet(), naive.ConflictSet())
		}
	}
}

// TestReteLateRuleMatchesNaive checks rule addition after working
// memory is populated (the index-seeding path) against the oracle,
// for every network variant.
func TestReteLateRuleMatchesNaive(t *testing.T) {
	for _, ctor := range constructors {
		t.Run(ctor.name, func(t *testing.T) { reteLateRuleOracle(t, ctor.build) })
	}
}

func reteLateRuleOracle(t *testing.T, build func() match.Matcher) {
	for seed := int64(100); seed < 130; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := wm.NewStore()
		rete := build()
		naive := match.NewNaive()
		var live []*wm.WME
		for i := 0; i < 20; i++ {
			w := randomWME(rng, s)
			live = append(live, w)
			rete.Insert(w)
			naive.Insert(w)
		}
		for i := 0; i < 3; i++ {
			r := randomRule(rng, fmt.Sprintf("late%d", i))
			if err := rete.AddRule(r); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := naive.AddRule(r); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			sameConflictSets(t, seed, rete.ConflictSet(), naive.ConflictSet())
		}
		// And keep mutating afterwards.
		for step := 0; step < 30; step++ {
			if len(live) == 0 || rng.Intn(2) == 0 {
				w := randomWME(rng, s)
				live = append(live, w)
				rete.Insert(w)
				naive.Insert(w)
			} else {
				i := rng.Intn(len(live))
				w := live[i]
				live = append(live[:i], live[i+1:]...)
				rete.Remove(w)
				naive.Remove(w)
			}
			sameConflictSets(t, seed, rete.ConflictSet(), naive.ConflictSet())
		}
	}
}
