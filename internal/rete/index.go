package rete

import (
	"sort"
	"strconv"

	"pdps/internal/match"
	"pdps/internal/wm"
)

// This file implements hashed alpha and beta memories (Doorenbos,
// "Production Matching for Large Learning Systems", §2.3): a join or
// negative node whose tests include at least one equality test keeps
// its candidate tokens and WMEs bucketed by the values those tests
// compare, so an activation probes one bucket instead of scanning the
// whole opposite memory. Nodes with no equality test keep the linear
// scan of the basic algorithm.
//
// The bucket key is a string encoding of the tested values. Encoding
// must be Equal-consistent: wm.Value.Equal treats ints and floats as
// numerically equal across kinds, so both encode through AsFloat.
// The converse need not hold — a key collision only means the full
// test list is re-run on a few extra candidates, never a wrong match —
// so the encoding does not bother escaping separator bytes inside
// strings.

// appendValueKey appends the Equal-consistent encoding of v to b.
// Keys are built into reusable per-node scratch buffers and looked up
// via m[string(buf)] (which the compiler keeps allocation-free), so
// the only allocation per index mutation is the stored map key.
func appendValueKey(b []byte, v wm.Value) []byte {
	switch v.Kind() {
	case wm.KindInt, wm.KindFloat:
		b = append(b, 'n', ':')
		// Both kinds encode through AsFloat so numerically equal Int
		// and Float land in one bucket; integral values (the common
		// case) take the cheap AppendInt path. The round-trip guard
		// also rejects overflow and NaN, which fall back to AppendFloat.
		f := v.AsFloat()
		if i := int64(f); f == float64(i) {
			return strconv.AppendInt(b, i, 10)
		}
		return strconv.AppendFloat(b, f, 'g', -1, 64)
	case wm.KindBool:
		if v.AsBool() {
			return append(b, 'b', ':', '1')
		}
		return append(b, 'b', ':', '0')
	case wm.KindString:
		b = append(b, 's', ':')
		return append(b, v.AsString()...)
	case wm.KindSymbol:
		b = append(b, 'y', ':')
		return append(b, v.AsString()...)
	default:
		return append(b, '_')
	}
}

// eqSubset returns the equality tests that can drive a hash index.
func eqSubset(tests []joinTest) []joinTest {
	var eq []joinTest
	for _, jt := range tests {
		if jt.op == match.OpEq {
			eq = append(eq, jt)
		}
	}
	return eq
}

// wmeIndexKey builds the bucket key from the candidate-WME side of the
// equality tests, appending into buf (pass the node's scratch buffer
// resliced to [:0]; keep the result as the new scratch). ok is false
// when the WME lacks a tested attribute — runTests would reject it
// against every token, so it is not indexed.
func wmeIndexKey(eq []joinTest, w *wm.WME, buf []byte) (key []byte, ok bool) {
	for _, jt := range eq {
		if !w.HasAttr(jt.ownAttr) {
			return buf, false
		}
		buf = appendValueKey(buf, w.Attr(jt.ownAttr))
		buf = append(buf, 0)
	}
	return buf, true
}

// tokenIndexKey builds the bucket key from the token side of the
// equality tests; base is the token the tests' levelsUp offsets are
// relative to (the join's parent token).
func tokenIndexKey(eq []joinTest, base *token, buf []byte) (key []byte, ok bool) {
	for _, jt := range eq {
		other := base.up(jt.levelsUp).w
		if other == nil || !other.HasAttr(jt.otherAttr) {
			return buf, false
		}
		buf = appendValueKey(buf, other.Attr(jt.otherAttr))
		buf = append(buf, 0)
	}
	return buf, true
}

// tokenBucketRemove deletes t from its bucket, preserving the order of
// the remaining entries (buckets are insertion-ordered so activation
// order never depends on map iteration).
func tokenBucketRemove(idx map[string][]*token, key []byte, t *token) {
	bucket := idx[string(key)]
	for i, x := range bucket {
		if x == t {
			bucket = append(bucket[:i], bucket[i+1:]...)
			if len(bucket) == 0 {
				delete(idx, string(key))
			} else {
				idx[string(key)] = bucket
			}
			return
		}
	}
}

// wmeBucketRemove deletes w from its bucket, preserving order.
func wmeBucketRemove(idx map[string][]*wm.WME, key []byte, w *wm.WME) {
	bucket := idx[string(key)]
	for i, x := range bucket {
		if x == w {
			bucket = append(bucket[:i], bucket[i+1:]...)
			if len(bucket) == 0 {
				delete(idx, string(key))
			} else {
				idx[string(key)] = bucket
			}
			return
		}
	}
}

// seedRightIndex builds the initial WME-side index of a node compiled
// after working memory is populated. The alpha memory stores items in
// a map; seeding sorts them by identity so bucket order — and with it
// every downstream activation order — is a function of the program,
// not of map iteration.
func seedRightIndex(eq []joinTest, am *alphaMem) map[string][]*wm.WME {
	idx := make(map[string][]*wm.WME)
	items := make([]*wm.WME, 0, len(am.items))
	for w := range am.items {
		items = append(items, w)
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].ID != items[j].ID {
			return items[i].ID < items[j].ID
		}
		return items[i].TimeTag < items[j].TimeTag
	})
	var buf []byte
	for _, w := range items {
		var ok bool
		buf, ok = wmeIndexKey(eq, w, buf[:0])
		if ok {
			idx[string(buf)] = append(idx[string(buf)], w)
		}
	}
	return idx
}
