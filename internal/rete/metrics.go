package rete

import "pdps/internal/obs"

// netMetrics caches the network's obs handles. All nil-safe through
// the Network helpers: an unwired network (SetMetrics never called)
// pays one nil check per activation.
type netMetrics struct {
	// probes counts activations answered from a hash index; bucket
	// records the size of the probed bucket (the work an activation
	// actually did).
	probes *obs.Counter
	bucket *obs.Histogram
	// scans counts activations that fell back to a linear scan (the
	// node has no equality test), and scanned the candidates examined.
	scans   *obs.Counter
	scanned *obs.Counter
	// replans counts adaptive chain recompiles; sharedBeta and planCost
	// gauge the compiled network (beta levels referenced by more than
	// one rule, and the summed estimated plan cost).
	replans    *obs.Counter
	sharedBeta *obs.Gauge
	planCost   *obs.Gauge
	// alphaProbes counts hash probes on the alpha assert/retract path
	// (one per routed attribute a WME carries); alphaTests counts
	// residual discrimination tests evaluated — with cross-rule
	// factoring each distinct test fires once per WME regardless of
	// how many rules share it. sharedAlpha gauges the discrimination
	// nodes on more than one pattern's path.
	alphaProbes *obs.Counter
	alphaTests  *obs.Counter
	sharedAlpha *obs.Gauge
}

// SetMetrics wires the network's index/scan counters into the
// registry. Call before inserting WMEs to observe the initial load.
func (n *Network) SetMetrics(reg *obs.Registry) {
	n.met = &netMetrics{
		probes:     reg.Counter("rete_index_probes_total"),
		bucket:     reg.Histogram("rete_index_bucket_size", "candidates"),
		scans:      reg.Counter("rete_index_scans_total"),
		scanned:    reg.Counter("rete_scan_candidates_total"),
		replans:    reg.Counter("rete_replan_total"),
		sharedBeta: reg.Gauge("rete_shared_beta"),
		planCost:   reg.Gauge("rete_plan_cost"),

		alphaProbes: reg.Counter("rete_alpha_probes_total"),
		alphaTests:  reg.Counter("rete_alpha_tests_evaluated_total"),
		sharedAlpha: reg.Gauge("rete_alpha_shared"),
	}
	n.updatePlanGauges()
}

// metProbe records an indexed activation on the node's own statistics
// (feeding the live cost estimator), the network's work accumulator
// (the adaptive-replan trigger), and the obs registry.
func (n *Network) metProbe(s *joinStats, bucketLen int) {
	s.probes++
	s.cands += int64(bucketLen)
	n.obsWork += int64(bucketLen) + 1
	if n.met != nil {
		n.met.probes.Inc()
		n.met.bucket.Observe(int64(bucketLen))
	}
}

// metScan is metProbe's linear-scan counterpart.
func (n *Network) metScan(s *joinStats, candidates int) {
	s.probes++
	s.cands += int64(candidates)
	n.obsWork += int64(candidates) + 1
	if n.met != nil {
		n.met.scans.Inc()
		n.met.scanned.Add(int64(candidates))
	}
}

// metAlphaProbe records one hash probe on the discrimination
// network's routing layer; metAlphaTest one residual test evaluation.
// Neither feeds obsWork: the adaptive-replan trigger measures join
// activity, which alpha routing is designed to be independent of.
func (n *Network) metAlphaProbe() {
	if n.met != nil {
		n.met.alphaProbes.Inc()
	}
}

func (n *Network) metAlphaTest() {
	if n.met != nil {
		n.met.alphaTests.Inc()
	}
}
