package rete

import "pdps/internal/obs"

// netMetrics caches the network's obs handles. All nil-safe through
// the Network helpers: an unwired network (SetMetrics never called)
// pays one nil check per activation.
type netMetrics struct {
	// probes counts activations answered from a hash index; bucket
	// records the size of the probed bucket (the work an activation
	// actually did).
	probes *obs.Counter
	bucket *obs.Histogram
	// scans counts activations that fell back to a linear scan (the
	// node has no equality test), and scanned the candidates examined.
	scans   *obs.Counter
	scanned *obs.Counter
}

// SetMetrics wires the network's index/scan counters into the
// registry. Call before inserting WMEs to observe the initial load.
func (n *Network) SetMetrics(reg *obs.Registry) {
	n.met = &netMetrics{
		probes:  reg.Counter("rete_index_probes_total"),
		bucket:  reg.Histogram("rete_index_bucket_size", "candidates"),
		scans:   reg.Counter("rete_index_scans_total"),
		scanned: reg.Counter("rete_scan_candidates_total"),
	}
}

func (n *Network) metProbe(bucketLen int) {
	if n.met != nil {
		n.met.probes.Inc()
		n.met.bucket.Observe(int64(bucketLen))
	}
}

func (n *Network) metScan(candidates int) {
	if n.met != nil {
		n.met.scans.Inc()
		n.met.scanned.Add(int64(candidates))
	}
}
