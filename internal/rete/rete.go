// Package rete implements the Rete match algorithm (Forgy 1982), the
// incremental matcher the paper assumes for the match phase: alpha
// memories with shared constant tests, beta memories joined by
// variable-consistency tests, negative nodes for negated condition
// elements, and token-tree deletion so removals are as incremental as
// insertions. Structure follows Doorenbos's "Production Matching for
// Large Learning Systems" basic algorithm with hashed alpha and beta
// memories (see index.go), without unlinking. NewLinear builds the
// unindexed basic algorithm for comparison.
package rete

import (
	"fmt"

	"pdps/internal/match"
	"pdps/internal/wm"
)

// token is one row of partial-match state: a chain of WMEs (one per
// condition element so far; nil at negative-CE levels).
type token struct {
	parent   *token
	w        *wm.WME
	node     interface{} // *memNode, *negNode or *prodNode owning this token
	children []*token

	// joinResults is used only for tokens owned by a negNode: the
	// WMEs currently matching the negated CE under this token.
	joinResults map[*wm.WME]bool

	// instKey is used only for tokens owned by a prodNode.
	instKey string
}

func (t *token) addChild(c *token) { t.children = append(t.children, c) }

func (t *token) removeChild(c *token) {
	for i, x := range t.children {
		if x == c {
			t.children = append(t.children[:i], t.children[i+1:]...)
			return
		}
	}
}

// up walks n steps towards the root and returns that ancestor.
func (t *token) up(n int) *token {
	for ; n > 0; n-- {
		t = t.parent
	}
	return t
}

// tokenSink consumes completed tokens of the previous level (left
// activation): join nodes, negative nodes, and production nodes (when
// the last condition element is negated). onTokenGone retracts a token
// previously delivered via onToken so indexed joins can unhook it; it
// fires after the token's own descendants have been deleted, so sinks
// that keep no index of upstream tokens ignore it.
type tokenSink interface {
	onToken(t *token)
	onTokenGone(t *token)
}

// pairSink consumes (parent token, matching WME) pairs emitted by join
// nodes: beta memories and production nodes.
type pairSink interface {
	receive(parent *token, w *wm.WME)
}

// alphaSink is right-activated when a WME enters an alpha memory and
// right-retracted when it leaves, so indexed nodes can unhook it.
type alphaSink interface {
	rightActivate(w *wm.WME)
	rightRetract(w *wm.WME)
}

// joinTest compares an attribute of the candidate WME against an
// attribute of an earlier condition element's WME in the token chain.
type joinTest struct {
	op        match.Op
	ownAttr   string
	levelsUp  int // 0 = the join's parent token's own WME
	otherAttr string
}

func runTests(tests []joinTest, parent *token, w *wm.WME) bool {
	for _, jt := range tests {
		other := parent.up(jt.levelsUp).w
		if other == nil {
			return false
		}
		if !w.HasAttr(jt.ownAttr) || !other.HasAttr(jt.otherAttr) {
			return false
		}
		if !jt.op.Eval(w.Attr(jt.ownAttr), other.Attr(jt.otherAttr)) {
			return false
		}
	}
	return true
}

// alphaMem holds the WMEs passing one constant-test pattern. Alpha
// memories are shared between rules with identical patterns. disc is
// the pattern's location in the class's discrimination network
// (alpha.go), nil on linear networks.
type alphaMem struct {
	key        string
	class      string
	pred       func(w *wm.WME) bool
	items      map[*wm.WME]bool
	successors []alphaSink
	disc       *discPath
}

func (am *alphaMem) removeSuccessor(s alphaSink) {
	for i, x := range am.successors {
		if x == s {
			am.successors = append(am.successors[:i], am.successors[i+1:]...)
			return
		}
	}
}

// memNode is a beta memory: it stores the tokens of one positive
// condition-element level.
type memNode struct {
	net      *Network
	items    []*token
	children []tokenSink
}

func (m *memNode) validTokens() []*token { return m.items }

func (m *memNode) receive(parent *token, w *wm.WME) {
	t := &token{parent: parent, w: w, node: m}
	parent.addChild(t)
	m.items = append(m.items, t)
	m.net.registerToken(t)
	for _, c := range m.children {
		c.onToken(t)
	}
}

func (m *memNode) removeToken(t *token) {
	for i, x := range m.items {
		if x == t {
			m.items = append(m.items[:i], m.items[i+1:]...)
			break
		}
	}
	for _, c := range m.children {
		c.onTokenGone(t)
	}
}

// betaSource is the upstream of a join node: a beta memory (all tokens
// valid) or a negative node (tokens with no join results are valid).
// removeChildSink detaches a downstream node — chain teardown during
// adaptive replanning (plan.go) unhooks retired nodes through it.
type betaSource interface {
	validTokens() []*token
	addChildSink(s tokenSink)
	removeChildSink(s tokenSink)
}

func (m *memNode) addChildSink(s tokenSink) { m.children = append(m.children, s) }

func (m *memNode) removeChildSink(s tokenSink) { m.children = removeSink(m.children, s) }

func removeSink(list []tokenSink, s tokenSink) []tokenSink {
	for i, x := range list {
		if x == s {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// joinNode joins its parent's tokens with its alpha memory's WMEs.
// When the join has equality tests (eq non-empty) both sides are kept
// in hash indexes bucketed by the tested values, so each activation
// probes one bucket; otherwise it scans the opposite memory linearly.
type joinNode struct {
	net    *Network
	parent betaSource
	amem   *alphaMem
	tests  []joinTest
	out    pairSink

	eq    []joinTest
	left  map[string][]*token  // parent tokens by token-side key
	right map[string][]*wm.WME // alpha WMEs by WME-side key
	kbuf  []byte               // reusable key scratch; activations are single-threaded per network
	stats joinStats            // observed activations, feeds the live cost estimator
}

// joinStats is a node's observed activation record: probes (or scans)
// and the candidates they examined. The ratio is the node's measured
// fanout — the live estimator's per-join cardinality signal.
type joinStats struct {
	probes int64
	cands  int64
}

// newJoinNode builds a join over the already-populated alpha memory,
// seeding the WME-side index when the join is indexable. The token
// side starts empty: the compiler left-activates it with every
// existing upstream token, which fills the index through onToken.
func newJoinNode(net *Network, parent betaSource, amem *alphaMem, tests []joinTest, out pairSink) *joinNode {
	j := &joinNode{net: net, parent: parent, amem: amem, tests: tests, out: out}
	if net.indexing {
		j.eq = eqSubset(tests)
	}
	if len(j.eq) > 0 {
		j.left = make(map[string][]*token)
		j.right = seedRightIndex(j.eq, amem)
	}
	return j
}

func (j *joinNode) onToken(t *token) {
	if len(j.eq) == 0 {
		j.net.metScan(&j.stats, len(j.amem.items))
		for w := range j.amem.items {
			if runTests(j.tests, t, w) {
				j.out.receive(t, w)
			}
		}
		return
	}
	key, ok := tokenIndexKey(j.eq, t, j.kbuf[:0])
	j.kbuf = key
	if !ok {
		// A tested attribute is missing up the chain: no WME can ever
		// join with this token, so it is not indexed at all.
		return
	}
	j.left[string(key)] = append(j.left[string(key)], t)
	bucket := j.right[string(key)]
	j.net.metProbe(&j.stats, len(bucket))
	for _, w := range bucket {
		if runTests(j.tests, t, w) {
			j.out.receive(t, w)
		}
	}
}

func (j *joinNode) onTokenGone(t *token) {
	if len(j.eq) == 0 {
		return
	}
	key, ok := tokenIndexKey(j.eq, t, j.kbuf[:0])
	j.kbuf = key
	if ok {
		tokenBucketRemove(j.left, key, t)
	}
}

func (j *joinNode) rightActivate(w *wm.WME) {
	if len(j.eq) == 0 {
		vts := j.parent.validTokens()
		j.net.metScan(&j.stats, len(vts))
		for _, t := range vts {
			if runTests(j.tests, t, w) {
				j.out.receive(t, w)
			}
		}
		return
	}
	key, ok := wmeIndexKey(j.eq, w, j.kbuf[:0])
	j.kbuf = key
	if !ok {
		return
	}
	j.right[string(key)] = append(j.right[string(key)], w)
	bucket := j.left[string(key)]
	j.net.metProbe(&j.stats, len(bucket))
	for _, t := range bucket {
		if runTests(j.tests, t, w) {
			j.out.receive(t, w)
		}
	}
}

func (j *joinNode) rightRetract(w *wm.WME) {
	if len(j.eq) == 0 {
		return
	}
	key, ok := wmeIndexKey(j.eq, w, j.kbuf[:0])
	j.kbuf = key
	if ok {
		wmeBucketRemove(j.right, key, w)
	}
}

// negNode implements a negated condition element. It owns one token
// per upstream token; a token is valid (propagates downstream) while
// its join-result set is empty. Like joinNode it keeps hash indexes
// over both sides when its tests include an equality test; the token
// side indexes every owned token (not just the valid ones), because a
// blocked token still collects further join results.
type negNode struct {
	net      *Network
	amem     *alphaMem
	tests    []joinTest
	items    []*token
	children []tokenSink

	eq    []joinTest
	left  map[string][]*token  // owned tokens by parent-chain key
	right map[string][]*wm.WME // alpha WMEs by WME-side key
	kbuf  []byte               // reusable key scratch; activations are single-threaded per network
	stats joinStats            // observed activations, feeds the live cost estimator
}

// newNegNode builds a negative node over the already-populated alpha
// memory, seeding the WME-side index when indexable.
func newNegNode(net *Network, amem *alphaMem, tests []joinTest) *negNode {
	n := &negNode{net: net, amem: amem, tests: tests}
	if net.indexing {
		n.eq = eqSubset(tests)
	}
	if len(n.eq) > 0 {
		n.left = make(map[string][]*token)
		n.right = seedRightIndex(n.eq, amem)
	}
	return n
}

func (n *negNode) validTokens() []*token {
	var out []*token
	for _, t := range n.items {
		if len(t.joinResults) == 0 {
			out = append(out, t)
		}
	}
	return out
}

func (n *negNode) addChildSink(s tokenSink) { n.children = append(n.children, s) }

func (n *negNode) removeChildSink(s tokenSink) { n.children = removeSink(n.children, s) }

func (n *negNode) onToken(parent *token) {
	t := &token{parent: parent, node: n, joinResults: make(map[*wm.WME]bool)}
	parent.addChild(t)
	n.items = append(n.items, t)
	if len(n.eq) > 0 {
		// Negative-node tests reference the parent chain: levelsUp in
		// compiled tests is relative to the upstream token.
		key, ok := tokenIndexKey(n.eq, parent, n.kbuf[:0])
		n.kbuf = key
		if ok {
			n.left[string(key)] = append(n.left[string(key)], t)
			bucket := n.right[string(key)]
			n.net.metProbe(&n.stats, len(bucket))
			for _, w := range bucket {
				if runTests(n.tests, parent, w) {
					t.joinResults[w] = true
					n.net.registerJoinResult(t, w)
				}
			}
		}
		// !ok: a tested attribute is missing, so no WME can ever match
		// the negated CE under this token — it stays valid forever and
		// needs no index entry.
	} else {
		n.net.metScan(&n.stats, len(n.amem.items))
		for w := range n.amem.items {
			if runTests(n.tests, parent, w) {
				t.joinResults[w] = true
				n.net.registerJoinResult(t, w)
			}
		}
	}
	if len(t.joinResults) == 0 {
		for _, c := range n.children {
			c.onToken(t)
		}
	}
}

func (n *negNode) rightActivate(w *wm.WME) {
	var candidates []*token
	if len(n.eq) > 0 {
		key, ok := wmeIndexKey(n.eq, w, n.kbuf[:0])
		n.kbuf = key
		if !ok {
			return
		}
		n.right[string(key)] = append(n.right[string(key)], w)
		candidates = n.left[string(key)]
		n.net.metProbe(&n.stats, len(candidates))
	} else {
		candidates = n.items
		n.net.metScan(&n.stats, len(candidates))
	}
	for _, t := range candidates {
		if !runTests(n.tests, t.parent, w) {
			continue
		}
		wasEmpty := len(t.joinResults) == 0
		t.joinResults[w] = true
		n.net.registerJoinResult(t, w)
		if wasEmpty {
			// The token just became invalid: retract everything that
			// was derived from it and unhook it from indexed children.
			n.net.deleteDescendants(t)
			for _, c := range n.children {
				c.onTokenGone(t)
			}
		}
	}
}

func (n *negNode) rightRetract(w *wm.WME) {
	if len(n.eq) == 0 {
		return
	}
	key, ok := wmeIndexKey(n.eq, w, n.kbuf[:0])
	n.kbuf = key
	if ok {
		wmeBucketRemove(n.right, key, w)
	}
}

// onTokenGone is the upstream-retraction notification. The negNode's
// own token for the gone upstream token is deleted through the token
// tree (its removeToken maintains the index), so nothing remains here.
func (n *negNode) onTokenGone(t *token) {}

func (n *negNode) removeToken(t *token) {
	for i, x := range n.items {
		if x == t {
			n.items = append(n.items[:i], n.items[i+1:]...)
			break
		}
	}
	if len(n.eq) > 0 && t.parent != nil {
		key, ok := tokenIndexKey(n.eq, t.parent, n.kbuf[:0])
		n.kbuf = key
		if ok {
			tokenBucketRemove(n.left, key, t)
		}
	}
	if len(t.joinResults) == 0 {
		// The token was valid, so indexed children hold it.
		for _, c := range n.children {
			c.onTokenGone(t)
		}
	}
}

// prodNode terminates a rule's chain and maintains its instantiations
// in the shared conflict set.
type prodNode struct {
	net       *Network
	rule      *match.Rule
	numLevels int
	// wmeOrder maps instantiation WME slots (the rule's positive CEs in
	// source order — action CE indices and instantiation keys depend on
	// that order) to chain plan levels.
	wmeOrder []int
	bindings map[string]bindingPos
	// viaToken is true when the last CE is negated: this node is
	// left-activated with the final token instead of a (token, WME) pair.
	viaToken bool
}

func (p *prodNode) receive(parent *token, w *wm.WME) {
	t := &token{parent: parent, w: w, node: p}
	parent.addChild(t)
	p.net.registerToken(t)
	p.activateToken(t, false)
}

func (p *prodNode) onToken(parent *token) {
	t := &token{parent: parent, node: p}
	parent.addChild(t)
	p.activateToken(t, true)
}

// onTokenGone is a no-op: the production node keeps no index of
// upstream tokens; its own tokens die through the token tree.
func (p *prodNode) onTokenGone(parent *token) {}

func (p *prodNode) activateToken(t *token, bookkeepingLevel bool) {
	// Collect the chain of CE-level tokens, oldest first.
	depth := p.numLevels
	if bookkeepingLevel {
		depth++ // the prod token itself is not a CE level
	}
	chain := make([]*token, p.numLevels)
	cur := t
	for i := depth - 1; i >= 0; i-- {
		if i < p.numLevels {
			chain[i] = cur
		}
		cur = cur.parent
	}
	wmes := make([]*wm.WME, len(p.wmeOrder))
	for i, lvl := range p.wmeOrder {
		wmes[i] = chain[lvl].w
	}
	b := make(match.Bindings, len(p.bindings))
	for v, pos := range p.bindings {
		b[v] = chain[pos.level].w.Attr(pos.attr)
	}
	in := &match.Instantiation{Rule: p.rule, WMEs: wmes, Bindings: b}
	t.instKey = in.Key()
	p.net.cs.Add(in)
}

// Network is the Rete matcher. It implements match.Matcher.
type Network struct {
	alphaByClass map[string][]*alphaMem
	alphaByKey   map[string]*alphaMem
	top          *memNode
	dummy        *token
	rules        map[string]*match.Rule
	cs           *match.ConflictSet
	wmes         map[*wm.WME]bool
	tokensByWME  map[*wm.WME][]*token
	jrOwners     map[*wm.WME][]*token // tokens whose joinResults include the WME

	// disc holds each class's constant-test discrimination network
	// (alpha.go); amemScratch and akbuf are pooled assert-path scratch
	// (activations are single-threaded per network), so routing a WME
	// allocates nothing.
	disc        map[string]*classDisc
	amemScratch []*alphaMem
	akbuf       []byte

	// indexing selects hashed memories for joins with equality tests;
	// it must be set before AddRule (join nodes capture it at compile).
	indexing bool
	// alphaIndexing routes asserts/retracts through the discrimination
	// network instead of the linear per-class alpha list. Must be set
	// before AddRule (patterns attach at compile).
	alphaIndexing bool
	// planning reorders condition elements by the static cost model
	// (cost.go); sharing caches structurally-equal beta prefixes across
	// rules (compile.go). Both must be set before AddRule.
	planning bool
	sharing  bool
	// adaptive enables replanning at the ConflictSet safe point; see
	// plan.go for the protocol and the two trigger parameters.
	adaptive       bool
	adaptThreshold float64
	adaptMinWork   int64

	classCount  map[string]int        // live WMEs per class, for the live estimator
	betaLevels  map[string]*betaLevel // shared beta prefixes by structural key
	chains      map[string]*ruleChain // compiled chain per rule
	foldedStats map[string]*joinStats // banked stats of retired nodes
	obsWork     int64                 // cumulative activation work (probes + candidates)
	lastEval    int64                 // obsWork at the last replan evaluation
	replanCount int64

	met *netMetrics
}

// New returns an empty network with hashed memories, cost-based
// condition ordering and beta-prefix sharing enabled.
func New() *Network {
	n := newNetwork()
	n.indexing = true
	n.alphaIndexing = true
	n.planning = true
	n.sharing = true
	return n
}

// NewSourceOrder returns an indexed network that compiles joins in
// rule-source order without beta sharing — the PR 4 network. It is the
// before-side of the join-planning experiments (E21) and the
// "rete-src" engine matcher.
func NewSourceOrder() *Network {
	n := newNetwork()
	n.indexing = true
	n.alphaIndexing = true
	return n
}

// NewLinear returns an empty network using the unindexed basic
// algorithm — every activation scans the opposite memory. It exists as
// the before-side of the indexing experiments and as an oracle cross-
// check; production configurations should use New.
func NewLinear() *Network { return newNetwork() }

func newNetwork() *Network {
	n := &Network{
		alphaByClass: make(map[string][]*alphaMem),
		alphaByKey:   make(map[string]*alphaMem),
		rules:        make(map[string]*match.Rule),
		cs:           match.NewConflictSet(),
		wmes:         make(map[*wm.WME]bool),
		tokensByWME:  make(map[*wm.WME][]*token),
		jrOwners:     make(map[*wm.WME][]*token),
		classCount:   make(map[string]int),
		betaLevels:   make(map[string]*betaLevel),
		chains:       make(map[string]*ruleChain),
		foldedStats:  make(map[string]*joinStats),
		disc:         make(map[string]*classDisc),

		adaptThreshold: 2.0,
		adaptMinWork:   4096,
	}
	n.top = &memNode{net: n}
	n.dummy = &token{node: n.top}
	n.top.items = []*token{n.dummy}
	return n
}

func (n *Network) registerToken(t *token) {
	if t.w != nil {
		n.tokensByWME[t.w] = append(n.tokensByWME[t.w], t)
	}
}

func (n *Network) registerJoinResult(owner *token, w *wm.WME) {
	n.jrOwners[w] = append(n.jrOwners[w], owner)
}

// ConflictSet returns the live conflict set. This is the adaptive
// replan safe point: no propagation is in flight, so the network may
// swap a rule's compiled chain here (see plan.go).
func (n *Network) ConflictSet() *match.ConflictSet {
	if n.adaptive {
		n.maybeReplan()
	}
	return n.cs
}

// TrackChanges enables membership journaling on the live conflict set,
// which this network maintains incrementally.
func (n *Network) TrackChanges(on bool) { n.cs.TrackChanges(on) }

// Insert adds a WME version to the network and propagates matches.
// With alpha indexing the WME is routed through the discrimination
// network (alpha.go) into pooled scratch; membership lands in every
// matched memory before any successor activates, so a cascading
// activation that reads another alpha memory of the same class sees a
// consistent view. The linear fallback walks every memory of the
// class and re-evaluates its predicate — the NewLinear baseline.
func (n *Network) Insert(w *wm.WME) {
	if n.wmes[w] {
		return
	}
	n.wmes[w] = true
	n.classCount[w.Class]++
	if n.alphaIndexing {
		mems := n.routeWME(w, n.amemScratch[:0])
		for _, am := range mems {
			am.items[w] = true
		}
		for _, am := range mems {
			for _, s := range am.successors {
				s.rightActivate(w)
			}
		}
		n.amemScratch = mems[:0]
		return
	}
	for _, am := range n.alphaByClass[w.Class] {
		if am.pred(w) {
			am.items[w] = true
			for _, s := range am.successors {
				s.rightActivate(w)
			}
		}
	}
}

// Remove retracts a WME version: tokens built on it are deleted, and
// negative-node tokens it was blocking may become valid again.
func (n *Network) Remove(w *wm.WME) {
	if !n.wmes[w] {
		return
	}
	delete(n.wmes, w)
	n.classCount[w.Class]--
	if n.classCount[w.Class] == 0 {
		delete(n.classCount, w.Class)
	}
	if n.alphaIndexing {
		// WME versions are immutable, so re-routing reproduces exactly
		// the memories the insert matched (or the back-fill populated).
		mems := n.routeWME(w, n.amemScratch[:0])
		for _, am := range mems {
			delete(am.items, w)
		}
		for _, am := range mems {
			for _, s := range am.successors {
				s.rightRetract(w)
			}
		}
		n.amemScratch = mems[:0]
	} else {
		for _, am := range n.alphaByClass[w.Class] {
			if am.items[w] {
				delete(am.items, w)
				for _, s := range am.successors {
					s.rightRetract(w)
				}
			}
		}
	}
	// Delete the token trees rooted at tokens that matched w.
	for _, t := range append([]*token(nil), n.tokensByWME[w]...) {
		n.deleteToken(t)
	}
	delete(n.tokensByWME, w)
	// Unblock negative-node tokens whose only join results included w.
	owners := append([]*token(nil), n.jrOwners[w]...)
	delete(n.jrOwners, w)
	for _, owner := range owners {
		if owner.joinResults == nil || !owner.joinResults[w] {
			continue // owner was itself deleted above
		}
		delete(owner.joinResults, w)
		if len(owner.joinResults) == 0 {
			neg := owner.node.(*negNode)
			for _, c := range neg.children {
				c.onToken(owner)
			}
		}
	}
}

// deleteDescendants removes everything derived from t but keeps t.
func (n *Network) deleteDescendants(t *token) {
	for len(t.children) > 0 {
		n.deleteToken(t.children[len(t.children)-1])
	}
}

// deleteToken removes t and its whole subtree from the network.
func (n *Network) deleteToken(t *token) {
	n.deleteDescendants(t)
	switch node := t.node.(type) {
	case *memNode:
		node.removeToken(t)
	case *negNode:
		node.removeToken(t)
		for w := range t.joinResults {
			n.unregisterJoinResult(t, w)
		}
		t.joinResults = nil
	case *prodNode:
		n.cs.Remove(t.instKey)
	}
	if t.w != nil {
		n.unregisterTokenWME(t)
	}
	if t.parent != nil {
		t.parent.removeChild(t)
	}
}

func (n *Network) unregisterTokenWME(t *token) {
	list := n.tokensByWME[t.w]
	for i, x := range list {
		if x == t {
			n.tokensByWME[t.w] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

func (n *Network) unregisterJoinResult(owner *token, w *wm.WME) {
	list := n.jrOwners[w]
	for i, x := range list {
		if x == owner {
			n.jrOwners[w] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// Stats reports network size for diagnostics and benchmarks.
type Stats struct {
	AlphaMems int
	WMEs      int
	Rules     int
	Insts     int
	Replans   int
}

// Stats returns current network statistics.
func (n *Network) Stats() Stats {
	return Stats{
		AlphaMems: len(n.alphaByKey),
		WMEs:      len(n.wmes),
		Rules:     len(n.rules),
		Insts:     n.cs.Len(),
		Replans:   int(n.replanCount),
	}
}

var _ match.Matcher = (*Network)(nil)

// errorf is a tiny indirection so compile errors share a prefix.
func errorf(format string, args ...interface{}) error {
	return fmt.Errorf("rete: "+format, args...)
}
