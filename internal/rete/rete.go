// Package rete implements the Rete match algorithm (Forgy 1982), the
// incremental matcher the paper assumes for the match phase: alpha
// memories with shared constant tests, beta memories joined by
// variable-consistency tests, negative nodes for negated condition
// elements, and token-tree deletion so removals are as incremental as
// insertions. Structure follows Doorenbos's "Production Matching for
// Large Learning Systems" basic algorithm, without unlinking.
package rete

import (
	"fmt"

	"pdps/internal/match"
	"pdps/internal/wm"
)

// token is one row of partial-match state: a chain of WMEs (one per
// condition element so far; nil at negative-CE levels).
type token struct {
	parent   *token
	w        *wm.WME
	node     interface{} // *memNode, *negNode or *prodNode owning this token
	children []*token

	// joinResults is used only for tokens owned by a negNode: the
	// WMEs currently matching the negated CE under this token.
	joinResults map[*wm.WME]bool

	// instKey is used only for tokens owned by a prodNode.
	instKey string
}

func (t *token) addChild(c *token) { t.children = append(t.children, c) }

func (t *token) removeChild(c *token) {
	for i, x := range t.children {
		if x == c {
			t.children = append(t.children[:i], t.children[i+1:]...)
			return
		}
	}
}

// up walks n steps towards the root and returns that ancestor.
func (t *token) up(n int) *token {
	for ; n > 0; n-- {
		t = t.parent
	}
	return t
}

// tokenSink consumes completed tokens of the previous level (left
// activation): join nodes, negative nodes, and production nodes (when
// the last condition element is negated).
type tokenSink interface {
	onToken(t *token)
}

// pairSink consumes (parent token, matching WME) pairs emitted by join
// nodes: beta memories and production nodes.
type pairSink interface {
	receive(parent *token, w *wm.WME)
}

// alphaSink is right-activated when a WME enters an alpha memory.
type alphaSink interface {
	rightActivate(w *wm.WME)
}

// joinTest compares an attribute of the candidate WME against an
// attribute of an earlier condition element's WME in the token chain.
type joinTest struct {
	op        match.Op
	ownAttr   string
	levelsUp  int // 0 = the join's parent token's own WME
	otherAttr string
}

func runTests(tests []joinTest, parent *token, w *wm.WME) bool {
	for _, jt := range tests {
		other := parent.up(jt.levelsUp).w
		if other == nil {
			return false
		}
		if !w.HasAttr(jt.ownAttr) || !other.HasAttr(jt.otherAttr) {
			return false
		}
		if !jt.op.Eval(w.Attr(jt.ownAttr), other.Attr(jt.otherAttr)) {
			return false
		}
	}
	return true
}

// alphaMem holds the WMEs passing one constant-test pattern. Alpha
// memories are shared between rules with identical patterns.
type alphaMem struct {
	key        string
	class      string
	pred       func(w *wm.WME) bool
	items      map[*wm.WME]bool
	successors []alphaSink
}

// memNode is a beta memory: it stores the tokens of one positive
// condition-element level.
type memNode struct {
	net      *Network
	items    []*token
	children []tokenSink
}

func (m *memNode) validTokens() []*token { return m.items }

func (m *memNode) receive(parent *token, w *wm.WME) {
	t := &token{parent: parent, w: w, node: m}
	parent.addChild(t)
	m.items = append(m.items, t)
	m.net.registerToken(t)
	for _, c := range m.children {
		c.onToken(t)
	}
}

func (m *memNode) removeToken(t *token) {
	for i, x := range m.items {
		if x == t {
			m.items = append(m.items[:i], m.items[i+1:]...)
			return
		}
	}
}

// betaSource is the upstream of a join node: a beta memory (all tokens
// valid) or a negative node (tokens with no join results are valid).
type betaSource interface {
	validTokens() []*token
	addChildSink(s tokenSink)
}

func (m *memNode) addChildSink(s tokenSink) { m.children = append(m.children, s) }

// joinNode joins its parent's tokens with its alpha memory's WMEs.
type joinNode struct {
	parent betaSource
	amem   *alphaMem
	tests  []joinTest
	out    pairSink
}

func (j *joinNode) onToken(t *token) {
	for w := range j.amem.items {
		if runTests(j.tests, t, w) {
			j.out.receive(t, w)
		}
	}
}

func (j *joinNode) rightActivate(w *wm.WME) {
	for _, t := range j.parent.validTokens() {
		if runTests(j.tests, t, w) {
			j.out.receive(t, w)
		}
	}
}

// negNode implements a negated condition element. It owns one token
// per upstream token; a token is valid (propagates downstream) while
// its join-result set is empty.
type negNode struct {
	net      *Network
	amem     *alphaMem
	tests    []joinTest
	items    []*token
	children []tokenSink
}

func (n *negNode) validTokens() []*token {
	var out []*token
	for _, t := range n.items {
		if len(t.joinResults) == 0 {
			out = append(out, t)
		}
	}
	return out
}

func (n *negNode) addChildSink(s tokenSink) { n.children = append(n.children, s) }

func (n *negNode) onToken(parent *token) {
	t := &token{parent: parent, node: n, joinResults: make(map[*wm.WME]bool)}
	parent.addChild(t)
	n.items = append(n.items, t)
	for w := range n.amem.items {
		// Negative-node tests reference the parent chain: levelsUp in
		// compiled tests is relative to the upstream token.
		if runTests(n.tests, parent, w) {
			t.joinResults[w] = true
			n.net.registerJoinResult(t, w)
		}
	}
	if len(t.joinResults) == 0 {
		for _, c := range n.children {
			c.onToken(t)
		}
	}
}

func (n *negNode) rightActivate(w *wm.WME) {
	for _, t := range n.items {
		if !runTests(n.tests, t.parent, w) {
			continue
		}
		wasEmpty := len(t.joinResults) == 0
		t.joinResults[w] = true
		n.net.registerJoinResult(t, w)
		if wasEmpty {
			// The token just became invalid: retract everything that
			// was derived from it.
			n.net.deleteDescendants(t)
		}
	}
}

func (n *negNode) removeToken(t *token) {
	for i, x := range n.items {
		if x == t {
			n.items = append(n.items[:i], n.items[i+1:]...)
			return
		}
	}
}

// prodNode terminates a rule's chain and maintains its instantiations
// in the shared conflict set.
type prodNode struct {
	net       *Network
	rule      *match.Rule
	numLevels int
	positive  []bool // per chain level; positive levels carry the CE's WME
	bindings  map[string]bindingPos
	// viaToken is true when the last CE is negated: this node is
	// left-activated with the final token instead of a (token, WME) pair.
	viaToken bool
}

func (p *prodNode) receive(parent *token, w *wm.WME) {
	t := &token{parent: parent, w: w, node: p}
	parent.addChild(t)
	p.net.registerToken(t)
	p.activateToken(t, false)
}

func (p *prodNode) onToken(parent *token) {
	t := &token{parent: parent, node: p}
	parent.addChild(t)
	p.activateToken(t, true)
}

func (p *prodNode) activateToken(t *token, bookkeepingLevel bool) {
	// Collect the chain of CE-level tokens, oldest first.
	depth := p.numLevels
	if bookkeepingLevel {
		depth++ // the prod token itself is not a CE level
	}
	chain := make([]*token, p.numLevels)
	cur := t
	for i := depth - 1; i >= 0; i-- {
		if i < p.numLevels {
			chain[i] = cur
		}
		cur = cur.parent
	}
	var wmes []*wm.WME
	for i, pos := range p.positive {
		if pos {
			wmes = append(wmes, chain[i].w)
		}
	}
	b := make(match.Bindings, len(p.bindings))
	for v, pos := range p.bindings {
		b[v] = chain[pos.level].w.Attr(pos.attr)
	}
	in := &match.Instantiation{Rule: p.rule, WMEs: wmes, Bindings: b}
	t.instKey = in.Key()
	p.net.cs.Add(in)
}

// Network is the Rete matcher. It implements match.Matcher.
type Network struct {
	alphaByClass map[string][]*alphaMem
	alphaByKey   map[string]*alphaMem
	top          *memNode
	dummy        *token
	rules        map[string]*match.Rule
	cs           *match.ConflictSet
	wmes         map[*wm.WME]bool
	tokensByWME  map[*wm.WME][]*token
	jrOwners     map[*wm.WME][]*token // tokens whose joinResults include the WME
}

// New returns an empty network.
func New() *Network {
	n := &Network{
		alphaByClass: make(map[string][]*alphaMem),
		alphaByKey:   make(map[string]*alphaMem),
		rules:        make(map[string]*match.Rule),
		cs:           match.NewConflictSet(),
		wmes:         make(map[*wm.WME]bool),
		tokensByWME:  make(map[*wm.WME][]*token),
		jrOwners:     make(map[*wm.WME][]*token),
	}
	n.top = &memNode{net: n}
	n.dummy = &token{node: n.top}
	n.top.items = []*token{n.dummy}
	return n
}

func (n *Network) registerToken(t *token) {
	if t.w != nil {
		n.tokensByWME[t.w] = append(n.tokensByWME[t.w], t)
	}
}

func (n *Network) registerJoinResult(owner *token, w *wm.WME) {
	n.jrOwners[w] = append(n.jrOwners[w], owner)
}

// ConflictSet returns the live conflict set.
func (n *Network) ConflictSet() *match.ConflictSet { return n.cs }

// TrackChanges enables membership journaling on the live conflict set,
// which this network maintains incrementally.
func (n *Network) TrackChanges(on bool) { n.cs.TrackChanges(on) }

// Insert adds a WME version to the network and propagates matches.
func (n *Network) Insert(w *wm.WME) {
	if n.wmes[w] {
		return
	}
	n.wmes[w] = true
	for _, am := range n.alphaByClass[w.Class] {
		if am.pred(w) {
			am.items[w] = true
			for _, s := range am.successors {
				s.rightActivate(w)
			}
		}
	}
}

// Remove retracts a WME version: tokens built on it are deleted, and
// negative-node tokens it was blocking may become valid again.
func (n *Network) Remove(w *wm.WME) {
	if !n.wmes[w] {
		return
	}
	delete(n.wmes, w)
	for _, am := range n.alphaByClass[w.Class] {
		delete(am.items, w)
	}
	// Delete the token trees rooted at tokens that matched w.
	for _, t := range append([]*token(nil), n.tokensByWME[w]...) {
		n.deleteToken(t)
	}
	delete(n.tokensByWME, w)
	// Unblock negative-node tokens whose only join results included w.
	owners := append([]*token(nil), n.jrOwners[w]...)
	delete(n.jrOwners, w)
	for _, owner := range owners {
		if owner.joinResults == nil || !owner.joinResults[w] {
			continue // owner was itself deleted above
		}
		delete(owner.joinResults, w)
		if len(owner.joinResults) == 0 {
			neg := owner.node.(*negNode)
			for _, c := range neg.children {
				c.onToken(owner)
			}
		}
	}
}

// deleteDescendants removes everything derived from t but keeps t.
func (n *Network) deleteDescendants(t *token) {
	for len(t.children) > 0 {
		n.deleteToken(t.children[len(t.children)-1])
	}
}

// deleteToken removes t and its whole subtree from the network.
func (n *Network) deleteToken(t *token) {
	n.deleteDescendants(t)
	switch node := t.node.(type) {
	case *memNode:
		node.removeToken(t)
	case *negNode:
		node.removeToken(t)
		for w := range t.joinResults {
			n.unregisterJoinResult(t, w)
		}
		t.joinResults = nil
	case *prodNode:
		n.cs.Remove(t.instKey)
	}
	if t.w != nil {
		n.unregisterTokenWME(t)
	}
	if t.parent != nil {
		t.parent.removeChild(t)
	}
}

func (n *Network) unregisterTokenWME(t *token) {
	list := n.tokensByWME[t.w]
	for i, x := range list {
		if x == t {
			n.tokensByWME[t.w] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

func (n *Network) unregisterJoinResult(owner *token, w *wm.WME) {
	list := n.jrOwners[w]
	for i, x := range list {
		if x == owner {
			n.jrOwners[w] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// Stats reports network size for diagnostics and benchmarks.
type Stats struct {
	AlphaMems int
	WMEs      int
	Rules     int
	Insts     int
}

// Stats returns current network statistics.
func (n *Network) Stats() Stats {
	return Stats{
		AlphaMems: len(n.alphaByKey),
		WMEs:      len(n.wmes),
		Rules:     len(n.rules),
		Insts:     n.cs.Len(),
	}
}

var _ match.Matcher = (*Network)(nil)

// errorf is a tiny indirection so compile errors share a prefix.
func errorf(format string, args ...interface{}) error {
	return fmt.Errorf("rete: "+format, args...)
}
