package rete

import (
	"fmt"
	"sort"
	"strings"

	"pdps/internal/match"
)

// This file owns the compiled-plan bookkeeping behind cost-based
// compilation (cost.go): the per-rule chain records, the shared
// beta-level cache, chain teardown, and adaptive replanning.
//
// Replan safe-point protocol: a Network is single-threaded (the engine
// serialises matcher calls; ShardedMatcher confines each shard to one
// goroutine per phase), so the only safe point needed is "not inside a
// propagation". maybeReplan runs at the top of ConflictSet() — between
// conflict-set refreshes from the engine's point of view. A replan
// tears the rule's exclusive suffix down through the ordinary
// token-deletion paths (removing the rule's instantiations) and
// recompiles the chain against live memories, which re-derives exactly
// the same instantiation keys: consumers that journal conflict-set
// changes see a remove+add pair per live instantiation and resolve it
// as a no-op via ConflictSet.Contains (see Parallel.refresh and
// ShardedMatcher.mergeShard).

// betaLevel is one shared-able level of a compiled chain: a join node
// feeding a beta memory, or a negative node. Levels are cached by the
// structural prefix key, so rules whose reordered CE prefixes are
// structurally equal share the nodes; refs counts the rules using the
// level.
type betaLevel struct {
	key    string
	refs   int
	parent betaSource
	join   *joinNode // nil for negated levels
	mem    *memNode  // nil for negated levels
	neg    *negNode  // nil for positive levels
}

// source is the betaSource this level exposes downstream.
func (bl *betaLevel) source() betaSource {
	if bl.neg != nil {
		return bl.neg
	}
	return bl.mem
}

// ruleChain records one rule's compiled form: the condition order, the
// (possibly shared) levels, and the exclusive last join when the final
// plan level is positive. When the final level is negated the
// production hangs off that level's negative node instead.
type ruleChain struct {
	r          *match.Rule
	order      []int // plan level -> original CE index
	cost       float64
	levels     []*betaLevel
	lastJoin   *joinNode  // exclusive pair-sink join; nil when the last CE is negated
	lastParent betaSource // the last join's upstream (for detaching)
	prod       *prodNode
	replans    int
}

// sourceItems returns the tokens a beta source owns (valid or not).
func sourceItems(s betaSource) []*token {
	switch src := s.(type) {
	case *memNode:
		return src.items
	case *negNode:
		return src.items
	}
	return nil
}

// removeChain tears a rule's compiled chain out of the network: shared
// levels lose a reference, the dead suffix (refs hitting zero is
// monotone along a chain) is drained through the ordinary
// token-deletion paths — maintaining hash indexes, join-result
// registries and the conflict set — and the dead nodes are unhooked
// from the surviving graph. Observed join statistics are banked for
// the live estimator before the nodes go.
func (n *Network) removeChain(rc *ruleChain) {
	firstDead := len(rc.levels)
	for i := len(rc.levels) - 1; i >= 0; i-- {
		rc.levels[i].refs--
		if rc.levels[i].refs == 0 {
			firstDead = i
		}
	}
	if firstDead < len(rc.levels) {
		// A dead token-owning node exists: deleting its tokens cascades
		// through every dead descendant, the production's included.
		for _, t := range append([]*token(nil), sourceItems(rc.levels[firstDead].source())...) {
			n.deleteToken(t)
		}
	} else {
		// Every level survives (fully shared prefix, or a bare last
		// join off the dummy top): the production's tokens hang under
		// live parents — sweep them out individually.
		var parents []*token
		if rc.prod.viaToken {
			parents = sourceItems(rc.levels[len(rc.levels)-1].source())
		} else {
			parents = sourceItems(rc.lastParent)
		}
		for _, t := range append([]*token(nil), parents...) {
			for _, c := range append([]*token(nil), t.children...) {
				if c.node == rc.prod {
					n.deleteToken(c)
				}
			}
		}
	}
	for i := firstDead; i < len(rc.levels); i++ {
		bl := rc.levels[i]
		if bl.join != nil {
			n.foldStats(joinStatsKey(bl.join.amem.key, bl.join.tests), bl.join.stats)
			bl.parent.removeChildSink(bl.join)
			bl.join.amem.removeSuccessor(bl.join)
			n.maybeGCAlpha(bl.join.amem)
		}
		if bl.neg != nil {
			n.foldStats(joinStatsKey(bl.neg.amem.key, bl.neg.tests), bl.neg.stats)
			bl.parent.removeChildSink(bl.neg)
			bl.neg.amem.removeSuccessor(bl.neg)
			n.maybeGCAlpha(bl.neg.amem)
		}
		if n.sharing {
			delete(n.betaLevels, bl.key)
		}
	}
	if rc.lastJoin != nil {
		n.foldStats(joinStatsKey(rc.lastJoin.amem.key, rc.lastJoin.tests), rc.lastJoin.stats)
		rc.lastParent.removeChildSink(rc.lastJoin)
		rc.lastJoin.amem.removeSuccessor(rc.lastJoin)
		n.maybeGCAlpha(rc.lastJoin.amem)
	} else if firstDead == len(rc.levels) {
		// The production hangs off a surviving shared negative node.
		rc.levels[len(rc.levels)-1].neg.removeChildSink(rc.prod)
	}
}

// RemoveRule tears a rule's compiled chain out of the network: its
// instantiations leave the conflict set, shared beta levels drop a
// reference (exclusive suffixes are drained and unhooked), and alpha
// memories left without successors are garbage-collected along with
// their discrimination-network paths, so removed rules stop taxing
// the assert path entirely. Removing an unknown rule is an error.
func (n *Network) RemoveRule(name string) error {
	rc := n.chains[name]
	if rc == nil {
		return errorf("unknown rule %s", name)
	}
	n.removeChain(rc)
	delete(n.chains, name)
	delete(n.rules, name)
	n.updatePlanGauges()
	return nil
}

// SetAdaptive enables or disables adaptive replanning: at every
// ConflictSet call (a safe point between conflict-set refreshes) the
// network re-estimates each rule's plan against live cardinalities and
// observed join fanouts, and recompiles a rule whose current plan
// costs more than the threshold times the best alternative. Only
// meaningful on networks built by New (planning enabled).
func (n *Network) SetAdaptive(on bool) { n.adaptive = on }

// SetAdaptiveParams overrides the replan trigger: threshold is the
// current-vs-best estimated cost ratio that forces a recompile
// (default 2.0), minWork the activation work (index probes plus
// candidates examined) accumulated between evaluations (default 4096).
// Exposed for tests and experiments that need aggressive replanning.
func (n *Network) SetAdaptiveParams(threshold float64, minWork int64) {
	if threshold > 0 {
		n.adaptThreshold = threshold
	}
	if minWork > 0 {
		n.adaptMinWork = minWork
	}
}

// maybeReplan is the adaptive-replan evaluation, run at the
// ConflictSet safe point. Rules are visited in name order so replay
// under a deterministic schedule reproduces replans bit-for-bit.
func (n *Network) maybeReplan() {
	if n.obsWork-n.lastEval < n.adaptMinWork {
		return
	}
	n.lastEval = n.obsWork
	names := make([]string, 0, len(n.chains))
	for name := range n.chains {
		names = append(names, name)
	}
	sort.Strings(names)
	est := n.liveEstimator()
	changed := false
	for _, name := range names {
		rc := n.chains[name]
		cur := planCostFor(rc.r, rc.order, est)
		order, best := planOrderWith(rc.r, est)
		if equalOrder(order, rc.order) || best*n.adaptThreshold >= cur {
			continue
		}
		n.removeChain(rc)
		nc := n.compileChain(rc.r, order, best)
		nc.replans = rc.replans + 1
		n.chains[name] = nc
		n.replanCount++
		if n.met != nil {
			n.met.replans.Inc()
		}
		changed = true
	}
	if changed {
		n.updatePlanGauges()
		// Rebuilding memories re-ran seed activations; restart the
		// observation window so they don't immediately re-trigger.
		n.lastEval = n.obsWork
	}
}

// foldStats banks a retiring node's observed statistics so the live
// estimator keeps its knowledge across recompiles.
func (n *Network) foldStats(key string, s joinStats) {
	if s.probes == 0 && s.cands == 0 {
		return
	}
	cur := n.foldedStats[key]
	if cur == nil {
		cur = &joinStats{}
		n.foldedStats[key] = cur
	}
	cur.probes += s.probes
	cur.cands += s.cands
}

func equalOrder(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// updatePlanGauges publishes the plan-cost and shared-beta gauges.
func (n *Network) updatePlanGauges() {
	if n.met == nil {
		return
	}
	var cost float64
	for _, rc := range n.chains {
		cost += rc.cost
	}
	n.met.planCost.Set(int64(cost))
	shared := int64(0)
	for _, bl := range n.betaLevels {
		if bl.refs > 1 {
			shared++
		}
	}
	n.met.sharedBeta.Set(shared)
	n.met.sharedAlpha.Set(n.countSharedAlpha())
}

// RulePlan reports one rule's compiled join order for diagnostics:
// the CE classes in plan order (with their original indices), which
// levels are shared with other rules, the estimated plan cost, and how
// often adaptive replanning recompiled the rule.
type RulePlan struct {
	Rule    string
	Order   []int // plan level -> original CE index
	Classes []string
	Negated []bool
	Shared  []bool
	// AlphaShared marks levels whose alpha memory feeds more than one
	// successor — the cross-rule constant-test factoring achieved by
	// the discrimination network.
	AlphaShared []bool
	Cost        float64
	Replans     int
}

// String renders the plan compactly: each level as class[origIdx],
// negated levels prefixed with ~, beta-shared levels suffixed with *,
// alpha-shared levels suffixed with '.
func (p RulePlan) String() string {
	var b strings.Builder
	b.WriteString(p.Rule)
	b.WriteByte(':')
	for i, cls := range p.Classes {
		b.WriteByte(' ')
		if p.Negated[i] {
			b.WriteByte('~')
		}
		fmt.Fprintf(&b, "%s[%d]", cls, p.Order[i])
		if p.Shared[i] {
			b.WriteByte('*')
		}
		if i < len(p.AlphaShared) && p.AlphaShared[i] {
			b.WriteByte('\'')
		}
	}
	fmt.Fprintf(&b, " (cost %.0f", p.Cost)
	if p.Replans > 0 {
		fmt.Fprintf(&b, ", replans %d", p.Replans)
	}
	b.WriteByte(')')
	return b.String()
}

// Plans reports every rule's current compiled plan, sorted by rule
// name.
func (n *Network) Plans() []RulePlan {
	names := make([]string, 0, len(n.chains))
	for name := range n.chains {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]RulePlan, 0, len(names))
	for _, name := range names {
		rc := n.chains[name]
		p := RulePlan{
			Rule:    name,
			Order:   append([]int(nil), rc.order...),
			Cost:    rc.cost,
			Replans: rc.replans,
		}
		for lvl, orig := range rc.order {
			c := rc.r.Conditions[orig]
			p.Classes = append(p.Classes, c.Class)
			p.Negated = append(p.Negated, c.Negated)
			p.Shared = append(p.Shared, lvl < len(rc.levels) && rc.levels[lvl].refs > 1)
			var am *alphaMem
			switch {
			case lvl < len(rc.levels):
				if bl := rc.levels[lvl]; bl.join != nil {
					am = bl.join.amem
				} else {
					am = bl.neg.amem
				}
			case rc.lastJoin != nil:
				am = rc.lastJoin.amem
			}
			p.AlphaShared = append(p.AlphaShared, am != nil && len(am.successors) > 1)
		}
		out = append(out, p)
	}
	return out
}

// Replans returns how many adaptive recompiles the network has done.
func (n *Network) Replans() int64 { return n.replanCount }
