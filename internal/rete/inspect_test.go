package rete

import (
	"strings"
	"testing"

	"pdps/internal/match"
	"pdps/internal/wm"
)

func TestTopologyAndSharing(t *testing.T) {
	mk := func(name string) *match.Rule {
		return &match.Rule{
			Name: name,
			Conditions: []match.Condition{
				{Class: "a", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
				{Class: "b", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
				{Class: "c", Negated: true, Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
			},
			Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
		}
	}
	n := New()
	if err := n.AddRule(mk("r1")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddRule(mk("r2")); err != nil {
		t.Fatal(err)
	}
	// The planner orders each rule (a, ¬c, b): the negation's expected
	// survivors undercut b's unconstrained join. Both rules share the
	// whole (a, ¬c) prefix; only the final b join is per-rule.
	top := n.Topology()
	if top.AlphaMems != 3 {
		t.Fatalf("alpha mems = %d, want 3 (shared)", top.AlphaMems)
	}
	if top.SharedAlph != 1 { // b's alpha feeds both rules' final joins
		t.Fatalf("shared alphas = %d, want 1", top.SharedAlph)
	}
	if top.ProdNodes != 2 {
		t.Fatalf("prod nodes = %d, want 2", top.ProdNodes)
	}
	if top.NegNodes != 1 { // shared ¬c level
		t.Fatalf("neg nodes = %d, want 1", top.NegNodes)
	}
	if top.JoinNodes != 3 { // shared a join + one exclusive b join per rule
		t.Fatalf("join nodes = %d, want 3", top.JoinNodes)
	}
	if top.MemNodes != 2 { // top mem + shared a beta mem
		t.Fatalf("mem nodes = %d, want 2", top.MemNodes)
	}
	if top.SharedBeta != 2 { // the a level and the ¬c level
		t.Fatalf("shared betas = %d, want 2", top.SharedBeta)
	}

	// Source-order compilation without sharing keeps the PR 4 shape:
	// two joins and two beta mems per rule, nothing shared below alpha.
	src := NewSourceOrder()
	if err := src.AddRule(mk("r1")); err != nil {
		t.Fatal(err)
	}
	if err := src.AddRule(mk("r2")); err != nil {
		t.Fatal(err)
	}
	stop := src.Topology()
	if stop.JoinNodes != 4 || stop.NegNodes != 2 || stop.MemNodes != 5 || stop.SharedBeta != 0 {
		t.Fatalf("source-order topology = %+v", stop)
	}
}

func TestDotOutput(t *testing.T) {
	n := New()
	if err := n.AddRule(joinRule()); err != nil {
		t.Fatal(err)
	}
	s := wm.NewStore()
	n.Insert(s.Insert("part", attrs("id", 1, "status", "ready")))

	dot := n.Dot()
	for _, frag := range []string{"digraph rete", "shape=box", "shape=diamond", "doublecircle", `"pass"`, "top ->"} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("Dot missing %q:\n%s", frag, dot)
		}
	}
	// Deterministic output.
	if n.Dot() != dot {
		t.Fatal("Dot not deterministic")
	}
}

func TestTopologyNegFirst(t *testing.T) {
	r := &match.Rule{
		Name: "negfirst",
		Conditions: []match.Condition{
			{Class: "gate", Negated: true},
			{Class: "job"},
		},
		Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
	}
	n := New()
	if err := n.AddRule(r); err != nil {
		t.Fatal(err)
	}
	top := n.Topology()
	if top.NegNodes != 1 || top.JoinNodes != 1 || top.ProdNodes != 1 {
		t.Fatalf("topology = %+v", top)
	}
	if !strings.Contains(n.Dot(), "invhouse") {
		t.Fatal("Dot missing negative node")
	}
}
