package rete

import (
	"strings"
	"testing"

	"pdps/internal/match"
	"pdps/internal/wm"
)

func TestTopologyAndSharing(t *testing.T) {
	mk := func(name string) *match.Rule {
		return &match.Rule{
			Name: name,
			Conditions: []match.Condition{
				{Class: "a", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
				{Class: "b", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
				{Class: "c", Negated: true, Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
			},
			Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
		}
	}
	n := New()
	if err := n.AddRule(mk("r1")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddRule(mk("r2")); err != nil {
		t.Fatal(err)
	}
	top := n.Topology()
	if top.AlphaMems != 3 {
		t.Fatalf("alpha mems = %d, want 3 (shared)", top.AlphaMems)
	}
	if top.SharedAlph != 3 {
		t.Fatalf("shared alphas = %d, want 3", top.SharedAlph)
	}
	if top.ProdNodes != 2 {
		t.Fatalf("prod nodes = %d, want 2", top.ProdNodes)
	}
	if top.NegNodes != 2 {
		t.Fatalf("neg nodes = %d, want 2", top.NegNodes)
	}
	if top.JoinNodes != 4 { // two per rule (two positive CEs each)
		t.Fatalf("join nodes = %d, want 4", top.JoinNodes)
	}
	// top mem + two beta mems per rule (each positive CE's join feeds
	// one, since the final CE is the negated one).
	if top.MemNodes != 5 {
		t.Fatalf("mem nodes = %d, want 5", top.MemNodes)
	}
}

func TestDotOutput(t *testing.T) {
	n := New()
	if err := n.AddRule(joinRule()); err != nil {
		t.Fatal(err)
	}
	s := wm.NewStore()
	n.Insert(s.Insert("part", attrs("id", 1, "status", "ready")))

	dot := n.Dot()
	for _, frag := range []string{"digraph rete", "shape=box", "shape=diamond", "doublecircle", `"pass"`, "top ->"} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("Dot missing %q:\n%s", frag, dot)
		}
	}
	// Deterministic output.
	if n.Dot() != dot {
		t.Fatal("Dot not deterministic")
	}
}

func TestTopologyNegFirst(t *testing.T) {
	r := &match.Rule{
		Name: "negfirst",
		Conditions: []match.Condition{
			{Class: "gate", Negated: true},
			{Class: "job"},
		},
		Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
	}
	n := New()
	if err := n.AddRule(r); err != nil {
		t.Fatal(err)
	}
	top := n.Topology()
	if top.NegNodes != 1 || top.JoinNodes != 1 || top.ProdNodes != 1 {
		t.Fatalf("topology = %+v", top)
	}
	if !strings.Contains(n.Dot(), "invhouse") {
		t.Fatal("Dot missing negative node")
	}
}
