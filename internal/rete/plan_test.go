package rete

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"pdps/internal/match"
	"pdps/internal/obs"
	"pdps/internal/wm"
)

// csKeys snapshots a conflict set as sorted instantiation keys.
func csKeys(cs *match.ConflictSet) []string {
	var keys []string
	for _, in := range cs.All() {
		keys = append(keys, in.Key())
	}
	sort.Strings(keys)
	return keys
}

// assertDrained extends assertIndexesEmpty to the network-wide token
// bookkeeping: after working memory is fully retracted nothing may
// remain in the WME registries or any chain level's memory.
func assertDrained(t *testing.T, n *Network) {
	t.Helper()
	assertIndexesEmpty(t, n)
	for w, ts := range n.tokensByWME {
		if len(ts) > 0 {
			t.Errorf("tokensByWME leaks %d tokens for %v", len(ts), w)
		}
	}
	for w, owners := range n.jrOwners {
		if len(owners) > 0 {
			t.Errorf("jrOwners leaks %d owners for %v", len(owners), w)
		}
	}
	// A token whose whole ancestry is WME-free is legitimately resident
	// on an empty working memory: a chain led by negated CEs passes the
	// root token through while nothing blocks it. Anything referencing
	// a WME is a leak.
	holdsWME := func(tok *token) bool {
		for ; tok != nil; tok = tok.parent {
			if tok.w != nil {
				return true
			}
		}
		return false
	}
	for name, rc := range n.chains {
		for lvl, bl := range rc.levels {
			for _, tok := range sourceItems(bl.source()) {
				if holdsWME(tok) {
					t.Errorf("rule %s level %d holds a WME-bearing token after drain", name, lvl)
				}
			}
		}
	}
}

// TestStaticPlanOrdering checks the compile-time planner: a rule whose
// selective constant-tested CE sits last is reordered to lead with it,
// while an already well-ordered rule compiles exactly as written (the
// tie-break keeps source order).
func TestStaticPlanOrdering(t *testing.T) {
	misordered := &match.Rule{
		Name: "mis",
		Conditions: []match.Condition{
			{Class: "wide", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
			{Class: "sel", Tests: []match.AttrTest{
				{Attr: "hot", Op: match.OpEq, Const: wm.Bool(true)},
				{Attr: "k", Op: match.OpEq, Var: "x"},
			}},
		},
		Actions: []match.Action{{Kind: match.ActHalt}},
	}
	n := New()
	if err := n.AddRule(misordered); err != nil {
		t.Fatal(err)
	}
	if err := n.AddRule(chainRule("ordered", 3)); err != nil {
		t.Fatal(err)
	}
	plans := n.Plans()
	if len(plans) != 2 {
		t.Fatalf("plans = %d, want 2", len(plans))
	}
	if got, want := plans[0].Order, []int{1, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("misordered rule plan = %v, want %v", got, want)
	}
	if got, want := plans[1].Order, []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("well-ordered rule plan = %v, want %v (source order)", got, want)
	}
	if s := plans[0].String(); s != "mis: sel[1] wide[0] (cost 1153)" {
		t.Fatalf("plan rendering = %q", s)
	}

	// Source-order compilation must report identity orders.
	src := NewSourceOrder()
	if err := src.AddRule(misordered); err != nil {
		t.Fatal(err)
	}
	if got, want := src.Plans()[0].Order, []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("source-order plan = %v, want %v", got, want)
	}
}

// TestAdaptiveReplanEquivalence forces a mid-run replan and proves the
// conflict set is identical before and after the chain swap, then
// drains working memory and checks nothing leaked from the retired
// subnetwork.
func TestAdaptiveReplanEquivalence(t *testing.T) {
	reg := obs.NewRegistry()
	n := New()
	n.SetMetrics(reg)
	n.SetAdaptive(true)
	n.SetAdaptiveParams(2.0, 1)
	r := &match.Rule{
		Name: "skew",
		Conditions: []match.Condition{
			{Class: "big", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
			{Class: "tiny", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
		},
		Actions: []match.Action{{Kind: match.ActHalt}},
	}
	if err := n.AddRule(r); err != nil {
		t.Fatal(err)
	}
	// Statically big and tiny tie, so source order survives: big leads.
	if got, want := n.Plans()[0].Order, []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("static plan = %v, want %v", got, want)
	}
	s := wm.NewStore()
	var ws []*wm.WME
	for i := 0; i < 256; i++ {
		w := s.Insert("big", map[string]wm.Value{"k": wm.Int(int64(i))})
		ws = append(ws, w)
		n.Insert(w)
	}
	for i := 0; i < 2; i++ {
		w := s.Insert("tiny", map[string]wm.Value{"k": wm.Int(int64(i))})
		ws = append(ws, w)
		n.Insert(w)
	}
	before := csKeys(n.cs) // read without triggering the safe point
	if len(before) != 2 {
		t.Fatalf("before replan: %d insts, want 2", len(before))
	}

	// The safe-point call sees 256-vs-2 live cardinalities and flips the
	// plan to lead with tiny.
	after := csKeys(n.ConflictSet())
	if n.Replans() != 1 {
		t.Fatalf("replans = %d, want 1", n.Replans())
	}
	if got, want := n.Plans()[0].Order, []int{1, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("live plan = %v, want %v", got, want)
	}
	if n.Plans()[0].Replans != 1 {
		t.Fatalf("per-rule replan count = %d, want 1", n.Plans()[0].Replans)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("conflict set changed across replan:\nbefore %v\nafter  %v", before, after)
	}
	if got := reg.Counter("rete_replan_total").Value(); got != 1 {
		t.Fatalf("rete_replan_total = %d, want 1", got)
	}

	// The swapped-in network must stay incremental: churn and drain.
	w := s.Insert("tiny", map[string]wm.Value{"k": wm.Int(100)})
	n.Insert(w)
	if got := n.cs.Len(); got != 3 {
		t.Fatalf("post-replan insert: %d insts, want 3", got)
	}
	n.Remove(w)
	for _, w := range ws {
		n.Remove(w)
	}
	if got := n.cs.Len(); got != 0 {
		t.Fatalf("drained: %d insts, want 0", got)
	}
	assertDrained(t, n)
}

// TestReplanNoLeakUnderSharing is the leak regression for chain
// teardown with shared prefixes: two rules share a reordered prefix,
// aggressive replanning swaps chains mid-churn, and a full retraction
// must drain every index, registry and memory.
func TestReplanNoLeakUnderSharing(t *testing.T) {
	n := newAggressiveAdaptive()
	mk := func(name, lastClass string) *match.Rule {
		return &match.Rule{
			Name: name,
			Conditions: []match.Condition{
				{Class: "c0", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
				{Class: "c1", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
				{Class: lastClass, Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
				{Class: "gate", Negated: true, Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
			},
			Actions: []match.Action{{Kind: match.ActHalt}},
		}
	}
	if err := n.AddRule(mk("r1", "c2")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddRule(mk("r2", "c3")); err != nil {
		t.Fatal(err)
	}
	s := wm.NewStore()
	var ws []*wm.WME
	classes := []string{"c0", "c1", "c2", "c3", "gate"}
	for round := 0; round < 6; round++ {
		for i, cls := range classes {
			// Skew the cardinalities differently each round so the live
			// planner keeps finding better orders.
			copies := 1 + (round+i)%3
			for c := 0; c < copies; c++ {
				w := s.Insert(cls, map[string]wm.Value{"k": wm.Int(int64(c % 2))})
				ws = append(ws, w)
				n.Insert(w)
			}
		}
		n.ConflictSet() // safe point: evaluate and maybe swap chains
		// Retract a prefix of the oldest WMEs to force unindexing through
		// whatever chain shape is live right now.
		cut := len(ws) / 3
		for _, w := range ws[:cut] {
			n.Remove(w)
		}
		ws = append([]*wm.WME(nil), ws[cut:]...)
		n.ConflictSet()
	}
	if n.Replans() == 0 {
		t.Fatal("churn never triggered a replan; the regression test is not exercising teardown")
	}
	for _, w := range ws {
		n.Remove(w)
	}
	if got := n.ConflictSet().Len(); got != 0 {
		t.Fatalf("drained: %d insts, want 0", got)
	}
	assertDrained(t, n)
}

// TestSharedPrefixSeeding checks that a rule added late shares the
// already-populated prefix of an earlier rule without re-seeding it,
// and that both rules' instantiations list WMEs in source-CE order.
func TestSharedPrefixSeeding(t *testing.T) {
	n := New()
	if err := n.AddRule(chainRule("first", 3)); err != nil {
		t.Fatal(err)
	}
	s := wm.NewStore()
	for i := 0; i < 3; i++ {
		for c := 0; c < 3; c++ {
			n.Insert(s.Insert(fmt.Sprintf("c%d", c), map[string]wm.Value{"k": wm.Int(int64(i))}))
		}
	}
	if got := n.ConflictSet().Len(); got != 3 {
		t.Fatalf("first rule: %d insts, want 3", got)
	}
	if err := n.AddRule(chainRule("second", 3)); err != nil {
		t.Fatal(err)
	}
	if got := n.ConflictSet().Len(); got != 6 {
		t.Fatalf("after shared late rule: %d insts, want 6", got)
	}
	if top := n.Topology(); top.SharedBeta == 0 {
		t.Fatalf("identical rules share no beta levels: %+v", top)
	}
	for _, in := range n.ConflictSet().All() {
		if len(in.WMEs) != 3 {
			t.Fatalf("instantiation lists %d WMEs, want 3", len(in.WMEs))
		}
		for i, w := range in.WMEs {
			if want := fmt.Sprintf("c%d", i); w.Class != want {
				t.Fatalf("WME slot %d holds class %s, want %s (source order)", i, w.Class, want)
			}
		}
	}
}
