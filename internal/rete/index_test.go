package rete

import (
	"fmt"
	"testing"

	"pdps/internal/match"
	"pdps/internal/obs"
	"pdps/internal/wm"
)

// chainRule joins depth classes on a shared key attribute:
// (c0 ^k x) (c1 ^k x) ... — every non-first join carries one equality
// test and is indexable.
func chainRule(name string, depth int) *match.Rule {
	r := &match.Rule{Name: name, Actions: []match.Action{{Kind: match.ActHalt}}}
	for i := 0; i < depth; i++ {
		r.Conditions = append(r.Conditions, match.Condition{
			Class: fmt.Sprintf("c%d", i),
			Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}},
		})
	}
	return r
}

// TestIndexedJoinChain cross-checks a three-deep equality chain between
// the indexed and linear networks under insert/remove churn, including
// cross-kind numeric keys (Int vs Float).
func TestIndexedJoinChain(t *testing.T) {
	idx, lin := New(), NewLinear()
	for _, n := range []*Network{idx, lin} {
		if err := n.AddRule(chainRule("chain", 3)); err != nil {
			t.Fatal(err)
		}
	}
	s := wm.NewStore()
	var ws []*wm.WME
	for i := 0; i < 12; i++ {
		var k wm.Value
		if i%2 == 0 {
			k = wm.Int(int64(i % 4))
		} else {
			k = wm.Float(float64(i % 4)) // numerically equal to the Int key
		}
		w := s.Insert(fmt.Sprintf("c%d", i%3), map[string]wm.Value{"k": k})
		ws = append(ws, w)
		idx.Insert(w)
		lin.Insert(w)
		if a, b := idx.ConflictSet().Len(), lin.ConflictSet().Len(); a != b {
			t.Fatalf("insert %d: indexed=%d linear=%d", i, a, b)
		}
	}
	if idx.ConflictSet().Len() == 0 {
		t.Fatal("workload produced no joins")
	}
	for i, w := range ws {
		idx.Remove(w)
		lin.Remove(w)
		if a, b := idx.ConflictSet().Len(), lin.ConflictSet().Len(); a != b {
			t.Fatalf("remove %d: indexed=%d linear=%d", i, a, b)
		}
	}
	if n := idx.ConflictSet().Len(); n != 0 {
		t.Fatalf("%d instantiations after removing all WMEs", n)
	}
	assertIndexesEmpty(t, idx)
}

// TestIndexedNegationChurn drives an indexed negative node through the
// block/unblock cycle and checks the index bookkeeping drains to empty.
func TestIndexedNegationChurn(t *testing.T) {
	n := New()
	r := &match.Rule{
		Name: "guarded",
		Conditions: []match.Condition{
			{Class: "job", Tests: []match.AttrTest{{Attr: "lane", Op: match.OpEq, Var: "l"}}},
			{Class: "hold", Negated: true, Tests: []match.AttrTest{{Attr: "lane", Op: match.OpEq, Var: "l"}}},
		},
		Actions: []match.Action{{Kind: match.ActHalt}},
	}
	if err := n.AddRule(r); err != nil {
		t.Fatal(err)
	}
	s := wm.NewStore()
	jobs := make([]*wm.WME, 4)
	for i := range jobs {
		jobs[i] = s.Insert("job", map[string]wm.Value{"lane": wm.Int(int64(i % 2))})
		n.Insert(jobs[i])
	}
	if got := n.ConflictSet().Len(); got != 4 {
		t.Fatalf("unblocked: %d insts, want 4", got)
	}
	hold := s.Insert("hold", map[string]wm.Value{"lane": wm.Int(0)})
	n.Insert(hold)
	if got := n.ConflictSet().Len(); got != 2 {
		t.Fatalf("lane 0 held: %d insts, want 2", got)
	}
	n.Remove(hold)
	if got := n.ConflictSet().Len(); got != 4 {
		t.Fatalf("released: %d insts, want 4", got)
	}
	for _, w := range jobs {
		n.Remove(w)
	}
	if got := n.ConflictSet().Len(); got != 0 {
		t.Fatalf("drained: %d insts, want 0", got)
	}
	assertIndexesEmpty(t, n)
}

// assertIndexesEmpty walks every join and negative node and fails if a
// hash bucket still holds an entry after working memory was drained —
// a leak in the unindexing paths. It also sweeps the alpha
// registries and discrimination network (assertAlphaConsistent), so
// every drain-style test covers alpha GC for free.
func assertIndexesEmpty(t *testing.T, n *Network) {
	t.Helper()
	assertAlphaConsistent(t, n)
	for key, am := range n.alphaByKey {
		for _, s := range am.successors {
			switch node := s.(type) {
			case *joinNode:
				if len(node.left) != 0 || len(node.right) != 0 {
					t.Errorf("join on %s leaks: left=%d right=%d buckets", key, len(node.left), len(node.right))
				}
			case *negNode:
				if len(node.left) != 0 || len(node.right) != 0 {
					t.Errorf("neg on %s leaks: left=%d right=%d buckets", key, len(node.left), len(node.right))
				}
			}
		}
	}
}

// TestIndexMetrics checks the probe/scan counters: an equality chain
// answers activations from the index, and a rule with no equality test
// falls back to scans.
func TestIndexMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	n := New()
	n.SetMetrics(reg)
	if err := n.AddRule(chainRule("chain", 2)); err != nil {
		t.Fatal(err)
	}
	lt := &match.Rule{
		Name: "lt",
		Conditions: []match.Condition{
			{Class: "c0", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
			{Class: "c1", Tests: []match.AttrTest{{Attr: "k", Op: match.OpLt, Var: "x"}}},
		},
		Actions: []match.Action{{Kind: match.ActHalt}},
	}
	if err := n.AddRule(lt); err != nil {
		t.Fatal(err)
	}
	s := wm.NewStore()
	for i := 0; i < 6; i++ {
		n.Insert(s.Insert(fmt.Sprintf("c%d", i%2), map[string]wm.Value{"k": wm.Int(int64(i % 3))}))
	}
	if probes := reg.Counter("rete_index_probes_total").Value(); probes == 0 {
		t.Error("equality joins recorded no index probes")
	}
	if scans := reg.Counter("rete_index_scans_total").Value(); scans == 0 {
		t.Error("the no-equality join recorded no scans")
	}
}
