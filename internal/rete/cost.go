package rete

import (
	"fmt"
	"sort"
	"strings"

	"pdps/internal/match"
)

// This file is the cost model behind condition-element ordering — the
// database-style join planner applied to Rete compilation. A rule's
// chain cost is modelled as token flow: placing a CE at level i turns
// `tokens` upstream partial matches into `tokens × fanout` downstream
// ones at a cost of one activation (index probe or scan) plus the
// candidates it examines. The greedy planner places the eligible CE
// with the smallest result cardinality first (classic smallest-
// intermediate-result heuristic), with the step cost and then the
// original CE index as deterministic tie-breaks — an already
// well-ordered rule compiles exactly as written, keeping golden traces
// and detsched replay byte-identical.
//
// Two estimators feed the same formulas. The static estimator (compile
// time) assumes planClassRows tuples per class and the selectivity
// constants below — enough to rank "has a constant equality test"
// above "unconstrained wide relation". The live estimator (adaptive
// replanning, plan.go) replaces assumptions with observations: actual
// alpha-memory sizes, working-memory class counts, and per-join
// fanouts measured by the rete_index_probes / rete_index_bucket_size /
// rete_scan_candidates instrumentation.

const (
	// planClassRows is the assumed relation cardinality when nothing is
	// known about a class.
	planClassRows = 1024
	// Constant-test selectivities.
	selConstEq   = 1.0 / 16
	selConstNe   = 0.9
	selConstIneq = 1.0 / 3
	selConstDisj = 1.0 / 8
	// Join selectivities per equality / inequality test.
	selEqJoin   = 1.0 / 64
	selIneqJoin = 1.0 / 3
	// fanoutMinProbes is the observation count below which a measured
	// fanout is not trusted over the formula.
	fanoutMinProbes = 16
)

// estimator supplies the planner's cardinality knowledge.
type estimator struct {
	// rows estimates the alpha-memory size for a pattern; constSel is
	// the modelled constant-test selectivity for estimators that only
	// know per-class counts.
	rows func(class, amemKey string, constSel float64) float64
	// fanout returns the observed matches-per-activation for a join
	// signature, when known.
	fanout func(key string) (float64, bool)
}

// staticEstimator knows nothing: fixed class cardinality, no observed
// fanouts.
func staticEstimator() estimator {
	return estimator{
		rows: func(class, amemKey string, constSel float64) float64 {
			return planClassRows * constSel
		},
		fanout: func(string) (float64, bool) { return 0, false },
	}
}

// liveEstimator reads the network's current state: exact alpha-memory
// sizes where the pattern already exists, working-memory class counts
// otherwise, and observed per-join fanouts aggregated over live nodes
// plus the banked statistics of retired ones.
func (n *Network) liveEstimator() estimator {
	fan := make(map[string]joinStats)
	for key, s := range n.foldedStats {
		fan[key] = *s
	}
	seenJ := make(map[*joinNode]bool)
	seenN := make(map[*negNode]bool)
	addJ := func(j *joinNode) {
		if j == nil || seenJ[j] {
			return
		}
		seenJ[j] = true
		key := joinStatsKey(j.amem.key, j.tests)
		s := fan[key]
		s.probes += j.stats.probes
		s.cands += j.stats.cands
		fan[key] = s
	}
	addN := func(g *negNode) {
		if g == nil || seenN[g] {
			return
		}
		seenN[g] = true
		key := joinStatsKey(g.amem.key, g.tests)
		s := fan[key]
		s.probes += g.stats.probes
		s.cands += g.stats.cands
		fan[key] = s
	}
	for _, rc := range n.chains {
		for _, bl := range rc.levels {
			addJ(bl.join)
			addN(bl.neg)
		}
		addJ(rc.lastJoin)
	}
	return estimator{
		rows: func(class, amemKey string, constSel float64) float64 {
			if am, ok := n.alphaByKey[amemKey]; ok {
				return float64(len(am.items))
			}
			return float64(n.classCount[class]) * constSel
		},
		fanout: func(key string) (float64, bool) {
			s, ok := fan[key]
			if !ok || s.probes < fanoutMinProbes {
				return 0, false
			}
			return float64(s.cands) / float64(s.probes), true
		},
	}
}

// joinStatsKey identifies a join's statistical signature: the alpha
// pattern joined through a test set. levelsUp is deliberately left
// out, so a candidate plan that joins the same pattern on the same
// attributes at a different chain position inherits the observation.
func joinStatsKey(amemKey string, tests []joinTest) string {
	parts := make([]string, len(tests))
	for i, jt := range tests {
		parts[i] = fmt.Sprintf("%s %s %s", jt.ownAttr, jt.op, jt.otherAttr)
	}
	sort.Strings(parts)
	return amemKey + "\x03" + strings.Join(parts, ",")
}

// constSelectivity is the modelled fraction of a class passing the
// CE's alpha-network tests.
func constSelectivity(cc compiledCE) float64 {
	s := 1.0
	for _, t := range cc.consts {
		switch {
		case t.IsDisjunction():
			s *= selConstDisj
		case t.Op == match.OpEq:
			s *= selConstEq
		case t.Op == match.OpNe:
			s *= selConstNe
		default:
			s *= selConstIneq
		}
	}
	for _, it := range cc.intras {
		if it.op == match.OpEq {
			s *= selConstEq
		} else {
			s *= selConstIneq
		}
	}
	return s
}

// eligible reports whether the CE can be placed next: every variable
// it uses without binding it must already be bound (negated CEs never
// bind; a positive CE binds at an unbound variable's first OpEq
// occurrence). The source order is always a feasible plan, so a greedy
// placement never gets stuck.
func eligible(c match.Condition, bound map[string]bindingPos) bool {
	local := make(map[string]bool)
	for _, t := range c.Tests {
		if !t.IsVar() {
			continue
		}
		if _, ok := bound[t.Var]; ok {
			continue
		}
		if local[t.Var] {
			continue
		}
		if c.Negated || t.Op != match.OpEq {
			return false
		}
		local[t.Var] = true
	}
	return true
}

// placeCost evaluates placing CE c at chain level lvl given `tokens`
// upstream partial matches: the resulting downstream token count and
// the step's activation cost. bound is not modified.
func placeCost(c match.Condition, lvl int, bound map[string]bindingPos, est estimator, tokens float64) (out, cost float64) {
	scratch := make(map[string]bindingPos, len(bound))
	for k, v := range bound {
		scratch[k] = v
	}
	cc := classifyCE(c, lvl, scratch)
	key := alphaKey(c.Class, cc.consts, cc.intras, cc.presence)
	rows := est.rows(c.Class, key, constSelectivity(cc))
	f := joinFanout(cc, key, rows, est)
	if c.Negated {
		// A negative level costs one activation per token plus the
		// matches found; a token survives when nothing matches, so the
		// expected pass rate shrinks with the fanout.
		return tokens / (1 + f), tokens * (1 + f)
	}
	return tokens * f, tokens * (1 + f)
}

// joinFanout estimates matches per activation for the CE's join: the
// observed value when the estimator has one, otherwise rows scaled by
// the per-test join selectivities (a join with no variable tests is a
// cross product — every row matches).
func joinFanout(cc compiledCE, amemKey string, rows float64, est estimator) float64 {
	eq, ineq := 0, 0
	for _, jt := range cc.joins {
		if jt.op == match.OpEq {
			eq++
		} else {
			ineq++
		}
	}
	if eq+ineq == 0 {
		return rows
	}
	if f, ok := est.fanout(joinStatsKey(amemKey, cc.joins)); ok {
		return f
	}
	f := rows
	for i := 0; i < eq; i++ {
		f *= selEqJoin
	}
	for i := 0; i < ineq; i++ {
		f *= selIneqJoin
	}
	return f
}

// planOrderWith orders the rule's condition elements greedily under
// the estimator: at each step place the eligible CE minimising
// (result tokens, step cost, original index). Returns the order
// (plan level -> original CE index) and the plan's estimated cost.
func planOrderWith(r *match.Rule, est estimator) ([]int, float64) {
	m := len(r.Conditions)
	order := make([]int, 0, m)
	placed := make([]bool, m)
	bound := make(map[string]bindingPos)
	tokens, total := 1.0, 0.0
	for len(order) < m {
		bestIdx := -1
		var bestOut, bestCost float64
		for i, c := range r.Conditions {
			if placed[i] || !eligible(c, bound) {
				continue
			}
			out, cost := placeCost(c, len(order), bound, est, tokens)
			if bestIdx < 0 || out < bestOut || (out == bestOut && cost < bestCost) {
				bestIdx, bestOut, bestCost = i, out, cost
			}
		}
		classifyCE(r.Conditions[bestIdx], len(order), bound) // commit bindings
		order = append(order, bestIdx)
		placed[bestIdx] = true
		tokens = bestOut
		total += bestCost
	}
	return order, total
}

// planCostFor evaluates a fixed order under the estimator with the
// same formulas the planner uses, so current-plan and best-plan costs
// are comparable.
func planCostFor(r *match.Rule, order []int, est estimator) float64 {
	bound := make(map[string]bindingPos)
	tokens, total := 1.0, 0.0
	for lvl, idx := range order {
		out, cost := placeCost(r.Conditions[idx], lvl, bound, est, tokens)
		classifyCE(r.Conditions[idx], lvl, bound)
		tokens = out
		total += cost
	}
	return total
}

// planRule chooses the compile-time order: source order when planning
// is off (its cost is still estimated, for the plan gauge), otherwise
// the static greedy plan.
func (n *Network) planRule(r *match.Rule) ([]int, float64) {
	if !n.planning {
		order := make([]int, len(r.Conditions))
		for i := range order {
			order[i] = i
		}
		return order, planCostFor(r, order, staticEstimator())
	}
	return planOrderWith(r, staticEstimator())
}
