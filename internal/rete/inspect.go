package rete

import (
	"fmt"
	"sort"
	"strings"
)

// Topology describes the compiled network shape, for diagnostics and
// the sharing statistics the Rete literature reports.
type Topology struct {
	AlphaMems  int
	JoinNodes  int
	NegNodes   int
	MemNodes   int
	ProdNodes  int
	SharedAlph int // alpha memories feeding more than one successor
	SharedBeta int // beta levels referenced by more than one rule

	// Discrimination-network shape (alpha.go): the hash-routed
	// attributes across classes, the total discrimination nodes
	// (buckets plus residual test nodes), and how many of those sit on
	// more than one pattern's path — the cross-rule factoring.
	AlphaRoutedAttrs int
	AlphaDiscNodes   int
	SharedAlphaNodes int
}

// Topology walks the network and counts its nodes.
func (n *Network) Topology() Topology {
	t := Topology{AlphaMems: len(n.alphaByKey)}
	seenMem := map[*memNode]bool{n.top: true}
	t.MemNodes = 1
	seenJoin := map[*joinNode]bool{}
	seenNeg := map[*negNode]bool{}
	seenProd := map[*prodNode]bool{}

	var visitSink func(s tokenSink)
	visitSink = func(s tokenSink) {
		switch node := s.(type) {
		case *joinNode:
			if seenJoin[node] {
				return
			}
			seenJoin[node] = true
			t.JoinNodes++
			switch out := node.out.(type) {
			case *memNode:
				if !seenMem[out] {
					seenMem[out] = true
					t.MemNodes++
					for _, c := range out.children {
						visitSink(c)
					}
				}
			case *prodNode:
				if !seenProd[out] {
					seenProd[out] = true
					t.ProdNodes++
				}
			}
		case *negNode:
			if seenNeg[node] {
				return
			}
			seenNeg[node] = true
			t.NegNodes++
			for _, c := range node.children {
				visitSink(c)
			}
		case *prodNode:
			if !seenProd[node] {
				seenProd[node] = true
				t.ProdNodes++
			}
		}
	}
	for _, c := range n.top.children {
		visitSink(c)
	}
	for _, am := range n.alphaByKey {
		if len(am.successors) > 1 {
			t.SharedAlph++
		}
	}
	for _, bl := range n.betaLevels {
		if bl.refs > 1 {
			t.SharedBeta++
		}
	}
	var walkLevels func(lv *discLevel)
	walkLevels = func(lv *discLevel) {
		if lv == nil {
			return
		}
		t.AlphaRoutedAttrs += len(lv.eqAttrs)
		for _, er := range lv.eqRoots {
			for _, b := range er.buckets {
				t.AlphaDiscNodes++
				if b.refs > 1 {
					t.SharedAlphaNodes++
				}
				walkLevels(b.kids)
			}
		}
		for _, c := range lv.rest {
			t.AlphaDiscNodes++
			if c.refs > 1 {
				t.SharedAlphaNodes++
			}
			walkLevels(c.kids)
		}
	}
	for _, d := range n.disc {
		walkLevels(d.root.kids)
	}
	return t
}

// Dot renders the network topology in Graphviz dot syntax: alpha
// memories as boxes, joins as diamonds, negative nodes as inverted
// houses, productions as double circles.
func (n *Network) Dot() string {
	var b strings.Builder
	b.WriteString("digraph rete {\n  rankdir=TB;\n  node [fontsize=10];\n")

	alphaID := make(map[*alphaMem]string)
	keys := make([]string, 0, len(n.alphaByKey))
	for k := range n.alphaByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		am := n.alphaByKey[k]
		id := fmt.Sprintf("alpha%d", i)
		alphaID[am] = id
		fmt.Fprintf(&b, "  %s [shape=box,label=%q];\n", id, "α "+am.key)
	}
	b.WriteString("  top [shape=point,label=\"\"];\n")

	ids := map[interface{}]string{}
	next := 0
	idOf := func(x interface{}, prefix string) (string, bool) {
		if id, ok := ids[x]; ok {
			return id, false
		}
		next++
		id := fmt.Sprintf("%s%d", prefix, next)
		ids[x] = id
		return id, true
	}

	var edges []string
	edge := func(from, to, label string) {
		if label == "" {
			edges = append(edges, fmt.Sprintf("  %s -> %s;", from, to))
			return
		}
		edges = append(edges, fmt.Sprintf("  %s -> %s [label=%q];", from, to, label))
	}

	var visitSink func(parent string, s tokenSink)
	visitSink = func(parent string, s tokenSink) {
		switch node := s.(type) {
		case *joinNode:
			id, fresh := idOf(node, "join")
			edge(parent, id, "")
			if fresh {
				fmt.Fprintf(&b, "  %s [shape=diamond,label=\"⋈ %d tests\"];\n", id, len(node.tests))
				edge(alphaID[node.amem], id, "")
				switch out := node.out.(type) {
				case *memNode:
					mid, mfresh := idOf(out, "mem")
					if mfresh {
						fmt.Fprintf(&b, "  %s [shape=ellipse,label=\"β\"];\n", mid)
					}
					edge(id, mid, "")
					if mfresh {
						for _, c := range out.children {
							visitSink(mid, c)
						}
					}
				case *prodNode:
					pid, pfresh := idOf(out, "prod")
					if pfresh {
						fmt.Fprintf(&b, "  %s [shape=doublecircle,label=%q];\n", pid, out.rule.Name)
					}
					edge(id, pid, "")
				}
			}
		case *negNode:
			id, fresh := idOf(node, "neg")
			edge(parent, id, "")
			if fresh {
				fmt.Fprintf(&b, "  %s [shape=invhouse,label=\"¬ %d tests\"];\n", id, len(node.tests))
				edge(alphaID[node.amem], id, "")
				for _, c := range node.children {
					visitSink(id, c)
				}
			}
		case *prodNode:
			pid, pfresh := idOf(node, "prod")
			if pfresh {
				fmt.Fprintf(&b, "  %s [shape=doublecircle,label=%q];\n", pid, node.rule.Name)
			}
			edge(parent, pid, "")
		}
	}
	for _, c := range n.top.children {
		visitSink("top", c)
	}
	for _, e := range edges {
		b.WriteString(e + "\n")
	}
	b.WriteString("}\n")
	return b.String()
}
