package rete

import (
	"fmt"
	"testing"

	"pdps/internal/match"
	"pdps/internal/treat"
	"pdps/internal/wm"
)

// benchRules builds nRules three-way join rules over shared classes,
// so alpha memories are shared and beta activity is non-trivial.
func benchRules(nRules int) []*match.Rule {
	rules := make([]*match.Rule, nRules)
	for i := range rules {
		rules[i] = &match.Rule{
			Name: fmt.Sprintf("r%d", i),
			Conditions: []match.Condition{
				{Class: "a", Tests: []match.AttrTest{
					{Attr: "k", Op: match.OpEq, Var: "x"},
					{Attr: "g", Op: match.OpEq, Const: wm.Int(int64(i % 4))},
				}},
				{Class: "b", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
				{Class: "c", Negated: true, Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
			},
			Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
		}
	}
	return rules
}

func benchChurn(b *testing.B, m match.Matcher) {
	b.Helper()
	for _, r := range benchRules(8) {
		if err := m.AddRule(r); err != nil {
			b.Fatal(err)
		}
	}
	s := wm.NewStore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := s.Insert("a", map[string]wm.Value{"k": wm.Int(int64(i % 16)), "g": wm.Int(int64(i % 4))})
		bb := s.Insert("b", map[string]wm.Value{"k": wm.Int(int64(i % 16))})
		m.Insert(a)
		m.Insert(bb)
		if i%3 == 0 {
			c := s.Insert("c", map[string]wm.Value{"k": wm.Int(int64(i % 16))})
			m.Insert(c)
			m.Remove(c)
		}
		m.Remove(a)
		m.Remove(bb)
	}
}

// BenchmarkChurn measures insert/remove throughput through the full
// network for each matcher (conflict-set computation included for the
// naive matcher, which recomputes on demand).
func BenchmarkChurn(b *testing.B) {
	b.Run("rete", func(b *testing.B) { benchChurn(b, New()) })
	b.Run("treat", func(b *testing.B) { benchChurn(b, treat.New()) })
	b.Run("naive", func(b *testing.B) {
		m := match.NewNaive()
		for _, r := range benchRules(8) {
			if err := m.AddRule(r); err != nil {
				b.Fatal(err)
			}
		}
		s := wm.NewStore()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := s.Insert("a", map[string]wm.Value{"k": wm.Int(int64(i % 16)), "g": wm.Int(int64(i % 4))})
			m.Insert(a)
			m.ConflictSet() // naive pays at read time
			m.Remove(a)
		}
	})
}

// BenchmarkJoinDepth isolates the cost the hashed memories remove: a
// four-deep equality chain over resident reference classes of 256
// keys each. Every c0 insert activates the whole chain; the linear
// network scans each opposite memory in full (O(keys) per level)
// while the indexed network probes single-entry buckets. This is the
// E17 ≥2× acceptance benchmark (EXPERIMENTS.md).
func BenchmarkJoinDepth(b *testing.B) {
	const keys, depth = 256, 4
	for _, v := range []struct {
		name string
		mk   func() match.Matcher
	}{
		{"indexed", func() match.Matcher { return New() }},
		{"linear", func() match.Matcher { return NewLinear() }},
		{"treat", func() match.Matcher { return treat.New() }},
	} {
		b.Run(v.name, func(b *testing.B) {
			m := v.mk()
			if err := m.AddRule(chainRule("chain", depth)); err != nil {
				b.Fatal(err)
			}
			s := wm.NewStore()
			for k := 0; k < keys; k++ {
				for l := 1; l < depth; l++ {
					m.Insert(s.Insert(fmt.Sprintf("c%d", l), map[string]wm.Value{"k": wm.Int(int64(k))}))
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := s.Insert("c0", map[string]wm.Value{"k": wm.Int(int64(i % keys))})
				m.Insert(w)
				if m.ConflictSet().Len() != 1 {
					b.Fatal("chain did not match")
				}
				m.Remove(w)
			}
		})
	}
}

// BenchmarkPlanMisordered is the cost planner's acceptance shape
// (E21): a rule whose source order lists two wide reference classes
// before the selective pattern and the task. Source-order compilation
// ("src") joins every insert through the wide cross first; the
// planned network ("planned") hoists the selective CE and answers
// cold keys from an empty bucket.
func BenchmarkPlanMisordered(b *testing.B) {
	const keys, width = 256, 8
	kv := func() []match.AttrTest {
		return []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}
	}
	rule := &match.Rule{
		Name: "finish",
		Conditions: []match.Condition{
			{Class: "wide0", Tests: kv()},
			{Class: "wide1", Tests: kv()},
			{Class: "sel", Tests: []match.AttrTest{
				{Attr: "hot", Op: match.OpEq, Const: wm.Bool(true)},
				{Attr: "k", Op: match.OpEq, Var: "x"},
			}},
			{Class: "task", Tests: []match.AttrTest{
				{Attr: "k", Op: match.OpEq, Var: "x"},
				{Attr: "done", Op: match.OpEq, Const: wm.Bool(false)},
			}},
		},
		Actions: []match.Action{{Kind: match.ActHalt}},
	}
	for _, v := range []struct {
		name string
		mk   func() *Network
	}{
		{"planned", New},
		{"src", NewSourceOrder},
	} {
		b.Run(v.name, func(b *testing.B) {
			n := v.mk()
			if err := n.AddRule(rule); err != nil {
				b.Fatal(err)
			}
			s := wm.NewStore()
			for k := 0; k < keys; k++ {
				n.Insert(s.Insert("task", map[string]wm.Value{"k": wm.Int(int64(k)), "done": wm.Bool(false)}))
				for c := 0; c < width; c++ {
					n.Insert(s.Insert("wide0", map[string]wm.Value{"k": wm.Int(int64(k)), "v": wm.Int(int64(c))}))
					n.Insert(s.Insert("wide1", map[string]wm.Value{"k": wm.Int(int64(k)), "v": wm.Int(int64(c))}))
				}
				if k%16 == 0 {
					n.Insert(s.Insert("sel", map[string]wm.Value{"k": wm.Int(int64(k)), "hot": wm.Bool(true)}))
				}
			}
			base := n.ConflictSet().Len()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := s.Insert("wide0", map[string]wm.Value{"k": wm.Int(int64(i%keys | 1)), "v": wm.Int(-1)})
				n.Insert(w)
				n.Remove(w)
			}
			b.StopTimer()
			if n.ConflictSet().Len() != base {
				b.Fatal("churn leaked instantiations")
			}
		})
	}
}

// BenchmarkAddRuleSeeding measures late rule addition against a
// populated working memory (the update-from-above path).
func BenchmarkAddRuleSeeding(b *testing.B) {
	s := wm.NewStore()
	var wmes []*wm.WME
	for i := 0; i < 500; i++ {
		wmes = append(wmes,
			s.Insert("a", map[string]wm.Value{"k": wm.Int(int64(i % 50)), "g": wm.Int(int64(i % 4))}),
			s.Insert("b", map[string]wm.Value{"k": wm.Int(int64(i % 50))}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := New()
		for _, w := range wmes {
			n.Insert(w)
		}
		for _, r := range benchRules(4) {
			if err := n.AddRule(r); err != nil {
				b.Fatal(err)
			}
		}
		if n.ConflictSet().Len() == 0 {
			b.Fatal("no matches")
		}
	}
}

// fanoutRules is the ManyRulesFanout rule shape at matcher level:
// nRules single-CE rules over one event class with overlapping
// constant tests (a category shared by nRules/16 rules, a priority
// band, and a live flag shared by all). The linear alpha network
// evaluates every rule's predicate closure per assert; the
// discrimination network answers with one hash probe plus the shared
// residual tests.
func fanoutRules(nRules int) []*match.Rule {
	cats := 16
	if nRules < cats {
		cats = nRules
	}
	rules := make([]*match.Rule, nRules)
	for r := range rules {
		rules[r] = &match.Rule{
			Name: fmt.Sprintf("fan%d", r),
			Conditions: []match.Condition{{
				Class: "event",
				Tests: []match.AttrTest{
					{Attr: "cat", Op: match.OpEq, Const: wm.Int(int64(r % cats))},
					{Attr: "pri", Op: match.OpEq, Const: wm.Int(int64(r / cats))},
					{Attr: "live", Op: match.OpEq, Const: wm.Bool(true)},
				},
			}},
			Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
		}
	}
	return rules
}

// BenchmarkAlphaFanout measures the alpha assert path as rule count
// grows (E22): insert/remove churn of events through R single-CE
// rules, mostly cold events matching no rule (the common case — a
// linear alpha network still walks all R memories) with every fourth
// event hot (owned by exactly one rule). "disc" routes through the
// shared discrimination network; "linear" is the per-class list walk.
func BenchmarkAlphaFanout(b *testing.B) {
	for _, rules := range []int{16, 64, 256} {
		for _, v := range []struct {
			name string
			mk   func() *Network
		}{
			{"disc", New},
			{"linear", NewLinear},
		} {
			b.Run(fmt.Sprintf("%s/R%d", v.name, rules), func(b *testing.B) {
				m := v.mk()
				for _, r := range fanoutRules(rules) {
					if err := m.AddRule(r); err != nil {
						b.Fatal(err)
					}
				}
				// Pre-build the event pool so the loop times the assert
				// path, not WME construction.
				s := wm.NewStore()
				events := make([]*wm.WME, 64)
				for i := range events {
					if i%4 == 0 {
						r := i % rules
						events[i] = s.Insert("event", map[string]wm.Value{
							"cat": wm.Int(int64(r % 16)), "pri": wm.Int(int64(r / 16)), "live": wm.Bool(true)})
						continue
					}
					events[i] = s.Insert("event", map[string]wm.Value{
						"cat": wm.Int(int64(i % 16)), "pri": wm.Int(int64(rules)), "live": wm.Bool(true)})
				}
				m.Insert(events[0])
				if m.ConflictSet().Len() != 1 {
					b.Fatal("hot event did not match its rule")
				}
				m.Remove(events[0])
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w := events[i%len(events)]
					m.Insert(w)
					m.Remove(w)
				}
				b.StopTimer()
				if m.ConflictSet().Len() != 0 {
					b.Fatal("churn leaked instantiations")
				}
			})
		}
	}
}
